package failure

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nowlater/nowlater/internal/stats"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(-1); err == nil {
		t.Fatal("negative rho accepted")
	}
	if _, err := NewModel(math.NaN()); err == nil {
		t.Fatal("NaN rho accepted")
	}
	if _, err := NewModel(math.Inf(1)); err == nil {
		t.Fatal("Inf rho accepted")
	}
	m, err := NewModel(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Survival(1e9) != 1 {
		t.Fatal("rho=0 should never fail")
	}
	if !math.IsInf(m.MeanDistanceToFailure(), 1) {
		t.Fatal("rho=0 mean distance should be +Inf")
	}
}

func TestFromRange(t *testing.T) {
	m, err := FromRange(9000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rho-1.0/9000) > 1e-12 {
		t.Fatalf("rho = %v", m.Rho)
	}
	if _, err := FromRange(0); err == nil {
		t.Fatal("zero range accepted")
	}
}

func TestSurvivalMatchesPaperFormula(t *testing.T) {
	m, _ := NewModel(AirplaneRho)
	// δ(d) = e^{−ρ(d0−d)} with d0 = 300, d = 100.
	got := m.Discount(300, 100)
	want := math.Exp(-AirplaneRho * 200)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("discount = %v, want %v", got, want)
	}
	// No travel → no risk.
	if m.Discount(300, 300) != 1 {
		t.Fatal("zero-travel discount should be 1")
	}
	if m.Survival(-5) != 1 {
		t.Fatal("negative travel should be riskless")
	}
}

func TestPaperRhoConstants(t *testing.T) {
	if AirplaneRho != 1.11e-4 || QuadrocopterRho != 2.46e-4 {
		t.Fatal("paper baseline rates changed")
	}
	// Mean distance to failure: ≈9.0 km and ≈4.07 km.
	m1, _ := NewModel(AirplaneRho)
	if d := m1.MeanDistanceToFailure(); math.Abs(d-9009) > 1 {
		t.Fatalf("airplane mean distance = %v", d)
	}
}

func TestInjectorTripsExactlyOnce(t *testing.T) {
	m, _ := NewModel(1e-3)
	inj := NewInjector(m, stats.NewRNG(42))
	failAt := inj.FailAt()
	if failAt <= 0 {
		t.Fatalf("failure distance = %v", failAt)
	}
	if inj.Check(failAt * 0.99) {
		t.Fatal("tripped early")
	}
	if inj.Tripped() {
		t.Fatal("Tripped before reaching distance")
	}
	if !inj.Check(failAt) {
		t.Fatal("did not trip at the failure distance")
	}
	// Latches even if odometer "rewinds" (it cannot, but stay safe).
	if !inj.Check(0) {
		t.Fatal("injector must latch")
	}
}

func TestInjectorDistributionMean(t *testing.T) {
	m, _ := NewModel(2e-4)
	rng := stats.NewRNG(7)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += NewInjector(m, rng).FailAt()
	}
	mean := sum / float64(n)
	if math.Abs(mean-5000)/5000 > 0.05 {
		t.Fatalf("mean failure distance = %v, want ≈5000", mean)
	}
}

func TestInjectorNeverFailsAtZeroRho(t *testing.T) {
	m, _ := NewModel(0)
	inj := NewInjector(m, stats.NewRNG(1))
	if inj.Check(1e12) {
		t.Fatal("rho=0 injector tripped")
	}
}

// Property: survival is multiplicative over legs (memorylessness):
// S(a+b) = S(a)·S(b).
func TestSurvivalMemorylessProperty(t *testing.T) {
	m, _ := NewModel(3e-4)
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		return math.Abs(m.Survival(a+b)-m.Survival(a)*m.Survival(b)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: survival is monotone non-increasing in distance.
func TestSurvivalMonotoneProperty(t *testing.T) {
	m, _ := NewModel(5e-4)
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		return m.Survival(a) >= m.Survival(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTripForcesFailure(t *testing.T) {
	m, err := NewModel(0) // rho 0: natural failure never occurs
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(m, stats.NewRNG(1))
	if inj.Check(1e9) {
		t.Fatal("zero-rho injector failed naturally")
	}
	inj.Trip()
	if !inj.Tripped() || !inj.Check(0) {
		t.Fatal("forced trip did not stick")
	}
}
