// Package failure implements the paper's operational-failure model
// (Section 2): "we assume that the failure probability is exponentially
// distributed with the distance traveled", giving the survival function
// δ(d) = e^{−ρ·(d0−d)} for a UAV that ships itself from distance d0 to
// distance d. The paper picks ρ as the inverse of the distance the UAV can
// cover on one battery at cruise speed.
//
// The package provides both the analytic discount used by the utility
// optimizer and a sampling injector that fails a simulated vehicle at a
// concrete odometer reading, used by the mission simulations.
package failure

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/stats"
)

// Paper baseline failure rates (Section 4).
const (
	// AirplaneRho is the airplane scenario's ρ = 1.11e−4 m⁻¹.
	AirplaneRho = 1.11e-4
	// QuadrocopterRho is the quadrocopter scenario's ρ = 2.46e−4 m⁻¹.
	QuadrocopterRho = 2.46e-4
)

// Model is the exponential-in-distance failure law.
type Model struct {
	// Rho is the failure rate per metre travelled (ρ ≥ 0).
	Rho float64
}

// NewModel validates and wraps a failure rate.
func NewModel(rho float64) (Model, error) {
	if rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return Model{}, fmt.Errorf("failure: rho %v must be finite and ≥ 0", rho)
	}
	return Model{Rho: rho}, nil
}

// FromRange derives ρ from a travel range in metres (ρ = 1/range), the
// paper's battery-based choice.
func FromRange(rangeM float64) (Model, error) {
	if rangeM <= 0 {
		return Model{}, fmt.Errorf("failure: range %v must be positive", rangeM)
	}
	return Model{Rho: 1 / rangeM}, nil
}

// Survival returns the probability of remaining functional after
// travelling dist metres: e^{−ρ·dist}. Negative distances are treated as
// zero (no travel, no risk).
func (m Model) Survival(dist float64) float64 {
	if dist <= 0 {
		return 1
	}
	return math.Exp(-m.Rho * dist)
}

// Discount is the paper's δ(d) for shipping from d0 to d: the survival of
// the (d0 − d) leg. Moving away (d > d0) never happens in the optimal
// strategy; it is charged symmetrically for robustness.
func (m Model) Discount(d0, d float64) float64 {
	return m.Survival(math.Abs(d0 - d))
}

// MeanDistanceToFailure returns 1/ρ (infinite for ρ = 0).
func (m Model) MeanDistanceToFailure() float64 {
	if m.Rho == 0 {
		return math.Inf(1)
	}
	return 1 / m.Rho
}

// Injector samples a concrete failure distance for one vehicle life and
// answers "has it failed yet?" as the odometer advances. The exponential
// law is memoryless, so sampling the whole life up front is equivalent to
// stepwise hazard draws.
type Injector struct {
	model   Model
	failAt  float64 // odometer reading at which the vehicle fails
	tripped bool
}

// NewInjector draws the failure distance for one vehicle life.
func NewInjector(m Model, rng *stats.RNG) *Injector {
	return &Injector{model: m, failAt: rng.Exponential(m.Rho)}
}

// FailAt returns the sampled odometer reading of the failure.
func (i *Injector) FailAt() float64 { return i.failAt }

// Check reports whether the vehicle has failed by the given odometer
// reading. Once tripped it stays tripped.
func (i *Injector) Check(odometer float64) bool {
	if i.tripped {
		return true
	}
	if odometer >= i.failAt {
		i.tripped = true
	}
	return i.tripped
}

// Tripped reports whether the injector has already fired.
func (i *Injector) Tripped() bool { return i.tripped }

// Trip forces the failure immediately, regardless of the sampled odometer
// reading — the hook the chaos layer uses for scripted mid-flight vehicle
// failures. Like a natural failure, a forced trip is permanent.
func (i *Injector) Trip() { i.tripped = true }
