// Package uav models the paper's two flying platforms (Table 1): the
// Swinglet fixed-wing airplane and the Arducopter quadrocopter, as
// kinematic vehicles with battery budgets, speed and altitude envelopes,
// and odometer accounting (the failure model discounts by distance
// travelled).
//
// The fidelity target is the paper's communication study, not aerodynamics:
// vehicles track commanded velocities under acceleration and turn-rate
// limits, which reproduces the flight patterns of Fig. 4 (straight legs
// between waypoints for airplanes, station-keeping hover for quads) at the
// timescales that matter to the radio link.
package uav

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/geo"
)

// Class distinguishes the two airframe families of the paper.
type Class int

// The platform classes used in the paper's experiments.
const (
	Airplane Class = iota
	Quadrocopter
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Airplane:
		return "airplane"
	case Quadrocopter:
		return "quadrocopter"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Platform is a vehicle specification (the rows of Table 1).
type Platform struct {
	Name  string
	Class Class
	// CanHover: quadrocopters hold position; airplanes must keep airspeed
	// and circle a waypoint instead.
	CanHover bool
	// SizeDescription mirrors Table 1 ("Wingspan: 80 cm", "Frame: 64 cm").
	SizeDescription string
	WeightKg        float64
	// BatteryMinutes is the autonomy at cruise.
	BatteryMinutes float64
	// CruiseSpeedMPS is the nominal mission speed.
	CruiseSpeedMPS float64
	// MaxSpeedMPS caps commanded velocities.
	MaxSpeedMPS float64
	// StallSpeedMPS is the minimum forward speed (0 for hover-capable).
	StallSpeedMPS float64
	// MaxSafeAltitudeM is the operational ceiling of Table 1.
	MaxSafeAltitudeM float64
	// MinTurnRadiusM bounds how tightly the platform circles (the paper's
	// airplanes circle waypoints with a radius of at least 20 m).
	MinTurnRadiusM float64
	// AccelMPS2 limits velocity changes.
	AccelMPS2 float64
}

// Swinglet returns the paper's fixed-wing platform (Table 1).
func Swinglet() Platform {
	return Platform{
		Name:             "Swinglet",
		Class:            Airplane,
		CanHover:         false,
		SizeDescription:  "Wingspan: 80 cm",
		WeightKg:         0.5,
		BatteryMinutes:   30,
		CruiseSpeedMPS:   10,
		MaxSpeedMPS:      14,
		StallSpeedMPS:    7,
		MaxSafeAltitudeM: 300,
		MinTurnRadiusM:   20,
		AccelMPS2:        3,
	}
}

// Arducopter returns the paper's quadrocopter platform (Table 1).
func Arducopter() Platform {
	return Platform{
		Name:             "Arducopter",
		Class:            Quadrocopter,
		CanHover:         true,
		SizeDescription:  "Frame: 64 cm by 64 cm",
		WeightKg:         1.7,
		BatteryMinutes:   20,
		CruiseSpeedMPS:   4.5,
		MaxSpeedMPS:      10,
		StallSpeedMPS:    0,
		MaxSafeAltitudeM: 100,
		MinTurnRadiusM:   0,
		AccelMPS2:        2.5,
	}
}

// Validate reports the first implausible field.
func (p Platform) Validate() error {
	switch {
	case p.CruiseSpeedMPS <= 0:
		return fmt.Errorf("uav: cruise speed %v must be positive", p.CruiseSpeedMPS)
	case p.MaxSpeedMPS < p.CruiseSpeedMPS:
		return fmt.Errorf("uav: max speed %v below cruise %v", p.MaxSpeedMPS, p.CruiseSpeedMPS)
	case p.StallSpeedMPS < 0 || p.StallSpeedMPS > p.CruiseSpeedMPS:
		return fmt.Errorf("uav: stall speed %v outside [0, cruise]", p.StallSpeedMPS)
	case p.BatteryMinutes <= 0:
		return fmt.Errorf("uav: battery %v must be positive", p.BatteryMinutes)
	case p.MaxSafeAltitudeM <= 0:
		return fmt.Errorf("uav: ceiling %v must be positive", p.MaxSafeAltitudeM)
	case p.AccelMPS2 <= 0:
		return fmt.Errorf("uav: acceleration %v must be positive", p.AccelMPS2)
	case !p.CanHover && p.StallSpeedMPS == 0:
		return fmt.Errorf("uav: non-hovering platform needs a stall speed")
	}
	return nil
}

// PowerFraction returns the instantaneous power draw at ground speed v
// relative to the cruise-speed draw (1.0 at cruise by construction, so one
// battery lasts BatteryMinutes at cruise). Rotorcraft pay a small hover
// premium (no translational lift) and a steep sprint penalty; fixed wings
// fly a classic U-shaped power polar with its minimum at cruise.
func (p Platform) PowerFraction(v float64) float64 {
	vc := p.CruiseSpeedMPS
	if vc <= 0 {
		return 1
	}
	if p.CanHover {
		// Minimum-power speed around 0.7·cruise; hover sits slightly above
		// cruise draw, sprints rise quadratically.
		ve := 0.7 * vc
		a := 0.05 / ((vc - ve) * (vc - ve))
		f := 0.95 + a*(v-ve)*(v-ve)
		if f < 0.9 {
			f = 0.9
		}
		return f
	}
	// Fixed wing: U-curve anchored at cruise; both slower (induced drag)
	// and faster (parasite drag) cost more.
	d := (v - vc) / vc
	return 1 + 0.8*d*d
}

// NominalRangeM is the distance the platform covers at cruise speed on one
// battery — the quantity the paper inverts to choose the failure rate ρ
// ("the inverse of the distance that the UAV could travel at its nominal
// cruise speed before the battery will be completely depleted").
func (p Platform) NominalRangeM() float64 {
	return p.CruiseSpeedMPS * p.BatteryMinutes * 60
}

// Vehicle is one flying UAV instance.
type Vehicle struct {
	Platform
	ID string

	pos geo.Vec3
	vel geo.Vec3

	batteryLeft float64 // seconds of flight remaining
	odometer    float64 // metres travelled
	failed      bool
}

// NewVehicle places a vehicle at a position with a full battery.
func NewVehicle(id string, p Platform, pos geo.Vec3) (*Vehicle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if id == "" {
		return nil, fmt.Errorf("uav: empty vehicle id")
	}
	return &Vehicle{
		Platform:    p,
		ID:          id,
		pos:         pos,
		batteryLeft: p.BatteryMinutes * 60,
	}, nil
}

// Position returns the current ENU position (metres).
func (v *Vehicle) Position() geo.Vec3 { return v.pos }

// Velocity returns the current velocity (m/s).
func (v *Vehicle) Velocity() geo.Vec3 { return v.vel }

// Speed returns the current ground speed.
func (v *Vehicle) Speed() float64 { return v.vel.Norm() }

// Odometer returns metres travelled since creation.
func (v *Vehicle) Odometer() float64 { return v.odometer }

// BatteryLeftSeconds returns remaining flight time.
func (v *Vehicle) BatteryLeftSeconds() float64 { return v.batteryLeft }

// BatteryFraction returns remaining battery in [0,1].
func (v *Vehicle) BatteryFraction() float64 {
	return v.batteryLeft / (v.BatteryMinutes * 60)
}

// Failed reports whether the vehicle has been marked failed.
func (v *Vehicle) Failed() bool { return v.failed }

// Fail marks the vehicle failed; a failed vehicle no longer moves.
func (v *Vehicle) Fail() { v.failed = true }

// Teleport force-places the vehicle (test and scenario setup only).
func (v *Vehicle) Teleport(pos geo.Vec3) { v.pos = pos }

// Step advances the vehicle by dt seconds toward the commanded velocity,
// honouring acceleration, speed and stall limits and draining the battery.
// A failed or battery-dead vehicle does not move.
func (v *Vehicle) Step(dt float64, cmdVel geo.Vec3) {
	if dt <= 0 || v.failed || v.batteryLeft <= 0 {
		return
	}
	cmd := cmdVel.ClampNorm(v.MaxSpeedMPS)
	if !v.CanHover {
		// Fixed wing: never below stall speed. If commanded slower, keep
		// direction (or current heading) at stall speed.
		if cmd.Norm() < v.StallSpeedMPS {
			dir := cmd.Unit()
			if cmd.Norm() == 0 {
				dir = v.vel.Unit()
				if dir == (geo.Vec3{}) {
					dir = geo.Vec3{Y: 1}
				}
			}
			cmd = dir.Scale(v.StallSpeedMPS)
		}
	}
	// Acceleration-limited velocity tracking.
	dv := cmd.Sub(v.vel)
	maxDv := v.AccelMPS2 * dt
	dv = dv.ClampNorm(maxDv)
	v.vel = v.vel.Add(dv)

	step := v.vel.Scale(dt)
	v.pos = v.pos.Add(step)
	if v.pos.Z > v.MaxSafeAltitudeM {
		v.pos.Z = v.MaxSafeAltitudeM
	}
	if v.pos.Z < 0 {
		v.pos.Z = 0
	}
	v.odometer += step.Norm()

	// Battery drain follows the platform's power polar: one battery lasts
	// BatteryMinutes at cruise, less when hovering hard or sprinting.
	v.batteryLeft -= dt * v.PowerFraction(v.Speed())
	if v.batteryLeft < 0 {
		v.batteryLeft = 0
	}
}
