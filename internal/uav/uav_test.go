package uav

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nowlater/nowlater/internal/geo"
)

func TestTable1Values(t *testing.T) {
	sw := Swinglet()
	if sw.CanHover || sw.CruiseSpeedMPS != 10 || sw.BatteryMinutes != 30 ||
		sw.MaxSafeAltitudeM != 300 || sw.WeightKg != 0.5 {
		t.Fatalf("Swinglet spec diverges from Table 1: %+v", sw)
	}
	ac := Arducopter()
	if !ac.CanHover || ac.CruiseSpeedMPS != 4.5 || ac.BatteryMinutes != 20 ||
		ac.MaxSafeAltitudeM != 100 || ac.WeightKg != 1.7 {
		t.Fatalf("Arducopter spec diverges from Table 1: %+v", ac)
	}
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ac.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNominalRangeMatchesPaperFailureRates(t *testing.T) {
	// The paper: ρ is the inverse of the battery range. Airplane
	// ρ = 1.11e−4 → range ≈ 9000 m; quad ρ = 2.46e−4 → range ≈ 4065 m.
	// Table 1 ranges: 10 m/s × 30 min = 18 km, 4.5 × 20 min = 5.4 km. The
	// paper evidently budgets a return trip (half the one-way range) for
	// the airplane; we verify our platforms bracket the paper's numbers.
	sw, ac := Swinglet(), Arducopter()
	if r := sw.NominalRangeM(); r != 18000 {
		t.Fatalf("Swinglet range = %v", r)
	}
	if r := ac.NominalRangeM(); r != 5400 {
		t.Fatalf("Arducopter range = %v", r)
	}
	if rho := 1 / sw.NominalRangeM(); rho > 1.11e-4 {
		t.Fatalf("airplane ρ from range = %v should be ≤ paper's 1.11e−4", rho)
	}
	if rho := 1 / ac.NominalRangeM(); rho > 2.46e-4 {
		t.Fatalf("quad ρ from range = %v should be ≤ paper's 2.46e−4", rho)
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	bad := []func(*Platform){
		func(p *Platform) { p.CruiseSpeedMPS = 0 },
		func(p *Platform) { p.MaxSpeedMPS = 1 },
		func(p *Platform) { p.StallSpeedMPS = -1 },
		func(p *Platform) { p.BatteryMinutes = 0 },
		func(p *Platform) { p.MaxSafeAltitudeM = 0 },
		func(p *Platform) { p.AccelMPS2 = 0 },
		func(p *Platform) { p.CanHover = false; p.StallSpeedMPS = 0 },
	}
	for i, mutate := range bad {
		p := Arducopter()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	if _, err := NewVehicle("", Arducopter(), geo.Vec3{}); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestQuadAcceleratesToCommandAndStops(t *testing.T) {
	v, err := NewVehicle("q1", Arducopter(), geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	cmd := geo.Vec3{X: 4.5}
	for i := 0; i < 100; i++ {
		v.Step(0.1, cmd)
	}
	if math.Abs(v.Speed()-4.5) > 0.01 {
		t.Fatalf("speed = %v, want 4.5", v.Speed())
	}
	for i := 0; i < 100; i++ {
		v.Step(0.1, geo.Vec3{})
	}
	if v.Speed() > 0.01 {
		t.Fatalf("quad failed to stop: %v", v.Speed())
	}
}

func TestAirplaneCannotStallOrStop(t *testing.T) {
	v, err := NewVehicle("a1", Swinglet(), geo.Vec3{Z: 90})
	if err != nil {
		t.Fatal(err)
	}
	// Get it flying first.
	for i := 0; i < 100; i++ {
		v.Step(0.1, geo.Vec3{X: 10})
	}
	// Command a stop: the airplane must keep at least stall speed.
	for i := 0; i < 100; i++ {
		v.Step(0.1, geo.Vec3{})
	}
	if v.Speed() < Swinglet().StallSpeedMPS-0.01 {
		t.Fatalf("airplane speed %v fell below stall %v", v.Speed(), Swinglet().StallSpeedMPS)
	}
}

func TestSpeedCappedAtMax(t *testing.T) {
	v, err := NewVehicle("q1", Arducopter(), geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		v.Step(0.1, geo.Vec3{X: 100})
	}
	if v.Speed() > Arducopter().MaxSpeedMPS+1e-9 {
		t.Fatalf("speed %v exceeds max", v.Speed())
	}
}

func TestAltitudeEnvelope(t *testing.T) {
	v, err := NewVehicle("q1", Arducopter(), geo.Vec3{Z: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v.Step(0.1, geo.Vec3{Z: 10})
	}
	if v.Position().Z > Arducopter().MaxSafeAltitudeM {
		t.Fatalf("climbed past ceiling: %v", v.Position().Z)
	}
	for i := 0; i < 400; i++ {
		v.Step(0.1, geo.Vec3{Z: -10})
	}
	if v.Position().Z < 0 {
		t.Fatalf("flew underground: %v", v.Position().Z)
	}
}

func TestOdometerAndBattery(t *testing.T) {
	v, err := NewVehicle("q1", Arducopter(), geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	start := v.BatteryLeftSeconds()
	for i := 0; i < 100; i++ {
		v.Step(0.1, geo.Vec3{X: 4.5})
	}
	if v.Odometer() <= 0 {
		t.Fatal("odometer did not advance")
	}
	if v.BatteryLeftSeconds() >= start {
		t.Fatal("battery did not drain")
	}
	if f := v.BatteryFraction(); f <= 0 || f >= 1 {
		t.Fatalf("battery fraction = %v", f)
	}
	// Faster than cruise drains faster than real time.
	v2, _ := NewVehicle("q2", Arducopter(), geo.Vec3{Z: 10})
	for i := 0; i < 100; i++ {
		v2.Step(0.1, geo.Vec3{X: 10})
	}
	if v2.BatteryLeftSeconds() >= v.BatteryLeftSeconds() {
		t.Fatal("sprinting should cost more battery")
	}
}

func TestFailedVehicleFreezes(t *testing.T) {
	v, err := NewVehicle("q1", Arducopter(), geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	v.Fail()
	if !v.Failed() {
		t.Fatal("Failed() false")
	}
	pos := v.Position()
	v.Step(1, geo.Vec3{X: 5})
	if v.Position() != pos {
		t.Fatal("failed vehicle moved")
	}
}

func TestDeadBatteryFreezes(t *testing.T) {
	p := Arducopter()
	p.BatteryMinutes = 1.0 / 60 // one second of battery
	v, err := NewVehicle("q1", p, geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		v.Step(0.1, geo.Vec3{X: 5})
	}
	if v.BatteryLeftSeconds() != 0 {
		t.Fatalf("battery = %v", v.BatteryLeftSeconds())
	}
	pos := v.Position()
	v.Step(1, geo.Vec3{X: 5})
	if v.Position() != pos {
		t.Fatal("dead vehicle moved")
	}
}

func TestZeroOrNegativeDtIgnored(t *testing.T) {
	v, err := NewVehicle("q1", Arducopter(), geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	pos := v.Position()
	v.Step(0, geo.Vec3{X: 5})
	v.Step(-1, geo.Vec3{X: 5})
	if v.Position() != pos {
		t.Fatal("zero/negative dt moved the vehicle")
	}
}

// Property: odometer equals integrated speed (within numeric tolerance) for
// arbitrary command sequences.
func TestOdometerConsistencyProperty(t *testing.T) {
	f := func(cmds []int8) bool {
		v, err := NewVehicle("q", Arducopter(), geo.Vec3{Z: 10})
		if err != nil {
			return false
		}
		var integrated float64
		for _, c := range cmds {
			v.Step(0.1, geo.Vec3{X: float64(c % 10)})
			integrated += v.Speed() * 0.1
		}
		return math.Abs(v.Odometer()-integrated) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFractionShapes(t *testing.T) {
	quad := Arducopter()
	// Anchored at cruise.
	if f := quad.PowerFraction(quad.CruiseSpeedMPS); math.Abs(f-1) > 1e-9 {
		t.Fatalf("quad cruise fraction = %v", f)
	}
	// Hover costs more than best-endurance forward flight.
	if quad.PowerFraction(0) <= quad.PowerFraction(0.7*quad.CruiseSpeedMPS) {
		t.Fatal("hover should cost more than endurance speed")
	}
	// Sprinting costs much more than cruising.
	if quad.PowerFraction(quad.MaxSpeedMPS) < 1.5 {
		t.Fatalf("sprint fraction = %v", quad.PowerFraction(quad.MaxSpeedMPS))
	}
	plane := Swinglet()
	if f := plane.PowerFraction(plane.CruiseSpeedMPS); math.Abs(f-1) > 1e-9 {
		t.Fatalf("plane cruise fraction = %v", f)
	}
	// The U-curve: both stall-speed and max-speed flight cost more.
	if plane.PowerFraction(plane.StallSpeedMPS) <= 1 || plane.PowerFraction(plane.MaxSpeedMPS) <= 1 {
		t.Fatal("fixed-wing polar should rise away from cruise")
	}
	// Degenerate platform does not divide by zero.
	if (Platform{}).PowerFraction(5) != 1 {
		t.Fatal("zero-cruise platform should default to 1")
	}
}

func TestBatteryLastsNominalAtCruise(t *testing.T) {
	p := Arducopter()
	p.BatteryMinutes = 1 // one minute for a fast test
	v, err := NewVehicle("q", p, geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for v.BatteryLeftSeconds() > 0 && steps < 10000 {
		v.Step(0.1, geo.Vec3{X: p.CruiseSpeedMPS})
		steps++
	}
	// ≈600 steps of 0.1 s, within the spin-up tolerance.
	if steps < 550 || steps > 650 {
		t.Fatalf("battery lasted %d steps at cruise, want ≈600", steps)
	}
}
