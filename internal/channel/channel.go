// Package channel models the aerial line-of-sight wireless channel between
// two small UAVs at 5 GHz, the substrate under every throughput figure of
// the paper (Figs 1, 5, 6, 7).
//
// The paper assumes LoS links so Euclidean distance governs signal quality
// (Section 5). What it measures on top of that assumption is a channel that
// is markedly *worse* than an indoor 802.11n link: planar antennas on a
// banking airframe produce orientation losses, and relative motion turns a
// calm Rician channel into a rapidly-fading one that defeats PHY auto-rate
// (Sections 3.1–3.2). The model therefore has three parts:
//
//   - deterministic log-distance path loss (free-space-like exponent);
//   - a slowly varying antenna-orientation loss process whose variance and
//     rate grow with the platform's attitude dynamics (i.e. with speed);
//   - Rician small-scale fading whose K-factor falls with relative speed
//     (attitude jitter breaks the dominant path) and with distance (grazing
//     ground scatter adds diffuse energy far out).
//
// All losses are in dB; the channel's product is the instantaneous SNR seen
// by one frame transmission.
package channel

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/stats"
)

// Params configures the aerial channel. The zero value is not usable; start
// from DefaultParams (calibrated against the paper's Figs 5 and 7) and
// override as needed.
type Params struct {
	// TxPowerDBm is the transmit power at the antenna port.
	TxPowerDBm float64
	// AntennaGainDBi is the best-case combined antenna gain of both ends.
	AntennaGainDBi float64
	// IntegrationLossDB lumps the airframe-integration penalties the paper
	// observed: near-field coupling with the fuselage, cable and connector
	// loss on the USB adapter, and the ground-plane the planar antennas
	// lack. It is the main calibration constant that separates the aerial
	// link budget from a clean indoor one.
	IntegrationLossDB float64
	// FrequencyHz is the carrier frequency (channel 40 → 5.2 GHz).
	FrequencyHz float64
	// PathLossExponent is the log-distance exponent (2 = free space).
	PathLossExponent float64
	// ReferenceDistanceM anchors the log-distance model (free-space loss is
	// used up to this distance).
	ReferenceDistanceM float64
	// NoiseFigureDB is the receiver noise figure.
	NoiseFigureDB float64
	// BandwidthHz is the receiver bandwidth (40 MHz channel bonding).
	BandwidthHz float64

	// OrientBaseDB / OrientSpeedDB control the mean antenna-orientation
	// loss: mean = OrientBaseDB + OrientSpeedDB·(1 − e^{−v/OrientSpeedScale}).
	// A hovering quadrocopter holds attitude (small loss); a moving
	// airframe swings its antenna pattern through nulls, but the effect
	// saturates: at cruise the attitude envelope is already fully
	// exercised, so 20 m/s is not much worse than 10 m/s.
	OrientBaseDB        float64
	OrientSpeedDB       float64
	OrientSpeedScaleMPS float64
	// OrientSigmaDB is the standard deviation of the orientation-loss
	// process around its mean.
	OrientSigmaDB float64
	// OrientRateHz is the rate at which the orientation process decorrelates
	// at 10 m/s relative speed; it scales linearly with speed and has a
	// floor for the hovering case (attitude jitter never fully stops).
	OrientRateHz float64

	// KRefDB is the Rician K-factor (dB) of a hovering link at the
	// reference distance. KSpeedSlopeDB reduces K per m/s of relative
	// speed; KDistSlopeDB reduces K per octave of distance.
	KRefDB        float64
	KSpeedSlopeDB float64
	KDistSlopeDB  float64
	// KFloorDB is the minimum K-factor (diffuse-only channel ≈ Rayleigh).
	KFloorDB float64

	// TwoRay switches the large-scale model from the calibrated
	// log-distance law to an explicit two-ray ground-reflection model
	// (direct plus ground-bounced path interfering by phase). Below the
	// breakpoint the interference pattern oscillates around free space —
	// the physical grounding for the fitted sub-2 exponents of the
	// default model. GroundReflectionCoeff is the reflection magnitude
	// (grass ≈ 0.6–0.9 at grazing incidence).
	TwoRay                bool
	GroundReflectionCoeff float64

	// GroundProximityDB adds extra loss per octave of distance when the
	// link flies below GroundProximityAltM (the quadrocopter tests at 10 m
	// altitude see steeper decay than the airplanes at 80–100 m, Fig 7 vs
	// Fig 5). GroundProximityConstDB is the distance-independent part of
	// the same effect (Fresnel-zone obstruction by ground clutter).
	GroundProximityDB      float64
	GroundProximityConstDB float64
	GroundProximityAltM    float64
}

// DefaultParams returns the calibrated aerial channel parameters. The
// calibration targets are the paper's fitted medians:
// s_airplane(d) = −5.56·log2(d) + 49 Mb/s and
// s_quadrocopter(d) = −10.5·log2(d) + 73 Mb/s
// (see the calibration tests in package link).
func DefaultParams() Params {
	return Params{
		// A USB 802.11n adapter at 40 MHz transmits ~12 dBm per chain, and
		// its integrated planar antennas show no net gain once strapped to
		// an airframe.
		TxPowerDBm:        12,
		AntennaGainDBi:    0,
		IntegrationLossDB: 15,
		FrequencyHz:       5.2e9,
		// Below the two-ray breakpoint (4·h1·h2/λ ≈ hundreds of km at these
		// altitudes) the ground reflection rides constructively often
		// enough that fitted exponents fall below free space.
		PathLossExponent:       1.5,
		ReferenceDistanceM:     1,
		NoiseFigureDB:          6,
		BandwidthHz:            40e6,
		OrientBaseDB:           2,
		OrientSpeedDB:          7,
		OrientSpeedScaleMPS:    6,
		OrientSigmaDB:          6,
		OrientRateHz:           8,
		KRefDB:                 12,
		KSpeedSlopeDB:          1.5,
		KDistSlopeDB:           1.5,
		KFloorDB:               -2,
		GroundProximityDB:      0,
		GroundProximityConstDB: 15,
		GroundProximityAltM:    20,
	}
}

// Validate reports the first implausible parameter.
func (p Params) Validate() error {
	switch {
	case p.FrequencyHz <= 0:
		return fmt.Errorf("channel: frequency %v must be positive", p.FrequencyHz)
	case p.BandwidthHz <= 0:
		return fmt.Errorf("channel: bandwidth %v must be positive", p.BandwidthHz)
	case p.PathLossExponent < 1.5 || p.PathLossExponent > 6:
		return fmt.Errorf("channel: path loss exponent %v outside [1.5, 6]", p.PathLossExponent)
	case p.ReferenceDistanceM <= 0:
		return fmt.Errorf("channel: reference distance %v must be positive", p.ReferenceDistanceM)
	}
	return nil
}

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// FreeSpacePathLossDB returns the Friis free-space loss at distance d.
func FreeSpacePathLossDB(d, freqHz float64) float64 {
	if d <= 0 {
		d = 1e-3
	}
	lambda := SpeedOfLight / freqHz
	return 20 * math.Log10(4*math.Pi*d/lambda)
}

// NoiseFloorDBm returns kTB thermal noise plus the noise figure.
func NoiseFloorDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bandwidthHz) + noiseFigureDB
}

// Channel is a stateful sampled aerial channel between two endpoints. It is
// not safe for concurrent use; the simulator drives it from one goroutine.
type Channel struct {
	p          Params
	rng        *stats.RNG
	noiseDBm   float64
	refLossDB  float64
	excess     func(now float64) float64
	orientDB   float64 // current orientation-loss process value (dB)
	lastSample float64 // sim time of the previous sample
	started    bool
}

// SetExcessLoss installs a time-varying injected attenuation (dB) added to
// every sample's loss budget — the chaos layer's deep-fade bursts
// (obstruction, interference, a detuned antenna). Nil restores the nominal
// channel; the hook never touches the fading draws, so a hook returning 0
// is bit-identical to no hook.
func (c *Channel) SetExcessLoss(f func(now float64) float64) { c.excess = f }

// New builds a channel from params with its own random substream.
func New(p Params, rng *stats.RNG) (*Channel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Channel{
		p:         p,
		rng:       rng,
		noiseDBm:  NoiseFloorDBm(p.BandwidthHz, p.NoiseFigureDB),
		refLossDB: FreeSpacePathLossDB(p.ReferenceDistanceM, p.FrequencyHz),
	}
	return c, nil
}

// Params returns the channel's configuration.
func (c *Channel) Params() Params { return c.p }

// NoiseFloorDBm returns the receiver noise floor.
func (c *Channel) NoiseFloorDBm() float64 { return c.noiseDBm }

// PathLossDB returns the deterministic loss at distance d for a link flying
// at altitude alt (metres AGL; low links pay the ground-proximity term).
func (c *Channel) PathLossDB(d, alt float64) float64 {
	if d < c.p.ReferenceDistanceM {
		d = c.p.ReferenceDistanceM
	}
	if c.p.TwoRay {
		return c.twoRayPathLossDB(d, alt)
	}
	pl := c.refLossDB + 10*c.p.PathLossExponent*math.Log10(d/c.p.ReferenceDistanceM)
	if alt > 0 && alt < c.p.GroundProximityAltM {
		// Grazing ground interaction: a constant Fresnel-obstruction term
		// plus extra decay per octave, both weighted by how far below the
		// proximity altitude the link flies.
		w := 1 - alt/c.p.GroundProximityAltM
		pl += w * c.p.GroundProximityConstDB
		pl += w * c.p.GroundProximityDB * math.Log2(math.Max(1, d/c.p.ReferenceDistanceM))
	}
	return pl
}

// twoRayPathLossDB is the textbook two-ray model with equal terminal
// heights h = alt: the direct ray and a ground reflection with coefficient
// Γ interfere according to their path-length difference.
func (c *Channel) twoRayPathLossDB(d, alt float64) float64 {
	if alt <= 0 {
		alt = 1
	}
	lambda := SpeedOfLight / c.p.FrequencyHz
	direct := d
	reflected := math.Sqrt(d*d + 4*alt*alt)
	gamma := c.p.GroundReflectionCoeff
	if gamma == 0 {
		gamma = 0.7
	}
	dPhi := 2 * math.Pi * (reflected - direct) / lambda
	// Complex field sum: 1/direct + Γ·e^{jφ}·(−1)/reflected (grazing
	// reflection flips phase).
	re := 1/direct - gamma*math.Cos(dPhi)/reflected
	im := -gamma * math.Sin(dPhi) / reflected
	amp := math.Hypot(re, im) * lambda / (4 * math.Pi)
	if amp <= 0 {
		amp = 1e-12
	}
	return -20 * math.Log10(amp)
}

// MeanSNRDB returns the large-scale mean SNR at distance d, altitude alt and
// relative speed v: the link budget with the mean orientation loss but no
// fading. This is the quantity the deterministic strategy analysis needs.
func (c *Channel) MeanSNRDB(d, alt, v float64) float64 {
	rx := c.p.TxPowerDBm + c.p.AntennaGainDBi - c.p.IntegrationLossDB - c.PathLossDB(d, alt)
	rx -= c.meanOrientDB(v)
	return rx - c.noiseDBm
}

func (c *Channel) meanOrientDB(v float64) float64 {
	scale := c.p.OrientSpeedScaleMPS
	if scale <= 0 {
		scale = 6
	}
	return c.p.OrientBaseDB + c.p.OrientSpeedDB*(1-math.Exp(-v/scale))
}

// KFactorDB returns the Rician K-factor at distance d and relative speed v.
func (c *Channel) KFactorDB(d, v float64) float64 {
	k := c.p.KRefDB - c.p.KSpeedSlopeDB*v - c.p.KDistSlopeDB*math.Log2(math.Max(1, d/20))
	if k < c.p.KFloorDB {
		k = c.p.KFloorDB
	}
	return k
}

// Sample draws the instantaneous SNR (dB) for one frame sent at simulation
// time now, with the endpoints separated by d metres at altitude alt and
// closing at relative speed v. Successive samples are correlated through
// the orientation-loss process; fast Rician fading is drawn per sample
// (frame times exceed the fade coherence time once the platforms move).
type Sample struct {
	SNRDB      float64
	PathLossDB float64
	OrientDB   float64
	FadeDB     float64
	KFactorDB  float64
}

// Sample advances the channel to time now and draws one SNR sample.
func (c *Channel) Sample(now, d, alt, v float64) Sample {
	c.advanceOrientation(now, v)
	kDB := c.KFactorDB(d, v)
	fade := c.ricianFadeDB(kDB)
	pl := c.PathLossDB(d, alt)
	if c.excess != nil {
		pl += c.excess(now)
	}
	rx := c.p.TxPowerDBm + c.p.AntennaGainDBi - c.p.IntegrationLossDB - pl - c.orientDB + fade
	return Sample{
		SNRDB:      rx - c.noiseDBm,
		PathLossDB: pl,
		OrientDB:   c.orientDB,
		FadeDB:     fade,
		KFactorDB:  kDB,
	}
}

// advanceOrientation evolves the orientation-loss Ornstein–Uhlenbeck
// process: mean-reverting in dB with speed-dependent mean and rate.
func (c *Channel) advanceOrientation(now, v float64) {
	mean := c.meanOrientDB(v)
	// Attitude dynamics widen the swing: faster platforms bank harder.
	sigma := c.p.OrientSigmaDB * (1 + v/60)
	if !c.started {
		c.started = true
		c.lastSample = now
		c.orientDB = c.rng.Normal(mean, sigma)
		return
	}
	dt := now - c.lastSample
	if dt < 0 {
		dt = 0
	}
	c.lastSample = now
	// Decorrelation rate grows with speed; hovering keeps a slow floor.
	rate := c.p.OrientRateHz * (0.25 + v/10)
	a := math.Exp(-rate * dt)
	noise := sigma * math.Sqrt(math.Max(0, 1-a*a))
	// The process is a loss relative to boresight alignment, so negative
	// excursions (better than the mean pose) are allowed but bounded by
	// perfect alignment at −mean relative to it, i.e. an absolute gain of
	// at most the configured antenna gain — approximated by the mean.
	c.orientDB = mean + a*(c.orientDB-mean) + c.rng.Normal(0, noise)
	if c.orientDB < -mean {
		c.orientDB = -mean
	}
}

// ricianFadeDB draws a power fade in dB (0 dB = mean power) from a Rician
// envelope with the given K-factor.
func (c *Channel) ricianFadeDB(kDB float64) float64 {
	k := math.Pow(10, kDB/10)
	// Total mean power normalized to 1: LoS power k/(k+1), scatter 1/(k+1).
	nu := math.Sqrt(k / (k + 1))
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	env := c.rng.Rician(nu, sigma)
	pw := env * env
	if pw < 1e-9 {
		pw = 1e-9
	}
	return 10 * math.Log10(pw)
}
