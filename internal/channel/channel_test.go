package channel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nowlater/nowlater/internal/stats"
)

func newTestChannel(t *testing.T) *Channel {
	t.Helper()
	c, err := New(DefaultParams(), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.FrequencyHz = 0 },
		func(p *Params) { p.BandwidthHz = -1 },
		func(p *Params) { p.PathLossExponent = 0.5 },
		func(p *Params) { p.PathLossExponent = 9 },
		func(p *Params) { p.ReferenceDistanceM = 0 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
		if _, err := New(p, stats.NewRNG(1)); err == nil {
			t.Errorf("case %d: New accepted invalid params", i)
		}
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// Canonical figure: ~46.7 dB at 1 m, 5.2 GHz.
	got := FreeSpacePathLossDB(1, 5.2e9)
	if math.Abs(got-46.7) > 0.3 {
		t.Fatalf("FSPL(1m, 5.2GHz) = %v, want ≈46.7", got)
	}
	// +6 dB per distance doubling.
	if d := FreeSpacePathLossDB(2, 5.2e9) - got; math.Abs(d-6.02) > 0.01 {
		t.Fatalf("doubling adds %v dB, want ≈6.02", d)
	}
	// Non-positive distance is clamped, not NaN.
	if v := FreeSpacePathLossDB(0, 5.2e9); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("FSPL(0) = %v", v)
	}
}

func TestNoiseFloor(t *testing.T) {
	// −174 + 10·log10(40e6) + 6 ≈ −91.98 dBm.
	got := NoiseFloorDBm(40e6, 6)
	if math.Abs(got+91.98) > 0.05 {
		t.Fatalf("noise floor = %v, want ≈ −91.98", got)
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	c := newTestChannel(t)
	prev := -math.Inf(1)
	for d := 10.0; d <= 400; d += 10 {
		pl := c.PathLossDB(d, 80)
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m: %v <= %v", d, pl, prev)
		}
		prev = pl
	}
}

func TestGroundProximityAddsLoss(t *testing.T) {
	c := newTestChannel(t)
	lo := c.PathLossDB(80, 10) // quadrocopter altitude
	hi := c.PathLossDB(80, 90) // airplane altitude
	if lo <= hi {
		t.Fatalf("low-altitude link should see more loss: %v vs %v", lo, hi)
	}
	// The per-octave term (used by the ablation benchmarks) steepens the
	// low-altitude decay when enabled.
	p := DefaultParams()
	p.GroundProximityDB = 3
	cs, err := New(p, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	gapNear := cs.PathLossDB(20, 10) - cs.PathLossDB(20, 90)
	gapFar := cs.PathLossDB(80, 10) - cs.PathLossDB(80, 90)
	if gapFar <= gapNear {
		t.Fatalf("per-octave ground penalty should grow with distance: near %v, far %v", gapNear, gapFar)
	}
}

func TestMeanSNRDecreasesWithDistanceAndSpeed(t *testing.T) {
	c := newTestChannel(t)
	if a, b := c.MeanSNRDB(20, 80, 0), c.MeanSNRDB(80, 80, 0); a <= b {
		t.Fatalf("SNR should fall with distance: %v <= %v", a, b)
	}
	if a, b := c.MeanSNRDB(60, 80, 0), c.MeanSNRDB(60, 80, 15); a <= b {
		t.Fatalf("SNR should fall with speed: %v <= %v", a, b)
	}
}

func TestMeanSNRCalibrationAnchors(t *testing.T) {
	// The MCS ladder spans roughly 2–25 dB. For the paper's throughput
	// medians to come out right the hovering link must sit near the top of
	// the ladder at 20 m and near the bottom at 300+ m.
	c := newTestChannel(t)
	at20 := c.MeanSNRDB(20, 80, 0)
	if at20 < 14 || at20 > 28 {
		t.Fatalf("mean SNR at 20 m = %v, want within [14, 28]", at20)
	}
	at320 := c.MeanSNRDB(320, 80, 0)
	if at320 < -2 || at320 > 8 {
		t.Fatalf("mean SNR at 320 m = %v, want within [−2, 8]", at320)
	}
}

func TestKFactorBehaviour(t *testing.T) {
	c := newTestChannel(t)
	if kh, km := c.KFactorDB(40, 0), c.KFactorDB(40, 8); kh <= km {
		t.Fatalf("K should fall with speed: hover %v, moving %v", kh, km)
	}
	if kn, kf := c.KFactorDB(20, 0), c.KFactorDB(320, 0); kn <= kf {
		t.Fatalf("K should fall with distance: near %v, far %v", kn, kf)
	}
	if k := c.KFactorDB(5000, 30); k < DefaultParams().KFloorDB {
		t.Fatalf("K below floor: %v", k)
	}
}

func TestSampleMeanTracksLinkBudget(t *testing.T) {
	c := newTestChannel(t)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		s := c.Sample(float64(i)*0.002, 60, 80, 0)
		sum += s.SNRDB
	}
	mean := sum / n
	want := c.MeanSNRDB(60, 80, 0)
	// Fading is zero-mean in power, slightly negative-mean in dB (Jensen),
	// so allow a small downward bias.
	if mean > want+1 || mean < want-4 {
		t.Fatalf("sampled mean SNR %v, link budget %v", mean, want)
	}
}

func TestSampleVarianceGrowsWithSpeed(t *testing.T) {
	varAt := func(v float64) float64 {
		c, err := New(DefaultParams(), stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 4000)
		for i := range xs {
			xs[i] = c.Sample(float64(i)*0.002, 60, 80, v).SNRDB
		}
		return stats.Variance(xs)
	}
	hover, moving := varAt(0), varAt(15)
	if moving <= hover {
		t.Fatalf("SNR variance should grow with speed: hover %v, moving %v", hover, moving)
	}
}

func TestSampleFieldsConsistent(t *testing.T) {
	c := newTestChannel(t)
	s := c.Sample(0, 100, 80, 5)
	p := c.Params()
	reconstructed := p.TxPowerDBm + p.AntennaGainDBi - p.IntegrationLossDB -
		s.PathLossDB - s.OrientDB + s.FadeDB - c.NoiseFloorDBm()
	if math.Abs(reconstructed-s.SNRDB) > 1e-9 {
		t.Fatalf("sample fields inconsistent: %v vs %v", reconstructed, s.SNRDB)
	}
}

func TestOrientationCorrelationDecaysFasterWhenMoving(t *testing.T) {
	// Lag-1 autocorrelation of the orientation process at a 10 ms sampling
	// interval should be higher while hovering than at speed.
	corrAt := func(v float64) float64 {
		c, err := New(DefaultParams(), stats.NewRNG(9))
		if err != nil {
			t.Fatal(err)
		}
		n := 8000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = c.Sample(float64(i)*0.01, 60, 80, v).OrientDB
		}
		m := stats.Mean(xs)
		var num, den float64
		for i := 1; i < n; i++ {
			num += (xs[i] - m) * (xs[i-1] - m)
		}
		for _, x := range xs {
			den += (x - m) * (x - m)
		}
		return num / den
	}
	if ch, cm := corrAt(0), corrAt(20); ch <= cm {
		t.Fatalf("orientation correlation should decay with speed: hover %v, moving %v", ch, cm)
	}
}

// Property: samples never produce NaN/Inf SNR for any plausible geometry.
func TestSampleFiniteProperty(t *testing.T) {
	c := newTestChannel(t)
	i := 0
	f := func(dRaw, altRaw, vRaw uint16) bool {
		i++
		d := 1 + float64(dRaw%1000)
		alt := float64(altRaw % 300)
		v := float64(vRaw % 30)
		s := c.Sample(float64(i)*0.01, d, alt, v)
		return !math.IsNaN(s.SNRDB) && !math.IsInf(s.SNRDB, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoRayModel(t *testing.T) {
	p := DefaultParams()
	p.TwoRay = true
	p.GroundReflectionCoeff = 0.7
	c, err := New(p, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// At these geometries the two-ray loss stays within ±10 dB of free
	// space (constructive/destructive ripples around it).
	for _, d := range []float64{20, 50, 100, 200, 320} {
		tr := c.PathLossDB(d, 80)
		fs := FreeSpacePathLossDB(d, p.FrequencyHz)
		if math.Abs(tr-fs) > 10 {
			t.Fatalf("two-ray at %v m = %v dB, free space %v dB", d, tr, fs)
		}
	}
	// Averaged over a window, two-ray grows with distance like free space.
	avg := func(lo, hi float64) float64 {
		var sum float64
		n := 0
		for d := lo; d <= hi; d += 0.5 {
			sum += c.PathLossDB(d, 80)
			n++
		}
		return sum / float64(n)
	}
	if near, far := avg(20, 40), avg(200, 320); near >= far {
		t.Fatalf("two-ray average loss should grow: %v vs %v", near, far)
	}
	// Zero/negative altitude is clamped, not NaN.
	if v := c.PathLossDB(50, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("two-ray at alt 0 = %v", v)
	}
}

func TestExcessLossShiftsSamples(t *testing.T) {
	const extraDB = 25.0
	a := newTestChannel(t)
	b := newTestChannel(t)
	b.SetExcessLoss(func(float64) float64 { return extraDB })
	for i := 0; i < 100; i++ {
		now := float64(i) * 0.01
		sa := a.Sample(now, 50, 10, 0)
		sb := b.Sample(now, 50, 10, 0)
		// Identical substreams: the fade and orientation draws match, so
		// the SNR gap is exactly the injected attenuation.
		if math.Abs((sa.SNRDB-sb.SNRDB)-extraDB) > 1e-9 {
			t.Fatalf("sample %d: SNR gap %v, want %v", i, sa.SNRDB-sb.SNRDB, extraDB)
		}
	}
	b.SetExcessLoss(nil)
	sa, sb := a.Sample(2, 50, 10, 0), b.Sample(2, 50, 10, 0)
	if sa.SNRDB != sb.SNRDB {
		t.Fatalf("cleared hook still attenuates: %v vs %v", sa.SNRDB, sb.SNRDB)
	}
}
