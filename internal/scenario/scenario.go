// Package scenario is the declarative experiment layer: a Spec names the
// vehicles, trajectories, link, workloads, chaos script and decision policy
// of one flight scenario, and a Runtime compiles it onto the discrete-event
// engine of internal/sim. The paper's evaluation is one experiment shape —
// two vehicles, a link, a workload, a decision rule — instantiated nine
// ways; the Spec makes that shape data instead of per-figure rig code, so
// new scenarios (three vehicles, mid-flight kills, table-served decisions)
// are a JSON file rather than a new Go file.
//
// # The single-clock contract
//
// All time advancement belongs to sim.Engine (and to this package, which
// drives it). The Runtime is the only component that moves vehicles: it
// advances the engine clock either to accumulated ControlTickS boundaries
// (while waiting on arrivals or the wall clock) or to the link clock after
// each radio exchange (while a workload runs). Everything in between —
// chaos kills, waypoint-arrival predictions — is a scheduled engine event
// fired at its exact instant, and vehicles are integrated lazily: a craft
// is stepped in ControlTickS sub-ticks on the shared accumulated grid only
// when something observes it, and settled crafts elide sub-ticks entirely
// (replaying the owed battery drain on next access), so run cost scales
// with events processed rather than simulated time × fleet size. No other
// package may own a loop that trades simulated time for state.
package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/geo"
)

// ControlTickS is the autopilot control-loop period (seconds): the
// integration sub-tick at which every vehicle's velocity command is
// recomputed and its kinematics advanced. 20 ms matches the attitude-loop
// cadence of the paper's platforms and was previously duplicated as a
// magic 0.02 inside the experiments' flight rig.
const ControlTickS = 0.02

// MissionTickS is the mission-logic period (seconds): the cadence at which
// fleet state machines (scan progress, link-range checks, chaos kills) are
// re-evaluated. Coarser than ControlTickS because mission decisions do not
// need attitude-rate resolution; previously duplicated as a magic 0.1 in
// two places inside package fleet.
const MissionTickS = 0.1

// Platform names accepted by VehicleSpec.Platform.
const (
	// PlatformQuad is the paper's Arducopter quadrocopter.
	PlatformQuad = "arducopter"
	// PlatformPlane is the paper's Swinglet fixed-wing airplane.
	PlatformPlane = "swinglet"
)

// VehicleSpec declares one vehicle and its trajectory.
type VehicleSpec struct {
	ID string `json:"id"`
	// Platform is PlatformQuad or PlatformPlane.
	Platform string   `json:"platform"`
	Start    geo.Vec3 `json:"start"`
	// Hold station-keeps at Start (hover for quads, minimum-radius circling
	// for planes). Mutually exclusive with Route.
	Hold bool `json:"hold,omitempty"`
	// Route is the waypoint chain flown from Start. After the last waypoint
	// the vehicle holds there, unless Loop restarts the chain at LoopFrom.
	Route []geo.Vec3 `json:"route,omitempty"`
	// SpeedMPS is the commanded leg speed (0 selects the platform cruise
	// speed).
	SpeedMPS float64 `json:"speed_mps,omitempty"`
	// Loop repeats the route forever, re-entering at index LoopFrom — the
	// commuting and orbiting patterns of Figs 1 and 5.
	Loop     bool `json:"loop,omitempty"`
	LoopFrom int  `json:"loop_from,omitempty"`
}

// LinkSpec configures the scenario's packet-level radio.
type LinkSpec struct {
	// Seed drives the link's random substreams; 0 inherits Spec.Seed.
	Seed int64 `json:"seed,omitempty"`
	// Label separates substreams of links sharing a seed; empty defaults
	// to "scenario/<spec name>".
	Label string `json:"label,omitempty"`
	// Rate selects rate control: "" or "minstrel" for auto-rate, "mcsN"
	// for a fixed scheme.
	Rate string `json:"rate,omitempty"`
}

// TrafficSpec is an iperf-style saturation workload between two vehicles,
// recorded in geometry-labelled throughput windows (Figs 5–7).
type TrafficSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	// StartS delays the workload until the scenario clock reaches it.
	StartS    float64 `json:"start_s,omitempty"`
	DurationS float64 `json:"duration_s"`
	WindowS   float64 `json:"window_s"`
}

// DecisionSpec routes a transfer through the paper's now-or-later decision
// before any byte moves: given the distance d0 at which the transfer would
// start, compute the optimal transmit distance dopt and ship to it first.
type DecisionSpec struct {
	// Kind selects the decision engine: "exact" runs the golden-section
	// optimizer on the closed-form model; "table" serves dopt from a
	// precomputed policy table (internal/policy), the deployment path.
	Kind string `json:"kind"`
	// RhoPerM is the failure rate per metre fed to the decision model
	// (0 = failure-free, where dopt collapses to the separation floor).
	RhoPerM float64 `json:"rho_per_m,omitempty"`
}

// TransferSpec is a reliable batch delivery between two vehicles — the
// workload of Fig. 1 and of every ferrying mission.
type TransferSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	// SizeMB is the batch volume (Mdata) in megabytes.
	SizeMB float64 `json:"size_mb"`
	// DeadlineS bounds the transfer attempt; with StartOnArrival it also
	// bounds the wait for the sender's route to complete.
	DeadlineS float64 `json:"deadline_s"`
	// StartS delays the transfer until the scenario clock reaches it.
	StartS float64 `json:"start_s,omitempty"`
	// StartOnArrival waits for the sender to finish its route before
	// transmitting (the paper's silent shipping phase).
	StartOnArrival bool `json:"start_on_arrival,omitempty"`
	// Reliable re-enqueues MAC-dropped datagrams until delivered.
	Reliable bool `json:"reliable,omitempty"`
	// AltTo is a fallback receiver: if the batch did not complete (e.g. the
	// primary receiver was chaos-killed mid-transfer) and the fallback is
	// alive, the remainder is re-sent to it.
	AltTo string `json:"alt_to,omitempty"`
	// Decision, when set, runs the now-or-later rendezvous decision first.
	Decision *DecisionSpec `json:"decision,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Name string `json:"name"`
	// Seed drives every random substream not overridden per-component.
	Seed int64 `json:"seed"`
	// DurationS, when positive, keeps the scenario flying (vehicles moving,
	// chaos firing) until the clock reaches it even after all workloads
	// finished.
	DurationS float64        `json:"duration_s,omitempty"`
	Vehicles  []VehicleSpec  `json:"vehicles"`
	Link      LinkSpec       `json:"link,omitempty"`
	Traffic   []TrafficSpec  `json:"traffic,omitempty"`
	Transfers []TransferSpec `json:"transfers,omitempty"`
	// Requests is the data-pickup request-service workload (Poisson or
	// explicit arrivals dispatched to a serving fleet). Mutually exclusive
	// with Traffic and Transfers.
	Requests *RequestsSpec `json:"requests,omitempty"`
	// Chaos is a scripted fault schedule in the chaos text format, one
	// directive per line (e.g. "vehicle fail relay-1 99").
	Chaos []string `json:"chaos,omitempty"`
}

// decisionKinds are the accepted DecisionSpec.Kind values.
var decisionKinds = map[string]bool{"exact": true, "table": true}

// Validate reports the first implausible field.
func (s Spec) Validate() error {
	if len(s.Vehicles) == 0 {
		return fmt.Errorf("scenario: no vehicles")
	}
	if !finite(s.DurationS) || s.DurationS < 0 {
		return fmt.Errorf("scenario: duration %v must be finite and ≥ 0", s.DurationS)
	}
	ids := map[string]bool{}
	declared := map[string]int{}
	for i, v := range s.Vehicles {
		if v.ID == "" {
			return fmt.Errorf("scenario: vehicle %d: missing id", i)
		}
		if first, dup := declared[v.ID]; dup {
			return fmt.Errorf("scenario: vehicle %d: duplicate id %q (first declared by vehicle %d)", i, v.ID, first)
		}
		declared[v.ID] = i
		ids[v.ID] = true
		if v.Platform != PlatformQuad && v.Platform != PlatformPlane {
			return fmt.Errorf("scenario: vehicle %s: unknown platform %q (want %q or %q)",
				v.ID, v.Platform, PlatformQuad, PlatformPlane)
		}
		if !finiteVec(v.Start) {
			return fmt.Errorf("scenario: vehicle %s: non-finite start", v.ID)
		}
		if !finite(v.SpeedMPS) || v.SpeedMPS < 0 {
			return fmt.Errorf("scenario: vehicle %s: speed %v must be finite and ≥ 0", v.ID, v.SpeedMPS)
		}
		if v.Hold && len(v.Route) > 0 {
			return fmt.Errorf("scenario: vehicle %s: hold and route are mutually exclusive", v.ID)
		}
		for j, wp := range v.Route {
			if !finiteVec(wp) {
				return fmt.Errorf("scenario: vehicle %s: non-finite waypoint %d", v.ID, j)
			}
		}
		if v.Loop && len(v.Route) == 0 {
			return fmt.Errorf("scenario: vehicle %s: loop without a route", v.ID)
		}
		if v.LoopFrom < 0 || (len(v.Route) > 0 && v.LoopFrom >= len(v.Route)) {
			return fmt.Errorf("scenario: vehicle %s: loop_from %d outside route", v.ID, v.LoopFrom)
		}
		if !v.Loop && v.LoopFrom != 0 {
			return fmt.Errorf("scenario: vehicle %s: loop_from without loop", v.ID)
		}
	}
	if _, err := ParseRate(s.Link.Rate); err != nil {
		return err
	}
	for i, t := range s.Traffic {
		if !ids[t.From] {
			return fmt.Errorf("scenario: traffic %d: unknown from vehicle %q", i, t.From)
		}
		if !ids[t.To] {
			return fmt.Errorf("scenario: traffic %d: unknown to vehicle %q", i, t.To)
		}
		if t.From == t.To {
			return fmt.Errorf("scenario: traffic %d: from == to (%q)", i, t.From)
		}
		if !finite(t.StartS) || t.StartS < 0 {
			return fmt.Errorf("scenario: traffic %d: start %v must be finite and ≥ 0", i, t.StartS)
		}
		if !finite(t.DurationS) || t.DurationS <= 0 {
			return fmt.Errorf("scenario: traffic %d: duration %v must be positive and finite", i, t.DurationS)
		}
		if !finite(t.WindowS) || t.WindowS <= 0 {
			return fmt.Errorf("scenario: traffic %d: window %v must be positive and finite", i, t.WindowS)
		}
	}
	for i, t := range s.Transfers {
		if !ids[t.From] {
			return fmt.Errorf("scenario: transfer %d: unknown from vehicle %q", i, t.From)
		}
		if !ids[t.To] {
			return fmt.Errorf("scenario: transfer %d: unknown to vehicle %q", i, t.To)
		}
		if t.From == t.To {
			return fmt.Errorf("scenario: transfer %d: from == to (%q)", i, t.From)
		}
		if t.AltTo != "" {
			if !ids[t.AltTo] {
				return fmt.Errorf("scenario: transfer %d: unknown alt_to vehicle %q", i, t.AltTo)
			}
			if t.AltTo == t.From {
				return fmt.Errorf("scenario: transfer %d: alt_to %q is the sender", i, t.AltTo)
			}
		}
		if !finite(t.SizeMB) || t.SizeMB <= 0 {
			return fmt.Errorf("scenario: transfer %d: size %v MB must be positive and finite", i, t.SizeMB)
		}
		if !finite(t.DeadlineS) || t.DeadlineS <= 0 {
			return fmt.Errorf("scenario: transfer %d: deadline %v must be positive and finite", i, t.DeadlineS)
		}
		if !finite(t.StartS) || t.StartS < 0 {
			return fmt.Errorf("scenario: transfer %d: start %v must be finite and ≥ 0", i, t.StartS)
		}
		if d := t.Decision; d != nil {
			if !decisionKinds[d.Kind] {
				return fmt.Errorf("scenario: transfer %d: unknown decision kind %q", i, d.Kind)
			}
			if !finite(d.RhoPerM) || d.RhoPerM < 0 {
				return fmt.Errorf("scenario: transfer %d: rho %v must be finite and ≥ 0", i, d.RhoPerM)
			}
		}
	}
	if s.Requests != nil {
		if err := s.validateRequests(); err != nil {
			return err
		}
	}
	if _, err := s.ChaosSchedule(); err != nil {
		return err
	}
	return nil
}

// ChaosSchedule parses the Spec's chaos lines (nil when there are none).
func (s Spec) ChaosSchedule() (*chaos.Schedule, error) {
	if len(s.Chaos) == 0 {
		return nil, nil
	}
	sched, err := chaos.ParseString(strings.Join(s.Chaos, "\n"))
	if err != nil {
		// Parse errors already carry a "chaos: line N:" prefix.
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return sched, nil
}

// ParseRate parses a LinkSpec.Rate string into a fixed MCS index; fixed is
// false for auto-rate ("" or "minstrel").
func ParseRate(rate string) (mcs int, err error) {
	switch {
	case rate == "" || rate == "minstrel":
		return -1, nil
	case strings.HasPrefix(rate, "mcs"):
		n, err := strconv.Atoi(strings.TrimPrefix(rate, "mcs"))
		if err != nil || n < 0 || n > 31 {
			return 0, fmt.Errorf("scenario: bad rate %q", rate)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("scenario: bad rate %q (want \"minstrel\" or \"mcsN\")", rate)
	}
}

// finite reports whether x is a usable real number. Every numeric Spec
// field passes through this one gate in Validate, so a NaN or ±Inf —
// whether smuggled through JSON decoding or constructed programmatically —
// is rejected at load time rather than poisoning the engine clock mid-run.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func finiteVec(v geo.Vec3) bool {
	return finite(v.X) && finite(v.Y) && finite(v.Z)
}
