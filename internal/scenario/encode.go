package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
)

// Encode renders a Spec as indented JSON, the on-disk scenario format. The
// encoding is canonical — struct-ordered fields, empty fields omitted — so
// equal Specs encode to equal bytes and Fingerprint is stable.
func Encode(s Spec) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// Decode parses a JSON Spec and validates it. Unknown fields are rejected:
// a typo in a hand-authored scenario must fail loudly, not silently run a
// different experiment.
func Decode(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode: %w", err)
	}
	// A second document after the first is a malformed file.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: decode: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and decodes a Spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return Decode(data)
}

// Fingerprint hashes the canonical encoding of a Spec (FNV-1a). Two Specs
// share a fingerprint exactly when they encode identically — the identity
// used to label result files and reject mismatched comparisons.
func Fingerprint(s Spec) (uint64, error) {
	data, err := Encode(s)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}
