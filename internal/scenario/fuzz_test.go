package scenario

import (
	"reflect"
	"testing"
)

// fuzzSpecSeeds is the shared seed corpus for the spec fuzzers: decode
// probes, validation edge cases, and non-finite smuggling attempts.
func fuzzSpecSeeds() [][]byte {
	return [][]byte{
		[]byte(""),
		[]byte("{}"),
		[]byte(`{"name":"x"}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"swinglet","start":{"x":1},"route":[{"x":5}],"loop":true}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true}],"chaos":["vehicle fail a 5"]}`),
		// Non-finite smuggling attempts, one per numeric field class: JSON
		// cannot spell NaN, but out-of-range exponents and bare literals
		// probe both the decode gate and Validate's shared finite() check.
		[]byte(`{"name":"x","seed":1,"duration_s":1e999,"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{"x":NaN},"hold":true}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"speed_mps":-1e999,"route":[{"x":5}]}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"route":[{"y":Infinity}]}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true},{"id":"b","platform":"arducopter","start":{},"hold":true}],"traffic":[{"from":"a","to":"b","start_s":1e999,"duration_s":1,"window_s":1}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true},{"id":"b","platform":"arducopter","start":{},"hold":true}],"transfers":[{"from":"a","to":"b","size_mb":1e999,"deadline_s":10}]}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true},{"id":"b","platform":"arducopter","start":{},"hold":true}],"transfers":[{"from":"a","to":"b","size_mb":1,"deadline_s":10,"decision":{"kind":"exact","rho_per_m":1e999}}]}`),
		[]byte(`{"name":"x","seed":1,"link":{"rate":"mcs99"},"vehicles":[{"id":"a","platform":"arducopter","start":{},"hold":true}]}`),
		// Requests-section probes: a well-formed workload, then malformed
		// request lines — non-finite origins/sizes, a deadline before the
		// arrival, the reserved auto- id prefix, and poisson bands smuggling
		// overflow exponents.
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","planner":"joint","requests":[{"id":"r1","origin":{"x":100,"z":30},"size_mb":1,"deadline_s":120}]}}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","requests":[{"id":"r1","origin":{"x":1e999,"z":30},"size_mb":1,"deadline_s":120}]}}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","requests":[{"id":"r1","origin":{"x":100,"z":30},"size_mb":NaN,"deadline_s":120}]}}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","requests":[{"id":"r1","origin":{"x":100,"z":30},"size_mb":1,"arrival_s":50,"deadline_s":10}]}}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","requests":[{"id":"auto-001","origin":{"x":100,"z":30},"size_mb":1,"deadline_s":120}]}}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","energy_budget_s":-1e999,"poisson":{"rate_per_s":0.1,"count":3,"min_size_mb":1,"max_size_mb":2,"min_lead_s":60,"max_lead_s":120,"area_m":500,"alt_m":30}}}`),
		[]byte(`{"name":"x","seed":1,"vehicles":[{"id":"c","platform":"arducopter","start":{},"hold":true},{"id":"s","platform":"arducopter","start":{"x":50}}],"requests":{"collector":"c","poisson":{"rate_per_s":1e999,"count":3,"min_size_mb":1,"max_size_mb":2,"min_lead_s":60,"max_lead_s":Infinity,"area_m":500,"alt_m":30}}}`),
	}
}

// FuzzDecodeSpec: Decode must never panic on arbitrary bytes, and any spec
// it accepts must survive a byte-exact Encode/Decode round trip — the
// fixpoint property that makes Fingerprint a usable identity.
func FuzzDecodeSpec(f *testing.F) {
	seeds := fuzzSpecSeeds()
	if data, err := Encode(twoQuadSpec()); err == nil {
		seeds = append(seeds, data)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(again, s) {
			t.Fatalf("round trip changed accepted spec:\n got %#v\nwant %#v", again, s)
		}
		enc2, err := Encode(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Fatal("encoding not a fixpoint")
		}
	})
}

// FuzzResolveSpec: Resolve must never panic on any decodable input, must
// accept exactly what Validate accepts, and everything it resolves must be
// deterministic with checked cross-references (every handle indexes the
// vehicle table, kills time-sorted, requests arrival-sorted).
func FuzzResolveSpec(f *testing.F) {
	seeds := fuzzSpecSeeds()
	if data, err := Encode(irSpec()); err == nil {
		seeds = append(seeds, data)
	}
	if data, err := Encode(requestsIRSpec()); err == nil {
		seeds = append(seeds, data)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		p, err := Resolve(s)
		if (err == nil) != (s.Validate() == nil) {
			t.Fatalf("Resolve and Validate disagree: resolve err %v", err)
		}
		if err != nil {
			return
		}
		q, err := Resolve(s)
		if err != nil {
			t.Fatalf("second Resolve of an accepted spec failed: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("Resolve not deterministic")
		}
		n := len(p.Vehicles)
		checkHandle := func(h int) {
			if h < 0 || h >= n {
				t.Fatalf("handle %d outside vehicle table of %d", h, n)
			}
		}
		for i, k := range p.Kills {
			checkHandle(k.Vehicle)
			if k.AtS < 0 {
				t.Fatalf("kill %d at negative time %v", i, k.AtS)
			}
			if i > 0 && k.AtS < p.Kills[i-1].AtS {
				t.Fatal("kills not time-sorted")
			}
		}
		for _, tr := range p.Traffic {
			checkHandle(tr.From)
			checkHandle(tr.To)
		}
		for _, tr := range p.Transfers {
			checkHandle(tr.From)
			checkHandle(tr.To)
			if tr.AltTo != NoVehicle {
				checkHandle(tr.AltTo)
			}
		}
		if rp := p.Requests; rp != nil {
			checkHandle(rp.Collector)
			for _, h := range rp.Servers {
				checkHandle(h)
			}
			for i := 1; i < len(rp.Requests); i++ {
				if rp.Requests[i].ArrivalS < rp.Requests[i-1].ArrivalS {
					t.Fatal("requests not arrival-sorted")
				}
			}
		}
	})
}
