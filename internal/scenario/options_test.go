package scenario

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/sim"
)

// richSpec exercises every Runtime subsystem at once: routes with loops, a
// hold, a mid-flight kill, link chaos, traffic and a decided transfer with
// failover.
func richSpec() Spec {
	return Spec{
		Name: "options-rich",
		Seed: 11,
		Vehicles: []VehicleSpec{
			{ID: "tx", Platform: PlatformQuad, Start: geo.Vec3{X: 300, Z: 20},
				Route: []geo.Vec3{{X: 120, Z: 20}, {X: 60, Y: 40, Z: 20}}, SpeedMPS: 9},
			{ID: "rx", Platform: PlatformQuad, Start: geo.Vec3{Z: 20}, Hold: true},
			{ID: "alt", Platform: PlatformQuad, Start: geo.Vec3{Y: 30, Z: 20}, Hold: true},
			{ID: "orbit", Platform: PlatformPlane, Start: geo.Vec3{X: 500, Y: 500, Z: 60},
				Route: []geo.Vec3{{X: 700, Y: 500, Z: 60}, {X: 700, Y: 700, Z: 60}}, Loop: true},
		},
		Traffic: []TrafficSpec{
			{From: "tx", To: "rx", StartS: 0.5, DurationS: 2.3, WindowS: 1},
		},
		Transfers: []TransferSpec{
			{From: "tx", To: "rx", SizeMB: 0.4, DeadlineS: 60, Reliable: true,
				StartOnArrival: true, AltTo: "alt",
				Decision: &DecisionSpec{Kind: "exact", RhoPerM: 1e-3}},
		},
		Chaos: []string{
			"vehicle fail orbit 7.31",
			"link fade rx 6 1 2",
		},
		DurationS: 25,
	}
}

// The lockstep reference path (no lazy integration, no elision) must
// produce a bit-identical Result to the event-driven core — the
// fundamental differential-oracle property.
func TestLockstepMatchesEventDriven(t *testing.T) {
	holders := twoQuadSpec()
	holders.DurationS = 20
	for _, spec := range []Spec{richSpec(), holders} {
		run := func(opts Options) (Result, *Runtime) {
			rt, err := CompileWithOptions(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res, rt
		}
		evRes, evRT := run(Options{CheckInvariants: true})
		lsRes, lsRT := run(Options{Lockstep: true, CheckInvariants: true})
		if got, want := ResultFingerprint(lsRes), ResultFingerprint(evRes); got != want {
			t.Fatalf("%s: lockstep fingerprint %016x != event-driven %016x", spec.Name, got, want)
		}
		for _, rt := range []*Runtime{evRT, lsRT} {
			if v := rt.InvariantViolations(); len(v) != 0 {
				t.Fatalf("%s: invariant violations: %v", spec.Name, v)
			}
		}
		if st := lsRT.Stats(); st.SubTicksElided != 0 {
			t.Fatalf("%s: lockstep run elided %d sub-ticks", spec.Name, st.SubTicksElided)
		}
		if st := evRT.Stats(); st.SubTicksElided == 0 {
			t.Fatalf("%s: event-driven run elided nothing — lockstep comparison is vacuous", spec.Name)
		}
	}
}

// A crafted under-sized event queue must abort gracefully: Run returns a
// typed ErrEventStorm, and the partial Result (vehicle states) survives.
func TestEventStormGracefulAbort(t *testing.T) {
	s := Spec{Name: "storm", Seed: 1, DurationS: 5}
	for _, id := range []string{"a", "b", "c", "d", "e", "f"} {
		s.Vehicles = append(s.Vehicles, VehicleSpec{
			ID: id, Platform: PlatformQuad, Start: geo.Vec3{Z: 10},
			Route: []geo.Vec3{{X: 100, Z: 10}}, SpeedMPS: 10,
		})
	}
	// Each routed craft arms one arrival-prediction event at compile time;
	// a limit of 3 cannot hold all six.
	rt, err := CompileWithOptions(s, Options{PendingLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err == nil {
		t.Fatal("under-sized event queue did not surface an error")
	}
	if !errors.Is(err, sim.ErrEventStorm) {
		t.Fatalf("err = %v, want errors.Is sim.ErrEventStorm", err)
	}
	if len(res.Vehicles) != len(s.Vehicles) {
		t.Fatalf("partial result lost vehicle states: got %d, want %d", len(res.Vehicles), len(s.Vehicles))
	}
	if st := rt.Stats(); st.PeakPendingEvents > 3 {
		t.Fatalf("peak pending %d exceeded the limit 3", st.PeakPendingEvents)
	}
}

// The default queue bound must be invisible to legitimate scenarios and
// recorded in Stats.
func TestDefaultPendingLimitGenerous(t *testing.T) {
	rt, err := Compile(richSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if lim := rt.Engine().PendingLimit(); lim < eventQueueBase {
		t.Fatalf("default pending limit %d below base %d", lim, eventQueueBase)
	}
	if st := rt.Stats(); st.PeakPendingEvents == 0 || st.PeakPendingEvents >= rt.Engine().PendingLimit() {
		t.Fatalf("peak pending %d implausible against limit %d", st.PeakPendingEvents, rt.Engine().PendingLimit())
	}
}

// Malformed chaos lines must fail at Spec validation with the offending
// line number, not mid-run (regression for the pre-validation era where a
// bad script was only parsed at Compile).
func TestChaosLineErrorsAtValidateWithLineNumber(t *testing.T) {
	s := twoQuadSpec()
	s.Chaos = []string{
		"vehicle fail tx 5",
		"link outage rx nonsense 9", // line 2: malformed number
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("malformed chaos line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the offending line", err)
	}
	// The same failure must also gate Decode, the file-load path.
	data, encErr := Encode(s)
	if encErr != nil {
		t.Fatal(encErr)
	}
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("Decode error %v does not name the offending line", err)
	}
}

// Every numeric field class must reject NaN and ±Inf through the one
// shared finite() gate — a NaN smuggled into any of them would otherwise
// poison the engine clock or the link model silently.
func TestValidateRejectsNonFiniteFieldClasses(t *testing.T) {
	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	cases := map[string]func(*Spec, float64){
		"duration":          func(s *Spec, x float64) { s.DurationS = x },
		"vehicle speed":     func(s *Spec, x float64) { s.Vehicles[0].SpeedMPS = x },
		"vehicle start":     func(s *Spec, x float64) { s.Vehicles[0].Start.X = x },
		"waypoint":          func(s *Spec, x float64) { s.Vehicles[0].Route[0].Y = x },
		"traffic start":     func(s *Spec, x float64) { s.Traffic[0].StartS = x },
		"traffic duration":  func(s *Spec, x float64) { s.Traffic[0].DurationS = x },
		"traffic window":    func(s *Spec, x float64) { s.Traffic[0].WindowS = x },
		"transfer size":     func(s *Spec, x float64) { s.Transfers[0].SizeMB = x },
		"transfer deadline": func(s *Spec, x float64) { s.Transfers[0].DeadlineS = x },
		"transfer start":    func(s *Spec, x float64) { s.Transfers[0].StartS = x },
		"decision rho":      func(s *Spec, x float64) { s.Transfers[0].Decision.RhoPerM = x },
	}
	for name, poison := range cases {
		for _, bad := range bads {
			s := richSpec()
			if s.Validate() != nil {
				t.Fatal("base spec must be valid")
			}
			poison(&s, bad)
			if err := s.Validate(); err == nil {
				t.Fatalf("%s = %v accepted", name, bad)
			}
		}
	}
}
