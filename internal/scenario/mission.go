package scenario

import (
	"fmt"
	"math"
	"strings"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/geo"
)

// Mission roles accepted by MissionVehicle.Role.
const (
	// RoleScout scans a sector and ferries its own imagery.
	RoleScout = "scout"
	// RoleRelay hovers and receives.
	RoleRelay = "relay"
)

// MissionVehicle declares one participant of a declarative fleet mission.
type MissionVehicle struct {
	ID       string   `json:"id"`
	Platform string   `json:"platform"`
	Start    geo.Vec3 `json:"start"`
	Role     string   `json:"role"`
	// Scout sensing assignment (ignored for relays): a SectorWM×SectorHM
	// lawnmower scan at AltitudeM anchored at SectorOrigin.
	SectorOrigin geo.Vec3 `json:"sector_origin,omitempty"`
	SectorWM     float64  `json:"sector_w_m,omitempty"`
	SectorHM     float64  `json:"sector_h_m,omitempty"`
	AltitudeM    float64  `json:"altitude_m,omitempty"`
	// MaxScanLanes truncates the lawnmower pattern (0 = full coverage).
	MaxScanLanes int `json:"max_scan_lanes,omitempty"`
}

// MissionSpec is the declarative form of a multi-UAV ferrying mission: the
// pure data a mission compiler (fleet.FromSpec) turns into scouts, relays,
// a planner and a chaos schedule. It lives here — not in package fleet —
// so experiment declarations and scenario files can state missions without
// importing the execution machinery.
type MissionSpec struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// MaxSeconds bounds the mission clock.
	MaxSeconds float64          `json:"max_seconds"`
	Vehicles   []MissionVehicle `json:"vehicles"`
	// Naive transmits where the link opens; otherwise deliveries route
	// through the planner's now-or-later rendezvous.
	Naive bool `json:"naive,omitempty"`
	// Resilient arms resumable transfers and relay reassignment.
	Resilient bool `json:"resilient,omitempty"`
	// StaleAfterS feeds the planner's telemetry aging (0 disables).
	StaleAfterS float64 `json:"stale_after_s,omitempty"`
	// LinkRangeM is where the data link opens (0 = compiler default).
	LinkRangeM float64 `json:"link_range_m,omitempty"`
	// TransferDeadlineS bounds each delivery attempt (0 = compiler
	// default).
	TransferDeadlineS float64 `json:"transfer_deadline_s,omitempty"`
	// Chaos is a scripted fault schedule in the chaos text format.
	Chaos []string `json:"chaos,omitempty"`
}

// Validate reports the first implausible field.
func (m MissionSpec) Validate() error {
	if !(m.MaxSeconds > 0) || math.IsInf(m.MaxSeconds, 0) {
		return fmt.Errorf("scenario: mission max seconds %v must be positive and finite", m.MaxSeconds)
	}
	ids := map[string]bool{}
	var scouts, relays int
	for i, v := range m.Vehicles {
		if v.ID == "" || ids[v.ID] {
			return fmt.Errorf("scenario: mission vehicle %d: missing or duplicate id %q", i, v.ID)
		}
		ids[v.ID] = true
		if v.Platform != PlatformQuad && v.Platform != PlatformPlane {
			return fmt.Errorf("scenario: mission vehicle %s: unknown platform %q", v.ID, v.Platform)
		}
		switch v.Role {
		case RoleScout:
			scouts++
			if !(v.SectorWM > 0) || !(v.SectorHM > 0) {
				return fmt.Errorf("scenario: mission scout %s: sector %vx%v must be positive", v.ID, v.SectorWM, v.SectorHM)
			}
		case RoleRelay:
			relays++
		default:
			return fmt.Errorf("scenario: mission vehicle %s: unknown role %q", v.ID, v.Role)
		}
	}
	if scouts == 0 || relays == 0 {
		return fmt.Errorf("scenario: mission needs at least one scout and one relay")
	}
	if _, err := m.ChaosSchedule(); err != nil {
		return err
	}
	return nil
}

// ChaosSchedule parses the mission's chaos lines (nil when there are none).
func (m MissionSpec) ChaosSchedule() (*chaos.Schedule, error) {
	if len(m.Chaos) == 0 {
		return nil, nil
	}
	sched, err := chaos.ParseString(strings.Join(m.Chaos, "\n"))
	if err != nil {
		return nil, fmt.Errorf("scenario: mission chaos: %w", err)
	}
	return sched, nil
}

// ChaosLines renders a schedule into MissionSpec.Chaos form (the text
// grammar, one directive per line), so programmatic schedules can be
// embedded in declarative specs. Round-tripping through the text format is
// property-tested in internal/chaos.
func ChaosLines(s *chaos.Schedule) []string {
	if s == nil {
		return nil
	}
	text := strings.TrimRight(s.String(), "\n")
	if text == "" {
		return nil
	}
	return strings.Split(text, "\n")
}
