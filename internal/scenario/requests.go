package scenario

import (
	"fmt"
	"math"
	"strings"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/trajopt"
)

// The requests workload: seeded Poisson arrivals of (origin, size,
// deadline) data-pickup demands served by a pool of vehicles delivering to
// one collector. Unlike traffic/transfers — which exercise the packet-level
// radio between two fixed endpoints — a request is an analytic service leg:
// fly to the origin, fly back toward the collector to a chosen transmit
// distance, hover and transmit at the platform's log-fit rate. What the
// planner chooses is the paper's question generalized: not just *when* to
// transmit along a fixed route, but which vehicle flies where and how close
// it comes back before transmitting (the joint trajectory optimization of
// internal/trajopt).

// Planner names accepted by RequestsSpec.Planner.
const (
	// PlannerFixed is the fixed-route now-or-later baseline: requests are
	// assigned FIFO to the first idle vehicle, which flies to the origin
	// and then to the now-or-later dopt distance before transmitting.
	PlannerFixed = "fixed"
	// PlannerGreedy assigns each idle vehicle its nearest pending request
	// and transmits immediately at the pickup point ("now").
	PlannerGreedy = "greedy"
	// PlannerJoint runs the receding-horizon joint trajectory optimizer
	// (internal/trajopt) over pending requests and the whole fleet.
	PlannerJoint = "joint"
)

var plannerKinds = map[string]bool{PlannerFixed: true, PlannerGreedy: true, PlannerJoint: true}

// defaultReplanTicks is the joint planner's periodic replan cadence in
// control ticks (50 ticks = 1 s) when RequestsSpec.ReplanTicks is zero.
const defaultReplanTicks = 50

// maxRequestCount bounds the materialized request list so a hostile Spec
// cannot turn compilation into a memory bomb.
const maxRequestCount = 512

// Joint-planner subproblem caps handed to the receding-horizon controller:
// small enough that a replan is sub-millisecond even in adversarial
// geometry, large enough that the solver sees real assignment choices.
const (
	dispatchMaxRequests = 5
	dispatchMaxVehicles = 3
)

// autoIDPrefix names Poisson-generated requests; explicit request IDs may
// not use it, so the two namespaces can never collide.
const autoIDPrefix = "auto-"

// RequestSpec declares one explicit data-pickup request.
type RequestSpec struct {
	ID     string   `json:"id"`
	Origin geo.Vec3 `json:"origin"`
	// SizeMB is the data volume waiting at the origin.
	SizeMB float64 `json:"size_mb"`
	// ArrivalS is when the request becomes known to the planner.
	ArrivalS float64 `json:"arrival_s,omitempty"`
	// DeadlineS is the absolute scenario clock by which the last byte must
	// reach the collector.
	DeadlineS float64 `json:"deadline_s"`
}

// PoissonSpec generates seeded Poisson request arrivals: exponential
// inter-arrival gaps at RatePerS, origins uniform over an AreaM square at
// AltM, sizes and deadline leads uniform in their bands.
type PoissonSpec struct {
	// RatePerS is the arrival rate λ (requests per second).
	RatePerS float64 `json:"rate_per_s"`
	// Count is how many requests to draw.
	Count int `json:"count"`
	// Seed drives the arrival substream; 0 inherits Spec.Seed.
	Seed int64 `json:"seed,omitempty"`
	// MinSizeMB and MaxSizeMB band the per-request data volume.
	MinSizeMB float64 `json:"min_size_mb"`
	MaxSizeMB float64 `json:"max_size_mb"`
	// MinLeadS and MaxLeadS band the deadline lead: deadline = arrival +
	// lead.
	MinLeadS float64 `json:"min_lead_s"`
	MaxLeadS float64 `json:"max_lead_s"`
	// AreaM is the side of the square origins are drawn from.
	AreaM float64 `json:"area_m"`
	// AltM is the origin altitude.
	AltM float64 `json:"alt_m"`
}

// RequestsSpec is the request-service workload section of a Spec. It is
// mutually exclusive with Traffic and Transfers: request scenarios own the
// whole run.
type RequestsSpec struct {
	// Collector is the vehicle every request's data must reach; it must
	// hold station.
	Collector string `json:"collector"`
	// Vehicles names the serving pool (empty = every non-collector
	// vehicle). Servers may not declare routes — the planner owns their
	// trajectories.
	Vehicles []string `json:"vehicles,omitempty"`
	// Planner selects the assignment strategy ("" defaults to "fixed").
	Planner string `json:"planner,omitempty"`
	// HorizonS is the joint planner's lookahead window (0 = unbounded).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// ReplanTicks is the joint planner's periodic replan cadence in
	// control ticks (0 selects defaultReplanTicks).
	ReplanTicks int `json:"replan_ticks,omitempty"`
	// EnergyBudgetS, when positive, retires a vehicle from new assignments
	// once it has spent that many battery-seconds.
	EnergyBudgetS float64 `json:"energy_budget_s,omitempty"`
	// Decision configures the per-leg now-or-later model: the fixed
	// planner's transmit-distance rule and the joint planner's candidate
	// model (nil = exact, failure-free).
	Decision *DecisionSpec `json:"decision,omitempty"`
	// Requests are explicit demands; Poisson draws more. At least one of
	// the two must be present.
	Requests []RequestSpec `json:"requests,omitempty"`
	Poisson  *PoissonSpec  `json:"poisson,omitempty"`
}

// validateRequests checks the requests section against the vehicle table.
func (s Spec) validateRequests() error {
	rs := s.Requests
	if len(s.Traffic) > 0 || len(s.Transfers) > 0 {
		return fmt.Errorf("scenario: requests: mutually exclusive with traffic and transfers")
	}
	byID := map[string]VehicleSpec{}
	for _, v := range s.Vehicles {
		byID[v.ID] = v
	}
	col, ok := byID[rs.Collector]
	if !ok {
		return fmt.Errorf("scenario: requests: unknown collector %q", rs.Collector)
	}
	if !col.Hold {
		return fmt.Errorf("scenario: requests: collector %q must hold station", rs.Collector)
	}
	servers := rs.Vehicles
	if len(servers) == 0 {
		for _, v := range s.Vehicles {
			if v.ID != rs.Collector {
				servers = append(servers, v.ID)
			}
		}
	}
	if len(servers) == 0 {
		return fmt.Errorf("scenario: requests: no serving vehicles")
	}
	seen := map[string]bool{}
	for _, id := range servers {
		v, ok := byID[id]
		if !ok {
			return fmt.Errorf("scenario: requests: unknown vehicle %q", id)
		}
		if id == rs.Collector {
			return fmt.Errorf("scenario: requests: collector %q cannot also serve", id)
		}
		if seen[id] {
			return fmt.Errorf("scenario: requests: duplicate vehicle %q", id)
		}
		seen[id] = true
		if len(v.Route) > 0 {
			return fmt.Errorf("scenario: requests: vehicle %q has a route; the planner owns server trajectories", id)
		}
	}
	if rs.Planner != "" && !plannerKinds[rs.Planner] {
		return fmt.Errorf("scenario: requests: unknown planner %q (want fixed, greedy or joint)", rs.Planner)
	}
	if !finite(rs.HorizonS) || rs.HorizonS < 0 {
		return fmt.Errorf("scenario: requests: horizon %v must be finite and ≥ 0", rs.HorizonS)
	}
	if rs.ReplanTicks < 0 {
		return fmt.Errorf("scenario: requests: replan_ticks %d must be ≥ 0", rs.ReplanTicks)
	}
	if !finite(rs.EnergyBudgetS) || rs.EnergyBudgetS < 0 {
		return fmt.Errorf("scenario: requests: energy budget %v must be finite and ≥ 0", rs.EnergyBudgetS)
	}
	if d := rs.Decision; d != nil {
		if !decisionKinds[d.Kind] {
			return fmt.Errorf("scenario: requests: unknown decision kind %q", d.Kind)
		}
		if !finite(d.RhoPerM) || d.RhoPerM < 0 {
			return fmt.Errorf("scenario: requests: rho %v must be finite and ≥ 0", d.RhoPerM)
		}
	}
	if len(rs.Requests) == 0 && rs.Poisson == nil {
		return fmt.Errorf("scenario: requests: need explicit requests or a poisson generator")
	}
	ids := map[string]bool{}
	for i, r := range rs.Requests {
		if r.ID == "" || ids[r.ID] {
			return fmt.Errorf("scenario: request %d: missing or duplicate id %q", i, r.ID)
		}
		if strings.HasPrefix(r.ID, autoIDPrefix) {
			return fmt.Errorf("scenario: request %d: id %q uses the reserved %q prefix", i, r.ID, autoIDPrefix)
		}
		ids[r.ID] = true
		if !finiteVec(r.Origin) {
			return fmt.Errorf("scenario: request %s: non-finite origin", r.ID)
		}
		if !finite(r.SizeMB) || r.SizeMB <= 0 {
			return fmt.Errorf("scenario: request %s: size %v MB must be positive and finite", r.ID, r.SizeMB)
		}
		if !finite(r.ArrivalS) || r.ArrivalS < 0 {
			return fmt.Errorf("scenario: request %s: arrival %v must be finite and ≥ 0", r.ID, r.ArrivalS)
		}
		if !finite(r.DeadlineS) || r.DeadlineS <= r.ArrivalS {
			return fmt.Errorf("scenario: request %s: deadline %v must be finite and after arrival %v",
				r.ID, r.DeadlineS, r.ArrivalS)
		}
	}
	n := len(rs.Requests)
	if p := rs.Poisson; p != nil {
		if !finite(p.RatePerS) || p.RatePerS <= 0 {
			return fmt.Errorf("scenario: poisson: rate %v must be positive and finite", p.RatePerS)
		}
		if p.Count < 1 {
			return fmt.Errorf("scenario: poisson: count %d must be ≥ 1", p.Count)
		}
		if !finite(p.MinSizeMB) || !finite(p.MaxSizeMB) || p.MinSizeMB <= 0 || p.MaxSizeMB < p.MinSizeMB {
			return fmt.Errorf("scenario: poisson: size band [%v, %v] must be positive and ordered", p.MinSizeMB, p.MaxSizeMB)
		}
		if !finite(p.MinLeadS) || !finite(p.MaxLeadS) || p.MinLeadS <= 0 || p.MaxLeadS < p.MinLeadS {
			return fmt.Errorf("scenario: poisson: lead band [%v, %v] must be positive and ordered", p.MinLeadS, p.MaxLeadS)
		}
		if !finite(p.AreaM) || p.AreaM <= 0 {
			return fmt.Errorf("scenario: poisson: area %v must be positive and finite", p.AreaM)
		}
		if !finite(p.AltM) || p.AltM < 1 {
			return fmt.Errorf("scenario: poisson: altitude %v must be finite and ≥ 1", p.AltM)
		}
		n += p.Count
	}
	if n > maxRequestCount {
		return fmt.Errorf("scenario: requests: %d requests exceed the cap of %d", n, maxRequestCount)
	}
	return nil
}

// RequestResult is one request's outcome.
type RequestResult struct {
	ID string
	// Vehicle is the server that delivered the data (or the one assigned
	// at expiry; empty when the request was never assigned).
	Vehicle   string
	ArrivalS  float64
	DeadlineS float64
	SizeMB    float64
	Served    bool
	// PickupS is the scenario clock of arrival at the origin (+Inf if the
	// request was never picked up).
	PickupS float64
	// CompletionS is the exact instant the last byte reached the collector
	// (+Inf if the deadline expired first).
	CompletionS float64
	// TxDistM is the planned transmit distance (0 when never assigned).
	TxDistM float64
}

// compiledRequest is one request's runtime state.
type compiledRequest struct {
	RequestResult
	origin   geo.Vec3
	arrived  bool
	assigned bool
	expired  bool
}

// compiledRequests builds the per-run mutable request states from the
// Program's materialized arrival list (already Poisson-drawn and sorted by
// Resolve), so re-linking the same Program never re-draws arrivals.
func compiledRequests(rp *ProgramRequests) []*compiledRequest {
	out := make([]*compiledRequest, 0, len(rp.Requests))
	for _, r := range rp.Requests {
		out = append(out, &compiledRequest{origin: r.Origin, RequestResult: RequestResult{
			ID: r.ID, ArrivalS: r.ArrivalS, DeadlineS: r.DeadlineS, SizeMB: r.SizeMB,
			PickupS: math.Inf(1), CompletionS: math.Inf(1),
		}})
	}
	return out
}

// assignment states.
const (
	legToOrigin = iota
	legToTx
	legTransmit
)

// assignment is one in-flight service: which request, which flight phase,
// and the analytic predictions the joint planner uses for busy vehicles.
type assignment struct {
	req   *compiledRequest
	state int
	txPos geo.Vec3
	// atOrigin/atTx latch the autopilot arrival callbacks; the dispatcher
	// consumes them at tick boundaries.
	atOrigin, atTx bool
	// txEndS is the exact completion instant once transmission started
	// (+Inf while flying or when the rate model says the link is dead).
	txEndS float64
	// predictedDoneS is the analytic completion prediction made at
	// assignment time — the FreeAtS the joint planner sees for this busy
	// vehicle.
	predictedDoneS float64
}

// serverState is one serving vehicle's dispatch bookkeeping.
type serverState struct {
	craft   *Craft
	asg     *assignment
	retired bool
}

// dispatcher runs the request-service phase: a per-tick state machine over
// arrivals (exact-instant engine events), flight legs (autopilot arrival
// callbacks), analytic transmissions, deadline expiries, and planner
// assignment.
type dispatcher struct {
	rt        *Runtime
	rp        *ProgramRequests
	reqs      []*compiledRequest
	collector *Craft
	servers   []*serverState
	ctrl      *trajopt.Controller
	// replanNeeded is set by arrivals, completions, failures and expiries;
	// nextReplanTick is the periodic cadence fallback.
	replanNeeded   bool
	nextReplanTick int64
	tick           int64
}

// runRequests executes the requests workload: schedules every arrival as
// an exact-instant engine event, then advances the clock tick by tick
// until every request is served or expired (the phase cap is the latest
// deadline, independent of DurationS so duration extensions cannot rewrite
// workload history).
func (rt *Runtime) runRequests(rp *ProgramRequests) ([]RequestResult, error) {
	d := &dispatcher{rt: rt, rp: rp, reqs: compiledRequests(rp), collector: rt.crafts[rp.Collector]}
	for _, h := range rp.Servers {
		d.servers = append(d.servers, &serverState{craft: rt.crafts[h]})
	}
	if rp.Planner == PlannerJoint {
		ctrl, err := trajopt.NewController(trajopt.ControllerConfig{
			HorizonS:    rp.HorizonS,
			MaxRequests: dispatchMaxRequests,
			MaxVehicles: dispatchMaxVehicles,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: requests: %w", err)
		}
		d.ctrl = ctrl
	}
	// Compile every arrival onto an exact-instant engine event. The event
	// only latches the arrived flag (and a replan request); the dispatcher
	// consumes flags at the next tick boundary, so event-driven and
	// lockstep runs observe identical state sequences.
	maxDeadline := 0.0
	for _, r := range d.reqs {
		r := r
		if _, err := rt.engine.Schedule(r.ArrivalS, func() {
			r.arrived = true
			d.replanNeeded = true
		}); err != nil {
			return nil, err
		}
		if r.DeadlineS > maxDeadline {
			maxDeadline = r.DeadlineS
		}
	}
	// Phase cap: the first accumulated tick boundary past the latest
	// deadline, plus one tick of slack for the final expiry sweep.
	phaseCap := 0.0
	for phaseCap < maxDeadline {
		phaseCap += ControlTickS
	}
	phaseCap += 2 * ControlTickS
	rt.waitTicks(phaseCap, d.step)
	out := make([]RequestResult, len(d.reqs))
	for i, r := range d.reqs {
		out[i] = r.RequestResult
	}
	return out, rt.err
}

// step is the dispatcher's per-tick pass; it reports true when every
// request is resolved and no assignment remains in flight.
func (d *dispatcher) step() bool {
	now := d.rt.engine.Now()
	d.tick++
	// 1. Advance every server craft (and the collector) to the tick — idle
	// crafts too, so a later GoTo is never issued to a craft that still owes
	// grid ticks (settled-craft elision keeps idle advances O(1)) — then run
	// flight and transmission transitions, in server declaration order.
	d.rt.advanceCraftTo(d.collector, now)
	for _, s := range d.servers {
		d.rt.advanceCraftTo(s.craft, now)
		if s.asg != nil {
			d.transition(s, now)
		}
	}
	// 2. Deadline expiry, in request order.
	for _, r := range d.reqs {
		if r.arrived && !r.Served && !r.expired && now >= r.DeadlineS {
			r.expired = true
			d.replanNeeded = true
			for _, s := range d.servers {
				if s.asg != nil && s.asg.req == r {
					d.release(s)
				}
			}
		}
	}
	// 3. Planner assignment.
	d.assign(now)
	// Done when everything is resolved and no craft is mid-service.
	for _, r := range d.reqs {
		if !r.Served && !r.expired {
			return false
		}
	}
	for _, s := range d.servers {
		if s.asg != nil {
			return false
		}
	}
	return true
}

// transition advances one assignment's state machine.
func (d *dispatcher) transition(s *serverState, now float64) {
	a := s.asg
	r := a.req
	if s.craft.failed {
		// The vehicle died mid-service: the data is lost with it; requeue
		// the request for the remaining pool if the deadline still stands.
		r.assigned = false
		r.Vehicle = ""
		r.PickupS = math.Inf(1)
		r.TxDistM = 0
		s.asg = nil
		d.replanNeeded = true
		return
	}
	switch a.state {
	case legToOrigin:
		if !a.atOrigin {
			return
		}
		r.PickupS = now
		a.state = legToTx
		arrived := &a.atTx
		s.craft.Autopilot().GoTo(a.txPos, s.craft.spec.SpeedMPS, func() { *arrived = true })
		d.rt.scheduleArrivalCheck(s.craft)
	case legToTx:
		if !a.atTx {
			return
		}
		a.state = legTransmit
		pos := s.craft.Autopilot().Vehicle().Position()
		s.craft.Autopilot().Hold(pos)
		dist := d.rt.pairGeometry(s.craft, d.collector).DistanceM
		rate := d.rt.decisionScenario(s.craft.spec.Platform, 1, 1, 1, d.rho()).
			Throughput.Bps(math.Max(dist, 1))
		a.txEndS = math.Inf(1)
		if rate > 0 {
			a.txEndS = now + r.SizeMB*8e6/rate
		}
	case legTransmit:
		// Served iff the last byte lands before the deadline and before
		// any collector death.
		if d.collector.failed && a.txEndS > d.collector.failedAt {
			r.assigned = false
			r.Vehicle = ""
			r.PickupS = math.Inf(1)
			r.TxDistM = 0
			d.release(s)
			return
		}
		if now >= a.txEndS && a.txEndS <= r.DeadlineS {
			r.Served = true
			r.CompletionS = a.txEndS
			d.release(s)
		}
	}
}

// release frees a server from its assignment, holding at its current
// position, and requests a replan.
func (d *dispatcher) release(s *serverState) {
	c := s.craft
	if !c.failed {
		c.Autopilot().Hold(c.Autopilot().Vehicle().Position())
	}
	s.asg = nil
	d.replanNeeded = true
}

// rho is the failure rate fed to the per-leg decision model.
func (d *dispatcher) rho() float64 { return d.rp.Decision.RhoPerM }

// decision is the now-or-later rule for the fixed planner — already
// resolved by Resolve (nil in the Spec lowered to the exact, failure-free
// model).
func (d *dispatcher) decision() ProgramDecision { return d.rp.Decision }

// speed is the planning/commanded speed for a server.
func serverSpeed(c *Craft) float64 {
	if c.spec.SpeedMPS > 0 {
		return c.spec.SpeedMPS
	}
	return c.ap.Vehicle().CruiseSpeedMPS
}

// usedEnergyS is the battery-seconds a craft has drained so far, with the
// craft integrated up to the clock first (idle crafts are advanced lazily).
func (d *dispatcher) usedEnergyS(c *Craft) float64 {
	d.rt.advanceCraftTo(c, d.rt.engine.Now())
	v := c.Autopilot().Vehicle()
	return v.BatteryMinutes*60 - v.BatteryLeftSeconds()
}

// checkRetired retires a server once it has spent its energy budget.
func (d *dispatcher) checkRetired(s *serverState) bool {
	if s.retired {
		return true
	}
	if b := d.rp.EnergyBudgetS; b > 0 && d.usedEnergyS(s.craft) >= b {
		s.retired = true
	}
	return s.retired
}

// legCost is the analytic (time, energy) of serving r from the craft's
// current position at transmit distance dEff.
func (d *dispatcher) legCost(s *serverState, r *compiledRequest, dEff float64, txPos geo.Vec3) (doneS, energyS float64) {
	now := d.rt.engine.Now()
	speed := serverSpeed(s.craft)
	pos := s.craft.Autopilot().Vehicle().Position()
	t1 := pos.Dist(r.origin) / speed
	t2 := r.origin.Dist(txPos) / speed
	rate := d.rt.decisionScenario(s.craft.spec.Platform, 1, 1, 1, d.rho()).
		Throughput.Bps(math.Max(dEff, 1))
	if !(rate > 0) {
		return math.Inf(1), math.Inf(1)
	}
	tx := r.SizeMB * 8e6 / rate
	p := s.craft.Autopilot().Vehicle()
	return now + t1 + t2 + tx, (t1+t2)*p.PowerFraction(speed) + tx*p.PowerFraction(0)
}

// canAfford reports whether the server's remaining energy budget covers the
// analytic cost of the leg (always true without a budget).
func (d *dispatcher) canAfford(s *serverState, energyS float64) bool {
	b := d.rp.EnergyBudgetS
	if b <= 0 {
		return true
	}
	return energyS <= b-d.usedEnergyS(s.craft)
}

// nowOrLaterDist is the per-leg transmit distance the fixed and greedy
// planners use: the paper's now-or-later dopt for the request's geometry,
// clamped to the pickup distance.
func (d *dispatcher) nowOrLaterDist(s *serverState, r *compiledRequest) (float64, bool) {
	d0 := r.origin.Dist(d.collectorPos())
	dopt, err := d.rt.decide(s.craft.spec.Platform, math.Max(d0, 1), serverSpeed(s.craft), r.SizeMB, d.decision())
	if err != nil {
		if d.rt.err == nil {
			d.rt.err = err
		}
		return 0, false
	}
	return math.Min(dopt, d0), true
}

// assign runs the planner arm over pending requests and idle servers.
func (d *dispatcher) assign(now float64) {
	if d.collector.failed {
		return
	}
	var pending []*compiledRequest
	for _, r := range d.reqs {
		if r.arrived && !r.Served && !r.expired && !r.assigned {
			pending = append(pending, r)
		}
	}
	if len(pending) == 0 {
		return
	}
	var idle []*serverState
	for _, s := range d.servers {
		if s.asg == nil && !s.craft.failed && !d.checkRetired(s) {
			idle = append(idle, s)
		}
	}
	if len(idle) == 0 {
		return
	}
	switch d.rp.Planner {
	case PlannerGreedy:
		d.assignGreedy(pending, idle)
	case PlannerJoint:
		d.assignJoint(now, pending)
	default: // "" and PlannerFixed
		d.assignFixed(pending, idle)
	}
}

// assignFixed is the FIFO now-or-later baseline: the oldest pending
// request goes to the first idle vehicle whose budget affords it, which
// flies the fixed origin-then-dopt route.
func (d *dispatcher) assignFixed(pending []*compiledRequest, idle []*serverState) {
	for _, r := range pending {
		for i, s := range idle {
			dEff, ok := d.nowOrLaterDist(s, r)
			if !ok {
				return
			}
			d.rt.advanceCraftTo(s.craft, d.rt.engine.Now())
			_, energy := d.legCost(s, r, dEff, d.txPoint(r, dEff))
			if !d.canAfford(s, energy) {
				continue
			}
			idle = append(idle[:i], idle[i+1:]...)
			d.start(s, r, dEff)
			break
		}
		if len(idle) == 0 {
			return
		}
	}
}

// assignGreedy gives each idle vehicle its nearest pending request (ties
// to the earlier arrival), transmitting at the now-or-later distance; the
// assignment order is greedy, not the route or the transmit rule.
func (d *dispatcher) assignGreedy(pending []*compiledRequest, idle []*serverState) {
	for _, s := range idle {
		if len(pending) == 0 {
			return
		}
		d.rt.advanceCraftTo(s.craft, d.rt.engine.Now())
		best := -1
		bestDist := math.Inf(1)
		pos := s.craft.Autopilot().Vehicle().Position()
		for i, r := range pending {
			if dist := pos.Dist(r.origin); dist < bestDist {
				best, bestDist = i, dist
			}
		}
		r := pending[best]
		dEff, ok := d.nowOrLaterDist(s, r)
		if !ok {
			return
		}
		if _, energy := d.legCost(s, r, dEff, d.txPoint(r, dEff)); !d.canAfford(s, energy) {
			continue
		}
		pending = append(pending[:best], pending[best+1:]...)
		d.start(s, r, dEff)
	}
}

// txPoint is the transmit position dEff metres from the collector on the
// origin→collector line.
func (d *dispatcher) txPoint(r *compiledRequest, dEff float64) geo.Vec3 {
	col := d.collectorPos()
	d0 := r.origin.Dist(col)
	if d0 <= 0 {
		return r.origin
	}
	return col.Add(r.origin.Sub(col).Scale(math.Min(dEff, d0) / d0))
}

// assignJoint runs the receding-horizon joint optimizer: the whole fleet
// (busy vehicles at their predicted free states) and the pending requests
// go into one trajopt Instance; only idle vehicles' first actions commit.
// Replans are event-driven (arrival, completion, failure, expiry) with a
// periodic cadence fallback.
func (d *dispatcher) assignJoint(now float64, pending []*compiledRequest) {
	cadence := int64(d.rp.ReplanTicks)
	if cadence == 0 {
		cadence = defaultReplanTicks
	}
	if !d.replanNeeded && d.tick < d.nextReplanTick {
		return
	}
	d.replanNeeded = false
	d.nextReplanTick = d.tick + cadence

	inst := &trajopt.Instance{Collector: d.collectorPos()}
	var srv []*serverState
	for _, s := range d.servers {
		if s.craft.failed || d.checkRetired(s) {
			continue
		}
		v := trajopt.Vehicle{
			SpeedMPS: serverSpeed(s.craft),
			EnergyS:  math.Inf(1),
			Model:    d.rt.decisionScenario(s.craft.spec.Platform, 1, 1, 1, d.rho()),
		}
		p := s.craft.Autopilot().Vehicle()
		v.PowerMoveFrac = p.PowerFraction(v.SpeedMPS)
		v.PowerHoverFrac = p.PowerFraction(0)
		if b := d.rp.EnergyBudgetS; b > 0 {
			v.EnergyS = math.Max(b-d.usedEnergyS(s.craft), 0)
		}
		if s.asg != nil {
			v.Pos = s.asg.txPos
			v.FreeAtS = s.asg.predictedDoneS
		} else {
			v.Pos = p.Position()
			v.FreeAtS = now
		}
		inst.Vehicles = append(inst.Vehicles, v)
		srv = append(srv, s)
	}
	if len(inst.Vehicles) == 0 {
		return
	}
	for _, r := range pending {
		inst.Requests = append(inst.Requests, trajopt.Request{
			Origin: r.origin, SizeMB: r.SizeMB, ArrivalS: r.ArrivalS, DeadlineS: r.DeadlineS,
		})
	}
	plan, err := d.ctrl.Plan(now, inst)
	if err != nil {
		if d.rt.err == nil {
			d.rt.err = fmt.Errorf("scenario: joint planner: %w", err)
		}
		return
	}
	for _, a := range plan {
		s := srv[a.Vehicle]
		if s.asg != nil {
			continue // busy vehicles' planned legs are provisional
		}
		d.start(s, pending[a.Request], a.TxDistM)
	}
}

// collectorPos is the collector's current (held) position.
func (d *dispatcher) collectorPos() geo.Vec3 {
	return d.collector.Autopilot().Vehicle().Position()
}

// start commits one assignment: the craft flies to the origin, then to the
// transmit point txDist metres from the collector on the origin→collector
// line, and transmits from a hover.
func (d *dispatcher) start(s *serverState, r *compiledRequest, txDist float64) {
	col := d.collectorPos()
	d0 := r.origin.Dist(col)
	dEff := math.Min(txDist, d0)
	txPos := r.origin
	if d0 > 0 {
		txPos = col.Add(r.origin.Sub(col).Scale(dEff / d0))
	}
	a := &assignment{req: r, txPos: txPos}
	now := d.rt.engine.Now()
	d.rt.advanceCraftTo(s.craft, now) // never command a craft that owes ticks
	speed := serverSpeed(s.craft)
	pos := s.craft.Autopilot().Vehicle().Position()
	t1 := pos.Dist(r.origin) / speed
	t2 := r.origin.Dist(txPos) / speed
	rate := d.rt.decisionScenario(s.craft.spec.Platform, 1, 1, 1, d.rho()).
		Throughput.Bps(math.Max(dEff, 1))
	a.predictedDoneS = math.Inf(1)
	if rate > 0 {
		a.predictedDoneS = now + t1 + t2 + r.SizeMB*8e6/rate
	}
	r.assigned = true
	r.Vehicle = s.craft.spec.ID
	r.TxDistM = dEff
	s.asg = a
	arrived := &a.atOrigin
	s.craft.Autopilot().GoTo(r.origin, s.craft.spec.SpeedMPS, func() { *arrived = true })
	d.rt.scheduleArrivalCheck(s.craft)
}
