package scenario

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/uav"
)

// Regression: applyChaosKills used to quantize scripted deaths to the next
// tick boundary (a kill at t=5.01 landed at 5.02). Kills are now engine
// events fired at their exact scripted instant.
func TestChaosKillAtExactScriptedTime(t *testing.T) {
	const killAt = 5.01 // deliberately off the 0.02 s tick grid
	s := Spec{
		Name: "exact-kill",
		Seed: 1,
		Vehicles: []VehicleSpec{
			{ID: "a", Platform: PlatformQuad, Start: geo.Vec3{Z: 10},
				Route: []geo.Vec3{{X: 200, Z: 10}}, SpeedMPS: 10},
		},
		Chaos:     []string{"vehicle fail a 5.01"},
		DurationS: 8,
	}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vehicles[0]
	if !v.Failed {
		t.Fatal("vehicle survived its scripted kill")
	}
	if v.FailedAtS != killAt {
		t.Fatalf("FailedAtS = %v, want exactly %v", v.FailedAtS, killAt)
	}
	if c := rt.Craft("a"); c.FailedAtS() != killAt {
		t.Fatalf("craft FailedAtS = %v, want exactly %v", c.FailedAtS(), killAt)
	}
	// The craft froze at the kill: ~30 m flown (2.5 m/s² accel ramp, then
	// cruise at 10), and no further motion through the remaining 3 s.
	if v.Position.X < 25 || v.Position.X > killAt*10 {
		t.Fatalf("final X = %v, want within the pre-kill flight envelope", v.Position.X)
	}
}

// A surviving vehicle reports +Inf for its (absent) kill time.
func TestFailedAtInfForSurvivors(t *testing.T) {
	rt, err := Compile(twoQuadSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vehicles {
		if !math.IsInf(v.FailedAtS, 1) {
			t.Fatalf("vehicle %s: FailedAtS = %v, want +Inf", v.ID, v.FailedAtS)
		}
	}
}

// Regression: measureWindowed silently discarded the trailing partial
// window, so its delivered and dropped bytes vanished from accounting.
// With a duration that is not a multiple of windowS, the final window must
// be emitted and marked Partial.
func TestTrailingPartialWindowEmitted(t *testing.T) {
	s := twoQuadSpec()
	s.Traffic = []TrafficSpec{{From: "tx", To: "rx", DurationS: 2.3, WindowS: 1.0}}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Traffic[0].Samples
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want full windows plus a trailing partial", len(samples))
	}
	last := samples[len(samples)-1]
	if !last.Partial {
		t.Fatalf("trailing window not marked Partial: %+v", last)
	}
	for _, sm := range samples[:len(samples)-1] {
		if sm.Partial {
			t.Fatalf("non-trailing window marked Partial: %+v", sm)
		}
	}
	if last.ThroughputMb <= 0 {
		t.Fatalf("partial window carried no bytes: %+v", last)
	}
	// The partial window starts after the last full one and covers the
	// fractional remainder of the 2.3 s workload.
	if last.TimeS < 1.9 || last.TimeS >= 2.3 {
		t.Fatalf("partial window start %v outside the trailing fraction", last.TimeS)
	}
}

// Settled crafts must not pay per-tick integration: a fleet of holding
// quads elides essentially all of its sub-ticks.
func TestSettledCraftsElideSubTicks(t *testing.T) {
	s := Spec{Name: "settled", Seed: 1, DurationS: 60}
	for i := 0; i < 40; i++ {
		s.Vehicles = append(s.Vehicles, VehicleSpec{
			ID:       string(rune('a'+i/26)) + string(rune('a'+i%26)),
			Platform: PlatformQuad,
			Start:    geo.Vec3{X: float64(i) * 20, Z: 10},
			Hold:     true,
		})
	}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	total := st.SubTicksStepped + st.SubTicksElided
	if total == 0 {
		t.Fatal("no sub-ticks accounted")
	}
	if st.SubTicksElided < total*9/10 {
		t.Fatalf("elided only %d of %d sub-ticks: settled crafts are being stepped", st.SubTicksElided, total)
	}
}

// Elided sub-ticks owe their battery drain: reading a settled craft's
// autopilot must replay them, leaving the battery bit-identical to having
// stepped every tick of the run.
func TestElisionReplaysBatteryExactly(t *testing.T) {
	const duration = 20.0
	s := Spec{
		Name: "battery",
		Seed: 1,
		Vehicles: []VehicleSpec{
			{ID: "h", Platform: PlatformQuad, Start: geo.Vec3{Z: 10}, Hold: true},
		},
		DurationS: duration,
	}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	got := rt.Craft("h").Autopilot().Vehicle().BatteryLeftSeconds()

	// Reference: the legacy lockstep advance — step every accumulated
	// ControlTickS boundary up to the final clock.
	v, err := uav.NewVehicle("h", uav.Arducopter(), geo.Vec3{Z: 10})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := autopilot.New(v)
	if err != nil {
		t.Fatal(err)
	}
	ap.Hold(geo.Vec3{Z: 10})
	now := rt.Engine().Now()
	for f := 0.0; f+ControlTickS <= now; f += ControlTickS {
		ap.Step(ControlTickS)
	}
	if want := v.BatteryLeftSeconds(); got != want {
		t.Fatalf("battery after elision replay = %v, want exactly %v", got, want)
	}
}

// Stats must report real event-driven work: a route scenario fires arrival
// checks and processes events, and the counts are deterministic.
func TestStatsDeterministic(t *testing.T) {
	spec := func() Spec {
		return Spec{
			Name: "stats",
			Seed: 1,
			Vehicles: []VehicleSpec{
				{ID: "a", Platform: PlatformQuad, Start: geo.Vec3{Z: 10},
					Route: []geo.Vec3{{X: 100, Z: 10}, {X: 100, Y: 100, Z: 10}}, SpeedMPS: 8},
			},
			DurationS: 40,
		}
	}
	run := func() RuntimeStats {
		rt, err := Compile(spec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats not deterministic: %+v vs %+v", a, b)
	}
	if a.EventsProcessed == 0 {
		t.Fatal("no events processed on a route scenario")
	}
	if a.SubTicksStepped == 0 {
		t.Fatal("no sub-ticks stepped on a route scenario")
	}
}
