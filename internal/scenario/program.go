package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/stats"
)

// The scenario compiler is a two-pass pipeline:
//
//	Spec --Resolve--> Program --Link--> Runtime
//
// A Spec is the raw JSON-shaped declaration: string vehicle references,
// unparsed chaos text lines, an unmaterialized Poisson request generator.
// Resolve validates it once and lowers it into a Program — the typed,
// fully cross-referenced intermediate form: every vehicle reference is an
// integer handle checked against the vehicle table, the chaos script is
// parsed into a typed schedule with its scripted kills extracted as a
// time-sorted event list, Poisson arrivals are drawn into a concrete
// request list, and decision plumbing is resolved into explicit modes.
// Link instantiates a Program onto a fresh engine: crafts, radio, armed
// chaos events. A Program is immutable after Resolve, so one Program can
// be linked many times (paired-arm experiments, differential oracles,
// corpus replays) without re-validating, re-parsing or re-drawing
// anything — and runtimes linked from one Program produce bit-identical
// Results to runtimes compiled directly from the Spec.
//
// Compile(spec) is exactly Resolve(spec) followed by Link; CompileBatch
// resolves a whole slice of Specs and links them against one shared
// TableCache, so sweeps build each per-platform policy table once instead
// of once per trial.

// NoVehicle is the nil vehicle handle (e.g. an absent AltTo fallback).
const NoVehicle = -1

// DecisionMode is the resolved now-or-later decision engine selection.
type DecisionMode uint8

const (
	// DecisionNone means no decision runs (transmit where you are).
	DecisionNone DecisionMode = iota
	// DecisionExact runs the golden-section optimizer on the closed-form
	// model ("exact").
	DecisionExact
	// DecisionTable serves dopt from a precomputed policy table via the
	// runtime's TableCache ("table").
	DecisionTable
)

// String returns the Spec-level name of the mode.
func (m DecisionMode) String() string {
	switch m {
	case DecisionNone:
		return "none"
	case DecisionExact:
		return "exact"
	case DecisionTable:
		return "table"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ProgramDecision is a resolved DecisionSpec: an explicit mode instead of
// a string kind behind a nillable pointer.
type ProgramDecision struct {
	Mode    DecisionMode
	RhoPerM float64
}

// ProgramVehicle is one resolved vehicle: its handle is its index in
// Program.Vehicles, Runtime.crafts and every cross-reference.
type ProgramVehicle struct {
	Handle int
	Spec   VehicleSpec
}

// ProgramKill is one scripted vehicle death, resolved to a handle and
// clamped to the scenario clock's origin.
type ProgramKill struct {
	Vehicle int
	AtS     float64
}

// ProgramTraffic is a saturation workload with resolved endpoints.
type ProgramTraffic struct {
	From, To  int
	StartS    float64
	DurationS float64
	WindowS   float64
}

// ProgramTransfer is a batch delivery with resolved endpoints, fallback
// and decision mode.
type ProgramTransfer struct {
	From, To int
	// AltTo is the fallback receiver handle (NoVehicle when absent).
	AltTo          int
	SizeMB         float64
	DeadlineS      float64
	StartS         float64
	StartOnArrival bool
	Reliable       bool
	Decision       ProgramDecision
}

// ProgramRequest is one materialized data-pickup request — explicit
// requests and Poisson draws land in the same form, sorted by arrival.
type ProgramRequest struct {
	ID        string
	Origin    geo.Vec3
	SizeMB    float64
	ArrivalS  float64
	DeadlineS float64
}

// ProgramRequests is the resolved request-service workload: handles for
// the collector and the serving pool, an explicit planner and decision
// mode, and the fully materialized arrival list.
type ProgramRequests struct {
	Collector int
	// Servers is the resolved serving pool in declaration order (the
	// Spec's empty-list default — every non-collector vehicle — applied).
	Servers []int
	// Planner is resolved ("" lowered to PlannerFixed).
	Planner  string
	HorizonS float64
	// ReplanTicks is resolved (0 lowered to defaultReplanTicks).
	ReplanTicks   int
	EnergyBudgetS float64
	// Decision is resolved (nil lowered to the exact, failure-free model).
	Decision ProgramDecision
	// Requests is the materialized arrival list: explicit requests first,
	// then the Poisson draw, stably sorted by arrival time.
	Requests []ProgramRequest
}

// Program is the validated intermediate form between Spec and Runtime.
// See the package comment above for the pipeline contract; the one-line
// version: everything Validate and Compile used to discover lazily —
// cross-references, chaos parses, Poisson draws, decision kinds — is
// resolved here exactly once, and Link only instantiates.
type Program struct {
	// Spec is the source declaration (retained for Result naming and for
	// APIs that still speak string IDs).
	Spec Spec
	// Vehicles holds the resolved vehicle table; handles index it.
	Vehicles []ProgramVehicle
	// LinkConfig is the fully defaulted radio configuration and RateMCS
	// the parsed rate policy (-1 = auto-rate Minstrel).
	LinkConfig link.Config
	RateMCS    int
	// Chaos is the parsed fault schedule (nil when the Spec has none);
	// Kills is its scripted vehicle deaths as a typed, time-sorted event
	// list (ties broken by handle).
	Chaos *chaos.Schedule
	Kills []ProgramKill
	// Traffic, Transfers and Requests are the resolved workloads.
	Traffic   []ProgramTraffic
	Transfers []ProgramTransfer
	Requests  *ProgramRequests
	// TableKeys are the sorted platform keys whose policy tables "table"
	// decisions in this Program can demand — what a TableCache would build.
	TableKeys []string

	handles     map[string]int
	fingerprint uint64
}

// Resolve validates a Spec and lowers it into its Program. Every error a
// Compile used to surface at compile time is surfaced here; a resolved
// Program cannot fail to Link except on engine-level resource errors.
func Resolve(spec Spec) (*Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Program{Spec: spec, RateMCS: -1}
	p.handles = make(map[string]int, len(spec.Vehicles))
	for i, vs := range spec.Vehicles {
		p.handles[vs.ID] = i
		p.Vehicles = append(p.Vehicles, ProgramVehicle{Handle: i, Spec: vs})
	}

	lcfg := link.DefaultConfig()
	lcfg.Seed = spec.Link.Seed
	if lcfg.Seed == 0 {
		lcfg.Seed = spec.Seed
	}
	lcfg.Label = spec.Link.Label
	if lcfg.Label == "" {
		lcfg.Label = "scenario/" + spec.Name
	}
	p.LinkConfig = lcfg
	mcs, err := ParseRate(spec.Link.Rate)
	if err != nil {
		return nil, err
	}
	p.RateMCS = mcs

	if p.Chaos, err = spec.ChaosSchedule(); err != nil {
		return nil, err
	}
	if p.Chaos != nil {
		for h, vs := range spec.Vehicles {
			if t, ok := p.Chaos.VehicleFailTime(vs.ID); ok {
				p.Kills = append(p.Kills, ProgramKill{Vehicle: h, AtS: math.Max(t, 0)})
			}
		}
		sort.Slice(p.Kills, func(i, j int) bool {
			a, b := p.Kills[i], p.Kills[j]
			if a.AtS != b.AtS {
				return a.AtS < b.AtS
			}
			return a.Vehicle < b.Vehicle
		})
	}

	for _, t := range spec.Traffic {
		p.Traffic = append(p.Traffic, ProgramTraffic{
			From: p.handles[t.From], To: p.handles[t.To],
			StartS: t.StartS, DurationS: t.DurationS, WindowS: t.WindowS,
		})
	}
	for _, t := range spec.Transfers {
		alt := NoVehicle
		if t.AltTo != "" {
			alt = p.handles[t.AltTo]
		}
		p.Transfers = append(p.Transfers, ProgramTransfer{
			From: p.handles[t.From], To: p.handles[t.To], AltTo: alt,
			SizeMB: t.SizeMB, DeadlineS: t.DeadlineS, StartS: t.StartS,
			StartOnArrival: t.StartOnArrival, Reliable: t.Reliable,
			Decision: resolveDecision(t.Decision, DecisionNone),
		})
	}
	if spec.Requests != nil {
		p.Requests = resolveRequests(spec, p.handles)
	}
	p.TableKeys = p.tableKeys()

	if p.fingerprint, err = Fingerprint(spec); err != nil {
		return nil, err
	}
	return p, nil
}

// ResolveAll resolves every Spec of a batch, failing on the first invalid
// one with its index attached.
func ResolveAll(specs []Spec) ([]*Program, error) {
	progs := make([]*Program, len(specs))
	for i, s := range specs {
		p, err := Resolve(s)
		if err != nil {
			return nil, fmt.Errorf("scenario: batch spec %d (%q): %w", i, s.Name, err)
		}
		progs[i] = p
	}
	return progs, nil
}

// resolveDecision lowers a DecisionSpec pointer into an explicit mode;
// def is the mode a nil spec means in this position (none for transfers,
// exact for the requests workload).
func resolveDecision(d *DecisionSpec, def DecisionMode) ProgramDecision {
	if d == nil {
		return ProgramDecision{Mode: def}
	}
	mode := DecisionExact
	if d.Kind == "table" {
		mode = DecisionTable
	}
	return ProgramDecision{Mode: mode, RhoPerM: d.RhoPerM}
}

// resolveRequests lowers the requests section: handles, defaults, and the
// materialized arrival list (explicit requests first, then the Poisson
// draw on the "scenario/requests" substream, stably sorted by arrival).
func resolveRequests(spec Spec, handles map[string]int) *ProgramRequests {
	rs := spec.Requests
	rp := &ProgramRequests{
		Collector:     handles[rs.Collector],
		Planner:       rs.Planner,
		HorizonS:      rs.HorizonS,
		ReplanTicks:   rs.ReplanTicks,
		EnergyBudgetS: rs.EnergyBudgetS,
		Decision:      resolveDecision(rs.Decision, DecisionExact),
	}
	if rp.Planner == "" {
		rp.Planner = PlannerFixed
	}
	if rp.ReplanTicks == 0 {
		rp.ReplanTicks = defaultReplanTicks
	}
	serverIDs := rs.Vehicles
	if len(serverIDs) == 0 {
		for _, v := range spec.Vehicles {
			if v.ID != rs.Collector {
				serverIDs = append(serverIDs, v.ID)
			}
		}
	}
	for _, id := range serverIDs {
		rp.Servers = append(rp.Servers, handles[id])
	}
	for _, r := range rs.Requests {
		rp.Requests = append(rp.Requests, ProgramRequest{
			ID: r.ID, Origin: r.Origin, SizeMB: r.SizeMB,
			ArrivalS: r.ArrivalS, DeadlineS: r.DeadlineS,
		})
	}
	if p := rs.Poisson; p != nil {
		seed := p.Seed
		if seed == 0 {
			seed = spec.Seed
		}
		rng := stats.NewRNG(seed).Substream(seed, "scenario/requests")
		t := 0.0
		for i := 0; i < p.Count; i++ {
			t += rng.Exponential(p.RatePerS)
			origin := geo.Vec3{
				X: rng.Uniform(0, p.AreaM),
				Y: rng.Uniform(0, p.AreaM),
				Z: p.AltM,
			}
			size := rng.Uniform(p.MinSizeMB, p.MaxSizeMB)
			lead := rng.Uniform(p.MinLeadS, p.MaxLeadS)
			rp.Requests = append(rp.Requests, ProgramRequest{
				ID: fmt.Sprintf("%s%03d", autoIDPrefix, i+1), Origin: origin,
				SizeMB: size, ArrivalS: t, DeadlineS: t + lead,
			})
		}
	}
	sort.SliceStable(rp.Requests, func(a, b int) bool {
		return rp.Requests[a].ArrivalS < rp.Requests[b].ArrivalS
	})
	return rp
}

// tableKeys collects the sorted platform keys "table" decisions in this
// Program can query: the sender platform of each table-decided transfer,
// and every server platform when the requests workload decides by table.
func (p *Program) tableKeys() []string {
	set := map[string]bool{}
	for _, t := range p.Transfers {
		if t.Decision.Mode == DecisionTable {
			set[p.Vehicles[t.From].Spec.Platform] = true
		}
	}
	if rp := p.Requests; rp != nil && rp.Decision.Mode == DecisionTable {
		for _, h := range rp.Servers {
			set[p.Vehicles[h].Spec.Platform] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handle resolves a vehicle ID to its integer handle.
func (p *Program) Handle(id string) (int, bool) {
	h, ok := p.handles[id]
	return h, ok
}

// Fingerprint is the Spec fingerprint, computed once at Resolve.
func (p *Program) Fingerprint() uint64 { return p.fingerprint }

// ProgramStats summarizes a resolved Program — the counts behind
// `uavsim -dump-ir` and the extended `-validate` line.
type ProgramStats struct {
	Vehicles   int
	ChaosLines int
	ChaosKills int
	Traffic    int
	Transfers  int
	Requests   int
	TableKeys  []string
}

// Stats returns the Program's resolution summary.
func (p *Program) Stats() ProgramStats {
	st := ProgramStats{
		Vehicles:   len(p.Vehicles),
		ChaosLines: len(p.Spec.Chaos),
		ChaosKills: len(p.Kills),
		Traffic:    len(p.Traffic),
		Transfers:  len(p.Transfers),
		TableKeys:  p.TableKeys,
	}
	if p.Requests != nil {
		st.Requests = len(p.Requests.Requests)
	}
	return st
}

// Describe renders the resolved Program for humans — handles, typed chaos
// events, materialized requests, table keys. The format is for debugging,
// not parsing.
func (p *Program) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q (seed %d, fingerprint %016x)\n", p.Spec.Name, p.Spec.Seed, p.fingerprint)
	fmt.Fprintf(&b, "  vehicles: %d\n", len(p.Vehicles))
	for _, v := range p.Vehicles {
		shape := "hold"
		switch {
		case len(v.Spec.Route) > 0 && v.Spec.Loop:
			shape = fmt.Sprintf("loop×%d from %d", len(v.Spec.Route), v.Spec.LoopFrom)
		case len(v.Spec.Route) > 0:
			shape = fmt.Sprintf("route×%d", len(v.Spec.Route))
		case !v.Spec.Hold:
			shape = "idle"
		}
		fmt.Fprintf(&b, "    [%d] %s %s %s\n", v.Handle, v.Spec.ID, v.Spec.Platform, shape)
	}
	fmt.Fprintf(&b, "  link: seed %d label %q rate mcs %d\n", p.LinkConfig.Seed, p.LinkConfig.Label, p.RateMCS)
	fmt.Fprintf(&b, "  chaos: %d line(s), %d kill event(s)\n", len(p.Spec.Chaos), len(p.Kills))
	for _, k := range p.Kills {
		fmt.Fprintf(&b, "    kill [%d] %s at t=%g\n", k.Vehicle, p.Vehicles[k.Vehicle].Spec.ID, k.AtS)
	}
	fmt.Fprintf(&b, "  traffic: %d, transfers: %d\n", len(p.Traffic), len(p.Transfers))
	for _, t := range p.Transfers {
		alt := ""
		if t.AltTo != NoVehicle {
			alt = fmt.Sprintf(" alt [%d]", t.AltTo)
		}
		fmt.Fprintf(&b, "    transfer [%d]->[%d]%s %.3g MB decision %s\n",
			t.From, t.To, alt, t.SizeMB, t.Decision.Mode)
	}
	if rp := p.Requests; rp != nil {
		fmt.Fprintf(&b, "  requests: %d materialized, collector [%d], %d server(s), planner %s, decision %s\n",
			len(rp.Requests), rp.Collector, len(rp.Servers), rp.Planner, rp.Decision.Mode)
	} else {
		fmt.Fprintf(&b, "  requests: none\n")
	}
	fmt.Fprintf(&b, "  table keys: %v\n", p.TableKeys)
	return b.String()
}

// CompileBatch resolves every Spec and links each Runtime against one
// shared TableCache (opts.Tables when set, a fresh one otherwise), so a
// sweep of N table-deciding scenarios builds each per-platform policy
// table once instead of N times. Runtimes are independent: each gets its
// own engine at clock zero.
func CompileBatch(specs []Spec, opts Options) ([]*Runtime, error) {
	progs, err := ResolveAll(specs)
	if err != nil {
		return nil, err
	}
	if opts.Tables == nil {
		opts.Tables = NewTableCache()
	}
	rts := make([]*Runtime, len(progs))
	for i, p := range progs {
		rt, err := LinkWithOptions(p, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario: batch spec %d (%q): %w", i, p.Spec.Name, err)
		}
		rts[i] = rt
	}
	return rts, nil
}
