package scenario

import (
	"context"
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/policy"
	"github.com/nowlater/nowlater/internal/transport"
)

// TrafficResult is one saturation workload's windowed record.
type TrafficResult struct {
	From, To string
	// StartS is the scenario clock when the workload began.
	StartS  float64
	Samples []Sample
}

// TransferResult is one batch delivery's outcome.
type TransferResult struct {
	From, To string
	// StartS is the scenario clock when transmission began (after any
	// arrival wait and decision shipping leg).
	StartS float64
	// CompletionS is the transmission time from StartS to the last byte
	// (+Inf if the deadline expired first, failover attempts included).
	CompletionS float64
	// D0M and DoptM record the decision, when one ran: the distance at
	// which the transfer was requested and the chosen transmit distance.
	D0M, DoptM         float64
	DeliveredBytes     int64
	RetransmittedBytes int64
	Series             []transport.SeriesPoint
	// Rerouted reports that the remainder was re-sent to AltTo after the
	// primary attempt failed.
	Rerouted bool
}

// DeliveredMB is the delivered volume in megabytes.
func (t TransferResult) DeliveredMB() float64 { return float64(t.DeliveredBytes) / 1e6 }

// VehicleResult is one vehicle's final state.
type VehicleResult struct {
	ID        string
	Position  geo.Vec3
	RouteDone bool
	Failed    bool
	// FailedAtS is the exact scenario clock of the chaos kill (+Inf when
	// the vehicle survived).
	FailedAtS float64
	// Served and Expired count request outcomes attributed to this vehicle
	// and EnergyUsedS is its battery-seconds drained — populated only when
	// the Spec declares a requests workload.
	Served      int
	Expired     int
	EnergyUsedS float64
}

// Result is the outcome of one Spec execution.
type Result struct {
	Name string
	// Fingerprint identifies the Spec that produced this result.
	Fingerprint uint64
	Traffic     []TrafficResult
	Transfers   []TransferResult
	Requests    []RequestResult
	Vehicles    []VehicleResult
	// DurationS is the final scenario clock.
	DurationS float64
}

// Run executes the Spec: workloads in declaration order (traffic first,
// then transfers) on the single engine clock, then flies out any remaining
// DurationS. Each workload advances the shared clock, so a later workload
// starts where the previous one ended.
func (rt *Runtime) Run() (Result, error) {
	fp, err := Fingerprint(rt.spec)
	if err != nil {
		return Result{}, err
	}
	res := Result{Name: rt.spec.Name, Fingerprint: fp}
	for _, ts := range rt.spec.Traffic {
		tr, err := rt.runTraffic(ts)
		if err != nil {
			return res, err
		}
		res.Traffic = append(res.Traffic, tr)
	}
	for _, ts := range rt.spec.Transfers {
		tr, err := rt.runTransfer(ts)
		if err != nil {
			return res, err
		}
		res.Transfers = append(res.Transfers, tr)
	}
	if rt.spec.Requests != nil {
		rr, err := rt.runRequests(rt.spec.Requests)
		if err != nil {
			return res, err
		}
		res.Requests = rr
	}
	if rt.spec.DurationS > rt.engine.Now() {
		rt.idleUntil(rt.spec.DurationS)
	}
	res.DurationS = rt.engine.Now()
	rt.advanceAll()
	served := map[string]int{}
	expired := map[string]int{}
	for _, r := range res.Requests {
		if r.Served {
			served[r.Vehicle]++
		} else if r.Vehicle != "" {
			expired[r.Vehicle]++
		}
	}
	for _, c := range rt.crafts {
		vr := VehicleResult{
			ID:        c.spec.ID,
			Position:  c.ap.Vehicle().Position(),
			RouteDone: c.routeDone,
			Failed:    c.failed,
			FailedAtS: c.failedAt,
		}
		if rt.spec.Requests != nil {
			v := c.Autopilot().Vehicle() // catchUp: battery reads need elided drain replayed
			vr.Served = served[c.spec.ID]
			vr.Expired = expired[c.spec.ID]
			vr.EnergyUsedS = v.BatteryMinutes*60 - v.BatteryLeftSeconds()
		}
		res.Vehicles = append(res.Vehicles, vr)
	}
	return res, rt.err
}

// runTraffic executes one saturation workload.
func (rt *Runtime) runTraffic(ts TrafficSpec) (TrafficResult, error) {
	from, to := rt.byID[ts.From], rt.byID[ts.To]
	if ts.StartS > rt.engine.Now() {
		rt.idleUntil(ts.StartS)
	}
	rt.link.SetNow(rt.engine.Now())
	rt.installFault(ts.From, ts.To)
	out := TrafficResult{From: ts.From, To: ts.To, StartS: rt.engine.Now()}
	out.Samples = rt.measureWindowed(from, to, ts.DurationS, ts.WindowS)
	return out, rt.err
}

// runTransfer executes one batch delivery: optional start wait, optional
// arrival wait, optional now-or-later decision with its shipping leg, the
// transfer itself, and the AltTo failover for an incomplete batch.
func (rt *Runtime) runTransfer(ts TransferSpec) (TransferResult, error) {
	from, to := rt.byID[ts.From], rt.byID[ts.To]
	out := TransferResult{From: ts.From, To: ts.To, CompletionS: math.Inf(1)}
	if ts.StartS > rt.engine.Now() {
		rt.idleUntil(ts.StartS)
	}
	if ts.StartOnArrival {
		rt.waitTicks(rt.engine.Now()+ts.DeadlineS, func() bool {
			rt.advanceCraftTo(from, rt.engine.Now())
			return from.routeDone
		})
	}
	if ts.Decision != nil {
		if err := rt.runDecision(from, to, ts, &out); err != nil {
			return out, err
		}
	}

	out.StartS = rt.engine.Now()
	batch, err := rt.runBatch(from, to, int(ts.SizeMB*1e6), ts.DeadlineS, ts.Reliable)
	if err != nil {
		return out, err
	}
	out.CompletionS = batch.CompletionS
	out.DeliveredBytes = batch.DeliveredBytes
	out.RetransmittedBytes = batch.RetransmittedBytes
	out.Series = batch.Series

	// Failover: if the batch did not complete and a live fallback receiver
	// is declared, re-send the remainder to it.
	if math.IsInf(out.CompletionS, 1) && ts.AltTo != "" {
		alt := rt.byID[ts.AltTo]
		if alt != nil && !alt.failed && !from.failed {
			remaining := int(ts.SizeMB*1e6) - int(out.DeliveredBytes)
			if remaining > 0 {
				retryStart := rt.engine.Now()
				retry, err := rt.runBatch(from, alt, remaining, ts.DeadlineS, ts.Reliable)
				if err != nil {
					return out, err
				}
				out.Rerouted = true
				out.To = ts.AltTo
				out.DeliveredBytes += retry.DeliveredBytes
				out.RetransmittedBytes += retry.RetransmittedBytes
				for _, pt := range retry.Series {
					pt.TimeS += retryStart - out.StartS
					out.Series = append(out.Series, pt)
				}
				if !math.IsInf(retry.CompletionS, 1) {
					out.CompletionS = rt.engine.Now() - out.StartS
				}
			}
		}
	}
	return out, rt.err
}

// runDecision computes dopt for the transfer's geometry and, when the
// model says "later", ships the sender to the rendezvous distance first.
func (rt *Runtime) runDecision(from, to *Craft, ts TransferSpec, out *TransferResult) error {
	g := rt.pairGeometry(from, to)
	d0 := g.DistanceM
	out.D0M = d0
	speed := from.spec.SpeedMPS
	if speed <= 0 {
		speed = from.ap.Vehicle().CruiseSpeedMPS
	}
	dopt, err := rt.decide(from.spec.Platform, d0, speed, ts.SizeMB, ts.Decision)
	if err != nil {
		return err
	}
	out.DoptM = dopt
	if dopt >= d0-1 {
		return nil // transmit now
	}
	fv, tv := from.ap.Vehicle(), to.ap.Vehicle()
	dir := fv.Position().Sub(tv.Position()).Unit()
	wp := tv.Position().Add(dir.Scale(dopt))
	wp.Z = fv.Position().Z
	arrived := false
	from.Autopilot().GoTo(wp, from.spec.SpeedMPS, func() { arrived = true })
	rt.scheduleArrivalCheck(from)
	rt.waitTicks(rt.engine.Now()+ts.DeadlineS, func() bool {
		rt.advanceCraftTo(from, rt.engine.Now())
		return arrived || from.failed
	})
	return nil
}

// decide answers one now-or-later query for the given platform.
func (rt *Runtime) decide(platform string, d0, speed, sizeMB float64, d *DecisionSpec) (float64, error) {
	switch d.Kind {
	case "exact":
		sc := rt.decisionScenario(platform, d0, speed, sizeMB, d.RhoPerM)
		opt, err := sc.Optimize()
		if err != nil {
			return 0, fmt.Errorf("scenario: decision: %w", err)
		}
		return opt.DoptM, nil
	case "table":
		eng, err := rt.policyEngine(platform)
		if err != nil {
			return 0, err
		}
		dec, err := eng.Decide(policy.Query{
			D0M: d0, SpeedMPS: speed, MdataMB: sizeMB, Rho: d.RhoPerM,
		})
		if err != nil {
			return 0, fmt.Errorf("scenario: decision: %w", err)
		}
		return dec.Optimum.DoptM, nil
	default:
		return 0, fmt.Errorf("scenario: unknown decision kind %q", d.Kind)
	}
}

// decisionScenario builds the closed-form model instance for a decision.
func (rt *Runtime) decisionScenario(platform string, d0, speed, sizeMB, rho float64) core.Scenario {
	sc := core.QuadrocopterBaseline()
	if platform == PlatformPlane {
		sc = core.AirplaneBaseline()
	}
	sc.D0M = d0
	sc.SpeedMPS = speed
	sc.MdataBytes = sizeMB * 1e6
	if rho > 0 {
		if m, err := failure.NewModel(rho); err == nil {
			sc.Failure = m
		}
	}
	return sc
}

// policyEngine lazily builds (and caches per Runtime) the table-serving
// engine for a platform, on the quick grid — the deployment decision path
// a scenario file can exercise without a pre-built table artifact.
func (rt *Runtime) policyEngine(platform string) (*policy.Engine, error) {
	if rt.policyEngines == nil {
		rt.policyEngines = make(map[string]*policy.Engine)
	}
	if eng, ok := rt.policyEngines[platform]; ok {
		return eng, nil
	}
	cfg := policy.QuadrocopterConfig()
	if platform == PlatformPlane {
		cfg = policy.AirplaneConfig()
	}
	cfg.Grid = policy.QuickGrid()
	table, err := policy.Build(context.Background(), cfg, policy.BuildOptions{
		Label: "scenario/policy/" + platform,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: policy table: %w", err)
	}
	eng, err := policy.NewEngine(table, 0)
	if err != nil {
		return nil, fmt.Errorf("scenario: policy engine: %w", err)
	}
	rt.policyEngines[platform] = eng
	return eng, nil
}
