package scenario

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/policy"
	"github.com/nowlater/nowlater/internal/transport"
)

// TrafficResult is one saturation workload's windowed record.
type TrafficResult struct {
	From, To string
	// StartS is the scenario clock when the workload began.
	StartS  float64
	Samples []Sample
}

// TransferResult is one batch delivery's outcome.
type TransferResult struct {
	From, To string
	// StartS is the scenario clock when transmission began (after any
	// arrival wait and decision shipping leg).
	StartS float64
	// CompletionS is the transmission time from StartS to the last byte
	// (+Inf if the deadline expired first, failover attempts included).
	CompletionS float64
	// D0M and DoptM record the decision, when one ran: the distance at
	// which the transfer was requested and the chosen transmit distance.
	D0M, DoptM         float64
	DeliveredBytes     int64
	RetransmittedBytes int64
	Series             []transport.SeriesPoint
	// Rerouted reports that the remainder was re-sent to AltTo after the
	// primary attempt failed.
	Rerouted bool
}

// DeliveredMB is the delivered volume in megabytes.
func (t TransferResult) DeliveredMB() float64 { return float64(t.DeliveredBytes) / 1e6 }

// VehicleResult is one vehicle's final state.
type VehicleResult struct {
	ID        string
	Position  geo.Vec3
	RouteDone bool
	Failed    bool
	// FailedAtS is the exact scenario clock of the chaos kill (+Inf when
	// the vehicle survived).
	FailedAtS float64
	// Served and Expired count request outcomes attributed to this vehicle
	// and EnergyUsedS is its battery-seconds drained — populated only when
	// the Spec declares a requests workload.
	Served      int
	Expired     int
	EnergyUsedS float64
}

// Result is the outcome of one Spec execution.
type Result struct {
	Name string
	// Fingerprint identifies the Spec that produced this result.
	Fingerprint uint64
	Traffic     []TrafficResult
	Transfers   []TransferResult
	Requests    []RequestResult
	Vehicles    []VehicleResult
	// DurationS is the final scenario clock.
	DurationS float64
}

// Run executes the Program: workloads in declaration order (traffic
// first, then transfers) on the single engine clock, then flies out any
// remaining DurationS. Each workload advances the shared clock, so a later
// workload starts where the previous one ended.
func (rt *Runtime) Run() (Result, error) {
	res := Result{Name: rt.spec.Name, Fingerprint: rt.prog.Fingerprint()}
	for _, pt := range rt.prog.Traffic {
		tr, err := rt.runTraffic(pt)
		if err != nil {
			return res, err
		}
		res.Traffic = append(res.Traffic, tr)
	}
	for _, pt := range rt.prog.Transfers {
		tr, err := rt.runTransfer(pt)
		if err != nil {
			return res, err
		}
		res.Transfers = append(res.Transfers, tr)
	}
	if rt.prog.Requests != nil {
		rr, err := rt.runRequests(rt.prog.Requests)
		if err != nil {
			return res, err
		}
		res.Requests = rr
	}
	if rt.spec.DurationS > rt.engine.Now() {
		rt.idleUntil(rt.spec.DurationS)
	}
	res.DurationS = rt.engine.Now()
	rt.advanceAll()
	served := map[string]int{}
	expired := map[string]int{}
	for _, r := range res.Requests {
		if r.Served {
			served[r.Vehicle]++
		} else if r.Vehicle != "" {
			expired[r.Vehicle]++
		}
	}
	for _, c := range rt.crafts {
		vr := VehicleResult{
			ID:        c.spec.ID,
			Position:  c.ap.Vehicle().Position(),
			RouteDone: c.routeDone,
			Failed:    c.failed,
			FailedAtS: c.failedAt,
		}
		if rt.spec.Requests != nil {
			v := c.Autopilot().Vehicle() // catchUp: battery reads need elided drain replayed
			vr.Served = served[c.spec.ID]
			vr.Expired = expired[c.spec.ID]
			vr.EnergyUsedS = v.BatteryMinutes*60 - v.BatteryLeftSeconds()
		}
		res.Vehicles = append(res.Vehicles, vr)
	}
	return res, rt.err
}

// runTraffic executes one saturation workload.
func (rt *Runtime) runTraffic(pt ProgramTraffic) (TrafficResult, error) {
	from, to := rt.crafts[pt.From], rt.crafts[pt.To]
	if pt.StartS > rt.engine.Now() {
		rt.idleUntil(pt.StartS)
	}
	rt.link.SetNow(rt.engine.Now())
	rt.installFault(from.spec.ID, to.spec.ID)
	out := TrafficResult{From: from.spec.ID, To: to.spec.ID, StartS: rt.engine.Now()}
	out.Samples = rt.measureWindowed(from, to, pt.DurationS, pt.WindowS)
	return out, rt.err
}

// runTransfer executes one batch delivery: optional start wait, optional
// arrival wait, optional now-or-later decision with its shipping leg, the
// transfer itself, and the AltTo failover for an incomplete batch.
func (rt *Runtime) runTransfer(pt ProgramTransfer) (TransferResult, error) {
	from, to := rt.crafts[pt.From], rt.crafts[pt.To]
	out := TransferResult{From: from.spec.ID, To: to.spec.ID, CompletionS: math.Inf(1)}
	if pt.StartS > rt.engine.Now() {
		rt.idleUntil(pt.StartS)
	}
	if pt.StartOnArrival {
		rt.waitTicks(rt.engine.Now()+pt.DeadlineS, func() bool {
			rt.advanceCraftTo(from, rt.engine.Now())
			return from.routeDone
		})
	}
	if pt.Decision.Mode != DecisionNone {
		if err := rt.runDecision(from, to, pt, &out); err != nil {
			return out, err
		}
	}

	out.StartS = rt.engine.Now()
	batch, err := rt.runBatch(from, to, int(pt.SizeMB*1e6), pt.DeadlineS, pt.Reliable)
	if err != nil {
		return out, err
	}
	out.CompletionS = batch.CompletionS
	out.DeliveredBytes = batch.DeliveredBytes
	out.RetransmittedBytes = batch.RetransmittedBytes
	out.Series = batch.Series

	// Failover: if the batch did not complete and a live fallback receiver
	// is declared, re-send the remainder to it.
	if math.IsInf(out.CompletionS, 1) && pt.AltTo != NoVehicle {
		alt := rt.crafts[pt.AltTo]
		if !alt.failed && !from.failed {
			remaining := int(pt.SizeMB*1e6) - int(out.DeliveredBytes)
			if remaining > 0 {
				retryStart := rt.engine.Now()
				retry, err := rt.runBatch(from, alt, remaining, pt.DeadlineS, pt.Reliable)
				if err != nil {
					return out, err
				}
				out.Rerouted = true
				out.To = alt.spec.ID
				out.DeliveredBytes += retry.DeliveredBytes
				out.RetransmittedBytes += retry.RetransmittedBytes
				for _, sp := range retry.Series {
					sp.TimeS += retryStart - out.StartS
					out.Series = append(out.Series, sp)
				}
				if !math.IsInf(retry.CompletionS, 1) {
					out.CompletionS = rt.engine.Now() - out.StartS
				}
			}
		}
	}
	return out, rt.err
}

// runDecision computes dopt for the transfer's geometry and, when the
// model says "later", ships the sender to the rendezvous distance first.
func (rt *Runtime) runDecision(from, to *Craft, pt ProgramTransfer, out *TransferResult) error {
	g := rt.pairGeometry(from, to)
	d0 := g.DistanceM
	out.D0M = d0
	speed := from.spec.SpeedMPS
	if speed <= 0 {
		speed = from.ap.Vehicle().CruiseSpeedMPS
	}
	dopt, err := rt.decide(from.spec.Platform, d0, speed, pt.SizeMB, pt.Decision)
	if err != nil {
		return err
	}
	out.DoptM = dopt
	if dopt >= d0-1 {
		return nil // transmit now
	}
	fv, tv := from.ap.Vehicle(), to.ap.Vehicle()
	dir := fv.Position().Sub(tv.Position()).Unit()
	wp := tv.Position().Add(dir.Scale(dopt))
	wp.Z = fv.Position().Z
	arrived := false
	from.Autopilot().GoTo(wp, from.spec.SpeedMPS, func() { arrived = true })
	rt.scheduleArrivalCheck(from)
	rt.waitTicks(rt.engine.Now()+pt.DeadlineS, func() bool {
		rt.advanceCraftTo(from, rt.engine.Now())
		return arrived || from.failed
	})
	return nil
}

// decide answers one now-or-later query for the given platform.
func (rt *Runtime) decide(platform string, d0, speed, sizeMB float64, pd ProgramDecision) (float64, error) {
	switch pd.Mode {
	case DecisionExact:
		sc := rt.decisionScenario(platform, d0, speed, sizeMB, pd.RhoPerM)
		opt, err := sc.Optimize()
		if err != nil {
			return 0, fmt.Errorf("scenario: decision: %w", err)
		}
		return opt.DoptM, nil
	case DecisionTable:
		eng, err := rt.tables.Engine(platform)
		if err != nil {
			return 0, err
		}
		dec, err := eng.Decide(policy.Query{
			D0M: d0, SpeedMPS: speed, MdataMB: sizeMB, Rho: pd.RhoPerM,
		})
		if err != nil {
			return 0, fmt.Errorf("scenario: decision: %w", err)
		}
		return dec.Optimum.DoptM, nil
	default:
		return 0, fmt.Errorf("scenario: decide called without a decision mode")
	}
}

// decisionScenario builds the closed-form model instance for a decision.
func (rt *Runtime) decisionScenario(platform string, d0, speed, sizeMB, rho float64) core.Scenario {
	sc := core.QuadrocopterBaseline()
	if platform == PlatformPlane {
		sc = core.AirplaneBaseline()
	}
	sc.D0M = d0
	sc.SpeedMPS = speed
	sc.MdataBytes = sizeMB * 1e6
	if rho > 0 {
		if m, err := failure.NewModel(rho); err == nil {
			sc.Failure = m
		}
	}
	return sc
}
