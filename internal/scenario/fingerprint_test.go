package scenario

import (
	"testing"

	"github.com/nowlater/nowlater/internal/transport"
)

// Result fingerprints must be deterministic, exclude the Spec identity,
// and be sensitive to single-field outcome changes.
func TestResultFingerprintProperties(t *testing.T) {
	base := Result{
		Name:        "a",
		Fingerprint: 1,
		DurationS:   10,
		Traffic: []TrafficResult{{From: "x", To: "y", StartS: 1,
			Samples: []Sample{{TimeS: 0, ThroughputMb: 12.5, DistanceM: 80, Partial: true}}}},
		Transfers: []TransferResult{{From: "x", To: "y", StartS: 2, CompletionS: 3,
			DeliveredBytes: 100, Series: []transport.SeriesPoint{{TimeS: 1, DeliveredMB: 0.1}}}},
		Vehicles: []VehicleResult{{ID: "x", RouteDone: true}},
	}
	fp := ResultFingerprint(base)
	if fp != ResultFingerprint(base) {
		t.Fatal("fingerprint not deterministic")
	}

	// Spec identity is excluded: a renamed result hashes identically.
	renamed := base
	renamed.Name, renamed.Fingerprint = "b", 2
	if ResultFingerprint(renamed) != fp {
		t.Fatal("fingerprint depends on Spec identity")
	}

	// Every outcome field participates.
	mutations := map[string]func(*Result){
		"duration":       func(r *Result) { r.DurationS++ },
		"sample":         func(r *Result) { r.Traffic[0].Samples[0].ThroughputMb++ },
		"partial flag":   func(r *Result) { r.Traffic[0].Samples[0].Partial = false },
		"delivered":      func(r *Result) { r.Transfers[0].DeliveredBytes++ },
		"series point":   func(r *Result) { r.Transfers[0].Series[0].DeliveredMB++ },
		"vehicle flag":   func(r *Result) { r.Vehicles[0].RouteDone = false },
		"vehicle id":     func(r *Result) { r.Vehicles[0].ID = "z" },
		"transfer order": func(r *Result) { r.Transfers[0].To = "z" },
	}
	for name, mutate := range mutations {
		r := base
		// Deep-enough copy for the slices each mutation touches.
		r.Traffic = []TrafficResult{base.Traffic[0]}
		r.Traffic[0].Samples = append([]Sample(nil), base.Traffic[0].Samples...)
		r.Transfers = []TransferResult{base.Transfers[0]}
		r.Transfers[0].Series = append([]transport.SeriesPoint(nil), base.Transfers[0].Series...)
		r.Vehicles = append([]VehicleResult(nil), base.Vehicles...)
		mutate(&r)
		if ResultFingerprint(r) == fp {
			t.Fatalf("mutation %q did not change the fingerprint", name)
		}
	}

	// WorkloadFingerprint ignores vehicles and the final clock...
	wfp := WorkloadFingerprint(base)
	later := base
	later.DurationS = 99
	later.Vehicles = []VehicleResult{{ID: "x", RouteDone: false}}
	if WorkloadFingerprint(later) != wfp {
		t.Fatal("workload fingerprint leaked post-workload state")
	}
	// ...but still covers workload outcomes.
	changed := base
	changed.Transfers = []TransferResult{base.Transfers[0]}
	changed.Transfers[0].DeliveredBytes++
	if WorkloadFingerprint(changed) == wfp {
		t.Fatal("workload fingerprint missed a transfer change")
	}
}
