package scenario

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/sim"
)

// twoQuadSpec is the minimal valid scenario most tests start from.
func twoQuadSpec() Spec {
	return Spec{
		Name: "test",
		Seed: 1,
		Vehicles: []VehicleSpec{
			{ID: "tx", Platform: PlatformQuad, Start: geo.Vec3{X: 30, Z: 10}, Hold: true},
			{ID: "rx", Platform: PlatformQuad, Start: geo.Vec3{Z: 10}, Hold: true},
		},
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	if err := twoQuadSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no vehicles", func(s *Spec) { s.Vehicles = nil }},
		{"duplicate id", func(s *Spec) { s.Vehicles[1].ID = "tx" }},
		{"empty id", func(s *Spec) { s.Vehicles[0].ID = "" }},
		{"unknown platform", func(s *Spec) { s.Vehicles[0].Platform = "zeppelin" }},
		{"NaN start", func(s *Spec) { s.Vehicles[0].Start.X = math.NaN() }},
		{"negative speed", func(s *Spec) { s.Vehicles[0].SpeedMPS = -1 }},
		{"hold and route", func(s *Spec) { s.Vehicles[0].Route = []geo.Vec3{{X: 1}} }},
		{"non-finite waypoint", func(s *Spec) {
			s.Vehicles[0].Hold = false
			s.Vehicles[0].Route = []geo.Vec3{{X: math.Inf(1)}}
		}},
		{"loop without route", func(s *Spec) { s.Vehicles[0].Loop = true }},
		{"loop_from outside route", func(s *Spec) {
			s.Vehicles[0].Hold = false
			s.Vehicles[0].Route = []geo.Vec3{{X: 1}}
			s.Vehicles[0].Loop = true
			s.Vehicles[0].LoopFrom = 1
		}},
		{"loop_from without loop", func(s *Spec) {
			s.Vehicles[0].Hold = false
			s.Vehicles[0].Route = []geo.Vec3{{X: 1}, {X: 2}}
			s.Vehicles[0].LoopFrom = 1
		}},
		{"negative duration", func(s *Spec) { s.DurationS = -1 }},
		{"NaN duration", func(s *Spec) { s.DurationS = math.NaN() }},
		{"bad rate", func(s *Spec) { s.Link.Rate = "mcs99" }},
		{"traffic unknown vehicle", func(s *Spec) {
			s.Traffic = []TrafficSpec{{From: "tx", To: "ghost", DurationS: 1, WindowS: 1}}
		}},
		{"traffic self-loop", func(s *Spec) {
			s.Traffic = []TrafficSpec{{From: "tx", To: "tx", DurationS: 1, WindowS: 1}}
		}},
		{"traffic zero duration", func(s *Spec) {
			s.Traffic = []TrafficSpec{{From: "tx", To: "rx", WindowS: 1}}
		}},
		{"traffic zero window", func(s *Spec) {
			s.Traffic = []TrafficSpec{{From: "tx", To: "rx", DurationS: 1}}
		}},
		{"transfer unknown vehicle", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "ghost", To: "rx", SizeMB: 1, DeadlineS: 1}}
		}},
		{"transfer zero size", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "tx", To: "rx", DeadlineS: 1}}
		}},
		{"transfer zero deadline", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "tx", To: "rx", SizeMB: 1}}
		}},
		{"transfer alt_to is sender", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "tx", To: "rx", SizeMB: 1, DeadlineS: 1, AltTo: "tx"}}
		}},
		{"unknown decision kind", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "tx", To: "rx", SizeMB: 1, DeadlineS: 1,
				Decision: &DecisionSpec{Kind: "oracle"}}}
		}},
		{"negative rho", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "tx", To: "rx", SizeMB: 1, DeadlineS: 1,
				Decision: &DecisionSpec{Kind: "exact", RhoPerM: -1}}}
		}},
		{"bad chaos line", func(s *Spec) { s.Chaos = []string{"vehicle explode tx 5"} }},
	}
	for _, tc := range cases {
		s := twoQuadSpec()
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseRate(t *testing.T) {
	for _, tc := range []struct {
		in   string
		mcs  int
		fail bool
	}{
		{"", -1, false},
		{"minstrel", -1, false},
		{"mcs0", 0, false},
		{"mcs15", 15, false},
		{"mcs31", 31, false},
		{"mcs32", 0, true},
		{"mcs-1", 0, true},
		{"mcsx", 0, true},
		{"fixed", 0, true},
	} {
		mcs, err := ParseRate(tc.in)
		if tc.fail != (err != nil) {
			t.Errorf("ParseRate(%q) err = %v", tc.in, err)
			continue
		}
		if !tc.fail && mcs != tc.mcs {
			t.Errorf("ParseRate(%q) = %d, want %d", tc.in, mcs, tc.mcs)
		}
	}
}

// randSpec generates a random valid Spec — the round-trip property's input
// distribution covers every optional field.
func randSpec(rng *rand.Rand) Spec {
	platforms := []string{PlatformQuad, PlatformPlane}
	n := 1 + rng.Intn(4)
	s := Spec{
		Name:      "prop",
		Seed:      rng.Int63n(1 << 40),
		DurationS: float64(rng.Intn(100)),
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('a' + i))
		v := VehicleSpec{
			ID:       ids[i],
			Platform: platforms[rng.Intn(2)],
			Start:    geo.Vec3{X: rng.Float64() * 100, Y: rng.Float64() * 100, Z: 10 + rng.Float64()*90},
			SpeedMPS: float64(rng.Intn(20)),
		}
		switch rng.Intn(3) {
		case 0:
			v.Hold = true
		case 1:
			for j := 0; j <= rng.Intn(3); j++ {
				v.Route = append(v.Route, geo.Vec3{X: rng.Float64() * 500, Z: 10})
			}
			if rng.Intn(2) == 0 {
				v.Loop = true
				v.LoopFrom = rng.Intn(len(v.Route))
			}
		}
		s.Vehicles = append(s.Vehicles, v)
	}
	if rng.Intn(2) == 0 {
		s.Link = LinkSpec{
			Seed:  rng.Int63n(1000),
			Label: "prop/link",
			Rate:  []string{"", "minstrel", "mcs3", "mcs15"}[rng.Intn(4)],
		}
	}
	if n >= 2 && rng.Intn(2) == 0 {
		s.Traffic = append(s.Traffic, TrafficSpec{
			From: ids[0], To: ids[1],
			StartS:    float64(rng.Intn(10)),
			DurationS: 1 + rng.Float64()*10,
			WindowS:   0.5 + rng.Float64(),
		})
	}
	if n >= 2 && rng.Intn(2) == 0 {
		tr := TransferSpec{
			From: ids[1], To: ids[0],
			SizeMB:         0.1 + rng.Float64()*10,
			DeadlineS:      1 + rng.Float64()*100,
			StartOnArrival: rng.Intn(2) == 0,
			Reliable:       rng.Intn(2) == 0,
		}
		if n >= 3 && rng.Intn(2) == 0 {
			tr.AltTo = ids[2]
		}
		if rng.Intn(2) == 0 {
			tr.Decision = &DecisionSpec{
				Kind:    []string{"exact", "table"}[rng.Intn(2)],
				RhoPerM: float64(rng.Intn(3)) * 1e-4,
			}
		}
		s.Transfers = append(s.Transfers, tr)
	}
	if rng.Intn(3) == 0 {
		s.Chaos = []string{
			"seed 7",
			"telemetry loss 0.25 0 100",
			"vehicle fail " + ids[0] + " 50",
		}
	}
	return s
}

// TestSpecRoundTripProperty: Decode(Encode(s)) == s for any valid Spec, and
// the encoding (hence the fingerprint) is a pure function of the Spec.
func TestSpecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		s := randSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("generator produced invalid spec: %v", err)
		}
		data, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, data)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip changed the spec:\n got %#v\nwant %#v", got, s)
		}
		fp1, err := Fingerprint(s)
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := Fingerprint(got)
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Fatalf("fingerprint not stable across round trip: %x vs %x", fp1, fp2)
		}
	}
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	if _, err := Decode([]byte(`{"name":"x","seed":1,"vehicels":[]}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	data, err := Encode(twoQuadSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, []byte("{}")...)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestChaosLinesRoundTrip(t *testing.T) {
	sched := &chaos.Schedule{Seed: 3}
	sched.Telemetry = append(sched.Telemetry, chaos.TelemetryFault{
		LossProb: 0.25, Window: chaos.Window{StartS: 0, EndS: 100},
	})
	sched.Vehicles = append(sched.Vehicles, chaos.VehicleFault{
		ID: "relay-1", AtS: 99,
	})
	lines := ChaosLines(sched)
	if len(lines) == 0 {
		t.Fatal("no lines")
	}
	s := twoQuadSpec()
	s.Chaos = lines
	parsed, err := s.ChaosSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Seed != 3 || len(parsed.Telemetry) != 1 || len(parsed.Vehicles) != 1 {
		t.Fatalf("schedule did not survive the text round trip: %+v", parsed)
	}
	if tt, ok := parsed.VehicleFailTime("relay-1"); !ok || tt != 99 {
		t.Fatalf("vehicle fail time = %v, %v", tt, ok)
	}
	if ChaosLines(nil) != nil || ChaosLines(&chaos.Schedule{}) != nil {
		t.Fatal("empty schedules must render to no lines")
	}
}

func TestTicks(t *testing.T) {
	e := sim.NewEngine()
	var at []float64
	err := Ticks(e, 0.5, 2.0, func(now float64) bool {
		at = append(at, now)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.0, 1.5, 2.0}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	if e.Now() != 2.0 {
		t.Fatalf("clock = %v", e.Now())
	}

	// Early stop: fn returning false ends the loop without reaching the
	// horizon.
	e = sim.NewEngine()
	n := 0
	err = Ticks(e, 0.5, 10, func(float64) bool { n++; return n < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || e.Now() != 1.5 {
		t.Fatalf("early stop: n=%d now=%v", n, e.Now())
	}

	// Events scheduled on the engine fire during ticks (the single-clock
	// point: mission logic and event traffic share the clock).
	e = sim.NewEngine()
	fired := false
	if _, err := e.Schedule(0.75, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := Ticks(e, 0.5, 1.0, func(float64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("scheduled event did not fire during ticks")
	}
}

func TestMissionSpecValidate(t *testing.T) {
	valid := MissionSpec{
		Name:       "m",
		Seed:       1,
		MaxSeconds: 100,
		Vehicles: []MissionVehicle{
			{ID: "scout-1", Platform: PlatformQuad, Role: RoleScout, SectorWM: 40, SectorHM: 40, AltitudeM: 10},
			{ID: "relay-1", Platform: PlatformQuad, Role: RoleRelay},
		},
	}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*MissionSpec)
	}{
		{"zero max seconds", func(m *MissionSpec) { m.MaxSeconds = 0 }},
		{"no relay", func(m *MissionSpec) { m.Vehicles = m.Vehicles[:1] }},
		{"no scout", func(m *MissionSpec) { m.Vehicles = m.Vehicles[1:] }},
		{"duplicate id", func(m *MissionSpec) { m.Vehicles[1].ID = "scout-1" }},
		{"unknown role", func(m *MissionSpec) { m.Vehicles[0].Role = "tanker" }},
		{"unknown platform", func(m *MissionSpec) { m.Vehicles[0].Platform = "balloon" }},
		{"zero sector", func(m *MissionSpec) { m.Vehicles[0].SectorWM = 0 }},
		{"bad chaos", func(m *MissionSpec) { m.Chaos = []string{"gremlins everywhere"} }},
	}
	for _, tc := range cases {
		m := valid
		m.Vehicles = append([]MissionVehicle(nil), valid.Vehicles...)
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
