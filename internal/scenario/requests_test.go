package scenario

import (
	"math"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
)

// pickupSpec builds a small request-service scenario: one holding
// collector, two quad servers, four explicit requests.
func pickupSpec(planner string) Spec {
	return Spec{
		Name: "pickup-" + planner,
		Seed: 7,
		Vehicles: []VehicleSpec{
			{ID: "base", Platform: PlatformQuad, Start: geo.Vec3{X: 0, Y: 0, Z: 50}, Hold: true},
			{ID: "uav-1", Platform: PlatformQuad, Start: geo.Vec3{X: 50, Y: 0, Z: 50}, SpeedMPS: 10},
			{ID: "uav-2", Platform: PlatformQuad, Start: geo.Vec3{X: 0, Y: 50, Z: 50}, SpeedMPS: 10},
		},
		Requests: &RequestsSpec{
			Collector: "base",
			Planner:   planner,
			Requests: []RequestSpec{
				{ID: "r1", Origin: geo.Vec3{X: 400, Y: 100, Z: 50}, SizeMB: 4, ArrivalS: 0, DeadlineS: 300},
				{ID: "r2", Origin: geo.Vec3{X: 150, Y: 350, Z: 50}, SizeMB: 2, ArrivalS: 10, DeadlineS: 280},
				{ID: "r3", Origin: geo.Vec3{X: 500, Y: 400, Z: 50}, SizeMB: 6, ArrivalS: 25, DeadlineS: 400},
				{ID: "r4", Origin: geo.Vec3{X: 80, Y: 120, Z: 50}, SizeMB: 1, ArrivalS: 40, DeadlineS: 200},
			},
		},
	}
}

func runSpec(t *testing.T, s Spec, opts Options) Result {
	t.Helper()
	rt, err := CompileWithOptions(s, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := rt.InvariantViolations(); len(v) > 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	return res
}

func TestRequestsServeEndToEnd(t *testing.T) {
	for _, planner := range []string{PlannerFixed, PlannerGreedy, PlannerJoint} {
		res := runSpec(t, pickupSpec(planner), Options{CheckInvariants: true})
		if len(res.Requests) != 4 {
			t.Fatalf("%s: got %d request results, want 4", planner, len(res.Requests))
		}
		servedTotal := 0
		for _, r := range res.Requests {
			if r.Served {
				servedTotal++
				if !(r.CompletionS > r.ArrivalS) || r.CompletionS > r.DeadlineS {
					t.Errorf("%s: request %s served with implausible completion %v (arrival %v deadline %v)",
						planner, r.ID, r.CompletionS, r.ArrivalS, r.DeadlineS)
				}
				if r.Vehicle == "" {
					t.Errorf("%s: served request %s has no vehicle", planner, r.ID)
				}
			}
		}
		if servedTotal == 0 {
			t.Fatalf("%s: no requests served in a comfortably feasible scenario", planner)
		}
		var vehServed int
		var energy float64
		for _, v := range res.Vehicles {
			vehServed += v.Served
			if v.ID != "base" && v.EnergyUsedS <= 0 {
				t.Errorf("%s: server %s shows no energy use", planner, v.ID)
			}
			energy += v.EnergyUsedS
		}
		if vehServed != servedTotal {
			t.Errorf("%s: vehicle served counts %d != request served total %d", planner, vehServed, servedTotal)
		}
		if !(energy > 0) {
			t.Errorf("%s: no fleet energy accounted", planner)
		}
	}
}

func TestRequestsPoissonMaterializeDeterministic(t *testing.T) {
	s := pickupSpec(PlannerFixed)
	s.Requests.Requests = nil
	s.Requests.Poisson = &PoissonSpec{
		RatePerS: 0.05, Count: 6,
		MinSizeMB: 1, MaxSizeMB: 6,
		MinLeadS: 60, MaxLeadS: 240,
		AreaM: 600, AltM: 50,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	pa, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pa.Requests.Requests, pb.Requests.Requests
	if len(a) != 6 {
		t.Fatalf("materialized %d requests, want 6", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d not deterministic: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].ArrivalS < a[i-1].ArrivalS {
			t.Fatalf("arrivals out of order: %v after %v", a[i].ArrivalS, a[i-1].ArrivalS)
		}
		if !(a[i].DeadlineS > a[i].ArrivalS) {
			t.Fatalf("draw %d: deadline %v not after arrival %v", i, a[i].DeadlineS, a[i].ArrivalS)
		}
	}
	// A different seed must draw a different workload.
	s2 := s
	s2.Seed = 8
	p2, err := Resolve(s2)
	if err != nil {
		t.Fatal(err)
	}
	c := p2.Requests.Requests
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not perturb the Poisson draw")
	}
}

func TestRequestsLockstepEquality(t *testing.T) {
	for _, planner := range []string{PlannerFixed, PlannerGreedy, PlannerJoint} {
		s := pickupSpec(planner)
		s.Requests.Poisson = &PoissonSpec{
			RatePerS: 0.1, Count: 3,
			MinSizeMB: 1, MaxSizeMB: 4,
			MinLeadS: 90, MaxLeadS: 300,
			AreaM: 500, AltM: 50,
		}
		event := runSpec(t, s, Options{CheckInvariants: true})
		lock := runSpec(t, s, Options{Lockstep: true, CheckInvariants: true})
		if ResultFingerprint(event) != ResultFingerprint(lock) {
			t.Fatalf("%s: event-driven and lockstep runs diverge: %016x vs %016x",
				planner, ResultFingerprint(event), ResultFingerprint(lock))
		}
	}
}

func TestRequestsDeterministic(t *testing.T) {
	a := runSpec(t, pickupSpec(PlannerJoint), Options{})
	b := runSpec(t, pickupSpec(PlannerJoint), Options{})
	if ResultFingerprint(a) != ResultFingerprint(b) {
		t.Fatalf("joint-planner run not deterministic: %016x vs %016x",
			ResultFingerprint(a), ResultFingerprint(b))
	}
}

func TestRequestsEnergyBudgetRetires(t *testing.T) {
	s := pickupSpec(PlannerFixed)
	// A budget too small to fly even one pickup: nothing gets served.
	s.Requests.EnergyBudgetS = 1
	res := runSpec(t, s, Options{})
	for _, r := range res.Requests {
		if r.Served {
			t.Fatalf("request %s served despite a 1-battery-second fleet budget", r.ID)
		}
	}
}

func TestRequestsChaosKillRequeues(t *testing.T) {
	s := pickupSpec(PlannerFixed)
	s.Chaos = []string{"vehicle fail uav-1 5"}
	res := runSpec(t, s, Options{CheckInvariants: true})
	for _, v := range res.Vehicles {
		if v.ID == "uav-1" {
			if !v.Failed {
				t.Fatal("uav-1 should be chaos-killed")
			}
			if v.Served != 0 {
				t.Fatalf("dead vehicle credited with %d served requests", v.Served)
			}
		}
	}
	// The surviving server should still deliver something.
	served := 0
	for _, r := range res.Requests {
		if r.Served {
			served++
			if r.Vehicle == "uav-1" {
				t.Fatalf("request %s credited to the dead vehicle", r.ID)
			}
		}
	}
	if served == 0 {
		t.Fatal("no requests served after single-vehicle kill with a second server available")
	}
}

func TestRequestsFingerprintCoversOutcomes(t *testing.T) {
	res := runSpec(t, pickupSpec(PlannerFixed), Options{})
	base := ResultFingerprint(res)
	mut := res
	mut.Requests = append([]RequestResult(nil), res.Requests...)
	mut.Requests[0].Served = !mut.Requests[0].Served
	if ResultFingerprint(mut) == base {
		t.Fatal("flipping a served bit did not change the result fingerprint")
	}
	mut2 := res
	mut2.Vehicles = append([]VehicleResult(nil), res.Vehicles...)
	mut2.Vehicles[1].EnergyUsedS++
	if ResultFingerprint(mut2) == base {
		t.Fatal("perturbing vehicle energy did not change the result fingerprint")
	}
	if WorkloadFingerprint(mut) == WorkloadFingerprint(res) {
		t.Fatal("workload fingerprint ignores request outcomes")
	}
}

func TestRequestsRoundTrip(t *testing.T) {
	s := pickupSpec(PlannerJoint)
	s.Requests.HorizonS = 120
	s.Requests.ReplanTicks = 25
	s.Requests.EnergyBudgetS = 900
	s.Requests.Decision = &DecisionSpec{Kind: "exact", RhoPerM: 1.1e-4}
	s.Requests.Poisson = &PoissonSpec{
		RatePerS: 0.05, Count: 4, Seed: 11,
		MinSizeMB: 1, MaxSizeMB: 8,
		MinLeadS: 60, MaxLeadS: 240,
		AreaM: 700, AltM: 60,
	}
	enc, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", enc, enc2)
	}
	fp1, err := Fingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := Fingerprint(dec)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("spec fingerprint changed across round trip")
	}
}

func TestRequestsValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"with traffic", func(s *Spec) {
			s.Traffic = []TrafficSpec{{From: "uav-1", To: "base", DurationS: 5, WindowS: 1}}
		}, "mutually exclusive"},
		{"with transfers", func(s *Spec) {
			s.Transfers = []TransferSpec{{From: "uav-1", To: "base", SizeMB: 1, DeadlineS: 10}}
		}, "mutually exclusive"},
		{"unknown collector", func(s *Spec) { s.Requests.Collector = "ghost" }, "unknown collector"},
		{"non-holding collector", func(s *Spec) { s.Vehicles[0].Hold = false }, "must hold"},
		{"collector serving", func(s *Spec) { s.Requests.Vehicles = []string{"base"} }, "cannot also serve"},
		{"unknown server", func(s *Spec) { s.Requests.Vehicles = []string{"ghost"} }, "unknown vehicle"},
		{"duplicate server", func(s *Spec) { s.Requests.Vehicles = []string{"uav-1", "uav-1"} }, "duplicate"},
		{"routed server", func(s *Spec) {
			s.Vehicles[1].Route = []geo.Vec3{{X: 1, Y: 1, Z: 50}}
		}, "has a route"},
		{"bad planner", func(s *Spec) { s.Requests.Planner = "oracle" }, "unknown planner"},
		{"negative horizon", func(s *Spec) { s.Requests.HorizonS = -1 }, "horizon"},
		{"nan horizon", func(s *Spec) { s.Requests.HorizonS = math.NaN() }, "horizon"},
		{"negative replan", func(s *Spec) { s.Requests.ReplanTicks = -1 }, "replan_ticks"},
		{"inf budget", func(s *Spec) { s.Requests.EnergyBudgetS = math.Inf(1) }, "energy budget"},
		{"bad decision", func(s *Spec) { s.Requests.Decision = &DecisionSpec{Kind: "magic"} }, "decision kind"},
		{"no workload", func(s *Spec) { s.Requests.Requests = nil }, "need explicit requests"},
		{"dup request id", func(s *Spec) { s.Requests.Requests[1].ID = "r1" }, "duplicate id"},
		{"reserved id", func(s *Spec) { s.Requests.Requests[0].ID = "auto-001" }, "reserved"},
		{"nan origin", func(s *Spec) { s.Requests.Requests[0].Origin.X = math.NaN() }, "non-finite origin"},
		{"zero size", func(s *Spec) { s.Requests.Requests[0].SizeMB = 0 }, "size"},
		{"inf size", func(s *Spec) { s.Requests.Requests[0].SizeMB = math.Inf(1) }, "size"},
		{"negative arrival", func(s *Spec) { s.Requests.Requests[0].ArrivalS = -1 }, "arrival"},
		{"deadline before arrival", func(s *Spec) {
			s.Requests.Requests[0].ArrivalS = 50
			s.Requests.Requests[0].DeadlineS = 50
		}, "deadline"},
		{"poisson zero rate", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{Count: 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: 1, AreaM: 1, AltM: 1}
		}, "rate"},
		{"poisson nan rate", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: math.NaN(), Count: 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: 1, AreaM: 1, AltM: 1}
		}, "rate"},
		{"poisson zero count", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: 1, AreaM: 1, AltM: 1}
		}, "count"},
		{"poisson bad size band", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: 1, Count: 1, MinSizeMB: 4, MaxSizeMB: 2, MinLeadS: 1, MaxLeadS: 1, AreaM: 1, AltM: 1}
		}, "size band"},
		{"poisson inf lead", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: 1, Count: 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: math.Inf(1), AreaM: 1, AltM: 1}
		}, "lead band"},
		{"poisson zero area", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: 1, Count: 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: 1, AltM: 1}
		}, "area"},
		{"poisson low altitude", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: 1, Count: 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: 1, AreaM: 1, AltM: 0.5}
		}, "altitude"},
		{"request flood", func(s *Spec) {
			s.Requests.Poisson = &PoissonSpec{RatePerS: 1, Count: maxRequestCount + 1, MinSizeMB: 1, MaxSizeMB: 1, MinLeadS: 1, MaxLeadS: 1, AreaM: 1, AltM: 1}
		}, "cap"},
	}
	for _, c := range cases {
		s := pickupSpec(PlannerFixed)
		c.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRequestsDurationExtensionSafe pins the metamorphic property the
// differential harness relies on: extending DurationS past the request
// phase must not change any workload outcome (the phase cap comes from
// deadlines, not DurationS).
func TestRequestsDurationExtensionSafe(t *testing.T) {
	s := pickupSpec(PlannerJoint)
	base := runSpec(t, s, Options{})
	s.DurationS = base.DurationS + 7.5
	ext := runSpec(t, s, Options{})
	if WorkloadFingerprint(base) != WorkloadFingerprint(ext) {
		t.Fatal("duration extension rewrote request workload history")
	}
}
