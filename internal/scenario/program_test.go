package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
)

// irSpec is a scenario exercising every Resolve lowering at once: routes,
// a loop, chaos kills out of declaration order, a decided transfer with a
// fallback, and a traffic workload is impossible alongside requests — so
// the requests path gets its own spec below.
func irSpec() Spec {
	return Spec{
		Name: "ir-test",
		Seed: 7,
		Vehicles: []VehicleSpec{
			{ID: "ferry", Platform: PlatformQuad, Start: geo.Vec3{X: 300, Z: 12},
				Route: []geo.Vec3{{X: 120, Z: 12}, {X: 40, Z: 12}}, SpeedMPS: 9},
			{ID: "relay", Platform: PlatformQuad, Start: geo.Vec3{Z: 12}, Hold: true},
			{ID: "backup", Platform: PlatformQuad, Start: geo.Vec3{Y: 40, Z: 12}, Hold: true},
		},
		Transfers: []TransferSpec{{
			From: "ferry", To: "relay", AltTo: "backup",
			SizeMB: 2, DeadlineS: 30, StartOnArrival: true, Reliable: true,
			Decision: &DecisionSpec{Kind: "exact", RhoPerM: 1e-3},
		}},
		Chaos: []string{
			"vehicle fail backup 25",
			"vehicle fail relay 8",
		},
		DurationS: 10,
	}
}

func requestsIRSpec() Spec {
	return Spec{
		Name: "ir-requests",
		Seed: 11,
		Vehicles: []VehicleSpec{
			{ID: "base", Platform: PlatformQuad, Start: geo.Vec3{Z: 30}, Hold: true},
			{ID: "uav-1", Platform: PlatformQuad, Start: geo.Vec3{X: 40, Z: 30}},
			{ID: "uav-2", Platform: PlatformQuad, Start: geo.Vec3{X: -40, Z: 30}},
		},
		Requests: &RequestsSpec{
			Collector: "base",
			Poisson: &PoissonSpec{
				RatePerS: 0.05, Count: 4,
				MinSizeMB: 1, MaxSizeMB: 3,
				MinLeadS: 120, MaxLeadS: 300,
				AreaM: 400, AltM: 30,
			},
		},
	}
}

func TestResolveLowersHandlesAndChaos(t *testing.T) {
	p, err := Resolve(irSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"ferry", "relay", "backup"} {
		h, ok := p.Handle(id)
		if !ok || h != i {
			t.Fatalf("handle %q = %d,%v; want %d,true", id, h, ok, i)
		}
	}
	if _, ok := p.Handle("ghost"); ok {
		t.Fatal("unknown id resolved to a handle")
	}
	// Kills must be time-sorted regardless of chaos-line order.
	want := []ProgramKill{{Vehicle: 1, AtS: 8}, {Vehicle: 2, AtS: 25}}
	if !reflect.DeepEqual(p.Kills, want) {
		t.Fatalf("kills %+v, want %+v", p.Kills, want)
	}
	tr := p.Transfers[0]
	if tr.From != 0 || tr.To != 1 || tr.AltTo != 2 {
		t.Fatalf("transfer handles %d->%d alt %d, want 0->1 alt 2", tr.From, tr.To, tr.AltTo)
	}
	if tr.Decision.Mode != DecisionExact || tr.Decision.RhoPerM != 1e-3 {
		t.Fatalf("decision %+v not resolved to exact/1e-3", tr.Decision)
	}
	if len(p.TableKeys) != 0 {
		t.Fatalf("exact-only spec claims table keys %v", p.TableKeys)
	}
	// Link config defaulting is hoisted into Resolve.
	if p.LinkConfig.Seed != 7 || p.LinkConfig.Label != "scenario/ir-test" {
		t.Fatalf("link config seed %d label %q not defaulted", p.LinkConfig.Seed, p.LinkConfig.Label)
	}
	if p.RateMCS != -1 {
		t.Fatalf("rate mcs %d, want -1 (auto)", p.RateMCS)
	}
}

func TestResolveTransferWithoutFallback(t *testing.T) {
	s := irSpec()
	s.Transfers[0].AltTo = ""
	s.Transfers[0].Decision = nil
	p, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Transfers[0]
	if tr.AltTo != NoVehicle {
		t.Fatalf("absent alt_to resolved to %d, want NoVehicle", tr.AltTo)
	}
	if tr.Decision.Mode != DecisionNone {
		t.Fatalf("absent decision resolved to %v, want none", tr.Decision.Mode)
	}
}

func TestResolveRequestsDefaults(t *testing.T) {
	p, err := Resolve(requestsIRSpec())
	if err != nil {
		t.Fatal(err)
	}
	rp := p.Requests
	if rp == nil {
		t.Fatal("requests section not resolved")
	}
	if rp.Collector != 0 || !reflect.DeepEqual(rp.Servers, []int{1, 2}) {
		t.Fatalf("collector %d servers %v, want 0 and [1 2]", rp.Collector, rp.Servers)
	}
	if rp.Planner != PlannerFixed {
		t.Fatalf("planner %q, want fixed default", rp.Planner)
	}
	if rp.ReplanTicks != defaultReplanTicks {
		t.Fatalf("replan ticks %d, want default %d", rp.ReplanTicks, defaultReplanTicks)
	}
	if rp.Decision.Mode != DecisionExact {
		t.Fatalf("nil requests decision resolved to %v, want exact", rp.Decision.Mode)
	}
	if len(rp.Requests) != 4 {
		t.Fatalf("materialized %d requests, want 4", len(rp.Requests))
	}
	for i := 1; i < len(rp.Requests); i++ {
		if rp.Requests[i].ArrivalS < rp.Requests[i-1].ArrivalS {
			t.Fatal("materialized requests not sorted by arrival")
		}
	}
}

// Resolve must be a pure function of the Spec: byte-identical Programs on
// every call.
func TestResolveDeterministic(t *testing.T) {
	for _, s := range []Spec{irSpec(), requestsIRSpec()} {
		a, err := Resolve(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Resolve(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Resolve not deterministic", s.Name)
		}
		if a.Fingerprint() != b.Fingerprint() || a.Fingerprint() == 0 {
			t.Fatalf("%s: fingerprints %016x vs %016x", s.Name, a.Fingerprint(), b.Fingerprint())
		}
	}
}

// Compile(spec) must be exactly Link(Resolve(spec)), and a Program must be
// re-linkable: every path produces bit-identical Results.
func TestCompileEquivalentToResolvePlusLink(t *testing.T) {
	for _, s := range []Spec{irSpec(), requestsIRSpec()} {
		rtc, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		resC, err := rtc.Run()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Resolve(s)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // re-link the same Program twice
			rtl, err := Link(p)
			if err != nil {
				t.Fatal(err)
			}
			resL, err := rtl.Run()
			if err != nil {
				t.Fatal(err)
			}
			if ResultFingerprint(resC) != ResultFingerprint(resL) {
				t.Fatalf("%s: link pass %d fingerprint %016x != compile %016x",
					s.Name, pass, ResultFingerprint(resL), ResultFingerprint(resC))
			}
			if !reflect.DeepEqual(resC, resL) {
				t.Fatalf("%s: link pass %d result differs from compile", s.Name, pass)
			}
		}
	}
}

func TestResolveAllNamesOffendingSpec(t *testing.T) {
	bad := irSpec()
	bad.Vehicles[1].ID = "ferry" // duplicate
	_, err := ResolveAll([]Spec{irSpec(), bad})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if !strings.Contains(err.Error(), "batch spec 1") {
		t.Fatalf("batch error %q does not name the offending index", err)
	}
}

func TestTableCacheSharesBuilds(t *testing.T) {
	tc := NewTableCache()
	a, err := tc.Engine(PlatformQuad)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.Engine(PlatformQuad)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same platform key built two engines")
	}
	st := tc.Stats()
	if st.Builds != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 build and 1 hit", st)
	}
	if !(st.BuildWallS > 0) {
		t.Fatalf("build wall %v not recorded", st.BuildWallS)
	}
	if keys := tc.Keys(); !reflect.DeepEqual(keys, []string{PlatformQuad}) {
		t.Fatalf("keys %v", keys)
	}
}

// A shared TableCache must not change results: table answers are a pure
// function of the platform config, warm or cold.
func TestSharedTableCachePreservesResults(t *testing.T) {
	s := irSpec()
	s.Transfers[0].StartOnArrival = false
	s.Transfers[0].Decision = &DecisionSpec{Kind: "table"}
	p, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.TableKeys, []string{PlatformQuad}) {
		t.Fatalf("table keys %v, want [%s]", p.TableKeys, PlatformQuad)
	}

	rtPrivate, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	private, err := rtPrivate.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st := rtPrivate.Tables().Stats(); st.Builds != 1 {
		t.Fatalf("private cache built %d tables, want 1", st.Builds)
	}

	shared := NewTableCache()
	rts, err := CompileBatch([]Spec{s, s}, Options{Tables: shared})
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range rts {
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if ResultFingerprint(res) != ResultFingerprint(private) {
			t.Fatalf("batch run %d fingerprint differs under a shared cache", i)
		}
	}
	if st := shared.Stats(); st.Builds != 1 || st.Hits < 1 {
		t.Fatalf("shared cache stats %+v, want exactly 1 build across the batch", st)
	}
}

// Satellite regression: Validate names the offending index and ID for
// duplicate and unknown vehicle references.
func TestValidateNamesOffendingReference(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   []string
	}{
		{"duplicate vehicle id", func(s *Spec) { s.Vehicles[2].ID = "relay" },
			[]string{"vehicle 2", "duplicate id \"relay\"", "vehicle 1"}},
		{"missing vehicle id", func(s *Spec) { s.Vehicles[0].ID = "" },
			[]string{"vehicle 0", "missing id"}},
		{"transfer unknown from", func(s *Spec) { s.Transfers[0].From = "ghost" },
			[]string{"transfer 0", "unknown from vehicle \"ghost\""}},
		{"transfer unknown to", func(s *Spec) { s.Transfers[0].To = "ghost" },
			[]string{"transfer 0", "unknown to vehicle \"ghost\""}},
		{"transfer unknown alt_to", func(s *Spec) { s.Transfers[0].AltTo = "ghost" },
			[]string{"transfer 0", "unknown alt_to vehicle \"ghost\""}},
		{"transfer alt_to sender", func(s *Spec) { s.Transfers[0].AltTo = "ferry" },
			[]string{"transfer 0", "alt_to \"ferry\" is the sender"}},
		{"traffic unknown from", func(s *Spec) {
			s.Transfers, s.Chaos = nil, nil
			s.Traffic = []TrafficSpec{{From: "ghost", To: "relay", DurationS: 1, WindowS: 1}}
		}, []string{"traffic 0", "unknown from vehicle \"ghost\""}},
		{"traffic unknown to", func(s *Spec) {
			s.Transfers, s.Chaos = nil, nil
			s.Traffic = []TrafficSpec{{From: "ferry", To: "ghost", DurationS: 1, WindowS: 1}}
		}, []string{"traffic 0", "unknown to vehicle \"ghost\""}},
	}
	for _, tc := range cases {
		s := irSpec()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q missing %q", tc.name, err, frag)
			}
		}
	}
}

func TestProgramStatsAndDescribe(t *testing.T) {
	p, err := Resolve(irSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Vehicles != 3 || st.ChaosLines != 2 || st.ChaosKills != 2 || st.Transfers != 1 || st.Requests != 0 {
		t.Fatalf("stats %+v", st)
	}
	desc := p.Describe()
	for _, frag := range []string{
		"program \"ir-test\"", "[0] ferry", "[1] relay", "kill [1] relay at t=8",
		"transfer [0]->[1] alt [2]", "decision exact",
	} {
		if !strings.Contains(desc, frag) {
			t.Fatalf("describe output missing %q:\n%s", frag, desc)
		}
	}

	rp, err := Resolve(requestsIRSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := rp.Stats(); st.Requests != 4 {
		t.Fatalf("requests stats %+v", st)
	}
	if desc := rp.Describe(); !strings.Contains(desc, "4 materialized") {
		t.Fatalf("describe output missing request count:\n%s", desc)
	}
}

func TestResolveClampsNegativeKillTimes(t *testing.T) {
	s := irSpec()
	s.Chaos = []string{"vehicle fail relay 0"}
	p, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kills) != 1 || p.Kills[0].AtS != 0 || math.Signbit(p.Kills[0].AtS) {
		t.Fatalf("kills %+v, want one kill clamped to +0", p.Kills)
	}
}
