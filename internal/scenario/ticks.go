package scenario

import "github.com/nowlater/nowlater/internal/sim"

// Ticks is the mission-logic clock driver: it advances the engine in tickS
// steps until the clock reaches horizonS, calling fn after each step with
// the new clock. fn returning false ends the loop early. This is the one
// fixed-cadence loop mission state machines (package fleet) are allowed —
// they delegate the clock here instead of owning it, keeping all time
// advancement in sim/scenario.
func Ticks(e *sim.Engine, tickS, horizonS float64, fn func(now float64) bool) error {
	for e.Now() < horizonS {
		if err := e.RunUntil(e.Now() + tickS); err != nil {
			return err
		}
		if !fn(e.Now()) {
			return nil
		}
	}
	return nil
}
