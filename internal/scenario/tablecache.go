package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/nowlater/nowlater/internal/policy"
)

// TableCache is the shared, keyed store of table-serving policy engines
// behind "table" decisions. Building a quick-grid policy table dominates
// the cost of a small scenario, and before the compiler split every
// Runtime built its own: a paired-arm sweep or a corpus replay rebuilt the
// identical per-platform table once per trial. A TableCache is safe to
// share across runtimes and goroutines (engines are built once per key
// under a lock and served read-mostly thereafter), and sharing it cannot
// change results: a table is a pure function of its platform config, and
// Engine.Decide returns bit-identical optima whether answered from a cold
// table or a warm one.
//
// Pass a cache via Options.Tables (or use CompileBatch, which shares one
// across a whole batch); a Runtime linked without one gets a private cache,
// which is exactly the pre-split behaviour.
type TableCache struct {
	mu        sync.Mutex
	engines   map[string]*policy.Engine
	builds    int
	hits      int
	buildWall time.Duration
}

// NewTableCache returns an empty cache ready to share across runtimes.
func NewTableCache() *TableCache {
	return &TableCache{engines: make(map[string]*policy.Engine)}
}

// Engine returns the table-serving engine for a platform key, building it
// on first use. The build is the quick-grid deployment table — identical
// config, grid and label to what every Runtime previously built privately,
// so a shared engine answers exactly what a private one would have.
func (tc *TableCache) Engine(platform string) (*policy.Engine, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if eng, ok := tc.engines[platform]; ok {
		tc.hits++
		return eng, nil
	}
	start := time.Now()
	cfg := policy.QuadrocopterConfig()
	if platform == PlatformPlane {
		cfg = policy.AirplaneConfig()
	}
	cfg.Grid = policy.QuickGrid()
	table, err := policy.Build(context.Background(), cfg, policy.BuildOptions{
		Label: "scenario/policy/" + platform,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: policy table: %w", err)
	}
	eng, err := policy.NewEngine(table, 0)
	if err != nil {
		return nil, fmt.Errorf("scenario: policy engine: %w", err)
	}
	tc.engines[platform] = eng
	tc.builds++
	tc.buildWall += time.Since(start)
	return eng, nil
}

// TableCacheStats is a point-in-time snapshot of a cache's work: how many
// tables were actually built vs served from the cache, and the wall-clock
// the builds cost.
type TableCacheStats struct {
	// Builds counts distinct table constructions (one per key).
	Builds int
	// Hits counts Engine calls answered without a build.
	Hits int
	// BuildWallS is the total wall-clock spent building tables.
	BuildWallS float64
}

// Stats returns the cache's build/hit accounting so far.
func (tc *TableCache) Stats() TableCacheStats {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return TableCacheStats{Builds: tc.builds, Hits: tc.hits, BuildWallS: tc.buildWall.Seconds()}
}

// Keys returns the sorted platform keys built so far.
func (tc *TableCache) Keys() []string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	keys := make([]string, 0, len(tc.engines))
	for k := range tc.engines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
