package scenario

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/policy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/transport"
	"github.com/nowlater/nowlater/internal/uav"
)

// Saturation traffic keeps the MAC queue between these marks so offered
// load never starves an exchange, mirroring iperf's behaviour.
const (
	trafficQueueLowWater = 64 * 1500
	trafficEnqueueBytes  = 128 * 1500
)

// Craft is one compiled vehicle: the autopilot plus route bookkeeping.
type Craft struct {
	spec      VehicleSpec
	ap        *autopilot.Autopilot
	routeDone bool
	failed    bool
}

// ID returns the vehicle id.
func (c *Craft) ID() string { return c.spec.ID }

// Autopilot exposes the compiled autopilot.
func (c *Craft) Autopilot() *autopilot.Autopilot { return c.ap }

// RouteDone reports whether the declared route has been fully flown
// (immediately true for vehicles without one).
func (c *Craft) RouteDone() bool { return c.routeDone }

// Failed reports whether chaos killed the vehicle.
func (c *Craft) Failed() bool { return c.failed }

// Runtime executes one compiled Spec. It owns the only two time-advancement
// loops of a scenario: the fixed-tick advance used while waiting (arrival,
// start times, post-workload flight) and the link-clock sync used while a
// workload's radio exchanges set the pace. Vehicles are integrated lazily:
// whenever the engine clock moves, every autopilot is stepped in
// ControlTickS sub-ticks until it catches up.
type Runtime struct {
	spec   Spec
	engine *sim.Engine
	link   *link.Link
	crafts []*Craft
	byID   map[string]*Craft
	sched  *chaos.Schedule
	// flown is the shared vehicle-integration frontier: all crafts have
	// been stepped through [0, flown] in ControlTickS sub-ticks.
	flown float64
	// err latches the first internal clock error (it indicates a Runtime
	// bug, not a bad Spec, and is surfaced by Run).
	err error
	// policyEngines caches the per-platform table-serving engines built
	// lazily for "table" decisions.
	policyEngines map[string]*policy.Engine
}

// Compile validates a Spec and builds its Runtime: vehicles with their
// route programs, the link with its rate policy, and the parsed chaos
// schedule, all sharing one fresh engine at clock zero.
func Compile(spec Spec) (*Runtime, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{spec: spec, engine: sim.NewEngine(), byID: make(map[string]*Craft)}
	for _, vs := range spec.Vehicles {
		c, err := compileVehicle(vs)
		if err != nil {
			return nil, err
		}
		rt.crafts = append(rt.crafts, c)
		rt.byID[vs.ID] = c
	}
	lcfg := link.DefaultConfig()
	lcfg.Seed = spec.Link.Seed
	if lcfg.Seed == 0 {
		lcfg.Seed = spec.Seed
	}
	lcfg.Label = spec.Link.Label
	if lcfg.Label == "" {
		lcfg.Label = "scenario/" + spec.Name
	}
	l, err := link.New(lcfg, RatePolicy(lcfg, spec.Link.Rate))
	if err != nil {
		return nil, err
	}
	rt.link = l
	if rt.sched, err = spec.ChaosSchedule(); err != nil {
		return nil, err
	}
	return rt, nil
}

// RatePolicy builds the rate-control policy a LinkSpec.Rate names for a
// link configuration: a Minstrel instance seeded from the link's substream
// for auto-rate, or a fixed MCS. The rate string must have passed
// ParseRate (Compile validates it); an invalid one falls back to auto.
func RatePolicy(cfg link.Config, rateStr string) rate.Policy {
	mcs, err := ParseRate(rateStr)
	if err == nil && mcs >= 0 {
		return rate.NewFixed(phy.MCS(mcs))
	}
	return MinstrelPolicy(cfg)
}

// MinstrelPolicy builds the auto-rate policy on the link's own substream —
// the seeding every trial rig shares so auto-rate behaviour is a pure
// function of (seed, label).
func MinstrelPolicy(cfg link.Config) rate.Policy {
	rng := stats.NewRNG(cfg.Seed).Substream(cfg.Seed, cfg.Label+"/minstrel")
	return rate.NewMinstrel(rate.DefaultMinstrelParams(), cfg.PHY, rng)
}

// compileVehicle builds one craft and programs its route chain.
func compileVehicle(vs VehicleSpec) (*Craft, error) {
	var platform uav.Platform
	switch vs.Platform {
	case PlatformQuad:
		platform = uav.Arducopter()
	case PlatformPlane:
		platform = uav.Swinglet()
	default:
		return nil, fmt.Errorf("scenario: vehicle %s: unknown platform %q", vs.ID, vs.Platform)
	}
	v, err := uav.NewVehicle(vs.ID, platform, vs.Start)
	if err != nil {
		return nil, err
	}
	ap, err := autopilot.New(v)
	if err != nil {
		return nil, err
	}
	c := &Craft{spec: vs, ap: ap}
	switch {
	case vs.Hold:
		ap.Hold(vs.Start)
		c.routeDone = true
	case len(vs.Route) == 0:
		c.routeDone = true
	default:
		idx := 0
		var next func()
		next = func() {
			idx++
			if idx >= len(vs.Route) {
				if !vs.Loop {
					c.routeDone = true
					return
				}
				idx = vs.LoopFrom
			}
			ap.GoTo(vs.Route[idx], vs.SpeedMPS, next)
		}
		ap.GoTo(vs.Route[0], vs.SpeedMPS, next)
	}
	return c, nil
}

// Engine exposes the scenario's clock.
func (rt *Runtime) Engine() *sim.Engine { return rt.engine }

// Link exposes the scenario's radio.
func (rt *Runtime) Link() *link.Link { return rt.link }

// Craft looks a vehicle up by id (nil when absent).
func (rt *Runtime) Craft(id string) *Craft { return rt.byID[id] }

// advanceCrafts integrates every live vehicle up to the engine clock in
// ControlTickS sub-ticks. The shared frontier keeps all vehicles in
// lockstep: each sub-tick steps every craft once before time moves on.
func (rt *Runtime) advanceCrafts() {
	for rt.flown+ControlTickS <= rt.engine.Now() {
		for _, c := range rt.crafts {
			if !c.failed {
				c.ap.Step(ControlTickS)
			}
		}
		rt.flown += ControlTickS
	}
}

// applyChaosKills fails every vehicle whose scripted death has come.
func (rt *Runtime) applyChaosKills(now float64) {
	if rt.sched == nil {
		return
	}
	for _, c := range rt.crafts {
		if c.failed {
			continue
		}
		if t, ok := rt.sched.VehicleFailTime(c.spec.ID); ok && now >= t {
			c.failed = true
			c.ap.Vehicle().Fail()
		}
	}
}

// tickAdvance moves the clock one control tick and catches everything up —
// the waiting-mode advance (no workload pacing the clock).
func (rt *Runtime) tickAdvance() {
	if err := rt.engine.RunUntil(rt.engine.Now() + ControlTickS); err != nil && rt.err == nil {
		rt.err = err
	}
	rt.advanceCrafts()
	rt.applyChaosKills(rt.engine.Now())
}

// syncToLink pulls the engine clock up to the link clock and catches the
// vehicles up — the workload-mode advance, where each radio exchange's
// airtime sets the pace.
func (rt *Runtime) syncToLink() {
	if now := rt.link.Now(); now > rt.engine.Now() {
		if err := rt.engine.RunUntil(now); err != nil && rt.err == nil {
			rt.err = err
		}
	}
	rt.advanceCrafts()
	rt.applyChaosKills(rt.engine.Now())
}

// idleUntil flies the scenario (no workload) until the clock reaches t.
func (rt *Runtime) idleUntil(t float64) {
	for rt.engine.Now() < t {
		rt.tickAdvance()
	}
}

// pairGeometry is the instantaneous link geometry between two vehicles.
// Relative speed is the full relative-velocity magnitude: attitude
// dynamics and Doppler care about motion, not just range rate.
func (rt *Runtime) pairGeometry(a, b *Craft) link.Geometry {
	av, bv := a.ap.Vehicle(), b.ap.Vehicle()
	return link.Geometry{
		DistanceM:   av.Position().Dist(bv.Position()),
		AltitudeM:   math.Min(av.Position().Z, bv.Position().Z),
		RelSpeedMPS: av.Velocity().Sub(bv.Velocity()).Norm(),
	}
}

// installFault wires the chaos schedule into the link for one workload
// between the given endpoints: outages and fades scripted on either end —
// and either end's scripted death — read as a link that stops carrying
// frames.
func (rt *Runtime) installFault(fromID, toID string) {
	if rt.sched == nil {
		return
	}
	sched := rt.sched
	rt.link.SetFault(func(now float64) (bool, float64) {
		out := sched.LinkOutage(fromID, now) || sched.LinkOutage(toID, now)
		if t, ok := sched.VehicleFailTime(fromID); ok && now >= t {
			out = true
		}
		if t, ok := sched.VehicleFailTime(toID); ok && now >= t {
			out = true
		}
		return out, sched.LinkExtraLossDB(fromID, now) + sched.LinkExtraLossDB(toID, now)
	})
}

// Sample is one saturation-throughput observation labelled with the
// mid-window geometry.
type Sample struct {
	TimeS        float64
	ThroughputMb float64
	DistanceM    float64
	RelSpeedMPS  float64
	// LossRate is the fraction of datagrams dropped at the MAC retry
	// limit within the window.
	LossRate float64
}

// measureWindowed saturates the link for duration seconds while the
// vehicles fly, recording throughput in windowS-second windows labelled
// with the mid-window distance — the simulation analogue of binning iperf
// reports against GPS logs.
func (rt *Runtime) measureWindowed(tx, rx *Craft, duration, windowS float64) []Sample {
	l := rt.link
	var out []Sample
	start := l.Now()
	end := start + duration
	winStart := start
	var winBytes, winDropped int64
	droppedBefore := l.MAC().DroppedBytes
	var distSum, speedSum float64
	var distN int
	for l.Now() < end {
		if l.QueuedBytes() < trafficQueueLowWater {
			l.Enqueue(trafficEnqueueBytes)
		}
		rt.syncToLink()
		g := rt.pairGeometry(tx, rx)
		ex := l.Step(g)
		winBytes += int64(ex.DeliveredBytes)
		distSum += g.DistanceM
		speedSum += g.RelSpeedMPS
		distN++
		if l.Now()-winStart >= windowS {
			elapsed := l.Now() - winStart
			winDropped = l.MAC().DroppedBytes - droppedBefore
			droppedBefore = l.MAC().DroppedBytes
			loss := 0.0
			if winBytes+winDropped > 0 {
				loss = float64(winDropped) / float64(winBytes+winDropped)
			}
			out = append(out, Sample{
				TimeS:        winStart - start,
				ThroughputMb: float64(winBytes) * 8 / elapsed / 1e6,
				DistanceM:    distSum / float64(distN),
				RelSpeedMPS:  speedSum / float64(distN),
				LossRate:     loss,
			})
			winStart = l.Now()
			winBytes, distSum, speedSum, distN = 0, 0, 0, 0
		}
	}
	rt.syncToLink()
	return out
}

// runBatch drives one batch attempt over the scenario link between two
// crafts, syncing the engine (and therefore the vehicles and chaos kills)
// to the link clock around every exchange.
func (rt *Runtime) runBatch(from, to *Craft, bytes int, deadlineS float64, reliable bool) (transport.BatchResult, error) {
	l := rt.link
	l.SetNow(rt.engine.Now())
	rt.installFault(from.spec.ID, to.spec.ID)
	geom := func(float64) link.Geometry {
		rt.syncToLink()
		return rt.pairGeometry(from, to)
	}
	res, err := transport.TransferBatch(l, transport.BatchConfig{
		Bytes: bytes, DeadlineS: deadlineS, Reliable: reliable,
	}, geom)
	rt.syncToLink()
	return res, err
}
