package scenario

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/transport"
	"github.com/nowlater/nowlater/internal/uav"
)

// Saturation traffic keeps the MAC queue between these marks so offered
// load never starves an exchange, mirroring iperf's behaviour.
const (
	trafficQueueLowWater = 64 * 1500
	trafficEnqueueBytes  = 128 * 1500
)

// Craft is one compiled vehicle: the autopilot plus route bookkeeping.
type Craft struct {
	spec      VehicleSpec
	ap        *autopilot.Autopilot
	routeDone bool
	failed    bool
	// failedAt is the exact scenario clock of the chaos kill (+Inf alive).
	failedAt float64
	// ticks counts the ControlTickS sub-ticks accounted to this craft on
	// the runtime's shared frontier grid; elided is how many of those were
	// skipped because the autopilot had settled (position and velocity are
	// a Step fixed point). Elided ticks still owe their battery drain,
	// which catchUp replays before any state-mutating access.
	ticks  int64
	elided int64
	// legHook, when set, fires after each completed route leg (0-based),
	// with the craft integrated to the moment of arrival.
	legHook func(leg int)
}

// ID returns the vehicle id.
func (c *Craft) ID() string { return c.spec.ID }

// Autopilot exposes the compiled autopilot, first replaying any elided
// sub-ticks so callers observe (and command) fully-integrated state.
func (c *Craft) Autopilot() *autopilot.Autopilot {
	c.catchUp()
	return c.ap
}

// catchUp replays elided sub-ticks. Position and velocity are unchanged by
// construction (the craft was settled), but hover power keeps draining, so
// the battery sequence stays bit-identical to never having elided at all.
func (c *Craft) catchUp() {
	for ; c.elided > 0; c.elided-- {
		c.ap.Step(ControlTickS)
	}
}

func (c *Craft) notifyLeg(leg int) {
	if c.legHook != nil {
		c.legHook(leg)
	}
}

// SetLegHook installs a callback fired after each completed route leg.
// The hook runs inside craft integration: it may read the craft and
// schedule engine events, but must not advance the clock.
func (c *Craft) SetLegHook(fn func(leg int)) { c.legHook = fn }

// RouteDone reports whether the declared route has been fully flown
// (immediately true for vehicles without one).
func (c *Craft) RouteDone() bool { return c.routeDone }

// Failed reports whether chaos killed the vehicle.
func (c *Craft) Failed() bool { return c.failed }

// FailedAtS is the exact scenario clock of the chaos kill (+Inf alive).
func (c *Craft) FailedAtS() float64 { return c.failedAt }

// Event-queue bound defaults: legitimate scenarios keep at most a handful
// of pending events per craft (one armed kill, one arrival prediction), so
// the default limit — a generous base plus per-craft headroom — is far
// above any real peak while still catching runaway self-scheduling before
// it exhausts memory.
const (
	eventQueueBase     = 4096
	eventQueuePerCraft = 32
)

// maxViolations bounds the recorded invariant-violation log so a systemic
// bug cannot itself exhaust memory while being reported.
const maxViolations = 64

// Options tunes how a Spec is compiled onto the engine. The zero value is
// the production configuration: event-driven core with elision on and
// invariant checks off.
type Options struct {
	// Lockstep selects the retained reference semantics: lazy per-craft
	// integration and settled-craft elision are disabled and every craft
	// is advanced on every control tick, exactly as the pre-event-driven
	// Runtime did. A lockstep run must produce a bit-identical Result to
	// an event-driven run of the same Spec — the differential oracle the
	// verification harness (internal/scenariogen) checks.
	Lockstep bool
	// CheckInvariants arms runtime assertions — monotonic engine clock,
	// finite non-negative battery, finite positions, sub-tick frontier
	// consistency — recording violations for InvariantViolations instead
	// of panicking, so a harness can report them with the offending Spec.
	CheckInvariants bool
	// PendingLimit overrides the engine's event-queue bound. 0 selects the
	// default (eventQueueBase + eventQueuePerCraft per vehicle); negative
	// removes the bound.
	PendingLimit int
	// Tables is the shared policy-table cache "table" decisions are served
	// from. nil gives the Runtime a private cache — exactly the pre-split
	// per-Runtime behaviour. Sweeps and batch replays pass one cache (or
	// use CompileBatch) so each per-platform table is built once.
	Tables *TableCache
}

// Runtime executes one compiled Spec on an event-driven core. The engine
// clock is advanced by RunUntil alone (workloads pace it by the link clock,
// waits by accumulated control-tick boundaries); everything that used to be
// discovered by per-tick polling — chaos kills, waypoint arrivals — is a
// scheduled engine event fired at its exact instant. Vehicles are
// integrated lazily and individually: a craft is stepped in ControlTickS
// sub-ticks only when something observes it (geometry reads, kill events,
// arrival checks, wait conditions), and settled crafts skip sub-ticks
// entirely, so advance cost scales with events processed rather than
// simulated time × fleet size.
type Runtime struct {
	prog   *Program
	spec   Spec
	engine *sim.Engine
	link   *link.Link
	crafts []*Craft
	byID   map[string]*Craft
	sched  *chaos.Schedule
	// frontier/frontierTicks form the shared sub-tick grid: the frontier
	// accumulates in exact ControlTickS float additions (never closed
	// form), so every craft steps through the identical boundary sequence
	// the legacy lockstep advance produced. frontierTicks is the grid
	// index; crafts record how many grid ticks they have accounted.
	frontier      float64
	frontierTicks int64
	// steppedTicks/elidedTicks count sub-ticks actually integrated vs
	// skipped for settled crafts, across the whole run.
	steppedTicks int64
	elidedTicks  int64
	// err latches the first internal clock error (it indicates a Runtime
	// bug, not a bad Spec, and is surfaced by Run).
	err error
	// opts is the compile-time configuration (lockstep, invariant checks,
	// event-queue bound).
	opts Options
	// violations records CheckInvariants failures (capped at
	// maxViolations); lastNow is the monotonic-clock watermark.
	violations []string
	lastNow    float64
	// tables serves the per-platform table-serving engines behind "table"
	// decisions — shared across runtimes when Options.Tables is set,
	// private otherwise.
	tables *TableCache
}

// Compile validates a Spec and builds its Runtime. It is exactly
// Resolve(spec) followed by Link: the Spec is lowered to its Program and
// the Program instantiated on a fresh engine at clock zero.
func Compile(spec Spec) (*Runtime, error) { return CompileWithOptions(spec, Options{}) }

// CompileWithOptions is Compile with an explicit Options — the entry point
// for the verification harness (lockstep oracle, invariant checks) and for
// tuning the event-queue bound.
func CompileWithOptions(spec Spec, opts Options) (*Runtime, error) {
	p, err := Resolve(spec)
	if err != nil {
		return nil, err
	}
	return LinkWithOptions(p, opts)
}

// Link instantiates a resolved Program onto a fresh engine at clock zero:
// crafts with their route programs, the link with its rate policy, armed
// chaos kill events. A Program is immutable, so Link can be called many
// times to get independent runtimes.
func Link(p *Program) (*Runtime, error) { return LinkWithOptions(p, Options{}) }

// LinkWithOptions is Link with an explicit Options.
func LinkWithOptions(p *Program, opts Options) (*Runtime, error) {
	rt := &Runtime{
		prog: p, spec: p.Spec, engine: sim.NewEngine(),
		byID: make(map[string]*Craft), opts: opts, tables: opts.Tables,
	}
	if rt.tables == nil {
		rt.tables = NewTableCache()
	}
	limit := opts.PendingLimit
	if limit == 0 {
		limit = eventQueueBase + eventQueuePerCraft*len(p.Vehicles)
	}
	if limit > 0 {
		rt.engine.SetPendingLimit(limit)
	}
	for _, pv := range p.Vehicles {
		c, err := compileVehicle(pv.Spec)
		if err != nil {
			return nil, err
		}
		rt.crafts = append(rt.crafts, c)
		rt.byID[pv.Spec.ID] = c
	}
	l, err := link.New(p.LinkConfig, ratePolicyMCS(p.LinkConfig, p.RateMCS))
	if err != nil {
		return nil, err
	}
	rt.link = l
	rt.sched = p.Chaos
	if err := rt.armChaosKills(); err != nil {
		return nil, err
	}
	for _, c := range rt.crafts {
		rt.scheduleArrivalCheck(c)
	}
	return rt, nil
}

// Program exposes the resolved intermediate form this Runtime was linked
// from.
func (rt *Runtime) Program() *Program { return rt.prog }

// Tables exposes the policy-table cache serving this Runtime's "table"
// decisions (shared when Options.Tables was set, private otherwise).
func (rt *Runtime) Tables() *TableCache { return rt.tables }

// armChaosKills schedules every scripted vehicle death as an engine event
// at its exact instant, straight off the Program's typed, time-sorted kill
// list — kills neither wait for a tick boundary nor re-parse chaos text.
func (rt *Runtime) armChaosKills() error {
	for _, k := range rt.prog.Kills {
		c := rt.crafts[k.Vehicle]
		if _, err := rt.engine.Schedule(k.AtS, func() { rt.killCraft(c) }); err != nil {
			return err
		}
	}
	return nil
}

// killCraft fails a vehicle at the current (exact) engine clock: it is
// integrated up to the kill instant, its pending battery drain replayed,
// and then frozen.
func (rt *Runtime) killCraft(c *Craft) {
	if c.failed {
		return
	}
	rt.advanceCraftTo(c, rt.engine.Now())
	c.catchUp()
	c.failed = true
	c.failedAt = rt.engine.Now()
	c.ap.Vehicle().Fail()
}

// scheduleArrivalCheck arms the next waypoint-arrival prediction for a
// route-flying craft: an event at the earliest instant the craft could
// reach its target (straight line at the platform's speed cap), which
// integrates the craft and re-predicts. This keeps leg transitions — and
// any leg hooks — firing near their true arrival times even when nothing
// else observes the craft, while costing O(legs) events instead of
// O(ticks) polls.
func (rt *Runtime) scheduleArrivalCheck(c *Craft) {
	if rt.opts.Lockstep {
		// The lockstep reference integrates every craft on every control
		// tick, so leg transitions are discovered by the tick loop itself;
		// prediction events would be pure overhead.
		return
	}
	if c.failed || c.ap.Mode() != autopilot.GoTo {
		return
	}
	v := c.ap.Vehicle()
	eta := (c.ap.Target().Sub(v.Position()).Norm() - autopilot.ArrivalRadiusM) / v.MaxSpeedMPS
	if !(eta > ControlTickS) { // NaN-safe floor of one control tick
		eta = ControlTickS
	}
	if _, err := rt.engine.After(eta, func() {
		rt.advanceCraftTo(c, rt.engine.Now())
		rt.scheduleArrivalCheck(c)
	}); err != nil && rt.err == nil {
		rt.err = err
	}
}

// RatePolicy builds the rate-control policy a LinkSpec.Rate names for a
// link configuration: a Minstrel instance seeded from the link's substream
// for auto-rate, or a fixed MCS. The rate string must have passed
// ParseRate (Resolve validates it); an invalid one falls back to auto.
func RatePolicy(cfg link.Config, rateStr string) rate.Policy {
	mcs, err := ParseRate(rateStr)
	if err != nil {
		mcs = -1
	}
	return ratePolicyMCS(cfg, mcs)
}

// ratePolicyMCS is RatePolicy on a pre-parsed MCS index (-1 = auto-rate) —
// the Link path, which never re-parses the rate string.
func ratePolicyMCS(cfg link.Config, mcs int) rate.Policy {
	if mcs >= 0 {
		return rate.NewFixed(phy.MCS(mcs))
	}
	return MinstrelPolicy(cfg)
}

// MinstrelPolicy builds the auto-rate policy on the link's own substream —
// the seeding every trial rig shares so auto-rate behaviour is a pure
// function of (seed, label).
func MinstrelPolicy(cfg link.Config) rate.Policy {
	rng := stats.NewRNG(cfg.Seed).Substream(cfg.Seed, cfg.Label+"/minstrel")
	return rate.NewMinstrel(rate.DefaultMinstrelParams(), cfg.PHY, rng)
}

// compileVehicle builds one craft and programs its route chain.
func compileVehicle(vs VehicleSpec) (*Craft, error) {
	var platform uav.Platform
	switch vs.Platform {
	case PlatformQuad:
		platform = uav.Arducopter()
	case PlatformPlane:
		platform = uav.Swinglet()
	default:
		return nil, fmt.Errorf("scenario: vehicle %s: unknown platform %q", vs.ID, vs.Platform)
	}
	v, err := uav.NewVehicle(vs.ID, platform, vs.Start)
	if err != nil {
		return nil, err
	}
	ap, err := autopilot.New(v)
	if err != nil {
		return nil, err
	}
	c := &Craft{spec: vs, ap: ap, failedAt: math.Inf(1)}
	switch {
	case vs.Hold:
		ap.Hold(vs.Start)
		c.routeDone = true
	case len(vs.Route) == 0:
		c.routeDone = true
	default:
		idx := 0
		var next func()
		next = func() {
			done := idx
			idx++
			if idx >= len(vs.Route) {
				if !vs.Loop {
					c.routeDone = true
					c.notifyLeg(done)
					return
				}
				idx = vs.LoopFrom
			}
			ap.GoTo(vs.Route[idx], vs.SpeedMPS, next)
			c.notifyLeg(done)
		}
		ap.GoTo(vs.Route[0], vs.SpeedMPS, next)
	}
	return c, nil
}

// Engine exposes the scenario's clock.
func (rt *Runtime) Engine() *sim.Engine { return rt.engine }

// Link exposes the scenario's radio.
func (rt *Runtime) Link() *link.Link { return rt.link }

// Craft looks a vehicle up by id (nil when absent).
func (rt *Runtime) Craft(id string) *Craft { return rt.byID[id] }

// frontierTicksAt advances the shared sub-tick grid to time t and returns
// its index. The frontier accumulates in exact ControlTickS additions so
// the boundary float sequence is bit-identical to the legacy lockstep
// advance. t must be the engine clock (monotone): the grid never rewinds.
func (rt *Runtime) frontierTicksAt(t float64) int64 {
	for rt.frontier+ControlTickS <= t {
		rt.frontier += ControlTickS
		rt.frontierTicks++
	}
	return rt.frontierTicks
}

// advanceCraftTo integrates one craft up to time t on the shared grid.
// Failed crafts account their ticks for free (Step is a no-op), settled
// crafts elide them in O(1) (the drained battery is replayed by catchUp on
// the next state-mutating access), and only genuinely moving crafts pay
// per-sub-tick integration.
func (rt *Runtime) advanceCraftTo(c *Craft, t float64) {
	k := rt.frontierTicksAt(t)
	if c.ticks >= k {
		return
	}
	if c.failed {
		c.ticks = k
		return
	}
	for c.ticks < k {
		if !rt.opts.Lockstep && c.ap.Settled() {
			n := k - c.ticks
			c.elided += n
			rt.elidedTicks += n
			c.ticks = k
			break
		}
		c.catchUp()
		c.ap.Step(ControlTickS)
		c.ticks++
		rt.steppedTicks++
	}
	if rt.opts.CheckInvariants {
		rt.checkCraft(c)
	}
}

// checkCraft asserts the per-craft invariants after an integration step:
// the craft never runs ahead of the shared frontier, its position is
// finite, and its battery fraction is a finite value in [0, 1]. Battery is
// read without catchUp so the check does not perturb elision accounting
// (the replayed drain is itself covered once a real access triggers it).
func (rt *Runtime) checkCraft(c *Craft) {
	if c.ticks > rt.frontierTicks {
		rt.violate("craft %s at tick %d ahead of frontier %d", c.spec.ID, c.ticks, rt.frontierTicks)
	}
	v := c.ap.Vehicle()
	if !finiteVec(v.Position()) {
		rt.violate("craft %s position %v not finite", c.spec.ID, v.Position())
	}
	if b := v.BatteryFraction(); math.IsNaN(b) || b < 0 || b > 1 {
		rt.violate("craft %s battery fraction %v outside [0,1]", c.spec.ID, b)
	}
	if rt.opts.Lockstep && c.elided != 0 {
		rt.violate("craft %s elided %d sub-ticks in lockstep mode", c.spec.ID, c.elided)
	}
}

// violate records one invariant violation (capped so a systemic failure
// cannot flood memory while being reported).
func (rt *Runtime) violate(format string, args ...any) {
	if len(rt.violations) >= maxViolations {
		return
	}
	rt.violations = append(rt.violations,
		fmt.Sprintf("t=%.3f: ", rt.engine.Now())+fmt.Sprintf(format, args...))
}

// InvariantViolations returns the assertions that failed so far under
// Options.CheckInvariants (nil when the mode is off or nothing failed).
func (rt *Runtime) InvariantViolations() []string { return rt.violations }

// checkClock asserts the engine clock never rewinds across the runtime's
// observation points.
func (rt *Runtime) checkClock() {
	now := rt.engine.Now()
	if now < rt.lastNow {
		rt.violate("clock rewound from %v", rt.lastNow)
	}
	rt.lastNow = now
}

// advanceAll integrates every craft up to the engine clock — used only at
// observation points that genuinely read the whole fleet (end of Run).
func (rt *Runtime) advanceAll() {
	now := rt.engine.Now()
	for _, c := range rt.crafts {
		rt.advanceCraftTo(c, now)
	}
}

// stepClock moves the engine one control tick, firing any events due in
// between (kills, arrival checks) at their exact instants.
func (rt *Runtime) stepClock() {
	if err := rt.engine.RunUntil(rt.engine.Now() + ControlTickS); err != nil && rt.err == nil {
		rt.err = err
	}
	rt.afterAdvance()
}

// afterAdvance runs the per-advance bookkeeping every clock movement
// shares: the lockstep reference integrates the whole fleet up to the new
// clock (the legacy per-tick semantics), and invariant mode checks clock
// monotonicity.
func (rt *Runtime) afterAdvance() {
	if rt.opts.CheckInvariants {
		rt.checkClock()
	}
	if rt.opts.Lockstep {
		rt.advanceAll()
	}
}

// waitTicks advances the clock tick by tick until done() reports true or
// the deadline passes. done is checked before each advance and is
// responsible for integrating whichever crafts it observes.
func (rt *Runtime) waitTicks(deadline float64, done func() bool) {
	for !done() && rt.engine.Now() < deadline {
		rt.stepClock()
	}
}

// syncToLink pulls the engine clock up to the link clock — the
// workload-mode advance, where each radio exchange's airtime sets the
// pace. Vehicles are not touched here: geometry reads integrate exactly
// the crafts they observe.
func (rt *Runtime) syncToLink() {
	if now := rt.link.Now(); now > rt.engine.Now() {
		if err := rt.engine.RunUntil(now); err != nil && rt.err == nil {
			rt.err = err
		}
		rt.afterAdvance()
	}
}

// idleUntil flies the scenario (no workload) until the clock reaches t —
// one RunUntil to the first accumulated tick boundary at or past t, which
// is exactly where the legacy tick-polling loop stopped.
func (rt *Runtime) idleUntil(t float64) {
	b := rt.engine.Now()
	for b < t {
		b += ControlTickS
	}
	if b > rt.engine.Now() {
		if err := rt.engine.RunUntil(b); err != nil && rt.err == nil {
			rt.err = err
		}
		rt.afterAdvance()
	}
}

// pairGeometry is the instantaneous link geometry between two vehicles,
// integrated up to the engine clock first. Relative speed is the full
// relative-velocity magnitude: attitude dynamics and Doppler care about
// motion, not just range rate.
func (rt *Runtime) pairGeometry(a, b *Craft) link.Geometry {
	rt.advanceCraftTo(a, rt.engine.Now())
	rt.advanceCraftTo(b, rt.engine.Now())
	av, bv := a.ap.Vehicle(), b.ap.Vehicle()
	return link.Geometry{
		DistanceM:   av.Position().Dist(bv.Position()),
		AltitudeM:   math.Min(av.Position().Z, bv.Position().Z),
		RelSpeedMPS: av.Velocity().Sub(bv.Velocity()).Norm(),
	}
}

// RuntimeStats reports the event-driven core's work accounting for one
// runtime: engine events fired, sub-ticks actually integrated vs elided
// for settled crafts, and the current event-queue depth.
type RuntimeStats struct {
	EventsProcessed uint64
	PendingEvents   int
	// PeakPendingEvents is the deepest the event queue ever got — the
	// number to judge the ErrEventStorm bound against.
	PeakPendingEvents int
	SubTicksStepped   int64
	SubTicksElided    int64
}

// Stats returns the runtime's work accounting so far.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		EventsProcessed:   rt.engine.Processed(),
		PendingEvents:     rt.engine.Len(),
		PeakPendingEvents: rt.engine.PeakPending(),
		SubTicksStepped:   rt.steppedTicks,
		SubTicksElided:    rt.elidedTicks,
	}
}

// installFault wires the chaos schedule into the link for one workload
// between the given endpoints: outages and fades scripted on either end —
// and either end's scripted death — read as a link that stops carrying
// frames.
func (rt *Runtime) installFault(fromID, toID string) {
	if rt.sched == nil {
		return
	}
	sched := rt.sched
	rt.link.SetFault(func(now float64) (bool, float64) {
		out := sched.LinkOutage(fromID, now) || sched.LinkOutage(toID, now)
		if t, ok := sched.VehicleFailTime(fromID); ok && now >= t {
			out = true
		}
		if t, ok := sched.VehicleFailTime(toID); ok && now >= t {
			out = true
		}
		return out, sched.LinkExtraLossDB(fromID, now) + sched.LinkExtraLossDB(toID, now)
	})
}

// Sample is one saturation-throughput observation labelled with the
// mid-window geometry.
type Sample struct {
	TimeS        float64
	ThroughputMb float64
	DistanceM    float64
	RelSpeedMPS  float64
	// LossRate is the fraction of datagrams dropped at the MAC retry
	// limit within the window.
	LossRate float64
	// Partial marks the trailing window of a workload whose duration is
	// not a multiple of windowS: shorter than windowS, but its delivered
	// and dropped bytes still count. Distance-binned figure aggregation
	// skips partial windows.
	Partial bool
}

// measureWindowed saturates the link for duration seconds while the
// vehicles fly, recording throughput in windowS-second windows labelled
// with the mid-window distance — the simulation analogue of binning iperf
// reports against GPS logs.
func (rt *Runtime) measureWindowed(tx, rx *Craft, duration, windowS float64) []Sample {
	l := rt.link
	var out []Sample
	start := l.Now()
	end := start + duration
	winStart := start
	var winBytes, winDropped int64
	droppedBefore := l.MAC().DroppedBytes
	var distSum, speedSum float64
	var distN int
	for l.Now() < end {
		if l.QueuedBytes() < trafficQueueLowWater {
			l.Enqueue(trafficEnqueueBytes)
		}
		rt.syncToLink()
		g := rt.pairGeometry(tx, rx)
		ex := l.Step(g)
		winBytes += int64(ex.DeliveredBytes)
		distSum += g.DistanceM
		speedSum += g.RelSpeedMPS
		distN++
		if l.Now()-winStart >= windowS {
			elapsed := l.Now() - winStart
			winDropped = l.MAC().DroppedBytes - droppedBefore
			droppedBefore = l.MAC().DroppedBytes
			loss := 0.0
			if winBytes+winDropped > 0 {
				loss = float64(winDropped) / float64(winBytes+winDropped)
			}
			out = append(out, Sample{
				TimeS:        winStart - start,
				ThroughputMb: float64(winBytes) * 8 / elapsed / 1e6,
				DistanceM:    distSum / float64(distN),
				RelSpeedMPS:  speedSum / float64(distN),
				LossRate:     loss,
			})
			winStart = l.Now()
			winBytes, distSum, speedSum, distN = 0, 0, 0, 0
		}
	}
	// Emit the trailing partial window: its bytes used to vanish from
	// throughput and loss accounting entirely.
	if elapsed := l.Now() - winStart; distN > 0 && elapsed > 0 {
		winDropped = l.MAC().DroppedBytes - droppedBefore
		loss := 0.0
		if winBytes+winDropped > 0 {
			loss = float64(winDropped) / float64(winBytes+winDropped)
		}
		out = append(out, Sample{
			TimeS:        winStart - start,
			ThroughputMb: float64(winBytes) * 8 / elapsed / 1e6,
			DistanceM:    distSum / float64(distN),
			RelSpeedMPS:  speedSum / float64(distN),
			LossRate:     loss,
			Partial:      true,
		})
	}
	rt.syncToLink()
	return out
}

// runBatch drives one batch attempt over the scenario link between two
// crafts, syncing the engine (and therefore the vehicles and chaos kills)
// to the link clock around every exchange.
func (rt *Runtime) runBatch(from, to *Craft, bytes int, deadlineS float64, reliable bool) (transport.BatchResult, error) {
	l := rt.link
	l.SetNow(rt.engine.Now())
	rt.installFault(from.spec.ID, to.spec.ID)
	geom := func(float64) link.Geometry {
		rt.syncToLink()
		return rt.pairGeometry(from, to)
	}
	res, err := transport.TransferBatch(l, transport.BatchConfig{
		Bytes: bytes, DeadlineS: deadlineS, Reliable: reliable,
	}, geom)
	rt.syncToLink()
	return res, err
}
