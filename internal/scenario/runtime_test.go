package scenario

import (
	"context"
	"fmt"
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/runner"
)

func TestCompileRejectsInvalidSpec(t *testing.T) {
	if _, err := Compile(Spec{Name: "empty"}); err == nil {
		t.Fatal("invalid spec compiled")
	}
}

func TestRuntimeTransferBetweenHoldingQuads(t *testing.T) {
	s := twoQuadSpec()
	s.Transfers = []TransferSpec{{From: "tx", To: "rx", SizeMB: 1, DeadlineS: 60, Reliable: true}}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transfers) != 1 {
		t.Fatalf("transfers = %d", len(res.Transfers))
	}
	tr := res.Transfers[0]
	if math.IsInf(tr.CompletionS, 1) {
		t.Fatalf("1 MB at 30 m did not complete: delivered %v bytes", tr.DeliveredBytes)
	}
	if tr.DeliveredBytes != 1e6 {
		t.Fatalf("delivered %v bytes, want 1e6", tr.DeliveredBytes)
	}
	if rt.Engine().Now() < tr.CompletionS {
		t.Fatalf("engine clock %v behind transfer completion %v", rt.Engine().Now(), tr.CompletionS)
	}
	// The link and engine clocks must agree at the end — one clock.
	if got, want := rt.Link().Now(), rt.Engine().Now(); got < want-ControlTickS {
		t.Fatalf("link clock %v lags engine clock %v", got, want)
	}
}

func TestRuntimeRouteAndLoop(t *testing.T) {
	s := Spec{
		Name: "route",
		Seed: 1,
		Vehicles: []VehicleSpec{
			{ID: "a", Platform: PlatformQuad, Start: geo.Vec3{Z: 10},
				Route: []geo.Vec3{{X: 20, Z: 10}}, SpeedMPS: 10},
			{ID: "b", Platform: PlatformQuad, Start: geo.Vec3{X: 50, Z: 10},
				Route: []geo.Vec3{{X: 70, Z: 10}, {X: 50, Z: 10}}, SpeedMPS: 10, Loop: true},
		},
		DurationS: 30,
	}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]VehicleResult{}
	for _, v := range res.Vehicles {
		byID[v.ID] = v
	}
	if !byID["a"].RouteDone {
		t.Fatal("finite route not done after 30 s at 10 m/s")
	}
	if byID["a"].Position.Dist(geo.Vec3{X: 20, Z: 10}) > 5 {
		t.Fatalf("vehicle a at %v, want near (20,0,10)", byID["a"].Position)
	}
	if byID["b"].RouteDone {
		t.Fatal("looping route reported done")
	}
	// The tick loop lands within one control tick of the horizon.
	if res.DurationS < 30 || res.DurationS > 30+ControlTickS {
		t.Fatalf("scenario ended at %v, want 30 (+≤1 tick)", res.DurationS)
	}
}

func TestRuntimeChaosKillStopsVehicle(t *testing.T) {
	s := Spec{
		Name: "kill",
		Seed: 1,
		Vehicles: []VehicleSpec{
			{ID: "a", Platform: PlatformQuad, Start: geo.Vec3{Z: 10},
				Route: []geo.Vec3{{X: 200, Z: 10}}, SpeedMPS: 10},
			{ID: "b", Platform: PlatformQuad, Start: geo.Vec3{X: 30, Z: 10}, Hold: true},
		},
		Chaos:     []string{"vehicle fail a 5"},
		DurationS: 20,
	}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	var a VehicleResult
	for _, v := range res.Vehicles {
		if v.ID == "a" {
			a = v
		}
	}
	if !a.Failed {
		t.Fatal("scripted kill did not fail the vehicle")
	}
	// Killed at t=5 while flying at 10 m/s: it must have frozen around
	// x=50, far short of the 200 m waypoint.
	if a.Position.X > 60 || a.RouteDone {
		t.Fatalf("killed vehicle kept flying: %+v", a)
	}
}

// TestRuntimeDeterminism: compiling and running the same Spec twice gives
// byte-identical results.
func TestRuntimeDeterminism(t *testing.T) {
	run := func() string {
		s := twoQuadSpec()
		s.Traffic = []TrafficSpec{{From: "tx", To: "rx", DurationS: 3, WindowS: 1}}
		rt, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", res)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two runs of the same spec differ:\n%s\n%s", a, b)
	}
}

// TestRuntimeWorkerInvariance: a sweep of Runtime-driven trials produces
// identical results at any worker count — the contract that lets the
// experiment harness parallelize scenario trials freely.
func TestRuntimeWorkerInvariance(t *testing.T) {
	const trials = 4
	sweep := func(workers int) []string {
		out, err := runner.Map(context.Background(), trials,
			runner.Options{Workers: workers, Label: "scenario/invariance"},
			func(trial int) (string, error) {
				s := twoQuadSpec()
				s.Name = fmt.Sprintf("inv/trial%d", trial)
				s.Seed = 1 + int64(trial)*7919
				s.Traffic = []TrafficSpec{{From: "tx", To: "rx", DurationS: 2, WindowS: 1}}
				s.Transfers = []TransferSpec{{From: "tx", To: "rx", SizeMB: 0.5, DeadlineS: 30, Reliable: true}}
				rt, err := Compile(s)
				if err != nil {
					return "", err
				}
				res, err := rt.Run()
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%#v", res), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := sweep(1)
	for _, workers := range []int{2, 4} {
		got := sweep(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("trial %d differs at %d workers:\n%s\nvs serial:\n%s",
					i, workers, got[i], serial[i])
			}
		}
	}
}

// TestRuntimeDecisionShipsCloser: an "exact" decision from 200 m must move
// the sender to the model's dopt before transmitting.
func TestRuntimeDecisionShipsCloser(t *testing.T) {
	s := Spec{
		Name: "decision",
		Seed: 1,
		Vehicles: []VehicleSpec{
			{ID: "tx", Platform: PlatformQuad, Start: geo.Vec3{X: 200, Z: 10}, SpeedMPS: 4.5},
			{ID: "rx", Platform: PlatformQuad, Start: geo.Vec3{Z: 10}, Hold: true},
		},
		Transfers: []TransferSpec{{
			From: "tx", To: "rx", SizeMB: 5, DeadlineS: 300, Reliable: true,
			Decision: &DecisionSpec{Kind: "exact"},
		}},
	}
	rt, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Transfers[0]
	if tr.D0M < 199 || tr.D0M > 201 {
		t.Fatalf("d0 = %v, want ≈200", tr.D0M)
	}
	if !(tr.DoptM < tr.D0M) {
		t.Fatalf("dopt %v not closer than d0 %v", tr.DoptM, tr.D0M)
	}
	// The transfer must have started only after the shipping leg.
	shipTime := (tr.D0M - tr.DoptM) / 4.5
	if tr.StartS < shipTime*0.8 {
		t.Fatalf("transfer started at %v, before the ≈%v s shipping leg", tr.StartS, shipTime)
	}
	if math.IsInf(tr.CompletionS, 1) {
		t.Fatal("decided transfer did not complete")
	}
}
