package scenario

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"math"
)

// Result fingerprints hash the *outcome* of a run, not the Spec that
// produced it (Result.Name and Result.Fingerprint are deliberately
// excluded): two different Specs that must behave identically — a chaos
// permutation, an elision toggle — then hash identically, which is exactly
// the identity the differential harness compares. Floats are hashed by
// their IEEE-754 bits, so the fingerprint is sensitive to a single ULP of
// drift anywhere in a run.

// ResultFingerprint hashes every observable outcome of a Result: all
// traffic windows, all transfer outcomes including their progress series,
// every vehicle's final state, and the final clock.
func ResultFingerprint(r Result) uint64 {
	h := newFPHash()
	h.f64(r.DurationS)
	h.workload(r)
	h.i64(int64(len(r.Vehicles)))
	for _, v := range r.Vehicles {
		h.str(v.ID)
		h.f64(v.Position.X)
		h.f64(v.Position.Y)
		h.f64(v.Position.Z)
		h.bool(v.RouteDone)
		h.bool(v.Failed)
		h.f64(v.FailedAtS)
		// Request-workload accounting is hashed only when the run had
		// requests, so every pre-requests corpus fingerprint is unchanged.
		if len(r.Requests) > 0 {
			h.i64(int64(v.Served))
			h.i64(int64(v.Expired))
			h.f64(v.EnergyUsedS)
		}
	}
	return h.sum()
}

// WorkloadFingerprint hashes only the workload outcomes (traffic windows
// and transfers), ignoring final vehicle states and the final clock. It is
// the identity preserved by metamorphic transforms that only change what
// happens *after* all workloads finish — e.g. extending DurationS past
// quiescence, which moves circling vehicles but must not rewrite history.
func WorkloadFingerprint(r Result) uint64 {
	h := newFPHash()
	h.workload(r)
	return h.sum()
}

type fpHash struct{ h hash.Hash64 }

func newFPHash() *fpHash { return &fpHash{h: fnv.New64a()} }

func (p *fpHash) sum() uint64 { return p.h.Sum64() }

func (p *fpHash) f64(x float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	p.h.Write(b[:])
}

func (p *fpHash) i64(x int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(x))
	p.h.Write(b[:])
}

func (p *fpHash) bool(x bool) {
	if x {
		p.h.Write([]byte{1})
	} else {
		p.h.Write([]byte{0})
	}
}

func (p *fpHash) str(s string) {
	p.i64(int64(len(s)))
	p.h.Write([]byte(s))
}

func (p *fpHash) workload(r Result) {
	p.i64(int64(len(r.Traffic)))
	for _, tr := range r.Traffic {
		p.str(tr.From)
		p.str(tr.To)
		p.f64(tr.StartS)
		p.i64(int64(len(tr.Samples)))
		for _, s := range tr.Samples {
			p.f64(s.TimeS)
			p.f64(s.ThroughputMb)
			p.f64(s.DistanceM)
			p.f64(s.RelSpeedMPS)
			p.f64(s.LossRate)
			p.bool(s.Partial)
		}
	}
	p.i64(int64(len(r.Transfers)))
	for _, tr := range r.Transfers {
		p.str(tr.From)
		p.str(tr.To)
		p.f64(tr.StartS)
		p.f64(tr.CompletionS)
		p.f64(tr.D0M)
		p.f64(tr.DoptM)
		p.i64(tr.DeliveredBytes)
		p.i64(tr.RetransmittedBytes)
		p.bool(tr.Rerouted)
		p.i64(int64(len(tr.Series)))
		for _, pt := range tr.Series {
			p.f64(pt.TimeS)
			p.f64(pt.DeliveredMB)
			p.f64(pt.DistanceM)
		}
	}
	// The requests block is appended only when present so the workload
	// hash of every pre-requests Result (and the pinned corpus built from
	// them) is byte-for-byte what it always was.
	if len(r.Requests) > 0 {
		p.i64(int64(len(r.Requests)))
		for _, rq := range r.Requests {
			p.str(rq.ID)
			p.str(rq.Vehicle)
			p.f64(rq.ArrivalS)
			p.f64(rq.DeadlineS)
			p.f64(rq.SizeMB)
			p.bool(rq.Served)
			p.f64(rq.PickupS)
			p.f64(rq.CompletionS)
			p.f64(rq.TxDistM)
		}
	}
}
