package gps

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/stats"
)

func newReceiver(t *testing.T, p Params) *Receiver {
	t.Helper()
	frame := geo.NewFrame(geo.LatLon{Lat: 47.3769, Lon: 8.5417})
	r, err := NewReceiver(p, frame, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Params{FixIntervalSeconds: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero interval accepted")
	}
	bad = DefaultParams()
	bad.HorizontalSigmaM = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := NewReceiver(DefaultParams(), nil, stats.NewRNG(1)); err == nil {
		t.Fatal("nil frame accepted")
	}
}

func TestFixCadence(t *testing.T) {
	r := newReceiver(t, Params{FixIntervalSeconds: 1, HorizontalSigmaM: 0, VerticalSigmaM: 0})
	n := 0
	for i := 0; i <= 100; i++ {
		now := float64(i) * 0.1 // 10 Hz offers, 1 Hz fixes
		if _, ok := r.Observe(now, geo.Vec3{X: float64(i)}); ok {
			n++
		}
	}
	if n != 11 {
		t.Fatalf("fixes = %d over 10 s at 1 Hz, want 11", n)
	}
	if len(r.Trace()) != n {
		t.Fatalf("trace length %d != %d", len(r.Trace()), n)
	}
}

func TestNoiselessFixIsExact(t *testing.T) {
	r := newReceiver(t, Params{FixIntervalSeconds: 1, HorizontalSigmaM: 0, VerticalSigmaM: 0})
	truth := geo.Vec3{X: 123, Y: -45, Z: 80}
	fix, ok := r.Observe(0, truth)
	if !ok {
		t.Fatal("first observe must produce a fix")
	}
	if fix.ENU.Dist(truth) > 1e-9 {
		t.Fatalf("noiseless fix off by %v", fix.ENU.Dist(truth))
	}
}

func TestNoiseStatistics(t *testing.T) {
	r := newReceiver(t, Params{FixIntervalSeconds: 0.01, HorizontalSigmaM: 2, VerticalSigmaM: 4})
	truth := geo.Vec3{Z: 50}
	var dx, dz []float64
	for i := 0; i < 4000; i++ {
		fix, ok := r.Observe(float64(i)*0.01, truth)
		if !ok {
			continue
		}
		dx = append(dx, fix.ENU.X)
		dz = append(dz, fix.ENU.Z-50)
	}
	if sx := stats.StdDev(dx); math.Abs(sx-2) > 0.2 {
		t.Fatalf("horizontal sigma = %v, want ≈2", sx)
	}
	if sz := stats.StdDev(dz); math.Abs(sz-4) > 0.4 {
		t.Fatalf("vertical sigma = %v, want ≈4", sz)
	}
}

func TestLastFix(t *testing.T) {
	r := newReceiver(t, DefaultParams())
	if _, ok := r.LastFix(); ok {
		t.Fatal("LastFix before any observation")
	}
	r.Observe(0, geo.Vec3{X: 1})
	fix, ok := r.LastFix()
	if !ok || fix.Time != 0 {
		t.Fatalf("LastFix = %+v, %v", fix, ok)
	}
}

func TestPairwiseDistances(t *testing.T) {
	frame := geo.NewFrame(geo.LatLon{Lat: 47.3769, Lon: 8.5417})
	mk := func(t0 float64, pos geo.Vec3) Fix {
		return Fix{Time: t0, Position: frame.ToLatLon(pos), ENU: pos}
	}
	a := []Fix{mk(0, geo.Vec3{Z: 80}), mk(1, geo.Vec3{Z: 80}), mk(2, geo.Vec3{Z: 80})}
	b := []Fix{mk(0.1, geo.Vec3{X: 60, Z: 100}), mk(1.1, geo.Vec3{X: 80, Z: 100})}
	ds := PairwiseDistances(a, b, 0.5)
	if len(ds) != 2 {
		t.Fatalf("matched %d pairs, want 2 (third a-fix has no close b-fix)", len(ds))
	}
	want := math.Hypot(60, 20)
	if math.Abs(ds[0]-want) > 0.5 {
		t.Fatalf("distance = %v, want ≈%v", ds[0], want)
	}
	// With a huge skew allowance everything matches.
	if ds := PairwiseDistances(a, b, 10); len(ds) != 3 {
		t.Fatalf("matched %d with wide skew, want 3", len(ds))
	}
	if ds := PairwiseDistances(nil, b, 1); len(ds) != 0 {
		t.Fatal("empty trace should match nothing")
	}
}

func TestFaultOutageSuppressesFixes(t *testing.T) {
	r := newReceiver(t, Params{FixIntervalSeconds: 1, HorizontalSigmaM: 0, VerticalSigmaM: 0})
	r.SetFault(func(now float64) (bool, float64) { return now >= 3 && now < 7, 1 })
	var got []float64
	for i := 0; i <= 10; i++ {
		if fix, ok := r.Observe(float64(i), geo.Vec3{}); ok {
			got = append(got, fix.Time)
		}
	}
	want := []float64{0, 1, 2, 7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("fix times = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fix times = %v, want %v", got, want)
		}
	}
	if r.Outages != 4 {
		t.Fatalf("Outages = %d, want 4", r.Outages)
	}
}

func TestFaultDegradationInflatesNoise(t *testing.T) {
	const sigma, scale = 2.0, 10.0
	nominal := newReceiver(t, Params{FixIntervalSeconds: 1, HorizontalSigmaM: sigma, VerticalSigmaM: sigma})
	degraded := newReceiver(t, Params{FixIntervalSeconds: 1, HorizontalSigmaM: sigma, VerticalSigmaM: sigma})
	degraded.SetFault(func(float64) (bool, float64) { return false, scale })
	rmsOf := func(r *Receiver) float64 {
		var sum float64
		n := 400
		for i := 0; i < n; i++ {
			fix, ok := r.Observe(float64(i), geo.Vec3{})
			if !ok {
				t.Fatal("fix due but not produced")
			}
			sum += fix.ENU.X*fix.ENU.X + fix.ENU.Y*fix.ENU.Y
		}
		return math.Sqrt(sum / float64(2*n))
	}
	rn, rd := rmsOf(nominal), rmsOf(degraded)
	if rd < 5*rn {
		t.Fatalf("degraded rms %v not ≫ nominal %v (scale %v)", rd, rn, scale)
	}
}

func TestNilFaultIsBitIdentical(t *testing.T) {
	a := newReceiver(t, DefaultParams())
	b := newReceiver(t, DefaultParams())
	b.SetFault(nil)
	for i := 0; i < 50; i++ {
		fa, oka := a.Observe(float64(i), geo.Vec3{X: float64(i)})
		fb, okb := b.Observe(float64(i), geo.Vec3{X: float64(i)})
		if oka != okb || fa != fb {
			t.Fatalf("fix %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
}
