// Package gps models the GPS receiver on the paper's autopilots and the
// trace post-processing used in Figs 4 and 5: periodic position fixes with
// additive noise, recorded into traces from which pairwise distances are
// derived with the Haversine formula.
package gps

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/stats"
)

// Params configures the receiver model.
type Params struct {
	// FixIntervalSeconds between position updates (consumer GPS: 1 Hz,
	// the uBlox modules on the paper's autopilots: up to 4 Hz).
	FixIntervalSeconds float64
	// HorizontalSigmaM / VerticalSigmaM are the per-axis noise standard
	// deviations (consumer GPS: ~1.5–3 m horizontal, worse vertically).
	HorizontalSigmaM float64
	VerticalSigmaM   float64
}

// DefaultParams is a consumer-grade GPS.
func DefaultParams() Params {
	return Params{FixIntervalSeconds: 0.25, HorizontalSigmaM: 1.5, VerticalSigmaM: 3}
}

// Validate reports the first implausible parameter.
func (p Params) Validate() error {
	switch {
	case p.FixIntervalSeconds <= 0:
		return fmt.Errorf("gps: fix interval %v must be positive", p.FixIntervalSeconds)
	case p.HorizontalSigmaM < 0 || p.VerticalSigmaM < 0:
		return fmt.Errorf("gps: negative noise sigma")
	}
	return nil
}

// Fix is one timestamped position estimate.
type Fix struct {
	Time     float64
	Position geo.LatLon
	// ENU is the fix in the mission frame (convenience for analysis).
	ENU geo.Vec3
}

// FaultFunc is an injected degradation consulted at each due fix: outage
// suppresses the fix entirely (antenna shadowing, jamming); otherwise
// sigmaScale ≥ 1 inflates the noise sigmas for that fix (multipath,
// degraded constellation geometry).
type FaultFunc func(now float64) (outage bool, sigmaScale float64)

// Receiver produces noisy fixes of a true ENU position within a mission
// frame.
type Receiver struct {
	p     Params
	frame *geo.Frame
	rng   *stats.RNG
	fault FaultFunc
	trace []Fix
	last  float64
	first bool

	// Outages counts fixes suppressed by the fault hook.
	Outages int64
}

// SetFault installs a chaos degradation hook (nil restores nominal
// operation). With no hook installed the receiver's draws are untouched,
// so existing traces replay bit-for-bit.
func (r *Receiver) SetFault(f FaultFunc) { r.fault = f }

// NewReceiver builds a receiver anchored to a mission frame.
func NewReceiver(p Params, frame *geo.Frame, rng *stats.RNG) (*Receiver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if frame == nil {
		return nil, fmt.Errorf("gps: nil frame")
	}
	return &Receiver{p: p, frame: frame, rng: rng, first: true}, nil
}

// Params returns the receiver configuration.
func (r *Receiver) Params() Params { return r.p }

// Observe offers the true position at time now. If a fix is due (the fix
// interval has elapsed) it returns the noisy fix and records it in the
// trace; otherwise ok is false.
func (r *Receiver) Observe(now float64, truePos geo.Vec3) (Fix, bool) {
	if !r.first && now-r.last < r.p.FixIntervalSeconds {
		return Fix{}, false
	}
	scale := 1.0
	if r.fault != nil {
		outage, s := r.fault(now)
		if outage {
			// The fix is due but lost; the next offer after the outage
			// produces one immediately (receivers re-acquire fast at 1–4 Hz).
			r.Outages++
			r.first = false
			r.last = now
			return Fix{}, false
		}
		if s > 1 {
			scale = s
		}
	}
	r.first = false
	r.last = now
	noisy := geo.Vec3{
		X: truePos.X + r.rng.Normal(0, scale*r.p.HorizontalSigmaM),
		Y: truePos.Y + r.rng.Normal(0, scale*r.p.HorizontalSigmaM),
		Z: truePos.Z + r.rng.Normal(0, scale*r.p.VerticalSigmaM),
	}
	fix := Fix{Time: now, Position: r.frame.ToLatLon(noisy), ENU: noisy}
	r.trace = append(r.trace, fix)
	return fix, true
}

// Trace returns the recorded fixes (shared slice; callers must not mutate).
func (r *Receiver) Trace() []Fix { return r.trace }

// LastFix returns the most recent fix, if any.
func (r *Receiver) LastFix() (Fix, bool) {
	if len(r.trace) == 0 {
		return Fix{}, false
	}
	return r.trace[len(r.trace)-1], true
}

// PairwiseDistances post-processes two traces the way the paper bins its
// throughput samples: for each pair of fixes nearest in time (within
// maxSkew seconds), compute the Haversine ground distance combined with
// the altitude difference. Returns one distance per matched pair.
func PairwiseDistances(a, b []Fix, maxSkew float64) []float64 {
	var out []float64
	j := 0
	for _, fa := range a {
		// Advance j while the next b fix is closer in time.
		for j+1 < len(b) && abs(b[j+1].Time-fa.Time) <= abs(b[j].Time-fa.Time) {
			j++
		}
		if j < len(b) && abs(b[j].Time-fa.Time) <= maxSkew {
			out = append(out, geo.Distance3D(fa.Position, b[j].Position))
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
