// Package nlclient is the Go client for nowlaterd, built for the failure
// modes internal/nlserver deliberately produces: 429 sheds with Retry-After
// hints, 503s while the table builds or the server drains, and the injected
// latency/resets/drops of the service chaos harness. Aerial clients live on
// flaky links with hard deadlines — the paper's setting — so the client is
// deadline-first:
//
//   - Deadline propagation: the context's remaining budget rides the
//     X-Deadline-Ms header, letting the server stop work for callers that
//     will have hung up.
//   - Retry budget: retries spend from a token bucket refilled by
//     successes, so a broken server gets a bounded retry storm, not an
//     amplified one. Backoff is decorrelated jitter, floored at the
//     server's Retry-After hint.
//   - Hedging (optional): a single decide still unanswered after the hedge
//     delay launches one duplicate and takes the first answer — the
//     standard tail-latency cut for cheap idempotent requests.
//   - Batch splitting: a shed batch is halved and retried, because the
//     server's admission gate prices a batch like a single request —
//     smaller batches fit through a saturated gate.
//
// Naive mode (Config.Naive) disables all of it: one attempt, no headers,
// no retries. The service-chaos experiment runs both modes over identical
// fault schedules to measure what the resilience machinery buys.
package nlclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nowlater/nowlater/internal/nlwire"
)

// Config tunes one client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8753".
	BaseURL string
	// HTTPClient overrides the transport; nil uses a private default.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first attempt included); ≤ 0
	// selects 4.
	MaxAttempts int
	// BaseBackoff seeds the decorrelated-jitter backoff; ≤ 0 selects 10 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep; ≤ 0 selects 1 s.
	MaxBackoff time.Duration
	// RetryBudget is the retry token bucket's capacity: every retry spends
	// one token, every success refills a tenth. ≤ 0 selects 10.
	RetryBudget float64
	// Hedge, when positive, launches one duplicate single-decide request
	// if the first has not answered within this delay.
	Hedge time.Duration
	// MaxSplits bounds how many times a shed batch may halve (fan-out
	// 2^MaxSplits requests); ≤ 0 selects 4.
	MaxSplits int
	// Naive disables retries, hedging, splitting and deadline propagation:
	// one plain attempt per call. The chaos experiment's baseline arm.
	Naive bool
	// Seed fixes the jitter sequence for reproducible experiments; 0 seeds
	// from wall time.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 10
	}
	if c.MaxSplits <= 0 {
		c.MaxSplits = 4
	}
	return c
}

// Stats is a point-in-time snapshot of client behaviour.
type Stats struct {
	// Attempts counts HTTP requests sent (retries, hedges and split
	// sub-batches included).
	Attempts uint64
	// Retries counts re-sends after a retryable failure.
	Retries uint64
	// Hedges counts duplicate requests launched; HedgeWins how many
	// answered first.
	Hedges, HedgeWins uint64
	// Splits counts batch halvings after a shed.
	Splits uint64
	// ShedsSeen counts 429 responses observed.
	ShedsSeen uint64
	// BudgetDenied counts retries skipped because the token bucket was
	// empty.
	BudgetDenied uint64
}

// Client talks to one nowlaterd. Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu     sync.Mutex
	rng    *rand.Rand
	tokens float64

	attempts, retries atomic.Uint64
	hedges, hedgeWins atomic.Uint64
	splits, shedsSeen atomic.Uint64
	budgetDenied      atomic.Uint64
}

// New builds a client; zero-valued config fields take defaults.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		cfg:    cfg,
		http:   hc,
		rng:    rand.New(rand.NewSource(seed)),
		tokens: cfg.RetryBudget,
	}
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		Hedges:       c.hedges.Load(),
		HedgeWins:    c.hedgeWins.Load(),
		Splits:       c.splits.Load(),
		ShedsSeen:    c.shedsSeen.Load(),
		BudgetDenied: c.budgetDenied.Load(),
	}
}

// spendRetry takes one retry token; false means the budget is exhausted
// and the caller must give up instead of amplifying the outage.
func (c *Client) spendRetry() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens < 1 {
		c.budgetDenied.Add(1)
		return false
	}
	c.tokens--
	return true
}

// refillRetry returns a tenth of a token per success, capped at the
// configured budget.
func (c *Client) refillRetry() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tokens += 0.1
	if c.tokens > c.cfg.RetryBudget {
		c.tokens = c.cfg.RetryBudget
	}
}

// backoff computes the next decorrelated-jitter sleep: uniform in
// [base, 3·prev], capped, and never below the server's Retry-After floor.
func (c *Client) backoff(prev, floor time.Duration) time.Duration {
	base := c.cfg.BaseBackoff
	hi := 3 * prev
	if hi < base {
		hi = base
	}
	c.mu.Lock()
	d := base + time.Duration(c.rng.Int63n(int64(hi-base)+1))
	c.mu.Unlock()
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	if d < floor {
		d = floor
	}
	return d
}

// httpError is a non-200 response: status plus whether a retry can help.
type httpError struct {
	status     int
	body       string
	retryAfter time.Duration
}

func (e *httpError) Error() string {
	return fmt.Sprintf("nlclient: server returned %d: %s", e.status, e.body)
}

// retryable reports whether another attempt might succeed: sheds, not-ready
// and transient server errors, but never 4xx rejections of the query itself.
func (e *httpError) retryable() bool {
	return e.status == http.StatusTooManyRequests || e.status >= 500
}

// post sends one JSON request and decodes one JSON response.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	c.attempts.Add(1)
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if !c.cfg.Naive {
		if dl, ok := ctx.Deadline(); ok {
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				req.Header.Set(nlwire.HeaderDeadlineMS, strconv.FormatInt(ms, 10))
			}
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			c.shedsSeen.Add(1)
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		he := &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(data))}
		if ra, ok := nlwire.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
			he.retryAfter = ra
		}
		return he
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("nlclient: decoding response: %w", err)
	}
	return nil
}

// sleep waits d or until ctx dies.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableErr reports whether err is worth another attempt: retryable
// HTTP statuses and transport failures (resets, refused connections,
// injected chaos), but not context expiry or 4xx rejections.
func retryableErr(ctx context.Context, err error) (floor time.Duration, ok bool) {
	if ctx.Err() != nil {
		return 0, false
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.retryAfter, he.retryable()
	}
	// Transport-level failure (connection reset, EOF, refused): the
	// request may simply have hit an injected fault — retry.
	return 0, true
}

// Decide answers one query, retrying (and optionally hedging) within the
// context's deadline.
func (c *Client) Decide(ctx context.Context, q nlwire.Query) (nlwire.Decision, error) {
	if c.cfg.Naive {
		var d nlwire.Decision
		if err := c.post(ctx, nlwire.PathDecide, q, &d); err != nil {
			return nlwire.Decision{}, err
		}
		return decisionErr(d)
	}
	if c.cfg.Hedge > 0 {
		return c.decideHedged(ctx, q)
	}
	return c.decideRetry(ctx, q)
}

// decideRetry is the plain retry loop for one query.
func (c *Client) decideRetry(ctx context.Context, q nlwire.Query) (nlwire.Decision, error) {
	var lastErr error
	backoff := time.Duration(0)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			floor, ok := retryableErr(ctx, lastErr)
			if !ok || !c.spendRetry() {
				break
			}
			c.retries.Add(1)
			backoff = c.backoff(backoff, floor)
			if err := sleep(ctx, backoff); err != nil {
				break
			}
		}
		var d nlwire.Decision
		if err := c.post(ctx, nlwire.PathDecide, q, &d); err != nil {
			lastErr = err
			continue
		}
		c.refillRetry()
		return decisionErr(d)
	}
	return nlwire.Decision{}, lastErr
}

// decideHedged races the retry loop against one delayed duplicate.
func (c *Client) decideHedged(ctx context.Context, q nlwire.Query) (nlwire.Decision, error) {
	type result struct {
		d   nlwire.Decision
		err error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, 2)
	launch := func() {
		d, err := c.decideRetry(ctx, q)
		results <- result{d, err}
	}
	go launch()
	timer := time.NewTimer(c.cfg.Hedge)
	defer timer.Stop()
	hedged := false
	select {
	case r := <-results:
		return r.d, r.err
	case <-timer.C:
		c.hedges.Add(1)
		hedged = true
		go launch()
	case <-ctx.Done():
		return nlwire.Decision{}, ctx.Err()
	}
	// One answer in flight from each attempt: take the first success, or
	// the second result if the first failed.
	r := <-results
	if r.err == nil {
		if hedged {
			c.hedgeWins.Add(1) // first result after hedging may be either request
		}
		return r.d, r.err
	}
	r = <-results
	return r.d, r.err
}

// DecideBatch answers a batch, preserving order. A shed batch is halved
// (down to MaxSplits times) so the pieces fit through the saturated
// admission gate; other retryable failures use the standard backoff.
func (c *Client) DecideBatch(ctx context.Context, qs []nlwire.Query) ([]nlwire.Decision, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.cfg.Naive {
		var ds []nlwire.Decision
		if err := c.post(ctx, nlwire.PathBatch, qs, &ds); err != nil {
			return nil, err
		}
		if len(ds) != len(qs) {
			return nil, fmt.Errorf("nlclient: %d answers for %d queries", len(ds), len(qs))
		}
		return ds, nil
	}
	return c.batch(ctx, qs, 0)
}

func (c *Client) batch(ctx context.Context, qs []nlwire.Query, depth int) ([]nlwire.Decision, error) {
	var lastErr error
	backoff := time.Duration(0)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			floor, ok := retryableErr(ctx, lastErr)
			if !ok {
				break
			}
			// A shed batch halves instead of retrying whole: two smaller
			// requests clear a saturated gate where one big one cannot.
			var he *httpError
			if errors.As(lastErr, &he) && he.status == http.StatusTooManyRequests &&
				len(qs) > 1 && depth < c.cfg.MaxSplits {
				if err := sleep(ctx, c.backoff(backoff, floor)); err != nil {
					break
				}
				c.splits.Add(1)
				mid := len(qs) / 2
				left, err := c.batch(ctx, qs[:mid], depth+1)
				if err != nil {
					return nil, err
				}
				right, err := c.batch(ctx, qs[mid:], depth+1)
				if err != nil {
					return nil, err
				}
				return append(left, right...), nil
			}
			if !c.spendRetry() {
				break
			}
			c.retries.Add(1)
			backoff = c.backoff(backoff, floor)
			if err := sleep(ctx, backoff); err != nil {
				break
			}
		}
		var ds []nlwire.Decision
		if err := c.post(ctx, nlwire.PathBatch, qs, &ds); err != nil {
			lastErr = err
			continue
		}
		if len(ds) != len(qs) {
			return nil, fmt.Errorf("nlclient: %d answers for %d queries", len(ds), len(qs))
		}
		c.refillRetry()
		return ds, nil
	}
	return nil, lastErr
}

// decisionErr surfaces a per-decision server-side rejection as the call's
// error.
func decisionErr(d nlwire.Decision) (nlwire.Decision, error) {
	if d.Error != "" {
		return d, fmt.Errorf("nlclient: query rejected: %s", d.Error)
	}
	return d, nil
}
