package nlclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nowlater/nowlater/internal/nlwire"
)

func answer(q nlwire.Query) nlwire.Decision {
	return nlwire.Decision{DoptM: q.D0M / 2, Utility: 1, Source: "table"}
}

// decideServer answers every decide/batch request, after consulting the
// per-request hook (return false to have the hook write the response).
func decideServer(t *testing.T, hook func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(nlwire.PathDecide, func(w http.ResponseWriter, r *http.Request) {
		if hook != nil && !hook(w, r) {
			return
		}
		var q nlwire.Query
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(answer(q))
	})
	mux.HandleFunc(nlwire.PathBatch, func(w http.ResponseWriter, r *http.Request) {
		if hook != nil && !hook(w, r) {
			return
		}
		var qs []nlwire.Query
		if err := json.NewDecoder(r.Body).Decode(&qs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ds := make([]nlwire.Decision, len(qs))
		for i, q := range qs {
			ds[i] = answer(q)
		}
		json.NewEncoder(w).Encode(ds)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestDecideRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0.020")
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return false
		}
		return true
	})
	c := New(Config{BaseURL: srv.URL, Seed: 1, BaseBackoff: time.Millisecond})
	start := time.Now()
	d, err := c.Decide(context.Background(), nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.DoptM != 50 {
		t.Fatalf("answer %+v", d)
	}
	// Two failures, each with a 20 ms Retry-After floor.
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("retries ignored Retry-After: elapsed %s", el)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Attempts != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDecideDoesNotRetryRejections(t *testing.T) {
	var calls atomic.Int64
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		calls.Add(1)
		json.NewEncoder(w).Encode(nlwire.Decision{Error: "policy: d0 must be positive"})
		return false
	})
	c := New(Config{BaseURL: srv.URL, Seed: 1})
	if _, err := c.Decide(context.Background(), nlwire.Query{D0M: -1}); err == nil {
		t.Fatal("rejection not surfaced")
	}
	if calls.Load() != 1 {
		t.Fatalf("rejected query retried %d times", calls.Load()-1)
	}
}

func TestNaiveClientGivesUpImmediately(t *testing.T) {
	var calls atomic.Int64
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		calls.Add(1)
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
		return false
	})
	c := New(Config{BaseURL: srv.URL, Naive: true, Seed: 1})
	if _, err := c.Decide(context.Background(), nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1}); err == nil {
		t.Fatal("naive client swallowed the failure")
	}
	if calls.Load() != 1 {
		t.Fatalf("naive client sent %d requests", calls.Load())
	}
	if _, err := c.DecideBatch(context.Background(), []nlwire.Query{{D0M: 100, SpeedMPS: 1, MdataMB: 1}}); err == nil {
		t.Fatal("naive batch swallowed the failure")
	}
}

func TestDeadlinePropagation(t *testing.T) {
	var sawHeader atomic.Bool
	var naiveHeader atomic.Bool
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		if v := r.Header.Get(nlwire.HeaderDeadlineMS); v != "" {
			sawHeader.Store(true)
		}
		return true
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	c := New(Config{BaseURL: srv.URL, Seed: 1})
	if _, err := c.Decide(ctx, nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1}); err != nil {
		t.Fatal(err)
	}
	if !sawHeader.Load() {
		t.Fatal("deadline header not propagated")
	}

	srv2 := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		if v := r.Header.Get(nlwire.HeaderDeadlineMS); v != "" {
			naiveHeader.Store(true)
		}
		return true
	})
	n := New(Config{BaseURL: srv2.URL, Naive: true, Seed: 1})
	if _, err := n.Decide(ctx, nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1}); err != nil {
		t.Fatal(err)
	}
	if naiveHeader.Load() {
		t.Fatal("naive client propagated the deadline header")
	}
}

// TestBatchSplitsOnShed sheds every batch above 2 queries: the client must
// halve its way down and reassemble the answers in order.
func TestBatchSplitsOnShed(t *testing.T) {
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		if r.URL.Path != nlwire.PathBatch {
			return true
		}
		var qs []nlwire.Query
		if err := json.NewDecoder(r.Body).Decode(&qs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return false
		}
		if len(qs) > 2 {
			w.Header().Set("Retry-After", "0.001")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return false
		}
		ds := make([]nlwire.Decision, len(qs))
		for i, q := range qs {
			ds[i] = answer(q)
		}
		json.NewEncoder(w).Encode(ds)
		return false
	})
	c := New(Config{BaseURL: srv.URL, Seed: 1, BaseBackoff: time.Millisecond})
	qs := make([]nlwire.Query, 8)
	for i := range qs {
		qs[i] = nlwire.Query{D0M: float64(100 + i), SpeedMPS: 1, MdataMB: 1}
	}
	ds, err := c.DecideBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(qs) {
		t.Fatalf("%d answers for %d queries", len(ds), len(qs))
	}
	for i, d := range ds {
		if want := qs[i].D0M / 2; d.DoptM != want {
			t.Fatalf("answer %d out of order: dopt %.1f, want %.1f", i, d.DoptM, want)
		}
	}
	st := c.Stats()
	if st.Splits == 0 || st.ShedsSeen == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHedgeCutsTailLatency(t *testing.T) {
	var calls atomic.Int64
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		if calls.Add(1) == 1 {
			// First request stalls far longer than the hedge delay.
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			return false
		}
		return true
	})
	c := New(Config{BaseURL: srv.URL, Seed: 1, Hedge: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	d, err := c.Decide(ctx, nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.DoptM != 50 {
		t.Fatalf("answer %+v", d)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("hedge did not cut the stall: %s", el)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRetryBudgetBoundsAmplification: with the server hard-down, total
// attempts must be bounded by the budget, not MaxAttempts × calls.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	var calls atomic.Int64
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
		return false
	})
	c := New(Config{BaseURL: srv.URL, Seed: 1, RetryBudget: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	for i := 0; i < 20; i++ {
		if _, err := c.Decide(context.Background(), nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1}); err == nil {
			t.Fatal("dead server answered")
		}
	}
	// 20 first attempts plus at most 3 budgeted retries.
	if got := calls.Load(); got > 23 {
		t.Fatalf("%d attempts against a dead server (budget leak)", got)
	}
	if st := c.Stats(); st.BudgetDenied == 0 {
		t.Fatalf("budget never denied a retry: %+v", st)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	srv := decideServer(t, func(w http.ResponseWriter, r *http.Request) bool {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return false
	})
	c := New(Config{BaseURL: srv.URL, Seed: 1, BaseBackoff: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Decide(ctx, nlwire.Query{D0M: 100, SpeedMPS: 1, MdataMB: 1}); err == nil {
		t.Fatal("dead server answered")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("retries outlived the context: %s", el)
	}
}
