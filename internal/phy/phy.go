// Package phy implements the IEEE 802.11n high-throughput (HT) physical
// layer as the paper's hardware used it: the Ralink RT3572 2×2 adapter with
// channel bonding (40 MHz), a short guard interval (400 ns), and MCS 0–15.
//
// The package provides the MCS rate table, frame airtime computation
// (HT-mixed preamble plus OFDM symbols), and an SNR→packet-error-rate model
// with the two transmit schemes the paper contrasts in Fig. 6:
//
//   - STBC (space-time block coding, used with single-stream MCS 0–7):
//     transmit diversity that hardens one stream against fades, at no rate
//     gain;
//   - SDM (spatial-division multiplexing, MCS 8–15): two parallel streams
//     that double the rate but require spatial diversity the strongly
//     line-of-sight aerial channel does not offer ("the lack of sufficient
//     spatial diversity of the aerial channel impedes to effectively
//     utilize the multiple antennas for MIMO", Section 3.1).
package phy

import (
	"fmt"
	"math"
)

// Modulation is the subcarrier constellation of an MCS.
type Modulation int

// Supported 802.11n constellations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns coded bits per subcarrier per symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

// MCS is an 802.11n modulation-and-coding-scheme index, 0–15.
type MCS int

// NumMCS is the number of HT MCS indices this PHY supports (two streams).
const NumMCS = 16

// Valid reports whether the index is in [0, NumMCS).
func (m MCS) Valid() bool { return m >= 0 && m < NumMCS }

// Streams returns the number of spatial streams (1 for MCS 0–7, 2 above).
func (m MCS) Streams() int {
	if m >= 8 {
		return 2
	}
	return 1
}

// Base returns the single-stream MCS carrying the same modulation/coding.
func (m MCS) Base() MCS { return m % 8 }

// Modulation returns the constellation of the MCS.
func (m MCS) Modulation() Modulation {
	switch m.Base() {
	case 0:
		return BPSK
	case 1, 2:
		return QPSK
	case 3, 4:
		return QAM16
	default:
		return QAM64
	}
}

// CodeRate returns the convolutional code rate of the MCS.
func (m MCS) CodeRate() float64 {
	switch m.Base() {
	case 0, 1, 3:
		return 1. / 2
	case 2, 4, 6:
		return 3. / 4
	case 5:
		return 2. / 3
	default: // 7
		return 5. / 6
	}
}

// String renders e.g. "MCS3 (16-QAM 1/2, 1ss)".
func (m MCS) String() string {
	num, den := rationalCodeRate(m.CodeRate())
	return fmt.Sprintf("MCS%d (%s %d/%d, %dss)", int(m), m.Modulation(), num, den, m.Streams())
}

func rationalCodeRate(r float64) (int, int) {
	switch {
	case math.Abs(r-0.5) < 1e-9:
		return 1, 2
	case math.Abs(r-2./3) < 1e-9:
		return 2, 3
	case math.Abs(r-0.75) < 1e-9:
		return 3, 4
	default:
		return 5, 6
	}
}

// Config selects the channel width and guard interval. The paper's setup:
// 40 MHz bonding, 400 ns short guard interval.
type Config struct {
	Bonded40MHz bool
	ShortGI     bool
}

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config { return Config{Bonded40MHz: true, ShortGI: true} }

// Data subcarriers per symbol.
const (
	dataSubcarriers20 = 52
	dataSubcarriers40 = 108
)

// OFDM symbol durations in seconds.
const (
	SymbolLongGI  = 4.0e-6
	SymbolShortGI = 3.6e-6
)

// HT-mixed-mode preamble: L-STF+L-LTF+L-SIG (20 µs) + HT-SIG (8 µs) +
// HT-STF (4 µs) + one HT-LTF per stream (4 µs each).
func preambleSeconds(streams int) float64 {
	return 20e-6 + 8e-6 + 4e-6 + 4e-6*float64(streams)
}

// DataSubcarriers returns the number of data subcarriers for the config.
func (c Config) DataSubcarriers() int {
	if c.Bonded40MHz {
		return dataSubcarriers40
	}
	return dataSubcarriers20
}

// SymbolSeconds returns the OFDM symbol duration for the config.
func (c Config) SymbolSeconds() float64 {
	if c.ShortGI {
		return SymbolShortGI
	}
	return SymbolLongGI
}

// BitsPerSymbol returns data bits carried by one OFDM symbol at mcs.
func (c Config) BitsPerSymbol(mcs MCS) float64 {
	return float64(c.DataSubcarriers()*mcs.Modulation().BitsPerSymbol()) *
		mcs.CodeRate() * float64(mcs.Streams())
}

// RateBps returns the PHY data rate in bits/s for mcs under this config.
// MCS15 at 40 MHz with short GI is the famous 300 Mb/s; MCS3 is 60 Mb/s,
// the "PHY rates up to 60 Mb/s" the paper fixes in Fig. 6.
func (c Config) RateBps(mcs MCS) float64 {
	return c.BitsPerSymbol(mcs) / c.SymbolSeconds()
}

// AirtimeSeconds returns the duration of a PPDU carrying payloadBits of PSDU
// at mcs: preamble plus data symbols (ceil of bits over bits/symbol, with
// 16 service bits and 6 tail bits).
func (c Config) AirtimeSeconds(mcs MCS, payloadBits int) float64 {
	if payloadBits <= 0 {
		return preambleSeconds(mcs.Streams())
	}
	bits := float64(payloadBits + 16 + 6)
	symbols := math.Ceil(bits / c.BitsPerSymbol(mcs))
	return preambleSeconds(mcs.Streams()) + symbols*c.SymbolSeconds()
}

// --- Error model ---------------------------------------------------------

// snr50 is the SNR (dB) at which a 1568-byte MPDU has 50% error rate, per
// single-stream MCS at 20 MHz equivalent subcarrier load. Values follow the
// classic spacing of the 802.11 OFDM ladder (~3 dB between steps, wider
// into 64-QAM).
var snr50 = [8]float64{2.0, 5.0, 7.5, 10.5, 14.0, 18.0, 19.5, 21.5}

// perSlope is the logistic steepness of the PER curve in 1/dB. Coded OFDM
// over a block-fading channel transitions over roughly ±1.5 dB.
const perSlope = 1.6

// refMPDUBits is the MPDU length the snr50 table is calibrated for.
const refMPDUBits = 1568 * 8

// ErrorModel computes packet error rates for a transmit scheme over the
// aerial channel. The zero value uses sane defaults; fields allow the
// ablation benchmarks to switch effects off.
type ErrorModel struct {
	// Config is the PHY configuration (affects the 40 MHz noise penalty:
	// doubling bandwidth halves per-subcarrier energy, ≈3 dB).
	Config Config
	// DisableSTBCGain turns off the transmit-diversity bonus.
	DisableSTBCGain bool
	// SDMPenaltyDB is the per-stream SNR penalty SDM pays on top of the
	// 3 dB power split when the channel is fully line-of-sight (K → ∞).
	// The penalty shrinks as the K-factor drops and scatter provides the
	// spatial diversity MIMO needs; indoors (K ≈ 0) it nearly vanishes.
	SDMPenaltyDB float64
	// STBCGainDB is the maximum diversity gain of STBC at high SNR.
	STBCGainDB float64
	// MotionBeta scales the stale-channel-estimate loss: the equalizer is
	// trained on the PPDU preamble, and once the Doppler coherence time is
	// shorter than the (aggregated) frame airtime the tail subframes decode
	// against a channel that no longer exists. 0 disables the effect.
	MotionBeta float64
}

// NewErrorModel returns the calibrated error model for a config.
func NewErrorModel(cfg Config) *ErrorModel {
	return &ErrorModel{Config: cfg, SDMPenaltyDB: 7, STBCGainDB: 4.5, MotionBeta: 0.08}
}

// MotionPER returns the additional per-subframe error probability caused
// by channel-estimate staleness when a PPDU of the given airtime is sent
// while the endpoints move at relative speed v (m/s):
// 1 − e^{−β·airtime/Tc} with Tc = 0.423·λ/v, the classic Clarke coherence
// time at 5.2 GHz. Hovering (v ≤ 0) costs nothing.
func (em *ErrorModel) MotionPER(relSpeedMPS, airtimeSeconds float64) float64 {
	if relSpeedMPS <= 0 || airtimeSeconds <= 0 || em.MotionBeta <= 0 {
		return 0
	}
	const lambda = 0.0577 // 5.2 GHz wavelength, metres
	tc := 0.423 * lambda / relSpeedMPS
	return clamp01(1 - math.Exp(-em.MotionBeta*airtimeSeconds/tc))
}

// effectiveSNR maps the link SNR (dB, over the full bonded channel) to the
// per-stream decision SNR for mcs, given the channel's Rician K-factor
// (dB) and whether the transmitter applies STBC to single-stream MCS.
func (em *ErrorModel) effectiveSNR(snrDB float64, mcs MCS, kFactorDB float64, stbc bool) float64 {
	eff := snrDB
	if em.Config.Bonded40MHz {
		// Same total power spread over twice the subcarriers.
		eff -= 3
	}
	if mcs.Streams() == 2 {
		// Power split across streams plus the LoS spatial-correlation
		// penalty: full SDMPenaltyDB at K ≥ 10 dB, fading to zero at
		// K ≤ −5 dB (rich scatter).
		eff -= 3
		w := (kFactorDB + 5) / 15
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		eff -= w * em.SDMPenaltyDB
	} else if stbc && !em.DisableSTBCGain {
		// Diversity gain that needs a decodable channel estimate: ramps in
		// above ~3 dB and saturates at STBCGainDB.
		gain := em.STBCGainDB * sigmoid((snrDB-6)/2.5)
		eff += gain
	}
	return eff
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SubframePER returns the probability that a single MPDU of mpduBits fails
// at mcs given the instantaneous link SNR and channel K-factor.
func (em *ErrorModel) SubframePER(snrDB float64, mcs MCS, mpduBits int, kFactorDB float64, stbc bool) float64 {
	if !mcs.Valid() {
		return 1
	}
	eff := em.effectiveSNR(snrDB, mcs, kFactorDB, stbc)
	ref := 1 / (1 + math.Exp(perSlope*(eff-snr50[mcs.Base()])))
	if mpduBits <= 0 || mpduBits == refMPDUBits {
		return clamp01(ref)
	}
	// Rescale from the reference length via the per-bit success rate.
	perBitOK := math.Pow(1-ref, 1.0/refMPDUBits)
	return clamp01(1 - math.Pow(perBitOK, float64(mpduBits)))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MinSNRFor returns the approximate link SNR (dB) needed to hit the target
// subframe error rate at mcs in a strongly-LoS channel (K = 12 dB), useful
// for planning and for tests. It inverts the logistic numerically.
func (em *ErrorModel) MinSNRFor(mcs MCS, mpduBits int, targetPER float64, stbc bool) float64 {
	lo, hi := -20.0, 60.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if em.SubframePER(mid, mcs, mpduBits, 12, stbc) > targetPER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
