package phy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMCSTableStructure(t *testing.T) {
	for m := MCS(0); m < NumMCS; m++ {
		if !m.Valid() {
			t.Fatalf("%v should be valid", m)
		}
		wantStreams := 1
		if m >= 8 {
			wantStreams = 2
		}
		if m.Streams() != wantStreams {
			t.Errorf("%v streams = %d", m, m.Streams())
		}
		if m.Modulation() != m.Base().Modulation() || m.CodeRate() != m.Base().CodeRate() {
			t.Errorf("%v does not mirror its base MCS", m)
		}
	}
	if MCS(-1).Valid() || MCS(16).Valid() {
		t.Fatal("out-of-range MCS accepted")
	}
}

func TestCanonicalRates(t *testing.T) {
	cfg40sgi := Config{Bonded40MHz: true, ShortGI: true}
	cfg40lgi := Config{Bonded40MHz: true, ShortGI: false}
	cfg20lgi := Config{}
	cases := []struct {
		cfg  Config
		mcs  MCS
		want float64 // Mb/s, from the 802.11n standard table
	}{
		{cfg20lgi, 0, 6.5},
		{cfg20lgi, 7, 65},
		{cfg40lgi, 0, 13.5},
		{cfg40lgi, 3, 54},
		{cfg40lgi, 7, 135},
		{cfg40sgi, 0, 15},
		{cfg40sgi, 1, 30},
		{cfg40sgi, 3, 60}, // the paper's "PHY rates up to 60 Mb/s"
		{cfg40sgi, 7, 150},
		{cfg40sgi, 8, 30},
		{cfg40sgi, 15, 300},
	}
	for _, c := range cases {
		got := c.cfg.RateBps(c.mcs) / 1e6
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("%v rate = %.2f Mb/s, want %.2f", c.mcs, got, c.want)
		}
	}
}

func TestRateMonotoneInMCSWithinStreams(t *testing.T) {
	cfg := DefaultConfig()
	for m := MCS(0); m < 7; m++ {
		if cfg.RateBps(m) >= cfg.RateBps(m+1) {
			t.Errorf("rate not increasing from %v to %v", m, m+1)
		}
	}
	for m := MCS(8); m < 15; m++ {
		if cfg.RateBps(m) >= cfg.RateBps(m+1) {
			t.Errorf("rate not increasing from %v to %v", m, m+1)
		}
	}
}

func TestAirtime(t *testing.T) {
	cfg := DefaultConfig()
	// An empty PPDU is just the preamble.
	if got := cfg.AirtimeSeconds(3, 0); got != preambleSeconds(1) {
		t.Fatalf("empty airtime = %v", got)
	}
	// 2-stream preamble carries an extra HT-LTF.
	if cfg.AirtimeSeconds(8, 0) <= cfg.AirtimeSeconds(0, 0) {
		t.Fatal("2ss preamble should be longer")
	}
	// A 1500-byte MPDU at MCS3/40MHz/SGI: 12000+22 bits over 216 bits/sym →
	// 56 symbols of 3.6 µs plus the 36 µs 1-stream preamble = 237.6 µs.
	got := cfg.AirtimeSeconds(3, 1500*8)
	if math.Abs(got-237.6e-6) > 1e-7 {
		t.Fatalf("airtime = %v, want ≈237.6 µs", got)
	}
	// Airtime decreases with MCS for a fixed payload (within 1ss).
	if cfg.AirtimeSeconds(1, 1500*8) <= cfg.AirtimeSeconds(3, 1500*8) {
		t.Fatal("higher MCS should be faster")
	}
}

func TestStringForms(t *testing.T) {
	if s := MCS(3).String(); !strings.Contains(s, "16-QAM") || !strings.Contains(s, "1/2") {
		t.Fatalf("MCS3 string = %q", s)
	}
	if s := MCS(15).String(); !strings.Contains(s, "2ss") || !strings.Contains(s, "5/6") {
		t.Fatalf("MCS15 string = %q", s)
	}
	if Modulation(99).String() == "" {
		t.Fatal("unknown modulation should still render")
	}
}

func TestPERMonotoneInSNR(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	for m := MCS(0); m < NumMCS; m++ {
		prev := 1.1
		for snr := -5.0; snr <= 45; snr += 1 {
			per := em.SubframePER(snr, m, refMPDUBits, 12, false)
			if per > prev+1e-12 {
				t.Fatalf("%v: PER increased with SNR at %v dB", m, snr)
			}
			prev = per
		}
	}
}

func TestPEROrderingAcrossMCS(t *testing.T) {
	// At any SNR, a more aggressive single-stream MCS has ≥ PER.
	em := NewErrorModel(DefaultConfig())
	for snr := 0.0; snr <= 40; snr += 2 {
		for m := MCS(0); m < 7; m++ {
			a := em.SubframePER(snr, m, refMPDUBits, 12, false)
			b := em.SubframePER(snr, m+1, refMPDUBits, 12, false)
			if a > b+1e-12 {
				t.Fatalf("PER(%v)=%v > PER(%v)=%v at %v dB", m, a, m+1, b, snr)
			}
		}
	}
}

func TestPERLengthScaling(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	short := em.SubframePER(20, 3, 200*8, 12, false)
	long := em.SubframePER(20, 3, 1568*8, 12, false)
	if short >= long {
		t.Fatalf("shorter frames should fail less: %v vs %v", short, long)
	}
	if got := em.SubframePER(20, 3, 0, 12, false); got != em.SubframePER(20, 3, refMPDUBits, 12, false) {
		t.Fatalf("zero length should use the reference: %v", got)
	}
	if em.SubframePER(20, MCS(99), refMPDUBits, 12, false) != 1 {
		t.Fatal("invalid MCS should always fail")
	}
}

func TestSTBCGainHelpsAtModerateSNR(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	with := em.SubframePER(14, 1, refMPDUBits, 12, true)
	without := em.SubframePER(14, 1, refMPDUBits, 12, false)
	if with >= without {
		t.Fatalf("STBC should lower PER: %v vs %v", with, without)
	}
	em.DisableSTBCGain = true
	if got := em.SubframePER(14, 1, refMPDUBits, 12, true); got != without {
		t.Fatalf("disabled STBC should match no-STBC: %v vs %v", got, without)
	}
}

func TestSTBCGainDiminishesAtLowSNR(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	gainAt := func(snr float64) float64 {
		return em.effectiveSNR(snr, 1, 12, true) - em.effectiveSNR(snr, 1, 12, false)
	}
	if gainAt(0) >= gainAt(20) {
		t.Fatalf("STBC gain should shrink at low SNR: %v vs %v", gainAt(0), gainAt(20))
	}
	if g := gainAt(30); math.Abs(g-em.STBCGainDB) > 0.1 {
		t.Fatalf("high-SNR STBC gain = %v, want ≈%v", g, em.STBCGainDB)
	}
}

func TestSDMPenaltyDependsOnKFactor(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	// Strong LoS (aerial): SDM heavily penalized.
	aerial := em.SubframePER(25, 8, refMPDUBits, 12, false)
	// Rich scatter (indoor): penalty nearly gone.
	indoor := em.SubframePER(25, 8, refMPDUBits, -5, false)
	if indoor >= aerial {
		t.Fatalf("SDM should work indoors: indoor %v, aerial %v", indoor, aerial)
	}
	// Indoors at high SNR, MCS15 must be usable — the paper's 176 Mb/s
	// bench test depends on it.
	if per := em.SubframePER(35, 15, refMPDUBits, -5, false); per > 0.1 {
		t.Fatalf("indoor MCS15 PER = %v, want < 0.1", per)
	}
}

func TestMinSNRForOrdering(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	prev := -100.0
	for m := MCS(0); m < 8; m++ {
		snr := em.MinSNRFor(m, refMPDUBits, 0.1, false)
		if snr <= prev {
			t.Fatalf("MinSNRFor not increasing at %v: %v <= %v", m, snr, prev)
		}
		prev = snr
		// Sanity: the returned SNR actually achieves the target.
		if per := em.SubframePER(snr+0.01, m, refMPDUBits, 12, false); per > 0.11 {
			t.Fatalf("%v: PER at MinSNRFor = %v", m, per)
		}
	}
}

// Property: PER is always within [0,1] and finite.
func TestPERBoundsProperty(t *testing.T) {
	em := NewErrorModel(DefaultConfig())
	f := func(snrRaw int16, mcsRaw uint8, bitsRaw uint16, kRaw int8, stbc bool) bool {
		snr := float64(snrRaw % 60)
		mcs := MCS(mcsRaw % NumMCS)
		bits := int(bitsRaw)
		k := float64(kRaw % 20)
		per := em.SubframePER(snr, mcs, bits, k, stbc)
		return per >= 0 && per <= 1 && !math.IsNaN(per)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: airtime grows with payload length.
func TestAirtimeMonotoneProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(a, b uint16, mcsRaw uint8) bool {
		mcs := MCS(mcsRaw % NumMCS)
		la, lb := int(a), int(b)
		if la > lb {
			la, lb = lb, la
		}
		return cfg.AirtimeSeconds(mcs, la) <= cfg.AirtimeSeconds(mcs, lb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
