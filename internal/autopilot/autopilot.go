// Package autopilot implements the waypoint navigation behaviours the
// paper's platforms used (Section 3, "UAVs' Waypoints"): fly-to-waypoint
// legs, station-keeping for quadrocopters, and the ≥20 m-radius circling
// that fixed-wing airplanes substitute for hovering. The autopilot is a
// pure velocity controller: given the vehicle's state it emits a commanded
// velocity; package uav integrates the kinematics.
package autopilot

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/uav"
)

// Mode is what the autopilot is currently doing.
type Mode int

// Autopilot behaviours.
const (
	// Idle commands zero velocity (fixed wings will keep stall speed).
	Idle Mode = iota
	// GoTo flies toward the target waypoint at the set speed.
	GoTo
	// Hold keeps station at the target: hover for quadrocopters, a circle
	// of the platform's minimum turn radius for airplanes.
	Hold
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Idle:
		return "idle"
	case GoTo:
		return "goto"
	case Hold:
		return "hold"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ArrivalRadiusM is the distance at which a waypoint counts as reached.
const ArrivalRadiusM = 3.0

// maxLegHopsPerStep bounds how many immediately-satisfied GoTo legs one
// command evaluation may chain through. A route whose next waypoints all
// sit within the arrival radius fires their callbacks back to back; a loop
// route re-entering at an already-reached waypoint would chain forever, so
// past the budget the craft simply holds for the rest of the tick and
// resumes unwinding on the next one.
const maxLegHopsPerStep = 64

// Autopilot steers one vehicle.
type Autopilot struct {
	v      *uav.Vehicle
	mode   Mode
	target geo.Vec3
	speed  float64
	// arrived latches once the current GoTo target has been reached.
	arrived bool
	// onArrive, if set, fires once when a GoTo target is reached.
	onArrive func()
}

// New attaches an autopilot to a vehicle.
func New(v *uav.Vehicle) (*Autopilot, error) {
	if v == nil {
		return nil, fmt.Errorf("autopilot: nil vehicle")
	}
	return &Autopilot{v: v, mode: Idle}, nil
}

// Vehicle returns the steered vehicle.
func (a *Autopilot) Vehicle() *uav.Vehicle { return a.v }

// Mode returns the current behaviour.
func (a *Autopilot) Mode() Mode { return a.mode }

// Target returns the current waypoint.
func (a *Autopilot) Target() geo.Vec3 { return a.target }

// Arrived reports whether the last GoTo target has been reached.
func (a *Autopilot) Arrived() bool { return a.arrived }

// GoTo commands flight to a waypoint at the given speed (0 → cruise).
// The optional onArrive callback fires once on arrival, after which the
// autopilot switches to Hold at the waypoint.
func (a *Autopilot) GoTo(target geo.Vec3, speed float64, onArrive func()) {
	if speed <= 0 {
		speed = a.v.CruiseSpeedMPS
	}
	a.mode = GoTo
	a.target = target
	a.speed = speed
	a.arrived = false
	a.onArrive = onArrive
}

// Hold commands station-keeping at a point.
func (a *Autopilot) Hold(target geo.Vec3) {
	a.mode = Hold
	a.target = target
	a.speed = a.v.CruiseSpeedMPS
	a.arrived = true
}

// Idle commands zero velocity.
func (a *Autopilot) SetIdle() {
	a.mode = Idle
	a.arrived = false
}

// Step computes the velocity command for this tick and advances the
// vehicle by dt.
func (a *Autopilot) Step(dt float64) {
	a.v.Step(dt, a.command())
}

// Settled reports that Step has become a fixed point for position and
// velocity: absent a new command, any number of further Steps leaves the
// vehicle exactly where it is. That holds when the vehicle can no longer
// move (failed, or battery exhausted — uav.Vehicle.Step is a full no-op
// then), or when a hovering platform sits at zero velocity inside the
// arrival radius of an Idle/Hold target, where the command is the zero
// vector and accel-limited tracking of zero from zero stays zero.
//
// Fixed wings never settle (Hold orbits), and GoTo never settles (the
// arrival callback may issue new legs). Callers that elide Steps for a
// settled vehicle must still replay them before reading battery state:
// hover draws power, so battery drain is NOT part of the fixed point.
func (a *Autopilot) Settled() bool {
	if a.v.Failed() || a.v.BatteryLeftSeconds() <= 0 {
		return true
	}
	if !a.v.CanHover {
		return false
	}
	if a.v.Velocity() != (geo.Vec3{}) {
		return false
	}
	// A craft outside the altitude envelope is not at a fixed point even
	// with a zero command: Step clamps it back inside, so eliding here
	// would freeze it at an altitude the dynamics never allow (found by
	// differential verification — a holding quad spawned above its ceiling
	// stayed there in the event-driven path while the lockstep reference
	// correctly pulled it down).
	if p := a.v.Position(); p.Z > a.v.MaxSafeAltitudeM || p.Z < 0 {
		return false
	}
	switch a.mode {
	case Idle:
		return true
	case Hold:
		return a.target.Sub(a.v.Position()).Norm() <= ArrivalRadiusM
	default:
		return false
	}
}

// command computes the desired velocity for the current mode.
func (a *Autopilot) command() geo.Vec3 {
	switch a.mode {
	case GoTo:
		return a.goToCommand()
	case Hold:
		return a.holdCommand()
	default:
		return geo.Vec3{}
	}
}

func (a *Autopilot) goToCommand() geo.Vec3 {
	// Chain through immediately-satisfied legs iteratively, never
	// recursively: each arrival callback may issue the next GoTo, and a
	// loop route re-entering at the waypoint just reached would otherwise
	// recurse until the stack overflows (found by the adversarial scenario
	// generator: a valid spec with loop_from naming the final waypoint).
	for hops := 0; hops < maxLegHopsPerStep; hops++ {
		sep := a.target.Sub(a.v.Position())
		dist := sep.Norm()
		if dist > ArrivalRadiusM {
			speed := a.speed
			if a.v.CanHover {
				// Decelerate on approach so quads do not overshoot.
				if brake := math.Sqrt(2 * a.v.AccelMPS2 * dist); brake < speed {
					speed = brake
				}
			}
			return sep.Unit().Scale(speed)
		}
		if a.arrived {
			a.mode = Hold
			return a.holdCommand()
		}
		a.arrived = true
		// Default post-arrival behaviour is station keeping; the callback
		// may override it (e.g. issue the next leg), so set the mode
		// before firing and re-dispatch afterwards.
		a.mode = Hold
		if a.onArrive != nil {
			cb := a.onArrive
			a.onArrive = nil
			cb()
		}
		if a.mode != GoTo {
			// The callback left Hold/Idle in place — dispatch it directly
			// (neither can re-enter this loop).
			return a.command()
		}
	}
	// Hop budget exhausted: every reachable waypoint is inside the arrival
	// radius. Hold for the rest of this tick; the chain resumes next tick.
	return geo.Vec3{}
}

// holdCommand keeps station: hover in place for rotorcraft, orbit the
// target at minimum turn radius for fixed wings (the paper's airplanes
// "circle with a radius of at least 20 m").
func (a *Autopilot) holdCommand() geo.Vec3 {
	if a.v.CanHover {
		sep := a.target.Sub(a.v.Position())
		if d := sep.Norm(); d > ArrivalRadiusM {
			speed := math.Min(a.v.CruiseSpeedMPS, math.Sqrt(2*a.v.AccelMPS2*d))
			return sep.Unit().Scale(speed)
		}
		return geo.Vec3{}
	}
	return a.orbitCommand()
}

// orbitCommand steers a fixed wing around the hold target.
func (a *Autopilot) orbitCommand() geo.Vec3 {
	r := a.v.MinTurnRadiusM
	if r <= 0 {
		r = 20
	}
	pos := a.v.Position()
	sep := pos.Sub(a.target)
	sep.Z = 0
	d := sep.Norm()
	// Altitude hold toward the target's altitude.
	climb := (a.target.Z - pos.Z)
	if climb > 2 {
		climb = 2
	}
	if climb < -2 {
		climb = -2
	}
	speed := math.Max(a.v.StallSpeedMPS, a.v.CruiseSpeedMPS)
	if d < 1e-6 {
		// On top of the waypoint: fly straight out to pick up the ring.
		out := geo.FromHeadingXY(0).Scale(speed)
		out.Z = climb
		return out
	}
	radial := sep.Unit()
	tangent := geo.Vec3{X: -radial.Y, Y: radial.X}
	// Blend tangential orbit with a radial correction toward the ring.
	radialErr := (d - r) / r
	if radialErr > 1 {
		radialErr = 1
	}
	if radialErr < -1 {
		radialErr = -1
	}
	dir := tangent.Sub(radial.Scale(radialErr)).Unit()
	cmd := dir.Scale(speed)
	cmd.Z = climb
	return cmd
}
