package autopilot

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/uav"
)

func newQuad(t *testing.T, pos geo.Vec3) *Autopilot {
	t.Helper()
	v, err := uav.NewVehicle("q", uav.Arducopter(), pos)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(v)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newPlane(t *testing.T, pos geo.Vec3) *Autopilot {
	t.Helper()
	v, err := uav.NewVehicle("a", uav.Swinglet(), pos)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(v)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewNilVehicle(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil vehicle accepted")
	}
}

func TestQuadReachesWaypoint(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	target := geo.Vec3{X: 60, Y: 30, Z: 10}
	fired := false
	a.GoTo(target, 0, func() { fired = true })
	if a.Mode() != GoTo || a.Arrived() {
		t.Fatal("GoTo state wrong")
	}
	for i := 0; i < 600 && !a.Arrived(); i++ {
		a.Step(0.1)
	}
	if !a.Arrived() || !fired {
		t.Fatalf("never arrived (dist %v)", a.Vehicle().Position().Dist(target))
	}
	// Quad then station-keeps: run on and verify it stays put.
	for i := 0; i < 200; i++ {
		a.Step(0.1)
	}
	if d := a.Vehicle().Position().Dist(target); d > ArrivalRadiusM+1 {
		t.Fatalf("quad wandered %v m from hold point", d)
	}
	if a.Vehicle().Speed() > 0.5 {
		t.Fatalf("quad not hovering: %v m/s", a.Vehicle().Speed())
	}
}

func TestArrivalCallbackFiresOnce(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	count := 0
	a.GoTo(geo.Vec3{X: 10, Z: 10}, 0, func() { count++ })
	for i := 0; i < 400; i++ {
		a.Step(0.1)
	}
	if count != 1 {
		t.Fatalf("onArrive fired %d times", count)
	}
}

func TestQuadApproachSpeedIsCruise(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	a.GoTo(geo.Vec3{X: 200, Z: 10}, 0, nil)
	for i := 0; i < 100; i++ {
		a.Step(0.1)
	}
	if s := a.Vehicle().Speed(); math.Abs(s-uav.Arducopter().CruiseSpeedMPS) > 0.2 {
		t.Fatalf("cruise speed = %v", s)
	}
	// Custom speed is honoured.
	b := newQuad(t, geo.Vec3{Z: 10})
	b.GoTo(geo.Vec3{X: 200, Z: 10}, 8, nil)
	for i := 0; i < 100; i++ {
		b.Step(0.1)
	}
	if s := b.Vehicle().Speed(); math.Abs(s-8) > 0.2 {
		t.Fatalf("commanded speed = %v", s)
	}
}

func TestAirplaneCirclesHoldPoint(t *testing.T) {
	a := newPlane(t, geo.Vec3{X: -200, Z: 90})
	hold := geo.Vec3{X: 0, Y: 0, Z: 90}
	a.Hold(hold)
	// Let the orbit settle, then check the radius stays near the minimum
	// turn radius and the plane keeps moving.
	for i := 0; i < 600; i++ {
		a.Step(0.1)
	}
	var minD, maxD = math.Inf(1), 0.0
	var minSpeed = math.Inf(1)
	for i := 0; i < 600; i++ {
		a.Step(0.1)
		p := a.Vehicle().Position()
		d := math.Hypot(p.X-hold.X, p.Y-hold.Y)
		minD = math.Min(minD, d)
		maxD = math.Max(maxD, d)
		minSpeed = math.Min(minSpeed, a.Vehicle().Speed())
	}
	r := uav.Swinglet().MinTurnRadiusM
	if minD < r*0.5 || maxD > r*2.5 {
		t.Fatalf("orbit radius drifted: [%v, %v], want ≈%v", minD, maxD, r)
	}
	if minSpeed < uav.Swinglet().StallSpeedMPS-0.1 {
		t.Fatalf("airplane slowed to %v while holding", minSpeed)
	}
}

func TestAirplaneOrbitHoldsAltitude(t *testing.T) {
	a := newPlane(t, geo.Vec3{X: -100, Z: 60})
	a.Hold(geo.Vec3{Z: 90})
	for i := 0; i < 2000; i++ {
		a.Step(0.1)
	}
	if z := a.Vehicle().Position().Z; math.Abs(z-90) > 5 {
		t.Fatalf("altitude = %v, want ≈90", z)
	}
}

func TestAirplaneFliesBetweenWaypoints(t *testing.T) {
	// The Fig 4(a) pattern: two waypoints 300 m apart; the plane commutes.
	a := newPlane(t, geo.Vec3{X: 0, Z: 80})
	wpA := geo.Vec3{X: 0, Y: 0, Z: 80}
	wpB := geo.Vec3{X: 300, Y: 0, Z: 80}
	legs := 0
	var fly func()
	fly = func() {
		legs++
		if legs%2 == 1 {
			a.GoTo(wpB, 0, fly)
		} else {
			a.GoTo(wpA, 0, fly)
		}
	}
	fly()
	for i := 0; i < 3000; i++ {
		a.Step(0.1)
	}
	if legs < 3 {
		t.Fatalf("completed only %d legs in 300 s", legs)
	}
}

func TestIdleQuadStops(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	a.GoTo(geo.Vec3{X: 100, Z: 10}, 0, nil)
	for i := 0; i < 50; i++ {
		a.Step(0.1)
	}
	a.SetIdle()
	if a.Mode() != Idle {
		t.Fatal("mode not idle")
	}
	for i := 0; i < 100; i++ {
		a.Step(0.1)
	}
	if a.Vehicle().Speed() > 0.1 {
		t.Fatalf("idle quad still moving at %v", a.Vehicle().Speed())
	}
}

func TestHoldQuadReturnsWhenDisplaced(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	hold := geo.Vec3{Z: 10}
	a.Hold(hold)
	a.Vehicle().Teleport(geo.Vec3{X: 30, Z: 10})
	for i := 0; i < 400; i++ {
		a.Step(0.1)
	}
	if d := a.Vehicle().Position().Dist(hold); d > ArrivalRadiusM+1 {
		t.Fatalf("quad did not return to hold point: %v m away", d)
	}
}

// Settled must be exact: once it reports true, further Steps may be elided
// and later replayed without changing position or velocity at all.
func TestSettledIsAStepFixedPoint(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	a.GoTo(geo.Vec3{X: 40, Z: 10}, 0, nil)
	if a.Settled() {
		t.Fatal("settled while GoTo is active")
	}
	for i := 0; i < 3000 && !a.Settled(); i++ {
		a.Step(0.02)
	}
	if !a.Settled() {
		t.Fatalf("quad never settled (mode %v, vel %v)", a.Mode(), a.Vehicle().Velocity())
	}
	pos, vel := a.Vehicle().Position(), a.Vehicle().Velocity()
	for i := 0; i < 500; i++ {
		a.Step(0.02)
	}
	if a.Vehicle().Position() != pos || a.Vehicle().Velocity() != vel {
		t.Fatalf("settled state moved: pos %v→%v vel %v→%v",
			pos, a.Vehicle().Position(), vel, a.Vehicle().Velocity())
	}
	// Battery is NOT part of the fixed point: hover still draws power.
	b0 := a.Vehicle().BatteryLeftSeconds()
	a.Step(0.02)
	if a.Vehicle().BatteryLeftSeconds() >= b0 {
		t.Fatal("settled hover stopped draining battery")
	}
	// A new command unsettles.
	a.GoTo(geo.Vec3{X: 80, Z: 10}, 0, nil)
	if a.Settled() {
		t.Fatal("still settled after a new GoTo")
	}
}

func TestSettledPlaneNever(t *testing.T) {
	a := newPlane(t, geo.Vec3{Z: 20})
	a.Hold(geo.Vec3{Z: 20})
	for i := 0; i < 100; i++ {
		a.Step(0.02)
		if a.Settled() {
			t.Fatal("orbiting plane reported settled")
		}
	}
}

func TestSettledOnFailure(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	a.GoTo(geo.Vec3{X: 400, Z: 10}, 0, nil)
	a.Vehicle().Fail()
	if !a.Settled() {
		t.Fatal("failed vehicle not settled")
	}
}

// A hold quad spawned above its operational ceiling is NOT at a fixed
// point: Step clamps it back inside the envelope. Reporting it settled let
// the event-driven scenario core elide it frozen above the ceiling while
// the lockstep reference pulled it down (caught by differential
// verification).
func TestSettledFalseOutsideAltitudeEnvelope(t *testing.T) {
	ceiling := newQuad(t, geo.Vec3{Z: 10}).Vehicle().MaxSafeAltitudeM
	a := newQuad(t, geo.Vec3{Z: ceiling + 10})
	a.Hold(a.Vehicle().Position())
	if a.Settled() {
		t.Fatal("craft above the ceiling reported settled")
	}
	// Step must actually bring it inside, after which hold at the (still
	// out-of-envelope) spawn target keeps it unsettled and station-bound.
	a.Step(0.02)
	if z := a.Vehicle().Position().Z; z > ceiling {
		t.Fatalf("altitude %v still above ceiling %v after a step", z, ceiling)
	}
	// The legal-altitude twin settles as before.
	b := newQuad(t, geo.Vec3{Z: ceiling - 10})
	b.Hold(b.Vehicle().Position())
	if !b.Settled() {
		t.Fatal("in-envelope hold quad no longer settles")
	}
}

// A loop route that re-enters at the waypoint just reached chains arrival
// callbacks forever; the dispatch must iterate under a bounded hop budget
// instead of recursing until the stack overflows (caught by the
// adversarial scenario generator: a valid spec with loop_from naming the
// final waypoint).
func TestLoopOntoReachedWaypointDoesNotRecurse(t *testing.T) {
	a := newQuad(t, geo.Vec3{Z: 10})
	target := geo.Vec3{X: 1, Z: 10} // within ArrivalRadiusM of the start
	var legs int
	var next func()
	next = func() {
		legs++
		a.GoTo(target, 0, next) // immediately satisfied, forever
	}
	a.GoTo(target, 0, next)
	for i := 0; i < 50; i++ {
		a.Step(0.02) // must terminate: hop budget, not stack depth
	}
	if legs < maxLegHopsPerStep {
		t.Fatalf("only %d legs chained; budget %d never engaged", legs, maxLegHopsPerStep)
	}
	if pos := a.Vehicle().Position(); pos.Dist(geo.Vec3{Z: 10}) > ArrivalRadiusM {
		t.Fatalf("craft wandered to %v while chaining in-radius legs", pos)
	}
}
