package nlserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/nowlater/nowlater/internal/nlwire"
	"github.com/nowlater/nowlater/internal/overload"
	"github.com/nowlater/nowlater/internal/policy"
)

// MaxBatch bounds one batch request; larger batches get 400, not OOM.
const MaxBatch = 10000

// maxBodyBytes bounds any request body.
const maxBodyBytes = 4 << 20

// admit runs the admission gate for a decide-path request. A shed writes
// the 429 (with Retry-After) itself and returns false; a client that gave
// up while queued gets nothing (it is gone). The returned release must be
// called when the request finishes.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.cfg.Admission.Acquire(r.Context())
	if err == nil {
		return release, true
	}
	var shed *overload.ShedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", nlwire.FormatRetryAfter(shed.RetryAfter))
		s.writeJSON(w, http.StatusTooManyRequests,
			nlwire.Decision{Error: fmt.Sprintf("overloaded (%s), retry later", shed.Reason)})
	}
	return nil, false
}

// readyEngine returns the serving engine, or writes the 503 (table still
// loading) and returns nil.
func (s *Server) readyEngine(w http.ResponseWriter) *policy.Engine {
	eng := s.engine.Load()
	if eng == nil {
		w.Header().Set("Retry-After", nlwire.FormatRetryAfter(time.Second))
		s.writeJSON(w, http.StatusServiceUnavailable,
			nlwire.Decision{Error: "policy table still loading"})
	}
	return eng
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	eng := s.readyEngine(w)
	if eng == nil {
		return
	}
	var q nlwire.Query
	if err := decodeBody(w, r, &q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	start := time.Now()
	d, err := eng.DecideContext(ctx, q.Policy())
	s.latency.observe(time.Since(start))
	if err != nil {
		status := http.StatusBadRequest
		if ctx.Err() != nil {
			status = http.StatusServiceUnavailable
		}
		s.writeJSON(w, status, nlwire.Decision{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, nlwire.FromDecision(d))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	eng := s.readyEngine(w)
	if eng == nil {
		return
	}
	var qs []nlwire.Query
	if err := decodeBody(w, r, &qs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(qs) > MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds the %d-query limit", len(qs), MaxBatch),
			http.StatusBadRequest)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	out := make([]nlwire.Decision, len(qs))
	for i, q := range qs {
		// The request context covers the whole batch: once the client's
		// deadline passes (or it hangs up), the remaining items are
		// reported unanswered instead of burning optimizer time on them.
		if err := ctx.Err(); err != nil {
			for j := i; j < len(qs); j++ {
				out[j] = nlwire.Decision{Error: err.Error()}
			}
			break
		}
		start := time.Now()
		d, err := eng.DecideContext(ctx, q.Policy())
		s.latency.observe(time.Since(start))
		if err != nil {
			out[i] = nlwire.Decision{Error: err.Error()}
			continue
		}
		out[i] = nlwire.FromDecision(d)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := nlwire.Health{Status: "ok", Version: s.cfg.Version}
	if eng := s.engine.Load(); eng != nil {
		tbl := eng.Table()
		h.Points = tbl.Points()
		h.Fingerprint = fmt.Sprintf("%016x", tbl.Fingerprint())
	}
	s.writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	eng := s.engine.Load()
	ready := nlwire.Ready{Status: "ok"}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		ready.Status = "draining"
		status = http.StatusServiceUnavailable
	case eng == nil:
		ready.Status = "loading"
		status = http.StatusServiceUnavailable
	}
	if s.cfg.Breaker != nil {
		ready.BreakerState = s.cfg.Breaker.Stats().State.String()
	}
	if eng != nil {
		ready.DegradedRatio = eng.Stats().DegradedRatio()
	}
	s.writeJSON(w, status, ready)
}

// decodeBody parses a bounded JSON request body into dst.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("request body has trailing data")
	}
	return nil
}

// writeJSON marshals first and writes once: a response is either complete
// (correct Content-Length, single WriteHeader) or it is counted as a write
// failure — never a silently truncated body or a double WriteHeader under
// http.TimeoutHandler.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.writeFails.Add(1)
		http.Error(w, "encoding response", http.StatusInternalServerError)
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	if _, err := w.Write(data); err != nil {
		s.writeFails.Add(1)
	}
}
