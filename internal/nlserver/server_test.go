package nlserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nowlater/nowlater/internal/nlwire"
	"github.com/nowlater/nowlater/internal/overload"
	"github.com/nowlater/nowlater/internal/policy"
)

// quickConfig is the airplane fit over the smoke-scale grid.
func quickConfig() policy.Config {
	cfg := policy.AirplaneConfig()
	cfg.Grid = policy.QuickGrid()
	return cfg
}

// quickEngine builds a quick-grid policy engine once per test binary.
var (
	quickEngOnce sync.Once
	quickEng     *policy.Engine
	quickEngErr  error
)

func quickEngine(t testing.TB) *policy.Engine {
	t.Helper()
	quickEngOnce.Do(func() {
		tbl, err := policy.Build(context.Background(), quickConfig(), policy.BuildOptions{})
		if err != nil {
			quickEngErr = err
			return
		}
		quickEng, quickEngErr = policy.NewEngine(tbl, 256)
	})
	if quickEngErr != nil {
		t.Fatal(quickEngErr)
	}
	return quickEng
}

// freshServer builds a server around its own engine (private counters), so
// tests that assert on stats do not share state.
func freshServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	tbl := quickEngine(t).Table()
	eng, err := policy.NewEngine(tbl, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	return New(cfg)
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestDecideEndpoint(t *testing.T) {
	s := freshServer(t, Config{ReqTimeout: 5 * time.Second})
	h := s.Handler()

	rec := postJSON(t, h, nlwire.PathDecide,
		nlwire.Query{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: 1.11e-4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var d nlwire.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Error != "" || d.DoptM <= 0 || d.DoptM > 300 || d.Source == "" || d.Degraded {
		t.Fatalf("implausible decision: %+v", d)
	}
	// The answer must agree with the exact optimizer to the policy bound.
	want, err := quickConfig().Scenario(policy.Query{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: 1.11e-4}).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(d.DoptM-want.DoptM) / want.DoptM; rel > 1e-3 {
		t.Fatalf("served dopt %.4f vs exact %.4f (rel %.2e)", d.DoptM, want.DoptM, rel)
	}

	// Invalid query: 400 with a JSON error, not a panic.
	rec = postJSON(t, h, nlwire.PathDecide, nlwire.Query{D0M: -5, SpeedMPS: 10, MdataMB: 28})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid query status %d", rec.Code)
	}
	// Malformed body and wrong method.
	req := httptest.NewRequest(http.MethodPost, nlwire.PathDecide, strings.NewReader("{not json"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", rr.Code)
	}
	req = httptest.NewRequest(http.MethodGet, nlwire.PathDecide, nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", rr.Code)
	}
}

// TestBatchEndpointOrderAndPartialErrors pins the batch contract: one
// response per query, in request order, with failures isolated per item —
// answers around an invalid query must be exactly the answers those
// queries get when asked alone.
func TestBatchEndpointOrderAndPartialErrors(t *testing.T) {
	s := freshServer(t, Config{ReqTimeout: 5 * time.Second})
	h := s.Handler()

	batch := []nlwire.Query{
		{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: 1.11e-4},
		{D0M: 150, SpeedMPS: 5, MdataMB: 10, Rho: 5e-4},
		{D0M: -1, SpeedMPS: 5, MdataMB: 10},           // invalid: per-item error
		{D0M: 900, SpeedMPS: 10, MdataMB: 28, Rho: 0}, // out of grid: exact fallback
		{D0M: 220, SpeedMPS: 7, MdataMB: 12, Rho: 3e-4},
	}
	rec := postJSON(t, h, nlwire.PathBatch, batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var ds []nlwire.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(batch) {
		t.Fatalf("%d decisions for %d queries", len(ds), len(batch))
	}
	if ds[2].Error == "" {
		t.Fatal("invalid query did not report an error")
	}
	if ds[3].Error != "" || ds[3].Source != policy.SourceExactOutOfGrid.String() {
		t.Fatalf("out-of-grid query: %+v", ds[3])
	}
	// Each positional answer must match the single-decide answer for the
	// query at that position — the strongest order check available.
	for _, i := range []int{0, 1, 3, 4} {
		single := postJSON(t, h, nlwire.PathDecide, batch[i])
		var want nlwire.Decision
		if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
			t.Fatal(err)
		}
		got := ds[i]
		got.Source, want.Source = "", "" // cache vs table: same answer, different path
		if got != want {
			t.Fatalf("batch[%d] = %+v, single decide = %+v", i, got, want)
		}
	}

	// Oversized batch: rejected.
	big := make([]nlwire.Query, MaxBatch+1)
	rec = postJSON(t, h, nlwire.PathBatch, big)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", rec.Code)
	}
}

// TestBatchHonorsDeadlineHeader propagates a deadline that expires inside
// the batch: the response must still cover every query, with the
// unprocessed tail reporting the deadline error.
func TestBatchHonorsDeadlineHeader(t *testing.T) {
	s := freshServer(t, Config{})
	h := s.Handler()

	// Out-of-grid queries force ~180 µs exact solves; 2000 of them cannot
	// finish inside 1 ms.
	batch := make([]nlwire.Query, 2000)
	for i := range batch {
		batch[i] = nlwire.Query{
			D0M: 500 + float64(i)*0.01, SpeedMPS: 10, MdataMB: 28, Rho: 1e-4,
		}
	}
	data, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, nlwire.PathBatch, bytes.NewReader(data))
	req.Header.Set(nlwire.HeaderDeadlineMS, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var ds []nlwire.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(batch) {
		t.Fatalf("%d decisions for %d queries", len(ds), len(batch))
	}
	expired := 0
	for _, d := range ds {
		if strings.Contains(d.Error, context.DeadlineExceeded.Error()) {
			expired++
		}
	}
	if expired == 0 {
		t.Fatal("1 ms deadline over 2000 exact solves expired nothing")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := freshServer(t, Config{
		Version:   "test-build",
		Admission: overload.NewAdmission(overload.AdmissionConfig{}),
		Breaker:   overload.NewBreaker(overload.BreakerConfig{}),
	})
	h := s.Handler()

	// Generate traffic so counters and the histogram move: the same query
	// twice guarantees a cache hit.
	q := nlwire.Query{D0M: 200, SpeedMPS: 8, MdataMB: 15, Rho: 2e-4}
	postJSON(t, h, nlwire.PathDecide, q)
	postJSON(t, h, nlwire.PathDecide, q)

	req := httptest.NewRequest(http.MethodGet, nlwire.PathHealthz, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health nlwire.Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Points == 0 || len(health.Fingerprint) != 16 ||
		health.Version != "test-build" {
		t.Fatalf("healthz payload %+v", health)
	}

	req = httptest.NewRequest(http.MethodGet, nlwire.PathMetrics, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"nowlaterd_requests_total",
		`nowlaterd_decisions_total{source="cache"}`,
		`nowlaterd_decisions_total{source="degraded_table"}`,
		"nowlaterd_cache_hit_ratio",
		"nowlaterd_fallback_ratio",
		"nowlaterd_degraded_ratio",
		"nowlaterd_ready 1",
		"nowlaterd_inflight_requests",
		"nowlaterd_admitted_total",
		`nowlaterd_shed_total{reason="queue_full"}`,
		`nowlaterd_shed_total{reason="queue_wait"}`,
		"nowlaterd_breaker_state 0",
		"nowlaterd_breaker_opens_total",
		"nowlaterd_response_write_failures_total",
		"nowlaterd_decision_latency_seconds_bucket{le=\"+Inf\"}",
		"nowlaterd_decision_latency_seconds_count",
		"nowlaterd_table_points",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, "nowlaterd_cache_hit_ratio 0\n") {
		t.Error("cache hit ratio still zero after a repeated query")
	}
}

// TestMetricsUnderConcurrentLoad hammers the decide endpoints from many
// goroutines while scraping /metrics — under -race this is the proof that
// every counter on the scrape path is safely published.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	s := freshServer(t, Config{
		Admission: overload.NewAdmission(overload.AdmissionConfig{MaxInFlight: 4, MaxQueue: 8, MaxWait: time.Millisecond}),
		Breaker:   overload.NewBreaker(overload.BreakerConfig{MaxConcurrent: 2}),
	})
	h := s.Handler()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mix of cached, table and exact-fallback traffic.
				q := nlwire.Query{
					D0M: 100 + float64((w*31+i)%400), SpeedMPS: 5, MdataMB: 10, Rho: 1e-4,
				}
				if i%3 == 0 {
					postJSON(t, h, nlwire.PathBatch, []nlwire.Query{q, {D0M: -1, SpeedMPS: 1, MdataMB: 1}})
				} else {
					postJSON(t, h, nlwire.PathDecide, q)
				}
			}
		}(w)
	}
	deadline := time.After(300 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			req := httptest.NewRequest(http.MethodGet, nlwire.PathMetrics, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("metrics status %d", rec.Code)
				done = true
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestShedReturns429WithRetryAfter saturates a one-slot admission gate and
// asserts the overflow is refused with 429 + Retry-After.
func TestShedReturns429WithRetryAfter(t *testing.T) {
	s := freshServer(t, Config{
		Admission: overload.NewAdmission(overload.AdmissionConfig{
			MaxInFlight: 1, MaxQueue: 0, MaxWait: time.Millisecond, RetryAfter: 50 * time.Millisecond,
		}),
	})
	h := s.Handler()

	// Hold the only slot with a long batch of exact-fallback queries.
	slow := make([]nlwire.Query, 3000)
	for i := range slow {
		slow[i] = nlwire.Query{D0M: 600 + float64(i)*0.01, SpeedMPS: 10, MdataMB: 28, Rho: 1e-4}
	}
	started := make(chan struct{})
	doneSlow := make(chan struct{})
	go func() {
		defer close(doneSlow)
		close(started)
		postJSON(t, h, nlwire.PathBatch, slow)
	}()
	<-started

	q := nlwire.Query{D0M: 200, SpeedMPS: 8, MdataMB: 15, Rho: 2e-4}
	var shed *httptest.ResponseRecorder
	for i := 0; i < 500; i++ {
		rec := postJSON(t, h, nlwire.PathDecide, q)
		if rec.Code == http.StatusTooManyRequests {
			shed = rec
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-doneSlow
	if shed == nil {
		t.Fatal("no request was shed while the slot was held")
	}
	ra, ok := nlwire.ParseRetryAfter(shed.Header().Get("Retry-After"))
	if !ok || ra != 50*time.Millisecond {
		t.Fatalf("Retry-After %q", shed.Header().Get("Retry-After"))
	}
	var d nlwire.Decision
	if err := json.Unmarshal(shed.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Error, "overloaded") {
		t.Fatalf("shed body %+v", d)
	}
	if st := s.cfg.Admission.Stats(); st.Shed() == 0 {
		t.Fatalf("shed not counted: %+v", st)
	}
}

// TestDegradedServingUnderFallbackStorm floods the exact fallback until
// the breaker trips, then asserts the service keeps answering — degraded,
// marked, and within the feasible envelope.
func TestDegradedServingUnderFallbackStorm(t *testing.T) {
	s := freshServer(t, Config{
		Breaker: overload.NewBreaker(overload.BreakerConfig{
			MaxConcurrent: 1, Window: time.Second, TripDenials: 2,
			OpenFor: 10 * time.Second, HalfOpenProbes: 1,
		}),
	})
	h := s.Handler()

	var mu sync.Mutex
	var degraded []nlwire.Decision
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := nlwire.Query{
					D0M: 500 + float64(w*1000+i), SpeedMPS: 10, MdataMB: 28, Rho: 1e-4,
				}
				rec := postJSON(t, h, nlwire.PathDecide, q)
				if rec.Code != http.StatusOK {
					t.Errorf("storm decide status %d: %s", rec.Code, rec.Body)
					return
				}
				var d nlwire.Decision
				if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
					t.Error(err)
					return
				}
				if d.Degraded {
					if d.Source != policy.SourceDegradedTable.String() {
						t.Errorf("degraded decision with source %q", d.Source)
						return
					}
					if d.DoptM <= 0 || d.DoptM > q.D0M {
						t.Errorf("degraded dopt %.3f outside (0, %.0f]", d.DoptM, q.D0M)
						return
					}
					mu.Lock()
					degraded = append(degraded, d)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(degraded) == 0 {
		t.Fatal("fallback storm produced no degraded answers")
	}
	if st := s.cfg.Breaker.Stats(); st.Opens == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	req := httptest.NewRequest(http.MethodGet, nlwire.PathReadyz, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var ready nlwire.Ready
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || ready.DegradedRatio == 0 || ready.BreakerState != "open" {
		t.Fatalf("readyz after storm: %d %+v", rec.Code, ready)
	}
}

// TestReadyzLifecycle walks 503(loading) → 200 → 503(draining).
func TestReadyzLifecycle(t *testing.T) {
	s := New(Config{DrainGrace: 150 * time.Millisecond})

	getReady := func(h http.Handler) (int, nlwire.Ready) {
		req := httptest.NewRequest(http.MethodGet, nlwire.PathReadyz, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var ready nlwire.Ready
		if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
			t.Fatal(err)
		}
		return rec.Code, ready
	}

	code, ready := getReady(s.Handler())
	if code != http.StatusServiceUnavailable || ready.Status != "loading" {
		t.Fatalf("before engine: %d %+v", code, ready)
	}
	// Decide while loading: 503 with a retry hint, not a panic.
	rec := postJSON(t, s.Handler(), nlwire.PathDecide, nlwire.Query{D0M: 200, SpeedMPS: 8, MdataMB: 15})
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("decide while loading: %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	// /healthz is liveness: already 200 with no table.
	req := httptest.NewRequest(http.MethodGet, nlwire.PathHealthz, nil)
	hrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz while loading: %d", hrec.Code)
	}

	s.SetEngine(quickEngine(t))
	if code, ready = getReady(s.Handler()); code != http.StatusOK || ready.Status != "ok" {
		t.Fatalf("after engine: %d %+v", code, ready)
	}
	if !s.Ready() {
		t.Fatal("Ready() false with engine installed")
	}

	// Serve, then cancel: during DrainGrace /readyz must say draining.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	waitHTTPReady(t, base)
	cancel()
	sawDraining := false
	for i := 0; i < 50 && !sawDraining; i++ {
		resp, err := http.Get(base + nlwire.PathReadyz)
		if err != nil {
			break // already shut down
		}
		var ready nlwire.Ready
		err = json.NewDecoder(resp.Body).Decode(&ready)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusServiceUnavailable && ready.Status == "draining" {
			sawDraining = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("never observed /readyz draining during the grace window")
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

func waitHTTPReady(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + nlwire.PathHealthz)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never came up")
}

// TestServeConcurrentAndGracefulShutdown drives the real listener: batches
// from several goroutines, then a shutdown that must let in-flight
// requests complete.
func TestServeConcurrentAndGracefulShutdown(t *testing.T) {
	s := freshServer(t, Config{ReqTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	batch := make([]nlwire.Query, 50)
	for i := range batch {
		batch[i] = nlwire.Query{
			D0M:      80 + float64(i*6),
			SpeedMPS: 2 + float64(i%9),
			MdataMB:  2 + float64(i%13),
			Rho:      float64(i%5) * 3e-4,
		}
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(base+nlwire.PathBatch, "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Errorf("batch request: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, body)
					return
				}
				var ds []nlwire.Decision
				if err := json.Unmarshal(body, &ds); err != nil {
					t.Errorf("batch decode: %v", err)
					return
				}
				if len(ds) != len(batch) {
					t.Errorf("%d decisions for %d queries", len(ds), len(batch))
					return
				}
			}
		}()
	}
	wg.Wait()

	// All traffic done: shutdown must return promptly and cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(base + nlwire.PathHealthz); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// failingWriter rejects every write, standing in for a hung-up client.
type failingWriter struct{ h http.Header }

func (f *failingWriter) Header() http.Header        { return f.h }
func (f *failingWriter) Write([]byte) (int, error)  { return 0, errors.New("client gone") }
func (f *failingWriter) WriteHeader(statusCode int) {}

func TestWriteJSONCountsFailures(t *testing.T) {
	s := New(Config{})
	s.writeJSON(&failingWriter{h: http.Header{}}, http.StatusOK, nlwire.Health{Status: "ok"})
	if got := s.WriteFailures(); got != 1 {
		t.Fatalf("write failures %d, want 1", got)
	}
	// Unencodable value: counted too, before any write.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]any{"x": func() {}})
	if got := s.WriteFailures(); got != 2 {
		t.Fatalf("write failures %d, want 2", got)
	}
}

func TestLatencyHistogram(t *testing.T) {
	h := newLatencyHistogram()
	h.observe(500 * time.Nanosecond) // first bucket
	h.observe(3 * time.Microsecond)  // le=5e-6
	h.observe(time.Second)           // +Inf
	var buf bytes.Buffer
	h.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "nowlaterd_decision_latency_seconds_count 3") {
		t.Fatalf("count wrong:\n%s", out)
	}
	// Buckets are cumulative: the +Inf bucket carries every observation.
	if !strings.Contains(out, `_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket not cumulative:\n%s", out)
	}
}

func TestRetryAfterRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{time.Second, "1"},
		{50 * time.Millisecond, "0.050"},
		{1500 * time.Millisecond, "2"},
	} {
		if got := nlwire.FormatRetryAfter(tc.d); got != tc.want {
			t.Errorf("FormatRetryAfter(%s) = %q, want %q", tc.d, got, tc.want)
		}
	}
	if d, ok := nlwire.ParseRetryAfter("0.050"); !ok || d != 50*time.Millisecond {
		t.Fatalf("ParseRetryAfter fractional: %v %v", d, ok)
	}
	if d, ok := nlwire.ParseRetryAfter("2"); !ok || d != 2*time.Second {
		t.Fatalf("ParseRetryAfter integer: %v %v", d, ok)
	}
	for _, bad := range []string{"", "nan", "-1", "1e9", "Tue, 29 Oct 2024 16:56:32 GMT"} {
		if _, ok := nlwire.ParseRetryAfter(bad); ok {
			t.Errorf("ParseRetryAfter(%q) accepted", bad)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
