package nlserver

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/nowlater/nowlater/internal/policy"
)

// latencyBounds are the histogram bucket upper bounds in seconds, spanning
// cache hits (~100 ns) through exact-optimizer fallbacks (~200 µs) to
// pathological stalls.
var latencyBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2,
}

// latencyHistogram is a lock-free cumulative histogram of decision
// latencies, exported in Prometheus text format.
type latencyHistogram struct {
	buckets []atomic.Uint64 // one per bound, plus a final +Inf bucket
	count   atomic.Uint64
	sumNS   atomic.Uint64
}

func newLatencyHistogram() *latencyHistogram {
	return &latencyHistogram{buckets: make([]atomic.Uint64, len(latencyBounds)+1)}
}

func (h *latencyHistogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBounds); i++ {
		if s <= latencyBounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// write emits the histogram in Prometheus text format (cumulative
// buckets, as the exposition format requires).
func (h *latencyHistogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP nowlaterd_decision_latency_seconds Decision latency, all serving paths.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_decision_latency_seconds histogram\n")
	var cum uint64
	for i, le := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_bucket{le=%q} %d\n", formatBound(le), cum)
	}
	cum += h.buckets[len(latencyBounds)].Load()
	fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_sum %g\n", float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_count %d\n", h.count.Load())
}

func formatBound(le float64) string {
	if le == math.Trunc(le) {
		return fmt.Sprintf("%.1f", le)
	}
	return fmt.Sprintf("%g", le)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var st policy.Stats
	ready := 0
	if eng := s.engine.Load(); eng != nil {
		st = eng.Stats()
		if !s.draining.Load() {
			ready = 1
		}
		fmt.Fprintf(w, "# HELP nowlaterd_table_points Lattice points in the served table.\n")
		fmt.Fprintf(w, "# TYPE nowlaterd_table_points gauge\n")
		fmt.Fprintf(w, "nowlaterd_table_points %d\n", eng.Table().Points())
	}
	fmt.Fprintf(w, "# HELP nowlaterd_ready Whether the server is serving decisions (table loaded, not draining).\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_ready gauge\n")
	fmt.Fprintf(w, "nowlaterd_ready %d\n", ready)
	fmt.Fprintf(w, "# HELP nowlaterd_requests_total Decide calls that passed validation.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_requests_total counter\n")
	fmt.Fprintf(w, "nowlaterd_requests_total %d\n", st.Requests)
	fmt.Fprintf(w, "# HELP nowlaterd_decisions_total Decisions answered, by serving path.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_decisions_total counter\n")
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceCache.String(), st.CacheHits)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceTable.String(), st.TableHits)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceExactOutOfGrid.String(), st.OutOfGrid)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceExactBoundary.String(), st.BoundaryFallbacks)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceDegradedTable.String(), st.Degraded)
	fmt.Fprintf(w, "# HELP nowlaterd_decision_errors_total Rejected queries.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_decision_errors_total counter\n")
	fmt.Fprintf(w, "nowlaterd_decision_errors_total %d\n", st.Errors)
	fmt.Fprintf(w, "# HELP nowlaterd_cache_hit_ratio Cache hits over requests.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "nowlaterd_cache_hit_ratio %g\n", st.CacheHitRatio())
	fmt.Fprintf(w, "# HELP nowlaterd_fallback_ratio Exact-optimizer fallbacks over requests.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_fallback_ratio gauge\n")
	fmt.Fprintf(w, "nowlaterd_fallback_ratio %g\n", st.FallbackRatio())
	fmt.Fprintf(w, "# HELP nowlaterd_degraded_ratio Degraded (nearest-table) answers over requests.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_degraded_ratio gauge\n")
	fmt.Fprintf(w, "nowlaterd_degraded_ratio %g\n", st.DegradedRatio())

	ast := s.cfg.Admission.Stats()
	fmt.Fprintf(w, "# HELP nowlaterd_inflight_requests Requests currently admitted and running.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_inflight_requests gauge\n")
	fmt.Fprintf(w, "nowlaterd_inflight_requests %d\n", ast.InFlight)
	fmt.Fprintf(w, "# HELP nowlaterd_queued_requests Requests waiting for an admission slot.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_queued_requests gauge\n")
	fmt.Fprintf(w, "nowlaterd_queued_requests %d\n", ast.Waiting)
	fmt.Fprintf(w, "# HELP nowlaterd_admitted_total Requests that got an admission slot.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_admitted_total counter\n")
	fmt.Fprintf(w, "nowlaterd_admitted_total %d\n", ast.Admitted)
	fmt.Fprintf(w, "# HELP nowlaterd_shed_total Requests refused at admission, by reason.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_shed_total counter\n")
	fmt.Fprintf(w, "nowlaterd_shed_total{reason=\"queue_full\"} %d\n", ast.ShedQueueFull)
	fmt.Fprintf(w, "nowlaterd_shed_total{reason=\"queue_wait\"} %d\n", ast.ShedQueueWait)

	bst := s.cfg.Breaker.Stats()
	fmt.Fprintf(w, "# HELP nowlaterd_breaker_state Exact-fallback breaker position (0 closed, 1 half-open, 2 open).\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_breaker_state gauge\n")
	fmt.Fprintf(w, "nowlaterd_breaker_state %d\n", bst.State)
	fmt.Fprintf(w, "# HELP nowlaterd_breaker_active_solves Exact solves currently holding a breaker token.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_breaker_active_solves gauge\n")
	fmt.Fprintf(w, "nowlaterd_breaker_active_solves %d\n", bst.Active)
	fmt.Fprintf(w, "# HELP nowlaterd_breaker_allowed_total Exact solves the breaker admitted.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_breaker_allowed_total counter\n")
	fmt.Fprintf(w, "nowlaterd_breaker_allowed_total %d\n", bst.Allowed)
	fmt.Fprintf(w, "# HELP nowlaterd_breaker_denied_total Exact solves the breaker refused (served degraded instead).\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_breaker_denied_total counter\n")
	fmt.Fprintf(w, "nowlaterd_breaker_denied_total %d\n", bst.Denied)
	fmt.Fprintf(w, "# HELP nowlaterd_breaker_opens_total Times the breaker tripped open.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_breaker_opens_total counter\n")
	fmt.Fprintf(w, "nowlaterd_breaker_opens_total %d\n", bst.Opens)

	fmt.Fprintf(w, "# HELP nowlaterd_response_write_failures_total Responses whose encode or write failed.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_response_write_failures_total counter\n")
	fmt.Fprintf(w, "nowlaterd_response_write_failures_total %d\n", s.writeFails.Load())
	s.latency.write(w)
}
