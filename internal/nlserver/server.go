// Package nlserver is the HTTP serving layer of the decision service:
// the handlers, admission control and observability that cmd/nowlaterd
// wraps in flags. It lives as a library so the service-chaos experiment
// (internal/experiments) can run the real server in-process — the same
// code path a deployment serves, not a test double.
//
// The request path is an overload ladder, cheapest refusal first:
//
//	admission (shed → 429 + Retry-After)
//	→ readiness (no table yet → 503)
//	→ engine: cache → table → breaker-gated exact fallback
//	   (breaker open → nearest table answer, marked degraded)
//
// /healthz is pure liveness — it answers 200 whenever the process can
// serve HTTP, so orchestrators do not kill a daemon that is merely
// saturated. /readyz carries the traffic signal: 503 while the table is
// still building and while draining, 200 with degradation detail
// otherwise.
package nlserver

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/nowlater/nowlater/internal/nlwire"
	"github.com/nowlater/nowlater/internal/overload"
	"github.com/nowlater/nowlater/internal/policy"
)

// Config assembles one server.
type Config struct {
	// Engine serves decisions. nil starts the server not-ready (503 on
	// /readyz and the decide endpoints) until SetEngine installs one —
	// how cmd/nowlaterd gets its listener up while the table builds.
	Engine *policy.Engine
	// Version is the build identity surfaced in /healthz.
	Version string
	// ReqTimeout bounds one request end to end (http.TimeoutHandler);
	// ≤ 0 disables.
	ReqTimeout time.Duration
	// DrainGrace holds /readyz at 503 "draining" for this long before
	// graceful shutdown begins, giving load balancers one probe interval
	// to stop routing here. 0 drains immediately.
	DrainGrace time.Duration
	// Admission gates the decide endpoints; nil admits everything.
	Admission *overload.Admission
	// Breaker guards the engine's exact-optimizer fallback; nil leaves
	// the fallback ungated. Installed on the engine by SetEngine.
	Breaker *overload.Breaker
}

// Server is the HTTP layer over one policy engine. Build with New.
type Server struct {
	cfg     Config
	engine  atomic.Pointer[policy.Engine]
	latency *latencyHistogram
	mux     *http.ServeMux

	draining   atomic.Bool
	writeFails atomic.Uint64
}

// New assembles a server; if cfg.Engine is non-nil the server starts
// ready.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, latency: newLatencyHistogram(), mux: http.NewServeMux()}
	s.mux.HandleFunc(nlwire.PathDecide, s.handleDecide)
	s.mux.HandleFunc(nlwire.PathBatch, s.handleBatch)
	s.mux.HandleFunc(nlwire.PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(nlwire.PathReadyz, s.handleReadyz)
	s.mux.HandleFunc(nlwire.PathMetrics, s.handleMetrics)
	if cfg.Engine != nil {
		s.SetEngine(cfg.Engine)
	}
	return s
}

// SetEngine installs the serving engine, wiring the configured breaker as
// its fallback gate, and flips /readyz from 503 to 200. Safe to call while
// serving; the decide handlers pick the engine up atomically.
func (s *Server) SetEngine(eng *policy.Engine) {
	if s.cfg.Breaker != nil {
		eng.SetFallbackGate(s.cfg.Breaker)
	}
	s.engine.Store(eng)
}

// Ready reports whether an engine is installed and the server is not
// draining.
func (s *Server) Ready() bool {
	return s.engine.Load() != nil && !s.draining.Load()
}

// WriteFailures counts responses whose encode or write failed (client gone,
// handler timeout fired mid-write).
func (s *Server) WriteFailures() uint64 { return s.writeFails.Load() }

// Handler returns the full middleware stack: mux wrapped in the
// per-request timeout.
func (s *Server) Handler() http.Handler {
	if s.cfg.ReqTimeout <= 0 {
		return s.mux
	}
	return http.TimeoutHandler(s.mux, s.cfg.ReqTimeout, "request timed out\n")
}

// Serve runs the server on ln until ctx is cancelled, then drains: /readyz
// flips to 503 "draining", DrainGrace elapses, and graceful shutdown lets
// in-flight requests finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	if s.cfg.DrainGrace > 0 {
		time.Sleep(s.cfg.DrainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// requestContext applies the client's propagated deadline budget
// (X-Deadline-Ms) to the request context, so the engine's expensive path
// can stop working for callers that have already hung up.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if v := r.Header.Get(nlwire.HeaderDeadlineMS); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 && ms <= 3600_000 {
			return context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		}
	}
	return r.Context(), func() {}
}
