package policy

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tbl := quickTable(t)
	data := tbl.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decoding freshly encoded table: %v", err)
	}
	if got.Fingerprint() != tbl.Fingerprint() {
		t.Fatal("round-trip changed the config fingerprint")
	}
	if len(got.entries) != len(tbl.entries) {
		t.Fatalf("round-trip changed entry count: %d != %d", len(got.entries), len(tbl.entries))
	}
	for i := range got.entries {
		if got.entries[i] != tbl.entries[i] {
			t.Fatalf("entry %d not bit-identical after round-trip: %+v != %+v",
				i, got.entries[i], tbl.entries[i])
		}
	}
	// Encoding must be deterministic: same table, same bytes.
	if !bytes.Equal(data, got.Encode()) {
		t.Fatal("re-encoding a decoded table produced different bytes")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tbl := quickTable(t)
	data := tbl.Encode()

	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Helper()
		mutated := mutate(append([]byte(nil), data...))
		_, err := Decode(mutated)
		if err == nil {
			t.Fatalf("%s: corrupted file accepted", name)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}

	check("empty", func(b []byte) []byte { return nil }, ErrCorrupt)
	check("truncated header", func(b []byte) []byte { return b[:10] }, ErrCorrupt)
	check("truncated payload", func(b []byte) []byte { return b[:len(b)/2] }, ErrCorrupt)
	check("truncated trailer", func(b []byte) []byte { return b[:len(b)-1] }, ErrCorrupt)
	check("extra bytes", func(b []byte) []byte { return append(b, 0) }, ErrCorrupt)
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrCorrupt)
	check("header bit flip", func(b []byte) []byte { b[17] ^= 0x01; return b }, ErrCorrupt)
	check("payload bit flip", func(b []byte) []byte { b[headerSize+5] ^= 0x10; return b }, ErrCorrupt)
	check("entry bit flip", func(b []byte) []byte { b[len(b)-10] ^= 0x40; return b }, ErrCorrupt)
	check("trailer bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x02; return b }, ErrCorrupt)

	// A wrong version with a recomputed header CRC must be ErrVersion.
	check("future version", func(b []byte) []byte {
		b[4] = 99
		fixHeaderCRC(b)
		return b
	}, ErrVersion)

	// A tampered fingerprint with valid CRCs must still be rejected: the
	// recomputed config hash won't match the header.
	check("fingerprint swap", func(b []byte) []byte {
		b[8] ^= 0xAA
		fixHeaderCRC(b)
		return b
	}, ErrCorrupt)
}

func TestLoadMatching(t *testing.T) {
	tbl := quickTable(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "table.nlpt")
	if err := tbl.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadMatching(path, tbl.Config())
	if err != nil {
		t.Fatalf("loading just-written table: %v", err)
	}
	if got.Points() != tbl.Points() {
		t.Fatal("loaded table has different size")
	}

	other := AirplaneConfig() // different grid than quickConfig
	if _, err := LoadMatching(path, other); !errors.Is(err, ErrMismatch) {
		t.Fatalf("config drift: got %v, want ErrMismatch", err)
	}

	if _, err := Load(filepath.Join(dir, "missing.nlpt")); err == nil {
		t.Fatal("loading a missing file should fail")
	}

	// A torn write (partial file) must be ErrCorrupt, not a panic.
	torn := filepath.Join(dir, "torn.nlpt")
	if err := os.WriteFile(torn, tbl.Encode()[:100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(torn); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file: got %v, want ErrCorrupt", err)
	}
}

// fixHeaderCRC recomputes the header checksum after a deliberate header
// mutation, so tests reach the checks behind it.
func fixHeaderCRC(b []byte) {
	if len(b) < headerSize {
		return
	}
	binary.LittleEndian.PutUint32(b[24:28], crc32.Checksum(b[:24], fileCRC))
}

// FuzzDecode drives arbitrary bytes through Decode: any input must either
// produce a valid table or a typed error — never a panic, never an
// allocation bomb. Seeds cover the valid encoding and its prefixes so the
// fuzzer starts at the interesting boundaries.
func FuzzDecode(f *testing.F) {
	cfg := quickConfig()
	cfg.Grid = Grid{ // tiny lattice keeps fuzz iterations fast
		D0M:       []float64{100, 200},
		LoadMBmps: []float64{10, 100},
		Rho:       []float64{0, 1e-3},
	}
	tbl, err := Build(context.Background(), cfg, BuildOptions{Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	valid := tbl.Encode()
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("NLPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrMismatch) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Anything Decode accepts must re-encode to the same bytes.
		if !bytes.Equal(got.Encode(), data) {
			t.Fatal("accepted input does not round-trip")
		}
	})
}
