package policy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"github.com/nowlater/nowlater/internal/trace"
)

// On-disk layout of one policy table (all integers little-endian),
// mirroring internal/checkpoint's header discipline:
//
//	header (28 bytes):
//	  [0:4)   magic "NLPT"
//	  [4:8)   format version
//	  [8:16)  config fingerprint (Config.Fingerprint of the payload)
//	  [16:24) payload length L
//	  [24:28) CRC32C of bytes [0:24)
//
//	payload (L bytes):
//	  [0:8)   fit A (float64 bits)      [8:16)  fit B
//	  [16:24) min distance
//	  [24:36) axis lengths (3 × uint32: d0, load, rho)
//	  then each axis's values (float64 each), then one 17-byte record per
//	  lattice point in row-major (d0, load, rho) order:
//	  dopt (float64), utility (float64), flags (uint8)
//
//	trailer (4 bytes): CRC32C of the payload
//
// Load verifies both CRCs, the version, the structural lengths, the grid
// monotonicity and every entry's finiteness before returning a table; any
// violation is ErrCorrupt (wrapped with detail), never a panic. A loaded
// table whose recomputed config fingerprint disagrees with the header is
// also corrupt. LoadMatching additionally rejects a structurally valid
// table built under a different config with ErrMismatch — the caller's
// guard against serving stale calibrations.
const (
	// FormatVersion is the current table file format.
	FormatVersion = 1

	headerSize  = 28
	entrySize   = 17
	payloadBase = 3*8 + 3*4

	// maxAxisLen bounds one axis; anything larger in a length field is
	// treated as corruption.
	maxAxisLen = 1 << 20
	// maxFilePoints bounds the lattice a file may declare (~2.1 GB of
	// entries), protecting Load from allocation bombs.
	maxFilePoints = 1 << 27
)

var fileMagic = [4]byte{'N', 'L', 'P', 'T'}

var (
	// ErrCorrupt reports a structurally invalid or checksum-failing table
	// file.
	ErrCorrupt = errors.New("policy: corrupt table file")
	// ErrVersion reports a table written by an unsupported format version.
	ErrVersion = errors.New("policy: unsupported table format version")
	// ErrMismatch reports a valid table whose config differs from the one
	// the caller expects.
	ErrMismatch = errors.New("policy: table config mismatch")
)

var fileCRC = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the table into the versioned binary format.
func (t *Table) Encode() []byte {
	g := t.cfg.Grid
	axes := [][]float64{g.D0M, g.LoadMBmps, g.Rho}
	payloadLen := payloadBase
	for _, axis := range axes {
		payloadLen += 8 * len(axis)
	}
	payloadLen += entrySize * len(t.entries)

	buf := make([]byte, headerSize+payloadLen+4)
	copy(buf[0:4], fileMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint64(buf[8:16], t.cfg.Fingerprint())
	binary.LittleEndian.PutUint64(buf[16:24], uint64(payloadLen))
	binary.LittleEndian.PutUint32(buf[24:28], crc32.Checksum(buf[:24], fileCRC))

	p := buf[headerSize:]
	binary.LittleEndian.PutUint64(p[0:8], math.Float64bits(t.cfg.FitAMbps))
	binary.LittleEndian.PutUint64(p[8:16], math.Float64bits(t.cfg.FitBMbps))
	binary.LittleEndian.PutUint64(p[16:24], math.Float64bits(t.cfg.MinDistanceM))
	for i, axis := range axes {
		binary.LittleEndian.PutUint32(p[24+4*i:], uint32(len(axis)))
	}
	off := payloadBase
	for _, axis := range axes {
		for _, v := range axis {
			binary.LittleEndian.PutUint64(p[off:], math.Float64bits(v))
			off += 8
		}
	}
	for _, e := range t.entries {
		binary.LittleEndian.PutUint64(p[off:], math.Float64bits(e.DoptM))
		binary.LittleEndian.PutUint64(p[off+8:], math.Float64bits(e.Utility))
		p[off+16] = e.Flags
		off += entrySize
	}
	binary.LittleEndian.PutUint32(buf[headerSize+payloadLen:], crc32.Checksum(p[:payloadLen], fileCRC))
	return buf
}

// Decode parses and validates an encoded table.
func Decode(data []byte) (*Table, error) {
	if len(data) < headerSize+payloadBase+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any table", ErrCorrupt, len(data))
	}
	if [4]byte(data[0:4]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if got := crc32.Checksum(data[:24], fileCRC); got != binary.LittleEndian.Uint32(data[24:28]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrVersion, v, FormatVersion)
	}
	wantFP := binary.LittleEndian.Uint64(data[8:16])
	payloadLen := binary.LittleEndian.Uint64(data[16:24])
	if payloadLen < payloadBase || payloadLen > uint64(len(data))-headerSize-4 ||
		uint64(len(data)) != headerSize+payloadLen+4 {
		return nil, fmt.Errorf("%w: declared payload %d bytes in a %d-byte file", ErrCorrupt, payloadLen, len(data))
	}
	p := data[headerSize : headerSize+payloadLen]
	if got := crc32.Checksum(p, fileCRC); got != binary.LittleEndian.Uint32(data[headerSize+payloadLen:]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}

	cfg := Config{
		FitAMbps:     math.Float64frombits(binary.LittleEndian.Uint64(p[0:8])),
		FitBMbps:     math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])),
		MinDistanceM: math.Float64frombits(binary.LittleEndian.Uint64(p[16:24])),
	}
	var lens [3]uint64
	points := uint64(1)
	for i := range lens {
		lens[i] = uint64(binary.LittleEndian.Uint32(p[24+4*i:]))
		if lens[i] < 2 || lens[i] > maxAxisLen {
			return nil, fmt.Errorf("%w: axis %d declares %d points", ErrCorrupt, i, lens[i])
		}
		points *= lens[i]
	}
	if points > maxFilePoints {
		return nil, fmt.Errorf("%w: %d lattice points exceeds the format bound", ErrCorrupt, points)
	}
	want := uint64(payloadBase) + 8*(lens[0]+lens[1]+lens[2]) + entrySize*points
	if payloadLen != want {
		return nil, fmt.Errorf("%w: payload is %d bytes, axis/entry counts require %d", ErrCorrupt, payloadLen, want)
	}

	off := uint64(payloadBase)
	readAxis := func(n uint64) []float64 {
		axis := make([]float64, n)
		for i := range axis {
			axis[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
		return axis
	}
	cfg.Grid.D0M = readAxis(lens[0])
	cfg.Grid.LoadMBmps = readAxis(lens[1])
	cfg.Grid.Rho = readAxis(lens[2])

	entries := make([]Entry, points)
	for i := range entries {
		entries[i] = Entry{
			DoptM:   math.Float64frombits(binary.LittleEndian.Uint64(p[off:])),
			Utility: math.Float64frombits(binary.LittleEndian.Uint64(p[off+8:])),
			Flags:   p[off+16],
		}
		off += entrySize
	}

	t, err := NewTable(cfg, entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if fp := cfg.Fingerprint(); fp != wantFP {
		return nil, fmt.Errorf("%w: header fingerprint %016x, payload config hashes to %016x", ErrCorrupt, wantFP, fp)
	}
	return t, nil
}

// WriteFile atomically persists the table (temp file + fsync + rename via
// trace.WriteFileAtomic): an interrupted write leaves the old table or
// nothing, never a torn file.
func (t *Table) WriteFile(path string) error {
	return trace.WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(t.Encode()); err != nil {
			return fmt.Errorf("policy: %w", err)
		}
		return nil
	})
}

// Load reads and validates a table file.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return t, nil
}

// LoadMatching loads a table and rejects it with ErrMismatch unless it was
// built under exactly the expected config (fit, floor and grid).
func LoadMatching(path string, want Config) (*Table, error) {
	t, err := Load(path)
	if err != nil {
		return nil, err
	}
	if got, exp := t.Fingerprint(), want.Fingerprint(); got != exp {
		return nil, fmt.Errorf("%w: %s holds config %016x, expected %016x — rebuild the table or pass its config",
			ErrMismatch, path, got, exp)
	}
	return t, nil
}
