package policy

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/core"
)

// Entry regime flags.
const (
	// flagImmediate marks dopt = d0 (transmit now).
	flagImmediate uint8 = 1 << 0
	// flagFloor marks dopt pinned at the anti-collision floor.
	flagFloor uint8 = 1 << 1

	flagsKnown = flagImmediate | flagFloor
)

// Entry is one precomputed lattice point.
type Entry struct {
	// DoptM is the optimal transmit distance at this point.
	DoptM float64
	// Utility is U(dopt) for the point's canonical scenario (v = 1,
	// Mdata = load). True utility scales with the query's actual speed, so
	// this field is diagnostic; Lookup recomputes utility exactly for the
	// query it answers.
	Utility float64
	// Flags records the regime (flagImmediate / flagFloor / neither).
	Flags uint8
}

// Table is one built policy table: the config plus every lattice entry in
// row-major (d0, load, ρ) order. Tables are immutable after construction
// and safe for concurrent lookup.
type Table struct {
	cfg     Config
	entries []Entry
}

// NewTable assembles a table from a config and its entries. Callers
// normally get tables from Build or Load; this constructor validates the
// pair for them.
func NewTable(cfg Config, entries []Entry) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(entries) != cfg.Grid.Points() {
		return nil, fmt.Errorf("policy: %d entries for a %d-point grid", len(entries), cfg.Grid.Points())
	}
	for i, e := range entries {
		if !isFinite(e.DoptM) || e.DoptM < 0 || !isFinite(e.Utility) || e.Utility < 0 {
			return nil, fmt.Errorf("policy: invalid entry %d (dopt %v, utility %v)", i, e.DoptM, e.Utility)
		}
		if e.Flags&^flagsKnown != 0 {
			return nil, fmt.Errorf("policy: entry %d has unknown flags %#x", i, e.Flags)
		}
	}
	return &Table{cfg: cfg, entries: entries}, nil
}

// Config returns the table's identity.
func (t *Table) Config() Config { return t.cfg }

// Points returns the lattice size.
func (t *Table) Points() int { return len(t.entries) }

// Fingerprint returns the config fingerprint (also stored in the file
// header).
func (t *Table) Fingerprint() uint64 { return t.cfg.Fingerprint() }

// Contains reports whether a query is inside the grid hull.
func (t *Table) Contains(q Query) bool { return t.cfg.Grid.Contains(q) }

// axisSpan is one axis's contribution to the interpolation stencil: the
// base index and, when the query sits strictly inside a cell, the far
// index with its weight.
type axisSpan struct {
	i  int
	t  float64
	on bool // query exactly on the lattice plane axis[i]
}

func span(axis []float64, x float64) (axisSpan, bool) {
	i, t, ok := locate(axis, x)
	if !ok {
		return axisSpan{}, false
	}
	if t == 1 { // top edge: collapse onto the last plane
		return axisSpan{i: i + 1, t: 0, on: true}, true
	}
	return axisSpan{i: i, t: t, on: t == 0}, true
}

// interpolate blends the stencil surrounding a query. ok is false outside
// the grid or when the stencil straddles the transmit-now boundary, where
// dopt is discontinuous. It returns the union (any) and intersection
// (all) of the corner regime flags plus the corner dopt range, which
// brackets the true optimum for the polish pass.
func (t *Table) interpolate(q Query) (dopt, lo, hi float64, any, all uint8, ok bool) {
	g := t.cfg.Grid
	s0, ok := span(g.D0M, q.D0M)
	if !ok {
		return 0, 0, 0, 0, 0, false
	}
	sl, ok := span(g.LoadMBmps, q.LoadMBmps())
	if !ok {
		return 0, 0, 0, 0, 0, false
	}
	sr, ok := span(g.Rho, q.Rho)
	if !ok {
		return 0, 0, 0, 0, 0, false
	}

	// Gather the stencil corners. An axis whose query lies exactly on a
	// lattice plane contributes a single index, so on-lattice lookups (the
	// experiments cross-check, batch replays of swept grids) read only the
	// corners they actually depend on and cannot be vetoed by a regime
	// change on the far side of the plane.
	lo, hi = math.Inf(1), math.Inf(-1)
	all = flagsKnown
	for b0 := 0; b0 <= 1; b0++ {
		if b0 == 1 && s0.on {
			continue
		}
		w0 := 1 - s0.t
		if b0 == 1 {
			w0 = s0.t
		}
		for bl := 0; bl <= 1; bl++ {
			if bl == 1 && sl.on {
				continue
			}
			wl := 1 - sl.t
			if bl == 1 {
				wl = sl.t
			}
			for br := 0; br <= 1; br++ {
				if br == 1 && sr.on {
					continue
				}
				wr := 1 - sr.t
				if br == 1 {
					wr = sr.t
				}
				e := t.entries[g.index(s0.i+b0, sl.i+bl, sr.i+br)]
				any |= e.Flags
				all &= e.Flags
				dopt += w0 * wl * wr * e.DoptM
				lo = math.Min(lo, e.DoptM)
				hi = math.Max(hi, e.DoptM)
			}
		}
	}
	if any&flagImmediate != 0 && all&flagImmediate == 0 {
		// The transmit-now boundary is a first-order transition: two
		// competing utility maxima (deliver at d0 versus approach close)
		// swap rank, and dopt jumps across most of the feasible range.
		// A stencil straddling it cannot be blended or locally refined —
		// refuse, so the caller solves exactly.
		return 0, 0, 0, 0, 0, false
	}
	return dopt, lo, hi, any, all, true
}

// polishTolFrac sets the golden-section stopping width as a fraction of
// the working dopt — an order of magnitude inside the package's 1e-3
// served-accuracy bound, at ~15 utility evaluations per lookup.
const polishTolFrac = 1e-4

// jumpSpreadFrac is the corner-dopt spread, as a fraction of the feasible
// range, beyond which an interior stencil is treated as straddling a
// basin swap (see Lookup) instead of a smooth cell.
const jumpSpreadFrac = 0.2

// polish refines an interpolated dopt by golden-section search on the true
// query utility over [lo, hi]. The bracket comes from the stencil's corner
// dopt range (padded): dopt varies monotonically along each axis within a
// regime, so the true optimum lies inside it, and interpolation only has
// to land the bracket — curvature near a regime's liftoff corner, where
// plain multilinear interpolation degrades, is absorbed here.
func polish(sc core.Scenario, guess, lo, hi float64) float64 {
	const invphi = 0.6180339887498949
	tol := polishTolFrac * math.Max(guess, sc.MinDistanceM)
	if !(hi-lo > tol) {
		return guess
	}
	c := hi - invphi*(hi-lo)
	d := lo + invphi*(hi-lo)
	fc, fd := sc.Utility(c), sc.Utility(d)
	for iter := 0; hi-lo > tol && iter < 64; iter++ {
		if fc > fd {
			hi, d, fd = d, c, fc
			c = hi - invphi*(hi-lo)
			fc = sc.Utility(c)
		} else {
			lo, c, fc = c, d, fd
			d = lo + invphi*(hi-lo)
			fd = sc.Utility(d)
		}
	}
	return (lo + hi) / 2
}

// Lookup answers a query from the table: multilinear interpolation over
// the (d0, v·Mdata, ρ) lattice, then a bounded golden-section polish
// against the query's true utility. ok is false when the query is outside
// the grid or its cell straddles the discontinuous transmit-now boundary
// — the caller must then solve exactly. A stencil uniformly in one clamp
// regime reconstructs dopt exactly from the query; everything else (pure
// interior, or the value-continuous liftoff kink where the floor regime
// borders the interior) is polished, with the bracket widened down to the
// floor when floor corners are present.
// On success the returned Optimum carries delay, survival and utility
// recomputed exactly at the served dopt, so the answer is always
// self-consistent for the actual query scenario (never a blend of
// neighbouring scenarios' delays).
func (t *Table) Lookup(q Query) (core.Optimum, bool) {
	if q.Validate() != nil {
		return core.Optimum{}, false
	}
	dopt, clo, chi, any, all, ok := t.interpolate(q)
	if !ok {
		return core.Optimum{}, false
	}

	sc := t.cfg.Scenario(q)
	// Regime-exact reconstruction: in a uniformly clamped cell the optimum
	// is a known function of the query, not of the neighbours.
	switch {
	case all&flagImmediate != 0:
		dopt = q.D0M
	case all&flagFloor != 0:
		dopt = t.cfg.MinDistanceM
	default:
		if chi-clo > jumpSpreadFrac*(q.D0M-t.cfg.MinDistanceM) {
			// The transmit-now jump does not always land exactly on d0:
			// two interior maxima (approach close versus deliver almost
			// immediately) can swap rank between corners that all classify
			// as interior. A basin swap inside the cell shows up as a
			// corner spread out of all proportion to a smooth cell —
			// refuse rather than polish a bimodal bracket.
			return core.Optimum{}, false
		}
		pad := 0.25*(chi-clo) + 0.5
		lo := math.Max(t.cfg.MinDistanceM, clo-pad)
		hi := math.Min(q.D0M, chi+pad)
		if any&flagFloor != 0 {
			lo = t.cfg.MinDistanceM
		}
		dopt = math.Min(math.Max(dopt, lo), hi)
		dopt = polish(sc, dopt, lo, hi)
	}

	return core.Optimum{
		DoptM:               dopt,
		Utility:             sc.Utility(dopt),
		CommDelay:           sc.CommDelay(dopt),
		Survival:            sc.Discount(dopt),
		TransmitImmediately: all&flagImmediate != 0 || math.Abs(dopt-q.D0M) < 1e-6,
	}, true
}

// nearestIndex snaps x to the closest axis value (clamping outside the
// range), so Nearest can answer queries the interpolating Lookup cannot.
func nearestIndex(axis []float64, x float64) int {
	i, t, ok := locate(axis, x)
	if !ok {
		if x < axis[0] {
			return 0
		}
		return len(axis) - 1
	}
	if t > 0.5 {
		return i + 1
	}
	return i
}

// Nearest is the degraded-mode answer: the single lattice entry closest to
// the query (per-axis nearest neighbour, clamped to the grid hull), with
// its dopt reconstructed regime-aware and clamped into the query's feasible
// range [floor, d0]. Unlike Lookup it never refuses — regime boundaries,
// out-of-grid queries and basin swaps all still get an answer — and unlike
// the exact fallback it costs three utility evaluations, not ~2000. The
// price is accuracy: the answer is only as good as the nearest lattice
// point, so the Engine serves it solely when a FallbackGate refuses the
// exact path, and marks the decision Degraded. Utility, delay and survival
// are recomputed exactly for the real query at the served dopt, so the
// Optimum is self-consistent even when dopt is approximate.
func (t *Table) Nearest(q Query) core.Optimum {
	g := t.cfg.Grid
	e := t.entries[g.index(
		nearestIndex(g.D0M, q.D0M),
		nearestIndex(g.LoadMBmps, q.LoadMBmps()),
		nearestIndex(g.Rho, q.Rho),
	)]
	floor := math.Min(t.cfg.MinDistanceM, q.D0M)
	var dopt float64
	switch {
	case e.Flags&flagImmediate != 0:
		dopt = q.D0M
	case e.Flags&flagFloor != 0:
		dopt = floor
	default:
		dopt = math.Min(math.Max(e.DoptM, floor), q.D0M)
	}
	sc := t.cfg.Scenario(q)
	return core.Optimum{
		DoptM:               dopt,
		Utility:             sc.Utility(dopt),
		CommDelay:           sc.CommDelay(dopt),
		Survival:            sc.Discount(dopt),
		TransmitImmediately: math.Abs(dopt-q.D0M) < 1e-6,
	}
}

// entryFor classifies one solved optimum into a table entry.
func entryFor(sc core.Scenario, opt core.Optimum) Entry {
	e := Entry{DoptM: opt.DoptM, Utility: opt.Utility}
	if opt.TransmitImmediately {
		e.Flags |= flagImmediate
	} else if opt.DoptM <= sc.MinDistanceM+1e-6 {
		e.Flags |= flagFloor
	}
	return e
}
