package policy

import (
	"container/list"
	"sync"

	"github.com/nowlater/nowlater/internal/core"
)

// lruCache is a bounded, mutex-guarded LRU of exact-scenario decisions —
// the Engine's hit path for repeated queries (a planner replanning the
// same geometry, a fleet of identical ferries). Query is a small
// comparable value type, so it keys the map directly.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Query]*list.Element
}

type lruEntry struct {
	key Query
	opt core.Optimum
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[Query]*list.Element, capacity)}
}

// get returns the cached optimum and promotes the entry.
func (c *lruCache) get(q Query) (core.Optimum, bool) {
	if c == nil {
		return core.Optimum{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[q]
	if !ok {
		return core.Optimum{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).opt, true
}

// add inserts or refreshes an entry, evicting the least recently used
// beyond capacity.
func (c *lruCache) add(q Query, opt core.Optimum) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[q]; ok {
		el.Value.(*lruEntry).opt = opt
		c.ll.MoveToFront(el)
		return
	}
	c.items[q] = c.ll.PushFront(&lruEntry{key: q, opt: opt})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
