package policy

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
)

// Tolerance is the package's documented served-accuracy bound: table
// lookups agree with the exact optimizer to 1e-3 relative on dopt. The
// equivalence test enforces it; measured error is typically ~3e-5.
const servedDoptTol = 1e-3

var (
	defaultOnce sync.Once
	defaultTbl  *Table
	defaultErr  error

	quickOnce sync.Once
	quickTbl  *Table
	quickErr  error
)

// defaultTable builds the full airplane table once per test binary (~2 s).
func defaultTable(t testing.TB) *Table {
	t.Helper()
	defaultOnce.Do(func() {
		defaultTbl, defaultErr = Build(context.Background(), AirplaneConfig(), BuildOptions{})
	})
	if defaultErr != nil {
		t.Fatalf("building default table: %v", defaultErr)
	}
	return defaultTbl
}

// quickConfig is the airplane fit over the smoke-scale grid.
func quickConfig() Config {
	cfg := AirplaneConfig()
	cfg.Grid = QuickGrid()
	return cfg
}

// quickTable builds the smoke-scale table once per test binary.
func quickTable(t testing.TB) *Table {
	t.Helper()
	quickOnce.Do(func() {
		quickTbl, quickErr = Build(context.Background(), quickConfig(), BuildOptions{})
	})
	if quickErr != nil {
		t.Fatalf("building quick table: %v", quickErr)
	}
	return quickTbl
}

// randomInGrid draws a query inside the grid hull, splitting the load into
// a random (speed, Mdata) factorization so the product-axis collapse is
// exercised, not just the canonical v = 1 representative.
func randomInGrid(rng *rand.Rand, g Grid) Query {
	logRange := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	rhoLo := g.Rho[0]
	if rhoLo == 0 {
		rhoLo = g.Rho[1] / 2 // sample below the first positive node too
	}
	load := logRange(g.LoadMBmps[0], g.LoadMBmps[len(g.LoadMBmps)-1])
	v := logRange(1, 25)
	return Query{
		D0M:      g.D0M[0] + rng.Float64()*(g.D0M[len(g.D0M)-1]-g.D0M[0]),
		SpeedMPS: v,
		MdataMB:  load / v,
		Rho:      rhoLo * math.Pow(g.Rho[len(g.Rho)-1]/rhoLo, rng.Float64()),
	}
}

// TestLookupMatchesOptimize is the equivalence check behind the package's
// accuracy contract: every in-grid query the table serves must agree with
// core.Scenario.Optimize to servedDoptTol relative on dopt, and the
// returned utility/delay/survival must be exactly self-consistent with
// the served distance.
func TestLookupMatchesOptimize(t *testing.T) {
	tbl := defaultTable(t)
	cfg := tbl.Config()
	rng := rand.New(rand.NewSource(42))

	const trials = 2500
	served, fallback := 0, 0
	var maxRel float64
	for i := 0; i < trials; i++ {
		q := randomInGrid(rng, cfg.Grid)
		got, ok := tbl.Lookup(q)
		if !ok {
			fallback++
			continue
		}
		served++
		sc := cfg.Scenario(q)
		want, err := sc.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(got.DoptM-want.DoptM) / math.Max(want.DoptM, 1)
		if rel > maxRel {
			maxRel = rel
		}
		if rel > servedDoptTol {
			t.Fatalf("query %+v: served dopt %.6f, exact %.6f (rel %.3e > %.0e)",
				q, got.DoptM, want.DoptM, rel, servedDoptTol)
		}
		// Self-consistency: the answer must describe the served distance
		// under the query's own scenario, not a blend of neighbours.
		if got.Utility != sc.Utility(got.DoptM) || got.CommDelay != sc.CommDelay(got.DoptM) ||
			got.Survival != sc.Discount(got.DoptM) {
			t.Fatalf("query %+v: served optimum not self-consistent at dopt %.6f", q, got.DoptM)
		}
	}
	if served == 0 {
		t.Fatal("no queries served from the table")
	}
	// The fallback share (regime straddles) should stay a small minority.
	if frac := float64(fallback) / trials; frac > 0.25 {
		t.Fatalf("fallback fraction %.2f is too high for the default grid", frac)
	}
	t.Logf("served %d/%d, max rel dopt err %.3e", served, trials, maxRel)
}

// TestLookupOnLattice: queries exactly on lattice points must reproduce
// the stored optimum to optimizer precision — the span collapse reads only
// the corners the query depends on.
func TestLookupOnLattice(t *testing.T) {
	tbl := quickTable(t)
	cfg := tbl.Config()
	g := cfg.Grid
	for _, i0 := range []int{0, len(g.D0M) / 2, len(g.D0M) - 1} {
		for _, il := range []int{0, len(g.LoadMBmps) / 2, len(g.LoadMBmps) - 1} {
			for _, ir := range []int{0, len(g.Rho) / 2, len(g.Rho) - 1} {
				q := canonicalQuery(g.D0M[i0], g.LoadMBmps[il], g.Rho[ir])
				got, ok := tbl.Lookup(q)
				if !ok {
					continue // lattice point on a vetoed stencil edge: served exactly by the engine
				}
				e := tbl.entries[g.index(i0, il, ir)]
				tol := math.Max(polishTolFrac*e.DoptM, 1e-6)
				if math.Abs(got.DoptM-e.DoptM) > tol {
					t.Fatalf("lattice point (%d,%d,%d): lookup dopt %.9f, stored %.9f",
						i0, il, ir, got.DoptM, e.DoptM)
				}
			}
		}
	}
}

// TestLookupOutOfGrid: out-of-hull queries must refuse, never extrapolate.
func TestLookupOutOfGrid(t *testing.T) {
	tbl := quickTable(t)
	g := tbl.Config().Grid
	outs := []Query{
		{D0M: g.D0M[0] - 1, SpeedMPS: 1, MdataMB: 100, Rho: 1e-4},
		{D0M: g.D0M[len(g.D0M)-1] + 1, SpeedMPS: 1, MdataMB: 100, Rho: 1e-4},
		{D0M: 200, SpeedMPS: 1, MdataMB: g.LoadMBmps[0] / 2, Rho: 1e-4},
		{D0M: 200, SpeedMPS: 2, MdataMB: g.LoadMBmps[len(g.LoadMBmps)-1], Rho: 1e-4},
		{D0M: 200, SpeedMPS: 1, MdataMB: 100, Rho: g.Rho[len(g.Rho)-1] * 2},
	}
	for _, q := range outs {
		if _, ok := tbl.Lookup(q); ok {
			t.Errorf("query %+v outside the hull was served", q)
		}
	}
	if _, ok := tbl.Lookup(Query{D0M: -1, SpeedMPS: 1, MdataMB: 1, Rho: 0}); ok {
		t.Error("invalid query was served")
	}
}

// TestLookupRegimeReconstruction: uniformly clamped cells answer from the
// query, not the neighbours.
func TestLookupRegimeReconstruction(t *testing.T) {
	tbl := defaultTable(t)
	cfg := tbl.Config()
	// Deep in the floor regime: a huge batch at negligible failure risk —
	// transfer time dominates, so the ferry closes to the separation floor.
	qFloor := Query{D0M: 395, SpeedMPS: 2, MdataMB: 300, Rho: 1e-5}
	want, err := cfg.Scenario(qFloor).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if want.DoptM > cfg.MinDistanceM+1e-6 {
		t.Fatalf("test query %+v is not in the floor regime (exact dopt %.3f)", qFloor, want.DoptM)
	}
	if opt, ok := tbl.Lookup(qFloor); ok && opt.DoptM != cfg.MinDistanceM {
		t.Fatalf("floor-regime lookup served %.6f, want exactly the %.0f m floor",
			opt.DoptM, cfg.MinDistanceM)
	}
	// Deep in the immediate regime: a tiny batch far out — the transfer
	// finishes faster than any approach, transmit at d0.
	qNow := Query{D0M: 250, SpeedMPS: 16, MdataMB: 0.6, Rho: 1e-5}
	want, err = cfg.Scenario(qNow).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !want.TransmitImmediately {
		t.Fatalf("test query %+v is not in the immediate regime (exact dopt %.3f)", qNow, want.DoptM)
	}
	if opt, ok := tbl.Lookup(qNow); ok {
		if !opt.TransmitImmediately || opt.DoptM != qNow.D0M {
			t.Fatalf("immediate-regime lookup served %.6f (immediate=%v), want d0=%g",
				opt.DoptM, opt.TransmitImmediately, qNow.D0M)
		}
	}
}

// TestProductCollapse verifies the dimension reduction the table is built
// on: scenarios sharing v·Mdata share dopt.
func TestProductCollapse(t *testing.T) {
	cfg := quickConfig()
	const load = 120.0 // MB·m/s
	var ref core.Optimum
	for i, v := range []float64{1, 3.7, 12, 20} {
		opt, err := cfg.Scenario(Query{D0M: 250, SpeedMPS: v, MdataMB: load / v, Rho: 2e-4}).Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = opt
			continue
		}
		if rel := math.Abs(opt.DoptM-ref.DoptM) / ref.DoptM; rel > 1e-6 {
			t.Fatalf("v=%g: dopt %.9f differs from v=1 dopt %.9f (rel %.2e) — product collapse broken",
				v, opt.DoptM, ref.DoptM, rel)
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	cfg := quickConfig()
	n := cfg.Grid.Points()
	good := make([]Entry, n)
	for i := range good {
		good[i] = Entry{DoptM: 100, Utility: 1}
	}
	if _, err := NewTable(cfg, good); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	if _, err := NewTable(cfg, good[:n-1]); err == nil {
		t.Fatal("entry count mismatch accepted")
	}
	bad := append([]Entry(nil), good...)
	bad[3] = Entry{DoptM: math.NaN(), Utility: 1}
	if _, err := NewTable(cfg, bad); err == nil {
		t.Fatal("NaN dopt accepted")
	}
	bad[3] = Entry{DoptM: 100, Utility: 1, Flags: 0x80}
	if _, err := NewTable(cfg, bad); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
}
