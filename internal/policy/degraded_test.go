package policy

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// fakeGate scripts FallbackGate decisions and records the call pattern, so
// tests can assert the engine's one-Record-per-Allow contract.
type fakeGate struct {
	allow   bool
	allows  int
	records []bool
}

func (g *fakeGate) Allow() bool    { g.allows++; return g.allow }
func (g *fakeGate) Record(ok bool) { g.records = append(g.records, ok) }

func TestNearestStaysFeasible(t *testing.T) {
	tbl := defaultTable(t)
	cfg := tbl.Config()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := randomInGrid(rng, cfg.Grid)
		opt := tbl.Nearest(q)
		if opt.DoptM < cfg.MinDistanceM-1e-9 || opt.DoptM > q.D0M+1e-9 {
			t.Fatalf("query %+v: nearest dopt %.3f outside [%.1f, %.1f]",
				q, opt.DoptM, cfg.MinDistanceM, q.D0M)
		}
		sc := cfg.Scenario(q)
		if math.Abs(opt.Utility-sc.Utility(opt.DoptM)) > 1e-12 {
			t.Fatalf("query %+v: utility not recomputed for the real query", q)
		}
		if opt.TransmitImmediately != (math.Abs(opt.DoptM-q.D0M) < 1e-6) {
			t.Fatalf("query %+v: immediate flag inconsistent with dopt", q)
		}
	}
}

func TestNearestOutOfGridClamps(t *testing.T) {
	tbl := defaultTable(t)
	cfg := tbl.Config()
	// Far beyond every axis: the snap must clamp to the grid edge and the
	// dopt must still respect the query's own feasible range.
	q := Query{D0M: 900, SpeedMPS: 30, MdataMB: 200, Rho: 5e-2}
	opt := tbl.Nearest(q)
	if opt.DoptM < cfg.MinDistanceM-1e-9 || opt.DoptM > q.D0M+1e-9 {
		t.Fatalf("out-of-grid nearest dopt %.3f outside feasible range", opt.DoptM)
	}
	// Below every axis, with d0 inside the separation floor: dopt must
	// collapse to d0 (the only feasible point), not the floor above it.
	tiny := Query{D0M: cfg.MinDistanceM / 2, SpeedMPS: 0.5, MdataMB: 0.1, Rho: 0}
	opt = tbl.Nearest(tiny)
	if opt.DoptM > tiny.D0M+1e-9 {
		t.Fatalf("sub-floor query served dopt %.3f above its own d0 %.3f", opt.DoptM, tiny.D0M)
	}
}

// TestNearestBoundedError pins the degraded mode's value: on in-grid
// queries the nearest-entry answer must stay within a modest utility
// factor of the true optimum — coarse, but honest enough to serve.
func TestNearestBoundedError(t *testing.T) {
	tbl := defaultTable(t)
	cfg := tbl.Config()
	rng := rand.New(rand.NewSource(11))
	worst := 1.0
	for i := 0; i < 300; i++ {
		q := randomInGrid(rng, cfg.Grid)
		exact, err := cfg.Scenario(q).Optimize()
		if err != nil {
			t.Fatal(err)
		}
		got := tbl.Nearest(q)
		if exact.Utility <= 0 {
			continue
		}
		if ratio := got.Utility / exact.Utility; ratio < worst {
			worst = ratio
		}
	}
	if worst < 0.5 {
		t.Fatalf("nearest answer dropped to %.3f of optimal utility", worst)
	}
}

func TestDecideDegradedWhenGateRefuses(t *testing.T) {
	eng, err := NewEngine(defaultTable(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	gate := &fakeGate{allow: false}
	eng.SetFallbackGate(gate)

	// In-grid table hits must not consult the gate at all.
	in := Query{D0M: 200, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	if d, err := eng.Decide(in); err != nil || d.Degraded {
		t.Fatalf("table-served decision touched the gate: %+v, %v", d, err)
	}
	if gate.allows != 0 {
		t.Fatalf("gate consulted %d times on the table path", gate.allows)
	}

	// Out-of-grid forces the fallback; the refusing gate must degrade it.
	out := Query{D0M: 500, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	d, err := eng.Decide(out)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded || d.Source != SourceDegradedTable {
		t.Fatalf("refused fallback not degraded: %+v", d)
	}
	if d.DoptM < eng.Table().Config().MinDistanceM-1e-9 || d.DoptM > out.D0M+1e-9 {
		t.Fatalf("degraded dopt %.3f outside feasible range", d.DoptM)
	}
	if len(gate.records) != 0 {
		t.Fatalf("refused Allow still recorded: %v", gate.records)
	}

	// Degraded answers are never cached: the same query must consult the
	// gate again, and once it permits, serve (and cache) the exact answer.
	gate.allow = true
	d2, err := eng.Decide(out)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Degraded || d2.Source != SourceExactOutOfGrid {
		t.Fatalf("gate reopened but decision stayed degraded: %+v", d2)
	}
	if len(gate.records) != 1 || !gate.records[0] {
		t.Fatalf("granted solve recorded %v, want exactly [true]", gate.records)
	}
	if d3, _ := eng.Decide(out); d3.Source != SourceCache {
		t.Fatalf("exact answer not cached after degraded episode: %v", d3.Source)
	}

	st := eng.Stats()
	if st.Degraded != 1 {
		t.Fatalf("degraded counter %d, want 1", st.Degraded)
	}
	if got := st.DegradedRatio(); got != 0.25 {
		t.Fatalf("degraded ratio %v, want 0.25", got)
	}
}

func TestDecideContextCancelled(t *testing.T) {
	eng, err := NewEngine(defaultTable(t), -1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Query{D0M: 500, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	if _, err := eng.DecideContext(ctx, out); err != context.Canceled {
		t.Fatalf("cancelled exact fallback returned %v, want context.Canceled", err)
	}
	// Cheap paths ignore the context: the table answer must still flow.
	in := Query{D0M: 200, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	if _, err := eng.DecideContext(ctx, in); err != nil {
		t.Fatalf("cancelled table lookup failed: %v", err)
	}
}

func TestSetFallbackGateNilRemoves(t *testing.T) {
	eng, err := NewEngine(quickTable(t), -1)
	if err != nil {
		t.Fatal(err)
	}
	gate := &fakeGate{allow: false}
	eng.SetFallbackGate(gate)
	eng.SetFallbackGate(nil)
	out := Query{D0M: 500, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	d, err := eng.Decide(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Degraded {
		t.Fatal("removed gate still degrading decisions")
	}
	if gate.allows != 0 {
		t.Fatal("removed gate still consulted")
	}
}
