package policy

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/nowlater/nowlater/internal/core"
)

// Source identifies which path answered a decision.
type Source uint8

const (
	// SourceCache is an exact-scenario LRU hit.
	SourceCache Source = iota
	// SourceTable is an interpolated table lookup.
	SourceTable
	// SourceExactOutOfGrid is the exact optimizer, reached because the
	// query fell outside the table's grid hull.
	SourceExactOutOfGrid
	// SourceExactBoundary is the exact optimizer, reached because the
	// query's stencil straddled a decision-regime boundary.
	SourceExactBoundary
	// SourceDegradedTable is the nearest clamped table answer, served
	// because a fallback gate refused the exact optimizer (the service is
	// under a fallback storm). Decisions from this path carry
	// Degraded=true: they are bounded-error approximations, not
	// polish-accurate optima.
	SourceDegradedTable
)

// String returns the metrics label of a source.
func (s Source) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceTable:
		return "table"
	case SourceExactOutOfGrid:
		return "exact_out_of_grid"
	case SourceExactBoundary:
		return "exact_boundary"
	case SourceDegradedTable:
		return "degraded_table"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Decision is one answered query.
type Decision struct {
	core.Optimum
	Source Source
	// Degraded marks an answer served from the nearest clamped table
	// entry because the exact fallback was gated off under overload. The
	// answer is still within the table's envelope (dopt clamped to
	// [floor, d0], utility recomputed for the real query) but does not
	// meet the polished-lookup accuracy bound.
	Degraded bool
}

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	// Requests counts Decide calls that passed validation.
	Requests uint64
	// CacheHits, TableHits count the fast paths.
	CacheHits, TableHits uint64
	// OutOfGrid, BoundaryFallbacks count the exact-optimizer paths by
	// cause.
	OutOfGrid, BoundaryFallbacks uint64
	// Degraded counts nearest-clamped-table answers served because the
	// fallback gate refused the exact optimizer.
	Degraded uint64
	// Errors counts rejected queries (validation or optimizer failures).
	Errors uint64
}

// ExactFallbacks is the total exact-optimizer invocations.
func (s Stats) ExactFallbacks() uint64 { return s.OutOfGrid + s.BoundaryFallbacks }

// CacheHitRatio is CacheHits / Requests (0 before any request).
func (s Stats) CacheHitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Requests)
}

// FallbackRatio is ExactFallbacks / Requests (0 before any request).
func (s Stats) FallbackRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.ExactFallbacks()) / float64(s.Requests)
}

// DegradedRatio is Degraded / Requests (0 before any request).
func (s Stats) DegradedRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Degraded) / float64(s.Requests)
}

// Engine serves decisions from a policy table: LRU cache first, then
// interpolated table lookup, then the exact optimizer for queries the
// table cannot answer (outside the grid, or across a regime boundary).
// Every path returns the same Optimum shape, so callers cannot tell — or
// need to care — how a decision was produced, except through Source and
// Stats. Engines are safe for concurrent use.
type Engine struct {
	table *Table
	cache *lruCache
	// gate, when set, authorizes each exact-optimizer fallback. A refusal
	// downgrades the answer to the nearest clamped table entry (marked
	// Degraded) instead of queueing an exact solve.
	gate atomic.Value // FallbackGate

	requests, cacheHits, tableHits atomic.Uint64
	outOfGrid, boundary, errs      atomic.Uint64
	degraded                       atomic.Uint64
}

// FallbackGate authorizes exact-optimizer fallbacks under load. Allow is
// consulted once per would-be exact solve; every granted solve reports
// its outcome through Record. internal/overload's Breaker implements it.
type FallbackGate interface {
	Allow() bool
	Record(ok bool)
}

// SetFallbackGate installs (or, with nil, removes) the gate. Safe to call
// concurrently with Decide.
func (e *Engine) SetFallbackGate(g FallbackGate) {
	e.gate.Store(&g)
}

func (e *Engine) fallbackGate() FallbackGate {
	if p, ok := e.gate.Load().(*FallbackGate); ok && p != nil {
		return *p
	}
	return nil
}

// DefaultCacheSize bounds the exact-scenario LRU when the caller does not
// choose one.
const DefaultCacheSize = 4096

// NewEngine wraps a table. cacheSize bounds the exact-scenario LRU; 0
// selects DefaultCacheSize, negative disables caching.
func NewEngine(t *Table, cacheSize int) (*Engine, error) {
	if t == nil {
		return nil, fmt.Errorf("policy: engine needs a table")
	}
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	var cache *lruCache
	if cacheSize > 0 {
		cache = newLRUCache(cacheSize)
	}
	return &Engine{table: t, cache: cache}, nil
}

// Table returns the engine's table.
func (e *Engine) Table() *Table { return e.table }

// Decide answers one query.
func (e *Engine) Decide(q Query) (Decision, error) {
	return e.DecideContext(context.Background(), q)
}

// DecideContext answers one query, honouring ctx on the expensive path:
// a cancelled context stops the decision before (never during) an exact
// solve, so a dead client does not keep 180 µs optimizations running.
// The cache and table paths are sub-µs and never consult ctx.
func (e *Engine) DecideContext(ctx context.Context, q Query) (Decision, error) {
	if err := q.Validate(); err != nil {
		e.errs.Add(1)
		return Decision{}, err
	}
	e.requests.Add(1)
	if opt, ok := e.cache.get(q); ok {
		e.cacheHits.Add(1)
		return Decision{Optimum: opt, Source: SourceCache}, nil
	}
	if opt, ok := e.table.Lookup(q); ok {
		e.tableHits.Add(1)
		e.cache.add(q, opt)
		return Decision{Optimum: opt, Source: SourceTable}, nil
	}
	// Exact-fallback path: the only one expensive enough to gate.
	if err := ctx.Err(); err != nil {
		return Decision{}, err
	}
	gate := e.fallbackGate()
	if gate != nil && !gate.Allow() {
		opt := e.table.Nearest(q)
		e.degraded.Add(1)
		// Deliberately not cached: a degraded answer must not shadow the
		// polished one a later, unloaded request could produce.
		return Decision{Optimum: opt, Source: SourceDegradedTable, Degraded: true}, nil
	}
	src := SourceExactBoundary
	if !e.table.Contains(q) {
		src = SourceExactOutOfGrid
	}
	opt, err := e.table.cfg.Scenario(q).Optimize()
	if gate != nil {
		gate.Record(err == nil)
	}
	if err != nil {
		e.errs.Add(1)
		return Decision{}, err
	}
	if src == SourceExactOutOfGrid {
		e.outOfGrid.Add(1)
	} else {
		e.boundary.Add(1)
	}
	e.cache.add(q, opt)
	return Decision{Optimum: opt, Source: src}, nil
}

// OptimizeScenario is the internal/planner fast path: it answers a
// core.Scenario through the policy engine when the scenario matches the
// table's calibration (same log-fit throughput law and separation floor),
// and transparently falls back to the scenario's own exact optimizer when
// it does not. The signature matches planner.Config.Optimizer.
func (e *Engine) OptimizeScenario(sc core.Scenario) (core.Optimum, error) {
	cfg := e.table.cfg
	fit, ok := sc.Throughput.(core.LogFitThroughput)
	if !ok || fit.AMbps != cfg.FitAMbps || fit.BMbps != cfg.FitBMbps ||
		math.Abs(sc.MinDistanceM-cfg.MinDistanceM) > 1e-9 {
		return sc.Optimize()
	}
	d, err := e.Decide(Query{
		D0M:      sc.D0M,
		SpeedMPS: sc.SpeedMPS,
		MdataMB:  sc.MdataBytes / 1e6,
		Rho:      sc.Failure.Rho,
	})
	if err != nil {
		return core.Optimum{}, err
	}
	return d.Optimum, nil
}

// CacheLen returns the LRU's current size.
func (e *Engine) CacheLen() int { return e.cache.len() }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:          e.requests.Load(),
		CacheHits:         e.cacheHits.Load(),
		TableHits:         e.tableHits.Load(),
		OutOfGrid:         e.outOfGrid.Load(),
		BoundaryFallbacks: e.boundary.Load(),
		Degraded:          e.degraded.Load(),
		Errors:            e.errs.Load(),
	}
}
