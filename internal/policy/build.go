package policy

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"github.com/nowlater/nowlater/internal/checkpoint"
	"github.com/nowlater/nowlater/internal/runner"
)

// BuildOptions tunes one table construction.
type BuildOptions struct {
	// Workers bounds the build pool (≤ 0 selects one per core). The table
	// is bit-identical for any value: each lattice point is a pure
	// function of the config.
	Workers int
	// Label names the build in the runner metrics registry (and the
	// checkpoint journal). Defaults to "policy/build".
	Label string
	// Checkpoint, when non-nil, journals every completed d0-row so a
	// killed build resumes from its last fsync'd row. A journal written
	// under a different config is rejected with checkpoint.ErrMismatch.
	Checkpoint *checkpoint.Store
	// OnRow, when non-nil, is invoked after each completed d0-row — the
	// progress hook. It runs on worker goroutines (rows complete out of
	// order under parallelism) and must be safe for concurrent use.
	OnRow func(row, rows int)
}

// Build precomputes the full lattice. The unit of parallelism and of
// checkpointing is one d0-row (all load × ρ points at one d0 value):
// coarse enough that per-row journal fsyncs are negligible, fine enough to
// load every core.
func Build(ctx context.Context, cfg Config, opts BuildOptions) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	label := opts.Label
	if label == "" {
		label = "policy/build"
	}
	g := cfg.Grid
	rows := len(g.D0M)
	rowLen := len(g.LoadMBmps) * len(g.Rho)

	ropts := runner.Options{Workers: opts.Workers, Label: label}
	var prior map[int][]Entry
	if opts.Checkpoint != nil {
		meta := checkpoint.Meta{Fingerprint: cfg.Fingerprint(), Trials: rows}
		j, err := opts.Checkpoint.Journal(label, meta)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		prior = make(map[int][]Entry)
		for i := 0; i < rows; i++ {
			p, ok := j.Result(i)
			if !ok {
				continue
			}
			var row []Entry
			if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&row); err != nil {
				return nil, fmt.Errorf("policy: decoding journaled row %d: %w", i, err)
			}
			if len(row) != rowLen {
				return nil, fmt.Errorf("policy: journaled row %d has %d entries, want %d", i, len(row), rowLen)
			}
			prior[i] = row
		}
		ropts.Completed = j.Completed()
		ropts.OnResult = func(trial int, result any) error {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(result.([]Entry)); err != nil {
				return err
			}
			return j.Append(trial, buf.Bytes())
		}
	}
	out, err := runner.Map(ctx, rows, ropts, func(row int) ([]Entry, error) {
		entries := make([]Entry, 0, rowLen)
		d0 := g.D0M[row]
		for _, load := range g.LoadMBmps {
			for _, rho := range g.Rho {
				sc := cfg.Scenario(canonicalQuery(d0, load, rho))
				opt, err := sc.Optimize()
				if err != nil {
					return nil, fmt.Errorf("policy: row %d (d0=%g, load=%g, rho=%g): %w",
						row, d0, load, rho, err)
				}
				entries = append(entries, entryFor(sc, opt))
			}
		}
		if opts.OnRow != nil {
			opts.OnRow(row, rows)
		}
		return entries, nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range prior {
		out[i] = row
	}
	entries := make([]Entry, 0, rows*rowLen)
	for _, row := range out {
		entries = append(entries, row...)
	}
	return NewTable(cfg, entries)
}
