package policy

import (
	"context"
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/planner"
	"github.com/nowlater/nowlater/internal/telemetry"
)

// TestEngineDrivesPlanner wires a policy engine into the mission planner
// as its optimizer fast path and checks the planned rendezvous matches a
// planner solving exactly.
func TestEngineDrivesPlanner(t *testing.T) {
	cfg := QuadrocopterConfig()
	cfg.Grid = Grid{ // small lattice covering the test geometry
		D0M:       linspace(30, 120, 10),
		LoadMBmps: logspace(20, 600, 16),
		Rho:       rhoAxis(1e-4, 4e-3, 6),
	}
	tbl, err := Build(context.Background(), cfg, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tbl, 64)
	if err != nil {
		t.Fatal(err)
	}

	m, err := failure.NewModel(failure.QuadrocopterRho)
	if err != nil {
		t.Fatal(err)
	}
	base := planner.Config{
		Scenario: core.Scenario{
			SpeedMPS:     4.5,
			Failure:      m,
			Throughput:   core.LogFitThroughput{AMbps: cfg.FitAMbps, BMbps: cfg.FitBMbps},
			MinDistanceM: cfg.MinDistanceM,
			D0M:          1,
			MdataBytes:   1,
		},
		LinkRangeM: 120,
	}

	fast := base
	fast.Optimizer = eng.OptimizeScenario
	pFast, err := planner.New(fast)
	if err != nil {
		t.Fatal(err)
	}
	pExact, err := planner.New(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, d0 := range []float64{45, 72.5, 98, 115} {
		for _, p := range []*planner.Planner{pFast, pExact} {
			p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: d0, Z: 10}, HasData: true, DataMB: 56.2})
			p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})
		}
		got, ok, err := pFast.PlanDelivery("ferry", "recv")
		if err != nil || !ok {
			t.Fatalf("d0=%g: engine-backed plan failed: %v %v", d0, ok, err)
		}
		want, ok, err := pExact.PlanDelivery("ferry", "recv")
		if err != nil || !ok {
			t.Fatalf("d0=%g: exact plan failed: %v %v", d0, ok, err)
		}
		rel := math.Abs(got.Optimum.DoptM-want.Optimum.DoptM) / math.Max(want.Optimum.DoptM, 1)
		if rel > servedDoptTol {
			t.Fatalf("d0=%g: engine-backed dopt %.6f vs exact %.6f (rel %.3e)",
				d0, got.Optimum.DoptM, want.Optimum.DoptM, rel)
		}
	}
	if eng.Stats().Requests == 0 {
		t.Fatal("planner never consulted the policy engine")
	}
}
