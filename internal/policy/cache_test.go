package policy

import (
	"sync"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
)

func q(d0 float64) Query { return Query{D0M: d0, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4} }

func TestLRUBasics(t *testing.T) {
	c := newLRUCache(2)
	if _, ok := c.get(q(1)); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.add(q(1), core.Optimum{DoptM: 1})
	c.add(q(2), core.Optimum{DoptM: 2})
	if opt, ok := c.get(q(1)); !ok || opt.DoptM != 1 {
		t.Fatalf("get(1) = %+v, %v", opt, ok)
	}
	// 1 was just promoted; adding 3 must evict 2, not 1.
	c.add(q(3), core.Optimum{DoptM: 3})
	if _, ok := c.get(q(2)); ok {
		t.Fatal("LRU evicted the recently used entry instead of the stale one")
	}
	if _, ok := c.get(q(1)); !ok {
		t.Fatal("promoted entry was evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Re-adding an existing key refreshes in place, no growth.
	c.add(q(1), core.Optimum{DoptM: 11})
	if opt, _ := c.get(q(1)); opt.DoptM != 11 {
		t.Fatal("re-add did not refresh the stored value")
	}
	if c.len() != 2 {
		t.Fatalf("len after refresh = %d, want 2", c.len())
	}
}

func TestLRUNilSafe(t *testing.T) {
	var c *lruCache // caching disabled
	if _, ok := c.get(q(1)); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.add(q(1), core.Optimum{}) // must not panic
	if c.len() != 0 {
		t.Fatal("nil cache has nonzero length")
	}
	if newLRUCache(0) != nil || newLRUCache(-1) != nil {
		t.Fatal("non-positive capacity should disable the cache")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := q(float64(1 + (w*i)%100))
				c.add(key, core.Optimum{DoptM: key.D0M})
				if opt, ok := c.get(key); ok && opt.DoptM != key.D0M {
					t.Errorf("cache returned wrong value for %v", key.D0M)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.len())
	}
}
