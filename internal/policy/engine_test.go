package policy

import (
	"math"
	"sync"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
)

func TestEngineSources(t *testing.T) {
	eng, err := NewEngine(defaultTable(t), 16)
	if err != nil {
		t.Fatal(err)
	}

	in := Query{D0M: 200, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	d1, err := eng.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Source != SourceTable {
		t.Fatalf("first in-grid decision source = %v, want table", d1.Source)
	}
	d2, err := eng.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Source != SourceCache {
		t.Fatalf("repeat decision source = %v, want cache", d2.Source)
	}
	if d2.Optimum != d1.Optimum {
		t.Fatal("cache returned a different optimum than the table")
	}

	out := Query{D0M: 500, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	d3, err := eng.Decide(out)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Source != SourceExactOutOfGrid {
		t.Fatalf("out-of-grid decision source = %v", d3.Source)
	}
	want, err := eng.Table().Config().Scenario(out).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if d3.DoptM != want.DoptM {
		t.Fatalf("out-of-grid answer %.6f differs from exact %.6f", d3.DoptM, want.DoptM)
	}
	// Exact fallbacks are cached too.
	if d4, _ := eng.Decide(out); d4.Source != SourceCache {
		t.Fatalf("repeated out-of-grid decision source = %v, want cache", d4.Source)
	}

	if _, err := eng.Decide(Query{D0M: -1, SpeedMPS: 1, MdataMB: 1}); err == nil {
		t.Fatal("invalid query accepted")
	}

	st := eng.Stats()
	if st.Requests != 4 || st.CacheHits != 2 || st.TableHits != 1 || st.OutOfGrid != 1 || st.Errors != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.CacheHitRatio(); got != 0.5 {
		t.Fatalf("cache hit ratio %v, want 0.5", got)
	}
	if got := st.FallbackRatio(); got != 0.25 {
		t.Fatalf("fallback ratio %v, want 0.25", got)
	}
}

func TestEngineBoundaryFallback(t *testing.T) {
	eng, err := NewEngine(defaultTable(t), -1) // no cache: count raw paths
	if err != nil {
		t.Fatal(err)
	}
	// Sweep until some in-grid query straddles a regime boundary; the
	// default grid has ~10% such cells, so a small sweep is plenty.
	found := false
	for d0 := 60.0; d0 <= 400 && !found; d0 += 7 {
		for rho := 1e-5; rho <= 2e-3; rho *= 2.2 {
			qy := Query{D0M: d0, SpeedMPS: 3, MdataMB: 20, Rho: rho}
			d, err := eng.Decide(qy)
			if err != nil {
				t.Fatal(err)
			}
			if d.Source == SourceExactBoundary {
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no boundary-straddling query in this sweep (grid changed?)")
	}
	if eng.Stats().BoundaryFallbacks == 0 {
		t.Fatal("boundary fallback not counted")
	}
}

func TestEngineNoCache(t *testing.T) {
	eng, err := NewEngine(quickTable(t), -1)
	if err != nil {
		t.Fatal(err)
	}
	in := Query{D0M: 200, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	for i := 0; i < 3; i++ {
		d, err := eng.Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		if d.Source == SourceCache {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if eng.CacheLen() != 0 {
		t.Fatal("disabled cache stored entries")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 0); err == nil {
		t.Fatal("nil table accepted")
	}
	eng, err := NewEngine(quickTable(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if eng.cache == nil || eng.cache.cap != DefaultCacheSize {
		t.Fatal("cacheSize 0 should select the default capacity")
	}
}

func TestEngineConcurrent(t *testing.T) {
	eng, err := NewEngine(defaultTable(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 32)
	for i := range queries {
		queries[i] = Query{
			D0M:      70 + float64(i*9),
			SpeedMPS: 2 + float64(i%7),
			MdataMB:  3 + float64(i%11),
			Rho:      float64(i) * 5e-5,
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				qy := queries[(w+i)%len(queries)]
				d, err := eng.Decide(qy)
				if err != nil {
					t.Errorf("decide %+v: %v", qy, err)
					return
				}
				if !d.TransmitImmediately && (d.DoptM < eng.Table().Config().MinDistanceM-1e-9 || d.DoptM > qy.D0M+1e-9) {
					t.Errorf("decide %+v: dopt %.3f outside feasible range", qy, d.DoptM)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := eng.Stats()
	if st.Requests != 8*200 {
		t.Fatalf("requests %d, want %d", st.Requests, 8*200)
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits despite repeated queries")
	}
}

func TestOptimizeScenarioAdapter(t *testing.T) {
	eng, err := NewEngine(defaultTable(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Table().Config()

	// Matching calibration: the engine must answer (and count a request).
	sc := core.Scenario{
		D0M:          220,
		SpeedMPS:     8,
		MdataBytes:   12e6,
		Failure:      failure.Model{Rho: 3e-4},
		Throughput:   core.LogFitThroughput{AMbps: cfg.FitAMbps, BMbps: cfg.FitBMbps},
		MinDistanceM: cfg.MinDistanceM,
	}
	got, err := eng.OptimizeScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.DoptM-want.DoptM) / want.DoptM; rel > servedDoptTol {
		t.Fatalf("adapter dopt %.6f vs exact %.6f (rel %.3e)", got.DoptM, want.DoptM, rel)
	}
	if eng.Stats().Requests == 0 {
		t.Fatal("matching scenario did not go through the engine")
	}

	// Mismatched calibration: transparently exact, no engine involvement.
	before := eng.Stats().Requests
	other := sc
	other.Throughput = core.LogFitThroughput{AMbps: cfg.FitAMbps + 1, BMbps: cfg.FitBMbps}
	got2, err := eng.OptimizeScenario(other)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := other.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if got2.DoptM != want2.DoptM {
		t.Fatal("mismatched scenario not answered exactly")
	}
	if eng.Stats().Requests != before {
		t.Fatal("mismatched scenario consumed an engine request")
	}
}

func TestSourceString(t *testing.T) {
	for src, want := range map[Source]string{
		SourceCache:          "cache",
		SourceTable:          "table",
		SourceExactOutOfGrid: "exact_out_of_grid",
		SourceExactBoundary:  "exact_boundary",
		SourceDegradedTable:  "degraded_table",
		Source(99):           "source(99)",
	} {
		if got := src.String(); got != want {
			t.Errorf("Source(%d).String() = %q, want %q", src, got, want)
		}
	}
}
