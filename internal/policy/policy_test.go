package policy

import (
	"math"
	"strings"
	"testing"
)

func TestQueryValidate(t *testing.T) {
	good := Query{D0M: 300, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if (Query{D0M: 300, SpeedMPS: 10, MdataMB: 10, Rho: 0}).Validate() != nil {
		t.Fatal("rho = 0 must be a legal query (no failure risk)")
	}
	bad := []Query{
		{D0M: 0, SpeedMPS: 10, MdataMB: 10},
		{D0M: -5, SpeedMPS: 10, MdataMB: 10},
		{D0M: math.NaN(), SpeedMPS: 10, MdataMB: 10},
		{D0M: math.Inf(1), SpeedMPS: 10, MdataMB: 10},
		{D0M: 300, SpeedMPS: 0, MdataMB: 10},
		{D0M: 300, SpeedMPS: 10, MdataMB: -1},
		{D0M: 300, SpeedMPS: 10, MdataMB: math.NaN()},
		{D0M: 300, SpeedMPS: 10, MdataMB: 10, Rho: -1e-9},
		{D0M: 300, SpeedMPS: 10, MdataMB: 10, Rho: math.Inf(1)},
	}
	for _, q := range bad {
		if q.Validate() == nil {
			t.Errorf("query %+v should be rejected", q)
		}
	}
}

func TestQueryLoad(t *testing.T) {
	q := Query{D0M: 300, SpeedMPS: 7, MdataMB: 12, Rho: 0}
	if got := q.LoadMBmps(); got != 84 {
		t.Fatalf("load = %v, want 84", got)
	}
}

func TestGridValidate(t *testing.T) {
	if err := DefaultGrid().Validate(); err != nil {
		t.Fatalf("default grid invalid: %v", err)
	}
	if err := QuickGrid().Validate(); err != nil {
		t.Fatalf("quick grid invalid: %v", err)
	}
	base := func() Grid {
		return Grid{D0M: []float64{100, 200}, LoadMBmps: []float64{10, 20}, Rho: []float64{0, 1e-3}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base grid invalid: %v", err)
	}
	cases := map[string]Grid{
		"short axis":     {D0M: []float64{100}, LoadMBmps: []float64{10, 20}, Rho: []float64{0, 1e-3}},
		"empty axis":     {D0M: []float64{100, 200}, LoadMBmps: nil, Rho: []float64{0, 1e-3}},
		"not increasing": {D0M: []float64{200, 100}, LoadMBmps: []float64{10, 20}, Rho: []float64{0, 1e-3}},
		"duplicate":      {D0M: []float64{100, 100}, LoadMBmps: []float64{10, 20}, Rho: []float64{0, 1e-3}},
		"nan":            {D0M: []float64{100, math.NaN()}, LoadMBmps: []float64{10, 20}, Rho: []float64{0, 1e-3}},
		"zero d0":        {D0M: []float64{0, 200}, LoadMBmps: []float64{10, 20}, Rho: []float64{0, 1e-3}},
		"negative rho":   {D0M: []float64{100, 200}, LoadMBmps: []float64{10, 20}, Rho: []float64{-1e-3, 1e-3}},
	}
	for name, g := range cases {
		if g.Validate() == nil {
			t.Errorf("%s: grid should be rejected", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{AirplaneConfig(), QuadrocopterConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("stock config invalid: %v", err)
		}
	}
	cfg := AirplaneConfig()
	cfg.MinDistanceM = cfg.Grid.D0M[0] // floor swallows the d0 axis start
	if cfg.Validate() == nil {
		t.Fatal("d0 axis inside the separation floor should be rejected")
	}
	cfg = AirplaneConfig()
	cfg.FitAMbps = math.NaN()
	if cfg.Validate() == nil {
		t.Fatal("NaN fit should be rejected")
	}
}

func TestLocate(t *testing.T) {
	axis := []float64{10, 20, 40, 80}
	tests := []struct {
		x      float64
		wantI  int
		wantT  float64
		wantOK bool
	}{
		{10, 0, 0, true},
		{15, 0, 0.5, true},
		{20, 1, 0, true},
		{70, 2, 0.75, true},
		{80, 2, 1, true},
		{9.999, 0, 0, false},
		{80.001, 0, 0, false},
	}
	for _, tc := range tests {
		i, frac, ok := locate(axis, tc.x)
		if ok != tc.wantOK {
			t.Fatalf("locate(%v): ok = %v, want %v", tc.x, ok, tc.wantOK)
		}
		if !ok {
			continue
		}
		if i != tc.wantI || math.Abs(frac-tc.wantT) > 1e-12 {
			t.Fatalf("locate(%v) = (%d, %v), want (%d, %v)", tc.x, i, frac, tc.wantI, tc.wantT)
		}
	}
}

func TestGridIndexRowMajor(t *testing.T) {
	g := Grid{D0M: []float64{1, 2, 3}, LoadMBmps: []float64{1, 2}, Rho: []float64{0, 1, 2, 3}}
	seen := make(map[int]bool)
	want := 0
	for i0 := range g.D0M {
		for il := range g.LoadMBmps {
			for ir := range g.Rho {
				got := g.index(i0, il, ir)
				if got != want {
					t.Fatalf("index(%d,%d,%d) = %d, want %d", i0, il, ir, got, want)
				}
				seen[got] = true
				want++
			}
		}
	}
	if len(seen) != g.Points() {
		t.Fatalf("index covered %d offsets, grid has %d points", len(seen), g.Points())
	}
}

func TestSpacingHelpers(t *testing.T) {
	lin := linspace(60, 400, 18)
	if lin[0] != 60 || lin[17] != 400 {
		t.Fatalf("linspace endpoints %v, %v", lin[0], lin[17])
	}
	logs := logspace(8, 1280, 48)
	if logs[0] != 8 || logs[47] != 1280 {
		t.Fatalf("logspace endpoints must be exact, got %v, %v", logs[0], logs[47])
	}
	for i := 1; i < len(logs); i++ {
		if logs[i] <= logs[i-1] {
			t.Fatalf("logspace not increasing at %d", i)
		}
	}
	rho := rhoAxis(1e-5, 2e-3, 12)
	if rho[0] != 0 || rho[1] != 1e-5 || len(rho) != 13 {
		t.Fatalf("rhoAxis must prepend zero: %v", rho[:2])
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := AirplaneConfig()
	fp := base.Fingerprint()
	if fp != base.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	mutations := map[string]func(*Config){
		"fit A":     func(c *Config) { c.FitAMbps += 1e-9 },
		"fit B":     func(c *Config) { c.FitBMbps -= 1e-9 },
		"floor":     func(c *Config) { c.MinDistanceM += 1e-9 },
		"d0 value":  func(c *Config) { c.Grid.D0M[3] += 1e-9 },
		"load axis": func(c *Config) { c.Grid.LoadMBmps = c.Grid.LoadMBmps[:len(c.Grid.LoadMBmps)-1] },
		"rho value": func(c *Config) { c.Grid.Rho[1] *= 1.000001 },
	}
	for name, mutate := range mutations {
		c := AirplaneConfig()
		// Deep-copy the axes so mutation doesn't alias the base config.
		c.Grid.D0M = append([]float64(nil), c.Grid.D0M...)
		c.Grid.LoadMBmps = append([]float64(nil), c.Grid.LoadMBmps...)
		c.Grid.Rho = append([]float64(nil), c.Grid.Rho...)
		mutate(&c)
		if c.Fingerprint() == fp {
			t.Errorf("%s: mutation not reflected in fingerprint", name)
		}
	}
}

func TestScenarioMapping(t *testing.T) {
	cfg := AirplaneConfig()
	q := Query{D0M: 300, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	sc := cfg.Scenario(q)
	if sc.D0M != 300 || sc.SpeedMPS != 10 || sc.MdataBytes != 10e6 ||
		sc.Failure.Rho != 1e-4 || sc.MinDistanceM != cfg.MinDistanceM {
		t.Fatalf("scenario mapping wrong: %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("mapped scenario invalid: %v", err)
	}
}

func TestContains(t *testing.T) {
	g := DefaultGrid()
	in := Query{D0M: 200, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4}
	if !g.Contains(in) {
		t.Fatalf("query %+v should be inside the default grid", in)
	}
	outs := []Query{
		{D0M: 50, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4},    // d0 below axis
		{D0M: 500, SpeedMPS: 10, MdataMB: 10, Rho: 1e-4},   // d0 above axis
		{D0M: 200, SpeedMPS: 0.1, MdataMB: 1, Rho: 1e-4},   // load below axis
		{D0M: 200, SpeedMPS: 100, MdataMB: 100, Rho: 1e-4}, // load above axis
		{D0M: 200, SpeedMPS: 10, MdataMB: 10, Rho: 1},      // rho above axis
	}
	for _, q := range outs {
		if g.Contains(q) {
			t.Errorf("query %+v should be outside the default grid", q)
		}
	}
}

func TestValidateMessages(t *testing.T) {
	// Error text should name the offending axis, not just fail.
	g := Grid{D0M: []float64{100, 200}, LoadMBmps: []float64{20, 10}, Rho: []float64{0, 1e-3}}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "load") {
		t.Fatalf("want load-axis error, got %v", err)
	}
}
