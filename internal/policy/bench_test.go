package policy

import (
	"context"
	"math/rand"
	"testing"
)

// benchQueries draws a fixed in-grid query mix shared by all benchmarks,
// so the lookup/optimize comparison runs over identical work.
func benchQueries(b *testing.B, g Grid) []Query {
	rng := rand.New(rand.NewSource(1))
	qs := make([]Query, 512)
	for i := range qs {
		qs[i] = randomInGrid(rng, g)
	}
	return qs
}

// BenchmarkTableLookup is the uncached serving path: interpolate + polish.
// Compare against BenchmarkExactOptimize for the table's speedup (~300×
// on the reference machine).
func BenchmarkTableLookup(b *testing.B) {
	tbl := defaultTable(b)
	qs := benchQueries(b, tbl.Config().Grid)
	b.ResetTimer()
	served := 0
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Lookup(qs[i%len(qs)]); ok {
			served++
		}
	}
	if served == 0 {
		b.Fatal("no queries served")
	}
}

// BenchmarkEngineCacheHit is the hit path: every query already cached.
func BenchmarkEngineCacheHit(b *testing.B) {
	eng, err := NewEngine(defaultTable(b), 1024)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(b, eng.Table().Config().Grid)
	for _, q := range qs {
		if _, err := eng.Decide(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Decide(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if hits := eng.Stats().CacheHits; hits < uint64(b.N) {
		b.Fatalf("only %d cache hits over %d decisions", hits, b.N)
	}
}

// BenchmarkExactOptimize is the per-query baseline the table replaces.
func BenchmarkExactOptimize(b *testing.B) {
	cfg := AirplaneConfig()
	qs := benchQueries(b, cfg.Grid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Scenario(qs[i%len(qs)]).Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildQuick tracks table construction cost at smoke scale.
func BenchmarkBuildQuick(b *testing.B) {
	cfg := quickConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Build(context.Background(), cfg, BuildOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
