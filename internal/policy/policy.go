// Package policy turns the paper's decision rule into a servable
// artifact. The reproduction's core output is dopt(d0, Mdata, v, ρ) — the
// distance at which a data-ferrying UAV should transmit — but solving it
// per query costs a full coarse-grid + golden-section optimization
// (core.Scenario.Optimize, ~2000 utility evaluations). This package
// precomputes the optimum over a configurable parameter grid once, stores
// the result in a versioned CRC-checked binary table, and answers online
// queries in microseconds.
//
// # Dimension reduction
//
// The utility U(d) = e^{−ρ(d0−d)} / ((d0−d)/v + Mdata/s(d)) rescaled by
// the constant v is e^{−ρ(d0−d)} · v / ((d0−d) + v·Mdata/s(d)): speed and
// batch size move the argmax only through their product v·Mdata. The
// decision surface is therefore three-dimensional — dopt(d0, v·Mdata, ρ)
// — and the table stores a (d0, load, ρ) lattice, one dimension smaller
// than the query space. Queries carry v and Mdata separately; the lookup
// collapses them.
//
// # Lookup = interpolate, guard, polish
//
// The surface has three regimes: interior (dopt strictly between the
// anti-collision floor and d0, smooth), floor (dopt pinned at
// MinDistanceM) and immediate (dopt = d0). Each entry records its regime;
// a lookup whose stencil mixes regimes straddles a decision boundary
// where dopt is kinked, so it reports !ok and the Engine falls back to
// the exact optimizer (counted, never silent). Clamped regimes
// reconstruct dopt exactly from the query. Interior lookups multilinearly
// interpolate dopt, then polish it with a short golden-section pass on
// the true query utility, bracketed by the stencil's corner spread — so
// the served dopt is accurate to the refinement tolerance (~1e-4
// relative, bounded at ≤1e-3 by the equivalence tests) even inside cells
// whose liftoff-corner curvature defeats plain interpolation, at ~15
// utility evaluations instead of Optimize's ~2000.
//
// Build fans grid rows out over internal/runner, so table construction is
// parallel, deterministic, and — with a checkpoint store — resumable
// after SIGKILL like every other sweep in this repo.
package policy

import (
	"fmt"
	"hash/fnv"
	"math"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
)

// Query is one decision request: the scenario parameters that vary at
// serving time. The throughput law and anti-collision floor are fixed per
// table (they are calibration constants, not per-request inputs).
type Query struct {
	// D0M is the ferry-receiver distance when the link opens (metres).
	D0M float64
	// SpeedMPS is the shipping cruise speed v.
	SpeedMPS float64
	// MdataMB is the batch size in megabytes (10^6 bytes).
	MdataMB float64
	// Rho is the failure rate per metre travelled.
	Rho float64
}

// Validate reports the first implausible field.
func (q Query) Validate() error {
	switch {
	case !isFinite(q.D0M) || q.D0M <= 0:
		return fmt.Errorf("policy: d0 %v must be positive and finite", q.D0M)
	case !isFinite(q.SpeedMPS) || q.SpeedMPS <= 0:
		return fmt.Errorf("policy: speed %v must be positive and finite", q.SpeedMPS)
	case !isFinite(q.MdataMB) || q.MdataMB <= 0:
		return fmt.Errorf("policy: mdata %v must be positive and finite", q.MdataMB)
	case !isFinite(q.Rho) || q.Rho < 0:
		return fmt.Errorf("policy: rho %v must be ≥ 0 and finite", q.Rho)
	}
	return nil
}

// LoadMBmps is the v·Mdata product in MB·m/s — the table's second axis.
func (q Query) LoadMBmps() float64 { return q.SpeedMPS * q.MdataMB }

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Grid is the precomputation lattice: one sorted axis per surface
// dimension. Axis order (d0, load, ρ) is also the row-major storage order
// of the table, ρ fastest.
type Grid struct {
	// D0M is the link-opening distance axis (metres).
	D0M []float64
	// LoadMBmps is the v·Mdata axis (MB·m/s) — the single parameter
	// through which cruise speed and batch size jointly set dopt.
	LoadMBmps []float64
	// Rho is the failure-rate axis (per metre; may start at 0).
	Rho []float64
}

// Validate checks every axis is strictly increasing, finite, and long
// enough to bracket a query (≥ 2 points).
func (g Grid) Validate() error {
	axes := []struct {
		name    string
		vals    []float64
		minimum float64
	}{
		{"d0", g.D0M, math.SmallestNonzeroFloat64},
		{"load", g.LoadMBmps, math.SmallestNonzeroFloat64},
		{"rho", g.Rho, 0},
	}
	for _, ax := range axes {
		if len(ax.vals) < 2 {
			return fmt.Errorf("policy: %s axis needs ≥ 2 points, got %d", ax.name, len(ax.vals))
		}
		for i, v := range ax.vals {
			if !isFinite(v) || v < ax.minimum {
				return fmt.Errorf("policy: %s axis value %v at %d out of range", ax.name, v, i)
			}
			if i > 0 && v <= ax.vals[i-1] {
				return fmt.Errorf("policy: %s axis not strictly increasing at %d", ax.name, i)
			}
		}
	}
	return nil
}

// Points returns the number of lattice points.
func (g Grid) Points() int {
	return len(g.D0M) * len(g.LoadMBmps) * len(g.Rho)
}

// index maps axis indices to the row-major entry offset.
func (g Grid) index(i0, il, ir int) int {
	return (i0*len(g.LoadMBmps)+il)*len(g.Rho) + ir
}

// Contains reports whether a query falls inside the grid's hull
// (boundaries included).
func (g Grid) Contains(q Query) bool {
	in := func(axis []float64, x float64) bool {
		return x >= axis[0] && x <= axis[len(axis)-1]
	}
	return in(g.D0M, q.D0M) && in(g.LoadMBmps, q.LoadMBmps()) && in(g.Rho, q.Rho)
}

// locate finds the bracketing interval of x on a sorted axis: the largest
// i with axis[i] ≤ x, and the interpolation fraction t ∈ [0, 1] within
// [axis[i], axis[i+1]]. ok is false outside the axis range.
func locate(axis []float64, x float64) (i int, t float64, ok bool) {
	n := len(axis)
	if x < axis[0] || x > axis[n-1] {
		return 0, 0, false
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if axis[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t = (x - axis[lo]) / (axis[hi] - axis[lo])
	return lo, t, true
}

// Config fixes everything that identifies one table: the throughput fit,
// the anti-collision floor, and the grid.
type Config struct {
	// FitAMbps, FitBMbps parameterize the platform throughput law
	// s(d) = 10⁶·(A·log2 d + B) (core.LogFitThroughput).
	FitAMbps, FitBMbps float64
	// MinDistanceM is the anti-collision floor (core.MinSeparationM for
	// both paper platforms).
	MinDistanceM float64
	// Grid is the precomputation lattice.
	Grid Grid
}

// Validate reports the first implausible field.
func (c Config) Validate() error {
	if !isFinite(c.FitAMbps) || !isFinite(c.FitBMbps) {
		return fmt.Errorf("policy: fit (%v, %v) must be finite", c.FitAMbps, c.FitBMbps)
	}
	if !isFinite(c.MinDistanceM) || c.MinDistanceM < 0 {
		return fmt.Errorf("policy: min distance %v must be ≥ 0 and finite", c.MinDistanceM)
	}
	if err := c.Grid.Validate(); err != nil {
		return err
	}
	if c.Grid.D0M[0] <= c.MinDistanceM {
		return fmt.Errorf("policy: d0 axis starts at %v, inside the %v m separation floor",
			c.Grid.D0M[0], c.MinDistanceM)
	}
	return nil
}

// Scenario materializes the exact decision instance a query denotes under
// this table's calibration.
func (c Config) Scenario(q Query) core.Scenario {
	return core.Scenario{
		D0M:          q.D0M,
		SpeedMPS:     q.SpeedMPS,
		MdataBytes:   q.MdataMB * 1e6,
		Failure:      failure.Model{Rho: q.Rho},
		Throughput:   core.LogFitThroughput{AMbps: c.FitAMbps, BMbps: c.FitBMbps},
		MinDistanceM: c.MinDistanceM,
	}
}

// canonicalQuery is the (v=1, Mdata=load) representative of one lattice
// point — the scenario the builder actually solves. Every (v, Mdata) pair
// with the same product shares its dopt.
func canonicalQuery(d0, load, rho float64) Query {
	return Query{D0M: d0, SpeedMPS: 1, MdataMB: load, Rho: rho}
}

// Fingerprint hashes the table identity — fit, floor and every grid value.
// It keys both the on-disk header (drift rejection at load) and the build
// checkpoint journal (drift rejection at resume).
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "policy|v%d|fit=%x,%x|min=%x", FormatVersion,
		math.Float64bits(c.FitAMbps), math.Float64bits(c.FitBMbps),
		math.Float64bits(c.MinDistanceM))
	for _, axis := range [][]float64{c.Grid.D0M, c.Grid.LoadMBmps, c.Grid.Rho} {
		fmt.Fprintf(h, "|n=%d", len(axis))
		for _, v := range axis {
			fmt.Fprintf(h, ",%x", math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// linspace returns n evenly spaced points over [lo, hi].
func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// logspace returns n log-evenly spaced points over [lo, hi] (lo > 0).
func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	out[0], out[n-1] = lo, hi // exact endpoints, no exp/log round-trip drift
	return out
}

// rhoAxis prepends ρ = 0 (no failure risk — a legitimate query) to a
// log-spaced failure-rate axis.
func rhoAxis(lo, hi float64, n int) []float64 {
	return append([]float64{0}, logspace(lo, hi, n)...)
}

// Linspace returns n evenly spaced points over [lo, hi] — an axis helper
// for callers assembling custom grids.
func Linspace(lo, hi float64, n int) []float64 { return linspace(lo, hi, n) }

// Logspace returns n log-evenly spaced points over [lo, hi] (lo > 0), with
// exact endpoints.
func Logspace(lo, hi float64, n int) []float64 { return logspace(lo, hi, n) }

// RhoAxis prepends ρ = 0 to a log-spaced failure-rate axis over [lo, hi].
func RhoAxis(lo, hi float64, n int) []float64 { return rhoAxis(lo, hi, n) }

// DefaultGrid covers the airplane serving envelope: d0 across the usable
// 802.11n range, v·Mdata loads from a slow platform with a small burst to
// a fast one with a full sensing sweep, and failure rates from zero to
// ~20× the paper baseline. Density only needs to bracket the polish pass
// (see the package comment); the equivalence tests bound the served dopt
// error at ≤ 1e-3 relative over this grid.
func DefaultGrid() Grid {
	return Grid{
		D0M:       linspace(60, 400, 18),
		LoadMBmps: logspace(8, 1280, 48),
		Rho:       rhoAxis(1e-5, 2e-3, 12),
	}
}

// QuickGrid is a coarse smoke-scale lattice (hundreds of points, builds
// in tens of milliseconds) for tests, examples and the nowlaterd CI smoke
// job.
func QuickGrid() Grid {
	return Grid{
		D0M:       linspace(60, 400, 8),
		LoadMBmps: logspace(8, 1280, 12),
		Rho:       rhoAxis(1e-5, 2e-3, 4),
	}
}

// AirplaneConfig is the default serving table: the paper's airplane
// throughput fit over DefaultGrid.
func AirplaneConfig() Config {
	fit := core.AirplaneFit()
	return Config{
		FitAMbps:     fit.AMbps,
		FitBMbps:     fit.BMbps,
		MinDistanceM: core.MinSeparationM,
		Grid:         DefaultGrid(),
	}
}

// QuadrocopterConfig is the quadrocopter fit over a lattice scaled to its
// shorter usable range.
func QuadrocopterConfig() Config {
	fit := core.QuadrocopterFit()
	return Config{
		FitAMbps:     fit.AMbps,
		FitBMbps:     fit.BMbps,
		MinDistanceM: core.MinSeparationM,
		Grid: Grid{
			D0M:       linspace(30, 120, 16),
			LoadMBmps: logspace(4, 1080, 44),
			Rho:       rhoAxis(2e-5, 4e-3, 12),
		},
	}
}
