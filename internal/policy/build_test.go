package policy

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/nowlater/nowlater/internal/checkpoint"
)

// tinyConfig is a lattice small enough to rebuild repeatedly in tests.
func tinyConfig() Config {
	cfg := AirplaneConfig()
	cfg.Grid = Grid{
		D0M:       linspace(80, 320, 5),
		LoadMBmps: logspace(10, 800, 6),
		Rho:       rhoAxis(1e-5, 1e-3, 3),
	}
	return cfg
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	cfg := tinyConfig()
	ref, err := Build(ctx, cfg, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, err := Build(ctx, cfg, BuildOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.entries {
			if got.entries[i] != ref.entries[i] {
				t.Fatalf("workers=%d: entry %d differs: %+v != %+v",
					workers, i, got.entries[i], ref.entries[i])
			}
		}
	}
}

func TestBuildOnRow(t *testing.T) {
	cfg := tinyConfig()
	var calls atomic.Int64
	_, err := Build(context.Background(), cfg, BuildOptions{
		Workers: 2,
		OnRow: func(row, rows int) {
			if row < 0 || row >= rows || rows != len(cfg.Grid.D0M) {
				t.Errorf("OnRow(%d, %d) out of range", row, rows)
			}
			calls.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(cfg.Grid.D0M)) {
		t.Fatalf("OnRow called %d times, want %d", got, len(cfg.Grid.D0M))
	}
}

func TestBuildInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Grid.D0M = nil
	if _, err := Build(context.Background(), cfg, BuildOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBuildCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, AirplaneConfig(), BuildOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v", err)
	}
}

func TestBuildCheckpointResume(t *testing.T) {
	ctx := context.Background()
	cfg := tinyConfig()
	dir := t.TempDir()

	// First pass journals every row.
	store, err := checkpoint.NewStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Build(ctx, cfg, BuildOptions{Workers: 2, Checkpoint: store})
	if err != nil {
		t.Fatal(err)
	}

	// Resume must replay rows from the journal without re-solving them:
	// with every row journaled, the resumed build does zero optimizer work
	// and still reproduces the table bit-for-bit.
	resumed, err := checkpoint.NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := 0
	second, err := Build(ctx, cfg, BuildOptions{
		Workers:    2,
		Checkpoint: resumed,
		OnRow:      func(_, _ int) { recomputed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if recomputed != 0 {
		t.Fatalf("resume recomputed %d rows, want 0", recomputed)
	}
	for i := range first.entries {
		if first.entries[i] != second.entries[i] {
			t.Fatalf("entry %d differs after resume", i)
		}
	}

	// A journal written under a different config must be rejected, not
	// silently merged.
	drifted := cfg
	drifted.Grid.Rho = append([]float64(nil), cfg.Grid.Rho...)
	drifted.Grid.Rho[1] *= 1.5
	store3, err := checkpoint.NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ctx, drifted, BuildOptions{Checkpoint: store3}); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("drifted config resume returned %v, want checkpoint.ErrMismatch", err)
	}
}
