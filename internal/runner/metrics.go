package runner

import "sync"

// RunStats is one Map call's timing record: how many trials ran, how wide
// the pool was, how long the run took on the wall versus summed across
// workers, and the observed concurrency peak. cmd/experiments snapshots
// these per figure into BENCH_experiments.json — the repo's perf
// trajectory.
type RunStats struct {
	Label       string  `json:"label"`
	Trials      int     `json:"trials"`
	Workers     int     `json:"workers"`
	Completed   int     `json:"completed"`
	WallS       float64 `json:"wall_s"`
	BusyS       float64 `json:"busy_s"`
	MaxInFlight int     `json:"max_in_flight"`
	MaxTrialS   float64 `json:"max_trial_s"`
	MeanTrialS  float64 `json:"mean_trial_s"`
	// Skipped counts trials bypassed via Options.Completed (a resumed run
	// re-using journaled results).
	Skipped int `json:"skipped,omitempty"`
	// Panics counts trials that failed by panicking (recovered into
	// TrialPanicError).
	Panics int `json:"panics,omitempty"`
	// Stalls counts watchdog firings: trials flagged by the running-median
	// stall detector plus hard TrialTimeout expiries.
	Stalls int `json:"stalls,omitempty"`
}

var (
	metricsMu sync.Mutex
	metrics   []RunStats
)

func record(m RunStats) {
	metricsMu.Lock()
	metrics = append(metrics, m)
	metricsMu.Unlock()
}

// ResetMetrics clears the run registry (call before a measured section).
func ResetMetrics() {
	metricsMu.Lock()
	metrics = nil
	metricsMu.Unlock()
}

// Metrics returns a copy of every RunStats recorded since the last reset,
// in completion order.
func Metrics() []RunStats {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	out := make([]RunStats, len(metrics))
	copy(out, metrics)
	return out
}
