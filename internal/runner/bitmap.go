package runner

import "math/bits"

// Bitmap is a fixed-size set of trial indices. Its main use is
// Options.Completed: a checkpoint journal marks the trials it already holds
// and Map skips them, so a resumed sweep re-runs only the missing work.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the index range the bitmap covers.
func (b *Bitmap) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Set marks index i. Out-of-range indices are ignored.
func (b *Bitmap) Set(i int) {
	if b == nil || i < 0 || i >= b.n {
		return
	}
	b.words[i/64] |= 1 << (uint(i) % 64)
}

// Get reports whether index i is marked. A nil bitmap holds nothing.
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of marked indices.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}
