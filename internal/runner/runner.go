// Package runner is the shared parallel experiment engine: every Monte-Carlo
// grid in the reproduction (the paper's Figs 4–9, the ablations, the chaos
// survivability sweep, link.MeasureTrials) is a set of independently seeded
// trials, and this package runs them on one bounded worker pool while
// keeping the output bit-identical to a serial loop.
//
// The determinism contract:
//
//   - Each trial must derive all of its randomness from its trial index
//     alone (via SplitSeed or a caller-chosen seed offset feeding
//     stats.NewRNG / stats.RNG.Substream), never from shared mutable state
//     or from the order in which trials happen to run.
//   - Results are collected into a slice indexed by trial, so the returned
//     order — and therefore any downstream floating-point accumulation
//     order — matches the serial loop exactly, whatever the interleaving.
//   - The whole trial body (setup and measurement) runs inside the worker,
//     so at most Workers trials exist in flight at once; constructing
//     vehicles or links never outruns the pool bound.
//
// Under this contract Map(workers=1) and Map(workers=N) produce the same
// bits, and both match the pre-engine serial loops.
//
// The crash-safety contract layered on top:
//
//   - A panicking trial body never kills the process: the panic is
//     recovered into a TrialPanicError carrying the trial index and stack,
//     and reported through the ordinary lowest-index-wins error path.
//   - Every successfully completed trial is delivered to Options.OnResult
//     even when the run as a whole fails — a crash after N good trials
//     never loses those N results from a durable sink (the checkpoint
//     journal). Only a watchdog abort abandons in-flight work.
//   - Options.Completed lets a resumed run skip trials a journal already
//     holds; because results are slotted by index, a resumed run is
//     bit-identical to an uninterrupted one at any worker count.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Options tunes one Map run.
type Options struct {
	// Workers bounds the number of trials in flight; ≤ 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Label names the run in the metrics registry (and bench output).
	Label string
	// OnTrial, when non-nil, is invoked after each completed trial with its
	// wall-clock duration — the progress hook. Calls are serialized by the
	// engine, so the callback itself need not be goroutine-safe, but it
	// runs concurrently with other trials and must not mutate trial state.
	OnTrial func(trial int, elapsed time.Duration)
	// OnResult, when non-nil, receives every successfully completed
	// trial's result — the durable-sink hook. It is invoked even for
	// trials that finish after another trial has already failed the run,
	// so a sink such as the checkpoint journal never loses completed work
	// on a failure. Calls are serialized like OnTrial. A non-nil return
	// fails that trial (and therefore the run) — a sink that cannot
	// persist must stop the sweep rather than silently drop results.
	OnResult func(trial int, result any) error
	// Completed marks trials that are already done (typically from a
	// checkpoint journal). Marked trials are skipped — fn is never invoked
	// for them and OnTrial/OnResult do not fire — and their result slots
	// are returned as zero values for the caller to fill from its journal.
	Completed *Bitmap
	// TrialTimeout, when > 0, is a hard per-trial watchdog: a trial
	// running longer aborts the run with a TrialStallError. The trial body
	// is not preemptible, so the abort abandons the stuck goroutine (it is
	// leaked until it returns on its own); see the watchdog notes on Map.
	TrialTimeout time.Duration
	// StallFactor, when > 0, arms the stall detector: any in-flight trial
	// exceeding StallFactor × the running median trial duration (over the
	// last stallWindow completed trials, once stallMinSamples have
	// finished, with a stallFloor lower bound against scheduler noise) is
	// flagged in RunStats.Stalls.
	StallFactor float64
	// AbortOnStall upgrades stall flags to aborts: the first flagged trial
	// aborts the run with a TrialStallError, abandoning in-flight work
	// like TrialTimeout does.
	AbortOnStall bool
}

// ErrCancelled reports a run aborted by context cancellation.
var ErrCancelled = errors.New("runner: run cancelled")

// Stall-detector tuning: the running median is taken over the last
// stallWindow completed trials once stallMinSamples have finished, and the
// stall threshold never drops below stallFloor (a GC pause or scheduler
// hiccup must not flag a microsecond-scale trial).
const (
	stallWindow     = 256
	stallMinSamples = 5
	stallFloor      = 20 * time.Millisecond
	stallTick       = 10 * time.Millisecond
)

// trialOutcome carries one trial's result across the watchdog boundary.
type trialOutcome[T any] struct {
	res T
	err error
}

// Map runs fn for every trial in [0, n) on a bounded worker pool and
// returns the results in trial order.
//
// On failure the error of the lowest failing trial index is returned (so
// the reported error is deterministic) together with a nil slice — never a
// partially filled one. Once any trial fails or ctx is cancelled, no new
// trials start; trials already in flight run to completion (fn is not
// preemptible) and their results, while absent from the returned slice,
// are still delivered to Options.OnResult — a durable sink keeps every
// completed trial even when the run fails.
//
// A panic inside fn is recovered into a *TrialPanicError and treated as
// that trial's failure; it never propagates out of Map.
//
// Watchdogs are the exception to run-to-completion: when TrialTimeout or
// AbortOnStall trips, Map returns a *TrialStallError promptly and abandons
// in-flight trial goroutines (fn cannot be preempted, so they leak until
// they return on their own; their results are discarded). Use the abort
// watchdogs only when a hung trial is worse than a leaked goroutine —
// e.g. unattended million-trial sweeps.
func Map[T any](ctx context.Context, n int, opts Options, fn func(trial int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, errors.New("runner: nil trial function")
	}
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Watchdog aborts need the trial body in its own goroutine so the
	// worker can stop waiting; without them fn runs inline on the worker.
	abandonable := opts.TrialTimeout > 0 || opts.AbortOnStall

	results := make([]T, n)
	errs := make([]error, n)

	var (
		mu       sync.Mutex
		next     int
		failed   bool
		inflight = make(map[int]*trialState)
		recent   []float64 // ring buffer of recent trial durations (seconds)
		recentAt int
		m        = RunStats{Label: opts.Label, Trials: n, Workers: workers}
	)
	if m.Label == "" {
		m.Label = "run"
	}
	abortCh := make(chan struct{})
	var abortOnce sync.Once
	// abortWith records err against trial (unless it already failed some
	// other way) and releases every worker. Callers must not hold mu.
	abortWith := func(trial int, err error) {
		mu.Lock()
		if errs[trial] == nil {
			errs[trial] = err
		}
		failed = true
		mu.Unlock()
		abortOnce.Do(func() { close(abortCh) })
	}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for next < n && opts.Completed.Get(next) {
					m.Skipped++
					next++
				}
				if failed || next >= n || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				trial := next
				next++
				st := &trialState{start: time.Now()}
				inflight[trial] = st
				if len(inflight) > m.MaxInFlight {
					m.MaxInFlight = len(inflight)
				}
				mu.Unlock()

				var out trialOutcome[T]
				if !abandonable {
					out.res, out.err = safeCall(fn, trial)
				} else {
					ch := make(chan trialOutcome[T], 1)
					go func() {
						var o trialOutcome[T]
						o.res, o.err = safeCall(fn, trial)
						ch <- o
					}()
					var timer *time.Timer
					var timeoutC <-chan time.Time
					if opts.TrialTimeout > 0 {
						timer = time.NewTimer(opts.TrialTimeout)
						timeoutC = timer.C
					}
					select {
					case out = <-ch:
						if timer != nil {
							timer.Stop()
						}
					case <-timeoutC:
						mu.Lock()
						m.Stalls++
						delete(inflight, trial)
						mu.Unlock()
						abortWith(trial, &TrialStallError{
							Trial: trial, Elapsed: time.Since(st.start),
							Limit: opts.TrialTimeout, Hard: true,
						})
						return
					case <-abortCh:
						// Another trial's watchdog fired; this trial is
						// abandoned (its goroutine drains into the
						// buffered channel whenever it finishes).
						mu.Lock()
						delete(inflight, trial)
						mu.Unlock()
						return
					}
				}
				elapsed := time.Since(st.start)

				mu.Lock()
				delete(inflight, trial)
				m.Completed++
				s := elapsed.Seconds()
				m.BusyS += s
				if s > m.MaxTrialS {
					m.MaxTrialS = s
				}
				if len(recent) < stallWindow {
					recent = append(recent, s)
				} else {
					recent[recentAt] = s
					recentAt = (recentAt + 1) % stallWindow
				}
				if out.err != nil {
					errs[trial] = out.err
					failed = true
					var pe *TrialPanicError
					if errors.As(out.err, &pe) {
						m.Panics++
					}
				} else {
					results[trial] = out.res
					if opts.OnResult != nil {
						if serr := opts.OnResult(trial, out.res); serr != nil {
							errs[trial] = fmt.Errorf("runner: trial %d result sink: %w", trial, serr)
							failed = true
						}
					}
				}
				if opts.OnTrial != nil {
					opts.OnTrial(trial, elapsed)
				}
				mu.Unlock()
			}
		}()
	}

	// The stall watchdog samples in-flight trials against the running
	// median of recently completed ones.
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	if opts.StallFactor > 0 {
		go func() {
			defer close(watchDone)
			ticker := time.NewTicker(stallTick)
			defer ticker.Stop()
			for {
				select {
				case <-abortCh:
					return
				case <-watchStop:
					return
				case <-ticker.C:
				}
				var stalled []stallHit
				mu.Lock()
				if m.Completed >= stallMinSamples {
					med := medianOf(recent)
					limit := time.Duration(opts.StallFactor * med * float64(time.Second))
					if limit < stallFloor {
						limit = stallFloor
					}
					for trial, st := range inflight {
						if el := time.Since(st.start); el > limit && !st.flagged {
							st.flagged = true
							m.Stalls++
							stalled = append(stalled, stallHit{trial: trial, elapsed: el, limit: limit})
						}
					}
				}
				mu.Unlock()
				if opts.AbortOnStall {
					for _, h := range stalled {
						abortWith(h.trial, &TrialStallError{
							Trial: h.trial, Elapsed: h.elapsed, Limit: h.limit,
						})
					}
				}
			}
		}()
	} else {
		close(watchDone)
	}

	wg.Wait()
	close(watchStop)
	<-watchDone

	m.WallS = time.Since(start).Seconds()
	if m.Completed > 0 {
		m.MeanTrialS = m.BusyS / float64(m.Completed)
	}
	record(m)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, errors.Join(ErrCancelled, err)
	}
	return results, nil
}

// trialState is the watchdog's view of one in-flight trial.
type trialState struct {
	start   time.Time
	flagged bool
}

// stallHit is one stall-detector firing, extracted under the lock and
// reported after it is released.
type stallHit struct {
	trial          int
	elapsed, limit time.Duration
}

// safeCall invokes fn and converts a panic into a *TrialPanicError.
func safeCall[T any](fn func(trial int) (T, error), trial int) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &TrialPanicError{Trial: trial, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(trial)
}

// medianOf returns the median of xs (unsorted input, not mutated).
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if len(tmp)%2 == 1 {
		return tmp[len(tmp)/2]
	}
	return (tmp[len(tmp)/2-1] + tmp[len(tmp)/2]) / 2
}

// SplitSeed derives the i-th trial seed from a root seed with a SplitMix64
// mix — the derivation link.MeasureTrials has always used, hoisted here so
// every consumer of per-trial seeding shares one definition. Changing the
// mixing constants would silently reshuffle every experiment's draws; they
// are part of the determinism contract.
func SplitSeed(seed int64, i int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return int64(x)
}
