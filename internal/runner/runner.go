// Package runner is the shared parallel experiment engine: every Monte-Carlo
// grid in the reproduction (the paper's Figs 4–9, the ablations, the chaos
// survivability sweep, link.MeasureTrials) is a set of independently seeded
// trials, and this package runs them on one bounded worker pool while
// keeping the output bit-identical to a serial loop.
//
// The determinism contract:
//
//   - Each trial must derive all of its randomness from its trial index
//     alone (via SplitSeed or a caller-chosen seed offset feeding
//     stats.NewRNG / stats.RNG.Substream), never from shared mutable state
//     or from the order in which trials happen to run.
//   - Results are collected into a slice indexed by trial, so the returned
//     order — and therefore any downstream floating-point accumulation
//     order — matches the serial loop exactly, whatever the interleaving.
//   - The whole trial body (setup and measurement) runs inside the worker,
//     so at most Workers trials exist in flight at once; constructing
//     vehicles or links never outruns the pool bound.
//
// Under this contract Map(workers=1) and Map(workers=N) produce the same
// bits, and both match the pre-engine serial loops.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// Options tunes one Map run.
type Options struct {
	// Workers bounds the number of trials in flight; ≤ 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Label names the run in the metrics registry (and bench output).
	Label string
	// OnTrial, when non-nil, is invoked after each completed trial with its
	// wall-clock duration — the progress hook. Calls are serialized by the
	// engine, so the callback itself need not be goroutine-safe, but it
	// runs concurrently with other trials and must not mutate trial state.
	OnTrial func(trial int, elapsed time.Duration)
}

// ErrCancelled reports a run aborted by context cancellation.
var ErrCancelled = errors.New("runner: run cancelled")

// Map runs fn for every trial in [0, n) on a bounded worker pool and
// returns the results in trial order.
//
// On failure the error of the lowest failing trial index is returned (so
// the reported error is deterministic) together with a nil slice — never a
// partially filled one. Once any trial fails or ctx is cancelled, no new
// trials start; trials already in flight run to completion (fn is not
// preemptible) and their results are discarded.
func Map[T any](ctx context.Context, n int, opts Options, fn func(trial int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, errors.New("runner: nil trial function")
	}
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)

	var (
		mu       sync.Mutex
		next     int
		failed   bool
		inFlight int
		m        = RunStats{Label: opts.Label, Trials: n, Workers: workers}
	)
	if m.Label == "" {
		m.Label = "run"
	}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failed || next >= n || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				trial := next
				next++
				inFlight++
				if inFlight > m.MaxInFlight {
					m.MaxInFlight = inFlight
				}
				mu.Unlock()

				t0 := time.Now()
				res, err := fn(trial)
				elapsed := time.Since(t0)

				mu.Lock()
				inFlight--
				m.Completed++
				m.BusyS += elapsed.Seconds()
				if s := elapsed.Seconds(); s > m.MaxTrialS {
					m.MaxTrialS = s
				}
				if err != nil {
					errs[trial] = err
					failed = true
				} else {
					results[trial] = res
				}
				cb := opts.OnTrial
				if cb != nil {
					cb(trial, elapsed)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	m.WallS = time.Since(start).Seconds()
	if m.Completed > 0 {
		m.MeanTrialS = m.BusyS / float64(m.Completed)
	}
	record(m)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, errors.Join(ErrCancelled, err)
	}
	return results, nil
}

// SplitSeed derives the i-th trial seed from a root seed with a SplitMix64
// mix — the derivation link.MeasureTrials has always used, hoisted here so
// every consumer of per-trial seeding shares one definition. Changing the
// mixing constants would silently reshuffle every experiment's draws; they
// are part of the determinism contract.
func SplitSeed(seed int64, i int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return int64(x)
}
