package runner

import (
	"fmt"
	"time"
)

// TrialPanicError reports a trial body that panicked. Map recovers the
// panic inside the worker, so one bad trial fails the run through the
// ordinary lowest-index-wins error path instead of tearing down the whole
// process (and with it every other sweep's progress).
type TrialPanicError struct {
	// Trial is the index of the panicking trial.
	Trial int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *TrialPanicError) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v\n%s", e.Trial, e.Value, e.Stack)
}

// TrialStallError reports a trial aborted by a watchdog: either the hard
// Options.TrialTimeout or the running-median stall detector with
// Options.AbortOnStall set. The trial body itself cannot be preempted, so
// an aborted run abandons it (see Map's watchdog notes).
type TrialStallError struct {
	// Trial is the index of the stalled trial.
	Trial int
	// Elapsed is how long the trial had been running when the watchdog
	// fired; Limit is the threshold it crossed.
	Elapsed, Limit time.Duration
	// Hard distinguishes the fixed TrialTimeout (true) from the
	// running-median stall detector (false).
	Hard bool
}

func (e *TrialStallError) Error() string {
	kind := "stalled at >"
	if e.Hard {
		kind = "exceeded trial timeout"
	}
	return fmt.Sprintf("runner: trial %d %s %v (running for %v)", e.Trial, kind, e.Limit, e.Elapsed)
}
