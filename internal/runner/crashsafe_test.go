package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMapPanicIsolated is the panic-isolation regression: a panicking
// trial must not crash the process, must surface as a TrialPanicError with
// the trial index and captured stack, and must win the lowest-index rule
// like any other failure.
func TestMapPanicIsolated(t *testing.T) {
	_, err := Map(context.Background(), 12, Options{Workers: 4},
		func(trial int) (int, error) {
			if trial == 5 {
				panic("trial blew up")
			}
			return trial, nil
		})
	if err == nil {
		t.Fatal("panicking trial returned nil error")
	}
	var pe *TrialPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *TrialPanicError", err, err)
	}
	if pe.Trial != 5 {
		t.Errorf("panic trial = %d, want 5", pe.Trial)
	}
	if pe.Value != "trial blew up" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "crashsafe_test") {
		t.Errorf("stack does not point at the trial body:\n%s", pe.Stack)
	}
	ms := Metrics()
	if got := ms[len(ms)-1].Panics; got != 1 {
		t.Errorf("RunStats.Panics = %d, want 1", got)
	}
}

func TestMapPanicLowestIndexWins(t *testing.T) {
	// A panic at a low index must beat an ordinary error at a higher one.
	_, err := Map(context.Background(), 8, Options{Workers: 8},
		func(trial int) (int, error) {
			switch trial {
			case 1:
				panic("low")
			case 6:
				return 0, errors.New("high")
			}
			return trial, nil
		})
	var pe *TrialPanicError
	if !errors.As(err, &pe) || pe.Trial != 1 {
		t.Fatalf("err = %v, want panic of trial 1", err)
	}
}

func TestMapTrialTimeoutAborts(t *testing.T) {
	start := time.Now()
	_, err := Map(context.Background(), 4, Options{Workers: 4, TrialTimeout: 30 * time.Millisecond},
		func(trial int) (int, error) {
			if trial == 2 {
				time.Sleep(2 * time.Second) // hung trial
			}
			return trial, nil
		})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout abort took %v — watchdog did not abandon the hung trial", elapsed)
	}
	var se *TrialStallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *TrialStallError", err)
	}
	if se.Trial != 2 || !se.Hard || se.Limit != 30*time.Millisecond {
		t.Errorf("stall error = %+v", se)
	}
	ms := Metrics()
	if got := ms[len(ms)-1].Stalls; got < 1 {
		t.Errorf("RunStats.Stalls = %d, want ≥ 1", got)
	}
}

func TestMapStallDetectorFlags(t *testing.T) {
	// Many fast trials establish the running median; one slow trial must be
	// flagged (but, without AbortOnStall, the run still completes).
	out, err := Map(context.Background(), 40, Options{Workers: 2, StallFactor: 4},
		func(trial int) (int, error) {
			if trial == 30 {
				time.Sleep(400 * time.Millisecond)
			} else {
				time.Sleep(2 * time.Millisecond)
			}
			return trial, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 40 {
		t.Fatalf("len(out) = %d", len(out))
	}
	ms := Metrics()
	m := ms[len(ms)-1]
	if m.Stalls < 1 {
		t.Errorf("stall detector never flagged the slow trial: %+v", m)
	}
	if m.Completed != 40 {
		t.Errorf("flag-only watchdog must not abort: completed = %d", m.Completed)
	}
}

func TestMapAbortOnStall(t *testing.T) {
	start := time.Now()
	_, err := Map(context.Background(), 40, Options{Workers: 2, StallFactor: 4, AbortOnStall: true},
		func(trial int) (int, error) {
			if trial == 20 {
				time.Sleep(5 * time.Second)
			} else {
				time.Sleep(2 * time.Millisecond)
			}
			return trial, nil
		})
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stall abort took %v", elapsed)
	}
	var se *TrialStallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *TrialStallError", err)
	}
	if se.Trial != 20 || se.Hard {
		t.Errorf("stall error = %+v, want soft stall of trial 20", se)
	}
}

func TestMapCompletedBitmapSkips(t *testing.T) {
	done := NewBitmap(10)
	for _, i := range []int{0, 3, 4, 9} {
		done.Set(i)
	}
	var mu sync.Mutex
	ran := map[int]bool{}
	out, err := Map(context.Background(), 10, Options{Workers: 3, Completed: done},
		func(trial int) (int, error) {
			mu.Lock()
			ran[trial] = true
			mu.Unlock()
			return trial + 100, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if done.Get(i) {
			if ran[i] {
				t.Errorf("completed trial %d was re-run", i)
			}
			if out[i] != 0 {
				t.Errorf("skipped trial %d slot = %d, want zero value", i, out[i])
			}
		} else {
			if !ran[i] {
				t.Errorf("missing trial %d never ran", i)
			}
			if out[i] != i+100 {
				t.Errorf("out[%d] = %d", i, out[i])
			}
		}
	}
	ms := Metrics()
	if got := ms[len(ms)-1].Skipped; got != 4 {
		t.Errorf("RunStats.Skipped = %d, want 4", got)
	}
}

// TestMapOnResultSurvivesFailure pins the durable-sink guarantee: when a
// trial fails, every other trial that completes (including in-flight ones
// finishing after the failure) is still delivered to OnResult, so a
// journal keeps all finished work.
func TestMapOnResultSurvivesFailure(t *testing.T) {
	started3 := make(chan struct{})
	failing := make(chan struct{})
	var mu sync.Mutex
	sunk := map[int]int{}
	_, err := Map(context.Background(), 4, Options{Workers: 4,
		OnResult: func(trial int, v any) error {
			mu.Lock()
			sunk[trial] = v.(int)
			mu.Unlock()
			return nil
		}},
		func(trial int) (int, error) {
			if trial == 1 {
				<-started3 // fail only once trial 3 is in flight
				close(failing)
				return 0, errors.New("boom")
			}
			if trial == 3 {
				close(started3)
				// Stay in flight until trial 1 has failed, then let the
				// failure be recorded before completing.
				<-failing
				time.Sleep(20 * time.Millisecond)
			}
			return trial * 10, nil
		})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	mu.Lock()
	got3, ok3 := sunk[3]
	mu.Unlock()
	if !ok3 || got3 != 30 {
		t.Fatalf("in-flight trial 3 result lost on failure: sunk=%v", sunk)
	}
	if _, ok := sunk[1]; ok {
		t.Error("failed trial delivered to the sink")
	}
}

func TestMapOnResultErrorFailsTrial(t *testing.T) {
	sinkErr := errors.New("disk full")
	_, err := Map(context.Background(), 6, Options{Workers: 2,
		OnResult: func(trial int, v any) error {
			if trial == 2 {
				return sinkErr
			}
			return nil
		}},
		func(trial int) (int, error) { return trial, nil })
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want wrapped sink error", err)
	}
}

func TestBitmap(t *testing.T) {
	var nilB *Bitmap
	if nilB.Get(0) || nilB.Count() != 0 || nilB.Len() != 0 {
		t.Error("nil bitmap must be empty")
	}
	nilB.Set(1) // must not panic

	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len=%d count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	b.Set(-1)
	b.Set(130) // out of range: ignored
	if b.Count() != 4 {
		t.Errorf("count = %d, want 4", b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(130) || b.Get(-1) {
		t.Error("unexpected bits set")
	}
}
