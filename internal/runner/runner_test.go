package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(context.Background(), 20, Options{Workers: workers},
			func(trial int) (int, error) { return trial * trial, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapSerialParallelIdentical(t *testing.T) {
	run := func(workers int) []int64 {
		out, err := Map(context.Background(), 12, Options{Workers: workers},
			func(trial int) (int64, error) { return SplitSeed(42, trial), nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d: serial %d vs parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	// Several trials fail; the reported error must be the lowest failing
	// index regardless of completion order.
	_, err := Map(context.Background(), 16, Options{Workers: 8},
		func(trial int) (int, error) {
			if trial%3 == 2 { // trials 2, 5, 8, ...
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial, nil
		})
	if err == nil || err.Error() != "trial 2 failed" {
		t.Fatalf("err = %v, want the lowest failing trial", err)
	}
}

func TestMapErrorStopsScheduling(t *testing.T) {
	var started atomic.Int64
	_, err := Map(context.Background(), 1000, Options{Workers: 1},
		func(trial int) (int, error) {
			started.Add(1)
			if trial == 3 {
				return 0, errors.New("boom")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 4 {
		t.Fatalf("%d trials started after the failure", n)
	}
}

func TestMapPeakInFlightBounded(t *testing.T) {
	// Regression for the fig5 fan-out: the WHOLE trial body (setup and
	// measurement together) must be bounded by the pool, so at most Workers
	// trials may ever be in flight simultaneously.
	const workers = 2
	var mu sync.Mutex
	inFlight, peak := 0, 0
	_, err := Map(context.Background(), 12, Options{Workers: workers},
		func(trial int) (int, error) {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond) // simulated setup + measurement
			mu.Lock()
			inFlight--
			mu.Unlock()
			return trial, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("peak in-flight trials %d exceeds the %d-worker bound", peak, workers)
	}
	ms := Metrics()
	if got := ms[len(ms)-1].MaxInFlight; got > workers {
		t.Fatalf("metrics recorded peak %d > %d", got, workers)
	}
}

func TestMapCancellationPromptAndLoud(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	begun := make(chan struct{}, 1)
	done := make(chan struct{})
	var res []int
	var err error
	go func() {
		defer close(done)
		res, err = Map(ctx, 1000, Options{Workers: 2},
			func(trial int) (int, error) {
				started.Add(1)
				select {
				case begun <- struct{}{}:
				default:
				}
				time.Sleep(5 * time.Millisecond)
				return trial, nil
			})
	}()
	<-begun
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Map did not return promptly")
	}
	if err == nil {
		t.Fatal("cancelled run returned nil error (silent partial output)")
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned partial results (%d)", len(res))
	}
	if n := started.Load(); n >= 1000 {
		t.Fatal("cancellation did not stop scheduling")
	}
}

func TestMapProgressCallback(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(context.Background(), 9, Options{Workers: 3,
		OnTrial: func(trial int, d time.Duration) {
			if trial < 0 || trial >= 9 || d < 0 {
				t.Errorf("bad callback args: %d %v", trial, d)
			}
			calls.Add(1)
		}},
		func(trial int) (int, error) { return trial, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 9 {
		t.Fatalf("callback fired %d times", calls.Load())
	}
}

func TestMapEdgeCases(t *testing.T) {
	if out, err := Map(context.Background(), 0, Options{}, func(int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("n=0: %v %v", out, err)
	}
	if _, err := Map[int](context.Background(), 3, Options{}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	// Workers larger than n must not deadlock or duplicate trials.
	out, err := Map(context.Background(), 2, Options{Workers: 64},
		func(trial int) (int, error) { return trial, nil })
	if err != nil || len(out) != 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("workers>n: %v %v", out, err)
	}
}

func TestMetricsRegistry(t *testing.T) {
	ResetMetrics()
	_, err := Map(context.Background(), 5, Options{Workers: 2, Label: "unit"},
		func(trial int) (int, error) {
			time.Sleep(time.Millisecond)
			return trial, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	ms := Metrics()
	if len(ms) != 1 {
		t.Fatalf("metrics entries = %d", len(ms))
	}
	m := ms[0]
	if m.Label != "unit" || m.Trials != 5 || m.Completed != 5 || m.Workers != 2 {
		t.Fatalf("stats: %+v", m)
	}
	if m.WallS <= 0 || m.BusyS <= 0 || m.MeanTrialS <= 0 || m.MaxTrialS < m.MeanTrialS {
		t.Fatalf("timings: %+v", m)
	}
	ResetMetrics()
	if len(Metrics()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSplitSeedStable(t *testing.T) {
	// The mixing constants are part of the determinism contract: these
	// values pin the derivation so a change cannot slip through unnoticed.
	if s := SplitSeed(1, 0); s != SplitSeed(1, 0) {
		t.Fatal("unstable")
	}
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := SplitSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at trial %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(1, 1) == SplitSeed(2, 1) {
		t.Fatal("root seed ignored")
	}
}
