// Package geo provides the geodetic and vector primitives used throughout
// the simulator: WGS-84 latitude/longitude coordinates, the Haversine
// great-circle distance (the formula the paper applies to GPS fixes to bin
// throughput samples by distance), bearings, and a local East-North-Up
// (ENU) tangent frame for flat-earth flight dynamics at the small scales
// (tens to hundreds of metres) the paper operates at.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the Haversine formula.
const EarthRadiusMeters = 6371000.0

// LatLon is a WGS-84 geodetic coordinate in degrees with altitude above
// ground level in metres.
type LatLon struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
	Alt float64 // metres above ground level
}

// String renders the coordinate in a compact human-readable form.
func (p LatLon) String() string {
	return fmt.Sprintf("(%.6f°, %.6f°, %.1fm)", p.Lat, p.Lon, p.Alt)
}

// Radians returns latitude and longitude converted to radians.
func (p LatLon) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Haversine returns the great-circle ground distance in metres between two
// coordinates, ignoring altitude. This mirrors the paper's post-processing:
// "the distance is calculated applying the Haversine formula to GPS
// coordinates" (Section 3.1).
func Haversine(a, b LatLon) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Distance3D returns the slant distance in metres between two coordinates,
// combining the Haversine ground distance with the altitude difference.
// UAV-to-UAV link budgets use the slant range, not the ground range.
func Distance3D(a, b LatLon) float64 {
	g := Haversine(a, b)
	dz := b.Alt - a.Alt
	return math.Hypot(g, dz)
}

// InitialBearing returns the initial great-circle bearing from a to b in
// radians, measured clockwise from true north in [0, 2π).
func InitialBearing(a, b LatLon) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	th := math.Atan2(y, x)
	if th < 0 {
		th += 2 * math.Pi
	}
	return th
}

// Offset returns the coordinate reached by travelling dist metres from p on
// the given initial bearing (radians clockwise from north), keeping altitude.
// It uses the spherical direct geodesic, exact for the sphere model.
func Offset(p LatLon, bearing, dist float64) LatLon {
	lat1, lon1 := p.Radians()
	ad := dist / EarthRadiusMeters
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(bearing))
	lon2 := lon1 + math.Atan2(
		math.Sin(bearing)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*math.Sin(lat2),
	)
	return LatLon{Lat: lat2 * 180 / math.Pi, Lon: normalizeLonDeg(lon2 * 180 / math.Pi), Alt: p.Alt}
}

func normalizeLonDeg(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Frame is a local East-North-Up tangent frame anchored at an origin
// coordinate. Within the sub-kilometre extents of the paper's test fields
// the flat-earth approximation error is below GPS noise, so all flight
// dynamics run in ENU and convert back to LatLon only for GPS traces.
type Frame struct {
	origin          LatLon
	metersPerDegLat float64
	metersPerDegLon float64
}

// NewFrame anchors an ENU frame at origin.
func NewFrame(origin LatLon) *Frame {
	lat, _ := origin.Radians()
	mPerDeg := EarthRadiusMeters * math.Pi / 180
	return &Frame{
		origin:          origin,
		metersPerDegLat: mPerDeg,
		metersPerDegLon: mPerDeg * math.Cos(lat),
	}
}

// Origin returns the frame anchor.
func (f *Frame) Origin() LatLon { return f.origin }

// ToENU converts a geodetic coordinate into frame-local ENU metres.
func (f *Frame) ToENU(p LatLon) Vec3 {
	return Vec3{
		X: (p.Lon - f.origin.Lon) * f.metersPerDegLon,
		Y: (p.Lat - f.origin.Lat) * f.metersPerDegLat,
		Z: p.Alt - f.origin.Alt,
	}
}

// ToLatLon converts frame-local ENU metres back to a geodetic coordinate.
func (f *Frame) ToLatLon(v Vec3) LatLon {
	return LatLon{
		Lat: f.origin.Lat + v.Y/f.metersPerDegLat,
		Lon: f.origin.Lon + v.X/f.metersPerDegLon,
		Alt: f.origin.Alt + v.Z,
	}
}
