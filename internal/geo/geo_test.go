package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const zurichLat, zurichLon = 47.3769, 8.5417

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineZeroDistance(t *testing.T) {
	p := LatLon{Lat: zurichLat, Lon: zurichLon, Alt: 80}
	if d := Haversine(p, p); d != 0 {
		t.Fatalf("Haversine(p,p) = %v, want 0", d)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// One degree of latitude is ~111.19 km on the sphere model.
	a := LatLon{Lat: 0, Lon: 0}
	b := LatLon{Lat: 1, Lon: 0}
	got := Haversine(a, b)
	want := EarthRadiusMeters * math.Pi / 180
	if !almostEqual(got, want, 1) {
		t.Fatalf("Haversine 1° lat = %.1f m, want %.1f m", got, want)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	a := LatLon{Lat: zurichLat, Lon: zurichLon}
	b := LatLon{Lat: zurichLat + 0.001, Lon: zurichLon + 0.002}
	if d1, d2 := Haversine(a, b), Haversine(b, a); !almostEqual(d1, d2, 1e-9) {
		t.Fatalf("Haversine not symmetric: %v vs %v", d1, d2)
	}
}

func TestDistance3DIncludesAltitude(t *testing.T) {
	a := LatLon{Lat: zurichLat, Lon: zurichLon, Alt: 80}
	b := LatLon{Lat: zurichLat, Lon: zurichLon, Alt: 100}
	if d := Distance3D(a, b); !almostEqual(d, 20, 1e-9) {
		t.Fatalf("vertical-only Distance3D = %v, want 20", d)
	}
	// The paper separates airplanes by 20 m of altitude; slant range at a
	// 60 m ground offset must exceed the ground range.
	c := Offset(a, math.Pi/2, 60)
	c.Alt = 100
	d3 := Distance3D(a, c)
	if d3 <= 60 || !almostEqual(d3, math.Hypot(60, 20), 0.2) {
		t.Fatalf("slant range = %v, want ≈ %v", d3, math.Hypot(60, 20))
	}
}

func TestOffsetRoundTripDistance(t *testing.T) {
	p := LatLon{Lat: zurichLat, Lon: zurichLon, Alt: 10}
	for _, dist := range []float64{20, 80, 300, 400} {
		for _, brg := range []float64{0, math.Pi / 3, math.Pi, 3 * math.Pi / 2} {
			q := Offset(p, brg, dist)
			if got := Haversine(p, q); !almostEqual(got, dist, 0.01) {
				t.Errorf("Offset(%v, %.2f, %v) round-trip distance %v", p, brg, dist, got)
			}
		}
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	p := LatLon{Lat: zurichLat, Lon: zurichLon}
	cases := []struct {
		brg  float64
		name string
	}{
		{0, "north"}, {math.Pi / 2, "east"}, {math.Pi, "south"}, {3 * math.Pi / 2, "west"},
	}
	for _, c := range cases {
		q := Offset(p, c.brg, 100)
		got := InitialBearing(p, q)
		diff := math.Abs(got - c.brg)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		if diff > 0.01 {
			t.Errorf("%s: bearing %v, want %v", c.name, got, c.brg)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := NewFrame(LatLon{Lat: zurichLat, Lon: zurichLon, Alt: 0})
	for _, v := range []Vec3{{}, {100, 0, 80}, {-250, 400, 10}, {3, -3, -1}} {
		p := f.ToLatLon(v)
		back := f.ToENU(p)
		if back.Dist(v) > 1e-6 {
			t.Errorf("frame round trip %v -> %v -> %v", v, p, back)
		}
	}
}

func TestFrameENUMatchesHaversine(t *testing.T) {
	f := NewFrame(LatLon{Lat: zurichLat, Lon: zurichLon, Alt: 0})
	q := f.ToLatLon(Vec3{X: 300, Y: 400})
	hav := Haversine(f.Origin(), q)
	if !almostEqual(hav, 500, 0.5) {
		t.Fatalf("ENU (300,400) should be ≈500 m away, Haversine says %v", hav)
	}
}

func TestVecBasics(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v", v.Norm())
	}
	if v.NormXY() != 5 {
		t.Fatalf("NormXY = %v", v.NormXY())
	}
	if u := v.Unit(); !almostEqual(u.Norm(), 1, 1e-12) {
		t.Fatalf("Unit norm = %v", u.Norm())
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Fatal("Unit of zero vector should be zero")
	}
	if got := v.Scale(2); got != (Vec3{6, 8, 0}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.ClampNorm(2.5); !almostEqual(got.Norm(), 2.5, 1e-12) {
		t.Fatalf("ClampNorm = %v", got.Norm())
	}
	if got := v.ClampNorm(10); got != v {
		t.Fatalf("ClampNorm should not grow: %v", got)
	}
}

func TestHeadingRoundTrip(t *testing.T) {
	for _, h := range []float64{0, 0.5, math.Pi / 2, 2, math.Pi, 5} {
		v := FromHeadingXY(h)
		got := v.HeadingXY()
		diff := math.Abs(got - h)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		if diff > 1e-9 {
			t.Errorf("heading %v -> %v", h, got)
		}
	}
}

func TestRelativeSpeed(t *testing.T) {
	// Head-on approach at 5 m/s each: closing speed 10 m/s.
	a, b := Vec3{0, 0, 0}, Vec3{100, 0, 0}
	va, vb := Vec3{5, 0, 0}, Vec3{-5, 0, 0}
	if got := RelativeSpeed(a, va, b, vb); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("head-on closing speed = %v, want 10", got)
	}
	// Pure tangential motion: zero range rate.
	vb = Vec3{0, 7, 0}
	if got := RelativeSpeed(a, Vec3{}, b, vb); !almostEqual(got, 0, 1e-9) {
		t.Fatalf("tangential range rate = %v, want 0", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Vec3{0, 0, 0}, Vec3{10, -10, 4}
	if got := Lerp(a, b, 0); got != a {
		t.Fatalf("Lerp t=0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Fatalf("Lerp t=1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != (Vec3{5, -5, 2}) {
		t.Fatalf("Lerp t=0.5 = %v", got)
	}
}

// Property: Haversine satisfies the triangle inequality on random nearby
// coordinates (the regime the simulator uses).
func TestHaversineTriangleInequalityProperty(t *testing.T) {
	f := func(dx1, dy1, dx2, dy2 int16) bool {
		base := LatLon{Lat: zurichLat, Lon: zurichLon}
		p := Offset(base, 0, float64(dx1%500))
		p = Offset(p, math.Pi/2, float64(dy1%500))
		q := Offset(base, 0, float64(dx2%500))
		q = Offset(q, math.Pi/2, float64(dy2%500))
		ab := Haversine(base, p)
		bc := Haversine(p, q)
		ac := Haversine(base, q)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ENU round trip is stable for any offset within a few km.
func TestFrameRoundTripProperty(t *testing.T) {
	frame := NewFrame(LatLon{Lat: zurichLat, Lon: zurichLon})
	f := func(x, y, z int16) bool {
		v := Vec3{float64(x), float64(y), float64(z % 500)}
		return frame.ToENU(frame.ToLatLon(v)).Dist(v) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
