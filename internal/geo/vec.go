package geo

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector in a local ENU frame: X east, Y north, Z up, metres
// (or metres/second when used as a velocity).
type Vec3 struct {
	X, Y, Z float64
}

// String renders the vector with centimetre precision.
func (v Vec3) String() string { return fmt.Sprintf("[%.2f %.2f %.2f]", v.X, v.Y, v.Z) }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormXY returns the length of the horizontal (east-north) component.
func (v Vec3) NormXY() float64 { return math.Hypot(v.X, v.Y) }

// Unit returns v normalized to length 1; the zero vector is returned
// unchanged (there is no meaningful direction to report).
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistXY returns the horizontal distance between v and w.
func (v Vec3) DistXY(w Vec3) float64 { return v.Sub(w).NormXY() }

// HeadingXY returns the horizontal heading of v in radians clockwise from
// north (the aviation convention), in [0, 2π). A zero horizontal component
// yields heading 0.
func (v Vec3) HeadingXY() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	th := math.Atan2(v.X, v.Y)
	if th < 0 {
		th += 2 * math.Pi
	}
	return th
}

// FromHeadingXY builds a horizontal unit vector pointing along the given
// heading (radians clockwise from north).
func FromHeadingXY(heading float64) Vec3 {
	return Vec3{X: math.Sin(heading), Y: math.Cos(heading)}
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func Lerp(v, w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// ClampNorm returns v shortened to at most maxNorm, preserving direction.
func (v Vec3) ClampNorm(maxNorm float64) Vec3 {
	n := v.Norm()
	if n <= maxNorm || n == 0 {
		return v
	}
	return v.Scale(maxNorm / n)
}

// RelativeSpeed returns the magnitude of the rate of change of the distance
// between two moving points: the projection of the relative velocity onto
// the line between them. This is the "relative speed" that degrades the
// aerial channel in the paper's Fig. 7 study.
func RelativeSpeed(posA, velA, posB, velB Vec3) float64 {
	sep := posB.Sub(posA)
	d := sep.Norm()
	if d == 0 {
		// Coincident points: fall back to the full relative velocity.
		return velB.Sub(velA).Norm()
	}
	return math.Abs(velB.Sub(velA).Dot(sep) / d)
}
