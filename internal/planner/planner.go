// Package planner implements the paper's centralized mission planner
// (Sections 3 and 5): a ground-station process that tracks every UAV's
// position and payload state through telemetry and, when a UAV reports a
// batch ready for delivery, computes the delayed-gratification rendezvous
// — the waypoint at distance dopt from the receiver — and commands the
// ferry there.
package planner

import (
	"fmt"
	"math"
	"sort"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/telemetry"
)

// VehicleState is the planner's latest knowledge of one UAV.
type VehicleState struct {
	ID       string
	Time     float64
	Position geo.Vec3
	Velocity geo.Vec3
	Battery  float64
	HasData  bool
	DataMB   float64
}

// Decision is the planner's output for one ferrying episode.
type Decision struct {
	FerryID    string
	ReceiverID string
	// D0M is the ferry-receiver distance when the decision was made.
	D0M float64
	// Optimum carries dopt and the expected utility/delay.
	Optimum core.Optimum
	// Rendezvous is the waypoint at distance dopt from the receiver, on
	// the ferry-receiver line.
	Rendezvous geo.Vec3
}

// Config parameterizes the planner's optimization.
type Config struct {
	// Speed and failure-rate used in the utility model; Throughput is the
	// calibrated hover law s(d).
	Scenario core.Scenario
	// LinkRangeM is the distance at which the data link becomes usable
	// (batches are only planned when the pair is within this range).
	LinkRangeM float64
}

// Planner is the central decision maker.
type Planner struct {
	cfg    Config
	states map[string]VehicleState
	// Decisions records every rendezvous computed (latest first served).
	Decisions []Decision
}

// New builds a planner. The scenario's D0M and MdataBytes fields are
// overwritten per decision; its speed, failure model, throughput law and
// minimum distance are the planning parameters.
func New(cfg Config) (*Planner, error) {
	if cfg.Scenario.Throughput == nil {
		return nil, fmt.Errorf("planner: scenario needs a throughput model")
	}
	if cfg.Scenario.SpeedMPS <= 0 {
		return nil, fmt.Errorf("planner: scenario speed %v must be positive", cfg.Scenario.SpeedMPS)
	}
	if cfg.LinkRangeM <= 0 {
		return nil, fmt.Errorf("planner: link range %v must be positive", cfg.LinkRangeM)
	}
	return &Planner{cfg: cfg, states: make(map[string]VehicleState)}, nil
}

// Observe ingests one telemetry status beacon.
func (p *Planner) Observe(st telemetry.Status) {
	p.states[st.From] = VehicleState{
		ID:       st.From,
		Time:     st.Time,
		Position: st.Position,
		Velocity: st.Velocity,
		Battery:  st.Battery,
		HasData:  st.HasData,
		DataMB:   st.DataMB,
	}
}

// State returns the latest known state of a UAV.
func (p *Planner) State(id string) (VehicleState, bool) {
	st, ok := p.states[id]
	return st, ok
}

// Known returns the IDs of all tracked vehicles, sorted.
func (p *Planner) Known() []string {
	ids := make([]string, 0, len(p.states))
	for id := range p.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// PlanDelivery computes the rendezvous for a ferry that has data, toward a
// receiver. It returns ok=false when either vehicle is unknown, the ferry
// has no data, or the pair is outside link range (no decision to make
// yet).
func (p *Planner) PlanDelivery(ferryID, receiverID string) (Decision, bool, error) {
	ferry, ok := p.states[ferryID]
	if !ok {
		return Decision{}, false, fmt.Errorf("planner: unknown ferry %q", ferryID)
	}
	recv, ok := p.states[receiverID]
	if !ok {
		return Decision{}, false, fmt.Errorf("planner: unknown receiver %q", receiverID)
	}
	if !ferry.HasData || ferry.DataMB <= 0 {
		return Decision{}, false, nil
	}
	d0 := ferry.Position.Dist(recv.Position)
	if d0 > p.cfg.LinkRangeM {
		return Decision{}, false, nil
	}

	sc := p.cfg.Scenario
	// Coincident vehicles have no shipping decision left to make; clamp
	// to a nominal epsilon so the optimizer degenerates to "transmit now".
	sc.D0M = math.Max(d0, 1e-3)
	sc.MdataBytes = ferry.DataMB * 1e6
	if sc.MinDistanceM == 0 {
		sc.MinDistanceM = core.MinSeparationM
	}
	opt, err := sc.Optimize()
	if err != nil {
		return Decision{}, false, fmt.Errorf("planner: %w", err)
	}
	if d0 < sc.MinDistanceM {
		opt.DoptM = d0
		opt.TransmitImmediately = true
	}

	// Rendezvous: the point at distance dopt from the receiver along the
	// receiver→ferry direction, at the ferry's altitude.
	dir := ferry.Position.Sub(recv.Position).Unit()
	if dir == (geo.Vec3{}) {
		dir = geo.Vec3{X: 1}
	}
	rv := recv.Position.Add(dir.Scale(opt.DoptM))
	rv.Z = ferry.Position.Z

	dec := Decision{
		FerryID:    ferryID,
		ReceiverID: receiverID,
		D0M:        d0,
		Optimum:    opt,
		Rendezvous: rv,
	}
	p.Decisions = append(p.Decisions, dec)
	return dec, true, nil
}

// WaypointFor converts a decision into the telemetry command for the ferry.
func (d Decision) WaypointFor(speed float64) telemetry.Waypoint {
	return telemetry.Waypoint{
		To:       d.FerryID,
		Target:   d.Rendezvous,
		SpeedMPS: speed,
		Hold:     true,
	}
}
