// Package planner implements the paper's centralized mission planner
// (Sections 3 and 5): a ground-station process that tracks every UAV's
// position and payload state through telemetry and, when a UAV reports a
// batch ready for delivery, computes the delayed-gratification rendezvous
// — the waypoint at distance dopt from the receiver — and commands the
// ferry there.
package planner

import (
	"fmt"
	"math"
	"sort"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/telemetry"
)

// VehicleState is the planner's latest knowledge of one UAV.
type VehicleState struct {
	ID       string
	Time     float64
	Position geo.Vec3
	Velocity geo.Vec3
	Battery  float64
	HasData  bool
	DataMB   float64
}

// Decision is the planner's output for one ferrying episode.
type Decision struct {
	FerryID    string
	ReceiverID string
	// D0M is the ferry-receiver distance when the decision was made.
	D0M float64
	// Optimum carries dopt and the expected utility/delay.
	Optimum core.Optimum
	// Rendezvous is the waypoint at distance dopt from the receiver, on
	// the ferry-receiver line.
	Rendezvous geo.Vec3
	// Degraded marks a decision made on aged telemetry: the planner fell
	// back to transmit-now instead of trusting a stale rendezvous.
	Degraded bool
}

// Config parameterizes the planner's optimization.
type Config struct {
	// Speed and failure-rate used in the utility model; Throughput is the
	// calibrated hover law s(d).
	Scenario core.Scenario
	// LinkRangeM is the distance at which the data link becomes usable
	// (batches are only planned when the pair is within this range).
	LinkRangeM float64
	// StaleAfterS ages out telemetry: a vehicle silent for longer than
	// this is treated as unreliable by PlanDeliveryAt, which then falls
	// back to transmit-now rather than flying deeper on stale geometry.
	// Zero disables staleness tracking (the seed behaviour).
	StaleAfterS float64
	// Optimizer, when non-nil, answers each per-decision optimization in
	// place of core.Scenario.Optimize — the policy-engine fast path
	// (policy.Engine.OptimizeScenario matches this signature). The planner
	// never inspects how the answer was produced; a nil Optimizer solves
	// exactly with an internal per-scenario memo.
	Optimizer func(core.Scenario) (core.Optimum, error)
}

// memoKey identifies one exact optimization within a planner's fixed
// configuration: only the link-opening distance and batch size vary per
// decision (speed, failure model, throughput law and floor are planning
// parameters).
type memoKey struct {
	d0M        float64
	mdataBytes float64
}

// memoCap bounds the exact-path memo; at capacity the memo resets rather
// than grow without bound (replanning workloads cycle a small key set, so
// a full reset is rare and cheap).
const memoCap = 1024

// Planner is the central decision maker.
type Planner struct {
	cfg    Config
	states map[string]VehicleState
	memo   map[memoKey]core.Optimum
	// Decisions records every rendezvous computed (latest first served).
	Decisions []Decision
	// StaleDrops counts status beacons rejected for arriving out of
	// order (an older timestamp than the state already held).
	StaleDrops int64
	// MemoHits counts per-decision optimizations answered from the
	// planner's exact-path memo (nil Config.Optimizer only).
	MemoHits int64
}

// New builds a planner. The scenario's D0M and MdataBytes fields are
// overwritten per decision; its speed, failure model, throughput law and
// minimum distance are the planning parameters.
func New(cfg Config) (*Planner, error) {
	if cfg.Scenario.Throughput == nil {
		return nil, fmt.Errorf("planner: scenario needs a throughput model")
	}
	if cfg.Scenario.SpeedMPS <= 0 {
		return nil, fmt.Errorf("planner: scenario speed %v must be positive", cfg.Scenario.SpeedMPS)
	}
	if cfg.LinkRangeM <= 0 {
		return nil, fmt.Errorf("planner: link range %v must be positive", cfg.LinkRangeM)
	}
	return &Planner{
		cfg:    cfg,
		states: make(map[string]VehicleState),
		memo:   make(map[memoKey]core.Optimum),
	}, nil
}

// optimize answers one per-decision optimization: through the configured
// Optimizer when set (the policy-engine fast path), otherwise exactly,
// memoized on the scenario values that vary per decision.
func (p *Planner) optimize(sc core.Scenario) (core.Optimum, error) {
	if p.cfg.Optimizer != nil {
		return p.cfg.Optimizer(sc)
	}
	key := memoKey{d0M: sc.D0M, mdataBytes: sc.MdataBytes}
	if opt, ok := p.memo[key]; ok {
		p.MemoHits++
		return opt, nil
	}
	opt, err := sc.Optimize()
	if err != nil {
		return core.Optimum{}, err
	}
	if len(p.memo) >= memoCap {
		p.memo = make(map[memoKey]core.Optimum)
	}
	p.memo[key] = opt
	return opt, nil
}

// Observe ingests one telemetry status beacon. Beacons that arrive out of
// order — an earlier timestamp than the state already held — are dropped
// and counted in StaleDrops: a delayed or replayed beacon must never roll
// the planner's picture of a vehicle backwards.
func (p *Planner) Observe(st telemetry.Status) {
	if cur, ok := p.states[st.From]; ok && st.Time < cur.Time {
		p.StaleDrops++
		return
	}
	p.states[st.From] = VehicleState{
		ID:       st.From,
		Time:     st.Time,
		Position: st.Position,
		Velocity: st.Velocity,
		Battery:  st.Battery,
		HasData:  st.HasData,
		DataMB:   st.DataMB,
	}
}

// State returns the latest known state of a UAV.
func (p *Planner) State(id string) (VehicleState, bool) {
	st, ok := p.states[id]
	return st, ok
}

// Forget drops all state for a vehicle — called when a UAV is confirmed
// lost so stale geometry cannot anchor future rendezvous.
func (p *Planner) Forget(id string) {
	delete(p.states, id)
}

// Stale reports whether a vehicle's telemetry has aged out at the given
// time. Unknown vehicles are stale by definition; with StaleAfterS zero
// nothing known ever goes stale.
func (p *Planner) Stale(id string, now float64) bool {
	st, ok := p.states[id]
	if !ok {
		return true
	}
	return p.cfg.StaleAfterS > 0 && now-st.Time > p.cfg.StaleAfterS
}

// Nearest returns the candidate vehicle with known state closest to the
// given position, skipping candidates that are unknown or stale at the
// given time. ok is false when no candidate qualifies.
func (p *Planner) Nearest(pos geo.Vec3, candidates []string, now float64) (string, bool) {
	best, bestD := "", math.Inf(1)
	for _, id := range candidates {
		st, ok := p.states[id]
		if !ok || p.Stale(id, now) {
			continue
		}
		if d := pos.Dist(st.Position); d < bestD {
			best, bestD = id, d
		}
	}
	return best, best != ""
}

// Known returns the IDs of all tracked vehicles, sorted.
func (p *Planner) Known() []string {
	ids := make([]string, 0, len(p.states))
	for id := range p.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// PlanDelivery computes the rendezvous for a ferry that has data, toward a
// receiver. It returns ok=false when either vehicle is unknown, the ferry
// has no data, or the pair is outside link range (no decision to make
// yet).
func (p *Planner) PlanDelivery(ferryID, receiverID string) (Decision, bool, error) {
	return p.plan(ferryID, receiverID, false)
}

// PlanDeliveryAt is PlanDelivery with staleness awareness: when either
// side's telemetry has aged out at the given time (Config.StaleAfterS),
// the planner does not trust the geometry enough to command a deep
// rendezvous and degrades to transmit-now at the last known distance.
func (p *Planner) PlanDeliveryAt(ferryID, receiverID string, now float64) (Decision, bool, error) {
	degraded := p.cfg.StaleAfterS > 0 && (p.Stale(ferryID, now) || p.Stale(receiverID, now))
	return p.plan(ferryID, receiverID, degraded)
}

func (p *Planner) plan(ferryID, receiverID string, degraded bool) (Decision, bool, error) {
	ferry, ok := p.states[ferryID]
	if !ok {
		return Decision{}, false, fmt.Errorf("planner: unknown ferry %q", ferryID)
	}
	recv, ok := p.states[receiverID]
	if !ok {
		return Decision{}, false, fmt.Errorf("planner: unknown receiver %q", receiverID)
	}
	if !ferry.HasData || ferry.DataMB <= 0 {
		return Decision{}, false, nil
	}
	d0 := ferry.Position.Dist(recv.Position)
	if d0 > p.cfg.LinkRangeM {
		return Decision{}, false, nil
	}

	sc := p.cfg.Scenario
	// Coincident vehicles have no shipping decision left to make; clamp
	// to a nominal epsilon so the optimizer degenerates to "transmit now".
	sc.D0M = math.Max(d0, 1e-3)
	sc.MdataBytes = ferry.DataMB * 1e6
	if sc.MinDistanceM == 0 {
		sc.MinDistanceM = core.MinSeparationM
	}
	opt, err := p.optimize(sc)
	if err != nil {
		return Decision{}, false, fmt.Errorf("planner: %w", err)
	}
	if d0 < sc.MinDistanceM {
		opt.DoptM = d0
		opt.TransmitImmediately = true
	}
	if degraded {
		// Stale picture: holding position and transmitting from d0 risks
		// nothing on geometry the planner can no longer vouch for.
		opt.DoptM = d0
		opt.TransmitImmediately = true
	}

	// Rendezvous: the point at distance dopt from the receiver along the
	// receiver→ferry direction, at the ferry's altitude.
	dir := ferry.Position.Sub(recv.Position).Unit()
	if dir == (geo.Vec3{}) {
		dir = geo.Vec3{X: 1}
	}
	rv := recv.Position.Add(dir.Scale(opt.DoptM))
	rv.Z = ferry.Position.Z

	dec := Decision{
		FerryID:    ferryID,
		ReceiverID: receiverID,
		D0M:        d0,
		Optimum:    opt,
		Rendezvous: rv,
		Degraded:   degraded,
	}
	p.Decisions = append(p.Decisions, dec)
	return dec, true, nil
}

// WaypointFor converts a decision into the telemetry command for the ferry.
func (d Decision) WaypointFor(speed float64) telemetry.Waypoint {
	return telemetry.Waypoint{
		To:       d.FerryID,
		Target:   d.Rendezvous,
		SpeedMPS: speed,
		Hold:     true,
	}
}
