package planner

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/telemetry"
)

func quadConfig() Config {
	m, _ := failure.NewModel(failure.QuadrocopterRho)
	return Config{
		Scenario: core.Scenario{
			SpeedMPS:     4.5,
			Failure:      m,
			Throughput:   core.QuadrocopterFit(),
			MinDistanceM: core.MinSeparationM,
			// D0M/MdataBytes are filled per decision; set placeholders so
			// Validate-driven paths in core see a sane scenario.
			D0M:        1,
			MdataBytes: 1,
		},
		LinkRangeM: 120,
	}
}

func newPlanner(t *testing.T) *Planner {
	t.Helper()
	p, err := New(quadConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	cfg := quadConfig()
	cfg.Scenario.Throughput = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("nil throughput accepted")
	}
	cfg = quadConfig()
	cfg.Scenario.SpeedMPS = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero speed accepted")
	}
	cfg = quadConfig()
	cfg.LinkRangeM = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero range accepted")
	}
}

func TestObserveAndKnown(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "b", Time: 1, Position: geo.Vec3{X: 5}})
	p.Observe(telemetry.Status{From: "a", Time: 2})
	p.Observe(telemetry.Status{From: "b", Time: 3, Position: geo.Vec3{X: 9}})
	ids := p.Known()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("known = %v", ids)
	}
	st, ok := p.State("b")
	if !ok || st.Time != 3 || st.Position.X != 9 {
		t.Fatalf("state not updated: %+v", st)
	}
	if _, ok := p.State("ghost"); ok {
		t.Fatal("ghost state")
	}
}

func TestPlanDeliveryHappyPath(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: 80, Z: 10}, HasData: true, DataMB: 56.2})
	p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})
	dec, ok, err := p.PlanDelivery("ferry", "recv")
	if err != nil || !ok {
		t.Fatalf("plan failed: %v %v", ok, err)
	}
	if math.Abs(dec.D0M-80) > 1e-9 {
		t.Fatalf("d0 = %v", dec.D0M)
	}
	if dec.Optimum.DoptM < core.MinSeparationM || dec.Optimum.DoptM > 80 {
		t.Fatalf("dopt = %v", dec.Optimum.DoptM)
	}
	// The rendezvous sits at dopt from the receiver along the line.
	gotD := dec.Rendezvous.Sub(geo.Vec3{Z: 10}).Norm()
	if math.Abs(gotD-dec.Optimum.DoptM) > 1e-6 {
		t.Fatalf("rendezvous at %v, want %v from receiver", gotD, dec.Optimum.DoptM)
	}
	if dec.Rendezvous.Z != 10 {
		t.Fatalf("rendezvous altitude = %v", dec.Rendezvous.Z)
	}
	if len(p.Decisions) != 1 {
		t.Fatal("decision not recorded")
	}
	wp := dec.WaypointFor(4.5)
	if wp.To != "ferry" || !wp.Hold || wp.Target != dec.Rendezvous {
		t.Fatalf("waypoint = %+v", wp)
	}
}

func TestPlanDeliveryPreconditions(t *testing.T) {
	p := newPlanner(t)
	// Unknown vehicles are errors.
	if _, _, err := p.PlanDelivery("x", "y"); err == nil {
		t.Fatal("unknown ferry accepted")
	}
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: 80}})
	if _, _, err := p.PlanDelivery("ferry", "y"); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	// No data: not ready, no error.
	p.Observe(telemetry.Status{From: "recv"})
	if _, ok, err := p.PlanDelivery("ferry", "recv"); ok || err != nil {
		t.Fatalf("no-data plan: ok=%v err=%v", ok, err)
	}
	// Out of link range: not ready.
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: 500}, HasData: true, DataMB: 10})
	if _, ok, err := p.PlanDelivery("ferry", "recv"); ok || err != nil {
		t.Fatalf("out-of-range plan: ok=%v err=%v", ok, err)
	}
}

func TestPlanWithCoincidentVehicles(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{Z: 10}, HasData: true, DataMB: 5})
	p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})
	dec, ok, err := p.PlanDelivery("ferry", "recv")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("coincident plan should still produce a decision")
	}
	// d0 = 0 → already at the receiver → transmit immediately.
	if !dec.Optimum.TransmitImmediately {
		t.Fatalf("coincident vehicles should transmit immediately: %+v", dec.Optimum)
	}
}

func TestObserveRejectsOutOfOrder(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "a", Time: 10, Position: geo.Vec3{X: 1}})
	// A delayed beacon with an older timestamp must not roll state back.
	p.Observe(telemetry.Status{From: "a", Time: 4, Position: geo.Vec3{X: 99}})
	st, ok := p.State("a")
	if !ok || st.Time != 10 || st.Position.X != 1 {
		t.Fatalf("stale beacon overwrote state: %+v", st)
	}
	if p.StaleDrops != 1 {
		t.Fatalf("StaleDrops = %d, want 1", p.StaleDrops)
	}
	// Equal timestamps are a refresh, not a reordering.
	p.Observe(telemetry.Status{From: "a", Time: 10, Position: geo.Vec3{X: 2}})
	st, _ = p.State("a")
	if st.Position.X != 2 {
		t.Fatalf("same-time beacon dropped: %+v", st)
	}
	if p.StaleDrops != 1 {
		t.Fatalf("StaleDrops = %d after same-time beacon", p.StaleDrops)
	}
}

func TestForget(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "a", Time: 1})
	p.Forget("a")
	if _, ok := p.State("a"); ok {
		t.Fatal("forgotten vehicle still known")
	}
	// After Forget, an old-timestamp beacon is fresh again.
	p.Observe(telemetry.Status{From: "a", Time: 0.5})
	if _, ok := p.State("a"); !ok {
		t.Fatal("vehicle not re-learned after Forget")
	}
}

func TestStaleness(t *testing.T) {
	cfg := quadConfig()
	cfg.StaleAfterS = 5
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(telemetry.Status{From: "a", Time: 10})
	if p.Stale("a", 12) {
		t.Fatal("fresh state reported stale")
	}
	if !p.Stale("a", 16) {
		t.Fatal("silent vehicle not aged out")
	}
	if !p.Stale("ghost", 0) {
		t.Fatal("unknown vehicle not stale")
	}
	// StaleAfterS = 0 disables aging entirely.
	p2 := newPlanner(t)
	p2.Observe(telemetry.Status{From: "a", Time: 0})
	if p2.Stale("a", 1e9) {
		t.Fatal("aging active with StaleAfterS = 0")
	}
}

func TestPlanDeliveryAtDegradesOnStaleTelemetry(t *testing.T) {
	cfg := quadConfig()
	cfg.StaleAfterS = 5
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(telemetry.Status{From: "ferry", Time: 0, Position: geo.Vec3{X: 80, Z: 10}, HasData: true, DataMB: 56.2})
	p.Observe(telemetry.Status{From: "recv", Time: 0, Position: geo.Vec3{Z: 10}})

	// Fresh telemetry: the normal delayed-gratification rendezvous.
	dec, ok, err := p.PlanDeliveryAt("ferry", "recv", 2)
	if err != nil || !ok {
		t.Fatalf("fresh plan failed: %v %v", ok, err)
	}
	if dec.Degraded || dec.Optimum.TransmitImmediately {
		t.Fatalf("fresh plan degraded: %+v", dec)
	}
	if dec.Optimum.DoptM >= dec.D0M {
		t.Fatalf("fresh plan did not move in: dopt %v, d0 %v", dec.Optimum.DoptM, dec.D0M)
	}

	// The receiver has been silent for 10 s: fall back to transmit-now.
	dec, ok, err = p.PlanDeliveryAt("ferry", "recv", 10)
	if err != nil || !ok {
		t.Fatalf("stale plan failed: %v %v", ok, err)
	}
	if !dec.Degraded || !dec.Optimum.TransmitImmediately {
		t.Fatalf("stale plan not degraded: %+v", dec)
	}
	if math.Abs(dec.Optimum.DoptM-dec.D0M) > 1e-9 {
		t.Fatalf("degraded plan still commands a rendezvous: dopt %v, d0 %v", dec.Optimum.DoptM, dec.D0M)
	}
}

func TestNearest(t *testing.T) {
	cfg := quadConfig()
	cfg.StaleAfterS = 5
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(telemetry.Status{From: "r1", Time: 10, Position: geo.Vec3{X: 100}})
	p.Observe(telemetry.Status{From: "r2", Time: 10, Position: geo.Vec3{X: 40}})
	p.Observe(telemetry.Status{From: "r3", Time: 1, Position: geo.Vec3{X: 10}}) // stale at t=10
	id, ok := p.Nearest(geo.Vec3{}, []string{"r1", "r2", "r3", "ghost"}, 10)
	if !ok || id != "r2" {
		t.Fatalf("nearest = %q ok=%v, want r2 (r3 stale, ghost unknown)", id, ok)
	}
	if _, ok := p.Nearest(geo.Vec3{}, []string{"ghost"}, 10); ok {
		t.Fatal("nearest found among unknowns")
	}
}

// TestPlanMatchesDirectOptimization: the planner's rendezvous equals the
// core optimizer's dopt for the same scenario.
func TestPlanMatchesDirectOptimization(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: 100, Z: 10}, HasData: true, DataMB: 56.2})
	p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})
	dec, ok, err := p.PlanDelivery("ferry", "recv")
	if err != nil || !ok {
		t.Fatal(err)
	}
	sc := core.QuadrocopterBaseline()
	want, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Optimum.DoptM-want.DoptM) > 0.5 {
		t.Fatalf("planner dopt %v vs direct %v", dec.Optimum.DoptM, want.DoptM)
	}
}

func TestMemoization(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: 80, Z: 10}, HasData: true, DataMB: 56.2})
	p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})

	first, ok, err := p.PlanDelivery("ferry", "recv")
	if err != nil || !ok {
		t.Fatalf("plan failed: %v %v", ok, err)
	}
	if p.MemoHits != 0 {
		t.Fatalf("first plan hit the memo (%d)", p.MemoHits)
	}
	// Identical geometry and payload: the second plan must be answered
	// from the memo with an identical optimum.
	second, ok, err := p.PlanDelivery("ferry", "recv")
	if err != nil || !ok {
		t.Fatalf("replan failed: %v %v", ok, err)
	}
	if p.MemoHits != 1 {
		t.Fatalf("MemoHits = %d, want 1", p.MemoHits)
	}
	if second.Optimum != first.Optimum {
		t.Fatal("memoized optimum differs from the computed one")
	}
	// Different payload: a fresh optimization, not a stale memo answer.
	p.Observe(telemetry.Status{From: "ferry", Time: 1, Position: geo.Vec3{X: 80, Z: 10}, HasData: true, DataMB: 10})
	third, ok, err := p.PlanDelivery("ferry", "recv")
	if err != nil || !ok {
		t.Fatalf("third plan failed: %v %v", ok, err)
	}
	if p.MemoHits != 1 {
		t.Fatalf("MemoHits = %d after a different payload, want 1", p.MemoHits)
	}
	if third.Optimum.DoptM == first.Optimum.DoptM {
		t.Fatal("different payload produced the same dopt — memo key too coarse?")
	}
}

func TestMemoCapReset(t *testing.T) {
	p := newPlanner(t)
	p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})
	// Overflow the memo with distinct geometries; the planner must stay
	// correct (the reset is an internal detail) and bounded.
	for i := 0; i < memoCap+10; i++ {
		x := 30 + float64(i%1030)*0.05
		p.Observe(telemetry.Status{From: "ferry", Time: float64(i), Position: geo.Vec3{X: x, Z: 10}, HasData: true, DataMB: 56.2})
		if _, ok, err := p.PlanDelivery("ferry", "recv"); err != nil || !ok {
			t.Fatalf("plan %d failed: %v %v", i, ok, err)
		}
	}
	if len(p.memo) > memoCap {
		t.Fatalf("memo grew past its cap: %d", len(p.memo))
	}
}

func TestOptimizerHook(t *testing.T) {
	cfg := quadConfig()
	calls := 0
	cfg.Optimizer = func(sc core.Scenario) (core.Optimum, error) {
		calls++
		return sc.Optimize()
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(telemetry.Status{From: "ferry", Position: geo.Vec3{X: 80, Z: 10}, HasData: true, DataMB: 56.2})
	p.Observe(telemetry.Status{From: "recv", Position: geo.Vec3{Z: 10}})
	for i := 0; i < 3; i++ {
		if _, ok, err := p.PlanDelivery("ferry", "recv"); err != nil || !ok {
			t.Fatalf("plan failed: %v %v", ok, err)
		}
	}
	if calls != 3 {
		t.Fatalf("optimizer called %d times, want 3 (no memo when hooked)", calls)
	}
	if p.MemoHits != 0 {
		t.Fatalf("MemoHits = %d with an Optimizer configured", p.MemoHits)
	}
}
