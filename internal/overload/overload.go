// Package overload is the survival layer for the decision service: the
// machinery that keeps nowlaterd answering — exactly, approximately, or
// with an honest 429 — when the offered load exceeds what the exact
// optimizer can absorb. The paper's question is time-critical ("now or
// later?"), so a service that queues 180 µs exact solves behind a melted
// run queue is worse than one that sheds or degrades: a stale-but-bounded
// answer arrives in time, a perfect one does not.
//
// Two controls, composed by internal/nlserver:
//
//   - Admission bounds the HTTP layer: a fixed number of in-flight
//     requests plus a short wait queue. A request that would wait longer
//     than the queue-latency bound is shed immediately with a Retry-After
//     hint — queueing delay is the one latency no server can refund.
//   - Breaker guards the exact-optimizer fallback inside the policy
//     engine: a token pool bounds concurrent exact solves, and when
//     demand for tokens saturates (a fallback storm: out-of-grid query
//     floods, regime-boundary clusters), the breaker opens and the engine
//     serves nearest clamped table answers marked Degraded instead.
//     After a cooldown it half-opens, probes a few exact solves, and
//     closes again only when they succeed.
//
// Both types are safe for concurrent use and nil-tolerant: a nil
// *Admission admits everything, a nil *Breaker allows every fallback, so
// callers can wire the controls in unconditionally.
package overload

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// AdmissionConfig tunes the HTTP-layer admission controller.
type AdmissionConfig struct {
	// MaxInFlight is the number of requests served concurrently. ≤ 0
	// selects DefaultAdmissionConfig's value.
	MaxInFlight int
	// MaxQueue is how many requests may wait for an in-flight slot; an
	// arrival beyond it is shed instantly (the queue is already hopeless).
	MaxQueue int
	// MaxWait bounds the time one request may spend queued. A request
	// still waiting when it expires is shed — by then its queueing delay
	// rivals the work itself.
	MaxWait time.Duration
	// RetryAfter is the backoff hint attached to sheds (the HTTP
	// Retry-After header upstream).
	RetryAfter time.Duration
}

// DefaultAdmissionConfig sizes the controller for the decision service:
// table lookups are sub-µs and exact fallbacks ~180 µs, so a small
// multiple of the core count keeps the run queue honest, and a few
// hundred µs of queueing already doubles a fallback's latency.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		MaxInFlight: 8 * runtime.GOMAXPROCS(0),
		MaxQueue:    16 * runtime.GOMAXPROCS(0),
		MaxWait:     5 * time.Millisecond,
		RetryAfter:  time.Second,
	}
}

// withDefaults fills unset fields from DefaultAdmissionConfig.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	d := DefaultAdmissionConfig()
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = d.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxWait <= 0 {
		c.MaxWait = d.MaxWait
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	return c
}

// ShedError reports an admission refusal: the server is saturated and the
// caller should retry no sooner than RetryAfter.
type ShedError struct {
	// Reason is "queue_full" (the wait queue was at capacity on arrival)
	// or "queue_wait" (the request queued for MaxWait without a slot).
	Reason string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Admission is a bounded-concurrency gate with a short latency-bounded
// wait queue. The zero value is unusable; build one with NewAdmission.
// A nil *Admission admits everything.
type Admission struct {
	cfg    AdmissionConfig
	tokens chan struct{}

	waiters  atomic.Int64
	inFlight atomic.Int64

	admitted      atomic.Uint64
	shedQueueFull atomic.Uint64
	shedQueueWait atomic.Uint64
}

// NewAdmission builds an admission controller; zero-valued config fields
// take the defaults.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg = cfg.withDefaults()
	return &Admission{cfg: cfg, tokens: make(chan struct{}, cfg.MaxInFlight)}
}

// Acquire admits the request or refuses it. On admission it returns a
// release function the caller must invoke exactly once when the request
// finishes. On refusal the error is a *ShedError (saturation) or the
// context's error (caller gave up while queued).
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.tokens <- struct{}{}:
	default:
		// No free slot: join the wait queue if it has room.
		if a.waiters.Add(1) > int64(a.cfg.MaxQueue) {
			a.waiters.Add(-1)
			a.shedQueueFull.Add(1)
			return nil, &ShedError{Reason: "queue_full", RetryAfter: a.cfg.RetryAfter}
		}
		timer := time.NewTimer(a.cfg.MaxWait)
		select {
		case a.tokens <- struct{}{}:
			timer.Stop()
			a.waiters.Add(-1)
		case <-timer.C:
			a.waiters.Add(-1)
			a.shedQueueWait.Add(1)
			return nil, &ShedError{Reason: "queue_wait", RetryAfter: a.cfg.RetryAfter}
		case <-ctx.Done():
			timer.Stop()
			a.waiters.Add(-1)
			return nil, ctx.Err()
		}
	}
	a.admitted.Add(1)
	a.inFlight.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			a.inFlight.Add(-1)
			<-a.tokens
		}
	}, nil
}

// RetryAfter returns the configured shed backoff hint (0 for nil).
func (a *Admission) RetryAfter() time.Duration {
	if a == nil {
		return 0
	}
	return a.cfg.RetryAfter
}

// AdmissionStats is a point-in-time snapshot of the controller.
type AdmissionStats struct {
	// InFlight and Waiting are instantaneous gauges.
	InFlight, Waiting int64
	// Admitted counts requests that got a slot.
	Admitted uint64
	// ShedQueueFull and ShedQueueWait count refusals by cause.
	ShedQueueFull, ShedQueueWait uint64
}

// Shed is the total refusals.
func (s AdmissionStats) Shed() uint64 { return s.ShedQueueFull + s.ShedQueueWait }

// Stats snapshots the controller's counters (zero value for nil).
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		InFlight:      a.inFlight.Load(),
		Waiting:       a.waiters.Load(),
		Admitted:      a.admitted.Load(),
		ShedQueueFull: a.shedQueueFull.Load(),
		ShedQueueWait: a.shedQueueWait.Load(),
	}
}
