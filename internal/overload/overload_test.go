package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueue: 1, MaxWait: time.Millisecond})
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().InFlight; got != 2 {
		t.Fatalf("in-flight %d, want 2", got)
	}
	r1()
	r1() // double release must be a no-op, not a token underflow
	r2()
	st := a.Stats()
	if st.InFlight != 0 || st.Admitted != 2 || st.Shed() != 0 {
		t.Fatalf("stats after release: %+v", st)
	}
	// Slots freed: a new acquire succeeds immediately.
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 0, MaxWait: 50 * time.Millisecond, RetryAfter: 2 * time.Second,
	})
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// The single slot is taken and the queue holds nobody: instant shed.
	_, err = a.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.Reason != "queue_full" || shed.RetryAfter != 2*time.Second {
		t.Fatalf("shed %+v", shed)
	}
	if st := a.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdmissionShedsOnQueueWait(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: 20 * time.Millisecond})
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, err = a.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.Reason != "queue_wait" {
		t.Fatalf("reason %q", shed.Reason)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after only %s, want ≈MaxWait", waited)
	}
	if st := a.Stats(); st.ShedQueueWait != 1 || st.Waiting != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdmissionQueuedRequestGetsFreedSlot(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: time.Second})
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			r()
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it queue
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued request never admitted")
	}
}

func TestAdmissionHonorsContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: time.Minute})
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter never returned")
	}
}

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	if st := a.Stats(); st != (AdmissionStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if a.RetryAfter() != 0 {
		t.Fatal("nil retry-after not zero")
	}
}

// TestAdmissionConcurrentCeiling hammers the gate from many goroutines and
// asserts the in-flight ceiling is never pierced.
func TestAdmissionConcurrentCeiling(t *testing.T) {
	const ceiling = 4
	a := NewAdmission(AdmissionConfig{MaxInFlight: ceiling, MaxQueue: 64, MaxWait: 50 * time.Millisecond})
	var wg sync.WaitGroup
	var maxSeen int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				release, err := a.Acquire(context.Background())
				if err != nil {
					continue
				}
				if in := a.Stats().InFlight; in > ceiling {
					t.Errorf("in-flight %d above ceiling %d", in, ceiling)
				} else {
					mu.Lock()
					if in > maxSeen {
						maxSeen = in
					}
					mu.Unlock()
				}
				time.Sleep(100 * time.Microsecond)
				release()
			}
		}()
	}
	wg.Wait()
	if maxSeen == 0 {
		t.Fatal("nothing ever ran")
	}
	if st := a.Stats(); st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}
}
