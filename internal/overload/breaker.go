package overload

import (
	"runtime"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed: exact solves flow, bounded by the token pool.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: a few probe solves are allowed; their outcome
	// decides between closing and reopening.
	BreakerHalfOpen
	// BreakerOpen: every fallback is refused until the cooldown passes.
	BreakerOpen
)

// String returns the metrics label of a state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the exact-fallback circuit breaker.
type BreakerConfig struct {
	// MaxConcurrent bounds simultaneous exact solves. ≤ 0 selects the
	// default (half the cores, at least 2): the exact optimizer is pure
	// CPU, so letting it claim every core starves the sub-µs table path
	// that serves everyone else.
	MaxConcurrent int
	// Window is the tumbling observation window for denial counting.
	Window time.Duration
	// TripDenials opens the breaker when this many fallbacks are denied
	// (or fail) within one Window — the signature of a fallback storm.
	TripDenials int
	// OpenFor is the cooldown an open breaker holds before probing.
	OpenFor time.Duration
	// HalfOpenProbes is how many exact solves the half-open state risks;
	// all must succeed to close the breaker, one failure reopens it.
	HalfOpenProbes int
}

// DefaultBreakerConfig trips after a burst of denied fallbacks well below
// one second of storm, and probes its way back in quarter-second steps.
func DefaultBreakerConfig() BreakerConfig {
	maxc := maxInt(2, runtime.GOMAXPROCS(0)/2)
	return BreakerConfig{
		MaxConcurrent:  maxc,
		Window:         100 * time.Millisecond,
		TripDenials:    50,
		OpenFor:        250 * time.Millisecond,
		HalfOpenProbes: 3,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = d.MaxConcurrent
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.TripDenials <= 0 {
		c.TripDenials = d.TripDenials
	}
	if c.OpenFor <= 0 {
		c.OpenFor = d.OpenFor
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	return c
}

// Breaker is a circuit breaker over a bounded token pool, shaped for the
// policy engine's exact-optimizer fallback: Allow before the solve,
// Record(after) with its outcome. It implements policy.FallbackGate.
// A nil *Breaker allows everything and records nothing.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	active   int // tokens out (granted solves not yet recorded)
	openedAt time.Time
	// tumbling denial window (closed state)
	windowStart   time.Time
	windowDenials int
	// half-open probe bookkeeping
	probesLeft, probeSuccesses int
	// counters
	allowed, denied, opens uint64
}

// NewBreaker builds a breaker; zero-valued config fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// newBreakerAt is the test constructor with an injectable clock.
func newBreakerAt(cfg BreakerConfig, now func() time.Time) *Breaker {
	b := NewBreaker(cfg)
	b.now = now
	return b
}

// Allow reports whether one exact solve may run now. Every true must be
// paired with exactly one Record call.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()

	if b.state == BreakerOpen {
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			b.denied++
			return false
		}
		b.state = BreakerHalfOpen
		b.probesLeft = b.cfg.HalfOpenProbes
		b.probeSuccesses = 0
	}

	switch b.state {
	case BreakerHalfOpen:
		if b.probesLeft > 0 && b.active < b.cfg.MaxConcurrent {
			b.probesLeft--
			b.active++
			b.allowed++
			return true
		}
		b.denied++
		return false
	default: // closed
		if b.active < b.cfg.MaxConcurrent {
			b.active++
			b.allowed++
			return true
		}
		b.denial(now)
		return false
	}
}

// denial books one refused fallback in the tumbling window and trips the
// breaker when the window fills. Callers hold b.mu.
func (b *Breaker) denial(now time.Time) {
	b.denied++
	if now.Sub(b.windowStart) > b.cfg.Window {
		b.windowStart = now
		b.windowDenials = 0
	}
	b.windowDenials++
	if b.windowDenials >= b.cfg.TripDenials {
		b.trip(now)
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.opens++
	b.windowDenials = 0
}

// Record reports the outcome of an allowed solve: ok=false (optimizer
// error) counts like a denial in the closed state and reopens a half-open
// breaker; successes close a half-open breaker once every probe lands.
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.active > 0 {
		b.active--
	}
	now := b.now()
	if !ok {
		if b.state == BreakerHalfOpen {
			b.trip(now)
		} else if b.state == BreakerClosed {
			b.denial(now)
		}
		return
	}
	if b.state == BreakerHalfOpen {
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.windowDenials = 0
		}
	}
}

// BreakerStats is a point-in-time snapshot.
type BreakerStats struct {
	State BreakerState
	// Active is the instantaneous number of granted, unrecorded solves.
	Active int
	// Allowed and Denied count Allow outcomes; Opens counts trips.
	Allowed, Denied, Opens uint64
}

// Stats snapshots the breaker (zero value, state closed, for nil).
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface the cooldown expiry eagerly so metrics do not report "open"
	// forever on an idle server whose storm has passed.
	state := b.state
	if state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		state = BreakerHalfOpen
	}
	return BreakerStats{
		State:   state,
		Active:  b.active,
		Allowed: b.allowed,
		Denied:  b.denied,
		Opens:   b.opens,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
