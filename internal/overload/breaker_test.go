package overload

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func testBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreakerAt(cfg, clk.now), clk
}

var breakerTestCfg = BreakerConfig{
	MaxConcurrent:  2,
	Window:         100 * time.Millisecond,
	TripDenials:    5,
	OpenFor:        250 * time.Millisecond,
	HalfOpenProbes: 2,
}

func TestBreakerBoundsConcurrency(t *testing.T) {
	b, _ := testBreaker(breakerTestCfg)
	if !b.Allow() || !b.Allow() {
		t.Fatal("tokens not granted")
	}
	if b.Allow() {
		t.Fatal("third concurrent solve allowed above MaxConcurrent=2")
	}
	b.Record(true)
	if !b.Allow() {
		t.Fatal("released token not reusable")
	}
	st := b.Stats()
	if st.Active != 2 || st.Allowed != 3 || st.Denied != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBreakerTripsOnDenialStorm(t *testing.T) {
	b, clk := testBreaker(breakerTestCfg)
	// Saturate the pool, then hammer: TripDenials denials inside one
	// window must open the breaker.
	b.Allow()
	b.Allow()
	for i := 0; i < breakerTestCfg.TripDenials; i++ {
		if b.Allow() {
			t.Fatal("saturated pool granted a token")
		}
	}
	if st := b.Stats(); st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("not open after storm: %+v", st)
	}
	// Open: denial even though tokens exist once the in-flight ones land.
	b.Record(true)
	b.Record(true)
	if b.Allow() {
		t.Fatal("open breaker granted a token")
	}

	// Cooldown passes → half-open: exactly HalfOpenProbes probes.
	clk.advance(breakerTestCfg.OpenFor + time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open probes not granted")
	}
	if b.Allow() {
		t.Fatal("more probes than HalfOpenProbes")
	}
	// All probes succeed → closed again.
	b.Record(true)
	b.Record(true)
	if st := b.Stats(); st.State != BreakerClosed {
		t.Fatalf("not closed after successful probes: %+v", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied a token")
	}
	b.Record(true)
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	b, clk := testBreaker(breakerTestCfg)
	b.Allow()
	b.Allow()
	for i := 0; i < breakerTestCfg.TripDenials; i++ {
		b.Allow()
	}
	b.Record(true)
	b.Record(true)
	clk.advance(breakerTestCfg.OpenFor + time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe not granted")
	}
	b.Record(false) // probe failed → straight back to open
	st := b.Stats()
	if st.Opens != 2 {
		t.Fatalf("failed probe did not reopen: %+v", st)
	}
	if b.Allow() {
		t.Fatal("reopened breaker granted a token")
	}
}

func TestBreakerDenialWindowTumbles(t *testing.T) {
	b, clk := testBreaker(breakerTestCfg)
	b.Allow()
	b.Allow()
	// Denials spread across windows must not accumulate into a trip.
	for i := 0; i < 20; i++ {
		b.Allow()
		clk.advance(breakerTestCfg.Window + time.Millisecond)
	}
	if st := b.Stats(); st.State != BreakerClosed || st.Opens != 0 {
		t.Fatalf("slow denial drip tripped the breaker: %+v", st)
	}
}

func TestBreakerSolveFailuresCountTowardTrip(t *testing.T) {
	b, _ := testBreaker(breakerTestCfg)
	for i := 0; i < breakerTestCfg.TripDenials; i++ {
		if !b.Allow() {
			t.Fatalf("allow %d refused", i)
		}
		b.Record(false)
	}
	if st := b.Stats(); st.State != BreakerOpen {
		t.Fatalf("repeated solve failures did not trip: %+v", st)
	}
}

func TestBreakerNilAllowsEverything(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied")
	}
	b.Record(true)
	if st := b.Stats(); st.State != BreakerClosed {
		t.Fatalf("nil stats %+v", st)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.cfg.MaxConcurrent < 2 || b.cfg.TripDenials <= 0 || b.cfg.Window <= 0 ||
		b.cfg.OpenFor <= 0 || b.cfg.HalfOpenProbes <= 0 {
		t.Fatalf("defaults not filled: %+v", b.cfg)
	}
	if got := BreakerOpen.String(); got != "open" {
		t.Fatalf("state label %q", got)
	}
}
