// Package nlwire is the wire contract of the decision service: the JSON
// shapes, endpoint paths, headers and header encodings shared by the
// server (internal/nlserver), the client (internal/nlclient) and the load
// generator (cmd/nowlaterload). Keeping them in one package means the two
// sides cannot drift — a field added here is a field both ends speak.
package nlwire

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"github.com/nowlater/nowlater/internal/policy"
)

// Endpoint paths served by nowlaterd.
const (
	// PathDecide answers one query per POST.
	PathDecide = "/v1/decide"
	// PathBatch answers a JSON array of queries, in order.
	PathBatch = "/v1/decide/batch"
	// PathHealthz is liveness: 200 whenever the process can answer HTTP,
	// table loaded or not.
	PathHealthz = "/healthz"
	// PathReadyz is readiness: 503 until the policy table is serving and
	// again while draining, 200 (with degradation detail) in between.
	PathReadyz = "/readyz"
	// PathMetrics is the Prometheus text exposition.
	PathMetrics = "/metrics"
)

// HeaderDeadlineMS carries the client's remaining deadline budget in
// integer milliseconds. The server clips its per-request timeout to it, so
// work for a caller that will have hung up is never started.
const HeaderDeadlineMS = "X-Deadline-Ms"

// Query is the wire form of one decision request.
type Query struct {
	D0M      float64 `json:"d0_m"`
	SpeedMPS float64 `json:"speed_mps"`
	MdataMB  float64 `json:"mdata_mb"`
	Rho      float64 `json:"rho"`
}

// Policy converts to the engine's query type.
func (q Query) Policy() policy.Query {
	return policy.Query{D0M: q.D0M, SpeedMPS: q.SpeedMPS, MdataMB: q.MdataMB, Rho: q.Rho}
}

// FromPolicy converts an engine query to its wire form.
func FromPolicy(q policy.Query) Query {
	return Query{D0M: q.D0M, SpeedMPS: q.SpeedMPS, MdataMB: q.MdataMB, Rho: q.Rho}
}

// Decision is the wire form of one answered (or refused) query.
type Decision struct {
	DoptM               float64 `json:"dopt_m"`
	Utility             float64 `json:"utility"`
	CommDelayS          float64 `json:"comm_delay_s"`
	Survival            float64 `json:"survival"`
	TransmitImmediately bool    `json:"transmit_immediately"`
	Source              string  `json:"source,omitempty"`
	// Degraded marks a nearest-clamped-table answer served because the
	// exact fallback was gated off under overload.
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
}

// FromDecision converts an engine decision to its wire form.
func FromDecision(d policy.Decision) Decision {
	return Decision{
		DoptM:               d.DoptM,
		Utility:             d.Utility,
		CommDelayS:          d.CommDelay,
		Survival:            d.Survival,
		TransmitImmediately: d.TransmitImmediately,
		Source:              d.Source.String(),
		Degraded:            d.Degraded,
	}
}

// Health is the PathHealthz payload: liveness plus build/table identity.
type Health struct {
	Status      string `json:"status"`
	Version     string `json:"version,omitempty"`
	Points      int    `json:"points,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Ready is the PathReadyz payload. Status is "ok", "loading" (table still
// building — HTTP 503) or "draining" (shutdown under way — HTTP 503).
type Ready struct {
	Status string `json:"status"`
	// BreakerState is the exact-fallback breaker position
	// (closed/half_open/open); empty when no breaker is wired.
	BreakerState string `json:"breaker_state,omitempty"`
	// DegradedRatio is the fraction of decisions served degraded.
	DegradedRatio float64 `json:"degraded_ratio"`
}

// FormatRetryAfter renders a backoff hint for the Retry-After header.
// Whole seconds use the RFC 7231 integer form every client understands;
// sub-second hints (test and benchmark servers) use a decimal fraction,
// which ParseRetryAfter — and curl — accept.
func FormatRetryAfter(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	s := d.Seconds()
	if s == math.Trunc(s) {
		return strconv.Itoa(int(s))
	}
	if s < 1 {
		return fmt.Sprintf("%.3f", s)
	}
	return strconv.Itoa(int(math.Ceil(s)))
}

// ParseRetryAfter reads a Retry-After value in seconds (integer per RFC
// 7231, or the decimal fraction FormatRetryAfter emits). ok is false for
// absent, malformed or HTTP-date values — callers fall back to their own
// backoff.
func ParseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	s, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > 3600 {
		return 0, false
	}
	return time.Duration(s * float64(time.Second)), true
}
