package link

import (
	"math"
	"os"
	"testing"

	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/stats"
)

// TestExplore prints calibration surfaces; enabled with NOWLATER_EXPLORE=1.
func TestExplore(t *testing.T) {
	if os.Getenv("NOWLATER_EXPLORE") == "" {
		t.Skip("set NOWLATER_EXPLORE=1 to run")
	}
	cfg := DefaultConfig()
	med := func(pol func(*stats.RNG) rate.Policy, g Geometry, n int) float64 {
		xs, err := MeasureTrials(cfg, pol, g, 10, n)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MustMedian(xs)
	}
	t.Log("== airplane autorate (alt 90, v 18) ==")
	for _, d := range []float64{20, 60, 100, 160, 220, 320} {
		m := med(nil, Geometry{DistanceM: d, AltitudeM: 90, RelSpeedMPS: 18}, 9)
		t.Logf("d=%3.0f  sim=%6.2f  paperfit=%6.2f", d, m, -5.56*math.Log2(d)+49)
	}
	t.Log("== quad hover autorate (alt 10, v 0) ==")
	for _, d := range []float64{20, 40, 60, 80} {
		m := med(nil, Geometry{DistanceM: d, AltitudeM: 10}, 9)
		t.Logf("d=%3.0f  sim=%6.2f  paperfit=%6.2f", d, m, -10.5*math.Log2(d)+73)
	}
	t.Log("== quad moving v=8 ==")
	for _, d := range []float64{20, 40, 60, 80} {
		m := med(nil, Geometry{DistanceM: d, AltitudeM: 10, RelSpeedMPS: 8}, 9)
		t.Logf("d=%3.0f  sim=%6.2f", d, m)
	}
	t.Log("== airplane fixed MCS sweep ==")
	for _, d := range []float64{20, 100, 180, 240} {
		line := ""
		for _, mcs := range []phy.MCS{0, 1, 2, 3, 4, 8} {
			mcs := mcs
			m := med(func(r *stats.RNG) rate.Policy { return rate.NewFixed(mcs) },
				Geometry{DistanceM: d, AltitudeM: 90, RelSpeedMPS: 18}, 5)
			line += sprintfMCS(int(mcs), m)
		}
		t.Logf("d=%3.0f: %s", d, line)
	}
	t.Log("== speed sweep at d=60 quad ==")
	for _, v := range []float64{0, 2, 4, 8, 12, 15} {
		m := med(nil, Geometry{DistanceM: 60, AltitudeM: 10, RelSpeedMPS: v}, 9)
		t.Logf("v=%4.1f  sim=%6.2f", v, m)
	}
}

func sprintfMCS(mcs int, v float64) string {
	return "mcs" + string(rune('0'+mcs%10)) + "=" + trim(v) + " "
}

func trim(v float64) string {
	s := make([]byte, 0, 8)
	iv := int(v*10 + 0.5)
	s = append(s, byte('0'+iv/100%10), byte('0'+iv/10%10), '.', byte('0'+iv%10))
	return string(s)
}
