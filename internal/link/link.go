// Package link assembles the aerial 802.11n data link the paper measures:
// channel (path loss, orientation, fading) → PHY (MCS, PER) → MAC (A-MPDU,
// block ACK, retries) → rate control (fixed or Minstrel). It exposes both a
// stepwise interface for mission simulations driven by the discrete-event
// engine and an iperf-style saturation measurement used to regenerate the
// paper's throughput figures (Figs 5–7).
package link

import (
	"context"
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/channel"
	"github.com/nowlater/nowlater/internal/mac"
	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/runner"
	"github.com/nowlater/nowlater/internal/stats"
)

// Config assembles one link.
type Config struct {
	Channel channel.Params
	PHY     phy.Config
	MAC     mac.Params
	// Seed drives all the link's randomness deterministically.
	Seed int64
	// Label separates random substreams of links sharing a seed.
	Label string
}

// DefaultConfig is the paper's radio configuration over the calibrated
// aerial channel.
func DefaultConfig() Config {
	return Config{
		Channel: channel.DefaultParams(),
		PHY:     phy.DefaultConfig(),
		MAC:     mac.DefaultParams(),
		Seed:    1,
		Label:   "link",
	}
}

// Link is one simulated point-to-point aerial 802.11n link. Not safe for
// concurrent use.
type Link struct {
	cfg    Config
	ch     *channel.Channel
	mac    *mac.MAC
	em     *phy.ErrorModel
	policy rate.Policy
	tracer Tracer
	fault  FaultFunc
	now    float64

	// OutageSeconds accumulates time spent idling through injected
	// outages.
	OutageSeconds float64
}

// FaultFunc is the chaos layer's per-exchange degradation: outage kills
// the link for the instant (no exchange happens, the clock idles forward);
// extraLossDB is added to the channel's path loss (deep-fade burst). The
// hook must be deterministic in now — it is consulted on every Step.
type FaultFunc func(now float64) (outage bool, extraLossDB float64)

// outageIdleS is how far Step coasts the clock while the link is down: a
// coarser stride than a MAC slot so multi-second outages stay cheap to
// simulate, but fine enough (10 ms) to resolve outage-window edges.
const outageIdleS = 0.01

// SetFault installs a fault hook (nil restores the nominal link). The
// extra-loss part is wired into the channel's excess-loss hook so it
// degrades SNR exactly like any physical attenuation.
func (l *Link) SetFault(f FaultFunc) {
	l.fault = f
	if f == nil {
		l.ch.SetExcessLoss(nil)
		return
	}
	l.ch.SetExcessLoss(func(now float64) float64 {
		_, extra := f(now)
		return extra
	})
}

// New builds a link with the given rate-control policy. A nil policy gets
// the Minstrel auto-rate, the paper's default driver behaviour.
func New(cfg Config, policy rate.Policy) (*Link, error) {
	root := stats.NewRNG(cfg.Seed)
	ch, err := channel.New(cfg.Channel, root.Substream(cfg.Seed, cfg.Label+"/channel"))
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	em := phy.NewErrorModel(cfg.PHY)
	m, err := mac.New(cfg.MAC, cfg.PHY, em, root.Substream(cfg.Seed, cfg.Label+"/mac"))
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	if policy == nil {
		policy = rate.NewMinstrel(rate.DefaultMinstrelParams(), cfg.PHY,
			root.Substream(cfg.Seed, cfg.Label+"/rate"))
	}
	return &Link{cfg: cfg, ch: ch, mac: m, em: em, policy: policy}, nil
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Policy returns the rate-control policy in use.
func (l *Link) Policy() rate.Policy { return l.policy }

// MAC exposes the transmit MAC (for counters and queue state).
func (l *Link) MAC() *mac.MAC { return l.mac }

// Now returns the link's internal clock (seconds).
func (l *Link) Now() float64 { return l.now }

// SetNow aligns the link clock with an external simulation clock. It cannot
// move backwards, and non-finite instants are ignored: NaN compares false
// and would be silently dropped anyway, while +Inf would poison the clock
// so that every later deadline check reads as expired.
func (l *Link) SetNow(now float64) {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return
	}
	if now > l.now {
		l.now = now
	}
}

// Enqueue adds application bytes to the transmit queue.
func (l *Link) Enqueue(bytes int) { l.mac.Enqueue(bytes) }

// QueuedBytes returns bytes awaiting delivery.
func (l *Link) QueuedBytes() int { return l.mac.QueuedBytes() }

// Geometry is the instantaneous link geometry for one exchange.
type Geometry struct {
	DistanceM float64 // separation between the two radios
	AltitudeM float64 // link altitude AGL (min of the two ends)
	// RelSpeedMPS is the magnitude of the relative velocity between the
	// platforms: attitude dynamics and Doppler degrade the channel under
	// any mutual motion, orbiting included, not only range change.
	RelSpeedMPS float64
}

// Step performs one A-MPDU exchange at the current clock under the given
// geometry and advances the clock by the airtime consumed. With an empty
// queue it advances the clock by one idle slot so callers can poll.
func (l *Link) Step(g Geometry) mac.Exchange {
	if l.fault != nil {
		if outage, _ := l.fault(l.now); outage {
			l.now += outageIdleS
			l.OutageSeconds += outageIdleS
			return mac.Exchange{}
		}
	}
	if l.mac.QueuedMPDUs() == 0 {
		l.now += l.cfg.MAC.SlotSeconds
		return mac.Exchange{}
	}
	sample := l.ch.Sample(l.now, g.DistanceM, g.AltitudeM, g.RelSpeedMPS)
	var mcs phy.MCS
	var stbc bool
	if genie, ok := l.policy.(rate.SNRAware); ok {
		mcs, stbc = genie.SelectWithSNR(l.now, sample.SNRDB, sample.KFactorDB)
	} else {
		mcs, stbc = l.policy.Select(l.now)
	}
	ex := l.mac.Transact(sample.SNRDB, sample.KFactorDB, g.RelSpeedMPS, mcs, stbc)
	l.policy.Observe(l.now, mcs, ex.Attempted, ex.Delivered)
	l.now += ex.AirtimeSeconds
	if l.tracer != nil {
		l.tracer(l.now, g, ex)
	}
	return ex
}

// Tracer receives every completed exchange (after the clock advance) —
// the packet-level debugging hook, a pcap of sorts.
type Tracer func(now float64, g Geometry, ex mac.Exchange)

// SetTracer installs an exchange tracer (nil disables).
func (l *Link) SetTracer(t Tracer) { l.tracer = t }

// MeanSNRDB exposes the channel's large-scale SNR at a geometry, for
// planning and tests.
func (l *Link) MeanSNRDB(g Geometry) float64 {
	return l.ch.MeanSNRDB(g.DistanceM, g.AltitudeM, g.RelSpeedMPS)
}

// Measurement is the outcome of an iperf-style saturation run.
type Measurement struct {
	ThroughputBps float64 // delivered application bits per second
	DeliveredMB   float64
	LossRate      float64 // datagrams dropped at the MAC retry limit
	Exchanges     int64
	MeanMCS       float64
	Duration      float64
}

// Measure saturates the link at a fixed geometry for the given duration
// (seconds of simulated time) and reports delivered throughput — the
// simulation equivalent of the paper's iperf UDP runs. A short warmup
// (20% of the duration, at most 2 s) runs first without being recorded so
// rate-control convergence does not bias short measurements.
func (l *Link) Measure(g Geometry, duration float64) Measurement {
	warmup := duration * 0.2
	if warmup > 2 {
		warmup = 2
	}
	wEnd := l.now + warmup
	for l.now < wEnd {
		if l.mac.QueuedMPDUs() < l.cfg.MAC.MaxAggregation*2 {
			l.Enqueue(l.cfg.MAC.MPDUPayloadBytes * l.cfg.MAC.MaxAggregation * 2)
		}
		l.Step(g)
	}
	start := l.now
	end := l.now + duration
	var delivered, dropped int64
	var exchanges int64
	var mcsSum float64
	for l.now < end {
		// Keep the queue saturated like iperf's offered load.
		if l.mac.QueuedMPDUs() < l.cfg.MAC.MaxAggregation*2 {
			l.Enqueue(l.cfg.MAC.MPDUPayloadBytes * l.cfg.MAC.MaxAggregation * 2)
		}
		before := l.mac.DroppedBytes
		ex := l.Step(g)
		delivered += int64(ex.DeliveredBytes)
		dropped += l.mac.DroppedBytes - before
		if ex.Attempted > 0 {
			exchanges++
			mcsSum += float64(ex.MCS)
		}
	}
	elapsed := l.now - start
	m := Measurement{
		ThroughputBps: float64(delivered) * 8 / elapsed,
		DeliveredMB:   float64(delivered) / 1e6,
		Exchanges:     exchanges,
		Duration:      elapsed,
	}
	if delivered+dropped > 0 {
		m.LossRate = float64(dropped) / float64(delivered+dropped)
	}
	if exchanges > 0 {
		m.MeanMCS = mcsSum / float64(exchanges)
	}
	return m
}

// MeasureTrials runs n independent saturation measurements of the given
// duration at one geometry, each on a fresh link (fresh channel state and
// substream), returning the throughput samples in Mb/s. This mirrors the
// paper's repeated flight passes that fill each boxplot column.
//
// Trials run on the shared bounded pool (internal/runner) with one worker
// per core; MeasureTrialsWorkers exposes the pool width.
func MeasureTrials(cfg Config, newPolicy func(rng *stats.RNG) rate.Policy,
	g Geometry, duration float64, n int) ([]float64, error) {
	return MeasureTrialsWorkers(cfg, newPolicy, g, duration, n, 0)
}

// MeasureTrialsWorkers is MeasureTrials with an explicit worker bound
// (workers ≤ 0 selects one per core). Trials are independent by
// construction — per-trial seeds derived from the config seed via
// runner.SplitSeed — and results are collected by trial index, so the
// samples are bit-identical for any worker count, including 1.
func MeasureTrialsWorkers(cfg Config, newPolicy func(rng *stats.RNG) rate.Policy,
	g Geometry, duration float64, n, workers int) ([]float64, error) {
	root := stats.NewRNG(cfg.Seed)

	// Build policies serially: the caller's constructor may not be
	// goroutine-safe, and substream derivation must stay ordered.
	policies := make([]rate.Policy, n)
	trialCfgs := make([]Config, n)
	for i := 0; i < n; i++ {
		trialCfg := cfg
		trialCfg.Label = fmt.Sprintf("%s/trial%d", cfg.Label, i)
		trialCfg.Seed = runner.SplitSeed(cfg.Seed, i)
		trialCfgs[i] = trialCfg
		if newPolicy != nil {
			policies[i] = newPolicy(root.Substream(trialCfg.Seed, trialCfg.Label+"/policy"))
		}
	}
	return runner.Map(context.Background(), n,
		runner.Options{Workers: workers, Label: cfg.Label},
		func(i int) (float64, error) {
			l, err := New(trialCfgs[i], policies[i])
			if err != nil {
				return 0, err
			}
			return l.Measure(g, duration).ThroughputBps / 1e6, nil
		})
}

// NewOraclePolicy returns the omniscient rate control for this link's PHY
// configuration — the genie upper bound on any rate adaptation.
func NewOraclePolicy(cfg Config) rate.Policy {
	return rate.NewOracle(phy.NewErrorModel(cfg.PHY), (cfg.MAC.MPDUPayloadBytes+cfg.MAC.MPDUOverheadBytes)*8)
}

// MeasureSurface maps the throughput surface s(d, v): median saturation
// throughput (bits/s) per (distance, relative speed) cell — the
// empirical-driven two-dimensional characterization the paper's Section 3.2
// names as the extension mixed strategies would need.
func MeasureSurface(cfg Config, distances, speeds []float64, alt, duration float64,
	trials int) ([][]float64, error) {
	grid := make([][]float64, len(distances))
	for i, d := range distances {
		grid[i] = make([]float64, len(speeds))
		for j, v := range speeds {
			cellCfg := cfg
			cellCfg.Label = fmt.Sprintf("%s/surface/d%.0f/v%.0f", cfg.Label, d, v)
			xs, err := MeasureTrials(cellCfg, nil,
				Geometry{DistanceM: d, AltitudeM: alt, RelSpeedMPS: v}, duration, trials)
			if err != nil {
				return nil, err
			}
			med, err := stats.Median(xs)
			if err != nil {
				return nil, err
			}
			grid[i][j] = med * 1e6
		}
	}
	return grid, nil
}
