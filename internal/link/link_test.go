package link

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/mac"
	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/stats"
)

func newLink(t *testing.T, pol rate.Policy) *Link {
	t.Helper()
	l, err := New(DefaultConfig(), pol)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channel.BandwidthHz = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("bad channel accepted")
	}
	cfg = DefaultConfig()
	cfg.MAC.MaxAggregation = 0
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("bad MAC accepted")
	}
}

func TestDefaultPolicyIsMinstrel(t *testing.T) {
	l := newLink(t, nil)
	if l.Policy().Name() != "minstrel" {
		t.Fatalf("default policy = %q", l.Policy().Name())
	}
}

func TestStepAdvancesClockAndDrainsQueue(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	l.Enqueue(14 * 1500)
	g := Geometry{DistanceM: 20, AltitudeM: 10}
	start := l.Now()
	for i := 0; i < 1000 && l.QueuedBytes() > 0; i++ {
		l.Step(g)
	}
	if l.QueuedBytes() != 0 {
		t.Fatalf("queue not drained at 20 m: %d bytes left", l.QueuedBytes())
	}
	if l.Now() <= start {
		t.Fatal("clock did not advance")
	}
}

func TestStepIdleAdvancesSlot(t *testing.T) {
	l := newLink(t, nil)
	before := l.Now()
	ex := l.Step(Geometry{DistanceM: 50, AltitudeM: 10})
	if ex.Attempted != 0 {
		t.Fatal("idle step transmitted")
	}
	if l.Now() != before+DefaultConfig().MAC.SlotSeconds {
		t.Fatalf("idle step advanced %v", l.Now()-before)
	}
}

func TestSetNowMonotone(t *testing.T) {
	l := newLink(t, nil)
	l.SetNow(5)
	if l.Now() != 5 {
		t.Fatalf("SetNow failed: %v", l.Now())
	}
	l.SetNow(3)
	if l.Now() != 5 {
		t.Fatal("clock moved backwards")
	}
}

func TestSetNowRejectsNonFinite(t *testing.T) {
	l := newLink(t, nil)
	l.SetNow(5)
	l.SetNow(math.Inf(1))
	if l.Now() != 5 {
		t.Fatalf("+Inf poisoned the clock: %v", l.Now())
	}
	l.SetNow(math.NaN())
	if l.Now() != 5 {
		t.Fatalf("NaN poisoned the clock: %v", l.Now())
	}
	l.SetNow(math.Inf(-1))
	if l.Now() != 5 {
		t.Fatalf("-Inf moved the clock: %v", l.Now())
	}
	l.SetNow(6)
	if l.Now() != 6 {
		t.Fatalf("finite advance after non-finite inputs failed: %v", l.Now())
	}
}

func TestMeasureThroughputDecreasesWithDistance(t *testing.T) {
	med := func(d float64) float64 {
		xs, err := MeasureTrials(DefaultConfig(), nil,
			Geometry{DistanceM: d, AltitudeM: 10}, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MustMedian(xs)
	}
	near, mid, far := med(20), med(40), med(80)
	if !(near > mid && mid > far) {
		t.Fatalf("throughput not decreasing: %v, %v, %v", near, mid, far)
	}
}

func TestMeasureThroughputDecreasesWithSpeed(t *testing.T) {
	med := func(v float64) float64 {
		xs, err := MeasureTrials(DefaultConfig(), nil,
			Geometry{DistanceM: 60, AltitudeM: 10, RelSpeedMPS: v}, 8, 9)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MustMedian(xs)
	}
	hover, fast := med(0), med(15)
	if hover <= fast*1.5 {
		t.Fatalf("speed should cost ≥1.5×: hover %v, 15 m/s %v", hover, fast)
	}
}

// TestQuadrocopterCalibration checks the hovering link reproduces the
// paper's quadrocopter fit s(d) = −10.5·log2(d) + 73 Mb/s in shape:
// log2-linear decline with coefficients in a generous band and good R².
func TestQuadrocopterCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	ds := []float64{20, 30, 40, 50, 60, 70, 80}
	var xs, ys []float64
	for _, d := range ds {
		trials, err := MeasureTrials(DefaultConfig(), nil,
			Geometry{DistanceM: d, AltitudeM: 10}, 10, 9)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, d)
		ys = append(ys, stats.MustMedian(trials))
	}
	fit, err := stats.FitLog2(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("quadrocopter fit: s(d) = %.2f·log2(d) + %.2f, R² = %.3f (paper: −10.5, 73, 0.96)", fit.A, fit.B, fit.R2)
	if fit.A < -15 || fit.A > -7 {
		t.Errorf("slope %v outside [−15, −7] (paper −10.5)", fit.A)
	}
	if fit.B < 50 || fit.B > 100 {
		t.Errorf("intercept %v outside [50, 100] (paper 73)", fit.B)
	}
	if fit.R2 < 0.85 {
		t.Errorf("R² = %v, want ≥ 0.85", fit.R2)
	}
}

// TestIndoorAnchor reproduces the paper's indoor sanity check: "in indoor
// lab test using 802.11n, we could get ≈176 Mb/s". Indoors: short range,
// rich scatter (low K), no motion, no airframe or ground losses.
func TestIndoorAnchor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channel.IntegrationLossDB = 0
	cfg.Channel.OrientBaseDB = 0
	cfg.Channel.OrientSpeedDB = 0
	cfg.Channel.OrientSigmaDB = 0.5
	cfg.Channel.KRefDB = -5 // rich multipath
	cfg.Channel.GroundProximityConstDB = 0
	l, err := New(cfg, rate.NewFixed(15))
	if err != nil {
		t.Fatal(err)
	}
	m := l.Measure(Geometry{DistanceM: 5, AltitudeM: 100}, 5)
	got := m.ThroughputBps / 1e6
	if got < 150 || got > 210 {
		t.Fatalf("indoor MCS15 throughput = %.1f Mb/s, want ≈176", got)
	}
}

// TestFixedBeatsAutoRateUnderMotion reproduces the Fig 6 core claim: the
// best fixed MCS clearly outperforms auto-rate on the dynamic aerial
// channel.
func TestFixedBeatsAutoRateUnderMotion(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	g := Geometry{DistanceM: 60, AltitudeM: 90, RelSpeedMPS: 18}
	auto, err := MeasureTrials(DefaultConfig(), nil, g, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, m := range []phy.MCS{0, 1, 2, 3} {
		m := m
		fixed, err := MeasureTrials(DefaultConfig(),
			func(*stats.RNG) rate.Policy { return rate.NewFixed(m) }, g, 10, 9)
		if err != nil {
			t.Fatal(err)
		}
		if v := stats.MustMedian(fixed); v > best {
			best = v
		}
	}
	autoMed := stats.MustMedian(auto)
	t.Logf("best fixed %.1f Mb/s vs auto %.1f Mb/s (ratio %.2f)", best, autoMed, best/autoMed)
	if best < autoMed*1.25 {
		t.Fatalf("best fixed %.1f should beat auto %.1f by ≥1.25×", best, autoMed)
	}
}

func TestMeasureTrialsIndependentAndDeterministic(t *testing.T) {
	g := Geometry{DistanceM: 40, AltitudeM: 10}
	a, err := MeasureTrials(DefaultConfig(), nil, g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureTrials(DefaultConfig(), nil, g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trials not deterministic: %v vs %v", a, b)
		}
	}
	// Trials must differ from each other (independent substreams).
	allEqual := true
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatalf("all trials identical: %v", a)
	}
}

func TestMeasurementFieldsConsistent(t *testing.T) {
	l := newLink(t, rate.NewFixed(2))
	m := l.Measure(Geometry{DistanceM: 30, AltitudeM: 10}, 4)
	if m.Duration < 4 {
		t.Fatalf("duration %v < requested", m.Duration)
	}
	if m.ThroughputBps <= 0 || m.Exchanges <= 0 {
		t.Fatalf("degenerate measurement: %+v", m)
	}
	if math.Abs(m.DeliveredMB*8/m.Duration-m.ThroughputBps/1e6) > 0.01*m.ThroughputBps/1e6 {
		t.Fatalf("throughput/delivered inconsistent: %+v", m)
	}
	if m.LossRate < 0 || m.LossRate > 1 {
		t.Fatalf("loss rate %v", m.LossRate)
	}
	if m.MeanMCS != 2 {
		t.Fatalf("fixed MCS2 run reports mean MCS %v", m.MeanMCS)
	}
}

func TestMeanSNRDBExposed(t *testing.T) {
	l := newLink(t, nil)
	near := l.MeanSNRDB(Geometry{DistanceM: 20, AltitudeM: 90})
	far := l.MeanSNRDB(Geometry{DistanceM: 300, AltitudeM: 90})
	if near <= far {
		t.Fatalf("SNR ordering broken: %v <= %v", near, far)
	}
}

// TestOracleUpperBoundsOtherPolicies: the genie beats Minstrel and fixed
// rates on the same channel realization.
func TestOracleUpperBoundsOtherPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement comparison is slow")
	}
	g := Geometry{DistanceM: 60, AltitudeM: 90, RelSpeedMPS: 18}
	measure := func(mk func(cfg Config, rng *stats.RNG) rate.Policy) float64 {
		xs, err := MeasureTrials(DefaultConfig(), func(rng *stats.RNG) rate.Policy {
			return mk(DefaultConfig(), rng)
		}, g, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MustMedian(xs)
	}
	oracle := measure(func(cfg Config, _ *stats.RNG) rate.Policy { return NewOraclePolicy(cfg) })
	minstrel := measure(func(cfg Config, rng *stats.RNG) rate.Policy {
		return rate.NewMinstrel(rate.DefaultMinstrelParams(), cfg.PHY, rng)
	})
	fixed := measure(func(Config, *stats.RNG) rate.Policy { return rate.NewFixed(2) })
	t.Logf("oracle %.1f, fixed MCS2 %.1f, minstrel %.1f Mb/s", oracle, fixed, minstrel)
	if oracle < minstrel || oracle < fixed {
		t.Fatalf("oracle (%.1f) must dominate minstrel (%.1f) and fixed (%.1f)",
			oracle, minstrel, fixed)
	}
}

func TestTracerSeesExchanges(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	var count int
	var lastNow float64
	l.SetTracer(func(now float64, g Geometry, ex mac.Exchange) {
		count++
		if now < lastNow {
			t.Error("tracer time went backwards")
		}
		lastNow = now
		if g.DistanceM != 30 {
			t.Errorf("tracer geometry %v", g)
		}
	})
	l.Enqueue(20 * 1500)
	for i := 0; i < 50 && l.QueuedBytes() > 0; i++ {
		l.Step(Geometry{DistanceM: 30, AltitudeM: 10})
	}
	if count == 0 {
		t.Fatal("tracer never fired")
	}
	l.SetTracer(nil) // disabling must not panic
	l.Enqueue(1500)
	l.Step(Geometry{DistanceM: 30, AltitudeM: 10})
}

func TestFaultOutageStallsLink(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	g := Geometry{DistanceM: 20, AltitudeM: 10}
	l.SetFault(func(now float64) (bool, float64) { return now < 1, 0 })
	l.Enqueue(100_000)
	var delivered int64
	for l.Now() < 1 {
		ex := l.Step(g)
		delivered += int64(ex.DeliveredBytes)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d bytes through an outage", delivered)
	}
	if l.OutageSeconds < 0.99 {
		t.Fatalf("OutageSeconds = %v, want ≈1", l.OutageSeconds)
	}
	// After the window the link recovers and drains the queue (a handful
	// of datagrams may die at the MAC retry limit).
	for l.QueuedBytes() > 0 && l.Now() < 10 {
		ex := l.Step(g)
		delivered += int64(ex.DeliveredBytes)
	}
	if delivered+l.MAC().DroppedBytes < 100_000 || delivered < 90_000 {
		t.Fatalf("delivered %d + dropped %d bytes after recovery", delivered, l.MAC().DroppedBytes)
	}
}

func TestFaultFadeDegradesThroughput(t *testing.T) {
	g := Geometry{DistanceM: 60, AltitudeM: 10}
	clean := newLink(t, rate.NewFixed(3))
	faded := newLink(t, rate.NewFixed(3))
	faded.SetFault(func(float64) (bool, float64) { return false, 40 })
	mc := clean.Measure(g, 3)
	mf := faded.Measure(g, 3)
	if mf.ThroughputBps > mc.ThroughputBps/2 {
		t.Fatalf("40 dB fade: %v vs clean %v bps", mf.ThroughputBps, mc.ThroughputBps)
	}
}

func TestNilFaultIsBitIdentical(t *testing.T) {
	g := Geometry{DistanceM: 40, AltitudeM: 10}
	a := newLink(t, nil)
	b := newLink(t, nil)
	b.SetFault(func(float64) (bool, float64) { return false, 0 })
	b.SetFault(nil)
	ma := a.Measure(g, 2)
	mb := b.Measure(g, 2)
	if ma != mb {
		t.Fatalf("cleared fault hook perturbed the link: %+v vs %+v", ma, mb)
	}
}
