package trajopt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Exact-solver instance caps. The DP state space is (served-set ×
// per-vehicle continuous states); memoization collapses reconverging
// schedules but the branching is still exponential in requests, so the
// solver refuses instances past these sizes and the receding-horizon
// controller sub-selects down to them.
const (
	MaxSolveVehicles = 4
	MaxSolveRequests = 8
)

// Solve finds the exact lexicographically-best Plan for a small Instance
// by memoized depth-first search over (served-set, vehicle states).
//
// Recurrence: the acting vehicle is always the one with the smallest
// FreeAtS (ties to the lowest index) — any interleaved schedule can be
// reordered into this canonical form without changing per-vehicle
// sequences, so exploring only canonical orders is exhaustive. The acting
// vehicle either retires (serves nothing further) or serves one of the
// unserved requests at one of its candidate transmit distances:
//
//	V(mask, states) = best over {retire(acting)} ∪
//	    {contribution(a) + V(mask|r, states′) : r ∉ mask, d ∈ Candidates}
//
// The returned Objective is always recomputed by Simulate over the chosen
// Plan, so the solver's internal accumulation order can never leak ULP
// differences into the reported value.
func Solve(inst *Instance) (Plan, Objective, error) {
	if err := inst.Validate(); err != nil {
		return nil, Objective{}, err
	}
	if len(inst.Vehicles) > MaxSolveVehicles {
		return nil, Objective{}, fmt.Errorf("trajopt: solve: %d vehicles exceed the exact-solver cap of %d",
			len(inst.Vehicles), MaxSolveVehicles)
	}
	if len(inst.Requests) > MaxSolveRequests {
		return nil, Objective{}, fmt.Errorf("trajopt: solve: %d requests exceed the exact-solver cap of %d",
			len(inst.Requests), MaxSolveRequests)
	}
	s := &solver{inst: inst, memo: make(map[string]memoEntry)}
	states := make([]Vehicle, len(inst.Vehicles))
	copy(states, inst.Vehicles)
	_, plan := s.search(0, states)
	obj, err := Simulate(inst, plan)
	if err != nil {
		return nil, Objective{}, fmt.Errorf("trajopt: solve: internal plan failed replay: %w", err)
	}
	return plan, obj, nil
}

type memoEntry struct {
	obj  Objective
	plan Plan
}

type solver struct {
	inst *Instance
	memo map[string]memoEntry
}

// stateKey packs the served mask plus each vehicle's (FreeAtS, Pos,
// EnergyS) IEEE-754 bits; schedules that reconverge to the same continuous
// state share one memo slot.
func stateKey(mask uint64, states []Vehicle) string {
	buf := make([]byte, 0, 8+len(states)*40)
	var b [8]byte
	put := func(f float64) {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	binary.LittleEndian.PutUint64(b[:], mask)
	buf = append(buf, b[:]...)
	for _, v := range states {
		put(v.FreeAtS)
		put(v.Pos.X)
		put(v.Pos.Y)
		put(v.Pos.Z)
		put(v.EnergyS)
	}
	return string(buf)
}

// acting picks the canonical next vehicle: smallest FreeAtS among
// non-retired vehicles, ties to the lowest index. Returns -1 when every
// vehicle has retired.
func acting(states []Vehicle) int {
	best := -1
	for i, v := range states {
		if math.IsInf(v.FreeAtS, 1) {
			continue
		}
		if best < 0 || v.FreeAtS < states[best].FreeAtS {
			best = i
		}
	}
	return best
}

func (s *solver) search(mask uint64, states []Vehicle) (Objective, Plan) {
	vi := acting(states)
	if vi < 0 || mask == (uint64(1)<<uint(len(s.inst.Requests)))-1 {
		return Objective{}, nil
	}
	key := stateKey(mask, states)
	if e, ok := s.memo[key]; ok {
		return e.obj, e.plan
	}

	// Branch 1: retire the acting vehicle.
	saved := states[vi]
	states[vi].FreeAtS = math.Inf(1)
	best, bestPlan := s.search(mask, states)
	states[vi] = saved

	// Branch 2: acting vehicle serves one unserved request at one
	// candidate transmit distance.
	for ri := range s.inst.Requests {
		if mask&(1<<uint(ri)) != 0 {
			continue
		}
		for _, d := range s.inst.Candidates(vi, ri) {
			leg, ok := s.inst.serviceLeg(states[vi], s.inst.Requests[ri], d)
			if !ok {
				continue
			}
			states[vi].Pos = leg.TxPos
			states[vi].FreeAtS = leg.DoneS
			states[vi].EnergyS = saved.EnergyS - leg.EnergyS
			subObj, subPlan := s.search(mask|1<<uint(ri), states)
			states[vi] = saved
			total := contribution(leg, s.inst.Requests[ri]).add(subObj)
			if total.Better(best) {
				leg.Vehicle, leg.Request = vi, ri
				plan := make(Plan, 0, 1+len(subPlan))
				plan = append(plan, leg)
				plan = append(plan, subPlan...)
				best, bestPlan = total, plan
			}
		}
	}
	s.memo[key] = memoEntry{obj: best, plan: bestPlan}
	return best, bestPlan
}

// ControllerConfig tunes the receding-horizon wrapper around Solve.
type ControllerConfig struct {
	// HorizonS is the lookahead: a replan at clock t only considers
	// actions completing by t+HorizonS (≤ 0 selects an unbounded
	// horizon, which on small instances makes the controller reproduce
	// the exact solver).
	HorizonS float64
	// MaxRequests and MaxVehicles cap the subproblem handed to Solve
	// (defaults 6 and 3; hard-limited by the solver caps).
	MaxRequests int
	MaxVehicles int
}

// Controller is the receding-horizon planner: each replan snapshots the
// idle vehicles and pending requests, sub-selects to a solvable core
// (most-urgent requests, nearest vehicles), runs the exact solver over
// the horizon window, and commits only each vehicle's first action. The
// caller replans whenever a vehicle frees, a request arrives, a vehicle
// fails, or a fixed tick interval elapses.
type Controller struct {
	cfg ControllerConfig
}

// NewController validates the config and applies defaults.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.MaxRequests == 0 {
		cfg.MaxRequests = 6
	}
	if cfg.MaxVehicles == 0 {
		cfg.MaxVehicles = 3
	}
	if cfg.MaxRequests < 1 || cfg.MaxRequests > MaxSolveRequests {
		return nil, fmt.Errorf("trajopt: controller: max requests %d outside [1,%d]", cfg.MaxRequests, MaxSolveRequests)
	}
	if cfg.MaxVehicles < 1 || cfg.MaxVehicles > MaxSolveVehicles {
		return nil, fmt.Errorf("trajopt: controller: max vehicles %d outside [1,%d]", cfg.MaxVehicles, MaxSolveVehicles)
	}
	if math.IsNaN(cfg.HorizonS) {
		return nil, fmt.Errorf("trajopt: controller: horizon is NaN")
	}
	return &Controller{cfg: cfg}, nil
}

// Plan replans at clock now. inst carries the full current world — every
// idle vehicle (busy ones excluded by the caller or via FreeAtS > now)
// and every pending request. The returned actions index into inst's
// slices and contain at most one action per vehicle: the committed first
// leg of the horizon plan.
func (c *Controller) Plan(now float64, inst *Instance) (Plan, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	// Requests: only those already arrived; most urgent first when over
	// the cap.
	reqIdx := make([]int, 0, len(inst.Requests))
	for ri, r := range inst.Requests {
		if r.ArrivalS <= now {
			reqIdx = append(reqIdx, ri)
		}
	}
	if len(reqIdx) == 0 {
		return nil, nil
	}
	if len(reqIdx) > c.cfg.MaxRequests {
		sort.SliceStable(reqIdx, func(a, b int) bool {
			ra, rb := inst.Requests[reqIdx[a]], inst.Requests[reqIdx[b]]
			if ra.DeadlineS != rb.DeadlineS {
				return ra.DeadlineS < rb.DeadlineS
			}
			return reqIdx[a] < reqIdx[b]
		})
		reqIdx = reqIdx[:c.cfg.MaxRequests]
		sort.Ints(reqIdx)
	}
	// Vehicles: every non-retired craft joins the subproblem — a busy
	// vehicle enters with its committed transmit point and completion
	// time, so the solver can plan its *next* leg instead of greedily
	// spending an idle vehicle on a request the busy one would serve
	// better. Only idle vehicles' first actions are committed below.
	idle := false
	vehIdx := make([]int, 0, len(inst.Vehicles))
	for vi, v := range inst.Vehicles {
		if math.IsInf(v.FreeAtS, 1) {
			continue
		}
		vehIdx = append(vehIdx, vi)
		if v.FreeAtS <= now {
			idle = true
		}
	}
	if len(vehIdx) == 0 || !idle {
		return nil, nil
	}
	if len(vehIdx) > c.cfg.MaxVehicles {
		urgent := reqIdx[0]
		for _, ri := range reqIdx[1:] {
			if inst.Requests[ri].DeadlineS < inst.Requests[urgent].DeadlineS {
				urgent = ri
			}
		}
		anchor := inst.Requests[urgent].Origin
		sort.SliceStable(vehIdx, func(a, b int) bool {
			da := inst.Vehicles[vehIdx[a]].Pos.Dist(anchor)
			db := inst.Vehicles[vehIdx[b]].Pos.Dist(anchor)
			if da != db {
				return da < db
			}
			return vehIdx[a] < vehIdx[b]
		})
		vehIdx = vehIdx[:c.cfg.MaxVehicles]
		sort.Ints(vehIdx)
	}

	sub := &Instance{
		Collector: inst.Collector,
		MinDistM:  inst.MinDistM,
		Vehicles:  make([]Vehicle, len(vehIdx)),
		Requests:  make([]Request, len(reqIdx)),
	}
	if c.cfg.HorizonS > 0 {
		sub.WindowEndS = now + c.cfg.HorizonS
	}
	for i, vi := range vehIdx {
		sub.Vehicles[i] = inst.Vehicles[vi]
	}
	for i, ri := range reqIdx {
		sub.Requests[i] = inst.Requests[ri]
	}
	plan, _, err := Solve(sub)
	if err != nil {
		return nil, err
	}
	// Commit only the first action of each vehicle that is idle *now*,
	// mapped back to inst indices; busy vehicles' planned legs are
	// provisional and will be re-derived at their completion replan.
	committed := make(map[int]bool, len(vehIdx))
	out := make(Plan, 0, len(vehIdx))
	for _, a := range plan {
		vi := vehIdx[a.Vehicle]
		if committed[vi] || inst.Vehicles[vi].FreeAtS > now {
			continue
		}
		committed[vi] = true
		a.Vehicle = vi
		a.Request = reqIdx[a.Request]
		out = append(out, a)
	}
	return out, nil
}
