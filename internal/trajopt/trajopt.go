// Package trajopt is the joint trajectory-optimization planner: instead of
// taking the flight route as given and only deciding *when* to transmit
// (the paper's now-or-later rule), it chooses which vehicle flies to which
// data-pickup request and at what distance from the collector it stops to
// transmit — the joint communication-and-trajectory design of the related
// work (Wu/Liu/Zhang; Bliss & Michelusi) over randomly arriving requests.
//
// The package is deliberately pure: an Instance is plain data (vehicle
// states, pending requests, the collector position), a Plan is a list of
// (vehicle, request, transmit-distance) actions, and Simulate replays a
// Plan analytically — straight-line constant-speed legs, the platform's
// log-fit throughput law for the hover-and-transmit phase, energy in
// battery-seconds. Two planners share that model:
//
//   - Solve: a deterministic dynamic-programming search over the
//     (served-set, per-vehicle position/free-time/energy) state space,
//     exact on small instances (MaxSolveRequests, MaxSolveVehicles);
//   - Controller: a receding-horizon wrapper that caps the subproblem to
//     the most urgent requests and nearest idle vehicles, so fleet-sized
//     scenarios replan in bounded time and react to arrivals the initial
//     plan could not foresee.
//
// Everything is bit-deterministic: candidate transmit distances come from
// the core golden-section optimizer, ties break by index, and objectives
// are accumulated in one canonical order (vehicles ascending, each
// vehicle's actions in plan order), so a full-horizon Controller run
// reproduces Solve's objective bit-for-bit on small instances — the
// property the test suite pins.
package trajopt

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
)

// Vehicle is one planner-visible craft: where it is (or will be) when it
// next becomes free, how fast it flies, what moving and hovering cost, and
// how much energy budget remains.
type Vehicle struct {
	// Pos is the position at FreeAtS (the craft's current position for an
	// idle vehicle, its committed transmit point for a busy one).
	Pos geo.Vec3
	// SpeedMPS is the straight-line planning speed (> 0).
	SpeedMPS float64
	// PowerMoveFrac and PowerHoverFrac are the platform's power draw while
	// flying and while hovering to transmit, in battery-seconds per second
	// (uav.Platform.PowerFraction at the leg speed and at zero).
	PowerMoveFrac  float64
	PowerHoverFrac float64
	// EnergyS is the remaining energy budget in battery-seconds
	// (math.Inf(1) for an unconstrained vehicle).
	EnergyS float64
	// FreeAtS is the scenario clock at which the vehicle can accept its
	// next action (math.Inf(1) marks a retired vehicle).
	FreeAtS float64
	// Model is the platform's now-or-later decision baseline; D0M,
	// SpeedMPS and MdataBytes are overwritten per request when the planner
	// asks the core optimizer for a candidate transmit distance.
	Model core.Scenario
}

// Request is one data-pickup demand: fly to Origin, collect SizeMB, and
// deliver it to the collector before DeadlineS.
type Request struct {
	Origin    geo.Vec3
	SizeMB    float64
	ArrivalS  float64
	DeadlineS float64 // absolute scenario clock
}

// Instance is one planning problem: the collector every request must reach,
// the vehicles available to serve, and the requests pending.
type Instance struct {
	// Collector is the (stationary) receiver position.
	Collector geo.Vec3
	// MinDistM is the transmit-separation floor (0 selects
	// core.MinSeparationM).
	MinDistM float64
	// WindowEndS bounds the planning window: actions completing after it
	// are not considered (0 selects an unbounded window). The receding-
	// horizon controller sets this to now + horizon.
	WindowEndS float64
	Vehicles   []Vehicle
	Requests   []Request

	// cand caches the per-(vehicle, request) transmit-distance candidates;
	// lazily filled, deterministic.
	cand [][][]float64
}

// Action is one planned service: vehicle flies to the request's origin,
// then to the point TxDistM metres from the collector on the origin→
// collector line, and transmits the batch from there.
type Action struct {
	Vehicle int
	Request int
	TxDistM float64
	StartS  float64 // service start (max of vehicle free time, arrival)
	PickupS float64 // arrival at the request origin
	DoneS   float64 // last byte delivered
	EnergyS float64 // battery-seconds spent on the action
	TxPos   geo.Vec3
	DelayS  float64 // DoneS − ArrivalS
}

// Plan is an ordered action list (Solve emits canonical construction
// order; Simulate only depends on each vehicle's subsequence order).
type Plan []Action

// Objective ranks plans lexicographically: served megabytes (maximized),
// then total served delay (minimized), then energy spent (minimized).
// Comparisons are exact float comparisons — no tolerance — so a plan
// ordering is a pure function of the instance.
type Objective struct {
	ServedMB float64
	DelaySum float64
	EnergyS  float64
}

// Better reports whether o beats p under the lexicographic order.
func (o Objective) Better(p Objective) bool {
	if o.ServedMB != p.ServedMB {
		return o.ServedMB > p.ServedMB
	}
	if o.DelaySum != p.DelaySum {
		return o.DelaySum < p.DelaySum
	}
	return o.EnergyS < p.EnergyS
}

func (o Objective) add(c Objective) Objective {
	return Objective{
		ServedMB: o.ServedMB + c.ServedMB,
		DelaySum: o.DelaySum + c.DelaySum,
		EnergyS:  o.EnergyS + c.EnergyS,
	}
}

// Validate reports the first implausible Instance field.
func (inst *Instance) Validate() error {
	if len(inst.Vehicles) == 0 {
		return fmt.Errorf("trajopt: no vehicles")
	}
	for i, v := range inst.Vehicles {
		switch {
		case !(v.SpeedMPS > 0):
			return fmt.Errorf("trajopt: vehicle %d: speed %v must be positive", i, v.SpeedMPS)
		case math.IsNaN(v.FreeAtS) || v.FreeAtS < 0:
			return fmt.Errorf("trajopt: vehicle %d: free-at %v must be ≥ 0", i, v.FreeAtS)
		case math.IsNaN(v.EnergyS) || v.EnergyS < 0:
			return fmt.Errorf("trajopt: vehicle %d: energy %v must be ≥ 0", i, v.EnergyS)
		case v.PowerMoveFrac < 0 || v.PowerHoverFrac < 0:
			return fmt.Errorf("trajopt: vehicle %d: negative power fraction", i)
		case v.Model.Throughput == nil:
			return fmt.Errorf("trajopt: vehicle %d: nil throughput model", i)
		}
	}
	for i, r := range inst.Requests {
		switch {
		case !(r.SizeMB > 0):
			return fmt.Errorf("trajopt: request %d: size %v MB must be positive", i, r.SizeMB)
		case math.IsNaN(r.ArrivalS) || r.ArrivalS < 0:
			return fmt.Errorf("trajopt: request %d: arrival %v must be ≥ 0", i, r.ArrivalS)
		case !(r.DeadlineS > r.ArrivalS):
			return fmt.Errorf("trajopt: request %d: deadline %v must be after arrival %v",
				i, r.DeadlineS, r.ArrivalS)
		}
	}
	if inst.MinDistM < 0 || math.IsNaN(inst.MinDistM) {
		return fmt.Errorf("trajopt: min distance %v must be ≥ 0", inst.MinDistM)
	}
	return nil
}

func (inst *Instance) minD() float64 {
	if inst.MinDistM > 0 {
		return inst.MinDistM
	}
	return core.MinSeparationM
}

func (inst *Instance) windowEnd() float64 {
	if inst.WindowEndS > 0 {
		return inst.WindowEndS
	}
	return math.Inf(1)
}

// Candidates returns the transmit-distance candidates for vehicle vi
// serving request ri: the core optimizer's dopt for the leg (the "later"
// point), the pickup distance d0 itself (the "now" point), and their
// midpoint — deduplicated, so the joint planner chooses among qualitatively
// different transmit strategies rather than sweeping a continuum.
func (inst *Instance) Candidates(vi, ri int) []float64 {
	if inst.cand == nil {
		inst.cand = make([][][]float64, len(inst.Vehicles))
	}
	if inst.cand[vi] == nil {
		inst.cand[vi] = make([][]float64, len(inst.Requests))
	}
	if c := inst.cand[vi][ri]; c != nil {
		return c
	}
	v, r := inst.Vehicles[vi], inst.Requests[ri]
	d0 := r.Origin.Dist(inst.Collector)
	var out []float64
	if d0 <= inst.minD() {
		// Already inside the separation floor: transmit from the origin.
		out = []float64{d0}
	} else {
		sc := v.Model
		sc.D0M = d0
		sc.SpeedMPS = v.SpeedMPS
		sc.MdataBytes = r.SizeMB * 1e6
		if sc.MinDistanceM <= 0 {
			sc.MinDistanceM = inst.minD()
		}
		if opt, err := sc.Optimize(); err == nil && opt.DoptM < d0 {
			out = append(out, opt.DoptM)
			if mid := (opt.DoptM + d0) / 2; mid > opt.DoptM && mid < d0 {
				out = append(out, mid)
			}
		}
		out = append(out, d0)
	}
	inst.cand[vi][ri] = out
	return out
}

// serviceLeg prices one action analytically: fly Pos→Origin, fly
// Origin→transmit point, hover and transmit at the log-fit rate for the
// transmit distance. Reports ok=false when the action misses the request
// deadline, overruns the planning window, or overdraws the energy budget.
func (inst *Instance) serviceLeg(v Vehicle, r Request, d float64) (Action, bool) {
	d0 := r.Origin.Dist(inst.Collector)
	dEff := math.Min(d, d0)
	txPos := r.Origin
	if d0 > 0 {
		dir := r.Origin.Sub(inst.Collector).Scale(1 / d0)
		txPos = inst.Collector.Add(dir.Scale(dEff))
	}
	start := math.Max(v.FreeAtS, r.ArrivalS)
	t1 := v.Pos.Dist(r.Origin) / v.SpeedMPS
	t2 := r.Origin.Dist(txPos) / v.SpeedMPS
	// The rate law diverges as d→0; floor the model distance at one metre
	// so a request sitting on the collector still prices finitely.
	rate := v.Model.Throughput.Bps(math.Max(dEff, 1))
	if !(rate > 0) {
		return Action{}, false
	}
	tx := r.SizeMB * 8e6 / rate
	done := start + t1 + t2 + tx
	if done > r.DeadlineS || done > inst.windowEnd() {
		return Action{}, false
	}
	energy := (t1+t2)*v.PowerMoveFrac + tx*v.PowerHoverFrac
	if energy > v.EnergyS {
		return Action{}, false
	}
	return Action{
		TxDistM: dEff,
		StartS:  start,
		PickupS: start + t1,
		DoneS:   done,
		EnergyS: energy,
		TxPos:   txPos,
		DelayS:  done - r.ArrivalS,
	}, true
}

// contribution is the objective delta of one priced action.
func contribution(a Action, r Request) Objective {
	return Objective{ServedMB: r.SizeMB, DelaySum: a.DelayS, EnergyS: a.EnergyS}
}

// Simulate replays a Plan and returns its Objective. The accumulation
// order is canonical — vehicles ascending, each vehicle's actions in plan
// order — so two plans with identical per-vehicle action sequences always
// produce bit-identical objectives regardless of how their actions were
// interleaved. A plan that revisits a request, names an unknown index, or
// prices infeasibly is an error.
func Simulate(inst *Instance, plan Plan) (Objective, error) {
	if len(inst.Requests) > 63 {
		return Objective{}, fmt.Errorf("trajopt: simulate: %d requests exceed the 63-request mask", len(inst.Requests))
	}
	var served uint64
	var obj Objective
	for vi := range inst.Vehicles {
		v := inst.Vehicles[vi]
		for _, a := range plan {
			if a.Vehicle != vi {
				continue
			}
			if a.Request < 0 || a.Request >= len(inst.Requests) {
				return Objective{}, fmt.Errorf("trajopt: simulate: action names request %d of %d", a.Request, len(inst.Requests))
			}
			if served&(1<<uint(a.Request)) != 0 {
				return Objective{}, fmt.Errorf("trajopt: simulate: request %d served twice", a.Request)
			}
			r := inst.Requests[a.Request]
			leg, ok := inst.serviceLeg(v, r, a.TxDistM)
			if !ok {
				return Objective{}, fmt.Errorf("trajopt: simulate: action (v%d, r%d, d=%.1f) infeasible", a.Vehicle, a.Request, a.TxDistM)
			}
			served |= 1 << uint(a.Request)
			v.Pos = leg.TxPos
			v.FreeAtS = leg.DoneS
			v.EnergyS -= leg.EnergyS
			obj = obj.add(contribution(leg, r))
		}
	}
	for _, a := range plan {
		if a.Vehicle < 0 || a.Vehicle >= len(inst.Vehicles) {
			return Objective{}, fmt.Errorf("trajopt: simulate: action names vehicle %d of %d", a.Vehicle, len(inst.Vehicles))
		}
	}
	return obj, nil
}
