package trajopt

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/stats"
)

func testVehicle(pos geo.Vec3, speed float64) Vehicle {
	return Vehicle{
		Pos:            pos,
		SpeedMPS:       speed,
		PowerMoveFrac:  1.0,
		PowerHoverFrac: 0.55,
		EnergyS:        math.Inf(1),
		Model:          core.QuadrocopterBaseline(),
	}
}

func TestSolveServesSingleRequest(t *testing.T) {
	inst := &Instance{
		Collector: geo.Vec3{X: 0, Y: 0, Z: 50},
		Vehicles:  []Vehicle{testVehicle(geo.Vec3{X: 100, Y: 0, Z: 50}, 10)},
		Requests: []Request{
			{Origin: geo.Vec3{X: 500, Y: 0, Z: 50}, SizeMB: 5, ArrivalS: 0, DeadlineS: 600},
		},
	}
	plan, obj, err := Solve(inst)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan = %v, want one action", plan)
	}
	if obj.ServedMB != 5 {
		t.Fatalf("ServedMB = %v, want 5", obj.ServedMB)
	}
	if plan[0].TxDistM >= 500 {
		t.Fatalf("joint plan should fly toward the collector before transmitting; got tx dist %v", plan[0].TxDistM)
	}
	if !(obj.DelaySum > 0) || !(obj.EnergyS > 0) {
		t.Fatalf("objective %+v should have positive delay and energy", obj)
	}
}

func TestSolveSkipsInfeasibleDeadline(t *testing.T) {
	inst := &Instance{
		Collector: geo.Vec3{X: 0, Y: 0, Z: 50},
		Vehicles:  []Vehicle{testVehicle(geo.Vec3{X: 0, Y: 0, Z: 50}, 10)},
		Requests: []Request{
			// 5000 m away at 10 m/s: pickup alone takes 500 s > deadline.
			{Origin: geo.Vec3{X: 5000, Y: 0, Z: 50}, SizeMB: 1, ArrivalS: 0, DeadlineS: 100},
		},
	}
	plan, obj, err := Solve(inst)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(plan) != 0 || obj.ServedMB != 0 {
		t.Fatalf("expected empty plan for infeasible request, got %v / %+v", plan, obj)
	}
}

func TestSolveRespectsEnergyBudget(t *testing.T) {
	starved := testVehicle(geo.Vec3{X: 100, Y: 0, Z: 50}, 10)
	starved.EnergyS = 1 // one battery-second: can't fly anywhere useful
	inst := &Instance{
		Collector: geo.Vec3{X: 0, Y: 0, Z: 50},
		Vehicles:  []Vehicle{starved},
		Requests: []Request{
			{Origin: geo.Vec3{X: 500, Y: 0, Z: 50}, SizeMB: 5, ArrivalS: 0, DeadlineS: 600},
		},
	}
	plan, obj, err := Solve(inst)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(plan) != 0 || obj.ServedMB != 0 {
		t.Fatalf("energy-starved vehicle should serve nothing, got %v / %+v", plan, obj)
	}
}

func TestSolveCapsEnforced(t *testing.T) {
	inst := &Instance{
		Collector: geo.Vec3{Z: 50},
		Vehicles:  []Vehicle{testVehicle(geo.Vec3{Z: 50}, 10)},
	}
	for i := 0; i <= MaxSolveRequests; i++ {
		inst.Requests = append(inst.Requests, Request{
			Origin: geo.Vec3{X: float64(100 + i), Z: 50}, SizeMB: 1, DeadlineS: 1000,
		})
	}
	if _, _, err := Solve(inst); err == nil {
		t.Fatal("Solve accepted an over-cap request count")
	}
	inst.Requests = inst.Requests[:1]
	for i := 0; i <= MaxSolveVehicles; i++ {
		inst.Vehicles = append(inst.Vehicles, testVehicle(geo.Vec3{Z: 50}, 10))
	}
	if _, _, err := Solve(inst); err == nil {
		t.Fatal("Solve accepted an over-cap vehicle count")
	}
}

func TestCandidatesIncludeNowAndLater(t *testing.T) {
	inst := &Instance{
		Collector: geo.Vec3{X: 0, Y: 0, Z: 50},
		Vehicles:  []Vehicle{testVehicle(geo.Vec3{X: 0, Y: 0, Z: 50}, 10)},
		Requests: []Request{
			{Origin: geo.Vec3{X: 800, Y: 0, Z: 50}, SizeMB: 10, ArrivalS: 0, DeadlineS: 1000},
		},
	}
	cand := inst.Candidates(0, 0)
	if len(cand) < 2 {
		t.Fatalf("candidates = %v, want at least dopt and d0", cand)
	}
	last := cand[len(cand)-1]
	if math.Abs(last-800) > 1e-9 {
		t.Fatalf("last candidate %v should be the pickup distance d0=800", last)
	}
	for i := 1; i < len(cand); i++ {
		if !(cand[i] > cand[i-1]) {
			t.Fatalf("candidates %v not strictly increasing", cand)
		}
	}
	// Inside the separation floor: only the origin distance remains.
	inst2 := &Instance{
		Collector: geo.Vec3{Z: 50},
		Vehicles:  []Vehicle{testVehicle(geo.Vec3{Z: 50}, 10)},
		Requests: []Request{
			{Origin: geo.Vec3{X: 10, Z: 50}, SizeMB: 1, ArrivalS: 0, DeadlineS: 1000},
		},
	}
	if cand := inst2.Candidates(0, 0); len(cand) != 1 {
		t.Fatalf("inside-floor candidates = %v, want exactly the origin distance", cand)
	}
}

func TestSimulateRejectsDoubleService(t *testing.T) {
	inst := &Instance{
		Collector: geo.Vec3{Z: 50},
		Vehicles:  []Vehicle{testVehicle(geo.Vec3{X: 100, Z: 50}, 10)},
		Requests: []Request{
			{Origin: geo.Vec3{X: 300, Z: 50}, SizeMB: 2, ArrivalS: 0, DeadlineS: 1000},
		},
	}
	plan, _, err := Solve(inst)
	if err != nil || len(plan) != 1 {
		t.Fatalf("Solve: plan=%v err=%v", plan, err)
	}
	if _, err := Simulate(inst, append(plan, plan[0])); err == nil {
		t.Fatal("Simulate accepted a request served twice")
	}
}

func TestObjectiveOrdering(t *testing.T) {
	base := Objective{ServedMB: 10, DelaySum: 100, EnergyS: 50}
	cases := []struct {
		name   string
		other  Objective
		better bool
	}{
		{"more served wins", Objective{ServedMB: 11, DelaySum: 900, EnergyS: 900}, true},
		{"less served loses", Objective{ServedMB: 9, DelaySum: 0, EnergyS: 0}, false},
		{"same served, less delay wins", Objective{ServedMB: 10, DelaySum: 99, EnergyS: 900}, true},
		{"same served+delay, less energy wins", Objective{ServedMB: 10, DelaySum: 100, EnergyS: 49}, true},
		{"identical is not better", base, false},
	}
	for _, c := range cases {
		if got := c.other.Better(base); got != c.better {
			t.Errorf("%s: Better = %v, want %v", c.name, got, c.better)
		}
	}
}

func TestControllerCommitsAtMostOneActionPerVehicle(t *testing.T) {
	ctrl, err := NewController(ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{
		Collector: geo.Vec3{Z: 50},
		Vehicles: []Vehicle{
			testVehicle(geo.Vec3{X: 100, Z: 50}, 10),
			testVehicle(geo.Vec3{X: 200, Z: 50}, 10),
		},
		Requests: []Request{
			{Origin: geo.Vec3{X: 400, Z: 50}, SizeMB: 2, ArrivalS: 0, DeadlineS: 2000},
			{Origin: geo.Vec3{X: 500, Y: 100, Z: 50}, SizeMB: 2, ArrivalS: 0, DeadlineS: 2000},
			{Origin: geo.Vec3{X: 300, Y: 200, Z: 50}, SizeMB: 2, ArrivalS: 0, DeadlineS: 2000},
		},
	}
	plan, err := ctrl.Plan(0, inst)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	seen := map[int]bool{}
	for _, a := range plan {
		if seen[a.Vehicle] {
			t.Fatalf("vehicle %d committed twice in %v", a.Vehicle, plan)
		}
		seen[a.Vehicle] = true
	}
	if len(plan) == 0 {
		t.Fatal("controller committed nothing on a feasible instance")
	}
	// Future requests are invisible at now=0.
	inst.Requests[0].ArrivalS = 5
	plan2, err := ctrl.Plan(0, inst)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	for _, a := range plan2 {
		if a.Request == 0 {
			t.Fatal("controller planned a request that has not arrived yet")
		}
	}
}

// runRecedingHorizon drives a Controller with an unbounded horizon over a
// static instance (all requests arrived at t=0): replan, commit each idle
// vehicle's first action, jump the clock to the next completion, repeat.
// Returns the executed plan replayed through Simulate.
func runRecedingHorizon(t *testing.T, inst *Instance) Objective {
	t.Helper()
	ctrl, err := NewController(ControllerConfig{
		MaxRequests: MaxSolveRequests,
		MaxVehicles: MaxSolveVehicles,
	})
	if err != nil {
		t.Fatal(err)
	}
	states := make([]Vehicle, len(inst.Vehicles))
	copy(states, inst.Vehicles)
	committed := make([]bool, len(inst.Requests))
	var executed Plan
	now := 0.0
	for iter := 0; iter < 4*len(inst.Requests)+4; iter++ {
		// Pending = not yet committed; keep an index map back to inst.
		var pendIdx []int
		for ri := range inst.Requests {
			if !committed[ri] {
				pendIdx = append(pendIdx, ri)
			}
		}
		snap := &Instance{
			Collector: inst.Collector,
			MinDistM:  inst.MinDistM,
			Vehicles:  append([]Vehicle(nil), states...),
			Requests:  make([]Request, len(pendIdx)),
		}
		for i, ri := range pendIdx {
			snap.Requests[i] = inst.Requests[ri]
		}
		var plan Plan
		if len(pendIdx) > 0 {
			plan, err = ctrl.Plan(now, snap)
			if err != nil {
				t.Fatalf("replan at %v: %v", now, err)
			}
		}
		for _, a := range plan {
			ri := pendIdx[a.Request]
			committed[ri] = true
			states[a.Vehicle].Pos = a.TxPos
			states[a.Vehicle].FreeAtS = a.DoneS
			states[a.Vehicle].EnergyS -= a.EnergyS
			a.Request = ri
			executed = append(executed, a)
		}
		// Advance to the next completion; if every vehicle is idle and
		// the controller committed nothing, the run is over.
		next := math.Inf(1)
		for _, v := range states {
			if v.FreeAtS > now && v.FreeAtS < next {
				next = v.FreeAtS
			}
		}
		if math.IsInf(next, 1) {
			if len(plan) == 0 {
				break
			}
			continue
		}
		now = next
	}
	obj, err := Simulate(inst, executed)
	if err != nil {
		t.Fatalf("executed plan failed replay: %v", err)
	}
	return obj
}

// TestRecedingHorizonMatchesDPOnSmallInstances is the small-instance
// exactness property: on ≤3-vehicle, ≤6-request instances with every
// request known at t=0, the receding-horizon controller with an unbounded
// horizon must reproduce the DP solver's objective bit-for-bit. Bellman
// consistency gives the equality; the exact float comparison pins that the
// implementation's canonical tie-breaking and canonical objective
// accumulation actually deliver it.
func TestRecedingHorizonMatchesDPOnSmallInstances(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		rng := stats.NewRNG(seed).Substream(seed, "trajopt/exactness")
		nv := 1 + rng.Intn(3)
		nr := 1 + rng.Intn(6)
		inst := &Instance{
			Collector: geo.Vec3{X: 400, Y: 400, Z: 50},
		}
		for i := 0; i < nv; i++ {
			v := testVehicle(geo.Vec3{
				X: math.Round(rng.Uniform(0, 800)),
				Y: math.Round(rng.Uniform(0, 800)),
				Z: 50,
			}, math.Round(rng.Uniform(8, 16)))
			if rng.Bernoulli(0.25) {
				v.EnergyS = math.Round(rng.Uniform(100, 400))
			}
			inst.Vehicles = append(inst.Vehicles, v)
		}
		for i := 0; i < nr; i++ {
			inst.Requests = append(inst.Requests, Request{
				Origin: geo.Vec3{
					X: math.Round(rng.Uniform(0, 800)),
					Y: math.Round(rng.Uniform(0, 800)),
					Z: 50,
				},
				SizeMB:    math.Round(rng.Uniform(1, 8)),
				ArrivalS:  0,
				DeadlineS: math.Round(rng.Uniform(120, 500)),
			})
		}
		_, dpObj, err := Solve(inst)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		rhObj := runRecedingHorizon(t, inst)
		if rhObj != dpObj {
			t.Errorf("seed %d (%dv/%dr): receding horizon %+v != DP %+v",
				seed, nv, nr, rhObj, dpObj)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	build := func() *Instance {
		return &Instance{
			Collector: geo.Vec3{X: 400, Y: 400, Z: 50},
			Vehicles: []Vehicle{
				testVehicle(geo.Vec3{X: 100, Y: 100, Z: 50}, 10),
				testVehicle(geo.Vec3{X: 700, Y: 200, Z: 50}, 12),
			},
			Requests: []Request{
				{Origin: geo.Vec3{X: 600, Y: 600, Z: 50}, SizeMB: 4, ArrivalS: 0, DeadlineS: 300},
				{Origin: geo.Vec3{X: 200, Y: 700, Z: 50}, SizeMB: 2, ArrivalS: 0, DeadlineS: 250},
				{Origin: geo.Vec3{X: 50, Y: 400, Z: 50}, SizeMB: 6, ArrivalS: 0, DeadlineS: 400},
			},
		}
	}
	planA, objA, err := Solve(build())
	if err != nil {
		t.Fatal(err)
	}
	planB, objB, err := Solve(build())
	if err != nil {
		t.Fatal(err)
	}
	if objA != objB || len(planA) != len(planB) {
		t.Fatalf("Solve not deterministic: %+v/%v vs %+v/%v", objA, planA, objB, planB)
	}
	for i := range planA {
		if planA[i] != planB[i] {
			t.Fatalf("plan action %d differs: %+v vs %+v", i, planA[i], planB[i])
		}
	}
}
