package telemetry

import (
	"errors"
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/sim"
)

func fixedPos(v geo.Vec3) func() geo.Vec3 { return func() geo.Vec3 { return v } }

func newBus(t *testing.T) (*Bus, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine()
	b, err := NewBus(DefaultParams(), e)
	if err != nil {
		t.Fatal(err)
	}
	return b, e
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for i, p := range []Params{
		{BitRateBps: 0, RangeM: 1, PropagationS: 0},
		{BitRateBps: 1, RangeM: 0, PropagationS: 0},
		{BitRateBps: 1, RangeM: 1, PropagationS: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewBus(DefaultParams(), nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestAttachValidation(t *testing.T) {
	b, _ := newBus(t)
	if err := b.Attach(nil); err == nil {
		t.Fatal("nil node accepted")
	}
	if err := b.Attach(&Node{ID: "x"}); err == nil {
		t.Fatal("node without position accepted")
	}
	n := &Node{ID: "x", Position: fixedPos(geo.Vec3{})}
	if err := b.Attach(n); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(n); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestStatusBroadcastInRange(t *testing.T) {
	b, e := newBus(t)
	var got []Status
	mustAttach(t, b, &Node{ID: "uav1", Position: fixedPos(geo.Vec3{})})
	mustAttach(t, b, &Node{ID: "gcs", Position: fixedPos(geo.Vec3{X: 500}),
		OnStatus: func(s Status) { got = append(got, s) }})
	mustAttach(t, b, &Node{ID: "far", Position: fixedPos(geo.Vec3{X: 5000}),
		OnStatus: func(s Status) { t.Error("out-of-range node received") }})

	if err := b.SendStatus("uav1", Status{Position: geo.Vec3{Z: 10}, Battery: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].From != "uav1" || got[0].Battery != 0.8 {
		t.Fatalf("received = %+v", got)
	}
	if b.DroppedRange != 1 {
		t.Fatalf("dropped = %d, want 1 (the far node)", b.DroppedRange)
	}
	// Serialization delay: 64 B at 250 kb/s + 2 ms ≈ 4.05 ms.
	if got[0].Time != 0 {
		t.Fatalf("stamped time = %v", got[0].Time)
	}
	if now := e.Now(); math.Abs(now-(64*8/250e3+0.002)) > 1e-9 {
		t.Fatalf("delivery time = %v", now)
	}
}

func TestSenderDoesNotHearItself(t *testing.T) {
	b, e := newBus(t)
	mustAttach(t, b, &Node{ID: "a", Position: fixedPos(geo.Vec3{}),
		OnStatus: func(Status) { t.Error("sender heard itself") }})
	mustAttach(t, b, &Node{ID: "b", Position: fixedPos(geo.Vec3{X: 10})})
	if err := b.SendStatus("a", Status{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaypointUnicast(t *testing.T) {
	b, e := newBus(t)
	var got []Waypoint
	mustAttach(t, b, &Node{ID: "gcs", Position: fixedPos(geo.Vec3{})})
	mustAttach(t, b, &Node{ID: "uav1", Position: fixedPos(geo.Vec3{X: 100}),
		OnWaypoint: func(w Waypoint) { got = append(got, w) }})
	mustAttach(t, b, &Node{ID: "uav2", Position: fixedPos(geo.Vec3{X: 200}),
		OnWaypoint: func(Waypoint) { t.Error("wrong recipient") }})

	wp := Waypoint{To: "uav1", Target: geo.Vec3{X: 60, Z: 10}, SpeedMPS: 4.5, Hold: true}
	if err := b.SendWaypoint("gcs", wp); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Target != wp.Target || !got[0].Hold {
		t.Fatalf("received = %+v", got)
	}
}

func TestWaypointOutOfRangeIsTypedLoss(t *testing.T) {
	b, e := newBus(t)
	mustAttach(t, b, &Node{ID: "gcs", Position: fixedPos(geo.Vec3{})})
	mustAttach(t, b, &Node{ID: "uav1", Position: fixedPos(geo.Vec3{X: 3000}),
		OnWaypoint: func(Waypoint) { t.Error("beyond-range delivery") }})
	err := b.SendWaypoint("gcs", Waypoint{To: "uav1"})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.DroppedRange != 1 {
		t.Fatalf("dropped = %d", b.DroppedRange)
	}
}

func TestStatusOutOfRangeIsTypedLoss(t *testing.T) {
	b, e := newBus(t)
	mustAttach(t, b, &Node{ID: "uav1", Position: fixedPos(geo.Vec3{})})
	mustAttach(t, b, &Node{ID: "gcs", Position: fixedPos(geo.Vec3{X: 3000}),
		OnStatus: func(Status) { t.Error("beyond-range delivery") }})
	// A node with no OnStatus handler is not a listener: its absence from
	// coverage must not turn the send into an error.
	mustAttach(t, b, &Node{ID: "mute", Position: fixedPos(geo.Vec3{X: 10})})
	err := b.SendStatus("uav1", Status{})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// A bus with no listeners at all succeeds silently (nothing to miss).
	lone, e2 := newBus(t)
	mustAttach(t, lone, &Node{ID: "solo", Position: fixedPos(geo.Vec3{})})
	if err := lone.SendStatus("solo", Status{}); err != nil {
		t.Fatalf("lone sender errored: %v", err)
	}
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultHookDropsMessages(t *testing.T) {
	b, e := newBus(t)
	var got int
	mustAttach(t, b, &Node{ID: "a", Position: fixedPos(geo.Vec3{})})
	mustAttach(t, b, &Node{ID: "b", Position: fixedPos(geo.Vec3{X: 10}),
		OnStatus: func(Status) { got++ }, OnWaypoint: func(Waypoint) { got++ }})
	drop := true
	b.SetFault(func(now float64) bool { return drop })
	if err := b.SendStatus("a", Status{}); err != nil {
		t.Fatalf("chaos loss must look like silence, got %v", err)
	}
	if err := b.SendWaypoint("a", Waypoint{To: "b"}); err != nil {
		t.Fatalf("chaos loss must look like silence, got %v", err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("delivered %d messages through an active fault", got)
	}
	if b.DroppedFault != 2 {
		t.Fatalf("DroppedFault = %d, want 2", b.DroppedFault)
	}
	// Healing the fault restores delivery; a nil hook does too.
	drop = false
	if err := b.SendStatus("a", Status{}); err != nil {
		t.Fatal(err)
	}
	b.SetFault(nil)
	if err := b.SendWaypoint("a", Waypoint{To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("delivered = %d after healing, want 2", got)
	}
}

func TestUnknownEndpoints(t *testing.T) {
	b, _ := newBus(t)
	mustAttach(t, b, &Node{ID: "a", Position: fixedPos(geo.Vec3{})})
	if err := b.SendStatus("ghost", Status{}); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if err := b.SendWaypoint("a", Waypoint{To: "ghost"}); err == nil {
		t.Fatal("unknown recipient accepted")
	}
}

func TestCountersAccumulate(t *testing.T) {
	b, e := newBus(t)
	mustAttach(t, b, &Node{ID: "a", Position: fixedPos(geo.Vec3{})})
	mustAttach(t, b, &Node{ID: "b", Position: fixedPos(geo.Vec3{X: 10}),
		OnStatus: func(Status) {}, OnWaypoint: func(Waypoint) {}})
	for i := 0; i < 5; i++ {
		if err := b.SendStatus("a", Status{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SendWaypoint("a", Waypoint{To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.SentStatus != 5 || b.SentWaypoints != 1 || b.DeliveredMessages != 6 {
		t.Fatalf("counters: %d/%d/%d", b.SentStatus, b.SentWaypoints, b.DeliveredMessages)
	}
}

func mustAttach(t *testing.T, b *Bus, n *Node) {
	t.Helper()
	if err := b.Attach(n); err != nil {
		t.Fatal(err)
	}
}
