// Package telemetry models the paper's control channel: an XBeePro
// 802.15.4 link at 2.4 GHz with "low bandwidth (up to 250 kb/s) but long
// range (up to 1.5 km)", reserved for (i) light-weight UAV status
// (position, speed) to the central planner and (ii) new waypoints from the
// planner to the UAVs (Section 3).
//
// The model is a broadcast bus with per-message serialization delay at the
// channel bit rate and a hard range cut-off. It runs on the shared
// discrete-event engine.
package telemetry

import (
	"errors"
	"fmt"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/sim"
)

// ErrOutOfRange reports that a message could not reach any addressee
// because the radios were farther apart than the channel range. It is a
// radio-layer outcome, not a usage error: callers that intentionally
// fire-and-forget (periodic beacons) may ignore it, while callers that
// depend on delivery (waypoint commands) should check with errors.Is.
var ErrOutOfRange = errors.New("telemetry: out of range")

// Params configures the control channel.
type Params struct {
	// BitRateBps of the serial air interface (XBeePro: 250 kb/s).
	BitRateBps float64
	// RangeM is the hard delivery range (XBeePro: ≈1.5 km).
	RangeM float64
	// PropagationS is a fixed per-hop latency (processing + air).
	PropagationS float64
}

// DefaultParams is the paper's XBeePro configuration.
func DefaultParams() Params {
	return Params{BitRateBps: 250e3, RangeM: 1500, PropagationS: 0.002}
}

// Validate reports the first implausible parameter.
func (p Params) Validate() error {
	switch {
	case p.BitRateBps <= 0:
		return fmt.Errorf("telemetry: bit rate %v must be positive", p.BitRateBps)
	case p.RangeM <= 0:
		return fmt.Errorf("telemetry: range %v must be positive", p.RangeM)
	case p.PropagationS < 0:
		return fmt.Errorf("telemetry: negative propagation %v", p.PropagationS)
	}
	return nil
}

// Status is the periodic telemetry beacon every UAV sends to the planner
// (GPS coordinates, speed, battery — the paper's "light-weight telemetry
// data").
type Status struct {
	From     string
	Time     float64
	Position geo.Vec3
	Velocity geo.Vec3
	Battery  float64 // fraction in [0,1]
	HasData  bool    // a batch is ready for delivery
	DataMB   float64
}

// Waypoint is a planner → UAV command.
type Waypoint struct {
	To       string
	Target   geo.Vec3
	SpeedMPS float64
	// Hold commands station keeping at the target after arrival.
	Hold bool
}

// statusBytes and waypointBytes approximate serialized message sizes
// (MAVLink-style framing).
const (
	statusBytes   = 64
	waypointBytes = 48
)

// Node is one endpoint on the control bus (a UAV or the ground station).
type Node struct {
	ID string
	// Position is queried at send time for the range check.
	Position func() geo.Vec3
	// OnStatus and OnWaypoint deliver received messages (either may be nil).
	OnStatus   func(Status)
	OnWaypoint func(Waypoint)
}

// Bus is the shared 802.15.4 control channel.
type Bus struct {
	p      Params
	engine *sim.Engine
	nodes  map[string]*Node
	fault  func(now float64) bool

	// Counters.
	SentStatus, SentWaypoints       int64
	DroppedRange, DeliveredMessages int64
	DroppedFault                    int64
}

// SetFault installs an injected-loss hook consulted once per message send:
// when it returns true the message is lost on the air (chaos-layer packet
// loss or blackout). A nil hook restores the reliable channel.
func (b *Bus) SetFault(f func(now float64) bool) { b.fault = f }

// dropByFault reports whether the fault hook eats a message sent now.
func (b *Bus) dropByFault() bool {
	if b.fault == nil {
		return false
	}
	if b.fault(b.engine.Now()) {
		b.DroppedFault++
		return true
	}
	return false
}

// NewBus creates the control channel on an engine.
func NewBus(p Params, engine *sim.Engine) (*Bus, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		return nil, fmt.Errorf("telemetry: nil engine")
	}
	return &Bus{p: p, engine: engine, nodes: make(map[string]*Node)}, nil
}

// Attach registers a node on the bus.
func (b *Bus) Attach(n *Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("telemetry: node must have an id")
	}
	if n.Position == nil {
		return fmt.Errorf("telemetry: node %q needs a position source", n.ID)
	}
	if _, dup := b.nodes[n.ID]; dup {
		return fmt.Errorf("telemetry: duplicate node %q", n.ID)
	}
	b.nodes[n.ID] = n
	return nil
}

// txDelay returns the serialization + propagation delay of a message.
func (b *Bus) txDelay(bytes int) float64 {
	return float64(bytes*8)/b.p.BitRateBps + b.p.PropagationS
}

// inRange checks the sender-receiver distance against the channel range.
func (b *Bus) inRange(from, to *Node) bool {
	return from.Position().Dist(to.Position()) <= b.p.RangeM
}

// SendStatus broadcasts a status beacon to every other node in range. It
// returns ErrOutOfRange when listeners existed but none were reachable
// (beacon senders typically ignore it — fire and forget).
func (b *Bus) SendStatus(fromID string, st Status) error {
	from, ok := b.nodes[fromID]
	if !ok {
		return fmt.Errorf("telemetry: unknown sender %q", fromID)
	}
	st.From = fromID
	st.Time = b.engine.Now()
	b.SentStatus++
	if b.dropByFault() {
		return nil // lost on the air: the sender cannot tell
	}
	delay := b.txDelay(statusBytes)
	listeners, reached := 0, 0
	for id, n := range b.nodes {
		if id == fromID || n.OnStatus == nil {
			continue
		}
		listeners++
		if !b.inRange(from, n) {
			b.DroppedRange++
			continue
		}
		reached++
		n := n
		if _, err := b.engine.After(delay, func() {
			b.DeliveredMessages++
			n.OnStatus(st)
		}); err != nil {
			return err
		}
	}
	if listeners > 0 && reached == 0 {
		return fmt.Errorf("telemetry: status from %q reached no listener: %w", fromID, ErrOutOfRange)
	}
	return nil
}

// SendWaypoint unicasts a waypoint command. It returns ErrOutOfRange when
// the pair is farther apart than the channel range.
func (b *Bus) SendWaypoint(fromID string, wp Waypoint) error {
	from, ok := b.nodes[fromID]
	if !ok {
		return fmt.Errorf("telemetry: unknown sender %q", fromID)
	}
	to, ok := b.nodes[wp.To]
	if !ok {
		return fmt.Errorf("telemetry: unknown recipient %q", wp.To)
	}
	b.SentWaypoints++
	if !b.inRange(from, to) {
		b.DroppedRange++
		return fmt.Errorf("telemetry: waypoint %s→%s: %w", fromID, wp.To, ErrOutOfRange)
	}
	if b.dropByFault() {
		return nil // lost on the air: the sender cannot tell
	}
	if to.OnWaypoint == nil {
		return nil
	}
	if _, err := b.engine.After(b.txDelay(waypointBytes), func() {
		b.DeliveredMessages++
		to.OnWaypoint(wp)
	}); err != nil {
		return err
	}
	return nil
}
