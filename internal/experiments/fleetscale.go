package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/spatial"
	"github.com/nowlater/nowlater/internal/stats"
)

// FleetScaleParams shapes the fleet-scaling sweep: how many vehicles, over
// what area, flying how far, and how hard chaos hits them.
type FleetScaleParams struct {
	// Sizes are the fleet sizes swept, each run independently.
	Sizes []int
	// AreaM is the square operating area's edge; AltM the common altitude.
	AreaM float64
	AltM  float64
	// SpeedMPS is the commanded leg speed; LegsPerVehicle how many random
	// waypoints each non-hub vehicle visits before holding at the last one.
	SpeedMPS       float64
	LegsPerVehicle int
	// DurationS is the simulated horizon of each run.
	DurationS float64
	// KillFraction of the fleet receives a scripted mid-run chaos kill.
	KillFraction float64
	// RangeScale multiplies the connectivity-threshold radius
	// sqrt(A²·ln n/(π·n)) to set the hub's contact range R(n).
	RangeScale float64
}

// DefaultFleetScaleParams is the publication-scale sweep up to 10,000
// vehicles.
func DefaultFleetScaleParams() FleetScaleParams {
	return FleetScaleParams{
		Sizes:          []int{100, 300, 1000, 3000, 10000},
		AreaM:          1200,
		AltM:           30,
		SpeedMPS:       9,
		LegsPerVehicle: 2,
		DurationS:      420,
		KillFraction:   0.01,
		RangeScale:     1.2,
	}
}

// QuickFleetScaleParams shrinks the sweep for -quick and CI while keeping a
// thousands-scale point, so the events-not-ticks cost claim is still
// exercised.
func QuickFleetScaleParams() FleetScaleParams {
	p := DefaultFleetScaleParams()
	p.Sizes = []int{100, 300, 1000, 5000}
	p.AreaM = 800
	p.DurationS = 240
	return p
}

// FleetScalePoint is one fleet size's outcome: the event-driven core's work
// accounting against the legacy lockstep cost, plus the hub-contact capacity
// and density metrics.
type FleetScalePoint struct {
	Fleet     int     `json:"fleet"`
	HubRangeM float64 `json:"hub_range_m"`
	// EventsProcessed / SubTicksStepped / SubTicksElided are the runtime's
	// work accounting; LegacySubTicks is what the lockstep core would have
	// integrated (duration/tick × fleet), the denominator of the win.
	EventsProcessed uint64 `json:"events_processed"`
	PeakPending     int    `json:"peak_pending"`
	SubTicksStepped int64  `json:"sub_ticks_stepped"`
	SubTicksElided  int64  `json:"sub_ticks_elided"`
	LegacySubTicks  int64  `json:"legacy_sub_ticks"`
	// Contacts counts hub-range contact intervals; Contacted the distinct
	// vehicles that ever made contact; Killed the scripted deaths.
	Contacts  int `json:"contacts"`
	Contacted int `json:"contacted"`
	Killed    int `json:"killed"`
	// MeanFirstContactS is the mean delay to a vehicle's first hub contact
	// (0 when none contacted); MeanContention the time-averaged number of
	// simultaneous in-range vehicles while the hub is busy.
	MeanFirstContactS float64 `json:"mean_first_contact_s"`
	MeanContention    float64 `json:"mean_contention"`
	// HubBusyFrac is the fraction of the horizon with ≥1 vehicle in range;
	// AggCapacityMbps = s̄(0.75R)·busy fraction under the single-collector
	// contact model, PerNodeMbps its per-vehicle share, and BoundMbps the
	// W/sqrt(n·ln n) per-node reference scaling.
	HubBusyFrac     float64 `json:"hub_busy_frac"`
	AggCapacityMbps float64 `json:"agg_capacity_mbps"`
	PerNodeMbps     float64 `json:"per_node_mbps"`
	BoundMbps       float64 `json:"bound_mbps"`
	// MeanNNDistM is the mean nearest-neighbor distance sampled from the
	// spatial grid at waypoint arrivals — the density the radius law shapes.
	MeanNNDistM float64 `json:"mean_nn_dist_m"`
	// WallS is the measured wall-clock of the run (excluded from CSV output:
	// it is machine-dependent).
	WallS float64 `json:"wall_s"`
}

// FleetScaleResult is the full sweep.
type FleetScaleResult struct {
	Params FleetScaleParams
	Points []FleetScalePoint
}

// FleetScale runs the publication-scale sweep.
func FleetScale(cfg Config) (FleetScaleResult, error) {
	return FleetScaleWith(cfg, DefaultFleetScaleParams())
}

// FleetScaleWith sweeps fleet sizes through the event-driven scenario core:
// each size compiles one Spec — a holding hub quad at the area center plus
// n−1 quads flying seeded random waypoint legs, ~KillFraction of them
// chaos-killed mid-run — and measures how run cost scales with events
// processed rather than simulated time × fleet size.
//
// Hub contact is a first-order analytic model: each leg is treated as a
// straight constant-speed segment and its crossings of the hub sphere R(n)
// are scheduled as exact-time engine events (clipped at the vehicle's
// scripted kill), so contact bookkeeping costs O(legs) events instead of
// O(ticks·fleet) polls. R(n) follows the connectivity-threshold law
// RangeScale·sqrt(A²·ln n/(π·n)), so density and contact pressure stay
// comparable across sizes. Sizes run sequentially so per-size wall-clock is
// honest.
func FleetScaleWith(cfg Config, p FleetScaleParams) (FleetScaleResult, error) {
	if err := cfg.Validate(); err != nil {
		return FleetScaleResult{}, err
	}
	if len(p.Sizes) == 0 || p.AreaM <= 0 || p.SpeedMPS <= 0 || p.LegsPerVehicle < 1 ||
		p.DurationS <= 0 || p.KillFraction < 0 || p.KillFraction > 1 || p.RangeScale <= 0 {
		return FleetScaleResult{}, fmt.Errorf("experiments: implausible fleetscale params %+v", p)
	}
	res := FleetScaleResult{Params: p}
	for _, n := range p.Sizes {
		if n < 2 {
			return res, fmt.Errorf("experiments: fleetscale size %d must be ≥ 2", n)
		}
		pt, err := fleetScalePoint(cfg, p, n)
		if err != nil {
			return res, fmt.Errorf("experiments: fleetscale n=%d: %w", n, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// hubTracker integrates the hub's contact process from enter/exit events:
// busy time (≥1 vehicle in range), the ∫k dt contention integral, and
// first-contact delays.
type hubTracker struct {
	k          int
	lastT      float64
	busyStart  float64
	busyTimeS  float64
	kIntegralS float64
	contacts   int
	contacted  int
	firstSumS  float64
}

func (h *hubTracker) integrate(now float64) {
	h.kIntegralS += float64(h.k) * (now - h.lastT)
	h.lastT = now
}

func fleetScalePoint(cfg Config, p FleetScaleParams, n int) (FleetScalePoint, error) {
	rng := stats.NewRNG(cfg.Seed).Substream(cfg.Seed, fmt.Sprintf("fleetscale/n%d", n))
	hub := geo.Vec3{X: p.AreaM / 2, Y: p.AreaM / 2, Z: p.AltM}
	rangeM := p.RangeScale * math.Sqrt(p.AreaM*p.AreaM*math.Log(float64(n))/(math.Pi*float64(n)))
	randPt := func() geo.Vec3 {
		return geo.Vec3{X: rng.Float64() * p.AreaM, Y: rng.Float64() * p.AreaM, Z: p.AltM}
	}

	spec := scenario.Spec{
		Name:      fmt.Sprintf("fleetscale/n%d", n),
		Seed:      cfg.Seed,
		DurationS: p.DurationS,
		Vehicles: []scenario.VehicleSpec{
			{ID: "hub", Platform: scenario.PlatformQuad, Start: hub, Hold: true},
		},
	}
	ids := make([]string, n-1)
	for i := range ids {
		ids[i] = fmt.Sprintf("v%05d", i)
		vs := scenario.VehicleSpec{
			ID: ids[i], Platform: scenario.PlatformQuad,
			Start: randPt(), SpeedMPS: p.SpeedMPS,
		}
		for l := 0; l < p.LegsPerVehicle; l++ {
			vs.Route = append(vs.Route, randPt())
		}
		spec.Vehicles = append(spec.Vehicles, vs)
	}
	killAt := make(map[string]float64)
	if k := int(math.Round(p.KillFraction * float64(len(ids)))); k > 0 {
		for _, j := range rng.Perm(len(ids))[:k] {
			t := rng.Uniform(0.15, 0.6) * p.DurationS
			killAt[ids[j]] = t
			spec.Chaos = append(spec.Chaos, fmt.Sprintf("vehicle fail %s %g", ids[j], t))
		}
	}
	killOf := func(id string) float64 {
		if t, ok := killAt[id]; ok {
			return t
		}
		return math.Inf(1)
	}

	rt, err := scenario.Compile(spec)
	if err != nil {
		return FleetScalePoint{}, err
	}
	eng := rt.Engine()
	grid, err := spatial.NewGrid(math.Max(rangeM, 1))
	if err != nil {
		return FleetScalePoint{}, err
	}

	tr := &hubTracker{}
	seen := make([]bool, len(ids))
	peakPending := 0
	var nnSum float64
	var nnN int
	var evErr error
	notePending := func() {
		if l := eng.Len(); l > peakPending {
			peakPending = l
		}
	}

	// addContact schedules one [enter, exit) hub-contact interval as a pair
	// of exact-time events. Intervals are clipped to the horizon and never
	// scheduled in the past (a hold contact discovered mid-integration
	// starts now).
	addContact := func(idx int, enter, exit float64) {
		if exit > p.DurationS {
			exit = p.DurationS
		}
		if now := eng.Now(); enter < now {
			enter = now
		}
		if enter >= p.DurationS || !(exit > enter) {
			return
		}
		if _, err := eng.Schedule(enter, func() {
			now := eng.Now()
			tr.integrate(now)
			tr.k++
			if tr.k == 1 {
				tr.busyStart = now
			}
			tr.contacts++
			if !seen[idx] {
				seen[idx] = true
				tr.contacted++
				tr.firstSumS += now
			}
			notePending()
		}); err != nil && evErr == nil {
			evErr = err
		}
		if _, err := eng.Schedule(exit, func() {
			now := eng.Now()
			tr.integrate(now)
			tr.k--
			if tr.k == 0 {
				tr.busyTimeS += now - tr.busyStart
			}
		}); err != nil && evErr == nil {
			evErr = err
		}
	}

	// predictLeg intersects one straight constant-speed leg with the hub
	// sphere and schedules the crossing interval, clipped at the scripted
	// kill. Entering after the kill schedules nothing.
	predictLeg := func(idx int, from, to geo.Vec3, startT, killT float64) {
		d := to.Sub(from)
		length := d.Norm()
		if length == 0 {
			return
		}
		u := d.Scale(1 / length)
		w := from.Sub(hub)
		b := w.Dot(u)
		disc := b*b - (w.Dot(w) - rangeM*rangeM)
		if disc <= 0 {
			return
		}
		s0 := -b - math.Sqrt(disc)
		s1 := -b + math.Sqrt(disc)
		if s1 <= 0 || s0 >= length {
			return
		}
		enter := startT + math.Max(s0, 0)/p.SpeedMPS
		exit := startT + math.Min(s1, length)/p.SpeedMPS
		if enter >= killT {
			return
		}
		addContact(idx, enter, math.Min(exit, killT))
	}

	for i, id := range ids {
		grid.Upsert(i, spec.Vehicles[i+1].Start)
		predictLeg(i, spec.Vehicles[i+1].Start, spec.Vehicles[i+1].Route[0], 0, killOf(id))
	}
	for i, id := range ids {
		i, id := i, id
		c := rt.Craft(id)
		c.SetLegHook(func(int) {
			pos := c.Autopilot().Vehicle().Position()
			grid.Upsert(i, pos)
			if _, d, ok := grid.Nearest(pos, i); ok {
				nnSum += d
				nnN++
			}
			notePending()
			if c.RouteDone() {
				// Settling into a hold inside the hub sphere: in contact
				// from arrival until killed or the horizon ends.
				if pos.Dist(hub) <= rangeM {
					addContact(i, eng.Now(), killOf(id))
				}
				return
			}
			predictLeg(i, pos, c.Autopilot().Target(), eng.Now(), killOf(id))
		})
	}

	start := time.Now()
	if _, err := rt.Run(); err != nil {
		return FleetScalePoint{}, err
	}
	wall := time.Since(start).Seconds()
	if evErr != nil {
		return FleetScalePoint{}, evErr
	}
	if tr.k > 0 { // defensive: every exit is clipped to the horizon
		tr.integrate(p.DurationS)
		tr.busyTimeS += p.DurationS - tr.busyStart
		tr.k = 0
	}

	st := rt.Stats()
	sbar := core.QuadrocopterFit().Bps(0.75*rangeM) / 1e6
	busyFrac := tr.busyTimeS / p.DurationS
	pt := FleetScalePoint{
		Fleet:           n,
		HubRangeM:       rangeM,
		EventsProcessed: st.EventsProcessed,
		PeakPending:     peakPending,
		SubTicksStepped: st.SubTicksStepped,
		SubTicksElided:  st.SubTicksElided,
		LegacySubTicks:  int64(p.DurationS/scenario.ControlTickS) * int64(n),
		Contacts:        tr.contacts,
		Contacted:       tr.contacted,
		Killed:          len(killAt),
		MeanContention:  0,
		HubBusyFrac:     busyFrac,
		AggCapacityMbps: sbar * busyFrac,
		PerNodeMbps:     sbar * busyFrac / float64(n-1),
		BoundMbps:       sbar / math.Sqrt(float64(n)*math.Log(float64(n))),
		WallS:           wall,
	}
	if tr.contacted > 0 {
		pt.MeanFirstContactS = tr.firstSumS / float64(tr.contacted)
	}
	if tr.busyTimeS > 0 {
		pt.MeanContention = tr.kIntegralS / tr.busyTimeS
	}
	if nnN > 0 {
		pt.MeanNNDistM = nnSum / float64(nnN)
	}
	return pt, nil
}
