package experiments

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Trials: 0, TrialSeconds: 1}).Validate(); err == nil {
		t.Fatal("zero trials accepted")
	}
	if err := (Config{Trials: 1, TrialSeconds: 0}).Validate(); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	want := map[string][2]string{
		"Hovering":              {"No", "Yes"},
		"Battery autonomy":      {"30 minutes", "20 minutes"},
		"Cruise speed":          {"10 m/s", "4.5 m/s in auto mode"},
		"Maximum safe altitude": {"300 m", "100 m"},
	}
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] || row[2] != w[1] {
				t.Errorf("%s: got %q/%q, want %q/%q", row[0], row[1], row[2], w[0], w[1])
			}
		}
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 5 {
		t.Fatalf("strategies = %d", len(res.Strategies))
	}
	byName := map[string]Fig1Strategy{}
	for _, s := range res.Strategies {
		byName[s.Name] = s
	}
	// An intermediate shipping distance beats transmitting at d0 for the
	// 20 MB batch (the paper's headline observation).
	d80 := byName["d=80"].CompletionS
	best := math.Inf(1)
	for _, name := range []string{"d=20", "d=40", "d=60"} {
		if c := byName[name].CompletionS; c < best {
			best = c
		}
	}
	if best >= d80 {
		t.Fatalf("no shipping strategy beat transmit-at-80: best %v vs %v", best, d80)
	}
	// The moving strategy does not complete within its approach window.
	if !math.IsInf(byName["moving"].CompletionS, 1) {
		t.Fatalf("moving completed in %v", byName["moving"].CompletionS)
	}
	if mv := byName["moving"].DeliveredMB; mv <= 0 || mv >= res.Params.BatchMB {
		t.Fatalf("moving delivered %v MB", mv)
	}
	// Analytic crossover lands in the paper's neighbourhood.
	if res.AnalyticCrossoverMB < 3 || res.AnalyticCrossoverMB > 25 {
		t.Fatalf("crossover %v MB", res.AnalyticCrossoverMB)
	}
	// Shipping strategies deliver nothing before their shipping time.
	for _, name := range []string{"d=20", "d=40", "d=60"} {
		st := byName[name]
		ship := (res.Params.D0M - st.TargetDM) / res.Params.ShipSpeed
		for _, p := range st.Series {
			if p.TimeS < ship-1 && p.DeliveredMB > 0 {
				t.Fatalf("%s delivered during shipping at t=%v", name, p.TimeS)
			}
		}
	}
}

func TestFig4Traces(t *testing.T) {
	res, err := Fig4(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Airplanes) != 2 || len(res.Quads) != 8 {
		t.Fatalf("traces: %d airplanes, %d quads", len(res.Airplanes), len(res.Quads))
	}
	for _, tr := range res.Airplanes {
		if len(tr.Fixes) < 50 {
			t.Fatalf("%s: only %d fixes", tr.VehicleID, len(tr.Fixes))
		}
	}
	// Pairwise airplane distances must sweep a wide range (the paper's
	// 20–400 m), and quads must hold near their nominal separations.
	minD, maxD := math.Inf(1), 0.0
	for _, d := range res.AirplaneDistances {
		minD = math.Min(minD, d)
		maxD = math.Max(maxD, d)
	}
	if minD > 60 || maxD < 300 {
		t.Fatalf("airplane distance sweep [%v, %v] too narrow", minD, maxD)
	}
	// Quad traces stay near their hold altitude of 10 m.
	for _, tr := range res.Quads {
		for _, f := range tr.Fixes {
			if f.ENU.Z < 0 || f.ENU.Z > 25 {
				t.Fatalf("%s: fix altitude %v", tr.VehicleID, f.ENU.Z)
			}
		}
	}
}

func TestFig5Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("flight simulation is slow")
	}
	res, err := Fig5(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) < 10 {
		t.Fatalf("bins = %d", len(res.Bins))
	}
	// The fit must land near the paper's s(d) = −5.56·log2(d) + 49.
	t.Logf("fig5 fit: A=%.2f B=%.2f R²=%.3f (paper −5.56, 49, 0.9)", res.Fit.A, res.Fit.B, res.Fit.R2)
	if res.Fit.A < -9 || res.Fit.A > -3.5 {
		t.Errorf("slope %v outside [−9, −3.5]", res.Fit.A)
	}
	if res.Fit.B < 35 || res.Fit.B > 65 {
		t.Errorf("intercept %v outside [35, 65]", res.Fit.B)
	}
	if res.Fit.R2 < 0.8 {
		t.Errorf("R² = %v", res.Fit.R2)
	}
	// Near-range median ≈20–30 Mb/s (the paper's "≈20 Mb/s ...
	// more the one expected of 802.11g").
	if first := res.Bins[0]; first.DistanceM == 20 &&
		(first.Box.Median < 12 || first.Box.Median > 38) {
		t.Errorf("median at 20 m = %v", first.Box.Median)
	}
}

func TestFig6FixedBeatsAuto(t *testing.T) {
	if testing.Short() {
		t.Skip("flight simulation is slow")
	}
	res, err := Fig6(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distances) < 8 {
		t.Fatalf("bins = %d", len(res.Distances))
	}
	// The best fixed MCS must beat auto-rate at (nearly) every distance;
	// the paper reports ≥2×, we require a clear win on average.
	adv := res.MedianAdvantage()
	var sum float64
	wins := 0
	for i, a := range adv {
		if !math.IsInf(a, 1) {
			sum += a
		}
		if res.BestMedian[i] > res.AutoMedian[i] {
			wins++
		}
	}
	mean := sum / float64(len(adv))
	t.Logf("fig6 mean best/auto advantage = %.2f, wins %d/%d", mean, wins, len(adv))
	if mean < 1.25 {
		t.Errorf("mean advantage %v < 1.25", mean)
	}
	if wins*10 < len(adv)*8 {
		t.Errorf("fixed won only %d of %d bins", wins, len(adv))
	}
	// Low-index STBC MCS dominate the winning set (the paper: MCS1–3 win
	// everywhere up to 220 m; SDM MCS8 never wins under strong LoS).
	for i, m := range res.BestMCS {
		if res.Distances[i] <= 220 && m == 8 {
			t.Errorf("MCS8 won at %v m", res.Distances[i])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("flight simulation is slow")
	}
	res, err := Fig7(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Left panel: hovering throughput declines with distance (ends).
	if len(res.Hover) < 4 {
		t.Fatalf("hover bins = %d", len(res.Hover))
	}
	first, last := res.Hover[0], res.Hover[len(res.Hover)-1]
	if first.Box.Median <= last.Box.Median {
		t.Fatalf("hover medians do not decline: %v → %v", first.Box.Median, last.Box.Median)
	}
	// Hover fit within the calibration band of the paper's quad fit.
	t.Logf("fig7 hover fit: A=%.2f B=%.2f R²=%.3f (paper −10.5, 73, 0.96)",
		res.HoverFit.A, res.HoverFit.B, res.HoverFit.R2)
	if res.HoverFit.A < -16 || res.HoverFit.A > -6 {
		t.Errorf("hover slope %v outside [−16, −6]", res.HoverFit.A)
	}
	// Centre panel: moving medians sit below hovering at the shared bins.
	movingWorse := 0
	shared := 0
	for _, mb := range res.Moving {
		for _, hb := range res.Hover {
			if hb.DistanceM == mb.DistanceM {
				shared++
				if mb.Box.Median < hb.Box.Median {
					movingWorse++
				}
			}
		}
	}
	if shared == 0 || movingWorse*2 < shared {
		t.Errorf("moving not clearly below hover: %d of %d bins", movingWorse, shared)
	}
	// Right panel: hovering beats the fastest speed by a clear factor.
	v0 := res.Speeds[0]
	vMax := res.Speeds[len(res.Speeds)-1]
	if v0.SpeedMPS != 0 || vMax.SpeedMPS != 15 {
		t.Fatalf("speed sweep ends: %v, %v", v0.SpeedMPS, vMax.SpeedMPS)
	}
	if v0.Box.Median <= vMax.Box.Median*1.5 {
		t.Errorf("speed collapse too weak: %v vs %v", v0.Box.Median, vMax.Box.Median)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, curves := range map[string][]Fig8Curve{
		"airplane": res.Airplane, "quadrocopter": res.Quadrocopter,
	} {
		if len(curves) != 5 {
			t.Fatalf("%s: curves = %d", name, len(curves))
		}
		// dopt increases with rho (the figure's maxima march rightward).
		prev := -1.0
		for _, c := range curves {
			if c.DoptM < prev-1 {
				t.Errorf("%s: dopt fell from %v to %v at ρ=%v", name, prev, c.DoptM, c.Rho)
			}
			prev = c.DoptM
			// The marked maximum matches the curve's highest sample.
			maxU := 0.0
			for _, p := range c.Points {
				maxU = math.Max(maxU, p.Utility)
			}
			if c.UMax < maxU-1e-9 {
				t.Errorf("%s ρ=%v: optimum %v below curve max %v", name, c.Rho, c.UMax, maxU)
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(res.MdataSet)*len(res.SpeedSet) {
		t.Fatalf("points = %d", len(res.Points))
	}
	get := func(mb, v float64) Fig9Point {
		for _, p := range res.Points {
			if p.MdataMB == mb && p.SpeedMPS == v {
				return p
			}
		}
		t.Fatalf("missing point %v/%v", mb, v)
		return Fig9Point{}
	}
	// Larger Mdata at fixed speed → smaller dopt and lower utility.
	for _, v := range res.SpeedSet {
		if get(5, v).DoptM < get(45, v).DoptM-1 {
			t.Errorf("dopt should shrink with Mdata at v=%v", v)
		}
		if get(5, v).Utility < get(45, v).Utility {
			t.Errorf("utility should fall with Mdata at v=%v", v)
		}
	}
	// 45 MB at 20 m/s pins to the minimum distance (paper: "once the
	// minimum distance is reached...").
	if !get(45, 20).AtMinimum {
		t.Errorf("45 MB @ 20 m/s not at the minimum: %+v", get(45, 20))
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	cfg := QuickConfig()

	agg, err := AblationAggregation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(agg.Values[2] > agg.Values[0]*1.3) {
		t.Errorf("aggregation should lift throughput ≥1.3×: %v", agg.Values)
	}

	phyF, err := AblationPHYFeatures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 40 MHz SGI carries well over 1.5x the 20 MHz LGI rate at the same
	// MCS index when SNR is ample.
	if !(phyF.Values[3] > phyF.Values[0]*1.5) {
		t.Errorf("40MHz/SGI should beat 20MHz/LGI: %v", phyF.Values)
	}

	opt, err := AblationOptimizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Values[0] > 1e-6 {
		t.Errorf("optimizer gap vs brute force = %v", opt.Values[0])
	}

	sf, err := AblationSpeedFading(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(sf.Values[0] > sf.Values[1]) {
		t.Errorf("decoupling should flatten the speed collapse: %v", sf.Values)
	}

	fm, err := AblationFailureModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Values[0] <= 0 || fm.Values[1] <= 0 {
		t.Errorf("failure-model ablation degenerate: %v", fm.Values)
	}
}

func TestMissionLevelTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("mission simulations are slow")
	}
	res, err := MissionLevel(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 1 {
		t.Fatal("no runs")
	}
	// The rendezvous policy delivers faster (the paper's payoff)...
	if res.RendezvousMakespanS >= res.NaiveMakespanS {
		t.Errorf("rendezvous makespan %v not better than naive %v",
			res.RendezvousMakespanS, res.NaiveMakespanS)
	}
	// ...while impatience is (weakly) safer in delivered-data terms — the
	// very tension U(d) trades off.
	if res.NaiveDeliveryRatio+1e-9 < res.RendezvousDeliveryRatio {
		t.Errorf("naive should not deliver less: %v vs %v",
			res.NaiveDeliveryRatio, res.RendezvousDeliveryRatio)
	}
	t.Logf("makespan naive %.0f s vs rendezvous %.0f s; delivery %.2f vs %.2f",
		res.NaiveMakespanS, res.RendezvousMakespanS,
		res.NaiveDeliveryRatio, res.RendezvousDeliveryRatio)
}

func TestFig6LossClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("flight simulation is slow")
	}
	res, err := Fig6(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// "The packet loss rate is greatly reduced by simply fixing the rate."
	t.Logf("datagram loss: auto %.3f vs best fixed %.3f", res.AutoLoss, res.BestLoss)
	if res.AutoLoss <= res.BestLoss {
		t.Fatalf("fixing the rate should reduce loss: auto %.4f vs fixed %.4f",
			res.AutoLoss, res.BestLoss)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := Fig8(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Airplane {
		if a.Airplane[i].DoptM != b.Airplane[i].DoptM {
			t.Fatal("Fig8 not deterministic")
		}
	}
	f1, err := Fig1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fig1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.Strategies {
		if f1.Strategies[i].CompletionS != f2.Strategies[i].CompletionS {
			t.Fatal("Fig1 not deterministic")
		}
	}
}
