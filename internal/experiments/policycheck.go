package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/policy"
)

// PolicyCheckParams parameterizes the policy-table cross-check.
type PolicyCheckParams struct {
	// Airplane and Quadrocopter are the serving-table configurations under
	// test; they must use the same throughput fits as the core baselines or
	// the comparison is vacuous.
	Airplane, Quadrocopter policy.Config
	// Tolerance is the maximum acceptable |served−exact|/exact on dopt for
	// table-served decisions (exact fallbacks agree by construction).
	Tolerance float64
	// LookupIters and OptimizeIters size the timing loops.
	LookupIters, OptimizeIters int
}

// DefaultPolicyCheckParams checks the default serving tables against the
// paper sweeps at the documented interpolation bound.
func DefaultPolicyCheckParams() PolicyCheckParams {
	return PolicyCheckParams{
		Airplane:      policy.AirplaneConfig(),
		Quadrocopter:  policy.QuadrocopterConfig(),
		Tolerance:     1e-3,
		LookupIters:   4096,
		OptimizeIters: 64,
	}
}

// QuickPolicyCheckParams shrinks the serving tables to smoke scale (the
// tables build in tens of milliseconds) while still covering every sweep
// optimum the default grids cover.
func QuickPolicyCheckParams() PolicyCheckParams {
	p := DefaultPolicyCheckParams()
	p.Airplane.Grid = policy.QuickGrid()
	p.Quadrocopter.Grid = policy.Grid{
		D0M:       policy.Linspace(30, 120, 8),
		LoadMBmps: policy.Logspace(4, 1080, 12),
		Rho:       policy.RhoAxis(2e-5, 4e-3, 5),
	}
	p.LookupIters = 1024
	p.OptimizeIters = 16
	return p
}

// PolicyCheckCase is one sweep optimum replayed through a policy engine.
type PolicyCheckCase struct {
	// Figure indexes the originating sweep: 0 = Fig8 airplane, 1 = Fig8
	// quadrocopter, 2 = Fig9 grid.
	Figure int
	Query  policy.Query
	// ExactDoptM is the sweep's golden-section optimum; ServedDoptM is the
	// engine's answer; RelErr their relative gap.
	ExactDoptM  float64
	ServedDoptM float64
	RelErr      float64
	Source      policy.Source
}

// PolicyCheckResult cross-checks the precomputed decision tables against
// the Fig. 8 and Fig. 9 sweep optima and times the serving paths.
type PolicyCheckResult struct {
	Cases []PolicyCheckCase
	// MaxRelErr is the worst table-served dopt disagreement; Tolerance the
	// bound it was checked against.
	MaxRelErr float64
	Tolerance float64
	// TableServed and ExactServed count cases by serving path.
	TableServed, ExactServed int
	// LookupNS and OptimizeNS are mean wall-clock nanoseconds per
	// table-served lookup and per exact optimization; Speedup their ratio.
	LookupNS   float64
	OptimizeNS float64
	Speedup    float64
	// TablePoints is the total lattice size across both tables.
	TablePoints int
}

// PolicyCheck runs the cross-check with the default serving tables.
func PolicyCheck(cfg Config) (PolicyCheckResult, error) {
	return PolicyCheckWith(cfg, DefaultPolicyCheckParams())
}

// PolicyCheckWith replays every optimum of the Fig. 8 curves and the
// Fig. 9 (Mdata, v) grid through engine-served policy tables. Each case
// records the sweep's exact golden-section dopt, the engine's answer and
// which path produced it; a table-served answer beyond Tolerance is an
// error, because it means the precomputed tables would steer a mission to
// a measurably wrong rendezvous.
func PolicyCheckWith(cfg Config, p PolicyCheckParams) (PolicyCheckResult, error) {
	if err := cfg.Validate(); err != nil {
		return PolicyCheckResult{}, err
	}
	if p.Tolerance <= 0 {
		return PolicyCheckResult{}, fmt.Errorf("experiments: policy tolerance %v must be positive", p.Tolerance)
	}

	air, err := policy.Build(context.Background(), p.Airplane, policy.BuildOptions{
		Workers: cfg.Workers, Label: "policy/build-airplane", Checkpoint: cfg.Checkpoint,
	})
	if err != nil {
		return PolicyCheckResult{}, err
	}
	quad, err := policy.Build(context.Background(), p.Quadrocopter, policy.BuildOptions{
		Workers: cfg.Workers, Label: "policy/build-quad", Checkpoint: cfg.Checkpoint,
	})
	if err != nil {
		return PolicyCheckResult{}, err
	}
	airEng, err := policy.NewEngine(air, 0)
	if err != nil {
		return PolicyCheckResult{}, err
	}
	quadEng, err := policy.NewEngine(quad, 0)
	if err != nil {
		return PolicyCheckResult{}, err
	}

	// The case list replays exactly the optima the Fig. 8 and Fig. 9 sweeps
	// mark: both baselines across the paper's failure rates, then the
	// airplane (Mdata, v) grid at the nominal rate.
	type caseSpec struct {
		figure int
		base   core.Scenario
		eng    *policy.Engine
		q      policy.Query
	}
	var specs []caseSpec
	airBase, quadBase := core.AirplaneBaseline(), core.QuadrocopterBaseline()
	for _, rho := range fig8Rhos(failure.AirplaneRho) {
		specs = append(specs, caseSpec{0, airBase, airEng, policy.Query{
			D0M: airBase.D0M, SpeedMPS: airBase.SpeedMPS, MdataMB: airBase.MdataBytes / 1e6, Rho: rho,
		}})
	}
	for _, rho := range fig8Rhos(failure.QuadrocopterRho) {
		specs = append(specs, caseSpec{1, quadBase, quadEng, policy.Query{
			D0M: quadBase.D0M, SpeedMPS: quadBase.SpeedMPS, MdataMB: quadBase.MdataBytes / 1e6, Rho: rho,
		}})
	}
	fig9 := Fig9Result{
		MdataSet: []float64{5, 7, 10, 15, 25, 45},
		SpeedSet: []float64{3, 5, 10, 15, 20},
	}
	for _, mb := range fig9.MdataSet {
		for _, v := range fig9.SpeedSet {
			specs = append(specs, caseSpec{2, airBase, airEng, policy.Query{
				D0M: airBase.D0M, SpeedMPS: v, MdataMB: mb, Rho: failure.AirplaneRho,
			}})
		}
	}

	cases, err := mapN(cfg, "policy/cases", len(specs), func(i int) (PolicyCheckCase, error) {
		s := specs[i]
		// The exact side is the sweep's own construction: the baseline
		// scenario with the case's failure rate, geometry and payload.
		sc := s.base
		m, err := failure.NewModel(s.q.Rho)
		if err != nil {
			return PolicyCheckCase{}, err
		}
		sc.Failure = m
		sc.D0M = s.q.D0M
		sc.SpeedMPS = s.q.SpeedMPS
		sc.MdataBytes = s.q.MdataMB * 1e6
		exact, err := sc.Optimize()
		if err != nil {
			return PolicyCheckCase{}, err
		}
		served, err := s.eng.Decide(s.q)
		if err != nil {
			return PolicyCheckCase{}, err
		}
		rel := absDiff(served.DoptM, exact.DoptM) / exact.DoptM
		return PolicyCheckCase{
			Figure:      s.figure,
			Query:       s.q,
			ExactDoptM:  exact.DoptM,
			ServedDoptM: served.DoptM,
			RelErr:      rel,
			Source:      served.Source,
		}, nil
	})
	if err != nil {
		return PolicyCheckResult{}, err
	}

	res := PolicyCheckResult{
		Cases:       cases,
		Tolerance:   p.Tolerance,
		TablePoints: p.Airplane.Grid.Points() + p.Quadrocopter.Grid.Points(),
	}
	type timedQuery struct {
		q   policy.Query
		tbl *policy.Table
	}
	var inGrid []timedQuery
	for i, c := range cases {
		if c.RelErr > res.MaxRelErr {
			res.MaxRelErr = c.RelErr
		}
		switch c.Source {
		case policy.SourceTable, policy.SourceCache:
			res.TableServed++
			tbl := air
			if specs[i].eng == quadEng {
				tbl = quad
			}
			inGrid = append(inGrid, timedQuery{c.Query, tbl})
		default:
			res.ExactServed++
		}
		if c.Source == policy.SourceTable && c.RelErr > p.Tolerance {
			return res, fmt.Errorf(
				"experiments: policy table disagrees with sweep optimum at %+v: served %.4f m vs exact %.4f m (rel %.2e > %g)",
				c.Query, c.ServedDoptM, c.ExactDoptM, c.RelErr, p.Tolerance)
		}
	}
	if len(inGrid) == 0 {
		return res, fmt.Errorf("experiments: no sweep optimum landed inside the policy grids")
	}

	// Timing: mean wall-clock of the table lookup path versus the exact
	// golden-section optimizer, over the in-grid sweep queries.
	if p.LookupIters > 0 {
		start := time.Now()
		for i := 0; i < p.LookupIters; i++ {
			tq := inGrid[i%len(inGrid)]
			tq.tbl.Lookup(tq.q)
		}
		res.LookupNS = float64(time.Since(start).Nanoseconds()) / float64(p.LookupIters)
	}
	if p.OptimizeIters > 0 {
		start := time.Now()
		for i := 0; i < p.OptimizeIters; i++ {
			tq := inGrid[i%len(inGrid)]
			pcfg := p.Airplane
			if tq.tbl == quad {
				pcfg = p.Quadrocopter
			}
			if _, err := pcfg.Scenario(tq.q).Optimize(); err != nil {
				return res, err
			}
		}
		res.OptimizeNS = float64(time.Since(start).Nanoseconds()) / float64(p.OptimizeIters)
	}
	if res.LookupNS > 0 && res.OptimizeNS > 0 {
		res.Speedup = res.OptimizeNS / res.LookupNS
	}
	return res, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
