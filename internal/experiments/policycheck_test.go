package experiments

import (
	"testing"

	"github.com/nowlater/nowlater/internal/policy"
)

func TestPolicyCheck(t *testing.T) {
	res, err := PolicyCheckWith(QuickConfig(), QuickPolicyCheckParams())
	if err != nil {
		t.Fatal(err)
	}
	// Fig8 contributes 5 rhos per baseline, Fig9 a 6×5 grid.
	if want := 5 + 5 + 30; len(res.Cases) != want {
		t.Fatalf("%d cases, want %d", len(res.Cases), want)
	}
	if res.TableServed == 0 {
		t.Fatal("no sweep optimum was served from the tables")
	}
	// The paper's 5e-3 and 1e-2 failure-rate curves sit above both rho
	// axes, so exact fallbacks must appear — and agree by construction.
	if res.ExactServed == 0 {
		t.Fatal("expected out-of-grid rhos to fall back to the exact optimizer")
	}
	for _, c := range res.Cases {
		if c.Source != policy.SourceTable && c.RelErr > 1e-9 {
			t.Fatalf("exact-served case disagrees with the sweep: %+v", c)
		}
	}
	if res.MaxRelErr > res.Tolerance {
		t.Fatalf("max rel err %.3e beyond tolerance %g", res.MaxRelErr, res.Tolerance)
	}
	if res.LookupNS <= 0 || res.OptimizeNS <= 0 || res.Speedup <= 1 {
		t.Fatalf("implausible timings: lookup %.0f ns, optimize %.0f ns, speedup %.1f",
			res.LookupNS, res.OptimizeNS, res.Speedup)
	}
	t.Logf("policy check: %d/%d table-served, max rel err %.3e, %.0f ns lookup vs %.0f ns exact (%.0fx)",
		res.TableServed, len(res.Cases), res.MaxRelErr, res.LookupNS, res.OptimizeNS, res.Speedup)
}

func TestPolicyCheckValidation(t *testing.T) {
	p := QuickPolicyCheckParams()
	p.Tolerance = 0
	if _, err := PolicyCheckWith(QuickConfig(), p); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	bad := QuickConfig()
	bad.Trials = 0
	if _, err := PolicyCheck(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}
