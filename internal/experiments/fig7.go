package experiments

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// SpeedBin is one column of Fig. 7's right panel.
type SpeedBin struct {
	SpeedMPS  float64
	SamplesMb []float64
	Box       stats.Boxplot
}

// Fig7Result reproduces the three quadrocopter panels of Fig. 7:
// throughput vs. distance while hovering (left), while one quad approaches
// at ≈8 m/s (centre), and throughput vs. cruise speed at ≈60 m (right).
type Fig7Result struct {
	Hover  []DistanceBin
	Moving []DistanceBin
	Speeds []SpeedBin
	// HoverFit is the paper's Section 4 quadrocopter fit target:
	// s(d) = −10.5·log2(d) + 73, R² = 0.96.
	HoverFit stats.LogFit
}

// Fig7 runs all three panels.
func Fig7(cfg Config) (Fig7Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig7Result{}, err
	}
	var res Fig7Result

	// Left: hovering pairs at 20–80 m; trials of one bin run on the pool.
	hover := make(map[float64][]float64)
	for _, d := range []float64{20, 30, 40, 50, 60, 70, 80} {
		label := fmt.Sprintf("fig7/hover/d%.0f", d)
		xs, err := mapTrials(cfg, label, func(trial int) (float64, error) {
			lcfg := trialLinkConfig(cfg.Seed, label, trial)
			l, err := link.New(lcfg, minstrelFor(lcfg))
			if err != nil {
				return 0, err
			}
			m := l.Measure(link.Geometry{DistanceM: d, AltitudeM: 10}, cfg.TrialSeconds)
			return m.ThroughputBps / 1e6, nil
		})
		if err != nil {
			return Fig7Result{}, err
		}
		hover[d] = xs
	}
	res.Hover = binSamples(hover)
	if ds, meds := medians(res.Hover); len(ds) >= 3 {
		if fit, err := stats.FitLog2(ds, meds); err == nil {
			res.HoverFit = fit
		}
	}

	// Centre: one quad approaches the hovering one at ≈8 m/s, binned by
	// distance along the pass. Passes run in parallel; binning happens
	// afterwards in trial order, matching the serial accumulation.
	perTrial, err := mapTrials(cfg, "fig7/approach", func(trial int) ([]windowSample, error) {
		return fig7ApproachRun(cfg, trial)
	})
	if err != nil {
		return Fig7Result{}, err
	}
	moving := make(map[float64][]float64)
	for _, samples := range perTrial {
		for _, s := range samples {
			if s.Partial {
				continue // trailing sub-window: not comparable to full windows
			}
			bin := math.Round(s.DistanceM/fig5BinWidth) * fig5BinWidth
			if bin < 20 || bin > 80 {
				continue
			}
			moving[bin] = append(moving[bin], s.ThroughputMb)
		}
	}
	res.Moving = binSamples(moving)

	// Right: orbiting at ~60 m separation at different cruise speeds.
	for _, v := range []float64{0, 2, 4, 6, 8, 10, 12, 15} {
		label := fmt.Sprintf("fig7/speed/v%.0f", v)
		xs, err := mapTrials(cfg, label, func(trial int) (float64, error) {
			lcfg := trialLinkConfig(cfg.Seed, label, trial)
			l, err := link.New(lcfg, minstrelFor(lcfg))
			if err != nil {
				return 0, err
			}
			m := l.Measure(link.Geometry{DistanceM: 60, AltitudeM: 10, RelSpeedMPS: v}, cfg.TrialSeconds)
			return m.ThroughputBps / 1e6, nil
		})
		if err != nil {
			return Fig7Result{}, err
		}
		box, err := stats.Summarize(xs)
		if err != nil {
			return Fig7Result{}, err
		}
		res.Speeds = append(res.Speeds, SpeedBin{SpeedMPS: v, SamplesMb: xs, Box: box})
	}
	return res, nil
}

// fig7ApproachRun flies one 100 m → 20 m approach at ≈8 m/s while
// saturating the link, declared as a Spec. The 0.5 s window gives distance
// resolution over the ≈10 s pass (80 m at 8 m/s).
func fig7ApproachRun(cfg Config, trial int) ([]windowSample, error) {
	s := trialSpec("fig7/approach", cfg.Seed, "fig7/approach", trial)
	s.Vehicles = []scenario.VehicleSpec{
		{ID: "mover", Platform: scenario.PlatformQuad, Start: geo.Vec3{X: 100, Z: 10},
			Route: []geo.Vec3{{X: 20, Z: 10}}, SpeedMPS: 8},
		{ID: "target", Platform: scenario.PlatformQuad, Start: geo.Vec3{Z: 10}, Hold: true},
	}
	s.Traffic = []scenario.TrafficSpec{{From: "mover", To: "target", DurationS: 10.5, WindowS: 0.5}}
	res, err := runSpec(s)
	if err != nil {
		return nil, err
	}
	return res.Traffic[0].Samples, nil
}
