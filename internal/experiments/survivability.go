package experiments

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/fleet"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// SurvivabilityPoint is one fault-intensity grid point of the chaos
// experiment: the same scripted fault schedule thrown at the naive
// (plain-transfer) and resilient mission postures.
type SurvivabilityPoint struct {
	// Intensity scales the fault schedule in [0, 1]; 0 is the fault-free
	// control that must reproduce the clean mission bit-for-bit.
	Intensity float64
	// Delivery ratio (delivered / sensed) aggregated over the trials.
	NaiveDeliveryRatio     float64
	ResilientDeliveryRatio float64
	// Median delivery delay (s) from scan completion to last byte, over
	// completed deliveries only (NaN when nothing completed).
	NaiveMedianDelayS     float64
	ResilientMedianDelayS float64
	// Partial deliveries (some bytes landed, batch never finished).
	NaivePartials     int
	ResilientPartials int
}

// SurvivabilityResult is the outcome of the chaos experiment.
type SurvivabilityResult struct {
	// Runs is the number of paired missions behind each grid point.
	Runs   int
	Points []SurvivabilityPoint
}

// survivalMissionSpec is the chaos scenario as declarative data: three
// scouts feeding a two-relay tier, so a mid-mission relay loss leaves a
// surviving receiver for the resilient posture to reassign to. The chaos
// schedule rides along in its text form, making the whole paired mission a
// value that fleet.FromSpec compiles.
func survivalMissionSpec(seed int64, resilient bool, sched *chaos.Schedule) scenario.MissionSpec {
	scout := func(id string, start, origin geo.Vec3) scenario.MissionVehicle {
		return scenario.MissionVehicle{
			ID: id, Platform: scenario.PlatformQuad, Role: scenario.RoleScout,
			Start: start, SectorOrigin: origin,
			SectorWM: 40, SectorHM: 40, AltitudeM: 10, MaxScanLanes: 2,
		}
	}
	return scenario.MissionSpec{
		Name:       "chaos/survivability",
		Seed:       seed,
		MaxSeconds: 3600,
		Vehicles: []scenario.MissionVehicle{
			scout("scout-1", geo.Vec3{X: 170, Z: 10}, geo.Vec3{X: 160, Y: 10}),
			scout("scout-2", geo.Vec3{X: -150, Y: 50, Z: 10}, geo.Vec3{X: -160, Y: 40}),
			scout("scout-3", geo.Vec3{Y: 170, Z: 10}, geo.Vec3{X: -20, Y: 160}),
			{ID: "relay-1", Platform: scenario.PlatformQuad, Role: scenario.RoleRelay, Start: geo.Vec3{Z: 10}},
			{ID: "relay-2", Platform: scenario.PlatformQuad, Role: scenario.RoleRelay, Start: geo.Vec3{X: -60, Y: -60, Z: 10}},
		},
		Resilient:   resilient,
		StaleAfterS: 10,
		Chaos:       scenario.ChaosLines(sched),
	}
}

// relayKillS is when the scripted relay loss strikes: inside the clean
// mission's first transfer to relay-1 (≈97–101 s, see the survivability
// test's timeline check), so a plain transfer is stranded mid-batch.
const relayKillS = 99

// survivalSchedule scales one fault script by intensity ∈ [0, 1]:
// telemetry loss over the whole mission, a deep fade then a hard outage
// across the later transfer band, and — from intensity 0.5 up — the loss
// of relay-1 mid-transfer. Intensity 0 is an empty schedule (the
// fault-free control).
func survivalSchedule(intensity float64) *chaos.Schedule {
	s := &chaos.Schedule{Seed: 1}
	if intensity <= 0 {
		return s
	}
	s.Telemetry = []chaos.TelemetryFault{
		{Window: chaos.Window{StartS: 0, EndS: 3600}, LossProb: 0.5 * intensity},
	}
	s.Links = []chaos.LinkFault{
		{Window: chaos.Window{StartS: 100, EndS: 130}, ID: chaos.Wildcard, ExtraLossDB: 10 * intensity},
		{Window: chaos.Window{StartS: 135, EndS: 135 + 8*intensity}, ID: chaos.Wildcard, Outage: true},
	}
	if intensity >= 0.5 {
		s.Vehicles = []chaos.VehicleFault{{ID: "relay-1", AtS: relayKillS}}
	}
	return s
}

// survivalTrial is one paired mission's contribution to a grid point.
// Fields are exported because trials are gob-journaled under -checkpoint
// and gob silently drops unexported fields.
type survivalTrial struct {
	NaiveDeliveredMB, ResilDeliveredMB, TotalMB float64
	NaivePartials, ResilPartials                int
	NaiveDelays, ResilDelays                    []float64
}

// Survivability runs the chaos experiment: for each fault intensity on the
// grid, cfg.Trials paired missions (same seeds, same cloned schedule) under
// the naive and the resilient delivery postures. It quantifies what the
// resilience machinery — resumable transfers, staleness-aware planning,
// relay reassignment — buys as faults escalate.
//
// The paired missions of one grid point run on the shared bounded pool;
// per-point aggregation happens afterwards in trial order, so every ratio,
// partial count and delay median is bit-identical to the serial sweep.
func Survivability(cfg Config) (SurvivabilityResult, error) {
	if err := cfg.Validate(); err != nil {
		return SurvivabilityResult{}, err
	}
	grid := []float64{0, 0.25, 0.5, 0.75, 1}
	res := SurvivabilityResult{Runs: cfg.Trials}

	for _, intensity := range grid {
		p := SurvivabilityPoint{Intensity: intensity}
		label := fmt.Sprintf("chaos/i%.2f", intensity)
		trials, err := mapTrials(cfg, label, func(trial int) (survivalTrial, error) {
			var out survivalTrial
			for _, resilient := range []bool{false, true} {
				spec := survivalMissionSpec(cfg.Seed+int64(trial)*101, resilient, survivalSchedule(intensity))
				ms, err := fleet.FromSpec(spec)
				if err != nil {
					return survivalTrial{}, err
				}
				rep, err := ms.Run(spec.MaxSeconds)
				if err != nil {
					return survivalTrial{}, err
				}
				if resilient {
					out.ResilDeliveredMB = rep.DeliveredMB
					out.ResilPartials = rep.PartialDeliveries
					out.ResilDelays = delays(rep)
				} else {
					out.NaiveDeliveredMB = rep.DeliveredMB
					out.NaivePartials = rep.PartialDeliveries
					out.NaiveDelays = delays(rep)
					out.TotalMB = rep.TotalMB
				}
			}
			return out, nil
		})
		if err != nil {
			return SurvivabilityResult{}, err
		}

		var naiveDel, resilDel, total float64
		var naiveDelays, resilDelays []float64
		for _, tr := range trials {
			naiveDel += tr.NaiveDeliveredMB
			resilDel += tr.ResilDeliveredMB
			total += tr.TotalMB
			p.NaivePartials += tr.NaivePartials
			p.ResilientPartials += tr.ResilPartials
			naiveDelays = append(naiveDelays, tr.NaiveDelays...)
			resilDelays = append(resilDelays, tr.ResilDelays...)
		}
		if total > 0 {
			p.NaiveDeliveryRatio = naiveDel / total
			p.ResilientDeliveryRatio = resilDel / total
		}
		p.NaiveMedianDelayS = medianOrNaN(naiveDelays)
		p.ResilientMedianDelayS = medianOrNaN(resilDelays)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// delays extracts scan-to-delivery latencies of completed deliveries.
func delays(rep fleet.Report) []float64 {
	var out []float64
	for _, d := range rep.Deliveries {
		if !math.IsInf(d.DeliveredS, 1) && !d.Failed {
			out = append(out, d.DeliveredS-d.ScanDoneS)
		}
	}
	return out
}

func medianOrNaN(xs []float64) float64 {
	m, err := stats.Median(xs)
	if err != nil {
		return math.NaN()
	}
	return m
}
