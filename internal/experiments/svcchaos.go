package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/nlclient"
	"github.com/nowlater/nowlater/internal/nlserver"
	"github.com/nowlater/nowlater/internal/nlwire"
	"github.com/nowlater/nowlater/internal/policy"
)

// SvcChaosPoint is one fault-intensity grid point of the service-layer
// chaos experiment: the same seeded fault schedule and query stream thrown
// at nowlaterd through the chaos proxy, once with the naive client and once
// with the resilient one.
type SvcChaosPoint struct {
	Intensity float64
	// OK counts queries answered within their deadline; the ratios divide
	// by the per-arm query count.
	NaiveOK, ResilientOK           int
	NaiveOKRatio, ResilientOKRatio float64
	// Median latency (ms) over answered queries only (NaN when none).
	NaiveMedianMs, ResilientMedianMs float64
	// What the resilient client spent to get its answers.
	ResilientRetries, ResilientHedges uint64
}

// SvcChaosResult is the outcome of the service-chaos experiment.
type SvcChaosResult struct {
	// Queries is the per-arm query count behind each grid point.
	Queries int
	Points  []SvcChaosPoint
}

// svcChaosSchedule scales one service-fault script by intensity ∈ [0, 1]:
// added per-request latency, probabilistic connection resets and
// probabilistic blackholes, all active for the whole run. Intensity 0 is
// the fault-free control where both clients must score 100%.
func svcChaosSchedule(intensity float64) *chaos.Schedule {
	s := &chaos.Schedule{Seed: 11}
	if intensity <= 0 {
		return s
	}
	always := chaos.Window{EndS: 1e9}
	s.Service = []chaos.ServiceFault{
		{Window: always, Mode: chaos.SvcLatency, DelayS: 0.003 * intensity},
		{Window: always, Mode: chaos.SvcReset, Prob: 0.25 * intensity},
		{Window: always, Mode: chaos.SvcDrop, Prob: 0.15 * intensity},
	}
	return s
}

// svcChaosDeadline bounds each query; it is what saves a client from a
// blackholed request, so it is part of the experiment's contract.
const svcChaosDeadline = 250 * time.Millisecond

// SvcChaos runs the service-layer chaos experiment: a live in-process
// nowlaterd behind a fault-injecting chaos.ServiceProxy, driven by the
// naive and the resilient nlclient under paired seeds (same query stream,
// same cloned fault schedule). It quantifies what the client-side
// resilience machinery — retry budget with Retry-After floors, hedging,
// deadline propagation — buys as the service's failure modes escalate,
// the service-layer counterpart of the Survivability experiment.
//
// Latencies are wall-clock (this arm of the evaluation exercises real HTTP
// sockets, not simulated time), so unlike the simulation experiments the
// medians are not bit-reproducible — the OK counts are the stable series.
func SvcChaos(cfg Config) (SvcChaosResult, error) {
	if err := cfg.Validate(); err != nil {
		return SvcChaosResult{}, err
	}
	pcfg := policy.AirplaneConfig()
	pcfg.Grid = policy.QuickGrid()
	tbl, err := policy.Build(context.Background(), pcfg, policy.BuildOptions{})
	if err != nil {
		return SvcChaosResult{}, fmt.Errorf("svcchaos: building policy table: %w", err)
	}
	eng, err := policy.NewEngine(tbl, 1024)
	if err != nil {
		return SvcChaosResult{}, fmt.Errorf("svcchaos: %w", err)
	}

	res := SvcChaosResult{Queries: 10 * cfg.Trials}
	for _, intensity := range []float64{0, 0.5, 1} {
		p := SvcChaosPoint{Intensity: intensity}
		for _, resilient := range []bool{false, true} {
			ok, medianMs, st, err := svcChaosArm(cfg, eng, intensity, resilient, res.Queries)
			if err != nil {
				return SvcChaosResult{}, err
			}
			if resilient {
				p.ResilientOK = ok
				p.ResilientOKRatio = float64(ok) / float64(res.Queries)
				p.ResilientMedianMs = medianMs
				p.ResilientRetries = st.Retries
				p.ResilientHedges = st.Hedges
			} else {
				p.NaiveOK = ok
				p.NaiveOKRatio = float64(ok) / float64(res.Queries)
				p.NaiveMedianMs = medianMs
			}
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// svcChaosArm runs one (intensity, client-posture) cell: fresh server,
// fresh proxy over a cloned schedule, a seeded serial query stream.
func svcChaosArm(cfg Config, eng *policy.Engine, intensity float64, resilient bool, queries int) (ok int, medianMs float64, st nlclient.Stats, err error) {
	backendURL, stopBackend, err := serveLoopback(nlserver.New(nlserver.Config{Engine: eng}).Handler())
	if err != nil {
		return 0, 0, st, fmt.Errorf("svcchaos: %w", err)
	}
	defer stopBackend()
	proxy, err := chaos.NewServiceProxy(backendURL, svcChaosSchedule(intensity).Clone())
	if err != nil {
		return 0, 0, st, fmt.Errorf("svcchaos: %w", err)
	}
	proxyURL, stopProxy, err := serveLoopback(proxy)
	if err != nil {
		return 0, 0, st, fmt.Errorf("svcchaos: %w", err)
	}
	defer stopProxy()

	// Keep-alives off: Go's transport silently replays requests whose
	// *reused* connection died, which would blur the naive/resilient
	// contrast and consume extra fault draws.
	ccfg := nlclient.Config{
		BaseURL:     proxyURL,
		HTTPClient:  &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		Naive:       !resilient,
		Seed:        cfg.Seed,
		BaseBackoff: 2 * time.Millisecond,
	}
	if resilient {
		ccfg.Hedge = 25 * time.Millisecond
	}
	client := nlclient.New(ccfg)

	rng := rand.New(rand.NewSource(cfg.Seed))
	var latencies []float64
	for i := 0; i < queries; i++ {
		q := nlwire.Query{
			D0M:      60 + rng.Float64()*340,
			SpeedMPS: 2 + rng.Float64()*18,
			MdataMB:  1 + rng.Float64()*40,
			Rho:      rng.Float64() * 2e-3,
		}
		ctx, cancel := context.WithTimeout(context.Background(), svcChaosDeadline)
		t0 := time.Now()
		_, derr := client.Decide(ctx, q)
		cancel()
		if derr == nil {
			ok++
			latencies = append(latencies, float64(time.Since(t0))/float64(time.Millisecond))
		}
	}
	return ok, medianOrNaN(latencies), client.Stats(), nil
}

// serveLoopback serves h on an ephemeral loopback port, returning the base
// URL and a shutdown function.
func serveLoopback(h http.Handler) (baseURL string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}
