package experiments

import (
	"strconv"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/gps"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/stats"
)

// Fig4Trace is one vehicle's GPS trace.
type Fig4Trace struct {
	VehicleID string
	Fixes     []gps.Fix
}

// Fig4Result reproduces the GPS traces of Fig. 4: (a) two airplanes
// commuting between waypoints with relative distances 20–400 m at
// altitudes ≈80–100 m; (b) quadrocopter pairs hovering at 10 m at relative
// distances 20–80 m.
type Fig4Result struct {
	Airplanes []Fig4Trace
	Quads     []Fig4Trace
	// AirplaneDistances are the Haversine pairwise distances of the
	// airplane traces (the paper bins throughput by exactly these).
	AirplaneDistances []float64
}

// fig4Origin anchors the mission frame (the paper flew near Zurich).
var fig4Origin = geo.LatLon{Lat: 47.3769, Lon: 8.5417}

// Fig4 flies both trace patterns and records noisy GPS fixes.
func Fig4(cfg Config) (Fig4Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig4Result{}, err
	}
	var res Fig4Result
	frame := geo.NewFrame(fig4Origin)
	rng := stats.NewRNG(cfg.Seed)

	// (a) Airplanes: commute for enough time to cover several legs.
	a, err := planeAt("plane-a", geo.Vec3{X: 0, Z: 80})
	if err != nil {
		return Fig4Result{}, err
	}
	b, err := planeAt("plane-b", geo.Vec3{X: 400, Z: 100})
	if err != nil {
		return Fig4Result{}, err
	}
	commutePlanes(a, b, 400)
	recvA, err := gps.NewReceiver(gps.DefaultParams(), frame, rng.Substream(cfg.Seed, "fig4/gps-a"))
	if err != nil {
		return Fig4Result{}, err
	}
	recvB, err := gps.NewReceiver(gps.DefaultParams(), frame, rng.Substream(cfg.Seed, "fig4/gps-b"))
	if err != nil {
		return Fig4Result{}, err
	}
	// GPS fixes are labelled with the pre-step clock (the fix timestamps a
	// position already reached), so the observation label trails the engine
	// tick by one period.
	const tick = 0.05
	duration := 12 * cfg.TrialSeconds
	t := 0.0
	if err := scenario.Ticks(sim.NewEngine(), tick, duration, func(float64) bool {
		a.Step(tick)
		b.Step(tick)
		recvA.Observe(t, a.Vehicle().Position())
		recvB.Observe(t, b.Vehicle().Position())
		t += tick
		return true
	}); err != nil {
		return Fig4Result{}, err
	}
	res.Airplanes = []Fig4Trace{
		{VehicleID: "plane-a", Fixes: recvA.Trace()},
		{VehicleID: "plane-b", Fixes: recvB.Trace()},
	}
	res.AirplaneDistances = gps.PairwiseDistances(recvA.Trace(), recvB.Trace(), 0.5)

	// (b) Quadrocopters hovering at 10 m at separations 20–80 m. The
	// separations run on the shared pool: each pair draws its GPS noise from
	// label-keyed substreams (order-independent), and the traces are
	// collected in separation order, so the result matches the serial sweep.
	seps := []float64{20, 40, 60, 80}
	pairs, err := mapN(cfg, "fig4/quads", len(seps), func(i int) ([2]Fig4Trace, error) {
		d := seps[i]
		q1, err := quadAt("quad-a", geo.Vec3{Z: 10})
		if err != nil {
			return [2]Fig4Trace{}, err
		}
		q2, err := quadAt("quad-b", geo.Vec3{X: d, Z: 10})
		if err != nil {
			return [2]Fig4Trace{}, err
		}
		q1.Hold(geo.Vec3{Z: 10})
		q2.Hold(geo.Vec3{X: d, Z: 10})
		r1, err := gps.NewReceiver(gps.DefaultParams(), frame,
			rng.Substream(cfg.Seed, "fig4/quad-a/"+strconv.Itoa(int(d))))
		if err != nil {
			return [2]Fig4Trace{}, err
		}
		r2, err := gps.NewReceiver(gps.DefaultParams(), frame,
			rng.Substream(cfg.Seed, "fig4/quad-b/"+strconv.Itoa(int(d))))
		if err != nil {
			return [2]Fig4Trace{}, err
		}
		t := 0.0
		if err := scenario.Ticks(sim.NewEngine(), tick, cfg.TrialSeconds, func(float64) bool {
			q1.Step(tick)
			q2.Step(tick)
			r1.Observe(t, q1.Vehicle().Position())
			r2.Observe(t, q2.Vehicle().Position())
			t += tick
			return true
		}); err != nil {
			return [2]Fig4Trace{}, err
		}
		return [2]Fig4Trace{
			{VehicleID: "quad-a-d" + strconv.Itoa(int(d)), Fixes: r1.Trace()},
			{VehicleID: "quad-b-d" + strconv.Itoa(int(d)), Fixes: r2.Trace()},
		}, nil
	})
	if err != nil {
		return Fig4Result{}, err
	}
	for _, pair := range pairs {
		res.Quads = append(res.Quads, pair[0], pair[1])
	}
	return res, nil
}
