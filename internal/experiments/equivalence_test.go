package experiments

import (
	"fmt"
	"testing"

	"github.com/nowlater/nowlater/internal/link"
)

// repr is a bit-faithful textual form of a result: unlike
// reflect.DeepEqual it treats two NaNs as equal, and unlike JSON it
// handles ±Inf (Fig 1's "did not finish" completion time).
func repr(v any) string { return fmt.Sprintf("%#v", v) }

// TestWorkerCountInvariance is the determinism contract of the runner port:
// every experiment must produce bit-identical output whatever the worker
// count, because each trial derives its randomness from its index alone and
// aggregation happens in trial order after collection.
func TestWorkerCountInvariance(t *testing.T) {
	base := Config{Seed: 1, Trials: 2, TrialSeconds: 1}

	cases := []struct {
		name string
		run  func(cfg Config) (any, error)
	}{
		{"fig5samples", func(cfg Config) (any, error) { return airplaneFlightSamples(cfg, "fig5", "") }},
		{"fig9", func(cfg Config) (any, error) { return Fig9(cfg) }},
		{"mission", func(cfg Config) (any, error) { return MissionLevel(cfg) }},
		{"chaos", func(cfg Config) (any, error) { return Survivability(cfg) }},
		{"ablation-agg", func(cfg Config) (any, error) { return AblationAggregation(cfg) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serialCfg := base
			serialCfg.Workers = 1
			serial, err := tc.run(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			parallelCfg := base
			parallelCfg.Workers = 4
			parallel, err := tc.run(parallelCfg)
			if err != nil {
				t.Fatal(err)
			}
			if repr(serial) != repr(parallel) {
				t.Errorf("workers=1 and workers=4 disagree:\n  serial:   %.200s\n  parallel: %.200s",
					repr(serial), repr(parallel))
			}
		})
	}
}

// TestLinkMeasureTrialsWorkerInvariance pins the same contract at the link
// layer, where the trial fan-out originally lived.
func TestLinkMeasureTrialsWorkerInvariance(t *testing.T) {
	g := link.Geometry{DistanceM: 40, AltitudeM: 10}
	serial, err := link.MeasureTrialsWorkers(link.DefaultConfig(), nil, g, 1.0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := link.MeasureTrialsWorkers(link.DefaultConfig(), nil, g, 1.0, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if repr(serial) != repr(parallel) {
		t.Errorf("MeasureTrials workers=1 vs workers=3 disagree:\n  %s\n  %s", repr(serial), repr(parallel))
	}
	// And the default entry point must match the explicit-workers one.
	def, err := link.MeasureTrials(link.DefaultConfig(), nil, g, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if repr(def) != repr(serial) {
		t.Error("MeasureTrials disagrees with MeasureTrialsWorkers")
	}
}
