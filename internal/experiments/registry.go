package experiments

// StepInfo describes one reproduction step of the evaluation: the name the
// -only/-fig selectors accept and what the step regenerates.
type StepInfo struct {
	Name  string
	Title string
}

// Registry returns the ordered list of reproduction steps. cmd/experiments
// iterates this to run, select (-only) and enumerate (-list) steps, so a
// new figure needs exactly one entry here plus its runner binding — no
// hand-maintained usage strings.
func Registry() []StepInfo {
	return []StepInfo{
		{"table1", "Table 1: measured vs modelled throughput fits"},
		{"fig1", "Fig 1: strategy race — ship-then-hover vs transmit-while-moving"},
		{"fig4", "Fig 4: GPS traces of the commuting airplanes and hovering quads"},
		{"fig5", "Fig 5: airplane throughput vs distance (auto rate) with log2 fit"},
		{"fig6", "Fig 6: fixed MCS sweep vs auto-rate between airplanes"},
		{"fig7", "Fig 7: quadrocopter panels — hover, approach, speed sweep"},
		{"fig8", "Fig 8: utility and dopt over the failure-rate sweep"},
		{"fig9", "Fig 9: Mdata x speed sweep of the airplane scenario"},
		{"ablations", "Ablations: aggregation, PHY features, optimizer, fading, rate control"},
		{"mission", "Mission-level comparison: naive vs planned delivery"},
		{"chaos", "Survivability: scripted fault schedules vs the resilient posture"},
		{"svcchaos", "Service chaos: naive vs resilient client against a fault-injected nowlaterd"},
		{"policy", "Policy tables: table-served dopt vs exact optimization"},
		{"fleetscale", "Fleet scale: event-driven core cost and hub capacity, 100 to 10,000 vehicles"},
		{"trajopt", "Joint trajectory optimization: fixed vs greedy vs joint planners over Poisson pickup requests"},
	}
}

// StepNames returns the registry names in order (the -only vocabulary).
func StepNames() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, s := range reg {
		names[i] = s.Name
	}
	return names
}
