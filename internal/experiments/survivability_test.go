package experiments

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/fleet"
)

func TestSurvivalScheduleValidates(t *testing.T) {
	for _, i := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if err := survivalSchedule(i).Validate(); err != nil {
			t.Fatalf("intensity %v: %v", i, err)
		}
	}
	if !survivalSchedule(0).Empty() {
		t.Fatal("zero intensity is not the empty schedule")
	}
	if survivalSchedule(1).Empty() {
		t.Fatal("full intensity schedule is empty")
	}
}

// TestSurvivalTimeline pins the scenario geometry the schedule is built
// around: in the fault-free mission the first transfer to relay-1 must
// bracket relayKillS, so the scripted kill really lands mid-delivery.
func TestSurvivalTimeline(t *testing.T) {
	spec := survivalMissionSpec(fleet.DefaultConfig().Seed, false, nil)
	ms, err := fleet.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ms.Run(spec.MaxSeconds)
	if err != nil {
		t.Fatal(err)
	}
	first := math.Inf(1)
	var last float64
	for _, d := range rep.Deliveries {
		if d.RelayID != "relay-1" {
			continue
		}
		first = math.Min(first, d.DeliveredS)
		last = math.Max(last, d.DeliveredS)
	}
	if !(relayKillS < first && first < last) {
		t.Fatalf("relay kill at %v s does not precede the relay-1 transfers (%v..%v)",
			relayKillS, first, last)
	}
	if first-relayKillS > 30 {
		t.Fatalf("relay kill at %v s is nowhere near the first relay-1 delivery at %v s",
			relayKillS, first)
	}
}

func TestSurvivability(t *testing.T) {
	res, err := Survivability(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 1 || len(res.Points) < 3 {
		t.Fatalf("shape: %+v", res)
	}
	for _, p := range res.Points {
		if p.NaiveDeliveryRatio < 0 || p.NaiveDeliveryRatio > 1+1e-6 ||
			p.ResilientDeliveryRatio < 0 || p.ResilientDeliveryRatio > 1+1e-6 {
			t.Fatalf("ratio out of range: %+v", p)
		}
		if p.ResilientDeliveryRatio < p.NaiveDeliveryRatio-1e-9 {
			t.Fatalf("resilience made delivery worse at intensity %v: %+v", p.Intensity, p)
		}
	}
	clean := res.Points[0]
	if clean.Intensity != 0 {
		t.Fatalf("grid must start at the fault-free control: %+v", clean)
	}
	// Without faults both postures are the same mission.
	if clean.NaiveDeliveryRatio < 0.99 || clean.ResilientDeliveryRatio < 0.99 {
		t.Fatalf("fault-free control lost data: %+v", clean)
	}
	if math.Abs(clean.NaiveMedianDelayS-clean.ResilientMedianDelayS) > 1 {
		t.Fatalf("fault-free postures diverged: %+v", clean)
	}
	// The headline: under the harshest schedule the resilient posture
	// delivers strictly more than the naive one.
	worst := res.Points[len(res.Points)-1]
	if !(worst.ResilientDeliveryRatio > worst.NaiveDeliveryRatio) {
		t.Fatalf("no survivability payoff at intensity %v: naive %v vs resilient %v",
			worst.Intensity, worst.NaiveDeliveryRatio, worst.ResilientDeliveryRatio)
	}
}

func TestSurvivabilityValidation(t *testing.T) {
	bad := QuickConfig()
	bad.Trials = 0
	if _, err := Survivability(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}
