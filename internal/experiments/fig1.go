package experiments

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/transport"
)

// Fig1Params is the experiment of Fig. 1: one quadrocopter 80 m from a
// hovering receiver must deliver 20 MB.
type Fig1Params struct {
	D0M         float64
	BatchMB     float64
	ShipSpeed   float64 // shipping speed of the hover-and-transmit cases
	MovingSpeed float64 // approach speed of the move-and-transmit case
	Targets     []float64
	DeadlineS   float64
	// LoiterAfterApproach lets the moving case keep transmitting while
	// orbiting the receiver at the separation floor. The paper's
	// experiment stopped at the end of the approach (its Fig. 1 "moving"
	// curve never completes), so the default is false; enabling it
	// explores the mixed strategy the paper leaves out of scope.
	LoiterAfterApproach bool
}

// DefaultFig1Params mirrors the paper's run.
func DefaultFig1Params() Fig1Params {
	return Fig1Params{
		D0M:         80,
		BatchMB:     20,
		ShipSpeed:   4.5,
		MovingSpeed: 8,
		Targets:     []float64{20, 40, 60, 80},
		DeadlineS:   240,
	}
}

// Fig1Strategy is one curve of Fig. 1.
type Fig1Strategy struct {
	Name        string
	TargetDM    float64
	CompletionS float64
	// DeliveredMB is the total delivered when the strategy run ended
	// (equals the batch size when CompletionS is finite).
	DeliveredMB float64
	Series      []transport.SeriesPoint
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Params     Fig1Params
	Strategies []Fig1Strategy
	// BestHover is the hover-and-transmit target with the lowest
	// completion time.
	BestHover float64
	// AnalyticCrossoverMB is the model's crossover between transmitting
	// at d0 and at the best hover target (paper: ≈15 MB for d=60).
	AnalyticCrossoverMB float64
}

// Fig1 reproduces the strategy race of Fig. 1 at packet level: ship to
// each candidate distance then hover-and-transmit, plus the
// move-and-transmit case, all over the simulated quadrocopter link.
func Fig1(cfg Config) (Fig1Result, error) {
	return Fig1With(cfg, DefaultFig1Params())
}

// Fig1With runs Fig 1 under custom parameters.
func Fig1With(cfg Config, p Fig1Params) (Fig1Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig1Result{}, err
	}
	res := Fig1Result{Params: p}

	// Hover-and-transmit at each target distance, plus move-and-transmit as
	// the last slot. Strategies run on the shared pool and are collected in
	// target order, so the result matches the serial race.
	strategies, err := mapN(cfg, "fig1/strategies", len(p.Targets)+1, func(i int) (Fig1Strategy, error) {
		if i < len(p.Targets) {
			return fig1HoverStrategy(cfg, p, p.Targets[i])
		}
		return fig1MovingStrategy(cfg, p)
	})
	if err != nil {
		return Fig1Result{}, err
	}
	res.Strategies = strategies

	best := math.Inf(1)
	for _, st := range res.Strategies {
		if st.Name != "moving" && st.CompletionS < best {
			best = st.CompletionS
			res.BestHover = st.TargetDM
		}
	}
	// Analytic crossover for the winning hover target, from the paper's
	// quadrocopter scenario.
	sc := core.QuadrocopterBaseline()
	sc.D0M = p.D0M
	sc.SpeedMPS = p.ShipSpeed
	sc.MdataBytes = p.BatchMB * 1e6
	res.AnalyticCrossoverMB = sc.CrossoverMB(res.BestHover) / 1e6
	return res, nil
}

// fig1HoverStrategy ships silently to the target distance, then transmits
// while both quads hover — declared as a Spec: a route to the target, then
// a transfer gated on arrival.
func fig1HoverStrategy(cfg Config, p Fig1Params, target float64) (Fig1Strategy, error) {
	s := fig1Spec(cfg, p, fmt.Sprintf("fig1/d%.0f", target))
	if target < p.D0M {
		s.Vehicles[0].Route = []geo.Vec3{{X: target, Z: 10}}
		s.Vehicles[0].SpeedMPS = p.ShipSpeed
	}
	s.Transfers = []scenario.TransferSpec{{
		From: "mover", To: "receiver", SizeMB: p.BatchMB, DeadlineS: p.DeadlineS,
		StartOnArrival: true, Reliable: true,
	}}
	res, err := runSpec(s)
	if err != nil {
		return Fig1Strategy{}, err
	}
	tr := res.Transfers[0]
	st := Fig1Strategy{Name: fmt.Sprintf("d=%.0f", target), TargetDM: target}

	// Record the silent shipping phase in the series (tr.StartS is the end
	// of the shipping leg; zero when the target is d0 itself).
	for ts := 0.25; ts < tr.StartS; ts += 0.25 {
		st.Series = append(st.Series, transport.SeriesPoint{
			TimeS: ts, DeliveredMB: 0, DistanceM: p.D0M - p.ShipSpeed*ts,
		})
	}
	for _, pt := range tr.Series {
		pt.TimeS += tr.StartS
		st.Series = append(st.Series, pt)
	}
	st.CompletionS = tr.StartS + tr.CompletionS
	return st, nil
}

// fig1MovingStrategy transmits while approaching at the moving speed. The
// paper's run ends with the approach ("transmits while approaching the
// target UAV"); with LoiterAfterApproach the quad instead keeps orbiting
// the receiver at the separation floor, still in motion, until the batch
// completes — the mixed strategy the paper leaves out of scope.
func fig1MovingStrategy(cfg Config, p Fig1Params) (Fig1Strategy, error) {
	s := fig1Spec(cfg, p, "fig1/moving")
	s.Vehicles[0].Route = []geo.Vec3{{X: core.MinSeparationM, Z: 10}}
	s.Vehicles[0].SpeedMPS = p.MovingSpeed
	deadline := p.DeadlineS
	if p.LoiterAfterApproach {
		// After the approach leg, loop forever over the orbit ring (re-enter
		// at index 1, skipping the approach waypoint).
		s.Vehicles[0].Route = append(s.Vehicles[0].Route, orbitWaypoints(core.MinSeparationM, 10)...)
		s.Vehicles[0].Loop = true
		s.Vehicles[0].LoopFrom = 1
	} else {
		// The experiment ends shortly after the approach completes.
		deadline = (p.D0M-core.MinSeparationM)/p.MovingSpeed + 2
	}
	s.Transfers = []scenario.TransferSpec{{
		From: "mover", To: "receiver", SizeMB: p.BatchMB, DeadlineS: deadline, Reliable: true,
	}}
	res, err := runSpec(s)
	if err != nil {
		return Fig1Strategy{}, err
	}
	tr := res.Transfers[0]
	st := Fig1Strategy{Name: "moving", TargetDM: core.MinSeparationM}
	st.Series = tr.Series
	st.CompletionS = tr.CompletionS
	st.DeliveredMB = tr.DeliveredMB()

	approachDone := false
	for _, v := range res.Vehicles {
		if v.ID == "mover" {
			approachDone = v.RouteDone
		}
	}
	if !p.LoiterAfterApproach && approachDone {
		// Truncate the record at the end of the approach, like the paper's
		// moving curve: the strategy did not complete within its window.
		arrival := (p.D0M - core.MinSeparationM) / p.MovingSpeed
		var trimmed []transport.SeriesPoint
		for _, pt := range tr.Series {
			if pt.TimeS <= arrival+1.0 {
				trimmed = append(trimmed, pt)
			}
		}
		if len(trimmed) > 0 {
			st.Series = trimmed
			st.DeliveredMB = trimmed[len(trimmed)-1].DeliveredMB
		}
		if st.DeliveredMB < p.BatchMB {
			st.CompletionS = math.Inf(1)
		}
	}
	return st, nil
}

// orbitWaypoints returns a ring of waypoints at the given radius around
// the origin (the receiver) at altitude alt.
func orbitWaypoints(radius, alt float64) []geo.Vec3 {
	const n = 8
	wps := make([]geo.Vec3, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / n
		wps[i] = geo.Vec3{X: radius * math.Cos(th), Y: radius * math.Sin(th), Z: alt}
	}
	return wps
}

// fig1Spec declares the two quads of one strategy run: the mover at d0 and
// a hovering receiver at the origin.
func fig1Spec(cfg Config, p Fig1Params, label string) scenario.Spec {
	s := trialSpec(label, cfg.Seed, label, 0)
	s.Vehicles = []scenario.VehicleSpec{
		{ID: "mover", Platform: scenario.PlatformQuad, Start: geo.Vec3{X: p.D0M, Z: 10}},
		{ID: "receiver", Platform: scenario.PlatformQuad, Start: geo.Vec3{Z: 10}, Hold: true},
	}
	return s
}
