package experiments

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/transport"
)

// Fig1Params is the experiment of Fig. 1: one quadrocopter 80 m from a
// hovering receiver must deliver 20 MB.
type Fig1Params struct {
	D0M         float64
	BatchMB     float64
	ShipSpeed   float64 // shipping speed of the hover-and-transmit cases
	MovingSpeed float64 // approach speed of the move-and-transmit case
	Targets     []float64
	DeadlineS   float64
	// LoiterAfterApproach lets the moving case keep transmitting while
	// orbiting the receiver at the separation floor. The paper's
	// experiment stopped at the end of the approach (its Fig. 1 "moving"
	// curve never completes), so the default is false; enabling it
	// explores the mixed strategy the paper leaves out of scope.
	LoiterAfterApproach bool
}

// DefaultFig1Params mirrors the paper's run.
func DefaultFig1Params() Fig1Params {
	return Fig1Params{
		D0M:         80,
		BatchMB:     20,
		ShipSpeed:   4.5,
		MovingSpeed: 8,
		Targets:     []float64{20, 40, 60, 80},
		DeadlineS:   240,
	}
}

// Fig1Strategy is one curve of Fig. 1.
type Fig1Strategy struct {
	Name        string
	TargetDM    float64
	CompletionS float64
	// DeliveredMB is the total delivered when the strategy run ended
	// (equals the batch size when CompletionS is finite).
	DeliveredMB float64
	Series      []transport.SeriesPoint
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Params     Fig1Params
	Strategies []Fig1Strategy
	// BestHover is the hover-and-transmit target with the lowest
	// completion time.
	BestHover float64
	// AnalyticCrossoverMB is the model's crossover between transmitting
	// at d0 and at the best hover target (paper: ≈15 MB for d=60).
	AnalyticCrossoverMB float64
}

// Fig1 reproduces the strategy race of Fig. 1 at packet level: ship to
// each candidate distance then hover-and-transmit, plus the
// move-and-transmit case, all over the simulated quadrocopter link.
func Fig1(cfg Config) (Fig1Result, error) {
	return Fig1With(cfg, DefaultFig1Params())
}

// Fig1With runs Fig 1 under custom parameters.
func Fig1With(cfg Config, p Fig1Params) (Fig1Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig1Result{}, err
	}
	res := Fig1Result{Params: p}

	// Hover-and-transmit at each target distance, plus move-and-transmit as
	// the last slot. Strategies run on the shared pool and are collected in
	// target order, so the result matches the serial race.
	strategies, err := mapN(cfg, "fig1/strategies", len(p.Targets)+1, func(i int) (Fig1Strategy, error) {
		if i < len(p.Targets) {
			return fig1HoverStrategy(cfg, p, p.Targets[i])
		}
		return fig1MovingStrategy(cfg, p)
	})
	if err != nil {
		return Fig1Result{}, err
	}
	res.Strategies = strategies

	best := math.Inf(1)
	for _, st := range res.Strategies {
		if st.Name != "moving" && st.CompletionS < best {
			best = st.CompletionS
			res.BestHover = st.TargetDM
		}
	}
	// Analytic crossover for the winning hover target, from the paper's
	// quadrocopter scenario.
	sc := core.QuadrocopterBaseline()
	sc.D0M = p.D0M
	sc.SpeedMPS = p.ShipSpeed
	sc.MdataBytes = p.BatchMB * 1e6
	res.AnalyticCrossoverMB = sc.CrossoverMB(res.BestHover) / 1e6
	return res, nil
}

// fig1HoverStrategy ships silently to the target distance, then transmits
// while both quads hover.
func fig1HoverStrategy(cfg Config, p Fig1Params, target float64) (Fig1Strategy, error) {
	mover, receiver, fp, err := fig1Rig(cfg, p, fmt.Sprintf("fig1/d%.0f", target))
	if err != nil {
		return Fig1Strategy{}, err
	}
	st := Fig1Strategy{Name: fmt.Sprintf("d=%.0f", target), TargetDM: target}

	// Phase 1: ship (no transmission; the paper's UAV stays silent).
	if target < p.D0M {
		arrived := false
		mover.GoTo(geo.Vec3{X: target, Z: 10}, p.ShipSpeed, func() { arrived = true })
		for !arrived && fp.link.Now() < p.DeadlineS {
			fp.link.SetNow(fp.link.Now() + fp.tick)
			fp.advanceVehicles()
		}
		// Record the silent shipping phase in the series.
		for ts := 0.25; ts < fp.link.Now(); ts += 0.25 {
			st.Series = append(st.Series, transport.SeriesPoint{
				TimeS: ts, DeliveredMB: 0, DistanceM: p.D0M - p.ShipSpeed*ts,
			})
		}
	}
	shipEnd := fp.link.Now()

	// Phase 2: hover and transmit.
	geom := func(float64) link.Geometry { fp.advanceVehicles(); return fp.geometry() }
	batch, err := transport.TransferBatch(fp.link, transport.BatchConfig{
		Bytes: int(p.BatchMB * 1e6), DeadlineS: p.DeadlineS, Reliable: true,
	}, geom)
	if err != nil {
		return Fig1Strategy{}, err
	}
	for _, pt := range batch.Series {
		pt.TimeS += shipEnd
		st.Series = append(st.Series, pt)
	}
	st.CompletionS = shipEnd + batch.CompletionS
	_ = receiver
	return st, nil
}

// fig1MovingStrategy transmits while approaching at the moving speed. The
// paper's run ends with the approach ("transmits while approaching the
// target UAV"); with LoiterAfterApproach the quad instead keeps orbiting
// the receiver at the separation floor, still in motion, until the batch
// completes — the mixed strategy the paper leaves out of scope.
func fig1MovingStrategy(cfg Config, p Fig1Params) (Fig1Strategy, error) {
	mover, _, fp, err := fig1Rig(cfg, p, "fig1/moving")
	if err != nil {
		return Fig1Strategy{}, err
	}
	st := Fig1Strategy{Name: "moving", TargetDM: core.MinSeparationM}

	approachDone := false
	var next func()
	if p.LoiterAfterApproach {
		orbit := orbitWaypoints(core.MinSeparationM, 10)
		leg := 0
		next = func() {
			approachDone = true
			wp := orbit[leg%len(orbit)]
			leg++
			mover.GoTo(wp, p.MovingSpeed, next)
		}
	} else {
		next = func() { approachDone = true }
	}
	mover.GoTo(geo.Vec3{X: core.MinSeparationM, Z: 10}, p.MovingSpeed, next)

	deadline := p.DeadlineS
	if !p.LoiterAfterApproach {
		// The experiment ends shortly after the approach completes.
		deadline = (p.D0M-core.MinSeparationM)/p.MovingSpeed + 2
	}
	geom := func(float64) link.Geometry { fp.advanceVehicles(); return fp.geometry() }
	batch, err := transport.TransferBatch(fp.link, transport.BatchConfig{
		Bytes: int(p.BatchMB * 1e6), DeadlineS: deadline, Reliable: true,
	}, geom)
	if err != nil {
		return Fig1Strategy{}, err
	}
	st.Series = batch.Series
	st.CompletionS = batch.CompletionS
	st.DeliveredMB = float64(batch.DeliveredBytes) / 1e6
	if !p.LoiterAfterApproach && approachDone {
		// Truncate the record at the end of the approach, like the paper's
		// moving curve: the strategy did not complete within its window.
		arrival := (p.D0M - core.MinSeparationM) / p.MovingSpeed
		var trimmed []transport.SeriesPoint
		for _, pt := range batch.Series {
			if pt.TimeS <= arrival+1.0 {
				trimmed = append(trimmed, pt)
			}
		}
		if len(trimmed) > 0 {
			st.Series = trimmed
			st.DeliveredMB = trimmed[len(trimmed)-1].DeliveredMB
		}
		if st.DeliveredMB < p.BatchMB {
			st.CompletionS = math.Inf(1)
		}
	}
	return st, nil
}

// orbitWaypoints returns a ring of waypoints at the given radius around
// the origin (the receiver) at altitude alt.
func orbitWaypoints(radius, alt float64) []geo.Vec3 {
	const n = 8
	wps := make([]geo.Vec3, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / n
		wps[i] = geo.Vec3{X: radius * math.Cos(th), Y: radius * math.Sin(th), Z: alt}
	}
	return wps
}

// fig1Rig builds the two quads and their link for one strategy run.
func fig1Rig(cfg Config, p Fig1Params, label string) (*autopilot.Autopilot, *autopilot.Autopilot, *flightPair, error) {
	mover, err := quadAt("mover", geo.Vec3{X: p.D0M, Z: 10})
	if err != nil {
		return nil, nil, nil, err
	}
	receiver, err := quadAt("receiver", geo.Vec3{Z: 10})
	if err != nil {
		return nil, nil, nil, err
	}
	receiver.Hold(geo.Vec3{Z: 10})
	lcfg := trialLinkConfig(cfg.Seed, label, 0)
	fp, err := newFlightPair(lcfg, minstrelFor(lcfg), mover, receiver)
	if err != nil {
		return nil, nil, nil, err
	}
	return mover, receiver, fp, nil
}
