package experiments

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/uav"
)

// Table1Result regenerates Table 1 ("Main features of our flying
// platforms") from the platform models, so the table and the simulator can
// never drift apart.
type Table1Result struct {
	Header []string
	Rows   [][]string
}

// Table1 renders the platform comparison.
func Table1() Table1Result {
	air := uav.Swinglet()
	quad := uav.Arducopter()
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	return Table1Result{
		Header: []string{"", "Airplane", "Quadrocopter"},
		Rows: [][]string{
			{"Hovering", yn(air.CanHover), yn(quad.CanHover)},
			{"Size", air.SizeDescription, quad.SizeDescription},
			{"Weight", fmt.Sprintf("%g g", air.WeightKg*1000), fmt.Sprintf("%g kg", quad.WeightKg)},
			{"Battery autonomy", fmt.Sprintf("%g minutes", air.BatteryMinutes), fmt.Sprintf("%g minutes", quad.BatteryMinutes)},
			{"Cruise speed", fmt.Sprintf("%g m/s", air.CruiseSpeedMPS), fmt.Sprintf("%g m/s in auto mode", quad.CruiseSpeedMPS)},
			{"Maximum safe altitude", fmt.Sprintf("%g m", air.MaxSafeAltitudeM), fmt.Sprintf("%g m", quad.MaxSafeAltitudeM)},
		},
	}
}
