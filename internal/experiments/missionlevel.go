package experiments

import (
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/fleet"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/uav"
)

// MissionLevelResult is an extension experiment (not a paper figure): the
// system-level payoff of the delayed-gratification rendezvous over
// transmitting as soon as the link opens, across repeated missions with
// failure injection.
type MissionLevelResult struct {
	Runs int
	// Mean makespan (s) over missions where both policies delivered; NaN
	// when no mission of that posture completed (rendered as "n/a"
	// downstream — see stats.Mean's empty-input contract).
	NaiveMakespanS      float64
	RendezvousMakespanS float64
	// Delivery ratio (data delivered / data sensed) including failed runs.
	NaiveDeliveryRatio      float64
	RendezvousDeliveryRatio float64
}

// missionSpecs builds the two-scout, one-relay scenario used by the
// mission-level experiment.
func missionSpecs() []fleet.UAVSpec {
	smallPlan := mission.Plan{
		Sector:    mission.Sector{WidthM: 40, HeightM: 40},
		Camera:    mission.DefaultCamera(),
		AltitudeM: 10,
	}
	return []fleet.UAVSpec{
		{
			ID: "scout-1", Platform: uav.Arducopter(), Role: fleet.Scout,
			Start: geo.Vec3{X: 170, Z: 10}, Plan: smallPlan,
			SectorOrigin: geo.Vec3{X: 160, Y: 10}, MaxScanLanes: 2,
		},
		{
			ID: "scout-2", Platform: uav.Arducopter(), Role: fleet.Scout,
			Start: geo.Vec3{X: -150, Y: 50, Z: 10}, Plan: smallPlan,
			SectorOrigin: geo.Vec3{X: -160, Y: 40}, MaxScanLanes: 2,
		},
		{ID: "relay-1", Platform: uav.Arducopter(), Role: fleet.Relay, Start: geo.Vec3{Z: 10}},
	}
}

// missionTrial is one paired mission's contribution to the aggregates.
// Fields are exported because trials are gob-journaled under -checkpoint
// and gob silently drops unexported fields.
type missionTrial struct {
	NaiveDeliveredMB, SmartDeliveredMB, TotalMB float64
	NaiveMakespanS, SmartMakespanS              float64 // 0 when the posture never delivered
}

// MissionLevel runs cfg.Trials paired missions (same seeds) under both
// policies with a moderately risky failure model. Paired trials run on the
// shared bounded pool; aggregation happens afterwards in trial order, so
// the floating-point sums match the serial loop bit-for-bit.
func MissionLevel(cfg Config) (MissionLevelResult, error) {
	if err := cfg.Validate(); err != nil {
		return MissionLevelResult{}, err
	}
	res := MissionLevelResult{Runs: cfg.Trials}

	trials, err := mapTrials(cfg, "mission", func(trial int) (missionTrial, error) {
		var out missionTrial
		for _, naive := range []bool{false, true} {
			fcfg := fleet.DefaultConfig()
			fcfg.Seed = cfg.Seed + int64(trial)*101
			fcfg.Naive = naive
			// Riskier than the battery baseline so failures actually occur
			// across the trial set.
			m, err := failure.NewModel(8e-4)
			if err != nil {
				return missionTrial{}, err
			}
			fcfg.Scenario.Failure = m
			ms, err := fleet.New(fcfg, missionSpecs())
			if err != nil {
				return missionTrial{}, err
			}
			rep, err := ms.Run(3600)
			if err != nil {
				return missionTrial{}, err
			}
			if naive {
				out.NaiveDeliveredMB = rep.DeliveredMB
				out.NaiveMakespanS = rep.MakespanS
				out.TotalMB = rep.TotalMB
			} else {
				out.SmartDeliveredMB = rep.DeliveredMB
				out.SmartMakespanS = rep.MakespanS
			}
		}
		return out, nil
	})
	if err != nil {
		return MissionLevelResult{}, err
	}

	var naiveMs, smartMs []float64
	var naiveDel, smartDel, total float64
	for _, tr := range trials {
		naiveDel += tr.NaiveDeliveredMB
		smartDel += tr.SmartDeliveredMB
		total += tr.TotalMB
		if tr.NaiveMakespanS > 0 {
			naiveMs = append(naiveMs, tr.NaiveMakespanS)
		}
		if tr.SmartMakespanS > 0 {
			smartMs = append(smartMs, tr.SmartMakespanS)
		}
	}
	// NaN (no completed mission) flows through deliberately; renderers show
	// it as "n/a" rather than a fake zero makespan.
	res.NaiveMakespanS = stats.Mean(naiveMs)
	res.RendezvousMakespanS = stats.Mean(smartMs)
	if total > 0 {
		res.NaiveDeliveryRatio = naiveDel / total
		res.RendezvousDeliveryRatio = smartDel / total
	}
	return res, nil
}
