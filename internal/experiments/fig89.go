package experiments

import (
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
)

// Fig8Curve is U(d) for one failure rate.
type Fig8Curve struct {
	Rho     float64
	Points  []core.Point
	DoptM   float64
	UMax    float64
	Optimum core.Optimum
}

// Fig8Result reproduces Fig. 8: U(d) versus d for the baseline airplane
// and quadrocopter scenarios across failure rates, with the maxima marked.
type Fig8Result struct {
	Airplane     []Fig8Curve
	Quadrocopter []Fig8Curve
}

// fig8Rhos are the paper's curves: the nominal battery-derived rate plus
// 1e−3 … 1e−2.
func fig8Rhos(nominal float64) []float64 {
	return []float64{nominal, 0.001, 0.002, 0.005, 0.01}
}

// fig8CurvePoints is the sampling resolution of each curve.
const fig8CurvePoints = 281

// Fig8 evaluates both baselines.
func Fig8(cfg Config) (Fig8Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig8Result{}, err
	}
	var res Fig8Result
	var err error
	res.Airplane, err = fig8For(core.AirplaneBaseline(), failure.AirplaneRho)
	if err != nil {
		return Fig8Result{}, err
	}
	res.Quadrocopter, err = fig8For(core.QuadrocopterBaseline(), failure.QuadrocopterRho)
	if err != nil {
		return Fig8Result{}, err
	}
	return res, nil
}

func fig8For(base core.Scenario, nominal float64) ([]Fig8Curve, error) {
	var curves []Fig8Curve
	for _, rho := range fig8Rhos(nominal) {
		sc := base
		m, err := failure.NewModel(rho)
		if err != nil {
			return nil, err
		}
		sc.Failure = m
		pts, err := sc.UtilityCurve(fig8CurvePoints)
		if err != nil {
			return nil, err
		}
		opt, err := sc.Optimize()
		if err != nil {
			return nil, err
		}
		curves = append(curves, Fig8Curve{
			Rho: rho, Points: pts, DoptM: opt.DoptM, UMax: opt.Utility, Optimum: opt,
		})
	}
	return curves, nil
}

// Fig9Point is one (Mdata, v) cell of the Fig. 9 sweep.
type Fig9Point struct {
	MdataMB  float64
	SpeedMPS float64
	DoptM    float64
	Utility  float64
	// AtMinimum reports dopt pinned at the separation floor.
	AtMinimum bool
}

// Fig9Result reproduces Fig. 9: U(dopt) and dopt across data sizes and
// speeds in the airplane scenario.
type Fig9Result struct {
	Points []Fig9Point
	// MdataSet and SpeedSet are the swept axes.
	MdataSet []float64
	SpeedSet []float64
}

// Fig9 sweeps the paper's grid: Mdata ∈ {5,7,10,15,25,45} MB (the labelled
// curves) and v ∈ {3,5,10,15,20} m/s (the labelled sample points).
func Fig9(cfg Config) (Fig9Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig9Result{}, err
	}
	res := Fig9Result{
		MdataSet: []float64{5, 7, 10, 15, 25, 45},
		SpeedSet: []float64{3, 5, 10, 15, 20},
	}
	base := core.AirplaneBaseline()
	for _, mb := range res.MdataSet {
		for _, v := range res.SpeedSet {
			sc := base
			sc.MdataBytes = mb * 1e6
			sc.SpeedMPS = v
			opt, err := sc.Optimize()
			if err != nil {
				return Fig9Result{}, err
			}
			res.Points = append(res.Points, Fig9Point{
				MdataMB:   mb,
				SpeedMPS:  v,
				DoptM:     opt.DoptM,
				Utility:   opt.Utility,
				AtMinimum: opt.DoptM <= sc.MinDistanceM+1e-6,
			})
		}
	}
	return res, nil
}
