package experiments

import (
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
)

// Fig8Curve is U(d) for one failure rate.
type Fig8Curve struct {
	Rho     float64
	Points  []core.Point
	DoptM   float64
	UMax    float64
	Optimum core.Optimum
}

// Fig8Result reproduces Fig. 8: U(d) versus d for the baseline airplane
// and quadrocopter scenarios across failure rates, with the maxima marked.
type Fig8Result struct {
	Airplane     []Fig8Curve
	Quadrocopter []Fig8Curve
}

// fig8Rhos are the paper's curves: the nominal battery-derived rate plus
// 1e−3 … 1e−2.
func fig8Rhos(nominal float64) []float64 {
	return []float64{nominal, 0.001, 0.002, 0.005, 0.01}
}

// fig8CurvePoints is the sampling resolution of each curve.
const fig8CurvePoints = 281

// Fig8 evaluates both baselines.
func Fig8(cfg Config) (Fig8Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig8Result{}, err
	}
	var res Fig8Result
	var err error
	res.Airplane, err = fig8For(cfg, "fig8/airplane", core.AirplaneBaseline(), failure.AirplaneRho)
	if err != nil {
		return Fig8Result{}, err
	}
	res.Quadrocopter, err = fig8For(cfg, "fig8/quad", core.QuadrocopterBaseline(), failure.QuadrocopterRho)
	if err != nil {
		return Fig8Result{}, err
	}
	return res, nil
}

// fig8For evaluates the curves of one baseline; the rhos run on the shared
// pool and the curves are collected in rho order.
func fig8For(cfg Config, label string, base core.Scenario, nominal float64) ([]Fig8Curve, error) {
	rhos := fig8Rhos(nominal)
	return mapN(cfg, label, len(rhos), func(i int) (Fig8Curve, error) {
		rho := rhos[i]
		sc := base
		m, err := failure.NewModel(rho)
		if err != nil {
			return Fig8Curve{}, err
		}
		sc.Failure = m
		pts, err := sc.UtilityCurve(fig8CurvePoints)
		if err != nil {
			return Fig8Curve{}, err
		}
		opt, err := sc.Optimize()
		if err != nil {
			return Fig8Curve{}, err
		}
		return Fig8Curve{
			Rho: rho, Points: pts, DoptM: opt.DoptM, UMax: opt.Utility, Optimum: opt,
		}, nil
	})
}

// Fig9Point is one (Mdata, v) cell of the Fig. 9 sweep.
type Fig9Point struct {
	MdataMB  float64
	SpeedMPS float64
	DoptM    float64
	Utility  float64
	// AtMinimum reports dopt pinned at the separation floor.
	AtMinimum bool
}

// Fig9Result reproduces Fig. 9: U(dopt) and dopt across data sizes and
// speeds in the airplane scenario.
type Fig9Result struct {
	Points []Fig9Point
	// MdataSet and SpeedSet are the swept axes.
	MdataSet []float64
	SpeedSet []float64
}

// Fig9 sweeps the paper's grid: Mdata ∈ {5,7,10,15,25,45} MB (the labelled
// curves) and v ∈ {3,5,10,15,20} m/s (the labelled sample points).
func Fig9(cfg Config) (Fig9Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig9Result{}, err
	}
	res := Fig9Result{
		MdataSet: []float64{5, 7, 10, 15, 25, 45},
		SpeedSet: []float64{3, 5, 10, 15, 20},
	}
	base := core.AirplaneBaseline()
	// Flatten the (Mdata, v) grid onto the shared pool; cells are collected
	// in row-major order, matching the serial nested loop.
	nv := len(res.SpeedSet)
	pts, err := mapN(cfg, "fig9/grid", len(res.MdataSet)*nv, func(i int) (Fig9Point, error) {
		mb := res.MdataSet[i/nv]
		v := res.SpeedSet[i%nv]
		sc := base
		sc.MdataBytes = mb * 1e6
		sc.SpeedMPS = v
		opt, err := sc.Optimize()
		if err != nil {
			return Fig9Point{}, err
		}
		return Fig9Point{
			MdataMB:   mb,
			SpeedMPS:  v,
			DoptM:     opt.DoptM,
			Utility:   opt.Utility,
			AtMinimum: opt.DoptM <= sc.MinDistanceM+1e-6,
		}, nil
	})
	if err != nil {
		return Fig9Result{}, err
	}
	res.Points = pts
	return res, nil
}
