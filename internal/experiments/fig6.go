package experiments

import (
	"fmt"
	"math"
)

// Fig6MCSSet is the fixed-rate set the paper sweeps: "we select modulation
// schemes and coding rates ... such as MCS1, MCS2, MCS3 and MCS8".
var Fig6MCSSet = []int{1, 2, 3, 8}

// Fig6Result reproduces Fig. 6: the best median throughput over the fixed
// MCS set versus auto-rate, per distance bin, between two airplanes.
type Fig6Result struct {
	Distances  []float64
	AutoMedian []float64
	BestMedian []float64
	BestMCS    []int
	// PerMCS holds each fixed policy's median per distance bin.
	PerMCS map[int][]float64
	// AutoLoss / BestLoss are the mean datagram loss rates pooled over all
	// bins, reproducing "the packet loss rate is greatly reduced by simply
	// fixing the rate" (Section 3.1).
	AutoLoss float64
	BestLoss float64
}

// fig6MaxDistance is the figure's range (20–260 m).
const fig6MaxDistance = 260.0

// Fig6 runs the airplane commute once per policy and compares medians.
func Fig6(cfg Config) (Fig6Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig6Result{}, err
	}
	runs := make(map[string]map[float64][]float64)
	losses := make(map[string]float64)

	collect := func(name, rate string) error {
		samples, err := airplaneFlightSamples(cfg, "fig6/"+name, rate)
		if err != nil {
			return err
		}
		byBin := make(map[float64][]float64)
		var lossSum float64
		var lossN int
		for _, s := range samples {
			if s.Partial {
				continue // trailing sub-window: not comparable to full windows
			}
			bin := math.Round(s.DistanceM/fig5BinWidth) * fig5BinWidth
			if bin < 20 || bin > fig6MaxDistance {
				continue
			}
			byBin[bin] = append(byBin[bin], s.ThroughputMb)
			lossSum += s.LossRate
			lossN++
		}
		runs[name] = byBin
		if lossN > 0 {
			losses[name] = lossSum / float64(lossN)
		}
		return nil
	}

	if err := collect("auto", ""); err != nil {
		return Fig6Result{}, err
	}
	for _, m := range Fig6MCSSet {
		name := fmt.Sprintf("mcs%d", m)
		if err := collect(name, name); err != nil {
			return Fig6Result{}, err
		}
	}

	res := Fig6Result{PerMCS: make(map[int][]float64)}
	autoBins := binSamples(runs["auto"])
	for _, b := range autoBins {
		res.Distances = append(res.Distances, b.DistanceM)
		res.AutoMedian = append(res.AutoMedian, b.Box.Median)
	}
	for range res.Distances {
		res.BestMedian = append(res.BestMedian, 0)
		res.BestMCS = append(res.BestMCS, -1)
	}
	for _, m := range Fig6MCSSet {
		fixedBins := binSamples(runs[fmt.Sprintf("mcs%d", m)])
		med := make([]float64, len(res.Distances))
		for i, d := range res.Distances {
			for _, b := range fixedBins {
				if b.DistanceM == d {
					med[i] = b.Box.Median
					break
				}
			}
			if med[i] > res.BestMedian[i] {
				res.BestMedian[i] = med[i]
				res.BestMCS[i] = m
			}
		}
		res.PerMCS[m] = med
	}
	res.AutoLoss = losses["auto"]
	// Best-policy loss: the minimum mean loss among the fixed set (the
	// rate a deployment would pin).
	best := math.Inf(1)
	for _, m := range Fig6MCSSet {
		if l, ok := losses[fmt.Sprintf("mcs%d", m)]; ok && l < best {
			best = l
		}
	}
	if !math.IsInf(best, 1) {
		res.BestLoss = best
	}
	return res, nil
}

// MedianAdvantage returns best-fixed/auto ratio per distance (∞ when auto
// starves).
func (r Fig6Result) MedianAdvantage() []float64 {
	out := make([]float64, len(r.Distances))
	for i := range r.Distances {
		if r.AutoMedian[i] <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = r.BestMedian[i] / r.AutoMedian[i]
	}
	return out
}
