package experiments

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/uav"
)

// The in-flight measurement rigs of Figs 1, 5, 6 and 7 are declarative
// scenario Specs (see scenariorig.go): the scenario runtime owns the only
// clock, and this file keeps just the pieces that are not flights — link
// seeding, rate policy, and the vehicle constructors of the GPS traces.

// quadAt builds a hover-capable vehicle with autopilot at a position.
func quadAt(id string, pos geo.Vec3) (*autopilot.Autopilot, error) {
	v, err := uav.NewVehicle(id, uav.Arducopter(), pos)
	if err != nil {
		return nil, err
	}
	return autopilot.New(v)
}

// planeAt builds a fixed-wing vehicle with autopilot at a position.
func planeAt(id string, pos geo.Vec3) (*autopilot.Autopilot, error) {
	v, err := uav.NewVehicle(id, uav.Swinglet(), pos)
	if err != nil {
		return nil, err
	}
	return autopilot.New(v)
}

// trialLinkConfig derives a per-trial link configuration with an
// independent substream.
func trialLinkConfig(seed int64, label string, trial int) link.Config {
	cfg := link.DefaultConfig()
	cfg.Seed = seed + int64(trial)*7919
	cfg.Label = fmt.Sprintf("%s/trial%d", label, trial)
	return cfg
}

// minstrelFor builds a fresh auto-rate policy for a trial link config —
// the scenario layer's seeding, so link behaviour is a pure function of
// (seed, label) whether a figure measures in place or flies a Spec.
func minstrelFor(cfg link.Config) rate.Policy {
	return scenario.MinstrelPolicy(cfg)
}

// commutePlanes configures the Fig 4(a) flight pattern: two airplanes
// commuting between opposite waypoints at separated altitudes, so their
// mutual distance sweeps the full 20–400 m range every leg. (Fig 5 flies
// the same pattern as a scenario Spec route.)
func commutePlanes(a, b *autopilot.Autopilot, legM float64) {
	wA1 := geo.Vec3{X: 0, Y: 0, Z: 80}
	wA2 := geo.Vec3{X: legM, Y: 0, Z: 80}
	wB1 := geo.Vec3{X: legM, Y: 0, Z: 100}
	wB2 := geo.Vec3{X: 0, Y: 0, Z: 100}
	var legsA, legsB int
	var flyA, flyB func()
	flyA = func() {
		legsA++
		if legsA%2 == 1 {
			a.GoTo(wA2, 0, flyA)
		} else {
			a.GoTo(wA1, 0, flyA)
		}
	}
	flyB = func() {
		legsB++
		if legsB%2 == 1 {
			b.GoTo(wB2, 0, flyB)
		} else {
			b.GoTo(wB1, 0, flyB)
		}
	}
	flyA()
	flyB()
}
