package experiments

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/uav"
)

// flightPair couples two autopiloted vehicles with one data link: the
// in-flight measurement rig of the paper's Figs 1, 5, 6 and 7. The link's
// clock is authoritative; vehicles are advanced in fixed control-loop
// ticks whenever the link clock passes them.
type flightPair struct {
	tx, rx *autopilot.Autopilot
	link   *link.Link
	// tick is the control-loop period.
	tick float64
	// flown tracks the last vehicle-advance time.
	flown float64
}

// newFlightPair wires vehicles to a fresh link.
func newFlightPair(cfg link.Config, pol rate.Policy, tx, rx *autopilot.Autopilot) (*flightPair, error) {
	l, err := link.New(cfg, pol)
	if err != nil {
		return nil, err
	}
	return &flightPair{tx: tx, rx: rx, link: l, tick: 0.02}, nil
}

// geometry returns the instantaneous link geometry from vehicle state.
// Relative speed is the full relative-velocity magnitude: attitude
// dynamics and Doppler care about motion, not just range rate.
func (fp *flightPair) geometry() link.Geometry {
	a, b := fp.tx.Vehicle(), fp.rx.Vehicle()
	return link.Geometry{
		DistanceM:   a.Position().Dist(b.Position()),
		AltitudeM:   math.Min(a.Position().Z, b.Position().Z),
		RelSpeedMPS: a.Velocity().Sub(b.Velocity()).Norm(),
	}
}

// advanceVehicles steps both autopilots up to the link clock.
func (fp *flightPair) advanceVehicles() {
	for fp.flown+fp.tick <= fp.link.Now() {
		fp.tx.Step(fp.tick)
		fp.rx.Step(fp.tick)
		fp.flown += fp.tick
	}
}

// windowSample is one throughput observation labelled with geometry.
type windowSample struct {
	TimeS        float64
	ThroughputMb float64
	DistanceM    float64
	RelSpeedMPS  float64
	// LossRate is the fraction of datagrams dropped at the MAC retry
	// limit within the window.
	LossRate float64
}

// measureWindowed saturates the link for duration seconds while the
// vehicles fly, recording throughput in windowS-second windows labelled
// with the mid-window distance — the simulation analogue of binning iperf
// reports against GPS logs.
func (fp *flightPair) measureWindowed(duration, windowS float64) []windowSample {
	var out []windowSample
	start := fp.link.Now()
	end := start + duration
	winStart := start
	var winBytes, winDropped int64
	droppedBefore := fp.link.MAC().DroppedBytes
	var distSum, speedSum float64
	var distN int
	for fp.link.Now() < end {
		if fp.link.QueuedBytes() < 64*1500 {
			fp.link.Enqueue(128 * 1500)
		}
		fp.advanceVehicles()
		g := fp.geometry()
		ex := fp.link.Step(g)
		winBytes += int64(ex.DeliveredBytes)
		distSum += g.DistanceM
		speedSum += g.RelSpeedMPS
		distN++
		if fp.link.Now()-winStart >= windowS {
			elapsed := fp.link.Now() - winStart
			winDropped = fp.link.MAC().DroppedBytes - droppedBefore
			droppedBefore = fp.link.MAC().DroppedBytes
			loss := 0.0
			if winBytes+winDropped > 0 {
				loss = float64(winDropped) / float64(winBytes+winDropped)
			}
			out = append(out, windowSample{
				TimeS:        winStart - start,
				ThroughputMb: float64(winBytes) * 8 / elapsed / 1e6,
				DistanceM:    distSum / float64(distN),
				RelSpeedMPS:  speedSum / float64(distN),
				LossRate:     loss,
			})
			winStart = fp.link.Now()
			winBytes, distSum, speedSum, distN = 0, 0, 0, 0
		}
	}
	return out
}

// quadAt builds a hover-capable vehicle with autopilot at a position.
func quadAt(id string, pos geo.Vec3) (*autopilot.Autopilot, error) {
	v, err := uav.NewVehicle(id, uav.Arducopter(), pos)
	if err != nil {
		return nil, err
	}
	return autopilot.New(v)
}

// planeAt builds a fixed-wing vehicle with autopilot at a position.
func planeAt(id string, pos geo.Vec3) (*autopilot.Autopilot, error) {
	v, err := uav.NewVehicle(id, uav.Swinglet(), pos)
	if err != nil {
		return nil, err
	}
	return autopilot.New(v)
}

// trialLinkConfig derives a per-trial link configuration with an
// independent substream.
func trialLinkConfig(seed int64, label string, trial int) link.Config {
	cfg := link.DefaultConfig()
	cfg.Seed = seed + int64(trial)*7919
	cfg.Label = fmt.Sprintf("%s/trial%d", label, trial)
	return cfg
}

// minstrelFor builds a fresh auto-rate policy for a trial link config.
func minstrelFor(cfg link.Config) rate.Policy {
	rng := stats.NewRNG(cfg.Seed).Substream(cfg.Seed, cfg.Label+"/minstrel")
	return rate.NewMinstrel(rate.DefaultMinstrelParams(), cfg.PHY, rng)
}

// commutePlanes configures the Fig 4(a)/Fig 5 flight pattern: two
// airplanes commuting between opposite waypoints at separated altitudes,
// so their mutual distance sweeps the full 20–400 m range every leg.
func commutePlanes(a, b *autopilot.Autopilot, legM float64) {
	wA1 := geo.Vec3{X: 0, Y: 0, Z: 80}
	wA2 := geo.Vec3{X: legM, Y: 0, Z: 80}
	wB1 := geo.Vec3{X: legM, Y: 0, Z: 100}
	wB2 := geo.Vec3{X: 0, Y: 0, Z: 100}
	var legsA, legsB int
	var flyA, flyB func()
	flyA = func() {
		legsA++
		if legsA%2 == 1 {
			a.GoTo(wA2, 0, flyA)
		} else {
			a.GoTo(wA1, 0, flyA)
		}
	}
	flyB = func() {
		legsB++
		if legsB%2 == 1 {
			b.GoTo(wB2, 0, flyB)
		} else {
			b.GoTo(wB1, 0, flyB)
		}
	}
	flyA()
	flyB()
}
