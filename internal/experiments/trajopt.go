package experiments

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// The trajopt experiment is the paper's question generalized from one leg
// to a fleet: requests for data pickup arrive as a Poisson process over an
// operating area, and the planner decides which vehicle flies where and how
// close it returns toward the collector before transmitting. Three arms run
// on *paired* request streams (identical Poisson seed per trial, so every
// arm sees byte-identical arrivals):
//
//   - fixed:  FIFO assignment to the first idle vehicle, per-leg
//     now-or-later transmit distance — the single-link baseline applied
//     fleet-wide;
//   - greedy: nearest-request assignment, same per-leg transmit rule;
//   - joint:  the receding-horizon joint trajectory optimizer
//     (internal/trajopt) over vehicles × requests × transmit distances.

// TrajOptParams shapes the request-service sweep.
type TrajOptParams struct {
	// Rates are the Poisson arrival rates (requests/s) swept.
	Rates []float64
	// Count is the number of requests drawn per trial.
	Count int
	// Servers is the serving-fleet size; vehicles start evenly spaced on a
	// circle around the collector.
	Servers int
	// AreaM is the request area's edge; AltM the request altitude.
	AreaM float64
	AltM  float64
	// SpeedMPS is the servers' commanded speed.
	SpeedMPS float64
	// MinSizeMB/MaxSizeMB band the request volume; MinLeadS/MaxLeadS the
	// deadline lead.
	MinSizeMB, MaxSizeMB float64
	MinLeadS, MaxLeadS   float64
	// HorizonS and ReplanTicks configure the joint planner's receding
	// horizon (0 = unbounded / default cadence).
	HorizonS    float64
	ReplanTicks int
}

// DefaultTrajOptParams is the publication-scale sweep.
func DefaultTrajOptParams() TrajOptParams {
	return TrajOptParams{
		Rates:     []float64{0.05, 0.1, 0.2},
		Count:     12,
		Servers:   3,
		AreaM:     800,
		AltM:      30,
		SpeedMPS:  10,
		MinSizeMB: 0.5, MaxSizeMB: 2,
		MinLeadS: 60, MaxLeadS: 150,
	}
}

// QuickTrajOptParams shrinks the sweep for -quick and CI.
func QuickTrajOptParams() TrajOptParams {
	p := DefaultTrajOptParams()
	p.Rates = []float64{0.08, 0.2}
	p.Count = 8
	return p
}

// trajOptPlanners is the arm order of every sweep and result row.
var trajOptPlanners = []string{scenario.PlannerFixed, scenario.PlannerGreedy, scenario.PlannerJoint}

// TrajOptPoint is one (rate, planner) cell aggregated over all trials.
type TrajOptPoint struct {
	RatePerS float64 `json:"rate_per_s"`
	Planner  string  `json:"planner"`
	Requests int     `json:"requests"`
	Served   int     `json:"served"`
	// ServedRatio is served-before-deadline / requests.
	ServedRatio float64 `json:"served_ratio"`
	DeliveredMB float64 `json:"delivered_mb"`
	// MeanDelayS and P99DelayS summarize completion − arrival over the
	// served requests, pooled across trials (0 when nothing was served).
	MeanDelayS float64 `json:"mean_delay_s"`
	P99DelayS  float64 `json:"p99_delay_s"`
	// EnergyS is the serving fleet's battery-seconds drained;
	// EnergySPerMB divides by the delivered volume — the paper's energy
	// cost per delivered byte (+Inf when nothing was delivered).
	EnergyS      float64 `json:"energy_s"`
	EnergySPerMB float64 `json:"energy_s_per_mb"`
}

// TrajOptSummary is one planner's outcome pooled over every rate and trial.
type TrajOptSummary struct {
	Planner      string  `json:"planner"`
	Requests     int     `json:"requests"`
	Served       int     `json:"served"`
	ServedRatio  float64 `json:"served_ratio"`
	DeliveredMB  float64 `json:"delivered_mb"`
	MeanDelayS   float64 `json:"mean_delay_s"`
	P99DelayS    float64 `json:"p99_delay_s"`
	EnergyS      float64 `json:"energy_s"`
	EnergySPerMB float64 `json:"energy_s_per_mb"`
}

// TrajOptResult is the full sweep: per-(rate, planner) points in rate-major
// order plus one pooled summary per planner.
type TrajOptResult struct {
	Params  TrajOptParams
	Points  []TrajOptPoint
	Summary []TrajOptSummary
}

// trajOptTrial is one trial's per-arm outcome (exported fields: it rides
// the checkpoint journal via gob). Index order is trajOptPlanners.
type trajOptTrial struct {
	Requests    [3]int
	Served      [3]int
	DeliveredMB [3]float64
	EnergyS     [3]float64
	DelaysS     [3][]float64
}

// TrajOpt runs the request-service sweep at publication scale.
func TrajOpt(cfg Config) (TrajOptResult, error) {
	return TrajOptWith(cfg, DefaultTrajOptParams())
}

// TrajOptWith sweeps arrival rates through the three planner arms on paired
// request streams. Each trial compiles three Specs that differ only in the
// planner line — same fleet, same Poisson seed — so arm differences are
// pure planning, not workload noise.
func TrajOptWith(cfg Config, p TrajOptParams) (TrajOptResult, error) {
	if err := cfg.Validate(); err != nil {
		return TrajOptResult{}, err
	}
	if len(p.Rates) == 0 || p.Count < 1 || p.Servers < 1 || p.AreaM <= 0 || p.AltM < 1 ||
		p.SpeedMPS <= 0 || p.MinSizeMB <= 0 || p.MaxSizeMB < p.MinSizeMB ||
		p.MinLeadS <= 0 || p.MaxLeadS < p.MinLeadS {
		return TrajOptResult{}, fmt.Errorf("experiments: implausible trajopt params %+v", p)
	}
	res := TrajOptResult{Params: p}
	var pooled [3]trajOptAgg
	for ri, rate := range p.Rates {
		if !(rate > 0) {
			return res, fmt.Errorf("experiments: trajopt rate %v must be positive", rate)
		}
		ri := ri
		trials, err := mapTrials(cfg, fmt.Sprintf("trajopt/rate%g", rate), func(trial int) (trajOptTrial, error) {
			return trajOptTrialRun(cfg, p, ri, trial)
		})
		if err != nil {
			return res, fmt.Errorf("experiments: trajopt rate %g: %w", rate, err)
		}
		for ai, planner := range trajOptPlanners {
			var agg trajOptAgg
			for _, tr := range trials {
				agg.add(tr, ai)
				pooled[ai].add(tr, ai)
			}
			res.Points = append(res.Points, agg.point(rate, planner))
		}
	}
	for ai, planner := range trajOptPlanners {
		pt := pooled[ai].point(0, planner)
		res.Summary = append(res.Summary, TrajOptSummary{
			Planner: planner, Requests: pt.Requests, Served: pt.Served,
			ServedRatio: pt.ServedRatio, DeliveredMB: pt.DeliveredMB,
			MeanDelayS: pt.MeanDelayS, P99DelayS: pt.P99DelayS,
			EnergyS: pt.EnergyS, EnergySPerMB: pt.EnergySPerMB,
		})
	}
	return res, nil
}

// trajOptAgg accumulates one arm's outcomes across trials.
type trajOptAgg struct {
	requests, served int
	deliveredMB      float64
	energyS          float64
	delays           []float64
}

func (a *trajOptAgg) add(tr trajOptTrial, ai int) {
	a.requests += tr.Requests[ai]
	a.served += tr.Served[ai]
	a.deliveredMB += tr.DeliveredMB[ai]
	a.energyS += tr.EnergyS[ai]
	a.delays = append(a.delays, tr.DelaysS[ai]...)
}

func (a *trajOptAgg) point(rate float64, planner string) TrajOptPoint {
	pt := TrajOptPoint{
		RatePerS: rate, Planner: planner,
		Requests: a.requests, Served: a.served,
		DeliveredMB: a.deliveredMB, EnergyS: a.energyS,
		EnergySPerMB: math.Inf(1),
	}
	if a.requests > 0 {
		pt.ServedRatio = float64(a.served) / float64(a.requests)
	}
	if a.deliveredMB > 0 {
		pt.EnergySPerMB = a.energyS / a.deliveredMB
	}
	if len(a.delays) > 0 {
		pt.MeanDelayS = stats.Mean(a.delays)
		if q, err := stats.Quantile(a.delays, 0.99); err == nil {
			pt.P99DelayS = q
		}
	}
	return pt
}

// trajOptTrialRun runs one paired trial: three identical Specs, one per
// planner arm, on the same Poisson request stream. The arms are batch-
// resolved up front and linked against one shared policy TableCache, so a
// trial materializes its workload three times but builds any policy table
// at most once.
func trajOptTrialRun(cfg Config, p TrajOptParams, rateIdx, trial int) (trajOptTrial, error) {
	var out trajOptTrial
	// One nonzero Poisson seed per (root seed, rate, trial): every arm of
	// the pair replays the identical arrival stream.
	pseed := cfg.Seed*1_000_003 + int64(rateIdx)*9176 + int64(trial)*7919 + 1
	specs := make([]scenario.Spec, len(trajOptPlanners))
	for ai, planner := range trajOptPlanners {
		specs[ai] = trajOptSpec(p, rateIdx, trial, pseed, planner)
	}
	progs, err := scenario.ResolveAll(specs)
	if err != nil {
		return out, err
	}
	tables := scenario.NewTableCache()
	for ai := range trajOptPlanners {
		rt, err := scenario.LinkWithOptions(progs[ai], scenario.Options{Tables: tables})
		if err != nil {
			return out, err
		}
		res, err := rt.Run()
		if err != nil {
			return out, err
		}
		out.Requests[ai] = len(res.Requests)
		for _, r := range res.Requests {
			if r.Served {
				out.Served[ai]++
				out.DeliveredMB[ai] += r.SizeMB
				out.DelaysS[ai] = append(out.DelaysS[ai], r.CompletionS-r.ArrivalS)
			}
		}
		for _, v := range res.Vehicles {
			if v.ID != "col" {
				out.EnergyS[ai] += v.EnergyUsedS
			}
		}
	}
	return out, nil
}

// trajOptSpec builds one arm's Spec: a holding collector at the area
// center, Servers quads evenly spaced on a circle around it, and the
// trial's Poisson request stream.
func trajOptSpec(p TrajOptParams, rateIdx, trial int, pseed int64, planner string) scenario.Spec {
	center := geo.Vec3{X: p.AreaM / 2, Y: p.AreaM / 2, Z: p.AltM}
	spec := scenario.Spec{
		Name: fmt.Sprintf("trajopt/rate%d/trial%d/%s", rateIdx, trial, planner),
		Seed: pseed,
		Vehicles: []scenario.VehicleSpec{
			{ID: "col", Platform: scenario.PlatformQuad, Start: center, Hold: true},
		},
		DurationS: 5,
	}
	radius := p.AreaM / 4
	for i := 0; i < p.Servers; i++ {
		ang := 2 * math.Pi * float64(i) / float64(p.Servers)
		spec.Vehicles = append(spec.Vehicles, scenario.VehicleSpec{
			ID:       fmt.Sprintf("srv%02d", i),
			Platform: scenario.PlatformQuad,
			Start: geo.Vec3{
				X: center.X + radius*math.Cos(ang),
				Y: center.Y + radius*math.Sin(ang),
				Z: p.AltM,
			},
			SpeedMPS: p.SpeedMPS,
		})
	}
	spec.Requests = &scenario.RequestsSpec{
		Collector:   "col",
		Planner:     planner,
		HorizonS:    p.HorizonS,
		ReplanTicks: p.ReplanTicks,
		Poisson: &scenario.PoissonSpec{
			RatePerS:  p.Rates[rateIdx],
			Count:     p.Count,
			Seed:      pseed,
			MinSizeMB: p.MinSizeMB, MaxSizeMB: p.MaxSizeMB,
			MinLeadS: p.MinLeadS, MaxLeadS: p.MaxLeadS,
			AreaM: p.AreaM, AltM: p.AltM,
		},
	}
	return spec
}
