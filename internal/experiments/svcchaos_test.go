package experiments

import (
	"math"
	"testing"
)

// TestSvcChaosContrastsPostures runs the service-chaos experiment at a
// tiny workload: the fault-free control must answer everything for both
// clients, and under faults the resilient client must answer at least as
// much as the naive one (strictly more is the expected outcome, but a
// lucky fault draw on a 10-query arm must not flake the suite).
func TestSvcChaosContrastsPostures(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live HTTP servers")
	}
	cfg := Config{Seed: 1, Trials: 1, TrialSeconds: 1}
	res, err := SvcChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 10 || len(res.Points) != 3 {
		t.Fatalf("shape: queries %d, %d points", res.Queries, len(res.Points))
	}
	for i, p := range res.Points {
		if p.NaiveOK < 0 || p.NaiveOK > res.Queries || p.ResilientOK < 0 || p.ResilientOK > res.Queries {
			t.Fatalf("point %d: counts out of range: %+v", i, p)
		}
		if p.ResilientOK < p.NaiveOK {
			t.Errorf("intensity %.2f: resilient client answered less (%d) than naive (%d)",
				p.Intensity, p.ResilientOK, p.NaiveOK)
		}
		if p.NaiveOK > 0 && (math.IsNaN(p.NaiveMedianMs) || p.NaiveMedianMs <= 0) {
			t.Errorf("intensity %.2f: %d naive answers but median %v ms", p.Intensity, p.NaiveOK, p.NaiveMedianMs)
		}
	}
	ctrl := res.Points[0]
	if ctrl.Intensity != 0 || ctrl.NaiveOK != res.Queries || ctrl.ResilientOK != res.Queries {
		t.Fatalf("fault-free control lost queries: %+v", ctrl)
	}
}

func TestSvcChaosScheduleScaling(t *testing.T) {
	if !svcChaosSchedule(0).Empty() {
		t.Fatal("intensity 0 is not the empty schedule")
	}
	for _, intensity := range []float64{0.25, 0.5, 1} {
		s := svcChaosSchedule(intensity)
		if err := s.Validate(); err != nil {
			t.Fatalf("intensity %v: %v", intensity, err)
		}
		if s.ServiceLatencyS(10) <= 0 || s.ServiceResetProb(10) <= 0 || s.ServiceDropProb(10) <= 0 {
			t.Fatalf("intensity %v: some fault classes missing", intensity)
		}
	}
	if svcChaosSchedule(1).ServiceResetProb(10) <= svcChaosSchedule(0.5).ServiceResetProb(10) {
		t.Fatal("reset probability does not scale with intensity")
	}
}

func TestSvcChaosRejectsBadConfig(t *testing.T) {
	if _, err := SvcChaos(Config{Seed: 1, Trials: 0, TrialSeconds: 1}); err == nil {
		t.Fatal("zero trials accepted")
	}
}
