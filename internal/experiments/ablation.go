package experiments

import (
	"math"
	"strconv"
	"time"

	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/stats"
)

// AblationResult is a generic labelled-value comparison.
type AblationResult struct {
	Labels []string
	Values []float64
	Unit   string
}

// AblationAggregation compares saturation throughput with and without
// A-MPDU aggregation (1 vs 14 subframes) on a clean short link — the
// design choice that lets 802.11n amortize its DCF overhead.
func AblationAggregation(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Unit: "Mb/s"}
	aggs := []int{1, 4, 14}
	values, err := mapN(cfg, "ablation/agg", len(aggs), func(i int) (float64, error) {
		lcfg := link.DefaultConfig()
		lcfg.Seed = cfg.Seed
		lcfg.Label = "ablation/agg"
		lcfg.MAC.MaxAggregation = aggs[i]
		l, err := link.New(lcfg, rate.NewFixed(3))
		if err != nil {
			return 0, err
		}
		// Clean geometry: the comparison isolates DCF amortization, not
		// the link budget.
		m := l.Measure(link.Geometry{DistanceM: 5, AltitudeM: 90}, cfg.TrialSeconds)
		return m.ThroughputBps / 1e6, nil
	})
	if err != nil {
		return AblationResult{}, err
	}
	for i, agg := range aggs {
		res.Labels = append(res.Labels, "ampdu="+strconv.Itoa(agg))
		res.Values = append(res.Values, values[i])
	}
	return res, nil
}

// AblationPHYFeatures compares 20 vs 40 MHz and long vs short guard
// interval at a fixed MCS on a clean link.
func AblationPHYFeatures(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Unit: "Mb/s"}
	variants := []struct {
		name           string
		bonded, shortG bool
	}{
		{"20MHz/LGI", false, false},
		{"20MHz/SGI", false, true},
		{"40MHz/LGI", true, false},
		{"40MHz/SGI", true, true},
	}
	values, err := mapN(cfg, "ablation/phy", len(variants), func(i int) (float64, error) {
		v := variants[i]
		lcfg := link.DefaultConfig()
		lcfg.Seed = cfg.Seed
		lcfg.Label = "ablation/phy/" + v.name
		lcfg.PHY.Bonded40MHz = v.bonded
		lcfg.PHY.ShortGI = v.shortG
		if !v.bonded {
			lcfg.Channel.BandwidthHz = 20e6
		}
		l, err := link.New(lcfg, rate.NewFixed(3))
		if err != nil {
			return 0, err
		}
		// Short range and high altitude: ample SNR, so the comparison
		// isolates the PHY feature rather than the link budget.
		m := l.Measure(link.Geometry{DistanceM: 5, AltitudeM: 90}, cfg.TrialSeconds)
		return m.ThroughputBps / 1e6, nil
	})
	if err != nil {
		return AblationResult{}, err
	}
	for i, v := range variants {
		res.Labels = append(res.Labels, v.name)
		res.Values = append(res.Values, values[i])
	}
	return res, nil
}

// AblationOptimizer compares the hybrid grid+golden optimizer against a
// dense brute-force scan: max utility error and speedup.
func AblationOptimizer(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	scenarios := []core.Scenario{core.AirplaneBaseline(), core.QuadrocopterBaseline()}
	var rhos []float64
	for _, r := range []float64{1e-4, 1e-3, 5e-3, 1e-2} {
		rhos = append(rhos, r)
	}
	var worstGap float64
	startHybrid := time.Now()
	for _, sc := range scenarios {
		for _, rho := range rhos {
			m, err := failure.NewModel(rho)
			if err != nil {
				return AblationResult{}, err
			}
			sc.Failure = m
			opt, err := sc.Optimize()
			if err != nil {
				return AblationResult{}, err
			}
			// Brute force at 1 cm resolution.
			best := 0.0
			for d := sc.MinDistanceM; d <= sc.D0M; d += 0.01 {
				if u := sc.Utility(d); u > best {
					best = u
				}
			}
			if gap := (best - opt.Utility) / best; gap > worstGap {
				worstGap = gap
			}
		}
	}
	elapsed := time.Since(startHybrid).Seconds()
	return AblationResult{
		Labels: []string{"worst-relative-gap", "total-seconds"},
		Values: []float64{worstGap, elapsed},
		Unit:   "ratio / s",
	}, nil
}

// AblationSpeedFading switches off the speed coupling of the channel
// (orientation and K-factor) and re-measures the Fig 7 speed sweep: the
// collapse with speed should vanish, isolating the mechanism behind
// "hover and transmit" beating "move and transmit".
func AblationSpeedFading(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	measure := func(decoupled bool, v float64) (float64, error) {
		xs, err := mapTrials(cfg, "ablation/speedfade", func(trial int) (float64, error) {
			lcfg := trialLinkConfig(cfg.Seed, "ablation/speedfade", trial)
			if decoupled {
				lcfg.Channel.OrientSpeedDB = 0
				lcfg.Channel.KSpeedSlopeDB = 0
			}
			l, err := link.New(lcfg, minstrelFor(lcfg))
			if err != nil {
				return 0, err
			}
			m := l.Measure(link.Geometry{DistanceM: 60, AltitudeM: 10, RelSpeedMPS: v}, cfg.TrialSeconds)
			return m.ThroughputBps / 1e6, nil
		})
		if err != nil {
			return 0, err
		}
		return stats.MustMedian(xs), nil
	}
	res := AblationResult{Unit: "ratio hover/15m/s"}
	for _, decoupled := range []bool{false, true} {
		hover, err := measure(decoupled, 0)
		if err != nil {
			return AblationResult{}, err
		}
		fast, err := measure(decoupled, 15)
		if err != nil {
			return AblationResult{}, err
		}
		label := "coupled"
		if decoupled {
			label = "decoupled"
		}
		ratio := math.Inf(1)
		if fast > 0 {
			ratio = hover / fast
		}
		res.Labels = append(res.Labels, label)
		res.Values = append(res.Values, ratio)
	}
	return res, nil
}

// AblationFailureModel contrasts the paper's exponential-in-distance
// failure law with an exponential-in-time alternative (Section 7 names
// "introducing a specific failure model" as future work): it reports dopt
// under both for the airplane baseline. Under exponential-in-time the
// discount depends on Cdelay(d) itself, so the optimum shifts.
func AblationFailureModel(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	sc := core.AirplaneBaseline()
	opt, err := sc.Optimize()
	if err != nil {
		return AblationResult{}, err
	}
	// Exponential in time with the equivalent rate λ = ρ·v: the UAV risks
	// failure per second aloft rather than per metre shipped.
	lambda := sc.Failure.Rho * sc.SpeedMPS
	bestD, bestU := sc.D0M, 0.0
	for d := sc.MinDistanceM; d <= sc.D0M; d += 0.05 {
		c := sc.CommDelay(d)
		if math.IsInf(c, 1) {
			continue
		}
		u := math.Exp(-lambda*c) / c
		if u > bestU {
			bestU, bestD = u, d
		}
	}
	return AblationResult{
		Labels: []string{"dopt-exp-distance", "dopt-exp-time"},
		Values: []float64{opt.DoptM, bestD},
		Unit:   "m",
	}, nil
}

// AblationAutoRate compares the two auto-rate algorithms (Minstrel
// sampling vs classic ARF) against the best fixed MCS on a moving aerial
// link — quantifying how much of the paper's Fig 6 gap each algorithm
// explains.
func AblationAutoRate(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	g := link.Geometry{DistanceM: 60, AltitudeM: 90, RelSpeedMPS: 18}
	measure := func(mk func(lcfg link.Config) rate.Policy) (float64, error) {
		xs, err := mapTrials(cfg, "ablation/autorate", func(trial int) (float64, error) {
			lcfg := trialLinkConfig(cfg.Seed, "ablation/autorate", trial)
			l, err := link.New(lcfg, mk(lcfg))
			if err != nil {
				return 0, err
			}
			m := l.Measure(g, cfg.TrialSeconds)
			return m.ThroughputBps / 1e6, nil
		})
		if err != nil {
			return 0, err
		}
		return stats.MustMedian(xs), nil
	}
	res := AblationResult{Unit: "Mb/s"}
	minstrel, err := measure(func(lcfg link.Config) rate.Policy { return minstrelFor(lcfg) })
	if err != nil {
		return AblationResult{}, err
	}
	arf, err := measure(func(link.Config) rate.Policy { return rate.NewARF(rate.DefaultARFParams()) })
	if err != nil {
		return AblationResult{}, err
	}
	oracle, err := measure(func(lcfg link.Config) rate.Policy { return link.NewOraclePolicy(lcfg) })
	if err != nil {
		return AblationResult{}, err
	}
	best := 0.0
	for _, m := range []int{1, 2, 3} {
		m := m
		v, err := measure(func(link.Config) rate.Policy { return rate.NewFixed(phy.MCS(m)) })
		if err != nil {
			return AblationResult{}, err
		}
		if v > best {
			best = v
		}
	}
	res.Labels = []string{"minstrel", "arf", "best-fixed", "oracle"}
	res.Values = []float64{minstrel, arf, best, oracle}
	return res, nil
}

// AblationTwoRay swaps the calibrated log-distance law for the explicit
// two-ray ground-reflection model and compares the fitted throughput
// slopes — the physical justification for the default model's sub-2
// exponent (below the two-ray breakpoint the ground bounce often rides
// constructively).
func AblationTwoRay(cfg Config) (AblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblationResult{}, err
	}
	fitFor := func(twoRay bool) (float64, error) {
		var ds, meds []float64
		for _, d := range []float64{20, 40, 80, 160, 320} {
			xs, err := mapTrials(cfg, "ablation/tworay", func(trial int) (float64, error) {
				lcfg := trialLinkConfig(cfg.Seed, "ablation/tworay", trial)
				lcfg.Channel.TwoRay = twoRay
				lcfg.Channel.GroundReflectionCoeff = 0.7
				l, err := link.New(lcfg, minstrelFor(lcfg))
				if err != nil {
					return 0, err
				}
				m := l.Measure(link.Geometry{DistanceM: d, AltitudeM: 90}, cfg.TrialSeconds)
				return m.ThroughputBps / 1e6, nil
			})
			if err != nil {
				return 0, err
			}
			ds = append(ds, d)
			meds = append(meds, stats.MustMedian(xs))
		}
		fit, err := stats.FitLog2(ds, meds)
		if err != nil {
			return 0, err
		}
		return fit.A, nil
	}
	logSlope, err := fitFor(false)
	if err != nil {
		return AblationResult{}, err
	}
	twoRaySlope, err := fitFor(true)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Labels: []string{"slope-log-distance", "slope-two-ray"},
		Values: []float64{logSlope, twoRaySlope},
		Unit:   "Mb/s per octave",
	}, nil
}
