package experiments

import (
	"testing"
	"time"
)

func fleetScaleTestParams(sizes []int) FleetScaleParams {
	p := QuickFleetScaleParams()
	p.Sizes = sizes
	p.AreaM = 400
	p.DurationS = 60
	return p
}

// A small sweep completes, its accounting is self-consistent, and the
// event-driven core genuinely elides work relative to the legacy lockstep
// cost of duration/tick × fleet.
func TestFleetScaleSmoke(t *testing.T) {
	cfg := QuickConfig()
	res, err := FleetScaleWith(cfg, fleetScaleTestParams([]int{60, 200}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.EventsProcessed == 0 {
			t.Fatalf("n=%d: no events processed", pt.Fleet)
		}
		if pt.SubTicksStepped == 0 || pt.SubTicksElided == 0 {
			t.Fatalf("n=%d: sub-tick accounting empty: %+v", pt.Fleet, pt)
		}
		if pt.SubTicksStepped >= pt.LegacySubTicks {
			t.Fatalf("n=%d: stepped %d of legacy %d sub-ticks: nothing elided",
				pt.Fleet, pt.SubTicksStepped, pt.LegacySubTicks)
		}
		if pt.Killed == 0 {
			t.Fatalf("n=%d: chaos killed nobody", pt.Fleet)
		}
		if pt.Contacted == 0 || pt.Contacts < pt.Contacted {
			t.Fatalf("n=%d: contact accounting implausible: %+v", pt.Fleet, pt)
		}
		if pt.HubBusyFrac < 0 || pt.HubBusyFrac > 1 {
			t.Fatalf("n=%d: busy fraction %v outside [0,1]", pt.Fleet, pt.HubBusyFrac)
		}
		if pt.MeanFirstContactS < 0 || pt.MeanFirstContactS > 60 {
			t.Fatalf("n=%d: first-contact delay %v outside the horizon", pt.Fleet, pt.MeanFirstContactS)
		}
		if !(pt.MeanNNDistM > 0) {
			t.Fatalf("n=%d: no nearest-neighbor density samples", pt.Fleet)
		}
		if !(pt.AggCapacityMbps >= 0) || !(pt.BoundMbps > 0) {
			t.Fatalf("n=%d: capacity columns implausible: %+v", pt.Fleet, pt)
		}
		if pt.PeakPending == 0 {
			t.Fatalf("n=%d: peak pending events never sampled", pt.Fleet)
		}
	}
	// Denser sweep point sees more contact pressure on an area this small.
	if res.Points[1].Contacts <= res.Points[0].Contacts {
		t.Fatalf("contacts did not grow with fleet size: %d then %d",
			res.Points[0].Contacts, res.Points[1].Contacts)
	}
}

// The sweep is a pure function of (seed, params): wall-clock aside, two runs
// agree field for field.
func TestFleetScaleDeterministic(t *testing.T) {
	cfg := QuickConfig()
	run := func() []FleetScalePoint {
		res, err := FleetScaleWith(cfg, fleetScaleTestParams([]int{120}))
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Points {
			res.Points[i].WallS = 0
		}
		return res.Points
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d not deterministic:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestFleetScaleRejectsBadParams(t *testing.T) {
	cfg := QuickConfig()
	bad := []FleetScaleParams{
		{},
		{Sizes: []int{100}, AreaM: -1, SpeedMPS: 9, LegsPerVehicle: 1, DurationS: 10, RangeScale: 1},
		{Sizes: []int{1}, AreaM: 400, SpeedMPS: 9, LegsPerVehicle: 1, DurationS: 10, RangeScale: 1},
	}
	for i, p := range bad {
		if _, err := FleetScaleWith(cfg, p); err == nil {
			t.Fatalf("params %d accepted: %+v", i, p)
		}
	}
}

// CI's fleetscale-smoke gate: a 1,000-vehicle fleet must finish inside a
// generous wall-clock ceiling (sized for -race), with advance cost scaling
// with events processed — most lockstep sub-ticks elided.
func TestFleetScaleThousandVehicles(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-vehicle run skipped in -short")
	}
	cfg := QuickConfig()
	p := QuickFleetScaleParams()
	p.Sizes = []int{1000}
	start := time.Now()
	res, err := FleetScaleWith(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 120*time.Second {
		t.Fatalf("1,000-vehicle run took %v, ceiling 120s", wall)
	}
	pt := res.Points[0]
	if pt.SubTicksStepped*2 >= pt.LegacySubTicks {
		t.Fatalf("stepped %d of %d legacy sub-ticks: elision is not scaling",
			pt.SubTicksStepped, pt.LegacySubTicks)
	}
	if pt.EventsProcessed == 0 || pt.Contacted == 0 {
		t.Fatalf("implausible large-fleet point: %+v", pt)
	}
}
