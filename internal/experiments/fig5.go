package experiments

import (
	"math"
	"runtime"
	"sync"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/stats"
)

// Fig5Result reproduces Fig. 5 (throughput vs. distance between two
// airplanes, auto PHY rate): boxplot bins over the 20–320 m range from
// repeated commuting flights, plus the log2 fit of the medians the paper
// derives in Section 4 (s_airplane(d) = −5.56·log2(d) + 49, R² = 0.9).
type Fig5Result struct {
	Bins []DistanceBin
	Fit  stats.LogFit
}

// fig5BinWidth groups samples into the paper's 20 m columns.
const fig5BinWidth = 20.0

// Fig5 flies the two-airplane commute while saturating the link with UDP
// traffic under Minstrel auto-rate and bins windowed throughput by
// distance.
func Fig5(cfg Config) (Fig5Result, error) {
	samples, err := airplaneFlightSamples(cfg, "fig5", nil)
	if err != nil {
		return Fig5Result{}, err
	}
	byBin := make(map[float64][]float64)
	for _, s := range samples {
		bin := math.Round(s.DistanceM/fig5BinWidth) * fig5BinWidth
		if bin < 20 || bin > 320 {
			continue
		}
		byBin[bin] = append(byBin[bin], s.ThroughputMb)
	}
	res := Fig5Result{Bins: binSamples(byBin)}
	ds, meds := medians(res.Bins)
	if len(ds) >= 3 {
		fit, err := stats.FitLog2(ds, meds)
		if err == nil {
			res.Fit = fit
		}
	}
	return res, nil
}

// airplaneFlightSamples runs cfg.Trials commuting flights and pools the
// windowed throughput samples. policyName selects a fixed MCS ("mcsN") or
// auto-rate (nil / empty).
func airplaneFlightSamples(cfg Config, label string, mkPolicy func(trial int) policySpec) ([]windowSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Trials are seeded independently, so they run concurrently; samples
	// are gathered per trial index to keep the pooled set deterministic.
	perTrial := make([][]windowSample, cfg.Trials)
	errs := make([]error, cfg.Trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for trial := 0; trial < cfg.Trials; trial++ {
		wg.Add(1)
		go func(trial int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			a, err := planeAt("plane-a", geo.Vec3{X: 0, Z: 80})
			if err != nil {
				errs[trial] = err
				return
			}
			b, err := planeAt("plane-b", geo.Vec3{X: 400, Z: 100})
			if err != nil {
				errs[trial] = err
				return
			}
			commutePlanes(a, b, 400)
			lcfg := trialLinkConfig(cfg.Seed, label, trial)
			spec := policySpec{FixedMCS: -1} // default: Minstrel auto-rate
			if mkPolicy != nil {
				spec = mkPolicy(trial)
			}
			fp, err := newFlightPair(lcfg, spec.build(lcfg), a, b)
			if err != nil {
				errs[trial] = err
				return
			}
			// One commute leg is 400 m at ~10 m/s: measure several legs so
			// every distance bin fills.
			duration := math.Max(cfg.TrialSeconds*10, 90)
			perTrial[trial] = fp.measureWindowed(duration, 1.0)
		}(trial)
	}
	wg.Wait()
	var all []windowSample
	for trial, samples := range perTrial {
		if errs[trial] != nil {
			return nil, errs[trial]
		}
		all = append(all, samples...)
	}
	return all, nil
}
