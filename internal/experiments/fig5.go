package experiments

import (
	"math"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// Fig5Result reproduces Fig. 5 (throughput vs. distance between two
// airplanes, auto PHY rate): boxplot bins over the 20–320 m range from
// repeated commuting flights, plus the log2 fit of the medians the paper
// derives in Section 4 (s_airplane(d) = −5.56·log2(d) + 49, R² = 0.9).
type Fig5Result struct {
	Bins []DistanceBin
	Fit  stats.LogFit
}

// fig5BinWidth groups samples into the paper's 20 m columns.
const fig5BinWidth = 20.0

// Fig5 flies the two-airplane commute while saturating the link with UDP
// traffic under Minstrel auto-rate and bins windowed throughput by
// distance.
func Fig5(cfg Config) (Fig5Result, error) {
	samples, err := airplaneFlightSamples(cfg, "fig5", "")
	if err != nil {
		return Fig5Result{}, err
	}
	byBin := make(map[float64][]float64)
	for _, s := range samples {
		if s.Partial {
			continue // trailing sub-window: not comparable to full windows
		}
		bin := math.Round(s.DistanceM/fig5BinWidth) * fig5BinWidth
		if bin < 20 || bin > 320 {
			continue
		}
		byBin[bin] = append(byBin[bin], s.ThroughputMb)
	}
	res := Fig5Result{Bins: binSamples(byBin)}
	ds, meds := medians(res.Bins)
	if len(ds) >= 3 {
		fit, err := stats.FitLog2(ds, meds)
		if err == nil {
			res.Fit = fit
		}
	}
	return res, nil
}

// airplaneFlightSamples runs cfg.Trials commuting flights and pools the
// windowed throughput samples. rate selects a fixed MCS ("mcsN") or
// auto-rate (""), in the scenario layer's LinkSpec.Rate vocabulary.
//
// Each trial is one declarative Spec: two airplanes commuting between
// opposite waypoints at separated altitudes (the Fig 4(a)/Fig 5 pattern,
// sweeping their mutual distance over the full 20–400 m range every leg)
// under a saturation workload. Trials are seeded independently and run on
// the shared bounded pool; samples are pooled per trial index to keep the
// output deterministic.
func airplaneFlightSamples(cfg Config, label, rate string) ([]windowSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	perTrial, err := mapTrials(cfg, label, func(trial int) ([]windowSample, error) {
		s := trialSpec(label, cfg.Seed, label, trial)
		s.Link.Rate = rate
		s.Vehicles = []scenario.VehicleSpec{
			{ID: "plane-a", Platform: scenario.PlatformPlane, Start: geo.Vec3{X: 0, Z: 80},
				Route: []geo.Vec3{{X: 400, Z: 80}, {X: 0, Z: 80}}, Loop: true},
			{ID: "plane-b", Platform: scenario.PlatformPlane, Start: geo.Vec3{X: 400, Z: 100},
				Route: []geo.Vec3{{X: 0, Z: 100}, {X: 400, Z: 100}}, Loop: true},
		}
		// One commute leg is 400 m at ~10 m/s: measure several legs so
		// every distance bin fills.
		s.Traffic = []scenario.TrafficSpec{{
			From: "plane-a", To: "plane-b",
			DurationS: math.Max(cfg.TrialSeconds*10, 90), WindowS: 1.0,
		}}
		res, err := runSpec(s)
		if err != nil {
			return nil, err
		}
		return res.Traffic[0].Samples, nil
	})
	if err != nil {
		return nil, err
	}
	var all []windowSample
	for _, samples := range perTrial {
		all = append(all, samples...)
	}
	return all, nil
}
