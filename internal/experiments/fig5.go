package experiments

import (
	"math"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/stats"
)

// Fig5Result reproduces Fig. 5 (throughput vs. distance between two
// airplanes, auto PHY rate): boxplot bins over the 20–320 m range from
// repeated commuting flights, plus the log2 fit of the medians the paper
// derives in Section 4 (s_airplane(d) = −5.56·log2(d) + 49, R² = 0.9).
type Fig5Result struct {
	Bins []DistanceBin
	Fit  stats.LogFit
}

// fig5BinWidth groups samples into the paper's 20 m columns.
const fig5BinWidth = 20.0

// Fig5 flies the two-airplane commute while saturating the link with UDP
// traffic under Minstrel auto-rate and bins windowed throughput by
// distance.
func Fig5(cfg Config) (Fig5Result, error) {
	samples, err := airplaneFlightSamples(cfg, "fig5", nil)
	if err != nil {
		return Fig5Result{}, err
	}
	byBin := make(map[float64][]float64)
	for _, s := range samples {
		bin := math.Round(s.DistanceM/fig5BinWidth) * fig5BinWidth
		if bin < 20 || bin > 320 {
			continue
		}
		byBin[bin] = append(byBin[bin], s.ThroughputMb)
	}
	res := Fig5Result{Bins: binSamples(byBin)}
	ds, meds := medians(res.Bins)
	if len(ds) >= 3 {
		fit, err := stats.FitLog2(ds, meds)
		if err == nil {
			res.Fit = fit
		}
	}
	return res, nil
}

// airplaneFlightSamples runs cfg.Trials commuting flights and pools the
// windowed throughput samples. policyName selects a fixed MCS ("mcsN") or
// auto-rate (nil / empty).
//
// Trials are seeded independently and run on the shared bounded pool. The
// whole trial body — autopilot and flight-state setup included — executes
// inside the worker, so at most cfg.Workers trials exist at once (the old
// hand-rolled fan-out spawned every goroutine up front); samples are pooled
// per trial index to keep the output deterministic.
func airplaneFlightSamples(cfg Config, label string, mkPolicy func(trial int) policySpec) ([]windowSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	perTrial, err := mapTrials(cfg, label, func(trial int) ([]windowSample, error) {
		a, err := planeAt("plane-a", geo.Vec3{X: 0, Z: 80})
		if err != nil {
			return nil, err
		}
		b, err := planeAt("plane-b", geo.Vec3{X: 400, Z: 100})
		if err != nil {
			return nil, err
		}
		commutePlanes(a, b, 400)
		lcfg := trialLinkConfig(cfg.Seed, label, trial)
		spec := policySpec{FixedMCS: -1} // default: Minstrel auto-rate
		if mkPolicy != nil {
			spec = mkPolicy(trial)
		}
		fp, err := newFlightPair(lcfg, spec.build(lcfg), a, b)
		if err != nil {
			return nil, err
		}
		// One commute leg is 400 m at ~10 m/s: measure several legs so
		// every distance bin fills.
		duration := math.Max(cfg.TrialSeconds*10, 90)
		return fp.measureWindowed(duration, 1.0), nil
	})
	if err != nil {
		return nil, err
	}
	var all []windowSample
	for _, samples := range perTrial {
		all = append(all, samples...)
	}
	return all, nil
}
