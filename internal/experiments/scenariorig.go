package experiments

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/scenario"
)

// windowSample is one throughput observation labelled with geometry — the
// scenario runtime's windowed saturation sample, under the name the
// experiment renderers grew up with.
type windowSample = scenario.Sample

// trialSpec starts a declarative Spec with the harness's per-trial
// substream derivation: the same (seed, label, trial) always yields the
// same link behaviour, whichever figure asks.
func trialSpec(name string, seed int64, label string, trial int) scenario.Spec {
	return scenario.Spec{
		Name: name,
		Seed: seed + int64(trial)*7919,
		Link: scenario.LinkSpec{Label: fmt.Sprintf("%s/trial%d", label, trial)},
	}
}

// runSpec compiles and executes one Spec on a fresh engine.
func runSpec(s scenario.Spec) (scenario.Result, error) {
	rt, err := scenario.Compile(s)
	if err != nil {
		return scenario.Result{}, err
	}
	return rt.Run()
}
