// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrates. Each FigN/TableN function
// returns a structured result that cmd/experiments renders to CSV and
// ASCII plots and that the benchmark harness (bench_test.go) asserts
// shape properties on. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"

	"github.com/nowlater/nowlater/internal/checkpoint"
	"github.com/nowlater/nowlater/internal/runner"
	"github.com/nowlater/nowlater/internal/stats"
)

// Config scales the experiment workloads.
type Config struct {
	// Seed drives every random substream deterministically.
	Seed int64
	// Trials is the number of independent repetitions feeding each
	// distribution (the paper's repeated flight passes).
	Trials int
	// TrialSeconds is the simulated duration of one measurement.
	TrialSeconds float64
	// Workers bounds the experiment engine's trial pool; ≤ 0 selects one
	// worker per core. Results are bit-identical for any value (see
	// internal/runner's determinism contract); 1 forces the serial order
	// the equivalence tests compare against.
	Workers int
	// Checkpoint, when non-nil, journals every completed trial of every
	// sweep so a killed run resumes from its last fsync'd trial. Resumed
	// trials are skipped and their journaled results merged back in trial
	// order, so a resumed run is byte-identical to an uninterrupted one at
	// any worker count. A journal written under a different seed, trial
	// count, trial duration or grid size is rejected loudly (the worker
	// count is deliberately excluded from the fingerprint).
	Checkpoint *checkpoint.Store
}

// DefaultConfig reproduces the figures at publication quality.
func DefaultConfig() Config {
	return Config{Seed: 1, Trials: 9, TrialSeconds: 10}
}

// QuickConfig is a reduced workload for smoke tests and benchmarks.
func QuickConfig() Config {
	return Config{Seed: 1, Trials: 5, TrialSeconds: 5}
}

// Validate reports the first implausible field.
func (c Config) Validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("experiments: trials %d must be ≥ 1", c.Trials)
	}
	if c.TrialSeconds <= 0 {
		return fmt.Errorf("experiments: trial duration %v must be positive", c.TrialSeconds)
	}
	return nil
}

// mapTrials runs fn for each trial index on the shared bounded pool
// (internal/runner), collecting results in trial order. Every trial loop in
// this package routes through it: fn must derive all randomness from the
// trial index so that any worker count reproduces the serial output
// bit-for-bit.
func mapTrials[T any](cfg Config, label string, fn func(trial int) (T, error)) ([]T, error) {
	return mapSweep(cfg, label, cfg.Trials, fn)
}

// mapN is mapTrials over an explicit index range (grid cells, variants,
// strategies) rather than cfg.Trials.
func mapN[T any](cfg Config, label string, n int, fn func(i int) (T, error)) ([]T, error) {
	return mapSweep(cfg, label, n, fn)
}

// fingerprint hashes the identity of one sweep — everything that
// determines its bits. The worker count is excluded on purpose: the
// determinism contract makes results worker-invariant, so a run may
// legally resume at a different width.
func (c Config) fingerprint(label string, n int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|n=%d|seed=%d|trials=%d|trialseconds=%g",
		label, n, c.Seed, c.Trials, c.TrialSeconds)
	return h.Sum64()
}

// mapSweep is the single chokepoint every sweep runs through. Without a
// checkpoint store it is a plain runner.Map; with one it opens the sweep's
// journal, skips trials the journal already holds, streams each fresh
// result into the journal (gob-encoded, fsync'd before the trial counts as
// complete), and merges the journaled results back into their slots so the
// caller sees a complete, in-order result set either way.
func mapSweep[T any](cfg Config, label string, n int, fn func(i int) (T, error)) ([]T, error) {
	opts := runner.Options{Workers: cfg.Workers, Label: label}
	var prior map[int]T
	if cfg.Checkpoint != nil {
		meta := checkpoint.Meta{Fingerprint: cfg.fingerprint(label, n), Trials: n}
		j, err := cfg.Checkpoint.Journal(label, meta)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		prior = make(map[int]T)
		for i := 0; i < n; i++ {
			p, ok := j.Result(i)
			if !ok {
				continue
			}
			var v T
			if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&v); err != nil {
				return nil, fmt.Errorf("experiments: %s: decoding journaled trial %d: %w", label, i, err)
			}
			prior[i] = v
		}
		opts.Completed = j.Completed()
		opts.OnResult = func(trial int, result any) error {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(result.(T)); err != nil {
				return err
			}
			return j.Append(trial, buf.Bytes())
		}
	}
	out, err := runner.Map(context.Background(), n, opts, fn)
	if err != nil {
		return nil, err
	}
	for i, v := range prior {
		out[i] = v
	}
	return out, nil
}

// DistanceBin is one boxplot column of a throughput-vs-distance figure.
type DistanceBin struct {
	DistanceM float64
	SamplesMb []float64 // Mb/s samples
	Box       stats.Boxplot
}

// binSamples turns distance-keyed samples into sorted bins with boxplot
// summaries, dropping empty bins.
func binSamples(byDistance map[float64][]float64) []DistanceBin {
	var bins []DistanceBin
	for _, d := range sortedKeys(byDistance) {
		xs := byDistance[d]
		if len(xs) == 0 {
			continue
		}
		box, err := stats.Summarize(xs)
		if err != nil {
			continue
		}
		bins = append(bins, DistanceBin{DistanceM: d, SamplesMb: xs, Box: box})
	}
	return bins
}

func sortedKeys(m map[float64][]float64) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// medians extracts the per-bin medians as (distances, medians).
func medians(bins []DistanceBin) (ds, meds []float64) {
	for _, b := range bins {
		ds = append(ds, b.DistanceM)
		meds = append(meds, b.Box.Median)
	}
	return ds, meds
}
