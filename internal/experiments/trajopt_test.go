package experiments

import (
	"reflect"
	"testing"
	"time"
)

// trajOptTestParams is a shrunk sweep for cheap assertions.
func trajOptTestParams() TrajOptParams {
	p := QuickTrajOptParams()
	p.Rates = []float64{0.15}
	p.Count = 6
	return p
}

// The sweep completes with one point per (rate, planner), sane accounting,
// and pooled summaries consistent with the points.
func TestTrajOptSmoke(t *testing.T) {
	cfg := QuickConfig()
	cfg.Trials = 3
	res, err := TrajOptWith(cfg, trajOptTestParams())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(res.Params.Rates) * 3; len(res.Points) != want {
		t.Fatalf("got %d points, want %d", len(res.Points), want)
	}
	if len(res.Summary) != 3 {
		t.Fatalf("got %d summaries, want 3", len(res.Summary))
	}
	for _, pt := range res.Points {
		if pt.Requests == 0 {
			t.Fatalf("%s@%g: no requests materialized", pt.Planner, pt.RatePerS)
		}
		if pt.Served < 0 || pt.Served > pt.Requests {
			t.Fatalf("%s@%g: served %d of %d", pt.Planner, pt.RatePerS, pt.Served, pt.Requests)
		}
		if pt.ServedRatio < 0 || pt.ServedRatio > 1 {
			t.Fatalf("%s@%g: ratio %v", pt.Planner, pt.RatePerS, pt.ServedRatio)
		}
		if pt.Served > 0 && (pt.DeliveredMB <= 0 || pt.MeanDelayS <= 0 || pt.P99DelayS < pt.MeanDelayS/2) {
			t.Fatalf("%s@%g: implausible delivery accounting: %+v", pt.Planner, pt.RatePerS, pt)
		}
		if !(pt.EnergyS > 0) {
			t.Fatalf("%s@%g: no energy drained", pt.Planner, pt.RatePerS)
		}
	}
	// Every arm of a pair sees the identical request stream.
	for i := 0; i < len(res.Points); i += 3 {
		if res.Points[i].Requests != res.Points[i+1].Requests || res.Points[i].Requests != res.Points[i+2].Requests {
			t.Fatalf("arms saw different request counts at rate %g: %+v",
				res.Points[i].RatePerS, res.Points[i:i+3])
		}
	}
}

// The headline claim CI smokes: on paired request streams the joint
// trajectory optimizer strictly improves BOTH the served-before-deadline
// ratio AND the energy per delivered byte over the fixed-route now-or-later
// baseline, at the quick scale the -quick run uses.
func TestTrajOptJointBeatsFixedBaseline(t *testing.T) {
	cfg := QuickConfig()
	res, err := TrajOptWith(cfg, QuickTrajOptParams())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TrajOptSummary{}
	for _, s := range res.Summary {
		byName[s.Planner] = s
	}
	fixed, joint := byName["fixed"], byName["joint"]
	if !(joint.ServedRatio > fixed.ServedRatio) {
		t.Fatalf("joint served ratio %.3f not strictly above fixed %.3f",
			joint.ServedRatio, fixed.ServedRatio)
	}
	if !(joint.EnergySPerMB < fixed.EnergySPerMB) {
		t.Fatalf("joint energy %.2f s/MB not strictly below fixed %.2f",
			joint.EnergySPerMB, fixed.EnergySPerMB)
	}
}

// The sweep is a pure function of (seed, params) and worker-invariant:
// serial and parallel runs agree field for field.
func TestTrajOptDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) TrajOptResult {
		cfg := QuickConfig()
		cfg.Trials = 3
		cfg.Workers = workers
		res, err := TrajOptWith(cfg, trajOptTestParams())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 7} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial:\n%+v\n%+v", w, got, serial)
		}
	}
}

func TestTrajOptRejectsBadParams(t *testing.T) {
	cfg := QuickConfig()
	bad := []TrajOptParams{
		{},
		{Rates: []float64{0.1}, Count: 0, Servers: 2, AreaM: 500, AltM: 30, SpeedMPS: 10,
			MinSizeMB: 1, MaxSizeMB: 2, MinLeadS: 60, MaxLeadS: 120},
		{Rates: []float64{-1}, Count: 5, Servers: 2, AreaM: 500, AltM: 30, SpeedMPS: 10,
			MinSizeMB: 1, MaxSizeMB: 2, MinLeadS: 60, MaxLeadS: 120},
		{Rates: []float64{0.1}, Count: 5, Servers: 2, AreaM: 500, AltM: 30, SpeedMPS: 10,
			MinSizeMB: 2, MaxSizeMB: 1, MinLeadS: 60, MaxLeadS: 120},
	}
	for i, p := range bad {
		if _, err := TrajOptWith(cfg, p); err == nil {
			t.Fatalf("params %d accepted: %+v", i, p)
		}
	}
}

// CI's trajopt-smoke gate: the quick sweep (the same one the headline-claim
// test runs) must finish inside a generous wall-clock ceiling sized for
// -race.
func TestTrajOptQuickSweepUnderCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep skipped in -short")
	}
	cfg := QuickConfig()
	start := time.Now()
	if _, err := TrajOptWith(cfg, QuickTrajOptParams()); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 120*time.Second {
		t.Fatalf("quick trajopt sweep took %v, ceiling 120s", wall)
	}
}
