package sim

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	mustSchedule(t, e, 3.0, func() { order = append(order, 3) })
	mustSchedule(t, e, 1.0, func() { order = append(order, 1) })
	mustSchedule(t, e, 2.0, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3.0 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, e, 5.0, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-instant events reordered: %v", order)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	mustSchedule(t, e, 10, func() {})
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(5, func() {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
	if _, err := e.After(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	mustSchedule(t, e, 1, func() { fired++ })
	mustSchedule(t, e, 2, func() { fired++ })
	mustSchedule(t, e, 3, func() { fired++ })
	if err := e.RunUntil(2); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (horizon-inclusive)", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("clock = %v, want 2", e.Now())
	}
	if err := e.RunUntil(1); err == nil {
		t.Fatal("backwards horizon accepted")
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if fired != 3 || e.Now() != 10 {
		t.Fatalf("fired=%d now=%v", fired, e.Now())
	}
}

func TestRunUntilRejectsNaN(t *testing.T) {
	e := NewEngine()
	fired := false
	mustSchedule(t, e, 5, func() { fired = true })
	if err := e.RunUntil(math.NaN()); err == nil {
		t.Fatal("NaN horizon accepted")
	}
	// The guard must leave the engine untouched: both comparisons in the
	// event loop are false for NaN, so without it every queued event would
	// fire and the clock would become NaN.
	if fired {
		t.Fatal("NaN horizon fired a future event")
	}
	if e.Now() != 0 {
		t.Fatalf("NaN horizon moved the clock to %v", e.Now())
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if !fired || e.Now() != 5 {
		t.Fatalf("engine unusable after rejected NaN: fired=%v now=%v", fired, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := mustSchedule(t, e, 1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // idempotent
	e.Cancel(nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() false after cancel")
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	mustSchedule(t, e, 1, func() { e.Cancel(victim) })
	victim = mustSchedule(t, e, 2, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	mustSchedule(t, e, 1, func() { fired++; e.Stop() })
	mustSchedule(t, e, 2, func() { fired++ })
	if err := e.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The remaining event is still runnable afterwards.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d after resume", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var trace []float64
	mustSchedule(t, e, 1, func() {
		trace = append(trace, e.Now())
		if _, err := e.After(0.5, func() { trace = append(trace, e.Now()) }); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 1.5 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk, err := e.NewTicker(0.25, func(now float64) { ticks = append(ticks, now) })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1.0); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 4 {
		t.Fatalf("ticks = %v", ticks)
	}
	tk.Stop()
	if err := e.RunUntil(2.0); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 4 {
		t.Fatalf("ticker kept firing after Stop: %v", ticks)
	}
	if _, err := e.NewTicker(0, func(float64) {}); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestLenCountsPending(t *testing.T) {
	e := NewEngine()
	a := mustSchedule(t, e, 1, func() {})
	mustSchedule(t, e, 2, func() {})
	if e.Len() != 2 {
		t.Fatalf("Len = %d", e.Len())
	}
	e.Cancel(a)
	if e.Len() != 1 {
		t.Fatalf("Len after cancel = %d", e.Len())
	}
}

// Regression: Ticker used to reschedule via repeated After(interval), so
// tick n fired at an accumulated-float-error time. Rebased on the tick
// count, a million 0.02 s ticks must each land exactly on n*0.02.
func TestTickerNoDrift(t *testing.T) {
	const (
		interval = 0.02
		ticks    = 1_000_000
	)
	e := NewEngine()
	var n uint64
	var bad []float64
	_, err := e.NewTicker(interval, func(now float64) {
		n++
		if want := float64(n) * interval; now != want && len(bad) < 5 {
			bad = append(bad, now)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(float64(ticks) * interval); err != nil {
		t.Fatal(err)
	}
	if n != ticks {
		t.Fatalf("fired %d ticks, want %d", n, ticks)
	}
	if len(bad) != 0 {
		t.Fatalf("ticks off the n*%v grid, first offenders: %v", interval, bad)
	}
}

// A ticker created after the clock has moved anchors its grid at creation
// time, not at zero.
func TestTickerStartOffset(t *testing.T) {
	e := NewEngine()
	if err := e.RunUntil(0.25); err != nil {
		t.Fatal(err)
	}
	var ticks []float64
	if _, err := e.NewTicker(0.25, func(now float64) { ticks = append(ticks, now) }); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(1.0); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.75, 1.0}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// Regression: Len used to be an O(n) scan with a dead canceled-event
// filter. It must stay an exact pending count through schedule, cancel,
// and firing.
func TestLenO1PendingCount(t *testing.T) {
	e := NewEngine()
	if e.Len() != 0 {
		t.Fatalf("empty Len = %d", e.Len())
	}
	evs := make([]*Event, 0, 100)
	for i := 0; i < 100; i++ {
		evs = append(evs, mustSchedule(t, e, float64(i+1), func() {}))
	}
	if e.Len() != 100 {
		t.Fatalf("Len = %d, want 100", e.Len())
	}
	for i := 0; i < 100; i += 2 {
		e.Cancel(evs[i])
	}
	if e.Len() != 50 {
		t.Fatalf("Len after cancels = %d, want 50", e.Len())
	}
	for i := 0; i < 10; i++ {
		if !e.Step() {
			t.Fatal("Step exhausted early")
		}
	}
	if e.Len() != 40 {
		t.Fatalf("Len after 10 steps = %d, want 40", e.Len())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("Len after drain = %d", e.Len())
	}
}

func TestProcessedCountsFiredEvents(t *testing.T) {
	e := NewEngine()
	a := mustSchedule(t, e, 1, func() {})
	mustSchedule(t, e, 2, func() {})
	mustSchedule(t, e, 3, func() {})
	e.Cancel(a)
	if err := e.RunUntil(2.5); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1 (canceled events never fire)", e.Processed())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Processed() != 2 {
		t.Fatalf("Processed = %d, want 2", e.Processed())
	}
}

// Property: any batch of events fires in non-decreasing time order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []float64
		for _, d := range delays {
			at := float64(d) / 100
			if _, err := e.Schedule(at, func() { fired = append(fired, e.Now()) }); err != nil {
				return false
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mustSchedule(t *testing.T, e *Engine, at float64, fn func()) *Event {
	t.Helper()
	ev, err := e.Schedule(at, fn)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// A runaway self-scheduler — each firing schedules two more — must hit the
// pending-event bound as a typed ErrEventStorm instead of growing the heap
// without limit, and the engine must stay usable afterwards.
func TestPendingLimitStopsEventStorm(t *testing.T) {
	e := NewEngine()
	const limit = 64
	e.SetPendingLimit(limit)
	var stormErr error
	var fired int
	var boom func()
	boom = func() {
		if stormErr != nil {
			return // a real caller latches the error and stops scheduling
		}
		fired++
		for i := 0; i < 2; i++ {
			if _, err := e.After(0.01, boom); err != nil {
				stormErr = err
				return
			}
		}
	}
	mustSchedule(t, e, 0, boom)
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if stormErr == nil {
		t.Fatal("exponential self-scheduling never tripped the pending limit")
	}
	if !errors.Is(stormErr, ErrEventStorm) {
		t.Fatalf("storm error = %v, want errors.Is ErrEventStorm", stormErr)
	}
	if e.PeakPending() > limit {
		t.Fatalf("peak pending %d exceeded the limit %d", e.PeakPending(), limit)
	}
	if fired == 0 {
		t.Fatal("no event fired before the storm tripped")
	}
	// The engine is not poisoned: once the queue drains below the bound,
	// scheduling works again.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	done := false
	mustSchedule(t, e, e.Now()+1, func() { done = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("post-storm event never fired")
	}
}

// The default engine is unbounded: SetPendingLimit(0) must never reject.
func TestPendingLimitZeroIsUnbounded(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10_000; i++ {
		mustSchedule(t, e, float64(i), func() {})
	}
	if e.PeakPending() != 10_000 {
		t.Fatalf("peak pending = %d, want 10000", e.PeakPending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
