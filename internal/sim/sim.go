// Package sim is a deterministic discrete-event simulation engine. All the
// higher layers (flight dynamics, MAC, telemetry, transfers) schedule their
// work on one shared Engine so a whole mission — motion, radio, planning —
// advances on a single totally-ordered virtual clock.
//
// Time is a float64 in seconds. Events scheduled for the same instant fire
// in scheduling order (a monotone sequence number breaks ties), which keeps
// runs byte-for-byte reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run variants when the engine was stopped
// explicitly before reaching its time horizon.
var ErrStopped = errors.New("sim: engine stopped")

// ErrEventStorm is returned (wrapped) by Schedule and After when the
// pending-event queue has hit the engine's configured limit. A bounded
// queue turns runaway self-scheduling — an event that schedules more
// events than ever fire — into a typed, catchable error instead of
// unbounded memory growth. Callers detect it with errors.Is.
var ErrEventStorm = errors.New("sim: event storm")

// Event is a scheduled callback.
type Event struct {
	at       float64
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Time returns the instant the event is scheduled for.
func (e *Event) Time() float64 { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event scheduler.
type Engine struct {
	now          float64
	seq          uint64
	queue        eventQueue
	stopped      bool
	processed    uint64
	pendingLimit int
	peakPending  int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending events. Cancel removes events from the
// heap immediately, so the queue length is the pending count: O(1).
func (e *Engine) Len() int { return len(e.queue) }

// Processed returns the total number of events fired over the engine's
// lifetime.
func (e *Engine) Processed() uint64 { return e.processed }

// SetPendingLimit bounds the pending-event queue: a Schedule that would
// grow the queue past n fails with ErrEventStorm. n ≤ 0 removes the bound
// (the default). The limit caps the queue, not the run: any number of
// events may fire over the engine's lifetime as long as no more than n are
// ever outstanding at once.
func (e *Engine) SetPendingLimit(n int) { e.pendingLimit = n }

// PendingLimit returns the configured queue bound (0 = unbounded).
func (e *Engine) PendingLimit() int { return e.pendingLimit }

// PeakPending returns the deepest the pending-event queue has ever been —
// the figure to size SetPendingLimit against.
func (e *Engine) PeakPending() int { return e.peakPending }

// Schedule runs fn at absolute time at. Scheduling in the past (before the
// current clock) is an error: it would silently reorder causality.
func (e *Engine) Schedule(at float64, fn func()) (*Event, error) {
	if math.IsNaN(at) {
		return nil, errors.New("sim: schedule at NaN")
	}
	if at < e.now {
		return nil, fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	if e.pendingLimit > 0 && len(e.queue) >= e.pendingLimit {
		return nil, fmt.Errorf("sim: %d pending events at limit scheduling t=%v: %w",
			len(e.queue), at, ErrEventStorm)
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.peakPending {
		e.peakPending = len(e.queue)
	}
	return ev, nil
}

// After runs fn after delay seconds (delay ≥ 0).
func (e *Engine) After(delay float64, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sim: negative delay %v", delay)
	}
	return e.Schedule(e.now+delay, fn)
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single next event. It reports false when the queue is
// empty. Canceled events never appear here: Cancel removes them from the
// heap at cancel time.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// RunUntil processes events until the clock would pass horizon, then sets
// the clock to exactly horizon. Events scheduled at the horizon itself
// fire. Returns ErrStopped if Stop was called.
func (e *Engine) RunUntil(horizon float64) error {
	// NaN must be rejected explicitly: both ordering checks below are
	// false for NaN, so it would fire every queued event regardless of
	// time and poison the clock.
	if math.IsNaN(horizon) {
		return errors.New("sim: horizon NaN")
	}
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %v before now %v", horizon, e.now)
	}
	e.stopped = false
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.processed++
		next.fn()
		if e.stopped {
			return ErrStopped
		}
	}
	e.now = horizon
	return nil
}

// Run processes all events until the queue drains or Stop is called.
func (e *Engine) Run() error {
	e.stopped = false
	for e.Step() {
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Ticker fires fn every interval seconds starting at the next interval
// boundary from now, until Stop is called on the returned handle or the
// engine stops being run.
//
// Tick n fires at exactly start + n*interval. Rescheduling by repeated
// After(interval) would instead accumulate one float rounding error per
// tick, drifting the boundary over long missions.
type Ticker struct {
	engine   *Engine
	interval float64
	fn       func(now float64)
	ev       *Event
	stopped  bool
	start    float64
	n        uint64
}

// NewTicker schedules a periodic callback. interval must be > 0.
func (e *Engine) NewTicker(interval float64, fn func(now float64)) (*Ticker, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sim: ticker interval %v must be positive", interval)
	}
	t := &Ticker{engine: e, interval: interval, fn: fn, start: e.Now()}
	if err := t.arm(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Ticker) arm() error {
	t.n++
	at := t.start + float64(t.n)*t.interval
	if now := t.engine.Now(); at < now {
		// Float rounding placed the boundary a hair behind the clock;
		// never schedule in the past.
		at = now
	}
	ev, err := t.engine.Schedule(at, func() {
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			_ = t.arm() // Schedule at/after now cannot fail
		}
	})
	if err != nil {
		return err
	}
	t.ev = ev
	return nil
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.ev)
}
