package chaos

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestScheduleStringParseRoundTrip is the serialization property test:
// for any valid schedule s, Parse(s.String()) must succeed, reproduce the
// same rendered form (String is a fixpoint), and reconstruct the same
// faults. The generator covers every fault class, wildcard and concrete
// targets, blackout (LossProb = 1) versus probabilistic telemetry loss,
// and awkward float values — %g must render every float64 so that
// ParseFloat recovers it exactly.
func TestScheduleStringParseRoundTrip(t *testing.T) {
	for iter := 0; iter < 300; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		s := randomSchedule(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("iter %d: generator produced an invalid schedule: %v", iter, err)
		}

		text := s.String()
		p, err := ParseString(text)
		if err != nil {
			t.Fatalf("iter %d: Parse(String) failed: %v\nschedule:\n%s", iter, err, text)
		}
		if got := p.String(); got != text {
			t.Fatalf("iter %d: String is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", iter, text, got)
		}

		if s.Empty() {
			// An empty schedule renders to "" and parses back empty; its
			// seed is irrelevant (no draws) and not preserved.
			if !p.Empty() {
				t.Fatalf("iter %d: empty schedule parsed non-empty", iter)
			}
			continue
		}
		// Parse appends faults in rendered-line order, so compare against
		// the generated schedule with each class canonically sorted the
		// same way.
		want := canonicalize(s)
		if !reflect.DeepEqual(want, p) {
			t.Fatalf("iter %d: round-trip lost information:\nwant %#v\ngot  %#v", iter, want, p)
		}
	}
}

// randomSchedule draws a valid schedule: windows within one fault class
// are laid out sequentially (the validator rejects same-class overlap on
// colliding targets), scales and probabilities stay in their legal ranges,
// and vehicle ids are unique and concrete.
func randomSchedule(rng *rand.Rand) *Schedule {
	s := &Schedule{}
	if rng.Intn(2) == 0 {
		s.Seed = rng.Int63n(1 << 40)
	}

	// Occasionally generate the empty schedule to cover that edge.
	if rng.Intn(10) == 0 {
		return s
	}

	next := func(cursor *float64) Window {
		start := *cursor + roundedFloat(rng, 0, 50)
		end := start + 0.001 + roundedFloat(rng, 0, 200)
		*cursor = end
		return Window{StartS: start, EndS: end}
	}
	target := func() string {
		if rng.Intn(3) == 0 {
			return Wildcard
		}
		return fmt.Sprintf("veh-%d", rng.Intn(4))
	}

	var cursor float64
	for i := rng.Intn(4); i > 0; i-- {
		f := TelemetryFault{Window: next(&cursor), LossProb: roundedFloat(rng, 0, 1)}
		if rng.Intn(4) == 0 {
			f.LossProb = 1 // renders as a blackout line
		}
		s.Telemetry = append(s.Telemetry, f)
	}
	cursor = 0
	for i := rng.Intn(4); i > 0; i-- {
		f := GPSFault{Window: next(&cursor), ID: target()}
		if rng.Intn(2) == 0 {
			f.Outage = true
		} else {
			f.SigmaScale = 1 + roundedFloat(rng, 0, 30)
		}
		s.GPS = append(s.GPS, f)
	}
	cursor = 0
	for i := rng.Intn(4); i > 0; i-- {
		f := LinkFault{Window: next(&cursor), ID: target()}
		if rng.Intn(2) == 0 {
			f.Outage = true
		} else {
			f.ExtraLossDB = 0.5 + roundedFloat(rng, 0, 40)
		}
		s.Links = append(s.Links, f)
	}
	for _, id := range rng.Perm(4)[:rng.Intn(3)] {
		s.Vehicles = append(s.Vehicles, VehicleFault{
			ID: fmt.Sprintf("veh-%d", id), AtS: roundedFloat(rng, 0, 3600),
		})
	}
	cursor = 0
	for i := rng.Intn(4); i > 0; i-- {
		f := ServiceFault{Window: next(&cursor)}
		switch rng.Intn(3) {
		case 0:
			f.Mode, f.DelayS = SvcLatency, 0.001+roundedFloat(rng, 0, 2)
		case 1:
			f.Mode, f.Prob = SvcReset, 0.05+roundedFloat(rng, 0, 0.9)
		default:
			f.Mode, f.Prob = SvcDrop, 0.05+roundedFloat(rng, 0, 0.9)
		}
		s.Service = append(s.Service, f)
	}
	return s
}

// roundedFloat draws from [lo, hi), half the time truncated to one decimal
// (pretty values like real schedules use), half the time left at full
// float64 precision (the adversarial case for %g round-tripping).
func roundedFloat(rng *rand.Rand, lo, hi float64) float64 {
	x := lo + rng.Float64()*(hi-lo)
	if rng.Intn(2) == 0 {
		return float64(int(x*10)) / 10
	}
	return x
}

// canonicalize returns a copy with every fault class sorted by its
// rendered text line — the order Parse(String) reconstructs.
func canonicalize(s *Schedule) *Schedule {
	c := s.Clone()
	sort.SliceStable(c.Telemetry, func(i, j int) bool {
		return telemetryLine(c.Telemetry[i]) < telemetryLine(c.Telemetry[j])
	})
	sort.SliceStable(c.GPS, func(i, j int) bool {
		return gpsLine(c.GPS[i]) < gpsLine(c.GPS[j])
	})
	sort.SliceStable(c.Links, func(i, j int) bool {
		return linkLine(c.Links[i]) < linkLine(c.Links[j])
	})
	sort.SliceStable(c.Vehicles, func(i, j int) bool {
		return vehicleLine(c.Vehicles[i]) < vehicleLine(c.Vehicles[j])
	})
	sort.SliceStable(c.Service, func(i, j int) bool {
		return svcLine(c.Service[i]) < svcLine(c.Service[j])
	})
	return c
}

func telemetryLine(f TelemetryFault) string {
	if f.LossProb >= 1 {
		return fmt.Sprintf("telemetry blackout %g %g", f.StartS, f.EndS)
	}
	return fmt.Sprintf("telemetry loss %g %g %g", f.LossProb, f.StartS, f.EndS)
}

func gpsLine(f GPSFault) string {
	if f.Outage {
		return fmt.Sprintf("gps outage %s %g %g", f.ID, f.StartS, f.EndS)
	}
	return fmt.Sprintf("gps degrade %s %g %g %g", f.ID, f.SigmaScale, f.StartS, f.EndS)
}

func linkLine(f LinkFault) string {
	if f.Outage {
		return fmt.Sprintf("link outage %s %g %g", f.ID, f.StartS, f.EndS)
	}
	return fmt.Sprintf("link fade %s %g %g %g", f.ID, f.ExtraLossDB, f.StartS, f.EndS)
}

func vehicleLine(f VehicleFault) string {
	return fmt.Sprintf("vehicle fail %s %g", f.ID, f.AtS)
}

func svcLine(f ServiceFault) string {
	v := f.Prob
	if f.Mode == SvcLatency {
		v = f.DelayS
	}
	return fmt.Sprintf("svc %s %g %g %g", f.Mode, v, f.StartS, f.EndS)
}
