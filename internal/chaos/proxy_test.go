package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// backend returns a trivial upstream and its URL.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

// proxyFor wires a ServiceProxy for the schedule in front of a fresh
// backend and serves it over HTTP.
func proxyFor(t *testing.T, sched *Schedule) (*ServiceProxy, *httptest.Server) {
	t.Helper()
	if err := sched.Validate(); err != nil {
		t.Fatalf("test schedule invalid: %v", err)
	}
	p, err := NewServiceProxy(backend(t).URL, sched)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestProxyForwardsUntouchedWithoutFaults(t *testing.T) {
	for _, sched := range []*Schedule{nil, {}} {
		p, srv := proxyFor(t, sched)
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("status %d body %q", resp.StatusCode, body)
		}
		st := p.Stats()
		if st.Forwarded != 1 || st.Delayed+st.Resets+st.Drops != 0 {
			t.Fatalf("stats %+v", st)
		}
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	delay := 60 * time.Millisecond
	p, srv := proxyFor(t, &Schedule{Service: []ServiceFault{
		{Window: Window{EndS: 1e9}, Mode: SvcLatency, DelayS: delay.Seconds()},
	}})
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < delay {
		t.Fatalf("request finished in %s, latency fault is %s", el, delay)
	}
	if st := p.Stats(); st.Delayed != 1 || st.Forwarded != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestProxyResetsConnection(t *testing.T) {
	p, srv := proxyFor(t, &Schedule{Service: []ServiceFault{
		{Window: Window{EndS: 1e9}, Mode: SvcReset, Prob: 1},
	}})
	resp, err := http.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset fault answered with status %d", resp.StatusCode)
	}
	if st := p.Stats(); st.Resets != 1 || st.Forwarded != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestProxyDropsBlackholeUntilClientDeadline: a dropped request must never
// produce bytes; only the client's own timeout ends it.
func TestProxyDropsBlackholeUntilClientDeadline(t *testing.T) {
	p, srv := proxyFor(t, &Schedule{Service: []ServiceFault{
		{Window: Window{EndS: 1e9}, Mode: SvcDrop, Prob: 1},
	}})
	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("blackholed request answered with status %d", resp.StatusCode)
	}
	if el := time.Since(start); el < 90*time.Millisecond || el > 5*time.Second {
		t.Fatalf("blackhole ended after %s, want ≈ the client's 100ms deadline", el)
	}
	if st := p.Stats(); st.Drops != 1 || st.Forwarded != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestProxyProbabilisticFaultsAreSeeded: with prob 0.5 and a fixed seed,
// two proxies over the same schedule kill the same subset of a serial
// request sequence.
func TestProxyProbabilisticFaultsAreSeeded(t *testing.T) {
	sched := &Schedule{Seed: 7, Service: []ServiceFault{
		{Window: Window{EndS: 1e9}, Mode: SvcReset, Prob: 0.5},
	}}
	// Keep-alives off: the transport silently retries idempotent requests
	// when a *reused* connection dies, which would consume extra draws.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	outcomes := func() []bool {
		_, srv := proxyFor(t, sched.Clone())
		var got []bool
		for i := 0; i < 32; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			got = append(got, err == nil)
		}
		return got
	}
	a, b := outcomes(), outcomes()
	var kills int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A ok=%v, run B ok=%v — draws not seeded", i, a[i], b[i])
		}
		if !a[i] {
			kills++
		}
	}
	if kills == 0 || kills == len(a) {
		t.Fatalf("prob-0.5 fault killed %d of %d requests", kills, len(a))
	}
}

func TestProxyWindowsUseProxyClock(t *testing.T) {
	p, srv := proxyFor(t, &Schedule{Service: []ServiceFault{
		{Window: Window{StartS: 100, EndS: 200}, Mode: SvcReset, Prob: 1},
	}})
	// Outside the window: clean pass-through.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Pin the clock inside the window: every request dies.
	p.now = func() float64 { return 150 }
	if resp, err = http.Get(srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("in-window request survived")
	}
}

func TestNewServiceProxyRejectsBadTargets(t *testing.T) {
	for _, target := range []string{"", "not a url\x7f://", "127.0.0.1:8753", "/just/a/path"} {
		if _, err := NewServiceProxy(target, nil); err == nil {
			t.Fatalf("target %q accepted", target)
		}
	}
}
