package chaos

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nowlater/nowlater/internal/stats"
)

// ServiceProxy is a fault-injecting reverse proxy for the decision
// service: it sits between a client and a live nowlaterd and applies the
// schedule's svc faults to real HTTP traffic. Unlike the simulation-side
// faults (telemetry/gps/link), these are wall-clock: a request arriving t
// seconds after the proxy started sees the faults whose windows contain t.
//
//   - svc latency: the request is held for DelayS before forwarding
//     (context-aware — a client that gives up releases the slot).
//   - svc reset: the client connection is torn down with a TCP RST
//     (SetLinger(0)), the way a crashing server or stateful middlebox
//     fails — clients see ECONNRESET mid-request.
//   - svc drop: the request is blackholed — no bytes are ever written, the
//     connection is held open until the client hangs up. This is the fault
//     only a deadline saves you from.
//
// Probabilistic faults draw from a seeded substream of the schedule's
// Seed behind a mutex, so a single-client (or paired-seed) run is
// reproducible. The zero schedule (or nil) forwards everything untouched.
type ServiceProxy struct {
	sched *Schedule
	proxy *httputil.ReverseProxy
	start time.Time
	// now returns seconds since start; tests may override it to pin
	// schedule time.
	now func() float64

	mu  sync.Mutex
	rng *stats.RNG

	delayed, resets, drops, forwarded atomic.Uint64
}

// NewServiceProxy builds a proxy forwarding to target (a base URL such as
// "http://127.0.0.1:8753") under the schedule's svc faults.
func NewServiceProxy(target string, sched *Schedule) (*ServiceProxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy target: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: proxy target %q needs a scheme and host", target)
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	// Backend errors surface to the client as 502s; the default logger
	// would spam stderr during chaos runs where they are the point.
	rp.ErrorLog = log.New(io.Discard, "", 0)
	p := &ServiceProxy{sched: sched, proxy: rp, start: time.Now()}
	p.now = func() float64 { return time.Since(p.start).Seconds() }
	if sched != nil {
		p.rng = stats.NewRNG(sched.Seed).Substream(sched.Seed, "chaos/service")
	}
	return p, nil
}

// ProxyStats counts what the proxy did to traffic so far.
type ProxyStats struct {
	// Delayed counts requests that served a latency window (they may still
	// have been reset, dropped or forwarded afterwards).
	Delayed uint64
	// Resets and Drops count requests killed by the respective faults.
	Resets, Drops uint64
	// Forwarded counts requests passed through to the backend.
	Forwarded uint64
}

// Stats snapshots the proxy's fault counters.
func (p *ServiceProxy) Stats() ProxyStats {
	return ProxyStats{
		Delayed:   p.delayed.Load(),
		Resets:    p.resets.Load(),
		Drops:     p.drops.Load(),
		Forwarded: p.forwarded.Load(),
	}
}

// draw performs one seeded Bernoulli trial. Degenerate probabilities skip
// the draw so deterministic schedules consume no randomness.
func (p *ServiceProxy) draw(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Bernoulli(prob)
}

func (p *ServiceProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	now := p.now()
	if d := p.sched.ServiceLatencyS(now); d > 0 {
		p.delayed.Add(1)
		t := time.NewTimer(time.Duration(d * float64(time.Second)))
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
	if p.draw(p.sched.ServiceResetProb(now)) {
		p.resets.Add(1)
		abortConn(w)
		return
	}
	if p.draw(p.sched.ServiceDropProb(now)) {
		p.drops.Add(1)
		blackhole(w, r)
		return
	}
	p.forwarded.Add(1)
	p.proxy.ServeHTTP(w, r)
}

// abortConn hijacks the client connection and closes it with linger 0, so
// the close goes out as a TCP RST rather than a graceful FIN — the client
// sees a connection reset, not a truncated-but-clean response.
func abortConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No raw connection (e.g. HTTP/2): the closest available fault.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// blackhole holds the connection open without writing a byte until the
// client gives up. After Hijack the server no longer watches the
// connection, so client abandonment is detected by reading: the read
// returns when the peer closes (or after a generous deadline, as a leak
// backstop for clients that never hang up).
func blackhole(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		<-r.Context().Done()
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(time.Hour))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}
