package chaos

import (
	"strings"
	"testing"
)

// FuzzParse asserts the schedule parser never panics and that every
// schedule it accepts passes validation — malformed windows, negative
// times and overlapping intervals must surface as errors, not as bad
// schedules or crashes.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"seed 42\ntelemetry loss 0.3 0 120\n",
		"telemetry blackout 200 230",
		"gps outage uav-1 10 20\ngps degrade * 4 50 60",
		"link outage uav-2 30 45\nlink fade * 12 100 160",
		"vehicle fail relay-1 300",
		"# comment only\n",
		"telemetry loss 1.5 0 10",
		"link outage a 0 10\nlink outage a 5 20",
		"gps outage x -1 5",
		"vehicle fail * 10",
		"telemetry loss 0.5 20 10",
		"link fade a nan 0 1",
		"seed 9223372036854775807",
		strings.Repeat("link outage a 0 1\n", 50),
		"svc latency 0.05 0 10\nsvc reset 0.5 10 20\nsvc drop 1 20 30",
		"svc latency 0 0 10",
		"svc reset 1.5 0 10",
		"svc drop 0.5 0 10\nsvc drop 0.5 5 20",
		"svc jitter 1 0 10",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseString(text)
		if err != nil {
			return
		}
		// Accepted schedules must be internally valid and queryable.
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted schedule fails validation: %v\ninput: %q", verr, text)
		}
		for _, now := range []float64{0, 1, 1e6} {
			_ = s.TelemetryDrop(now)
			_ = s.GPSOutage("x", now)
			_ = s.GPSSigmaScale("x", now)
			_ = s.LinkOutage("x", now)
			_ = s.LinkExtraLossDB("x", now)
			_ = s.ServiceLatencyS(now)
			_ = s.ServiceResetProb(now)
			_ = s.ServiceDropProb(now)
		}
		_, _ = s.VehicleFailTime("x")
		_ = s.HorizonS()
		// The textual rendering of an accepted schedule must re-parse.
		if _, rerr := ParseString(s.String()); rerr != nil {
			t.Fatalf("String() of accepted schedule does not re-parse: %v\n%s", rerr, s.String())
		}
	})
}
