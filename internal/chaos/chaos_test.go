package chaos

import (
	"strings"
	"testing"
)

func TestNilScheduleInjectsNothing(t *testing.T) {
	var s *Schedule
	if !s.Empty() {
		t.Fatal("nil schedule not empty")
	}
	if s.TelemetryDrop(10) {
		t.Fatal("nil schedule dropped telemetry")
	}
	if s.GPSOutage("a", 10) || s.GPSSigmaScale("a", 10) != 1 {
		t.Fatal("nil schedule degraded gps")
	}
	if s.LinkOutage("a", 10) || s.LinkExtraLossDB("a", 10) != 0 {
		t.Fatal("nil schedule degraded link")
	}
	if _, ok := s.VehicleFailTime("a"); ok {
		t.Fatal("nil schedule failed a vehicle")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.HorizonS() != 0 {
		t.Fatal("nil schedule has a horizon")
	}
}

func TestWindowSemantics(t *testing.T) {
	s := &Schedule{Links: []LinkFault{{Window: Window{StartS: 10, EndS: 20}, ID: "uav-1", Outage: true}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		now  float64
		want bool
	}{{9.99, false}, {10, true}, {19.99, true}, {20, false}} {
		if got := s.LinkOutage("uav-1", tc.now); got != tc.want {
			t.Fatalf("LinkOutage at %v = %v, want %v", tc.now, got, tc.want)
		}
	}
	if s.LinkOutage("uav-2", 15) {
		t.Fatal("outage leaked to another vehicle")
	}
	wild := &Schedule{Links: []LinkFault{{Window: Window{StartS: 0, EndS: 1}, ID: Wildcard, Outage: true}}}
	if !wild.LinkOutage("anything", 0.5) {
		t.Fatal("wildcard did not match")
	}
}

func TestTelemetryDropDeterministic(t *testing.T) {
	mk := func() *Schedule {
		return &Schedule{
			Seed:      7,
			Telemetry: []TelemetryFault{{Window: Window{StartS: 0, EndS: 100}, LossProb: 0.5}},
		}
	}
	a, b := mk(), mk()
	drops := 0
	for i := 0; i < 200; i++ {
		da, db := a.TelemetryDrop(float64(i)/3), b.TelemetryDrop(float64(i)/3)
		if da != db {
			t.Fatalf("draw %d diverged between identical schedules", i)
		}
		if da {
			drops++
		}
	}
	if drops < 60 || drops > 140 {
		t.Fatalf("0.5-loss window dropped %d of 200", drops)
	}
	// Outside the window: no loss and no randomness consumed.
	if a.TelemetryDrop(1000) {
		t.Fatal("drop outside window")
	}
	// Blackout is certain without consuming randomness.
	bo := &Schedule{Telemetry: []TelemetryFault{{Window: Window{StartS: 0, EndS: 1}, LossProb: 1}}}
	for i := 0; i < 10; i++ {
		if !bo.TelemetryDrop(0.5) {
			t.Fatal("blackout let a message through")
		}
	}
}

func TestGPSQueries(t *testing.T) {
	s := &Schedule{GPS: []GPSFault{
		{Window: Window{StartS: 0, EndS: 10}, ID: "uav-1", Outage: true},
		{Window: Window{StartS: 20, EndS: 30}, ID: Wildcard, SigmaScale: 5},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.GPSOutage("uav-1", 5) || s.GPSOutage("uav-2", 5) {
		t.Fatal("outage targeting wrong")
	}
	if got := s.GPSSigmaScale("uav-2", 25); got != 5 {
		t.Fatalf("sigma scale = %v, want 5", got)
	}
	if got := s.GPSSigmaScale("uav-2", 35); got != 1 {
		t.Fatalf("sigma scale outside window = %v, want 1", got)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
	}{
		{"negative start", &Schedule{Telemetry: []TelemetryFault{{Window: Window{StartS: -1, EndS: 1}, LossProb: 0.5}}}},
		{"inverted window", &Schedule{Telemetry: []TelemetryFault{{Window: Window{StartS: 5, EndS: 5}, LossProb: 0.5}}}},
		{"probability above 1", &Schedule{Telemetry: []TelemetryFault{{Window: Window{StartS: 0, EndS: 1}, LossProb: 1.5}}}},
		{"telemetry overlap", &Schedule{Telemetry: []TelemetryFault{
			{Window: Window{StartS: 0, EndS: 10}, LossProb: 0.5},
			{Window: Window{StartS: 9, EndS: 20}, LossProb: 0.2},
		}}},
		{"gps missing id", &Schedule{GPS: []GPSFault{{Window: Window{StartS: 0, EndS: 1}, Outage: true}}}},
		{"gps scale below 1", &Schedule{GPS: []GPSFault{{Window: Window{StartS: 0, EndS: 1}, ID: "a", SigmaScale: 0.5}}}},
		{"link zero fade", &Schedule{Links: []LinkFault{{Window: Window{StartS: 0, EndS: 1}, ID: "a"}}}},
		{"link wildcard overlap", &Schedule{Links: []LinkFault{
			{Window: Window{StartS: 0, EndS: 10}, ID: "a", Outage: true},
			{Window: Window{StartS: 5, EndS: 15}, ID: Wildcard, Outage: true},
		}}},
		{"vehicle wildcard", &Schedule{Vehicles: []VehicleFault{{ID: Wildcard, AtS: 1}}}},
		{"vehicle duplicate", &Schedule{Vehicles: []VehicleFault{{ID: "a", AtS: 1}, {ID: "a", AtS: 2}}}},
		{"vehicle negative time", &Schedule{Vehicles: []VehicleFault{{ID: "a", AtS: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Outage and fade on the same target may overlap (different classes).
	ok := &Schedule{Links: []LinkFault{
		{Window: Window{StartS: 0, EndS: 10}, ID: "a", Outage: true},
		{Window: Window{StartS: 0, EndS: 100}, ID: "a", ExtraLossDB: 10},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("outage+fade overlap rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `
# survivability scenario
seed 42
telemetry loss 0.3 0 120
telemetry blackout 200 230
gps outage uav-1 10 20
gps degrade * 4 50 60
link outage uav-2 30 45
link fade * 12 100 160
vehicle fail relay-1 300
`
	s, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Fatalf("seed = %d", s.Seed)
	}
	if len(s.Telemetry) != 2 || len(s.GPS) != 2 || len(s.Links) != 2 || len(s.Vehicles) != 1 {
		t.Fatalf("parsed counts: %d %d %d %d", len(s.Telemetry), len(s.GPS), len(s.Links), len(s.Vehicles))
	}
	if !s.LinkOutage("uav-2", 40) || s.LinkOutage("uav-2", 50) {
		t.Fatal("link outage window wrong")
	}
	if got := s.LinkExtraLossDB("uav-9", 130); got != 12 {
		t.Fatalf("fade = %v", got)
	}
	if at, ok := s.VehicleFailTime("relay-1"); !ok || at != 300 {
		t.Fatalf("vehicle fail = %v %v", at, ok)
	}
	if got := s.HorizonS(); got != 300 {
		t.Fatalf("horizon = %v", got)
	}

	// String() renders back to the same schedule.
	again, err := ParseString(s.String())
	if err != nil {
		t.Fatalf("re-parse of String(): %v\n%s", err, s.String())
	}
	if again.String() != s.String() {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", s.String(), again.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus kind 1 2",
		"telemetry loss 0.5 10",                  // missing end
		"telemetry loss 1.5 0 10",                // probability out of range
		"telemetry loss 0.5 20 10",               // inverted window
		"telemetry blackout -5 10",               // negative start
		"gps outage 0 10",                        // missing id (10 parsed as id, then 1 arg)
		"gps degrade uav-1 0.2 0 10",             // scale < 1
		"link fade uav-1 nan 0 10",               // NaN fade
		"link outage uav-1 1e999 2e999",          // inf bounds
		"vehicle fail uav-1",                     // missing time
		"vehicle fail * 10",                      // wildcard vehicle
		"seed twelve",                            // non-integer seed
		"link outage a 0 10\nlink outage a 5 20", // overlap
	}
	for _, text := range cases {
		if _, err := ParseString(text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestParseIgnoresCommentsAndBlankLines(t *testing.T) {
	s, err := ParseString("\n\n# nothing\n   # indented comment\nlink outage a 1 2 # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Links) != 1 {
		t.Fatalf("links = %d", len(s.Links))
	}
}

func TestCloneResetsRandomness(t *testing.T) {
	s := &Schedule{
		Seed:      3,
		Telemetry: []TelemetryFault{{Window: Window{StartS: 0, EndS: 100}, LossProb: 0.4}},
	}
	// Consume some draws, then clone: the clone must replay from the start.
	var first []bool
	for i := 0; i < 50; i++ {
		first = append(first, s.TelemetryDrop(1))
	}
	c := s.Clone()
	for i := 0; i < 50; i++ {
		if c.TelemetryDrop(1) != first[i] {
			t.Fatal("clone did not replay the fault realization")
		}
	}
	if c.Empty() || len(c.Telemetry) != 1 {
		t.Fatal("clone lost faults")
	}
	if (*Schedule)(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	for _, text := range []string{
		"", " ", "\x00\x01", "telemetry", "gps", "link", "vehicle",
		"telemetry loss", "link fade x", strings.Repeat("a ", 1000),
	} {
		_, _ = ParseString(text) // must not panic; error or empty both fine
	}
}
