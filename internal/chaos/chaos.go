// Package chaos is a deterministic, seedable fault-injection subsystem
// for the simulation stack. The paper's decision rule prices the risk of
// the *vehicle* dying (δ(d) = e^{−ρ(d0−d)}), but a real aerial system also
// loses telemetry beacons, GPS fixes and data-link frames — the regimes
// the related UAV-networking literature shows dominate delivery ratio and
// delay. A chaos Schedule declares those faults up front as typed windows
// so an experiment can be replayed bit-for-bit:
//
//   - telemetry packet loss and blackout windows on the control bus;
//   - GPS outage and degradation (noise inflation) intervals;
//   - data-link outages and deep-fade bursts (extra dB of loss);
//   - scripted mid-flight vehicle failures at an absolute time.
//
// Schedules are built either through the typed API or parsed from a small
// text format (see Parse). A nil or empty *Schedule injects nothing and
// consumes no randomness, so a zero-fault run is byte-identical to a run
// without the chaos layer compiled in at all.
package chaos

import (
	"fmt"
	"math"
	"sort"

	"github.com/nowlater/nowlater/internal/stats"
)

// Wildcard targets every vehicle/link id.
const Wildcard = "*"

// Window is a half-open fault interval [StartS, EndS) in simulation time.
type Window struct {
	StartS, EndS float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.StartS && t < w.EndS }

// Validate reports the first implausible bound.
func (w Window) Validate() error {
	switch {
	case math.IsNaN(w.StartS) || math.IsNaN(w.EndS):
		return fmt.Errorf("chaos: window bounds must not be NaN")
	case math.IsInf(w.StartS, 0):
		return fmt.Errorf("chaos: window start %v must be finite", w.StartS)
	case w.StartS < 0:
		return fmt.Errorf("chaos: window start %v must be ≥ 0", w.StartS)
	case w.EndS <= w.StartS:
		return fmt.Errorf("chaos: window end %v must be after start %v", w.EndS, w.StartS)
	}
	return nil
}

// overlaps reports whether two windows share any instant.
func (w Window) overlaps(o Window) bool {
	return w.StartS < o.EndS && o.StartS < w.EndS
}

// TelemetryFault drops control-bus messages inside a window: each message
// sent while the window is active is lost independently with LossProb
// (1 = blackout).
type TelemetryFault struct {
	Window
	LossProb float64
}

// GPSFault suppresses or degrades GPS fixes for one vehicle (or Wildcard).
// Outage drops fixes entirely; otherwise SigmaScale multiplies the
// receiver's noise sigmas (jamming/multipath-style degradation).
type GPSFault struct {
	Window
	ID         string
	Outage     bool
	SigmaScale float64
}

// LinkFault degrades the data link of one vehicle (or Wildcard). Outage
// kills the link entirely for the window; otherwise ExtraLossDB is added
// to the path loss (a deep-fade burst).
type LinkFault struct {
	Window
	ID          string
	Outage      bool
	ExtraLossDB float64
}

// VehicleFault fails one vehicle outright at an absolute time, regardless
// of its sampled odometer-based failure (the scripted counterpart of
// failure.Injector).
type VehicleFault struct {
	ID  string
	AtS float64
}

// Service fault modes: what a ServiceFault does to each decision-service
// request inside its window.
const (
	// SvcLatency delays every request by DelayS before forwarding.
	SvcLatency = "latency"
	// SvcReset aborts the client connection (TCP RST) with probability Prob.
	SvcReset = "reset"
	// SvcDrop blackholes the request (no bytes ever) with probability Prob.
	SvcDrop = "drop"
)

// ServiceFault degrades the HTTP decision service itself — the faults a
// client of nowlaterd actually sees in the field: added latency, reset
// connections and blackholed requests. ServiceProxy injects these in front
// of a live server; times are seconds since the proxy started, reusing the
// schedule's window conventions.
type ServiceFault struct {
	Window
	// Mode is SvcLatency, SvcReset or SvcDrop.
	Mode string
	// DelayS is the injected per-request delay (SvcLatency only).
	DelayS float64
	// Prob is the per-request fault probability (SvcReset/SvcDrop only).
	Prob float64
}

// Schedule is a declared set of faults. The zero value (and nil) injects
// nothing. Schedules are not safe for concurrent use: the single-threaded
// discrete-event simulation queries them in a deterministic order, which
// is what makes loss draws reproducible.
type Schedule struct {
	// Seed drives the Bernoulli draws of probabilistic faults
	// (telemetry loss). Windowed on/off faults are fully deterministic.
	Seed int64

	Telemetry []TelemetryFault
	GPS       []GPSFault
	Links     []LinkFault
	Vehicles  []VehicleFault
	Service   []ServiceFault

	rng *stats.RNG
}

// Empty reports whether the schedule injects no faults at all.
func (s *Schedule) Empty() bool {
	return s == nil ||
		len(s.Telemetry) == 0 && len(s.GPS) == 0 && len(s.Links) == 0 &&
			len(s.Vehicles) == 0 && len(s.Service) == 0
}

// Clone returns an independent copy with fresh (un-consumed) randomness,
// so paired policy runs can replay the identical fault realization.
func (s *Schedule) Clone() *Schedule {
	if s == nil {
		return nil
	}
	c := &Schedule{Seed: s.Seed}
	c.Telemetry = append([]TelemetryFault(nil), s.Telemetry...)
	c.GPS = append([]GPSFault(nil), s.GPS...)
	c.Links = append([]LinkFault(nil), s.Links...)
	c.Vehicles = append([]VehicleFault(nil), s.Vehicles...)
	c.Service = append([]ServiceFault(nil), s.Service...)
	return c
}

// Validate reports the first malformed entry: bad windows, probabilities
// or scales out of range, missing targets, and overlapping windows of the
// same fault class aimed at the same target (an overlap is ambiguous — two
// loss probabilities for one instant — so it is rejected rather than
// silently combined).
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, f := range s.Telemetry {
		if err := f.Window.Validate(); err != nil {
			return fmt.Errorf("telemetry fault %d: %w", i, err)
		}
		if f.LossProb < 0 || f.LossProb > 1 || math.IsNaN(f.LossProb) {
			return fmt.Errorf("telemetry fault %d: loss probability %v outside [0,1]", i, f.LossProb)
		}
		for j := 0; j < i; j++ {
			if f.Window.overlaps(s.Telemetry[j].Window) {
				return fmt.Errorf("telemetry faults %d and %d overlap", j, i)
			}
		}
	}
	for i, f := range s.GPS {
		if err := f.Window.Validate(); err != nil {
			return fmt.Errorf("gps fault %d: %w", i, err)
		}
		if f.ID == "" {
			return fmt.Errorf("gps fault %d: missing target id", i)
		}
		if !f.Outage && (f.SigmaScale < 1 || math.IsNaN(f.SigmaScale) || math.IsInf(f.SigmaScale, 0)) {
			return fmt.Errorf("gps fault %d: sigma scale %v must be finite and ≥ 1", i, f.SigmaScale)
		}
		for j := 0; j < i; j++ {
			o := s.GPS[j]
			if f.Outage == o.Outage && targetsCollide(f.ID, o.ID) && f.Window.overlaps(o.Window) {
				return fmt.Errorf("gps faults %d and %d overlap on %q", j, i, f.ID)
			}
		}
	}
	for i, f := range s.Links {
		if err := f.Window.Validate(); err != nil {
			return fmt.Errorf("link fault %d: %w", i, err)
		}
		if f.ID == "" {
			return fmt.Errorf("link fault %d: missing target id", i)
		}
		if !f.Outage && (f.ExtraLossDB <= 0 || math.IsNaN(f.ExtraLossDB) || math.IsInf(f.ExtraLossDB, 0)) {
			return fmt.Errorf("link fault %d: fade %v dB must be finite and positive", i, f.ExtraLossDB)
		}
		for j := 0; j < i; j++ {
			o := s.Links[j]
			if f.Outage == o.Outage && targetsCollide(f.ID, o.ID) && f.Window.overlaps(o.Window) {
				return fmt.Errorf("link faults %d and %d overlap on %q", j, i, f.ID)
			}
		}
	}
	for i, f := range s.Vehicles {
		if f.ID == "" || f.ID == Wildcard {
			return fmt.Errorf("vehicle fault %d: needs a concrete vehicle id", i)
		}
		if f.AtS < 0 || math.IsNaN(f.AtS) || math.IsInf(f.AtS, 0) {
			return fmt.Errorf("vehicle fault %d: time %v must be finite and ≥ 0", i, f.AtS)
		}
		for j := 0; j < i; j++ {
			if s.Vehicles[j].ID == f.ID {
				return fmt.Errorf("vehicle faults %d and %d both fail %q", j, i, f.ID)
			}
		}
	}
	for i, f := range s.Service {
		if err := f.Window.Validate(); err != nil {
			return fmt.Errorf("svc fault %d: %w", i, err)
		}
		switch f.Mode {
		case SvcLatency:
			if f.DelayS <= 0 || math.IsNaN(f.DelayS) || math.IsInf(f.DelayS, 0) {
				return fmt.Errorf("svc fault %d: delay %v s must be finite and positive", i, f.DelayS)
			}
			if f.Prob != 0 {
				return fmt.Errorf("svc fault %d: latency faults take a delay, not a probability", i)
			}
		case SvcReset, SvcDrop:
			if f.Prob <= 0 || f.Prob > 1 || math.IsNaN(f.Prob) {
				return fmt.Errorf("svc fault %d: probability %v outside (0,1]", i, f.Prob)
			}
			if f.DelayS != 0 {
				return fmt.Errorf("svc fault %d: %s faults take a probability, not a delay", i, f.Mode)
			}
		default:
			return fmt.Errorf("svc fault %d: unknown mode %q", i, f.Mode)
		}
		for j := 0; j < i; j++ {
			if o := s.Service[j]; o.Mode == f.Mode && f.Window.overlaps(o.Window) {
				return fmt.Errorf("svc %s faults %d and %d overlap", f.Mode, j, i)
			}
		}
	}
	return nil
}

// targetsCollide reports whether two fault targets can address the same
// entity (equal, or either is the wildcard).
func targetsCollide(a, b string) bool {
	return a == b || a == Wildcard || b == Wildcard
}

// matches reports whether a fault target addresses id.
func matches(target, id string) bool { return target == Wildcard || target == id }

// TelemetryDrop reports whether a control-bus message sent at time now is
// lost to injected faults. Probabilistic windows consume one seeded draw
// per query, so call order must be deterministic (it is, under the
// discrete-event engine).
func (s *Schedule) TelemetryDrop(now float64) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Telemetry {
		if !f.Contains(now) {
			continue
		}
		if f.LossProb >= 1 {
			return true
		}
		if f.LossProb <= 0 {
			return false
		}
		if s.rng == nil {
			s.rng = stats.NewRNG(s.Seed).Substream(s.Seed, "chaos/telemetry")
		}
		return s.rng.Bernoulli(f.LossProb)
	}
	return false
}

// GPSOutage reports whether vehicle id has no GPS fix at time now.
func (s *Schedule) GPSOutage(id string, now float64) bool {
	if s == nil {
		return false
	}
	for _, f := range s.GPS {
		if f.Outage && matches(f.ID, id) && f.Contains(now) {
			return true
		}
	}
	return false
}

// GPSSigmaScale returns the noise inflation for vehicle id at time now
// (1 when no degradation is active).
func (s *Schedule) GPSSigmaScale(id string, now float64) float64 {
	if s == nil {
		return 1
	}
	for _, f := range s.GPS {
		if !f.Outage && matches(f.ID, id) && f.Contains(now) {
			return f.SigmaScale
		}
	}
	return 1
}

// LinkOutage reports whether vehicle id's data link is down at time now.
func (s *Schedule) LinkOutage(id string, now float64) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Links {
		if f.Outage && matches(f.ID, id) && f.Contains(now) {
			return true
		}
	}
	return false
}

// LinkExtraLossDB returns the injected fade (dB) on vehicle id's data link
// at time now (0 when none).
func (s *Schedule) LinkExtraLossDB(id string, now float64) float64 {
	if s == nil {
		return 0
	}
	for _, f := range s.Links {
		if !f.Outage && matches(f.ID, id) && f.Contains(now) {
			return f.ExtraLossDB
		}
	}
	return 0
}

// ServiceLatencyS returns the injected per-request delay on the decision
// service at time now (0 when none).
func (s *Schedule) ServiceLatencyS(now float64) float64 {
	if s == nil {
		return 0
	}
	for _, f := range s.Service {
		if f.Mode == SvcLatency && f.Contains(now) {
			return f.DelayS
		}
	}
	return 0
}

// ServiceResetProb returns the per-request connection-reset probability at
// time now (0 when none).
func (s *Schedule) ServiceResetProb(now float64) float64 {
	if s == nil {
		return 0
	}
	for _, f := range s.Service {
		if f.Mode == SvcReset && f.Contains(now) {
			return f.Prob
		}
	}
	return 0
}

// ServiceDropProb returns the per-request blackhole probability at time
// now (0 when none).
func (s *Schedule) ServiceDropProb(now float64) float64 {
	if s == nil {
		return 0
	}
	for _, f := range s.Service {
		if f.Mode == SvcDrop && f.Contains(now) {
			return f.Prob
		}
	}
	return 0
}

// VehicleFailTime returns the scripted failure time of vehicle id, if any.
func (s *Schedule) VehicleFailTime(id string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	for _, f := range s.Vehicles {
		if f.ID == id {
			return f.AtS, true
		}
	}
	return 0, false
}

// HorizonS returns the time the last declared fault ends (0 for an empty
// schedule) — useful for sizing mission durations around a schedule.
func (s *Schedule) HorizonS() float64 {
	if s == nil {
		return 0
	}
	var h float64
	for _, f := range s.Telemetry {
		h = math.Max(h, f.EndS)
	}
	for _, f := range s.GPS {
		h = math.Max(h, f.EndS)
	}
	for _, f := range s.Links {
		h = math.Max(h, f.EndS)
	}
	for _, f := range s.Vehicles {
		h = math.Max(h, f.AtS)
	}
	for _, f := range s.Service {
		h = math.Max(h, f.EndS)
	}
	return h
}

// String renders the schedule in the Parse text format (sorted for
// stability), so a programmatically built schedule can be saved and
// replayed with `uavsim -chaos`.
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	var lines []string
	if s.Seed != 0 {
		lines = append(lines, fmt.Sprintf("seed %d", s.Seed))
	}
	for _, f := range s.Telemetry {
		if f.LossProb >= 1 {
			lines = append(lines, fmt.Sprintf("telemetry blackout %g %g", f.StartS, f.EndS))
		} else {
			lines = append(lines, fmt.Sprintf("telemetry loss %g %g %g", f.LossProb, f.StartS, f.EndS))
		}
	}
	for _, f := range s.GPS {
		if f.Outage {
			lines = append(lines, fmt.Sprintf("gps outage %s %g %g", f.ID, f.StartS, f.EndS))
		} else {
			lines = append(lines, fmt.Sprintf("gps degrade %s %g %g %g", f.ID, f.SigmaScale, f.StartS, f.EndS))
		}
	}
	for _, f := range s.Links {
		if f.Outage {
			lines = append(lines, fmt.Sprintf("link outage %s %g %g", f.ID, f.StartS, f.EndS))
		} else {
			lines = append(lines, fmt.Sprintf("link fade %s %g %g %g", f.ID, f.ExtraLossDB, f.StartS, f.EndS))
		}
	}
	for _, f := range s.Vehicles {
		lines = append(lines, fmt.Sprintf("vehicle fail %s %g", f.ID, f.AtS))
	}
	for _, f := range s.Service {
		v := f.Prob
		if f.Mode == SvcLatency {
			v = f.DelayS
		}
		lines = append(lines, fmt.Sprintf("svc %s %g %g %g", f.Mode, v, f.StartS, f.EndS))
	}
	sort.Strings(lines[boolToInt(s.Seed != 0):])
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
