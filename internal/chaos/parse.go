package chaos

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Parse reads the chaos text format: one fault per line, '#' comments and
// blank lines ignored. Times are seconds of simulation time; windows are
// half-open [start, end).
//
//	seed <n>
//	telemetry loss <prob> <start> <end>
//	telemetry blackout <start> <end>
//	gps outage <id|*> <start> <end>
//	gps degrade <id|*> <sigma-scale> <start> <end>
//	link outage <id|*> <start> <end>
//	link fade <id|*> <extra-db> <start> <end>
//	vehicle fail <id> <time>
//	svc latency <delay-s> <start> <end>
//	svc reset <prob> <start> <end>
//	svc drop <prob> <start> <end>
//
// The parsed schedule is validated (overlapping windows of one fault
// class on one target, negative times, probabilities outside [0,1] and
// malformed numbers all error — Parse never panics on any input).
func Parse(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := s.parseLine(strings.Fields(line)); err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return s, nil
}

// ParseString parses the text format from a string.
func ParseString(text string) (*Schedule, error) { return Parse(strings.NewReader(text)) }

// Load parses a schedule file from disk.
func Load(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

func (s *Schedule) parseLine(fields []string) error {
	switch fields[0] {
	case "seed":
		if len(fields) != 2 {
			return fmt.Errorf("seed wants 1 argument, got %d", len(fields)-1)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("seed %q: %w", fields[1], err)
		}
		s.Seed = n
		return nil
	case "telemetry":
		return s.parseTelemetry(fields[1:])
	case "gps":
		return s.parseGPS(fields[1:])
	case "link":
		return s.parseLink(fields[1:])
	case "vehicle":
		return s.parseVehicle(fields[1:])
	case "svc":
		return s.parseService(fields[1:])
	}
	return fmt.Errorf("unknown fault kind %q", fields[0])
}

func (s *Schedule) parseTelemetry(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("telemetry wants loss|blackout")
	}
	switch args[0] {
	case "loss":
		xs, err := floats(args[1:], 3)
		if err != nil {
			return fmt.Errorf("telemetry loss: %w", err)
		}
		s.Telemetry = append(s.Telemetry, TelemetryFault{
			Window: Window{StartS: xs[1], EndS: xs[2]}, LossProb: xs[0],
		})
	case "blackout":
		xs, err := floats(args[1:], 2)
		if err != nil {
			return fmt.Errorf("telemetry blackout: %w", err)
		}
		s.Telemetry = append(s.Telemetry, TelemetryFault{
			Window: Window{StartS: xs[0], EndS: xs[1]}, LossProb: 1,
		})
	default:
		return fmt.Errorf("unknown telemetry fault %q", args[0])
	}
	return nil
}

func (s *Schedule) parseGPS(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("gps wants outage|degrade and a target id")
	}
	id := args[1]
	switch args[0] {
	case "outage":
		xs, err := floats(args[2:], 2)
		if err != nil {
			return fmt.Errorf("gps outage: %w", err)
		}
		s.GPS = append(s.GPS, GPSFault{
			Window: Window{StartS: xs[0], EndS: xs[1]}, ID: id, Outage: true,
		})
	case "degrade":
		xs, err := floats(args[2:], 3)
		if err != nil {
			return fmt.Errorf("gps degrade: %w", err)
		}
		s.GPS = append(s.GPS, GPSFault{
			Window: Window{StartS: xs[1], EndS: xs[2]}, ID: id, SigmaScale: xs[0],
		})
	default:
		return fmt.Errorf("unknown gps fault %q", args[0])
	}
	return nil
}

func (s *Schedule) parseLink(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("link wants outage|fade and a target id")
	}
	id := args[1]
	switch args[0] {
	case "outage":
		xs, err := floats(args[2:], 2)
		if err != nil {
			return fmt.Errorf("link outage: %w", err)
		}
		s.Links = append(s.Links, LinkFault{
			Window: Window{StartS: xs[0], EndS: xs[1]}, ID: id, Outage: true,
		})
	case "fade":
		xs, err := floats(args[2:], 3)
		if err != nil {
			return fmt.Errorf("link fade: %w", err)
		}
		s.Links = append(s.Links, LinkFault{
			Window: Window{StartS: xs[1], EndS: xs[2]}, ID: id, ExtraLossDB: xs[0],
		})
	default:
		return fmt.Errorf("unknown link fault %q", args[0])
	}
	return nil
}

func (s *Schedule) parseVehicle(args []string) error {
	if len(args) != 3 || args[0] != "fail" {
		return fmt.Errorf("vehicle wants: fail <id> <time>")
	}
	xs, err := floats(args[2:], 1)
	if err != nil {
		return fmt.Errorf("vehicle fail: %w", err)
	}
	s.Vehicles = append(s.Vehicles, VehicleFault{ID: args[1], AtS: xs[0]})
	return nil
}

func (s *Schedule) parseService(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("svc wants latency|reset|drop")
	}
	xs, err := floats(args[1:], 3)
	if err != nil {
		return fmt.Errorf("svc %s: %w", args[0], err)
	}
	f := ServiceFault{Window: Window{StartS: xs[1], EndS: xs[2]}, Mode: args[0]}
	switch args[0] {
	case SvcLatency:
		f.DelayS = xs[0]
	case SvcReset, SvcDrop:
		f.Prob = xs[0]
	default:
		return fmt.Errorf("unknown svc fault %q", args[0])
	}
	s.Service = append(s.Service, f)
	return nil
}

// floats parses exactly n float arguments.
func floats(args []string, n int) ([]float64, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d numeric arguments, got %d", n, len(args))
	}
	out := make([]float64, n)
	for i, a := range args {
		x, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", a)
		}
		out[i] = x
	}
	return out, nil
}
