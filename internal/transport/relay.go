package transport

// Multi-hop store-and-forward ferrying. The paper's related work measured
// "a throughput of up to 13 Mb/s from ground to one UAV, and half of the
// throughput using another UAV as relay" — the classic half-duplex relay
// penalty. RelayChain reproduces that substrate: hops share one radio
// channel, so only one link of the chain transmits at any instant, and a
// relay can only forward bytes it has already received.

import (
	"errors"
	"math"

	"github.com/nowlater/nowlater/internal/link"
)

// RelayResult is the outcome of a chain transfer.
type RelayResult struct {
	// CompletionS is when the last byte reached the final receiver
	// (+Inf if the deadline expired first).
	CompletionS float64
	// DeliveredBytes reached the final receiver.
	DeliveredBytes int64
	// PerHopDelivered counts bytes delivered across each hop.
	PerHopDelivered []int64
}

// RelayChain transfers bytes across a chain of links (source→relay…→sink)
// sharing one half-duplex channel. geoms[i] reports hop i's geometry.
// Scheduling is work-conserving: each round, the earliest-clock hop that
// has data buffered transmits one exchange; all hop clocks advance
// together because the medium is shared.
func RelayChain(links []*link.Link, bytes int, deadlineS float64,
	geoms []GeometryFunc) (RelayResult, error) {
	if len(links) == 0 {
		return RelayResult{}, errors.New("transport: empty chain")
	}
	if len(geoms) != len(links) {
		return RelayResult{}, errors.New("transport: one geometry per hop required")
	}
	for _, l := range links {
		if l == nil {
			return RelayResult{}, errors.New("transport: nil link in chain")
		}
	}
	if bytes <= 0 || deadlineS <= 0 {
		return RelayResult{}, errors.New("transport: batch and deadline must be positive")
	}

	n := len(links)
	res := RelayResult{CompletionS: math.Inf(1), PerHopDelivered: make([]int64, n)}
	// buffered[i] is the data available to hop i's transmitter but not yet
	// enqueued into its MAC. Hop 0 owns the whole batch.
	buffered := make([]int64, n)
	buffered[0] = int64(bytes)
	// enqueued[i] tracks bytes handed to hop i's MAC.
	target := int64(bytes)

	// The shared-medium clock: all links run off the max of their clocks.
	clock := func() float64 {
		c := 0.0
		for _, l := range links {
			if l.Now() > c {
				c = l.Now()
			}
		}
		return c
	}
	start := clock()
	deadline := start + deadlineS

	for clock() < deadline {
		// Pick the transmitting hop: the first (closest-to-source) hop
		// with work, preferring the one whose clock lags (it has had the
		// channel least recently).
		hop := -1
		for i := 0; i < n; i++ {
			if buffered[i] > 0 || links[i].QueuedBytes() > 0 {
				if hop == -1 || links[i].Now() < links[hop].Now() {
					hop = i
				}
			}
		}
		if hop == -1 {
			break // nothing buffered anywhere: all delivered or dropped
		}
		l := links[hop]
		// Half duplex: this hop's transmission occupies the channel, so
		// every other hop's clock must catch up afterwards.
		if buffered[hop] > 0 {
			chunk := buffered[hop]
			if chunk > 64*1500 {
				chunk = 64 * 1500
			}
			l.Enqueue(int(chunk))
			buffered[hop] -= chunk
		}
		// Reliable ferrying: MAC drops are re-enqueued.
		droppedBefore := l.MAC().DroppedBytes
		ex := l.Step(geoms[hop](l.Now()))
		if d := l.MAC().DroppedBytes - droppedBefore; d > 0 {
			l.Enqueue(int(d))
		}
		if ex.DeliveredBytes > 0 {
			res.PerHopDelivered[hop] += int64(ex.DeliveredBytes)
			if hop == n-1 {
				res.DeliveredBytes += int64(ex.DeliveredBytes)
			} else {
				buffered[hop+1] += int64(ex.DeliveredBytes)
			}
		}
		// Medium sharing: advance every other hop's clock to this one's.
		now := l.Now()
		for _, other := range links {
			other.SetNow(now)
		}
		if res.DeliveredBytes >= target {
			res.CompletionS = clock() - start
			break
		}
	}
	return res, nil
}
