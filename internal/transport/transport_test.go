package transport

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/rate"
)

func staticGeom(d, alt float64) GeometryFunc {
	return func(float64) link.Geometry {
		return link.Geometry{DistanceM: d, AltitudeM: alt}
	}
}

func newLink(t *testing.T, pol rate.Policy) *link.Link {
	t.Helper()
	l, err := link.New(link.DefaultConfig(), pol)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTransferBatchValidation(t *testing.T) {
	l := newLink(t, rate.NewFixed(2))
	if _, err := TransferBatch(nil, BatchConfig{Bytes: 1, DeadlineS: 1}, staticGeom(20, 10)); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := TransferBatch(l, BatchConfig{Bytes: 0, DeadlineS: 1}, staticGeom(20, 10)); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := TransferBatch(l, BatchConfig{Bytes: 1, DeadlineS: 0}, staticGeom(20, 10)); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, err := TransferBatch(l, BatchConfig{Bytes: 1, DeadlineS: 1}, nil); err == nil {
		t.Fatal("nil geometry accepted")
	}
}

func TestTransferBatchCompletesAtShortRange(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	res, err := TransferBatch(l, BatchConfig{Bytes: 2_000_000, DeadlineS: 30, Reliable: true},
		staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CompletionS, 1) {
		t.Fatal("transfer did not complete")
	}
	if res.DeliveredBytes < 2_000_000 {
		t.Fatalf("delivered = %d", res.DeliveredBytes)
	}
	// 2 MB at ≈25–45 Mb/s should take well under 10 s.
	if res.CompletionS > 10 {
		t.Fatalf("completion = %v s", res.CompletionS)
	}
	if len(res.Series) == 0 {
		t.Fatal("no progress series")
	}
	last := res.Series[len(res.Series)-1]
	if math.Abs(last.DeliveredMB-2.0) > 0.05 {
		t.Fatalf("series final = %v MB", last.DeliveredMB)
	}
}

func TestTransferBatchDeadline(t *testing.T) {
	// A hopeless link: 20 MB at 300 m via a weak fixed MCS within 2 s.
	l := newLink(t, rate.NewFixed(7))
	res, err := TransferBatch(l, BatchConfig{Bytes: 20_000_000, DeadlineS: 2, Reliable: true},
		staticGeom(300, 90))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.CompletionS, 1) {
		t.Fatalf("hopeless transfer completed in %v", res.CompletionS)
	}
	if res.DeliveredBytes >= 20_000_000 {
		t.Fatal("delivered everything on a dead link")
	}
}

func TestReliableRetransmitsDrops(t *testing.T) {
	// Mid-SNR geometry at an aggressive MCS produces retry-limit drops;
	// reliable mode must retransmit and still deliver the full batch.
	l := newLink(t, rate.NewFixed(4))
	res, err := TransferBatch(l, BatchConfig{Bytes: 1_000_000, DeadlineS: 120, Reliable: true},
		staticGeom(90, 90))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CompletionS, 1) {
		t.Fatalf("reliable transfer did not finish: delivered %d", res.DeliveredBytes)
	}
	if res.DeliveredBytes < 1_000_000 {
		t.Fatalf("delivered = %d", res.DeliveredBytes)
	}
}

func TestUnreliableStopsWhenQueueExhausted(t *testing.T) {
	// Unreliable mode over a lossy geometry: once every queued byte has
	// either landed or died at the MAC retry limit, the transfer must exit
	// early rather than spin until the deadline.
	l := newLink(t, rate.NewFixed(4))
	res, err := TransferBatch(l, BatchConfig{Bytes: 500_000, DeadlineS: 600, Reliable: false},
		staticGeom(90, 90))
	if err != nil {
		t.Fatal(err)
	}
	dropped := l.MAC().DroppedBytes
	if dropped == 0 {
		t.Fatal("geometry produced no MAC drops; the early-exit branch was not exercised")
	}
	if !math.IsInf(res.CompletionS, 1) {
		t.Fatalf("lossy unreliable transfer reported completion %v", res.CompletionS)
	}
	if res.DeliveredBytes >= 500_000 {
		t.Fatalf("delivered %d with %d dropped", res.DeliveredBytes, dropped)
	}
	if res.DeliveredBytes+dropped < 500_000 {
		t.Fatalf("exited with work outstanding: delivered %d + dropped %d < batch", res.DeliveredBytes, dropped)
	}
	if l.QueuedBytes() != 0 {
		t.Fatalf("queue not exhausted: %d bytes left", l.QueuedBytes())
	}
	if res.RetransmittedBytes != 0 {
		t.Fatalf("unreliable transfer retransmitted %d bytes", res.RetransmittedBytes)
	}
	// The early exit happened long before the (deliberately huge) deadline.
	if l.Now() > 300 {
		t.Fatalf("transfer ran to %v s instead of exiting when the queue drained", l.Now())
	}
}

func TestReliableAccountsRetransmissions(t *testing.T) {
	// Sustained heavy drop: every MAC-dropped byte must show up in
	// RetransmittedBytes, and the delivered total must still reach the
	// batch size exactly once (retransmissions do not inflate it).
	l := newLink(t, rate.NewFixed(4))
	const batch = 1_000_000
	res, err := TransferBatch(l, BatchConfig{Bytes: batch, DeadlineS: 600, Reliable: true},
		staticGeom(90, 90))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CompletionS, 1) {
		t.Fatalf("reliable transfer did not finish: delivered %d", res.DeliveredBytes)
	}
	if res.RetransmittedBytes == 0 {
		t.Fatal("hostile geometry produced no retransmissions")
	}
	// Everything the MAC gave up on was re-enqueued, so the account must
	// match the MAC's drop counter (up to drops from the final re-enqueue
	// that may still be queued at exit).
	if res.RetransmittedBytes > l.MAC().DroppedBytes {
		t.Fatalf("retransmitted %d > MAC dropped %d", res.RetransmittedBytes, l.MAC().DroppedBytes)
	}
	if res.DeliveredBytes < batch || res.DeliveredBytes > batch+100_000 {
		t.Fatalf("delivered %d for a %d-byte batch", res.DeliveredBytes, batch)
	}
}

func TestSeriesMonotone(t *testing.T) {
	l := newLink(t, rate.NewFixed(2))
	res, err := TransferBatch(l, BatchConfig{Bytes: 3_000_000, DeadlineS: 60, Reliable: true},
		staticGeom(40, 10))
	if err != nil {
		t.Fatal(err)
	}
	prevT, prevMB := -1.0, -1.0
	for _, p := range res.Series {
		if p.TimeS < prevT || p.DeliveredMB < prevMB {
			t.Fatalf("series not monotone at %v", p.TimeS)
		}
		prevT, prevMB = p.TimeS, p.DeliveredMB
	}
}

func TestMovingGeometryIsQueried(t *testing.T) {
	l := newLink(t, nil)
	calls := 0
	geom := func(now float64) link.Geometry {
		calls++
		d := 80 - 4.5*now
		if d < 20 {
			d = 20
		}
		return link.Geometry{DistanceM: d, AltitudeM: 10, RelSpeedMPS: 4.5}
	}
	if _, err := TransferBatch(l, BatchConfig{Bytes: 5_000_000, DeadlineS: 60, Reliable: true}, geom); err != nil {
		t.Fatal(err)
	}
	if calls < 10 {
		t.Fatalf("geometry queried only %d times", calls)
	}
}

func TestIperf(t *testing.T) {
	l := newLink(t, nil)
	m, err := Iperf(l, link.Geometry{DistanceM: 30, AltitudeM: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.ThroughputBps <= 0 {
		t.Fatalf("throughput = %v", m.ThroughputBps)
	}
	if _, err := Iperf(nil, link.Geometry{}, 5); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := Iperf(l, link.Geometry{DistanceM: 30, AltitudeM: 10}, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestTimeToMB(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	res, err := TransferBatch(l, BatchConfig{Bytes: 4_000_000, DeadlineS: 60, Reliable: true},
		staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	half, ok := res.TimeToMB(2)
	if !ok {
		t.Fatal("never reached 2 MB")
	}
	full, ok := res.TimeToMB(4)
	if !ok {
		t.Fatal("never reached 4 MB")
	}
	if !(half > 0 && half < full) {
		t.Fatalf("timing ordering: half %v, full %v", half, full)
	}
	if _, ok := res.TimeToMB(999); ok {
		t.Fatal("unreachable volume reported reached")
	}
}
