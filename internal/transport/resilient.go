package transport

import (
	"errors"
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/stats"
)

// ResilientConfig controls a fault-tolerant batch transfer: the transfer
// is cut into attempts with a per-attempt timeout; an attempt that stalls
// (outage, deep fade) is abandoned and retried after a capped exponential
// backoff with seeded jitter, and the delivered prefix carries across
// attempts — the batch resumes, it never restarts.
type ResilientConfig struct {
	// Bytes is the batch size (Mdata).
	Bytes int
	// DeadlineS is the overall budget, attempts plus backoff.
	DeadlineS float64
	// AttemptTimeoutS caps one attempt. An attempt that has not finished
	// the batch by then is abandoned (its delivered bytes are kept).
	AttemptTimeoutS float64
	// MaxAttempts bounds the retry count (0 = limited only by the
	// deadline).
	MaxAttempts int
	// BackoffBaseS is the first retry delay; it doubles per attempt up to
	// BackoffMaxS.
	BackoffBaseS float64
	BackoffMaxS  float64
	// JitterFrac spreads each backoff uniformly in ±JitterFrac of itself
	// (seeded — runs replay exactly).
	JitterFrac float64
	// Seed and Label derive the jitter substream.
	Seed  int64
	Label string
}

// DefaultResilientConfig returns a transfer tuned for the mission stack:
// 30 s attempts, 1→16 s backoff with 20% jitter.
func DefaultResilientConfig(bytes int, deadlineS float64) ResilientConfig {
	return ResilientConfig{
		Bytes:           bytes,
		DeadlineS:       deadlineS,
		AttemptTimeoutS: 30,
		BackoffBaseS:    1,
		BackoffMaxS:     16,
		JitterFrac:      0.2,
		Seed:            1,
		Label:           "resilient",
	}
}

// Validate reports the first implausible field.
func (c ResilientConfig) Validate() error {
	switch {
	case c.Bytes <= 0:
		return errors.New("transport: batch size must be positive")
	case c.DeadlineS <= 0:
		return errors.New("transport: deadline must be positive")
	case c.AttemptTimeoutS <= 0:
		return errors.New("transport: attempt timeout must be positive")
	case c.BackoffBaseS < 0 || c.BackoffMaxS < c.BackoffBaseS:
		return fmt.Errorf("transport: backoff window [%v, %v] invalid", c.BackoffBaseS, c.BackoffMaxS)
	case c.JitterFrac < 0 || c.JitterFrac >= 1:
		return fmt.Errorf("transport: jitter fraction %v outside [0, 1)", c.JitterFrac)
	case c.MaxAttempts < 0:
		return fmt.Errorf("transport: max attempts %v negative", c.MaxAttempts)
	}
	return nil
}

// ResilientResult is the outcome of a resilient transfer.
type ResilientResult struct {
	BatchResult
	// Attempts is how many attempts ran (≥ 1).
	Attempts int
	// BackoffS is the total simulated time spent backing off.
	BackoffS float64
	// Resumed reports that delivery spanned more than one attempt — the
	// partial-batch carry actually happened.
	Resumed bool
}

// ResilientTransfer moves a batch over a link that may be degraded or
// outright dead for stretches of the transfer. It is the survivable
// counterpart of TransferBatch: same clock discipline (the link's clock is
// the transfer clock, geometry is queried as it advances), but delivery is
// always reliable (MAC drops are re-enqueued and accounted as
// retransmissions) and progress survives attempt boundaries.
func ResilientTransfer(l *link.Link, cfg ResilientConfig, geom GeometryFunc) (ResilientResult, error) {
	if l == nil {
		return ResilientResult{}, errors.New("transport: nil link")
	}
	if geom == nil {
		return ResilientResult{}, errors.New("transport: nil geometry source")
	}
	if err := cfg.Validate(); err != nil {
		return ResilientResult{}, err
	}

	start := l.Now()
	deadline := start + cfg.DeadlineS
	target := int64(cfg.Bytes)
	res := ResilientResult{BatchResult: BatchResult{CompletionS: math.Inf(1)}}
	var delivered, attemptDelivered int64
	backoff := cfg.BackoffBaseS
	var jitter *stats.RNG // lazily built: an untroubled transfer draws nothing
	nextSample := start

	sample := func(d float64) {
		res.Series = append(res.Series, SeriesPoint{
			TimeS:       l.Now() - start,
			DeliveredMB: float64(delivered) / 1e6,
			DistanceM:   d,
		})
		nextSample = l.Now() + seriesInterval
	}

	for {
		res.Attempts++
		attemptDelivered = 0
		attemptEnd := math.Min(l.Now()+cfg.AttemptTimeoutS, deadline)
		// Top the queue up to the remaining deficit; bytes still queued
		// from the previous attempt are not re-sent.
		if deficit := int(target-delivered) - l.QueuedBytes(); deficit > 0 {
			l.Enqueue(deficit)
		}
		droppedBefore := l.MAC().DroppedBytes
		for l.Now() < attemptEnd && delivered < target {
			g := geom(l.Now())
			ex := l.Step(g)
			delivered += int64(ex.DeliveredBytes)
			attemptDelivered += int64(ex.DeliveredBytes)
			// Reliable by construction: a batch that must arrive complete
			// re-enqueues what the MAC gave up on.
			if d := l.MAC().DroppedBytes - droppedBefore; d > 0 {
				droppedBefore = l.MAC().DroppedBytes
				res.RetransmittedBytes += d
				l.Enqueue(int(d))
			}
			if l.Now() >= nextSample || delivered >= target {
				sample(g.DistanceM)
			}
		}
		if attemptDelivered > 0 && delivered > attemptDelivered {
			res.Resumed = true // bytes landed in two or more attempts
		}
		if delivered >= target {
			res.CompletionS = l.Now() - start
			break
		}
		if l.Now() >= deadline || (cfg.MaxAttempts > 0 && res.Attempts >= cfg.MaxAttempts) {
			break
		}
		// Backoff before the next attempt: capped exponential with seeded
		// jitter, clamped to the remaining budget.
		b := backoff
		if cfg.JitterFrac > 0 {
			if jitter == nil {
				jitter = stats.NewRNG(cfg.Seed).Substream(cfg.Seed, cfg.Label+"/backoff")
			}
			b *= 1 + cfg.JitterFrac*(2*jitter.Float64()-1)
		}
		b = math.Min(b, deadline-l.Now())
		if b > 0 {
			l.SetNow(l.Now() + b)
			res.BackoffS += b
		}
		backoff = math.Min(backoff*2, cfg.BackoffMaxS)
	}
	res.DeliveredBytes = delivered
	return res, nil
}
