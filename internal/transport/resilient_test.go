package transport

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/rate"
)

func resilientCfg(bytes int, deadline float64) ResilientConfig {
	cfg := DefaultResilientConfig(bytes, deadline)
	cfg.AttemptTimeoutS = 5
	return cfg
}

func TestResilientValidation(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	geom := staticGeom(20, 10)
	if _, err := ResilientTransfer(nil, resilientCfg(1, 1), geom); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := ResilientTransfer(l, resilientCfg(1, 1), nil); err == nil {
		t.Fatal("nil geometry accepted")
	}
	bad := []ResilientConfig{
		{Bytes: 0, DeadlineS: 1, AttemptTimeoutS: 1},
		{Bytes: 1, DeadlineS: 0, AttemptTimeoutS: 1},
		{Bytes: 1, DeadlineS: 1, AttemptTimeoutS: 0},
		{Bytes: 1, DeadlineS: 1, AttemptTimeoutS: 1, BackoffBaseS: 2, BackoffMaxS: 1},
		{Bytes: 1, DeadlineS: 1, AttemptTimeoutS: 1, JitterFrac: 1},
		{Bytes: 1, DeadlineS: 1, AttemptTimeoutS: 1, MaxAttempts: -1},
	}
	for i, cfg := range bad {
		if _, err := ResilientTransfer(l, cfg, geom); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestResilientCompletesCleanLinkInOneAttempt(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	res, err := ResilientTransfer(l, resilientCfg(2_000_000, 30), staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CompletionS, 1) || res.DeliveredBytes < 2_000_000 {
		t.Fatalf("clean transfer incomplete: %+v", res)
	}
	if res.Attempts != 1 || res.Resumed || res.BackoffS != 0 {
		t.Fatalf("clean transfer was not a single attempt: %+v", res)
	}
	if len(res.Series) == 0 {
		t.Fatal("no progress series")
	}
}

func TestResilientResumesAcrossOutage(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	// The link dies from t=2 to t=12: longer than one attempt timeout, so
	// the transfer must survive at least one abandoned attempt and resume
	// the partial batch afterwards.
	l.SetFault(func(now float64) (bool, float64) { return now >= 2 && now < 12, 0 })
	res, err := ResilientTransfer(l, resilientCfg(24_000_000, 120), staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CompletionS, 1) {
		t.Fatalf("did not complete around a 10 s outage: %+v", res)
	}
	if res.DeliveredBytes < 24_000_000 {
		t.Fatalf("delivered = %d", res.DeliveredBytes)
	}
	if res.Attempts < 2 || !res.Resumed {
		t.Fatalf("outage survived without resuming: attempts=%d resumed=%v", res.Attempts, res.Resumed)
	}
	if res.BackoffS <= 0 {
		t.Fatalf("no backoff recorded: %+v", res)
	}
}

func TestResilientPartialOnDeadLink(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	// Deliver for 3 s, then the link dies for good.
	l.SetFault(func(now float64) (bool, float64) { return now >= 3, 0 })
	res, err := ResilientTransfer(l, resilientCfg(50_000_000, 40), staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.CompletionS, 1) {
		t.Fatal("completed over a dead link")
	}
	if res.DeliveredBytes <= 0 || res.DeliveredBytes >= 50_000_000 {
		t.Fatalf("partial delivery = %d", res.DeliveredBytes)
	}
	if res.Attempts < 2 {
		t.Fatalf("dead link probed only %d times", res.Attempts)
	}
	// The clock never overruns the budget by more than one attempt slice.
	if res.BackoffS > 40 {
		t.Fatalf("backoff %v exceeded the whole deadline", res.BackoffS)
	}
}

func TestResilientMaxAttemptsBounds(t *testing.T) {
	l := newLink(t, rate.NewFixed(3))
	l.SetFault(func(float64) (bool, float64) { return true, 0 }) // always down
	cfg := resilientCfg(1_000_000, 1000)
	cfg.MaxAttempts = 3
	res, err := ResilientTransfer(l, cfg, staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want exactly 3", res.Attempts)
	}
	if res.DeliveredBytes != 0 {
		t.Fatalf("delivered %d through a permanently dead link", res.DeliveredBytes)
	}
}

func TestResilientDeterministicReplay(t *testing.T) {
	run := func() ResilientResult {
		l := newLink(t, rate.NewFixed(3))
		l.SetFault(func(now float64) (bool, float64) { return now >= 1 && now < 8, 15 })
		cfg := resilientCfg(4_000_000, 90)
		cfg.Seed = 42
		res, err := ResilientTransfer(l, cfg, staticGeom(30, 10))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CompletionS != b.CompletionS || a.DeliveredBytes != b.DeliveredBytes ||
		a.Attempts != b.Attempts || a.BackoffS != b.BackoffS ||
		a.RetransmittedBytes != b.RetransmittedBytes {
		t.Fatalf("seeded runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestResilientMatchesReliableBatchOnCleanLink(t *testing.T) {
	// On an untroubled link the resilient wrapper should deliver the same
	// bytes in essentially the same time as the plain reliable transfer.
	const bytes = 3_000_000
	lb := newLink(t, rate.NewFixed(3))
	plain, err := TransferBatch(lb, BatchConfig{Bytes: bytes, DeadlineS: 60, Reliable: true},
		staticGeom(25, 10))
	if err != nil {
		t.Fatal(err)
	}
	lr := newLink(t, rate.NewFixed(3))
	cfg := resilientCfg(bytes, 60)
	cfg.AttemptTimeoutS = 60
	res, err := ResilientTransfer(lr, cfg, staticGeom(25, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CompletionS-plain.CompletionS) > 0.5 {
		t.Fatalf("resilient %v s vs plain %v s on a clean link", res.CompletionS, plain.CompletionS)
	}
}
