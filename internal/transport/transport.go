// Package transport provides the application-level data movers the
// experiments use on top of a link: an iperf-style UDP saturation
// measurement (Section 3: "measured using UDP traffic and the iperf
// tool") and a reliable batch transfer that delivers a sensing batch of
// Mdata bytes while the geometry evolves — the workload of Fig. 1.
package transport

import (
	"errors"
	"math"

	"github.com/nowlater/nowlater/internal/link"
)

// GeometryFunc reports the link geometry at a simulation time; batch
// transfers query it continuously as the vehicles move.
type GeometryFunc func(now float64) link.Geometry

// SeriesPoint samples a transfer's progress.
type SeriesPoint struct {
	TimeS       float64
	DeliveredMB float64
	DistanceM   float64
}

// BatchResult is the outcome of one batch transfer.
type BatchResult struct {
	// CompletionS is the time from transfer start to the last byte
	// delivered (+Inf if the deadline expired first).
	CompletionS float64
	// DeliveredBytes and RetransmittedBytes account the work done.
	DeliveredBytes     int64
	RetransmittedBytes int64
	// Series samples progress at ≈4 Hz.
	Series []SeriesPoint
}

// BatchConfig controls a transfer.
type BatchConfig struct {
	// Bytes is the batch size (Mdata).
	Bytes int
	// DeadlineS aborts the transfer after this much simulated time.
	DeadlineS float64
	// Reliable re-enqueues MAC-dropped datagrams (images must arrive
	// complete); unreliable transfers count drops as lost.
	Reliable bool
}

// seriesInterval is the sampling cadence of progress points.
const seriesInterval = 0.25

// TransferBatch drives a batch of bytes over the link, querying the
// geometry as the simulation clock advances. The link's clock is the
// transfer clock; the caller's vehicles should be advanced inside geom.
func TransferBatch(l *link.Link, cfg BatchConfig, geom GeometryFunc) (BatchResult, error) {
	if l == nil {
		return BatchResult{}, errors.New("transport: nil link")
	}
	if cfg.Bytes <= 0 {
		return BatchResult{}, errors.New("transport: batch size must be positive")
	}
	if cfg.DeadlineS <= 0 {
		return BatchResult{}, errors.New("transport: deadline must be positive")
	}
	if geom == nil {
		return BatchResult{}, errors.New("transport: nil geometry source")
	}

	start := l.Now()
	deadline := start + cfg.DeadlineS
	l.Enqueue(cfg.Bytes)

	res := BatchResult{CompletionS: math.Inf(1)}
	var delivered int64
	target := int64(cfg.Bytes)
	nextSample := start

	droppedBefore := l.MAC().DroppedBytes
	for l.Now() < deadline {
		g := geom(l.Now())
		ex := l.Step(g)
		delivered += int64(ex.DeliveredBytes)

		if cfg.Reliable {
			if d := l.MAC().DroppedBytes - droppedBefore; d > 0 {
				droppedBefore = l.MAC().DroppedBytes
				res.RetransmittedBytes += d
				l.Enqueue(int(d))
			}
		}

		if l.Now() >= nextSample || delivered >= target {
			nextSample = l.Now() + seriesInterval
			res.Series = append(res.Series, SeriesPoint{
				TimeS:       l.Now() - start,
				DeliveredMB: float64(delivered) / 1e6,
				DistanceM:   g.DistanceM,
			})
		}
		if delivered >= target {
			res.CompletionS = l.Now() - start
			break
		}
		if !cfg.Reliable && delivered+(l.MAC().DroppedBytes-droppedBefore) >= target &&
			l.QueuedBytes() == 0 {
			// Unreliable transfer exhausted its queue (drops included).
			break
		}
	}
	res.DeliveredBytes = delivered
	return res, nil
}

// Iperf is the saturation throughput measurement (delegates to the link's
// measurement loop, named for discoverability next to the paper's tooling).
func Iperf(l *link.Link, g link.Geometry, duration float64) (link.Measurement, error) {
	if l == nil {
		return link.Measurement{}, errors.New("transport: nil link")
	}
	if duration <= 0 {
		return link.Measurement{}, errors.New("transport: duration must be positive")
	}
	return l.Measure(g, duration), nil
}

// TimeToMB returns when the transfer first reached the given delivered
// volume (MB), interpolating between progress samples; ok is false if it
// never did. Time-critical missions care about partial delivery ("deliver
// as much data as soon as possible"), not only completion.
func (r BatchResult) TimeToMB(mb float64) (float64, bool) {
	var prev SeriesPoint
	for i, p := range r.Series {
		if p.DeliveredMB >= mb {
			if i == 0 || p.DeliveredMB == prev.DeliveredMB {
				return p.TimeS, true
			}
			frac := (mb - prev.DeliveredMB) / (p.DeliveredMB - prev.DeliveredMB)
			return prev.TimeS + frac*(p.TimeS-prev.TimeS), true
		}
		prev = p
	}
	return 0, false
}
