package transport

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/rate"
)

func chainLink(t *testing.T, label string, seed int64) *link.Link {
	t.Helper()
	cfg := link.DefaultConfig()
	cfg.Label = label
	cfg.Seed = seed
	l, err := link.New(cfg, rate.NewFixed(3))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRelayChainValidation(t *testing.T) {
	l := chainLink(t, "v", 1)
	g := staticGeom(20, 10)
	if _, err := RelayChain(nil, 1, 1, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := RelayChain([]*link.Link{l}, 1, 1, nil); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := RelayChain([]*link.Link{nil}, 1, 1, []GeometryFunc{g}); err == nil {
		t.Fatal("nil link accepted")
	}
	if _, err := RelayChain([]*link.Link{l}, 0, 1, []GeometryFunc{g}); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := RelayChain([]*link.Link{l}, 1, 0, []GeometryFunc{g}); err == nil {
		t.Fatal("zero deadline accepted")
	}
}

func TestSingleHopChainMatchesDirectTransfer(t *testing.T) {
	// Identical label+seed → identical channel realization, so the only
	// differences are the transfer mechanics.
	const batch = 6_000_000
	l1 := chainLink(t, "chain-src", 5)
	res, err := RelayChain([]*link.Link{l1}, batch, 120, []GeometryFunc{staticGeom(20, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.CompletionS, 1) || res.DeliveredBytes < batch {
		t.Fatalf("single hop incomplete: %+v", res)
	}
	l2 := chainLink(t, "chain-src", 5)
	direct, err := TransferBatch(l2, BatchConfig{Bytes: batch, DeadlineS: 120, Reliable: true},
		staticGeom(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.CompletionS / direct.CompletionS
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("single-hop chain %.2f s vs direct %.2f s", res.CompletionS, direct.CompletionS)
	}
}

// TestTwoHopHalvesThroughput reproduces the related-work observation the
// paper cites: a store-and-forward relay on a shared channel delivers
// about half the single-hop throughput.
func TestTwoHopHalvesThroughput(t *testing.T) {
	const batch = 6_000_000
	oneHop, err := RelayChain(
		[]*link.Link{chainLink(t, "chain-src", 5)},
		batch, 240, []GeometryFunc{staticGeom(20, 10)})
	if err != nil {
		t.Fatal(err)
	}
	twoHop, err := RelayChain(
		[]*link.Link{chainLink(t, "chain-src", 5), chainLink(t, "chain-fwd", 6)},
		batch, 480,
		[]GeometryFunc{staticGeom(20, 10), staticGeom(20, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(twoHop.CompletionS, 1) {
		t.Fatalf("two-hop chain never finished: %+v", twoHop)
	}
	ratio := twoHop.CompletionS / oneHop.CompletionS
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("two-hop slowdown = %.2f×, want ≈2× (one %.1f s, two %.1f s)",
			ratio, oneHop.CompletionS, twoHop.CompletionS)
	}
	// Conservation: the relay forwarded what it received.
	if twoHop.PerHopDelivered[0] < int64(batch) || twoHop.DeliveredBytes < int64(batch) {
		t.Fatalf("per-hop accounting: %+v", twoHop)
	}
}

func TestChainDeadline(t *testing.T) {
	// A chain with a hopeless far hop cannot finish.
	res, err := RelayChain(
		[]*link.Link{chainLink(t, "ok", 7), chainLink(t, "dead", 8)},
		5_000_000, 5,
		[]GeometryFunc{staticGeom(20, 10), staticGeom(400, 90)})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.CompletionS, 1) {
		t.Fatalf("hopeless chain finished in %v", res.CompletionS)
	}
	if res.DeliveredBytes >= 5_000_000 {
		t.Fatal("delivered everything over a dead hop")
	}
}
