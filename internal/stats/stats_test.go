package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	// Undefined summaries are NaN, never a silent zero — mirroring the
	// ErrNoData contract of the error-returning summaries.
	if !math.IsNaN(Mean(nil)) {
		t.Fatalf("Mean(nil) = %v, want NaN", Mean(nil))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatalf("Variance(singleton) = %v, want NaN", Variance([]float64{1}))
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Fatalf("StdDev(nil) = %v, want NaN", StdDev(nil))
	}
	if v := Variance([]float64{3, 3}); v != 0 {
		t.Fatalf("Variance of identical pair = %v, want 0", v)
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	med, err := Median(xs)
	if err != nil || med != 2.5 {
		t.Fatalf("Median = %v err %v", med, err)
	}
	q, _ := Quantile(xs, 0)
	if q != 1 {
		t.Fatalf("Q0 = %v", q)
	}
	q, _ = Quantile(xs, 1)
	if q != 4 {
		t.Fatalf("Q1.0 = %v", q)
	}
	q, _ = Quantile(xs, 0.25)
	if q != 1.75 {
		t.Fatalf("Q0.25 = %v, want 1.75", q)
	}
	if _, err := Median(nil); err != ErrNoData {
		t.Fatalf("empty median err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q accepted")
	}
	if !math.IsNaN(MustMedian(nil)) {
		t.Fatal("MustMedian(nil) should be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	// One clear high outlier.
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	b, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 8 || b.Min != 10 || b.Max != 100 {
		t.Fatalf("summary extremes: %+v", b)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v", b.Outliers)
	}
	if b.WhiskerHigh != 16 {
		t.Fatalf("whisker high = %v, want 16", b.WhiskerHigh)
	}
	if b.Median <= b.Q1 || b.Median >= b.Q3 {
		t.Fatalf("quartile ordering: %+v", b)
	}
	if _, err := Summarize(nil); err != ErrNoData {
		t.Fatal("empty summarize should fail")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept+7) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("degenerate abscissa accepted")
	}
}

func TestFitLog2RecoversPaperModel(t *testing.T) {
	// The airplane fit from the paper: s(d) = −5.56·log2(d) + 49 (Mb/s).
	ds := []float64{20, 40, 60, 80, 120, 160, 240, 320}
	ys := make([]float64, len(ds))
	for i, d := range ds {
		ys[i] = -5.56*math.Log2(d) + 49
	}
	fit, err := FitLog2(ds, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A+5.56) > 1e-9 || math.Abs(fit.B-49) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if got := fit.Eval(80); math.Abs(got-(-5.56*math.Log2(80)+49)) > 1e-9 {
		t.Fatalf("Eval(80) = %v", got)
	}
	if _, err := FitLog2([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("non-positive distance accepted")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 1, 2, 9, 10, 11}
	h := Histogram(xs, 0, 10, 5)
	if len(h) != 5 {
		t.Fatalf("bins = %d", len(h))
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram loses samples: %v", h)
	}
	if Histogram(xs, 0, 10, 0) != nil || Histogram(xs, 5, 5, 3) != nil {
		t.Fatal("degenerate histogram accepted")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	s1 := NewRNG(42).Substream(42, "channel")
	s2 := NewRNG(42).Substream(42, "channel")
	s3 := NewRNG(42).Substream(42, "mac")
	if s1.Float64() != s2.Float64() {
		t.Fatal("substreams with same label diverged")
	}
	if v1, v3 := NewRNG(42).Substream(42, "channel").Float64(), s3.Float64(); v1 == v3 {
		t.Fatal("different labels should produce different streams")
	}
}

func TestRNGDistributions(t *testing.T) {
	g := NewRNG(7)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.Exponential(0.5)
	}
	if mean := sum / float64(n); math.Abs(mean-2) > 0.1 {
		t.Fatalf("exp(0.5) mean = %v, want ≈2", mean)
	}
	if !math.IsInf(g.Exponential(0), 1) {
		t.Fatal("rate 0 should be +Inf")
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += g.Normal(3, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.1 {
		t.Fatalf("normal mean = %v", mean)
	}
	// Rician with zero scatter is the LoS amplitude exactly.
	if v := g.Rician(5, 0); v != 5 {
		t.Fatalf("Rician(5,0) = %v", v)
	}
	count := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.25) {
			count++
		}
	}
	if p := float64(count) / float64(n); math.Abs(p-0.25) > 0.02 {
		t.Fatalf("Bernoulli(0.25) frequency = %v", p)
	}
}

func TestRicianMeanGrowsWithK(t *testing.T) {
	g := NewRNG(11)
	n := 5000
	var loK, hiK float64
	for i := 0; i < n; i++ {
		loK += g.Rician(1, 1)
		hiK += g.Rician(4, 1)
	}
	if loK/float64(n) >= hiK/float64(n) {
		t.Fatal("higher LoS amplitude should raise the mean envelope")
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	g := NewRNG(3)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = g.Normal(0, 10)
	}
	f := func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, _ := Quantile(xs, qa)
		vb, _ := Quantile(xs, qb)
		return va <= vb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FitLinear on exactly-linear data recovers slope/intercept.
func TestFitLinearProperty(t *testing.T) {
	f := func(m, c int8) bool {
		slope, icept := float64(m), float64(c)
		xs := []float64{0, 1, 2, 3, 7}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + icept
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 1e-9 && math.Abs(fit.Intercept-icept) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	g := NewRNG(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = g.Normal(10, 2)
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 500, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	med := MustMedian(xs)
	if !(lo <= med && med <= hi) {
		t.Fatalf("CI [%v, %v] excludes the sample median %v", lo, hi, med)
	}
	// The CI tightens with sample size.
	small := xs[:20]
	lo2, hi2, err := BootstrapCI(small, 0.95, 500, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 <= hi-lo {
		t.Fatalf("smaller sample should give a wider CI: %v vs %v", hi2-lo2, hi-lo)
	}
	// Validation.
	if _, _, err := BootstrapCI(nil, 0.95, 100, NewRNG(1)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := BootstrapCI(xs, 1.5, 100, NewRNG(1)); err == nil {
		t.Fatal("bad confidence accepted")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 5, NewRNG(1)); err == nil {
		t.Fatal("too few iterations accepted")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 100, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
