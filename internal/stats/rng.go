package stats

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the simulator needs and a
// deterministic substream scheme: every experiment derives named substreams
// from a root seed so adding a new consumer of randomness never perturbs
// the draws seen by existing ones.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded deterministically.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Substream derives an independent deterministic RNG from this one's seed
// space using a SplitMix64 mix of the seed and the label hash. The parent's
// state is not consumed.
func (g *RNG) Substream(seed int64, label string) *RNG {
	h := uint64(seed)
	for _, c := range label {
		h = (h ^ uint64(c)) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	return NewRNG(int64(splitmix64(h)))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, std float64) float64 { return mean + std*g.r.NormFloat64() }

// Exponential returns an exponential draw with the given rate λ (mean 1/λ).
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return g.r.ExpFloat64() / rate
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Rician returns a draw of a Rician-distributed envelope with line-of-sight
// amplitude nu and scatter sigma. Aerial LoS links are classically Rician;
// the K-factor is nu²/(2σ²). Implemented as |nu + X + iY| with X,Y ~
// N(0,σ²).
func (g *RNG) Rician(nu, sigma float64) float64 {
	x := nu + sigma*g.r.NormFloat64()
	y := sigma * g.r.NormFloat64()
	return math.Hypot(x, y)
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the n elements addressed by swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
