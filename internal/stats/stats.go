// Package stats implements the descriptive statistics and model fitting the
// reproduction needs: medians and quartile summaries for the paper's
// boxplots (Figs 5–7), least-squares fits of the throughput-vs-distance law
// s(d) = a·log2(d) + b with the coefficient of determination R² reported in
// Section 4, and deterministic random-number substreams so every experiment
// is exactly repeatable.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by summaries that require at least one sample.
var ErrNoData = errors.New("stats: no data")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice. The
// NaN mirrors ErrNoData from the error-returning summaries (Quantile,
// Median, Summarize): an absent mean must not masquerade as a measured
// zero. Renderers turn it into an empty cell or "n/a".
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or NaN for n < 2 —
// the sample variance is undefined there, and a silent 0 would read as "no
// spread" (see Mean for the contract).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs, or NaN for n < 2
// (see Variance).
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the convention of R and
// NumPy, and of Matlab's boxplot whiskers' base quartiles).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MustMedian is Median for callers that have already checked len(xs) > 0.
// It returns NaN on empty input instead of panicking.
func MustMedian(xs []float64) float64 {
	m, err := Median(xs)
	if err != nil {
		return math.NaN()
	}
	return m
}

// Boxplot is the five-number summary plus outliers, matching what the
// paper's Matlab boxplots display: median, quartile box, whiskers at the
// most extreme samples within 1.5×IQR of the box, and outliers beyond.
type Boxplot struct {
	N           int
	Min, Max    float64 // extreme samples (including outliers)
	Q1, Median  float64
	Q3          float64
	WhiskerLow  float64 // lowest sample ≥ Q1 − 1.5·IQR
	WhiskerHigh float64 // highest sample ≤ Q3 + 1.5·IQR
	Outliers    []float64
}

// IQR returns the interquartile range Q3 − Q1.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// Summarize computes the Boxplot summary of xs.
func Summarize(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrNoData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q1, _ := Quantile(sorted, 0.25)
	med, _ := Quantile(sorted, 0.5)
	q3, _ := Quantile(sorted, 0.75)
	iqr := q3 - q1
	loFence := q1 - 1.5*iqr
	hiFence := q3 + 1.5*iqr
	b := Boxplot{
		N: len(sorted), Min: sorted[0], Max: sorted[len(sorted)-1],
		Q1: q1, Median: med, Q3: q3,
		WhiskerLow: q1, WhiskerHigh: q3,
	}
	first := true
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if first {
			b.WhiskerLow = x
			first = false
		}
		b.WhiskerHigh = x
	}
	return b, nil
}

// LinearFit is a least-squares straight-line fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64 // coefficient of determination
	N                int
}

// FitLinear performs ordinary least squares of ys on xs.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched lengths")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrNoData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate abscissa")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// LogFit is the paper's throughput model s(d) = A·log2(d) + B (Section 4):
// a straight line in log2-distance.
type LogFit struct {
	A, B float64 // s(d) = A·log2(d) + B, same units as the fitted ys
	R2   float64
	N    int
}

// Eval evaluates the fitted model at distance d (d must be > 0).
func (f LogFit) Eval(d float64) float64 { return f.A*math.Log2(d) + f.B }

// FitLog2 fits ys ≈ A·log2(xs) + B by least squares. All xs must be > 0.
func FitLog2(xs, ys []float64) (LogFit, error) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogFit{}, errors.New("stats: non-positive distance in log2 fit")
		}
		lx[i] = math.Log2(x)
	}
	lin, err := FitLinear(lx, ys)
	if err != nil {
		return LogFit{}, err
	}
	return LogFit{A: lin.Slope, B: lin.Intercept, R2: lin.R2, N: lin.N}, nil
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]; samples
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}

// BootstrapCI estimates a confidence interval for the median of xs by
// resampling with replacement (percentile bootstrap). conf is the
// confidence level in (0, 1), e.g. 0.95; iters resamples are drawn from
// rng. Measurement studies report medians of noisy link samples — the CI
// says how much a reported median can be trusted.
func BootstrapCI(xs []float64, conf float64, iters int, rng *RNG) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoData
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, errors.New("stats: confidence outside (0,1)")
	}
	if iters < 10 {
		return 0, 0, errors.New("stats: need ≥10 bootstrap iterations")
	}
	if rng == nil {
		return 0, 0, errors.New("stats: nil rng")
	}
	meds := make([]float64, iters)
	resample := make([]float64, len(xs))
	for i := 0; i < iters; i++ {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		meds[i] = MustMedian(resample)
	}
	alpha := (1 - conf) / 2
	lo, err = Quantile(meds, alpha)
	if err != nil {
		return 0, 0, err
	}
	hi, err = Quantile(meds, 1-alpha)
	return lo, hi, err
}
