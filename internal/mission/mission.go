// Package mission models the sensing side of the paper's search-and-rescue
// scenario (Section 2.2 and footnotes 1, 3, 4): a UAV scans a sector of
// area Asector by taking pictures, each covering Aimage computed from the
// camera's field of view at the flight altitude; the batch to deliver is
// Mdata = Asector/Aimage · Mimage.
package mission

import (
	"fmt"
	"math"
)

// Camera describes the on-board imager. The paper's reference camera: a
// 1280×720 sensor with aspect ratio k = 16/9 and a 65° lens.
type Camera struct {
	// WidthPx, HeightPx are the sensor resolution.
	WidthPx, HeightPx int
	// LensAngleDeg is the diagonal lens angle (the paper: 65°).
	LensAngleDeg float64
	// BytesPerPixel of the stored image before compression (24-bit RGB = 3).
	BytesPerPixel float64
	// CompressionRatio is stored size / raw size (JPG100 ≈ 0.14 for the
	// paper's 0.39 MB frames at 1280×720).
	CompressionRatio float64
}

// DefaultCamera is the paper's reference camera (footnote 3).
func DefaultCamera() Camera {
	return Camera{
		WidthPx:          1280,
		HeightPx:         720,
		LensAngleDeg:     65,
		BytesPerPixel:    3,
		CompressionRatio: 0.141,
	}
}

// Validate reports the first implausible field.
func (c Camera) Validate() error {
	switch {
	case c.WidthPx <= 0 || c.HeightPx <= 0:
		return fmt.Errorf("mission: sensor %dx%d must be positive", c.WidthPx, c.HeightPx)
	case c.LensAngleDeg <= 0 || c.LensAngleDeg >= 180:
		return fmt.Errorf("mission: lens angle %v outside (0,180)", c.LensAngleDeg)
	case c.BytesPerPixel <= 0:
		return fmt.Errorf("mission: bytes/pixel %v must be positive", c.BytesPerPixel)
	case c.CompressionRatio <= 0 || c.CompressionRatio > 1:
		return fmt.Errorf("mission: compression ratio %v outside (0,1]", c.CompressionRatio)
	}
	return nil
}

// AspectRatio returns k = width/height.
func (c Camera) AspectRatio() float64 {
	return float64(c.WidthPx) / float64(c.HeightPx)
}

// FOVMeters returns the diagonal ground field of view when flying at the
// given altitude: FOV = 2·h·tan(lens/2). At 70 m with a 65° lens this is
// the paper's 90 m; at 10 m it is 12.7 m.
func (c Camera) FOVMeters(altitudeM float64) float64 {
	return 2 * altitudeM * math.Tan(c.LensAngleDeg/2*math.Pi/180)
}

// ImageAreaM2 returns the ground area covered by one picture at the given
// altitude, using the paper's footnote-1 geometry:
// Aimage = (k·FOV/√(k²+1)) · (FOV/√(k²+1)).
func (c Camera) ImageAreaM2(altitudeM float64) float64 {
	k := c.AspectRatio()
	fov := c.FOVMeters(altitudeM)
	den := math.Sqrt(k*k + 1)
	return (k * fov / den) * (fov / den)
}

// ImageBytes returns the stored size of one picture.
func (c Camera) ImageBytes() float64 {
	return float64(c.WidthPx) * float64(c.HeightPx) * c.BytesPerPixel * c.CompressionRatio
}

// Sector is the area one UAV is exclusively responsible for scanning.
type Sector struct {
	// WidthM and HeightM of the rectangular sector.
	WidthM, HeightM float64
}

// AreaM2 returns the sector area.
func (s Sector) AreaM2() float64 { return s.WidthM * s.HeightM }

// Validate reports degenerate sectors.
func (s Sector) Validate() error {
	if s.WidthM <= 0 || s.HeightM <= 0 {
		return fmt.Errorf("mission: sector %vx%v must be positive", s.WidthM, s.HeightM)
	}
	return nil
}

// Plan is one sensing assignment: a sector scanned from an altitude with a
// camera.
type Plan struct {
	Sector    Sector
	Camera    Camera
	AltitudeM float64
}

// Validate reports the first implausible field.
func (p Plan) Validate() error {
	if err := p.Sector.Validate(); err != nil {
		return err
	}
	if err := p.Camera.Validate(); err != nil {
		return err
	}
	if p.AltitudeM <= 0 {
		return fmt.Errorf("mission: altitude %v must be positive", p.AltitudeM)
	}
	return nil
}

// NumImages returns the pictures needed to cover the sector:
// ⌈Asector/Aimage⌉ in practice; the paper uses the real-valued ratio, which
// Images preserves for exact cross-checks.
func (p Plan) NumImages() float64 {
	return p.Sector.AreaM2() / p.Camera.ImageAreaM2(p.AltitudeM)
}

// DataBytes returns the total batch size Mdata the UAV must deliver.
func (p Plan) DataBytes() float64 {
	return p.NumImages() * p.Camera.ImageBytes()
}

// AirplanePlan is the paper's airplane scenario (footnote 3): a
// 500 m × 500 m sector scanned from 70 m, yielding Mdata ≈ 28 MB.
func AirplanePlan() Plan {
	return Plan{
		Sector:    Sector{WidthM: 500, HeightM: 500},
		Camera:    DefaultCamera(),
		AltitudeM: 70,
	}
}

// QuadrocopterPlan is the paper's quadrocopter scenario (footnote 4): a
// 100 m × 100 m sector scanned from 10 m, yielding Mdata ≈ 56.2 MB.
func QuadrocopterPlan() Plan {
	return Plan{
		Sector:    Sector{WidthM: 100, HeightM: 100},
		Camera:    DefaultCamera(),
		AltitudeM: 10,
	}
}

// LawnmowerWaypoints returns a boustrophedon scan path over the sector at
// the plan altitude with the given track spacing (0 → derive from image
// footprint width). The path starts at the sector's south-west corner.
func (p Plan) LawnmowerWaypoints(spacingM float64) [][3]float64 {
	if spacingM <= 0 {
		k := p.Camera.AspectRatio()
		fov := p.Camera.FOVMeters(p.AltitudeM)
		spacingM = fov / math.Sqrt(k*k+1) // footprint short side
	}
	if spacingM <= 0 {
		return nil
	}
	var wps [][3]float64
	lanes := int(math.Ceil(p.Sector.WidthM/spacingM)) + 1
	for i := 0; i < lanes; i++ {
		x := math.Min(float64(i)*spacingM, p.Sector.WidthM)
		if i%2 == 0 {
			wps = append(wps, [3]float64{x, 0, p.AltitudeM}, [3]float64{x, p.Sector.HeightM, p.AltitudeM})
		} else {
			wps = append(wps, [3]float64{x, p.Sector.HeightM, p.AltitudeM}, [3]float64{x, 0, p.AltitudeM})
		}
	}
	return wps
}
