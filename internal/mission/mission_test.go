package mission

import (
	"math"
	"testing"
)

func TestDefaultCameraGeometryMatchesPaper(t *testing.T) {
	c := DefaultCamera()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Footnote 3: at 70 m altitude with a 65° lens, FOV = 90 m and
	// Aimage = 3432 m².
	if fov := c.FOVMeters(70); math.Abs(fov-90) > 1.5 {
		t.Fatalf("FOV at 70 m = %v, want ≈90", fov)
	}
	if a := c.ImageAreaM2(70); math.Abs(a-3432)/3432 > 0.03 {
		t.Fatalf("Aimage at 70 m = %v, want ≈3432", a)
	}
	// Footnote 4: at 10 m altitude, FOV = 12.7 m and Aimage = 69.4 m².
	if fov := c.FOVMeters(10); math.Abs(fov-12.7) > 0.3 {
		t.Fatalf("FOV at 10 m = %v, want ≈12.7", fov)
	}
	if a := c.ImageAreaM2(10); math.Abs(a-69.4)/69.4 > 0.03 {
		t.Fatalf("Aimage at 10 m = %v, want ≈69.4", a)
	}
	// Mimage = 0.39 MB at JPG100.
	if b := c.ImageBytes(); math.Abs(b-0.39e6)/0.39e6 > 0.01 {
		t.Fatalf("image bytes = %v, want ≈0.39 MB", b)
	}
	if k := c.AspectRatio(); math.Abs(k-16.0/9.0) > 1e-9 {
		t.Fatalf("aspect ratio = %v", k)
	}
}

func TestAirplanePlanMatchesPaperMdata(t *testing.T) {
	p := AirplanePlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Footnote 3: Asector = 0.25 km² → Mdata = 28 MB.
	if a := p.Sector.AreaM2(); a != 250000 {
		t.Fatalf("sector area = %v", a)
	}
	md := p.DataBytes()
	if math.Abs(md-28e6)/28e6 > 0.03 {
		t.Fatalf("airplane Mdata = %.2f MB, want ≈28 MB", md/1e6)
	}
}

func TestQuadrocopterPlanMatchesPaperMdata(t *testing.T) {
	p := QuadrocopterPlan()
	// Footnote 4: Asector = 0.01 km² → Mdata = 56.2 MB.
	md := p.DataBytes()
	if math.Abs(md-56.2e6)/56.2e6 > 0.03 {
		t.Fatalf("quadrocopter Mdata = %.2f MB, want ≈56.2 MB", md/1e6)
	}
	// The low-altitude scan needs far more pictures than the airplane's.
	if QuadrocopterPlan().NumImages() <= AirplanePlan().NumImages() {
		t.Fatal("quad scan should need more images")
	}
}

func TestValidationRejectsBadInputs(t *testing.T) {
	cams := []func(*Camera){
		func(c *Camera) { c.WidthPx = 0 },
		func(c *Camera) { c.HeightPx = -1 },
		func(c *Camera) { c.LensAngleDeg = 0 },
		func(c *Camera) { c.LensAngleDeg = 190 },
		func(c *Camera) { c.BytesPerPixel = 0 },
		func(c *Camera) { c.CompressionRatio = 0 },
		func(c *Camera) { c.CompressionRatio = 1.5 },
	}
	for i, mutate := range cams {
		c := DefaultCamera()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("camera case %d accepted", i)
		}
	}
	if err := (Sector{WidthM: 0, HeightM: 5}).Validate(); err == nil {
		t.Fatal("degenerate sector accepted")
	}
	p := AirplanePlan()
	p.AltitudeM = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero altitude accepted")
	}
}

func TestMdataScalesWithSectorAndAltitude(t *testing.T) {
	base := AirplanePlan()
	bigger := base
	bigger.Sector = Sector{WidthM: 1000, HeightM: 500}
	if bigger.DataBytes() <= base.DataBytes() {
		t.Fatal("bigger sector should need more data")
	}
	lower := base
	lower.AltitudeM = 35
	// Halving altitude quarters the image footprint → 4× the images.
	ratio := lower.DataBytes() / base.DataBytes()
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("half-altitude data ratio = %v, want 4", ratio)
	}
}

func TestLawnmowerCoversSector(t *testing.T) {
	p := QuadrocopterPlan()
	wps := p.LawnmowerWaypoints(0)
	if len(wps) < 4 {
		t.Fatalf("only %d waypoints", len(wps))
	}
	// All waypoints inside the sector at plan altitude; lanes span the
	// full width.
	maxX := 0.0
	for _, wp := range wps {
		if wp[0] < 0 || wp[0] > p.Sector.WidthM || wp[1] < 0 || wp[1] > p.Sector.HeightM {
			t.Fatalf("waypoint outside sector: %v", wp)
		}
		if wp[2] != p.AltitudeM {
			t.Fatalf("waypoint altitude %v", wp[2])
		}
		maxX = math.Max(maxX, wp[0])
	}
	if maxX < p.Sector.WidthM-1 {
		t.Fatalf("lanes do not reach far edge: max x = %v", maxX)
	}
	// Lane spacing no wider than the footprint short side (full coverage).
	k := p.Camera.AspectRatio()
	shortSide := p.Camera.FOVMeters(p.AltitudeM) / math.Sqrt(k*k+1)
	for i := 2; i < len(wps); i += 2 {
		gap := wps[i][0] - wps[i-2][0]
		if gap > shortSide+1e-9 {
			t.Fatalf("lane gap %v exceeds footprint %v", gap, shortSide)
		}
	}
	// Degenerate spacing rejected.
	if got := (Plan{Sector: Sector{WidthM: 10, HeightM: 10}, Camera: DefaultCamera(), AltitudeM: 10}).LawnmowerWaypoints(-1); got == nil {
		t.Fatal("negative spacing should fall back to footprint, not nil")
	}
}
