package rate

import (
	"github.com/nowlater/nowlater/internal/phy"
)

// ARFParams tunes the Auto Rate Fallback policy.
type ARFParams struct {
	// UpThreshold is the consecutive-success count that triggers a rate
	// increase (classic ARF: 10).
	UpThreshold int
	// DownThreshold is the consecutive-failure count that triggers a rate
	// decrease (classic ARF: 2).
	DownThreshold int
	// ProbationProbes is how many exchanges a freshly raised rate must
	// survive before it counts as established; an immediate failure drops
	// straight back (ARF's probation rule).
	ProbationProbes int
}

// DefaultARFParams mirrors the classic algorithm.
func DefaultARFParams() ARFParams {
	return ARFParams{UpThreshold: 10, DownThreshold: 2, ProbationProbes: 1}
}

// ARF is the classic Auto Rate Fallback policy: climb after a streak of
// successes, fall after consecutive failures. Vendor drivers of the
// paper's era shipped ARF descendants, and the algorithm's well-known
// pathology — oscillating against fast fading because success streaks in
// fade peaks push the rate beyond what the channel median supports — is
// one candidate explanation for the paper's observation that aerial
// auto-rate performs so far below the best fixed MCS.
type ARF struct {
	p   ARFParams
	cur phy.MCS

	successStreak int
	failStreak    int
	probation     int
}

// NewARF builds the policy starting at the most robust rate.
func NewARF(p ARFParams) *ARF {
	if p.UpThreshold <= 0 {
		p.UpThreshold = 10
	}
	if p.DownThreshold <= 0 {
		p.DownThreshold = 2
	}
	return &ARF{p: p}
}

// Name implements Policy.
func (a *ARF) Name() string { return "arf" }

// Reset implements Policy.
func (a *ARF) Reset() {
	a.cur = 0
	a.successStreak, a.failStreak, a.probation = 0, 0, 0
}

// Select implements Policy. ARF only walks the single-stream ladder (the
// vendor drivers of the era did not probe into SDM on their own).
func (a *ARF) Select(float64) (phy.MCS, bool) { return a.cur, stbcFor(a.cur) }

// Observe implements Policy: a majority-delivered exchange counts as a
// success, anything else as a failure.
func (a *ARF) Observe(_ float64, mcs phy.MCS, attempted, delivered int) {
	if attempted <= 0 || mcs != a.cur {
		return
	}
	success := delivered*2 > attempted
	if success {
		a.failStreak = 0
		a.successStreak++
		if a.probation > 0 {
			a.probation--
		}
		if a.successStreak >= a.p.UpThreshold && a.cur < 7 {
			a.cur++
			a.successStreak = 0
			a.probation = a.p.ProbationProbes
		}
		return
	}
	a.successStreak = 0
	a.failStreak++
	// Probation: a failure right after climbing drops back immediately.
	if a.probation > 0 || a.failStreak >= a.p.DownThreshold {
		if a.cur > 0 {
			a.cur--
		}
		a.failStreak = 0
		a.probation = 0
	}
}

// Current exposes the ladder position (for tests and traces).
func (a *ARF) Current() phy.MCS { return a.cur }
