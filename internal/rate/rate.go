// Package rate implements the PHY rate-control policies the paper compares
// in Fig. 6: fixed modulation-and-coding schemes (with STBC on the
// single-stream indices, as the Ralink driver applies it) against a
// sampling auto-rate algorithm in the style of Minstrel, the rate control
// the measured driver family uses.
//
// The paper's finding — "a strong component of our losses is caused by the
// disability of the auto-rate algorithm to adapt to the highly dynamic
// aerial channel" — needs no special pleading in this model: Minstrel's
// EWMA statistics are refreshed on a 100 ms interval while the aerial
// channel decorrelates in tens of milliseconds once the platforms move, so
// the algorithm keeps serving decisions computed for a channel that no
// longer exists.
package rate

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/stats"
)

// Policy selects the MCS for each A-MPDU exchange and learns from the
// outcome.
type Policy interface {
	// Select returns the MCS and whether to apply STBC for the next PPDU.
	Select(now float64) (phy.MCS, bool)
	// Observe feeds back one exchange: subframes attempted and delivered.
	Observe(now float64, mcs phy.MCS, attempted, delivered int)
	// Name identifies the policy in traces and experiment output.
	Name() string
	// Reset clears learned state.
	Reset()
}

// stbcFor reports whether the driver applies STBC at an MCS: available for
// single-stream indices on a 2-antenna transmitter (the paper observes it
// on MCS1–3); SDM indices cannot use it.
func stbcFor(m phy.MCS) bool { return m.Streams() == 1 }

// Fixed always transmits at one MCS, the policy of the paper's "fixed PHY
// rate" experiments.
type Fixed struct {
	MCS  phy.MCS
	STBC bool
}

// NewFixed builds a fixed policy; STBC follows driver behaviour for the
// index.
func NewFixed(m phy.MCS) *Fixed { return &Fixed{MCS: m, STBC: stbcFor(m)} }

// Select implements Policy.
func (f *Fixed) Select(float64) (phy.MCS, bool) { return f.MCS, f.STBC }

// Observe implements Policy (fixed rate learns nothing).
func (f *Fixed) Observe(float64, phy.MCS, int, int) {}

// Name implements Policy.
func (f *Fixed) Name() string { return fmt.Sprintf("fixed-mcs%d", int(f.MCS)) }

// Reset implements Policy.
func (f *Fixed) Reset() {}

// MinstrelParams tunes the sampling auto-rate algorithm.
type MinstrelParams struct {
	// UpdateInterval is how often best-rate decisions are recomputed from
	// the EWMA statistics (Linux Minstrel: 100 ms).
	UpdateInterval float64
	// EWMAWeight is the weight of history when folding a new interval's
	// success ratio into the long-run estimate (Linux: 0.75).
	EWMAWeight float64
	// SampleFraction is the share of transmissions spent probing random
	// other rates (Linux: ~10%).
	SampleFraction float64
	// InitialProb seeds unprobed rates optimistically so they get tried.
	InitialProb float64
}

// DefaultMinstrelParams mirrors the Linux defaults.
func DefaultMinstrelParams() MinstrelParams {
	return MinstrelParams{
		UpdateInterval: 0.1,
		EWMAWeight:     0.75,
		SampleFraction: 0.10,
		InitialProb:    0.5,
	}
}

// Minstrel is the sampling auto-rate policy.
type Minstrel struct {
	p   MinstrelParams
	cfg phy.Config
	rng *stats.RNG

	// Per-MCS statistics.
	prob      [phy.NumMCS]float64 // EWMA delivery probability
	attempted [phy.NumMCS]int     // this interval
	delivered [phy.NumMCS]int     // this interval

	best       phy.MCS
	lastUpdate float64
	started    bool
}

// NewMinstrel builds the auto-rate policy.
func NewMinstrel(p MinstrelParams, cfg phy.Config, rng *stats.RNG) *Minstrel {
	m := &Minstrel{p: p, cfg: cfg, rng: rng}
	m.Reset()
	return m
}

// Name implements Policy.
func (m *Minstrel) Name() string { return "minstrel" }

// Reset implements Policy.
func (m *Minstrel) Reset() {
	for i := range m.prob {
		m.prob[i] = m.p.InitialProb
		m.attempted[i] = 0
		m.delivered[i] = 0
	}
	m.best = 0
	m.started = false
	m.lastUpdate = 0
}

// Select implements Policy: mostly the current best rate, sometimes a
// random probe.
func (m *Minstrel) Select(now float64) (phy.MCS, bool) {
	m.maybeUpdate(now)
	if m.rng.Float64() < m.p.SampleFraction {
		probe := phy.MCS(m.rng.Intn(phy.NumMCS))
		return probe, stbcFor(probe)
	}
	return m.best, stbcFor(m.best)
}

// Observe implements Policy.
func (m *Minstrel) Observe(now float64, mcs phy.MCS, attempted, delivered int) {
	if !mcs.Valid() || attempted <= 0 {
		return
	}
	m.attempted[mcs] += attempted
	m.delivered[mcs] += delivered
	m.maybeUpdate(now)
}

// maybeUpdate folds the interval statistics into the EWMA and re-picks the
// best rate once per update interval. This delay is precisely what breaks
// the algorithm on a fast-varying aerial channel.
func (m *Minstrel) maybeUpdate(now float64) {
	if !m.started {
		m.started = true
		m.lastUpdate = now
		return
	}
	if now-m.lastUpdate < m.p.UpdateInterval {
		return
	}
	m.lastUpdate = now
	for i := range m.prob {
		if m.attempted[i] > 0 {
			ratio := float64(m.delivered[i]) / float64(m.attempted[i])
			m.prob[i] = m.p.EWMAWeight*m.prob[i] + (1-m.p.EWMAWeight)*ratio
		}
		m.attempted[i] = 0
		m.delivered[i] = 0
	}
	m.best = m.argmaxThroughput()
}

// argmaxThroughput returns the MCS with the highest expected goodput
// prob·rate, Minstrel's decision metric.
func (m *Minstrel) argmaxThroughput() phy.MCS {
	best := phy.MCS(0)
	bestTp := -1.0
	for i := phy.MCS(0); i < phy.NumMCS; i++ {
		tp := m.prob[i] * m.cfg.RateBps(i)
		if tp > bestTp {
			bestTp = tp
			best = i
		}
	}
	return best
}

// Best exposes the current best rate (for tests and traces).
func (m *Minstrel) Best() phy.MCS { return m.best }

// Prob exposes the EWMA delivery probability of an MCS.
func (m *Minstrel) Prob(mcs phy.MCS) float64 {
	if !mcs.Valid() {
		return 0
	}
	return m.prob[mcs]
}
