package rate

import (
	"github.com/nowlater/nowlater/internal/phy"
)

// SNRAware is an optional Policy extension: a policy that can exploit the
// receiver's instantaneous channel state (a genie no real transmitter has;
// links call it when available, making the policy an upper bound).
type SNRAware interface {
	Policy
	// SelectWithSNR picks the MCS given the actual instantaneous SNR and
	// K-factor of the upcoming transmission.
	SelectWithSNR(now, snrDB, kFactorDB float64) (phy.MCS, bool)
}

// Oracle is the omniscient rate policy: for each PPDU it computes the
// expected goodput rate·(1−PER) at the true instantaneous SNR and picks
// the maximizer. It upper-bounds every realizable rate control and
// quantifies how much of the Fig 6 gap is algorithmic (Minstrel/ARF
// mis-adaptation) versus fundamental (channel variance).
type Oracle struct {
	em       *phy.ErrorModel
	mpduBits int
}

// NewOracle builds the genie for an error model; mpduBits is the subframe
// length used in the goodput estimate (≤0 selects the calibration default).
func NewOracle(em *phy.ErrorModel, mpduBits int) *Oracle {
	if mpduBits <= 0 {
		mpduBits = 1568 * 8
	}
	return &Oracle{em: em, mpduBits: mpduBits}
}

// Name implements Policy.
func (o *Oracle) Name() string { return "oracle" }

// Reset implements Policy (stateless).
func (o *Oracle) Reset() {}

// Select implements Policy. Without channel state the oracle falls back to
// a mid-ladder guess; links that support SNRAware never call this.
func (o *Oracle) Select(float64) (phy.MCS, bool) { return 3, true }

// Observe implements Policy (the genie learns nothing).
func (o *Oracle) Observe(float64, phy.MCS, int, int) {}

// SelectWithSNR implements SNRAware.
func (o *Oracle) SelectWithSNR(_, snrDB, kFactorDB float64) (phy.MCS, bool) {
	best, bestGoodput, bestSTBC := phy.MCS(0), -1.0, true
	for m := phy.MCS(0); m < phy.NumMCS; m++ {
		stbc := stbcFor(m)
		per := o.em.SubframePER(snrDB, m, o.mpduBits, kFactorDB, stbc)
		goodput := o.em.Config.RateBps(m) * (1 - per)
		if goodput > bestGoodput {
			best, bestGoodput, bestSTBC = m, goodput, stbc
		}
	}
	return best, bestSTBC
}
