package rate

import (
	"testing"
)

func TestARFStartsRobustAndClimbs(t *testing.T) {
	a := NewARF(DefaultARFParams())
	if mcs, _ := a.Select(0); mcs != 0 {
		t.Fatalf("start MCS = %v", mcs)
	}
	// Ten successes climb one rung.
	for i := 0; i < 10; i++ {
		a.Observe(0, a.Current(), 14, 14)
	}
	if a.Current() != 1 {
		t.Fatalf("after 10 successes MCS = %v", a.Current())
	}
	// Keep feeding successes: the ladder tops out at MCS7 (single stream).
	for i := 0; i < 200; i++ {
		a.Observe(0, a.Current(), 14, 14)
	}
	if a.Current() != 7 {
		t.Fatalf("ceiling = %v, want MCS7", a.Current())
	}
	if _, stbc := a.Select(0); !stbc {
		t.Fatal("single-stream ladder should use STBC")
	}
}

func TestARFFallsAfterConsecutiveFailures(t *testing.T) {
	a := NewARF(DefaultARFParams())
	for i := 0; i < 10; i++ {
		a.Observe(0, a.Current(), 14, 14)
	}
	// Survive probation, then two failures drop a rung.
	a.Observe(0, a.Current(), 14, 14)
	a.Observe(0, a.Current(), 14, 0)
	a.Observe(0, a.Current(), 14, 0)
	if a.Current() != 0 {
		t.Fatalf("after 2 failures MCS = %v, want 0", a.Current())
	}
	// Cannot fall below 0.
	a.Observe(0, a.Current(), 14, 0)
	a.Observe(0, a.Current(), 14, 0)
	if a.Current() != 0 {
		t.Fatalf("floor broken: %v", a.Current())
	}
}

func TestARFProbationDropsImmediately(t *testing.T) {
	a := NewARF(DefaultARFParams())
	for i := 0; i < 10; i++ {
		a.Observe(0, a.Current(), 14, 14)
	}
	if a.Current() != 1 {
		t.Fatalf("setup failed: %v", a.Current())
	}
	// First exchange at the new rate fails → drop straight back.
	a.Observe(0, 1, 14, 0)
	if a.Current() != 0 {
		t.Fatalf("probation drop missing: %v", a.Current())
	}
}

func TestARFIgnoresForeignObservations(t *testing.T) {
	a := NewARF(DefaultARFParams())
	a.Observe(0, 5, 14, 0) // not the current rate
	a.Observe(0, 0, 0, 0)  // nothing attempted
	if a.Current() != 0 {
		t.Fatalf("state moved: %v", a.Current())
	}
	a.Reset()
	if a.Current() != 0 || a.Name() != "arf" {
		t.Fatal("reset/name broken")
	}
}

func TestARFOscillatesUnderAlternatingChannel(t *testing.T) {
	// A channel alternating good/bad every few exchanges keeps ARF cycling
	// instead of settling — the fast-fading pathology.
	a := NewARF(ARFParams{UpThreshold: 3, DownThreshold: 2, ProbationProbes: 1})
	changes := 0
	prev := a.Current()
	for i := 0; i < 400; i++ {
		mcs := a.Current()
		good := (i/5)%2 == 0
		delivered := 0
		if good || mcs == 0 {
			delivered = 14
		}
		a.Observe(0, mcs, 14, delivered)
		if a.Current() != prev {
			changes++
			prev = a.Current()
		}
	}
	if changes < 20 {
		t.Fatalf("ARF should thrash on an alternating channel: %d changes", changes)
	}
}

var _ Policy = (*ARF)(nil)
