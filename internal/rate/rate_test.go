package rate

import (
	"testing"

	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/stats"
)

func TestFixedPolicy(t *testing.T) {
	f := NewFixed(3)
	mcs, stbc := f.Select(0)
	if mcs != 3 || !stbc {
		t.Fatalf("fixed MCS3: got %v stbc=%v, want MCS3 with STBC", mcs, stbc)
	}
	// SDM rates cannot use STBC.
	f8 := NewFixed(8)
	if _, stbc := f8.Select(0); stbc {
		t.Fatal("MCS8 should not use STBC")
	}
	if f.Name() != "fixed-mcs3" {
		t.Fatalf("name = %q", f.Name())
	}
	f.Observe(0, 3, 10, 0) // must be a no-op
	if mcs, _ := f.Select(1); mcs != 3 {
		t.Fatal("fixed policy changed rate")
	}
}

func newMinstrel(seed int64) *Minstrel {
	return NewMinstrel(DefaultMinstrelParams(), phy.DefaultConfig(), stats.NewRNG(seed))
}

func TestMinstrelConvergesOnStaticChannel(t *testing.T) {
	// On a static channel where MCS ≤ 4 always succeed and everything above
	// always fails, Minstrel must settle on MCS4 (or the equal-rate MCS9;
	// both deliver 120 Mb/s at 40 MHz SGI — but MCS9 fails here, so MCS4).
	m := newMinstrel(1)
	now := 0.0
	for i := 0; i < 3000; i++ {
		now += 0.003
		mcs, _ := m.Select(now)
		delivered := 0
		if mcs <= 4 {
			delivered = 14
		}
		m.Observe(now, mcs, 14, delivered)
	}
	if best := m.Best(); best != 4 {
		t.Fatalf("converged on %v, want MCS4", best)
	}
	if p := m.Prob(4); p < 0.9 {
		t.Fatalf("prob(MCS4) = %v, want ≥0.9", p)
	}
	if p := m.Prob(7); p > 0.2 {
		t.Fatalf("prob(MCS7) = %v, want near 0", p)
	}
}

func TestMinstrelStatsAgeOnInterval(t *testing.T) {
	m := newMinstrel(2)
	// Feed failures at MCS0 inside one interval: prob must not move yet.
	m.Observe(0, 0, 14, 0)
	m.Observe(0.01, 0, 14, 0)
	if p := m.Prob(0); p != DefaultMinstrelParams().InitialProb {
		t.Fatalf("prob moved before interval elapsed: %v", p)
	}
	// After the interval the EWMA folds the interval ratio in.
	m.Observe(0.2, 0, 14, 0)
	if p := m.Prob(0); p >= DefaultMinstrelParams().InitialProb {
		t.Fatalf("prob did not fall after update: %v", p)
	}
}

func TestMinstrelSamplesOtherRates(t *testing.T) {
	m := newMinstrel(3)
	now := 0.0
	seen := map[phy.MCS]bool{}
	for i := 0; i < 2000; i++ {
		now += 0.003
		mcs, _ := m.Select(now)
		seen[mcs] = true
		m.Observe(now, mcs, 14, 14)
	}
	if len(seen) < 8 {
		t.Fatalf("sampling visited only %d rates", len(seen))
	}
}

func TestMinstrelReset(t *testing.T) {
	m := newMinstrel(4)
	now := 0.0
	for i := 0; i < 500; i++ {
		now += 0.003
		mcs, _ := m.Select(now)
		m.Observe(now, mcs, 14, 14)
	}
	m.Reset()
	if m.Best() != 0 {
		t.Fatalf("best after reset = %v", m.Best())
	}
	for i := phy.MCS(0); i < phy.NumMCS; i++ {
		if m.Prob(i) != DefaultMinstrelParams().InitialProb {
			t.Fatalf("prob(%v) after reset = %v", i, m.Prob(i))
		}
	}
	if m.Prob(phy.MCS(-1)) != 0 {
		t.Fatal("invalid MCS prob should be 0")
	}
}

func TestMinstrelIgnoresBogusObservations(t *testing.T) {
	m := newMinstrel(5)
	m.Observe(0, phy.MCS(-1), 14, 14)
	m.Observe(0, phy.MCS(99), 14, 14)
	m.Observe(0, 3, 0, 0)
	// No panic and no state corruption.
	if m.Prob(3) != DefaultMinstrelParams().InitialProb {
		t.Fatal("bogus observation changed state")
	}
}

func TestMinstrelLagsOnAlternatingChannel(t *testing.T) {
	// A channel that flips between good-for-MCS7 and only-good-for-MCS0
	// every 30 ms (faster than the 100 ms update interval) should leave
	// Minstrel misestimating: its selected best rate loses goodput
	// compared with an omniscient per-instant choice. This is the Fig 6
	// mechanism in miniature.
	m := newMinstrel(6)
	cfg := phy.DefaultConfig()
	now := 0.0
	var minstrelBits, oracleBits float64
	for i := 0; i < 6000; i++ {
		now += 0.003
		goodPhase := int(now/0.03)%2 == 0
		mcs, _ := m.Select(now)
		delivered := 0
		if goodPhase && mcs <= 7 {
			delivered = 14
		} else if !goodPhase && mcs == 0 {
			delivered = 14
		}
		m.Observe(now, mcs, 14, delivered)
		minstrelBits += float64(delivered) * 1500 * 8
		// Oracle: MCS7 in good phases, MCS0 in bad ones.
		if goodPhase {
			oracleBits += 14 * 1500 * 8 * cfg.RateBps(7) / cfg.RateBps(7)
		} else {
			oracleBits += 14 * 1500 * 8
		}
	}
	if minstrelBits >= oracleBits {
		t.Fatalf("minstrel should lag the oracle: %v vs %v", minstrelBits, oracleBits)
	}
}
