package fleet

import (
	"math"
	"reflect"
	"testing"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/uav"
)

// twoRelaySpecs is the reassignment scenario: relay-1 is on the scout's
// natural path, relay-2 sits behind it as the fallback receiver.
func twoRelaySpecs() []UAVSpec {
	return append(specs(), UAVSpec{
		ID: "relay-2", Platform: uav.Arducopter(), Role: Relay,
		Start: geo.Vec3{X: -60, Z: 10},
	})
}

func TestZeroFaultScheduleIsBitIdentical(t *testing.T) {
	run := func(sched *chaos.Schedule, resilient bool) Report {
		cfg := safeConfig()
		cfg.Chaos = sched
		cfg.Resilient = resilient
		m, err := New(cfg, specs())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(1800)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(nil, false)
	empty := run(&chaos.Schedule{Seed: 7}, false)
	if !reflect.DeepEqual(base, empty) {
		t.Fatalf("empty schedule perturbed the mission:\n%+v\n%+v", base, empty)
	}
	// Windows entirely after the mission's end must also change nothing —
	// inactive faults may not consume randomness.
	late := &chaos.Schedule{
		Seed:      7,
		Telemetry: []chaos.TelemetryFault{{Window: chaos.Window{StartS: 1e6, EndS: 2e6}, LossProb: 0.9}},
		Links:     []chaos.LinkFault{{Window: chaos.Window{StartS: 1e6, EndS: 2e6}, ID: chaos.Wildcard, Outage: true}},
		Vehicles:  []chaos.VehicleFault{{ID: "scout-1", AtS: 1e6}},
	}
	if got := run(late, false); !reflect.DeepEqual(base, got) {
		t.Fatalf("dormant schedule perturbed the mission:\n%+v\n%+v", base, got)
	}
}

func TestScoutIDRecordedInDeliveries(t *testing.T) {
	m, err := New(safeConfig(), specs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deliveries[0].ScoutID != "scout-1" {
		t.Fatalf("scout id missing from delivery: %+v", rep.Deliveries[0])
	}
}

func TestChaosScoutKillLosesDelivery(t *testing.T) {
	cfg := safeConfig()
	cfg.Chaos = &chaos.Schedule{Vehicles: []chaos.VehicleFault{{ID: "scout-1", AtS: 5}}}
	m, err := New(cfg, specs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Deliveries[0]
	if !d.Failed || !math.IsInf(d.DeliveredS, 1) {
		t.Fatalf("killed scout still delivered: %+v", d)
	}
	if len(rep.FailedUAVs) != 1 || rep.FailedUAVs[0] != "scout-1" {
		t.Fatalf("failed UAVs = %v", rep.FailedUAVs)
	}
	if rep.DeliveryRatio() != 0 {
		t.Fatalf("ratio = %v", rep.DeliveryRatio())
	}
}

// TestRelayDeathMidTransfer kills relay-1 one second before the clean
// run's completion instant — provably mid-transfer — and checks the two
// postures diverge: the plain transfer strands the remainder, while the
// resilient mission carries the delivered prefix to relay-2 and finishes.
func TestRelayDeathMidTransfer(t *testing.T) {
	// The clean mission completes at ≈54.1 s with the transfer occupying
	// the last ≈2 s (see TestMissionDeliversEverything's scenario).
	sched := &chaos.Schedule{Vehicles: []chaos.VehicleFault{{ID: "relay-1", AtS: 53}}}

	run := func(resilient bool) Report {
		cfg := safeConfig()
		cfg.Chaos = sched.Clone()
		cfg.Resilient = resilient
		cfg.StaleAfterS = 30
		m, err := New(cfg, twoRelaySpecs())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(1800)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	naive := run(false)
	resilient := run(true)

	if len(naive.FailedUAVs) == 0 || naive.FailedUAVs[0] != "relay-1" {
		t.Fatalf("relay kill not recorded: %v", naive.FailedUAVs)
	}
	nd, rd := naive.Deliveries[0], resilient.Deliveries[0]
	// The plain transfer stalls when its receiver dies: partial delivery.
	if !math.IsInf(nd.DeliveredS, 1) || nd.DeliveredMB >= nd.MdataMB-0.1 {
		t.Fatalf("plain transfer completed through a dead relay: %+v", nd)
	}
	if nd.DeliveredMB <= 0 {
		t.Fatalf("kill at 53 s should land mid-transfer, not before it: %+v", nd)
	}
	if naive.PartialDeliveries != 1 {
		t.Fatalf("partial not counted: %+v", naive)
	}
	// The resilient mission reassigns the remainder to relay-2.
	if math.IsInf(rd.DeliveredS, 1) || rd.DeliveredMB < rd.MdataMB-1e-5 {
		t.Fatalf("resilient mission did not finish: %+v", rd)
	}
	if rd.RelayID != "relay-2" {
		t.Fatalf("remainder not reassigned: %+v", rd)
	}
	if resilient.DeliveryRatio() <= naive.DeliveryRatio() {
		t.Fatalf("resilient ratio %v not above naive %v",
			resilient.DeliveryRatio(), naive.DeliveryRatio())
	}
}

func TestChaosLinkOutageDelaysResilientDelivery(t *testing.T) {
	// A 20 s wildcard link outage covering the transfer window: the
	// resilient transfer must wait it out and still deliver everything.
	sched := &chaos.Schedule{
		Links: []chaos.LinkFault{{Window: chaos.Window{StartS: 50, EndS: 70}, ID: chaos.Wildcard, Outage: true}},
	}
	cfg := safeConfig()
	cfg.Chaos = sched
	cfg.Resilient = true
	m, err := New(cfg, specs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Deliveries[0]
	if math.IsInf(d.DeliveredS, 1) || d.DeliveredMB < d.MdataMB-1e-5 {
		t.Fatalf("resilient transfer lost to a transient outage: %+v", d)
	}
	if d.DeliveredS < 70 {
		t.Fatalf("delivery at %v s finished inside the outage window", d.DeliveredS)
	}
}
