// Package fleet composes the full stack — platforms, autopilots,
// telemetry, the central planner, failure injection and the packet-level
// link — into multi-UAV missions, the "holistic planning" direction the
// paper's Section 5 sketches. A mission assigns scouts to sectors; each
// scout scans, then ferries its imagery to a relay, transmitting either
// naively (as soon as the link opens) or at the planner's
// delayed-gratification rendezvous. The report quantifies the system-level
// payoff of the paper's decision rule: delivery latency, data delivered
// before failures, and per-scout outcomes.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/planner"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/spatial"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/telemetry"
	"github.com/nowlater/nowlater/internal/transport"
	"github.com/nowlater/nowlater/internal/uav"
)

// Role distinguishes mission participants.
type Role int

// Mission roles.
const (
	// Scout scans a sector and ferries its own imagery (the paper's view
	// that "any mission-oriented UAV can become a ferry").
	Scout Role = iota
	// Relay hovers and receives (another UAV or the ground station).
	Relay
)

// UAVSpec declares one mission participant.
type UAVSpec struct {
	ID       string
	Platform uav.Platform
	Start    geo.Vec3
	Role     Role
	// Plan and SectorOrigin define a scout's sensing assignment; ignored
	// for relays.
	Plan         mission.Plan
	SectorOrigin geo.Vec3
	// MaxScanLanes truncates the lawnmower pattern (0 = full coverage).
	MaxScanLanes int
}

// Config parameterizes a mission.
type Config struct {
	Seed int64
	// Scenario carries the planning parameters (speed, failure model,
	// throughput law, minimum distance). D0M/Mdata are set per delivery.
	Scenario core.Scenario
	// LinkRangeM is where the data link opens (defines each d0).
	LinkRangeM float64
	// Link is the packet-level radio configuration for transfers.
	Link link.Config
	// Naive skips the rendezvous: scouts transmit where the link opens.
	Naive bool
	// TransferDeadlineS bounds each delivery attempt.
	TransferDeadlineS float64
	// Chaos injects the scripted faults of a schedule into the mission:
	// telemetry drops before the planner, link outages and fades during
	// transfers, and mid-flight vehicle kills. Nil (or an empty schedule)
	// leaves every run bit-identical to the fault-free mission.
	Chaos *chaos.Schedule
	// Resilient arms the survivable delivery path: transfers run through
	// transport.ResilientTransfer (resumable partial batches), scouts
	// whose relay dies reassign to the nearest surviving relay carrying
	// the bytes already delivered, and staleness-aware planning falls
	// back to transmit-now when telemetry degrades.
	Resilient bool
	// StaleAfterS feeds the planner's telemetry aging (0 disables).
	StaleAfterS float64
}

// DefaultConfig uses the paper's quadrocopter planning scenario.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Scenario:          core.QuadrocopterBaseline(),
		LinkRangeM:        150,
		Link:              link.DefaultConfig(),
		TransferDeadlineS: 600,
	}
}

// Delivery is one scout's ferrying outcome.
type Delivery struct {
	ScoutID     string
	RelayID     string
	MdataMB     float64
	D0M         float64 // distance when the link opened
	DoptM       float64 // planned transmit distance (== D0M when naive)
	ScanDoneS   float64
	DeliveredS  float64 // completion time (mission clock); +Inf if never
	DeliveredMB float64
	Failed      bool // the scout was lost before completing
}

// Report summarizes a mission.
type Report struct {
	Deliveries  []Delivery
	TotalMB     float64
	DeliveredMB float64
	// MakespanS is the time the last successful delivery completed.
	MakespanS  float64
	FailedUAVs []string
	// PartialDeliveries counts scouts that landed some but not all of
	// their batch — the middle ground chaos creates between a clean
	// delivery and a total loss.
	PartialDeliveries int
}

// DeliveryRatio is delivered/total data.
func (r Report) DeliveryRatio() float64 {
	if r.TotalMB == 0 {
		return 0
	}
	return r.DeliveredMB / r.TotalMB
}

// scout is one scanning participant's runtime state.
type scout struct {
	spec     UAVSpec
	ap       *autopilot.Autopilot
	injector *failure.Injector
	hasData  bool
	done     bool
	delivery Delivery
	// deliveredBytes is the batch prefix already landed — carried across
	// reassigned transfers so a resumed delivery ships only the rest.
	deliveredBytes int64
}

// relay is one receiving participant's runtime state.
type relay struct {
	ap   *autopilot.Autopilot
	dead bool
}

func (r *relay) id() string { return r.ap.Vehicle().ID }

// Mission is a configured multi-UAV run.
type Mission struct {
	cfg    Config
	engine *sim.Engine
	bus    *telemetry.Bus
	plan   *planner.Planner
	scouts []*scout
	relays []*relay
	rng    *stats.RNG
	// relayGrid indexes the (static, hovering) relay tier by position for
	// O(1)-cell nearest-relay lookup; ids are indices into relays. Dead
	// relays are removed so queries only ever see the surviving tier.
	relayGrid *spatial.Grid
}

// New assembles a mission. At least one scout and one relay are required.
func New(cfg Config, specs []UAVSpec) (*Mission, error) {
	if cfg.LinkRangeM <= 0 {
		return nil, fmt.Errorf("fleet: link range %v must be positive", cfg.LinkRangeM)
	}
	if cfg.TransferDeadlineS <= 0 {
		return nil, fmt.Errorf("fleet: transfer deadline %v must be positive", cfg.TransferDeadlineS)
	}
	engine := sim.NewEngine()
	bus, err := telemetry.NewBus(telemetry.DefaultParams(), engine)
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}
	pl, err := planner.New(planner.Config{
		Scenario: cfg.Scenario, LinkRangeM: cfg.LinkRangeM, StaleAfterS: cfg.StaleAfterS,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		bus.SetFault(cfg.Chaos.TelemetryDrop)
	}
	m := &Mission{cfg: cfg, engine: engine, bus: bus, plan: pl, rng: stats.NewRNG(cfg.Seed)}

	seenIDs := map[string]bool{}
	for _, spec := range specs {
		if spec.ID == "" || seenIDs[spec.ID] {
			return nil, fmt.Errorf("fleet: missing or duplicate id %q", spec.ID)
		}
		seenIDs[spec.ID] = true
		v, err := uav.NewVehicle(spec.ID, spec.Platform, spec.Start)
		if err != nil {
			return nil, err
		}
		ap, err := autopilot.New(v)
		if err != nil {
			return nil, err
		}
		node := &telemetry.Node{ID: spec.ID, Position: v.Position}
		if err := bus.Attach(node); err != nil {
			return nil, err
		}
		switch spec.Role {
		case Scout:
			if err := spec.Plan.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: scout %s: %w", spec.ID, err)
			}
			inj := failure.NewInjector(cfg.Scenario.Failure,
				m.rng.Substream(cfg.Seed, "fleet/failure/"+spec.ID))
			sc := &scout{spec: spec, ap: ap, injector: inj}
			sc.delivery.ScoutID = spec.ID
			sc.delivery.DeliveredS = math.Inf(1)
			m.scouts = append(m.scouts, sc)
		case Relay:
			ap.Hold(spec.Start)
			m.relays = append(m.relays, &relay{ap: ap})
		default:
			return nil, fmt.Errorf("fleet: unknown role %d", spec.Role)
		}
	}
	if len(m.scouts) == 0 || len(m.relays) == 0 {
		return nil, fmt.Errorf("fleet: need at least one scout and one relay")
	}
	// Cell size = link range: a nearest-relay query for a scout near its
	// relay touches O(1) cells.
	m.relayGrid, err = spatial.NewGrid(cfg.LinkRangeM)
	if err != nil {
		return nil, fmt.Errorf("fleet: relay grid: %w", err)
	}
	for i, r := range m.relays {
		m.relayGrid.Upsert(i, r.ap.Vehicle().Position())
	}
	return m, nil
}

// nearestRelay returns the surviving relay closest to a position (nil when
// the whole relay tier is gone). The grid's lowest-id tie-break reproduces
// the first-index-wins linear scan this replaces, so mission outcomes are
// bit-identical.
func (m *Mission) nearestRelay(p geo.Vec3) *relay {
	i, _, ok := m.relayGrid.Nearest(p, -1)
	if !ok {
		return nil
	}
	return m.relays[i]
}

// chaosKillTime reports the scripted failure time for a vehicle, if any.
func (m *Mission) chaosKillTime(id string) (float64, bool) {
	if m.cfg.Chaos == nil {
		return 0, false
	}
	return m.cfg.Chaos.VehicleFailTime(id)
}

// applyChaosKills trips every scripted vehicle failure whose time has come:
// scouts through their injector (the regular failure path), relays by
// marking the tier entry dead so planning and reassignment route around it.
func (m *Mission) applyChaosKills(now float64) {
	if m.cfg.Chaos == nil {
		return
	}
	for _, s := range m.scouts {
		if t, ok := m.cfg.Chaos.VehicleFailTime(s.spec.ID); ok && now >= t {
			s.injector.Trip()
		}
	}
	for i, r := range m.relays {
		if r.dead {
			continue
		}
		if t, ok := m.cfg.Chaos.VehicleFailTime(r.id()); ok && now >= t {
			r.dead = true
			r.ap.Vehicle().Fail()
			m.plan.Forget(r.id())
			m.relayGrid.Remove(i)
		}
	}
}

// Run executes the mission until all scouts have delivered or failed, or
// maxSeconds of simulated time elapse.
func (m *Mission) Run(maxSeconds float64) (Report, error) {
	if maxSeconds <= 0 {
		return Report{}, fmt.Errorf("fleet: max duration %v must be positive", maxSeconds)
	}
	// Kick off every scout's scan.
	for _, s := range m.scouts {
		m.startScan(s)
	}
	// The mission does not own a clock loop: it hands its per-tick state
	// machine to the scenario layer's Ticks driver, which advances the
	// shared engine at the mission cadence.
	err := scenario.Ticks(m.engine, scenario.MissionTickS, maxSeconds, func(now float64) bool {
		m.applyChaosKills(now)
		allDone := true
		for _, s := range m.scouts {
			if s.done {
				continue
			}
			m.step(s, scenario.MissionTickS)
			if !s.done {
				allDone = false
			}
		}
		return !allDone
	})
	if err != nil {
		return Report{}, err
	}
	return m.report(), nil
}

// startScan programs a scout's lawnmower legs.
func (m *Mission) startScan(s *scout) {
	wps := s.spec.Plan.LawnmowerWaypoints(0)
	if s.spec.MaxScanLanes > 0 && len(wps) > 2*s.spec.MaxScanLanes {
		wps = wps[:2*s.spec.MaxScanLanes]
	}
	idx := 0
	var next func()
	next = func() {
		if idx >= len(wps) {
			s.hasData = true
			s.delivery.ScanDoneS = m.engine.Now()
			s.delivery.MdataMB = s.spec.Plan.DataBytes() / 1e6
			return
		}
		wp := wps[idx]
		idx++
		s.ap.GoTo(s.spec.SectorOrigin.Add(geo.Vec3{X: wp[0], Y: wp[1], Z: wp[2]}), 0, next)
	}
	next()
}

// step advances one scout through its state machine by one control tick.
func (m *Mission) step(s *scout, tick float64) {
	v := s.ap.Vehicle()
	s.ap.Step(tick)
	if s.injector.Check(v.Odometer()) && !v.Failed() {
		v.Fail()
		s.done = true
		s.delivery.Failed = true
		s.delivery.DeliveredS = math.Inf(1)
		return
	}
	if !s.hasData {
		return
	}
	r := m.nearestRelay(v.Position())
	if r == nil {
		// No surviving receiver: hold and hope one comes back (it will
		// not — scripted kills are permanent — but the scout cannot know).
		return
	}
	d := v.Position().Dist(r.ap.Vehicle().Position())
	if d > m.cfg.LinkRangeM {
		// Close in until the link opens.
		if s.ap.Mode() != autopilot.GoTo || s.ap.Arrived() {
			s.ap.GoTo(r.ap.Vehicle().Position(), 0, nil)
		}
		return
	}
	// Link open: this is d0. Decide, ship, transfer — the remainder is
	// executed synchronously against the engine clock.
	m.deliver(s, r, d)
}

// deliver runs the decision, the shipping leg and the transfer for one
// scout. On the resilient path an interrupted transfer may leave the scout
// un-done so the state machine can reassign the remainder to a surviving
// relay; otherwise it completes the scout's state machine.
func (m *Mission) deliver(s *scout, r *relay, d0 float64) {
	v := s.ap.Vehicle()
	rv := r.ap.Vehicle()
	s.delivery.RelayID = rv.ID
	s.delivery.D0M = d0
	target := d0

	if !m.cfg.Naive {
		// Route the decision through the central planner, exactly as the
		// ground station would: feed it the two telemetry states (each
		// beacon subject to the chaos layer's drop law), ask for the
		// rendezvous. On degraded telemetry the planner answers
		// transmit-now; on no telemetry at all, d0 stands.
		now := m.engine.Now()
		if m.cfg.Chaos == nil || !m.cfg.Chaos.TelemetryDrop(now) {
			m.plan.Observe(telemetry.Status{
				From: s.spec.ID, Time: now,
				Position: v.Position(), Velocity: v.Velocity(),
				Battery: v.BatteryFraction(),
				HasData: true, DataMB: s.spec.Plan.DataBytes() / 1e6,
			})
		}
		if m.cfg.Chaos == nil || !m.cfg.Chaos.TelemetryDrop(now) {
			m.plan.Observe(telemetry.Status{
				From: rv.ID, Time: now,
				Position: rv.Position(),
			})
		}
		if dec, ok, err := m.plan.PlanDeliveryAt(s.spec.ID, rv.ID, now); err == nil && ok {
			target = dec.Optimum.DoptM
		}
	}
	s.delivery.DoptM = target

	// Ship to the rendezvous (synchronously on the engine clock). The leg
	// steps the scout once per mission tick and hands the clock itself to
	// scenario.Ticks; kill and injector checks run after each advance,
	// exactly as the tick loop they replace did.
	if target < d0-1 {
		dir := v.Position().Sub(rv.Position()).Unit()
		wp := rv.Position().Add(dir.Scale(target))
		wp.Z = v.Position().Z
		arrived := false
		s.ap.GoTo(wp, 0, func() { arrived = true })
		killed := false
		if !arrived && !v.Failed() {
			s.ap.Step(scenario.MissionTickS)
			_ = scenario.Ticks(m.engine, scenario.MissionTickS, math.Inf(1), func(now float64) bool {
				if t, ok := m.chaosKillTime(s.spec.ID); ok && now >= t {
					s.injector.Trip()
				}
				if s.injector.Check(v.Odometer()) {
					v.Fail()
					killed = true
					return false
				}
				if arrived || v.Failed() {
					return false
				}
				s.ap.Step(scenario.MissionTickS)
				return true
			})
		}
		if killed {
			s.done = true
			s.delivery.Failed = true
			s.delivery.DeliveredS = math.Inf(1)
			return
		}
	}

	// Transfer over a fresh packet-level link.
	lcfg := m.cfg.Link
	lcfg.Seed = m.cfg.Seed
	lcfg.Label = "fleet/" + s.spec.ID
	l, err := link.New(lcfg, nil)
	if err != nil {
		s.done = true
		s.delivery.DeliveredS = math.Inf(1)
		return
	}
	l.SetNow(m.engine.Now())
	if sched := m.cfg.Chaos; sched != nil {
		// The transfer dies with either endpoint: scripted link outages on
		// scout or relay, and a mid-transfer vehicle kill, all read as a
		// link that stops carrying frames at that instant.
		scoutID, relayID := s.spec.ID, rv.ID
		l.SetFault(func(now float64) (bool, float64) {
			out := sched.LinkOutage(scoutID, now) || sched.LinkOutage(relayID, now)
			if t, ok := sched.VehicleFailTime(scoutID); ok && now >= t {
				out = true
			}
			if t, ok := sched.VehicleFailTime(relayID); ok && now >= t {
				out = true
			}
			return out, sched.LinkExtraLossDB(scoutID, now) + sched.LinkExtraLossDB(relayID, now)
		})
	}

	geom := func(float64) link.Geometry {
		return link.Geometry{
			DistanceM:   v.Position().Dist(rv.Position()),
			AltitudeM:   math.Min(v.Position().Z, rv.Position().Z),
			RelSpeedMPS: v.Velocity().Sub(rv.Velocity()).Norm(),
		}
	}
	remaining := int(s.spec.Plan.DataBytes()) - int(s.deliveredBytes)

	var delivered int64
	var completion float64
	if m.cfg.Resilient {
		rcfg := transport.DefaultResilientConfig(remaining, m.cfg.TransferDeadlineS)
		rcfg.MaxAttempts = 6
		rcfg.Seed = m.cfg.Seed
		rcfg.Label = "fleet/resilient/" + s.spec.ID
		t0 := l.Now()
		res, rerr := transport.ResilientTransfer(l, rcfg, geom)
		if rerr != nil {
			s.done = true
			s.delivery.DeliveredS = math.Inf(1)
			return
		}
		// The resilient clock really elapsed (attempts plus backoff), so
		// the mission clock follows it even on a failed transfer.
		_ = advance(m.engine, l.Now()-t0)
		delivered, completion = res.DeliveredBytes, res.CompletionS
	} else {
		res, terr := transport.TransferBatch(l, transport.BatchConfig{
			Bytes:     remaining,
			DeadlineS: m.cfg.TransferDeadlineS,
			Reliable:  true,
		}, geom)
		if terr != nil {
			s.done = true
			s.delivery.DeliveredS = math.Inf(1)
			return
		}
		delivered, completion = res.DeliveredBytes, res.CompletionS
		if !math.IsInf(completion, 1) {
			_ = advance(m.engine, completion)
		} else if m.cfg.Chaos != nil {
			// Under chaos the failed attempt's duration is real time the
			// mission spent: follow the link clock so scripted kills that
			// struck mid-transfer land on the mission timeline too. (The
			// fault-free path keeps the seed behaviour untouched.)
			_ = advance(m.engine, l.Now()-m.engine.Now())
		}
	}

	s.deliveredBytes += delivered
	s.delivery.DeliveredMB = float64(s.deliveredBytes) / 1e6

	if !math.IsInf(completion, 1) {
		s.done = true
		s.delivery.DeliveredS = m.engine.Now()
		return
	}

	// Incomplete. A chaos-killed scout is lost with whatever it landed.
	m.applyChaosKills(m.engine.Now())
	if t, ok := m.chaosKillTime(s.spec.ID); ok && m.engine.Now() >= t {
		s.injector.Trip()
	}
	if s.injector.Tripped() {
		v.Fail()
		s.done = true
		s.delivery.Failed = true
		s.delivery.DeliveredS = math.Inf(1)
		return
	}
	if m.cfg.Resilient {
		if next := m.nearestRelay(v.Position()); next != nil {
			// Leave the scout live: the state machine re-approaches the
			// nearest surviving relay and ships only the remainder.
			return
		}
	}
	s.done = true
	s.delivery.DeliveredS = math.Inf(1)
}

// advance moves the engine clock forward, tolerating an empty queue.
func advance(e *sim.Engine, dt float64) error {
	return e.RunUntil(e.Now() + dt)
}

// report assembles the mission summary.
func (m *Mission) report() Report {
	var r Report
	for _, s := range m.scouts {
		r.Deliveries = append(r.Deliveries, s.delivery)
		r.TotalMB += s.spec.Plan.DataBytes() / 1e6
		r.DeliveredMB += s.delivery.DeliveredMB
		if s.delivery.Failed {
			r.FailedUAVs = append(r.FailedUAVs, s.spec.ID)
		}
		if s.delivery.DeliveredMB > 0 && math.IsInf(s.delivery.DeliveredS, 1) {
			r.PartialDeliveries++
		}
		if !math.IsInf(s.delivery.DeliveredS, 1) && s.delivery.DeliveredS > r.MakespanS {
			r.MakespanS = s.delivery.DeliveredS
		}
	}
	for _, rl := range m.relays {
		if rl.dead {
			r.FailedUAVs = append(r.FailedUAVs, rl.id())
		}
	}
	sort.Slice(r.Deliveries, func(i, j int) bool {
		return r.Deliveries[i].ScoutID < r.Deliveries[j].ScoutID
	})
	sort.Strings(r.FailedUAVs)
	return r
}
