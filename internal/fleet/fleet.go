// Package fleet composes the full stack — platforms, autopilots,
// telemetry, the central planner, failure injection and the packet-level
// link — into multi-UAV missions, the "holistic planning" direction the
// paper's Section 5 sketches. A mission assigns scouts to sectors; each
// scout scans, then ferries its imagery to a relay, transmitting either
// naively (as soon as the link opens) or at the planner's
// delayed-gratification rendezvous. The report quantifies the system-level
// payoff of the paper's decision rule: delivery latency, data delivered
// before failures, and per-scout outcomes.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/planner"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/telemetry"
	"github.com/nowlater/nowlater/internal/transport"
	"github.com/nowlater/nowlater/internal/uav"
)

// Role distinguishes mission participants.
type Role int

// Mission roles.
const (
	// Scout scans a sector and ferries its own imagery (the paper's view
	// that "any mission-oriented UAV can become a ferry").
	Scout Role = iota
	// Relay hovers and receives (another UAV or the ground station).
	Relay
)

// UAVSpec declares one mission participant.
type UAVSpec struct {
	ID       string
	Platform uav.Platform
	Start    geo.Vec3
	Role     Role
	// Plan and SectorOrigin define a scout's sensing assignment; ignored
	// for relays.
	Plan         mission.Plan
	SectorOrigin geo.Vec3
	// MaxScanLanes truncates the lawnmower pattern (0 = full coverage).
	MaxScanLanes int
}

// Config parameterizes a mission.
type Config struct {
	Seed int64
	// Scenario carries the planning parameters (speed, failure model,
	// throughput law, minimum distance). D0M/Mdata are set per delivery.
	Scenario core.Scenario
	// LinkRangeM is where the data link opens (defines each d0).
	LinkRangeM float64
	// Link is the packet-level radio configuration for transfers.
	Link link.Config
	// Naive skips the rendezvous: scouts transmit where the link opens.
	Naive bool
	// TransferDeadlineS bounds each delivery attempt.
	TransferDeadlineS float64
}

// DefaultConfig uses the paper's quadrocopter planning scenario.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Scenario:          core.QuadrocopterBaseline(),
		LinkRangeM:        150,
		Link:              link.DefaultConfig(),
		TransferDeadlineS: 600,
	}
}

// Delivery is one scout's ferrying outcome.
type Delivery struct {
	ScoutID     string
	RelayID     string
	MdataMB     float64
	D0M         float64 // distance when the link opened
	DoptM       float64 // planned transmit distance (== D0M when naive)
	ScanDoneS   float64
	DeliveredS  float64 // completion time (mission clock); +Inf if never
	DeliveredMB float64
	Failed      bool // the scout was lost before completing
}

// Report summarizes a mission.
type Report struct {
	Deliveries  []Delivery
	TotalMB     float64
	DeliveredMB float64
	// MakespanS is the time the last successful delivery completed.
	MakespanS  float64
	FailedUAVs []string
}

// DeliveryRatio is delivered/total data.
func (r Report) DeliveryRatio() float64 {
	if r.TotalMB == 0 {
		return 0
	}
	return r.DeliveredMB / r.TotalMB
}

// scout is one scanning participant's runtime state.
type scout struct {
	spec     UAVSpec
	ap       *autopilot.Autopilot
	injector *failure.Injector
	hasData  bool
	done     bool
	delivery Delivery
}

// Mission is a configured multi-UAV run.
type Mission struct {
	cfg    Config
	engine *sim.Engine
	bus    *telemetry.Bus
	plan   *planner.Planner
	scouts []*scout
	relays []*autopilot.Autopilot
	rng    *stats.RNG
}

// New assembles a mission. At least one scout and one relay are required.
func New(cfg Config, specs []UAVSpec) (*Mission, error) {
	if cfg.LinkRangeM <= 0 {
		return nil, fmt.Errorf("fleet: link range %v must be positive", cfg.LinkRangeM)
	}
	if cfg.TransferDeadlineS <= 0 {
		return nil, fmt.Errorf("fleet: transfer deadline %v must be positive", cfg.TransferDeadlineS)
	}
	engine := sim.NewEngine()
	bus, err := telemetry.NewBus(telemetry.DefaultParams(), engine)
	if err != nil {
		return nil, err
	}
	pl, err := planner.New(planner.Config{Scenario: cfg.Scenario, LinkRangeM: cfg.LinkRangeM})
	if err != nil {
		return nil, err
	}
	m := &Mission{cfg: cfg, engine: engine, bus: bus, plan: pl, rng: stats.NewRNG(cfg.Seed)}

	seenIDs := map[string]bool{}
	for _, spec := range specs {
		if spec.ID == "" || seenIDs[spec.ID] {
			return nil, fmt.Errorf("fleet: missing or duplicate id %q", spec.ID)
		}
		seenIDs[spec.ID] = true
		v, err := uav.NewVehicle(spec.ID, spec.Platform, spec.Start)
		if err != nil {
			return nil, err
		}
		ap, err := autopilot.New(v)
		if err != nil {
			return nil, err
		}
		node := &telemetry.Node{ID: spec.ID, Position: v.Position}
		if err := bus.Attach(node); err != nil {
			return nil, err
		}
		switch spec.Role {
		case Scout:
			if err := spec.Plan.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: scout %s: %w", spec.ID, err)
			}
			inj := failure.NewInjector(cfg.Scenario.Failure,
				m.rng.Substream(cfg.Seed, "fleet/failure/"+spec.ID))
			m.scouts = append(m.scouts, &scout{spec: spec, ap: ap, injector: inj})
		case Relay:
			ap.Hold(spec.Start)
			m.relays = append(m.relays, ap)
		default:
			return nil, fmt.Errorf("fleet: unknown role %d", spec.Role)
		}
	}
	if len(m.scouts) == 0 || len(m.relays) == 0 {
		return nil, fmt.Errorf("fleet: need at least one scout and one relay")
	}
	return m, nil
}

// nearestRelay returns the relay closest to a position.
func (m *Mission) nearestRelay(p geo.Vec3) *autopilot.Autopilot {
	best, bestD := m.relays[0], math.Inf(1)
	for _, r := range m.relays {
		if d := r.Vehicle().Position().Dist(p); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// Run executes the mission until all scouts have delivered or failed, or
// maxSeconds of simulated time elapse.
func (m *Mission) Run(maxSeconds float64) (Report, error) {
	if maxSeconds <= 0 {
		return Report{}, fmt.Errorf("fleet: max duration %v must be positive", maxSeconds)
	}
	// Kick off every scout's scan.
	for _, s := range m.scouts {
		m.startScan(s)
	}
	const tick = 0.1
	for m.engine.Now() < maxSeconds {
		if err := m.engine.RunUntil(m.engine.Now() + tick); err != nil {
			return Report{}, err
		}
		allDone := true
		for _, s := range m.scouts {
			if s.done {
				continue
			}
			m.step(s, tick)
			if !s.done {
				allDone = false
			}
		}
		if allDone {
			break
		}
	}
	return m.report(), nil
}

// startScan programs a scout's lawnmower legs.
func (m *Mission) startScan(s *scout) {
	wps := s.spec.Plan.LawnmowerWaypoints(0)
	if s.spec.MaxScanLanes > 0 && len(wps) > 2*s.spec.MaxScanLanes {
		wps = wps[:2*s.spec.MaxScanLanes]
	}
	idx := 0
	var next func()
	next = func() {
		if idx >= len(wps) {
			s.hasData = true
			s.delivery.ScanDoneS = m.engine.Now()
			s.delivery.MdataMB = s.spec.Plan.DataBytes() / 1e6
			return
		}
		wp := wps[idx]
		idx++
		s.ap.GoTo(s.spec.SectorOrigin.Add(geo.Vec3{X: wp[0], Y: wp[1], Z: wp[2]}), 0, next)
	}
	next()
}

// step advances one scout through its state machine by one control tick.
func (m *Mission) step(s *scout, tick float64) {
	v := s.ap.Vehicle()
	s.ap.Step(tick)
	if s.injector.Check(v.Odometer()) && !v.Failed() {
		v.Fail()
		s.done = true
		s.delivery.Failed = true
		s.delivery.DeliveredS = math.Inf(1)
		return
	}
	if !s.hasData {
		return
	}
	relay := m.nearestRelay(v.Position())
	d := v.Position().Dist(relay.Vehicle().Position())
	if d > m.cfg.LinkRangeM {
		// Close in until the link opens.
		if s.ap.Mode() != autopilot.GoTo || s.ap.Arrived() {
			s.ap.GoTo(relay.Vehicle().Position(), 0, nil)
		}
		return
	}
	// Link open: this is d0. Decide, ship, transfer — the remainder is
	// executed synchronously against the engine clock.
	m.deliver(s, relay, d)
}

// deliver runs the decision, the shipping leg and the transfer for one
// scout; it completes the scout's state machine.
func (m *Mission) deliver(s *scout, relay *autopilot.Autopilot, d0 float64) {
	v := s.ap.Vehicle()
	s.delivery.RelayID = relay.Vehicle().ID
	s.delivery.D0M = d0
	target := d0

	if !m.cfg.Naive {
		// Route the decision through the central planner, exactly as the
		// ground station would: feed it the two telemetry states, ask for
		// the rendezvous.
		m.plan.Observe(telemetry.Status{
			From: s.spec.ID, Time: m.engine.Now(),
			Position: v.Position(), Velocity: v.Velocity(),
			Battery: v.BatteryFraction(),
			HasData: true, DataMB: s.spec.Plan.DataBytes() / 1e6,
		})
		m.plan.Observe(telemetry.Status{
			From: relay.Vehicle().ID, Time: m.engine.Now(),
			Position: relay.Vehicle().Position(),
		})
		if dec, ok, err := m.plan.PlanDelivery(s.spec.ID, relay.Vehicle().ID); err == nil && ok {
			target = dec.Optimum.DoptM
		}
	}
	s.delivery.DoptM = target

	// Ship to the rendezvous (synchronously on the engine clock).
	if target < d0-1 {
		dir := v.Position().Sub(relay.Vehicle().Position()).Unit()
		rv := relay.Vehicle().Position().Add(dir.Scale(target))
		rv.Z = v.Position().Z
		arrived := false
		s.ap.GoTo(rv, 0, func() { arrived = true })
		for !arrived && !v.Failed() {
			s.ap.Step(0.1)
			if err := advance(m.engine, 0.1); err != nil {
				break
			}
			if s.injector.Check(v.Odometer()) {
				v.Fail()
				s.done = true
				s.delivery.Failed = true
				s.delivery.DeliveredS = math.Inf(1)
				return
			}
		}
	}

	// Transfer over a fresh packet-level link.
	lcfg := m.cfg.Link
	lcfg.Seed = m.cfg.Seed
	lcfg.Label = "fleet/" + s.spec.ID
	l, err := link.New(lcfg, nil)
	if err != nil {
		s.done = true
		s.delivery.DeliveredS = math.Inf(1)
		return
	}
	l.SetNow(m.engine.Now())
	res, err := transport.TransferBatch(l, transport.BatchConfig{
		Bytes:     int(s.spec.Plan.DataBytes()),
		DeadlineS: m.cfg.TransferDeadlineS,
		Reliable:  true,
	}, func(float64) link.Geometry {
		return link.Geometry{
			DistanceM:   v.Position().Dist(relay.Vehicle().Position()),
			AltitudeM:   math.Min(v.Position().Z, relay.Vehicle().Position().Z),
			RelSpeedMPS: v.Velocity().Sub(relay.Vehicle().Velocity()).Norm(),
		}
	})
	s.done = true
	if err != nil || math.IsInf(res.CompletionS, 1) {
		s.delivery.DeliveredS = math.Inf(1)
		s.delivery.DeliveredMB = float64(res.DeliveredBytes) / 1e6
		return
	}
	_ = advance(m.engine, res.CompletionS)
	s.delivery.DeliveredS = m.engine.Now()
	s.delivery.DeliveredMB = float64(res.DeliveredBytes) / 1e6
}

// advance moves the engine clock forward, tolerating an empty queue.
func advance(e *sim.Engine, dt float64) error {
	return e.RunUntil(e.Now() + dt)
}

// report assembles the mission summary.
func (m *Mission) report() Report {
	var r Report
	for _, s := range m.scouts {
		r.Deliveries = append(r.Deliveries, s.delivery)
		r.TotalMB += s.spec.Plan.DataBytes() / 1e6
		r.DeliveredMB += s.delivery.DeliveredMB
		if s.delivery.Failed {
			r.FailedUAVs = append(r.FailedUAVs, s.spec.ID)
		}
		if !math.IsInf(s.delivery.DeliveredS, 1) && s.delivery.DeliveredS > r.MakespanS {
			r.MakespanS = s.delivery.DeliveredS
		}
	}
	sort.Slice(r.Deliveries, func(i, j int) bool {
		return r.Deliveries[i].ScoutID < r.Deliveries[j].ScoutID
	})
	sort.Strings(r.FailedUAVs)
	return r
}
