package fleet

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/uav"
)

// smallPlan is a reduced sensing assignment so tests stay fast.
func smallPlan() mission.Plan {
	return mission.Plan{
		Sector:    mission.Sector{WidthM: 30, HeightM: 30},
		Camera:    mission.DefaultCamera(),
		AltitudeM: 10,
	}
}

func specs() []UAVSpec {
	return []UAVSpec{
		{
			ID: "scout-1", Platform: uav.Arducopter(), Role: Scout,
			Start: geo.Vec3{X: 160, Z: 10}, Plan: smallPlan(),
			SectorOrigin: geo.Vec3{X: 150, Y: 10}, MaxScanLanes: 2,
		},
		{
			ID: "relay-1", Platform: uav.Arducopter(), Role: Relay,
			Start: geo.Vec3{Z: 10},
		},
	}
}

func safeConfig() Config {
	cfg := DefaultConfig()
	m, _ := failure.NewModel(0) // deterministic: no failures
	cfg.Scenario.Failure = m
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(safeConfig(), nil); err == nil {
		t.Fatal("no participants accepted")
	}
	bad := safeConfig()
	bad.LinkRangeM = 0
	if _, err := New(bad, specs()); err == nil {
		t.Fatal("zero link range accepted")
	}
	bad = safeConfig()
	bad.TransferDeadlineS = 0
	if _, err := New(bad, specs()); err == nil {
		t.Fatal("zero deadline accepted")
	}
	// Duplicate IDs.
	dup := specs()
	dup[1].ID = "scout-1"
	if _, err := New(safeConfig(), dup); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// Scout without a valid plan.
	noPlan := specs()
	noPlan[0].Plan = mission.Plan{}
	if _, err := New(safeConfig(), noPlan); err == nil {
		t.Fatal("invalid plan accepted")
	}
	// Only relays.
	onlyRelay := specs()[1:]
	if _, err := New(safeConfig(), onlyRelay); err == nil {
		t.Fatal("relay-only mission accepted")
	}
}

func TestMissionDeliversEverything(t *testing.T) {
	m, err := New(safeConfig(), specs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(rep.Deliveries))
	}
	d := rep.Deliveries[0]
	if d.Failed || math.IsInf(d.DeliveredS, 1) {
		t.Fatalf("delivery failed: %+v", d)
	}
	if math.Abs(rep.DeliveryRatio()-1) > 0.01 {
		t.Fatalf("delivery ratio = %v", rep.DeliveryRatio())
	}
	if d.D0M <= 0 || d.DoptM <= 0 || d.DoptM > d.D0M+1 {
		t.Fatalf("geometry bookkeeping: %+v", d)
	}
	if d.ScanDoneS <= 0 || d.DeliveredS <= d.ScanDoneS {
		t.Fatalf("timeline: %+v", d)
	}
	if rep.MakespanS != d.DeliveredS {
		t.Fatalf("makespan %v vs delivery %v", rep.MakespanS, d.DeliveredS)
	}
}

func TestDelayedGratificationBeatsNaiveAtMissionLevel(t *testing.T) {
	run := func(naive bool) Report {
		cfg := safeConfig()
		cfg.Naive = naive
		m, err := New(cfg, specs())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(1800)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	smart := run(false)
	naive := run(true)
	if smart.Deliveries[0].Failed || naive.Deliveries[0].Failed {
		t.Fatal("unexpected failure in deterministic mission")
	}
	// The rendezvous policy ships closer before transmitting...
	if smart.Deliveries[0].DoptM >= naive.Deliveries[0].DoptM {
		t.Fatalf("rendezvous did not move closer: %v vs %v",
			smart.Deliveries[0].DoptM, naive.Deliveries[0].DoptM)
	}
	// ...and completes the mission sooner (the paper's core payoff: the
	// 56 MB batch is far beyond the crossover size).
	if smart.MakespanS >= naive.MakespanS {
		t.Fatalf("delayed gratification lost: %v vs naive %v",
			smart.MakespanS, naive.MakespanS)
	}
	t.Logf("makespan: rendezvous %.1f s vs naive %.1f s", smart.MakespanS, naive.MakespanS)
}

func TestMissionWithFailures(t *testing.T) {
	cfg := DefaultConfig()
	m, err := failure.NewModel(0.02) // brutal: mean 50 m to failure
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario.Failure = m
	ms, err := New(cfg, specs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ms.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FailedUAVs) != 1 || rep.FailedUAVs[0] != "scout-1" {
		t.Fatalf("expected the scout to be lost: %+v", rep)
	}
	if rep.DeliveryRatio() != 0 {
		t.Fatalf("lost scout delivered data: %v", rep.DeliveryRatio())
	}
}

func TestMultiScoutMission(t *testing.T) {
	cfg := safeConfig()
	sp := []UAVSpec{
		specs()[0],
		{
			ID: "scout-2", Platform: uav.Arducopter(), Role: Scout,
			Start: geo.Vec3{X: -140, Y: 40, Z: 10}, Plan: smallPlan(),
			SectorOrigin: geo.Vec3{X: -150, Y: 30}, MaxScanLanes: 2,
		},
		specs()[1],
	}
	m, err := New(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(2400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(rep.Deliveries))
	}
	for _, d := range rep.Deliveries {
		if d.Failed || math.IsInf(d.DeliveredS, 1) {
			t.Fatalf("delivery incomplete: %+v", d)
		}
		if d.RelayID != "relay-1" {
			t.Fatalf("wrong relay: %+v", d)
		}
	}
	if rep.DeliveryRatio() < 0.99 {
		t.Fatalf("ratio = %v", rep.DeliveryRatio())
	}
}

func TestRunValidation(t *testing.T) {
	m, err := New(safeConfig(), specs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestMissionDeterministic(t *testing.T) {
	run := func() Report {
		m, err := New(safeConfig(), specs())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(1800)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.MakespanS != b.MakespanS || a.DeliveredMB != b.DeliveredMB {
		t.Fatalf("mission not deterministic: %+v vs %+v", a, b)
	}
}
