package fleet

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/uav"
)

// FromSpec compiles a declarative scenario.MissionSpec into a runnable
// Mission: platform names become platform models, scout sectors become
// lawnmower plans, and the chaos lines become a parsed schedule. The spec
// layer stays pure data (scenario does not import fleet); this is the
// compiler going the other way.
func FromSpec(ms scenario.MissionSpec) (*Mission, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.Seed = ms.Seed
	cfg.Naive = ms.Naive
	cfg.Resilient = ms.Resilient
	cfg.StaleAfterS = ms.StaleAfterS
	if ms.LinkRangeM > 0 {
		cfg.LinkRangeM = ms.LinkRangeM
	}
	if ms.TransferDeadlineS > 0 {
		cfg.TransferDeadlineS = ms.TransferDeadlineS
	}
	sched, err := ms.ChaosSchedule()
	if err != nil {
		return nil, err
	}
	cfg.Chaos = sched

	specs := make([]UAVSpec, 0, len(ms.Vehicles))
	for _, mv := range ms.Vehicles {
		var platform uav.Platform
		switch mv.Platform {
		case scenario.PlatformQuad:
			platform = uav.Arducopter()
		case scenario.PlatformPlane:
			platform = uav.Swinglet()
		default:
			return nil, fmt.Errorf("fleet: vehicle %s: unknown platform %q", mv.ID, mv.Platform)
		}
		spec := UAVSpec{ID: mv.ID, Platform: platform, Start: mv.Start}
		switch mv.Role {
		case scenario.RoleScout:
			spec.Role = Scout
			spec.Plan = mission.Plan{
				Sector:    mission.Sector{WidthM: mv.SectorWM, HeightM: mv.SectorHM},
				Camera:    mission.DefaultCamera(),
				AltitudeM: mv.AltitudeM,
			}
			spec.SectorOrigin = mv.SectorOrigin
			spec.MaxScanLanes = mv.MaxScanLanes
		case scenario.RoleRelay:
			spec.Role = Relay
		default:
			return nil, fmt.Errorf("fleet: vehicle %s: unknown role %q", mv.ID, mv.Role)
		}
		specs = append(specs, spec)
	}
	return New(cfg, specs)
}
