package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store manages the journals of one experiment run, one file per sweep
// under a checkpoint directory. Sweep labels repeat when an experiment
// runs the same sweep per variant (e.g. the ablations), so the store
// disambiguates repeated opens of one label with a deterministic
// occurrence counter — sweeps always run in the same order, so a resumed
// process maps each sweep back to the same file.
type Store struct {
	dir string

	mu  sync.Mutex
	seq map[string]int
}

// NewStore opens a checkpoint directory. With resume false the directory
// is wiped of prior journals (a fresh run must never skip trials from an
// old one); with resume true existing journals are kept and validated
// against each sweep's fingerprint at open time.
func NewStore(dir string, resume bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if !resume {
		old, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		for _, p := range old {
			if err := os.Remove(p); err != nil {
				return nil, fmt.Errorf("checkpoint: clearing stale journal: %w", err)
			}
		}
	}
	return &Store{dir: dir, seq: make(map[string]int)}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Journal opens the journal for the next occurrence of label, creating or
// resuming the underlying file. The caller owns the returned journal and
// must Close it when its sweep finishes.
func (s *Store) Journal(label string, meta Meta) (*Journal, error) {
	s.mu.Lock()
	k := s.seq[label]
	s.seq[label]++
	s.mu.Unlock()
	name := sanitizeLabel(label)
	if k > 0 {
		name = fmt.Sprintf("%s.%d", name, k)
	}
	return Open(filepath.Join(s.dir, name+".ckpt"), meta)
}

// sanitizeLabel maps a sweep label to a filesystem-safe journal name.
func sanitizeLabel(label string) string {
	if label == "" {
		return "sweep"
	}
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
