package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testMeta() Meta { return Meta{Fingerprint: 0xDEADBEEFCAFE, Trials: 16} }

func openTemp(t *testing.T, meta Meta) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	j, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	return j, path
}

func TestJournalRoundTrip(t *testing.T) {
	j, path := openTemp(t, testMeta())
	payloads := map[int][]byte{
		0:  []byte("trial zero"),
		3:  {},
		7:  bytes.Repeat([]byte{0xAB}, 1000),
		15: []byte("last"),
	}
	for trial, p := range payloads {
		if err := j.Append(trial, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Completed().Count(); got != len(payloads) {
		t.Fatalf("recovered %d trials, want %d", got, len(payloads))
	}
	for trial, want := range payloads {
		got, ok := re.Result(trial)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("trial %d: got %q ok=%v", trial, got, ok)
		}
	}
	if _, ok := re.Result(1); ok {
		t.Error("phantom trial recovered")
	}
	if re.TruncatedTailBytes() != 0 {
		t.Errorf("clean journal reported %d torn bytes", re.TruncatedTailBytes())
	}
	// A recovered journal keeps accepting appends.
	if err := re.Append(1, []byte("late")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalTornTailRecovery(t *testing.T) {
	for cut := 1; cut <= 11; cut++ {
		j, path := openTemp(t, testMeta())
		if err := j.Append(2, []byte("intact record")); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(5, []byte("doomed record")); err != nil {
			t.Fatal(err)
		}
		j.Close()

		// Tear `cut` bytes off the final record, as a crash mid-write would.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		re, err := Open(path, testMeta())
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if !re.Completed().Get(2) {
			t.Errorf("cut %d: intact record lost", cut)
		}
		if re.Completed().Get(5) {
			t.Errorf("cut %d: torn record survived", cut)
		}
		if re.TruncatedTailBytes() <= 0 {
			t.Errorf("cut %d: no tail truncation recorded", cut)
		}
		// The truncated journal must append cleanly right where it ends.
		if err := re.Append(5, []byte("rewritten")); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		re.Close()
		re2, err := Open(path, testMeta())
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := re2.Result(5); !ok || string(p) != "rewritten" {
			t.Errorf("cut %d: rewritten record: %q ok=%v", cut, p, ok)
		}
		re2.Close()
	}
}

func TestJournalCorruptRecordTruncates(t *testing.T) {
	j, path := openTemp(t, testMeta())
	if err := j.Append(0, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("bitrot victim")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip one payload byte of the second record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Completed().Get(0) || re.Completed().Get(1) {
		t.Errorf("recovery kept the wrong records: %v", re.Completed())
	}
}

func TestJournalMismatchRejected(t *testing.T) {
	j, path := openTemp(t, testMeta())
	j.Close()

	for _, bad := range []Meta{
		{Fingerprint: 0x1234, Trials: 16},        // different config/seed
		{Fingerprint: 0xDEADBEEFCAFE, Trials: 8}, // different grid size
	} {
		if _, err := Open(path, bad); !errors.Is(err, ErrMismatch) {
			t.Errorf("meta %+v accepted: %v", bad, err)
		}
	}
}

func TestJournalHeaderCorruptionRejected(t *testing.T) {
	j, path := openTemp(t, testMeta())
	j.Close()
	data, _ := os.ReadFile(path)
	data[6] ^= 0x01 // flip a fingerprint bit without fixing the CRC
	os.WriteFile(path, data, 0o644)
	if _, err := Open(path, testMeta()); err == nil {
		t.Fatal("corrupt header accepted")
	}
}

func TestJournalImplausibleRecordTruncates(t *testing.T) {
	j, path := openTemp(t, testMeta())
	j.Append(0, []byte("good"))
	j.Close()
	// Append garbage that decodes as an absurd length prefix.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var garbage [12]byte
	binary.LittleEndian.PutUint32(garbage[0:4], 0xFFFFFFFF)
	f.Write(garbage[:])
	f.Close()

	re, err := Open(path, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Completed().Count(); got != 1 {
		t.Errorf("recovered %d records, want 1", got)
	}
}

func TestJournalAppendBounds(t *testing.T) {
	j, _ := openTemp(t, testMeta())
	defer j.Close()
	if err := j.Append(-1, nil); err == nil {
		t.Error("negative trial accepted")
	}
	if err := j.Append(16, nil); err == nil {
		t.Error("out-of-range trial accepted")
	}
}

func TestStoreFreshWipesResumeKeeps(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Journal("fig5", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(3, []byte("x"))
	j.Close()

	// Resume keeps the journal and its records.
	rs, err := NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := rs.Journal("fig5", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if !rj.Completed().Get(3) {
		t.Error("resume store lost the journal")
	}
	rj.Close()

	// A fresh store wipes it.
	fs, err := NewStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := fs.Journal("fig5", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	defer fj.Close()
	if fj.Completed().Count() != 0 {
		t.Error("fresh store resumed stale trials")
	}
}

func TestStoreRepeatedLabelsGetDistinctJournals(t *testing.T) {
	s, err := NewStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		j, err := s.Journal("ablation/speedfade", testMeta())
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.Path()] {
			t.Fatalf("occurrence %d reused %s", i, j.Path())
		}
		seen[j.Path()] = true
		j.Close()
	}
	// A second store (new process) must map occurrences to the same files.
	s2, err := NewStore(s.Dir(), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j, err := s2.Journal("ablation/speedfade", testMeta())
		if err != nil {
			t.Fatal(err)
		}
		if !seen[j.Path()] {
			t.Fatalf("resumed occurrence %d maps to unseen file %s", i, j.Path())
		}
		j.Close()
	}
}

func TestSanitizeLabel(t *testing.T) {
	for in, want := range map[string]string{
		"fig5":        "fig5",
		"chaos/i0.25": "chaos_i0.25",
		"":            "sweep",
		"a b#c":       "a_b_c",
	} {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	j, path := openTemp(t, Meta{Fingerprint: 1, Trials: 64})
	done := make(chan error, 64)
	for i := 0; i < 64; i++ {
		go func(i int) {
			done <- j.Append(i, []byte(fmt.Sprintf("payload-%d", i)))
		}(i)
	}
	for i := 0; i < 64; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	re, err := Open(path, Meta{Fingerprint: 1, Trials: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Completed().Count(); got != 64 {
		t.Fatalf("recovered %d/64 concurrent appends", got)
	}
	for i := 0; i < 64; i++ {
		if p, ok := re.Result(i); !ok || string(p) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("trial %d payload %q ok=%v", i, p, ok)
		}
	}
}
