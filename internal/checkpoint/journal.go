// Package checkpoint persists per-trial Monte-Carlo results in an
// append-only, fsync'd journal so a killed sweep resumes from its last
// completed trial instead of restarting from zero. The design goal is the
// bit-identical-resume guarantee: because internal/runner slots results by
// trial index and every trial is independently seeded, a resumed run that
// re-executes only the missing trials produces byte-identical output to an
// uninterrupted run at any worker count.
//
// On-disk layout of one journal file (all integers little-endian):
//
//	header (24 bytes, written atomically via temp file + rename):
//	  [0:4]   magic "NLJ1"
//	  [4:12]  fingerprint — hash of the sweep's config/seed/grid identity
//	  [12:16] trial count of the sweep
//	  [16:20] reserved (zero)
//	  [20:24] CRC32C of bytes [0:20]
//
//	record (one per completed trial, appended then fsync'd):
//	  [0:4]   payload length
//	  [4:8]   trial index
//	  [8:8+L] payload (the gob-encoded trial result)
//	  [..+4]  CRC32C of bytes [4:8+L] (trial index + payload)
//
// A crash can only tear the final record; Open verifies every record's CRC
// and truncates the file back to the last intact one (truncated-tail
// recovery), so a journal is always reopenable after SIGKILL. A journal
// whose header fingerprint or trial count disagrees with the resuming
// sweep fails loudly with ErrMismatch rather than silently mixing grids.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/nowlater/nowlater/internal/runner"
)

var (
	magic = [4]byte{'N', 'L', 'J', '1'}

	// ErrMismatch reports a journal written by a different config, seed or
	// grid than the sweep trying to resume from it.
	ErrMismatch = errors.New("checkpoint: journal does not match this run")
)

const (
	headerSize = 24
	// recordOverhead is the non-payload bytes of one record.
	recordOverhead = 12
	// maxPayload bounds one record; anything larger in a length prefix is
	// treated as tail corruption.
	maxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies the sweep a journal belongs to.
type Meta struct {
	// Fingerprint hashes everything that determines the sweep's bits:
	// config, root seed and grid identity (but not the worker count, which
	// may legally differ between a run and its resume).
	Fingerprint uint64
	// Trials is the sweep's trial count.
	Trials int
}

// Journal is one sweep's append-only result log. Append is safe for
// concurrent use; the recovery state (Completed, Result) is fixed at Open.
type Journal struct {
	path string

	mu   sync.Mutex
	f    *os.File
	meta Meta

	done    *runner.Bitmap
	results map[int][]byte
	// truncatedBytes records how much torn tail Open discarded (0 for a
	// clean journal) — observability for tests and logs.
	truncatedBytes int64
}

// Open opens (or creates) the journal at path for the sweep identified by
// meta. An existing journal is validated against meta — ErrMismatch if it
// belongs to a different config/seed/grid — and scanned, recovering every
// intact record and truncating any torn tail left by a crash.
func Open(path string, meta Meta) (*Journal, error) {
	if meta.Trials <= 0 || meta.Trials > 1<<31-1 {
		return nil, fmt.Errorf("checkpoint: implausible trial count %d", meta.Trials)
	}
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		if err := create(path, meta); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := &Journal{
		path: path, f: f, meta: meta,
		done:    runner.NewBitmap(meta.Trials),
		results: make(map[int][]byte),
	}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// create writes a fresh header via temp file + rename, so a crash during
// creation never leaves a headerless journal behind.
func create(path string, meta Meta) error {
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], meta.Fingerprint)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(meta.Trials))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(hdr[:20], castagnoli))

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return syncDir(dir)
}

// recover validates the header, replays every intact record and truncates
// the journal at the first torn or corrupt one.
func (j *Journal) recover() error {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(j.f, hdr); err != nil {
		return fmt.Errorf("checkpoint: %s: truncated header: %w", j.path, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return fmt.Errorf("checkpoint: %s: not a journal (bad magic)", j.path)
	}
	if got := crc32.Checksum(hdr[:20], castagnoli); got != binary.LittleEndian.Uint32(hdr[20:24]) {
		return fmt.Errorf("checkpoint: %s: header checksum mismatch", j.path)
	}
	gotFP := binary.LittleEndian.Uint64(hdr[4:12])
	gotTrials := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if gotFP != j.meta.Fingerprint || gotTrials != j.meta.Trials {
		return fmt.Errorf("%w: %s holds fingerprint %016x over %d trials, this run is %016x over %d — "+
			"delete the checkpoint directory or rerun with the original config/seed",
			ErrMismatch, j.path, gotFP, gotTrials, j.meta.Fingerprint, j.meta.Trials)
	}

	offset := int64(headerSize)
	for {
		rec, n, err := readRecord(j.f, j.meta.Trials)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: drop it and everything after.
			end, serr := j.f.Seek(0, io.SeekEnd)
			if serr != nil {
				return fmt.Errorf("checkpoint: %s: %w", j.path, serr)
			}
			j.truncatedBytes = end - offset
			if terr := j.f.Truncate(offset); terr != nil {
				return fmt.Errorf("checkpoint: %s: truncating torn tail: %w", j.path, terr)
			}
			if serr := j.f.Sync(); serr != nil {
				return fmt.Errorf("checkpoint: %s: %w", j.path, serr)
			}
			break
		}
		j.done.Set(rec.trial)
		j.results[rec.trial] = rec.payload
		offset += n
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	return nil
}

type record struct {
	trial   int
	payload []byte
}

// readRecord reads one record. io.EOF means a clean end; any other error
// means a torn or corrupt tail starting at the current offset.
func readRecord(r io.Reader, trials int) (record, int64, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			return record{}, 0, io.EOF
		}
		return record{}, 0, fmt.Errorf("torn record prefix: %w", err)
	}
	length := binary.LittleEndian.Uint32(pre[0:4])
	trial := binary.LittleEndian.Uint32(pre[4:8])
	if length > maxPayload || int(trial) >= trials {
		return record{}, 0, fmt.Errorf("implausible record (len %d, trial %d)", length, trial)
	}
	body := make([]byte, int(length)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, 0, fmt.Errorf("torn record body: %w", err)
	}
	payload := body[:length]
	wantCRC := binary.LittleEndian.Uint32(body[length:])
	crc := crc32.Checksum(pre[4:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != wantCRC {
		return record{}, 0, errors.New("record checksum mismatch")
	}
	return record{trial: int(trial), payload: payload}, int64(recordOverhead) + int64(length), nil
}

// Append journals one completed trial's encoded result and fsyncs before
// returning: once Append returns nil, the record survives SIGKILL.
func (j *Journal) Append(trial int, payload []byte) error {
	if trial < 0 || trial >= j.meta.Trials {
		return fmt.Errorf("checkpoint: trial %d outside [0, %d)", trial, j.meta.Trials)
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("checkpoint: %d-byte payload exceeds the record bound", len(payload))
	}
	buf := make([]byte, recordOverhead+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(trial))
	copy(buf[8:], payload)
	crc := crc32.Checksum(buf[4:8+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(buf[8+len(payload):], crc)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: %s: journal closed", j.path)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	j.done.Set(trial)
	return nil
}

// Completed returns the bitmap of trials the journal already holds. The
// caller must treat it as read-only; it feeds runner.Options.Completed.
func (j *Journal) Completed() *runner.Bitmap { return j.done }

// Result returns the recovered payload of one trial, if present at Open
// time.
func (j *Journal) Result(trial int) ([]byte, bool) {
	p, ok := j.results[trial]
	return p, ok
}

// TruncatedTailBytes reports how many bytes of torn tail Open discarded.
func (j *Journal) TruncatedTailBytes() int64 { return j.truncatedBytes }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle. Appended records are already durable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %w", j.path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
