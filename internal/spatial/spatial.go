// Package spatial provides an incrementally-updatable uniform grid over 3-D
// points for neighbor queries on large fleets: exact nearest-neighbor via
// expanding cell shells and fixed-radius range queries, both deterministic.
// Upsert/Remove are O(points per cell); Nearest visits only the shells it
// must, so dense fleets answer in O(1) cells and the degenerate all-far case
// is clipped to the live bounding box instead of spiraling through empty
// space.
//
// Determinism contract: Nearest breaks exact distance ties toward the
// lowest id — matching a first-index-wins linear scan over points inserted
// in id order — and Within visits ids in ascending order, so callers get
// byte-identical results regardless of map iteration order.
package spatial

import (
	"fmt"
	"math"
	"sort"

	"github.com/nowlater/nowlater/internal/geo"
)

type cellKey struct{ x, y, z int32 }

// Grid is a uniform-cell spatial index. The zero value is not usable; use
// NewGrid.
type Grid struct {
	cell  float64
	pts   map[int]geo.Vec3
	cells map[cellKey][]int
	// bounds of live cells in cell coordinates, maintained lazily:
	// recomputed on demand after a removal invalidates them.
	lo, hi      cellKey
	boundsDirty bool
}

// NewGrid builds an empty grid with the given cell edge length. Pick the
// typical query radius: range queries then touch O(1) cells.
func NewGrid(cellSize float64) (*Grid, error) {
	if !(cellSize > 0) || math.IsInf(cellSize, 1) {
		return nil, fmt.Errorf("spatial: cell size %v must be positive and finite", cellSize)
	}
	return &Grid{
		cell:  cellSize,
		pts:   make(map[int]geo.Vec3),
		cells: make(map[cellKey][]int),
	}, nil
}

// Len returns the number of live points.
func (g *Grid) Len() int { return len(g.pts) }

func (g *Grid) key(p geo.Vec3) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / g.cell)),
		y: int32(math.Floor(p.Y / g.cell)),
		z: int32(math.Floor(p.Z / g.cell)),
	}
}

// Upsert inserts or moves a point. Position updates from waypoint events
// stay O(points in the two touched cells).
func (g *Grid) Upsert(id int, p geo.Vec3) {
	nk := g.key(p)
	if old, ok := g.pts[id]; ok {
		ok2 := g.key(old)
		if ok2 == nk {
			g.pts[id] = p
			return
		}
		g.removeFromCell(ok2, id)
	}
	g.pts[id] = p
	g.cells[nk] = append(g.cells[nk], id)
	if len(g.cells) == 1 {
		g.lo, g.hi = nk, nk
		return
	}
	if g.boundsDirty {
		return // a pending recompute will see this cell too
	}
	g.lo.x = min32(g.lo.x, nk.x)
	g.lo.y = min32(g.lo.y, nk.y)
	g.lo.z = min32(g.lo.z, nk.z)
	g.hi.x = max32(g.hi.x, nk.x)
	g.hi.y = max32(g.hi.y, nk.y)
	g.hi.z = max32(g.hi.z, nk.z)
}

// Remove deletes a point (no-op when absent).
func (g *Grid) Remove(id int) {
	p, ok := g.pts[id]
	if !ok {
		return
	}
	delete(g.pts, id)
	g.removeFromCell(g.key(p), id)
}

func (g *Grid) removeFromCell(k cellKey, id int) {
	ids := g.cells[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(g.cells, k)
		if k.x == g.lo.x || k.y == g.lo.y || k.z == g.lo.z ||
			k.x == g.hi.x || k.y == g.hi.y || k.z == g.hi.z {
			g.boundsDirty = true
		}
	} else {
		g.cells[k] = ids
	}
}

func (g *Grid) bounds() (cellKey, cellKey, bool) {
	if len(g.cells) == 0 {
		return cellKey{}, cellKey{}, false
	}
	if g.boundsDirty {
		first := true
		for k := range g.cells {
			if first {
				g.lo, g.hi = k, k
				first = false
				continue
			}
			g.lo.x = min32(g.lo.x, k.x)
			g.lo.y = min32(g.lo.y, k.y)
			g.lo.z = min32(g.lo.z, k.z)
			g.hi.x = max32(g.hi.x, k.x)
			g.hi.y = max32(g.hi.y, k.y)
			g.hi.z = max32(g.hi.z, k.z)
		}
		g.boundsDirty = false
	}
	return g.lo, g.hi, true
}

// Nearest returns the live point closest to p, excluding the point with id
// exclude (pass a negative id to exclude nothing). Exact ties on distance
// go to the lowest id — the same winner a first-index-wins linear scan
// picks. ok is false when no eligible point exists.
func (g *Grid) Nearest(p geo.Vec3, exclude int) (id int, dist float64, ok bool) {
	lo, hi, any := g.bounds()
	if !any || (len(g.pts) == 1 && exclude >= 0 && hasID(g.pts, exclude)) {
		return 0, 0, false
	}
	c := g.key(p)
	// Shells below the box's Chebyshev distance are provably empty;
	// shells beyond its farthest corner cannot intersect a live cell.
	rMin := chebyshevFromBox(c, lo, hi)
	rMax := chebyshevToBox(c, lo, hi)
	bestID, bestD := -1, math.Inf(1)
	consider := func(cand int) {
		if cand == exclude {
			return
		}
		d := g.pts[cand].Dist(p)
		if d < bestD || (d == bestD && (bestID < 0 || cand < bestID)) {
			bestID, bestD = cand, d
		}
	}
	for r := rMin; r <= rMax; r++ {
		// Any point in a cell at Chebyshev shell r is at least
		// (r-1)*cell away from p; once the best found beats that floor,
		// neither this shell nor any farther one can improve on it (ties
		// keep scanning: an equal-distance lower id may still appear).
		if bestID >= 0 && float64(r-1)*g.cell > bestD {
			break
		}
		g.shell(c, r, lo, hi, func(ids []int) {
			for _, cand := range ids {
				consider(cand)
			}
		})
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return bestID, bestD, true
}

// Neighbor is one range-query hit.
type Neighbor struct {
	ID   int
	Dist float64
}

// Within returns every live point at distance ≤ radius from p (excluding
// id exclude; negative excludes nothing), sorted by ascending id.
func (g *Grid) Within(p geo.Vec3, radius float64, exclude int) []Neighbor {
	if !(radius >= 0) {
		return nil
	}
	var out []Neighbor
	lo, hi, any := g.bounds()
	if !any {
		return nil
	}
	klo, khi := lo, hi
	if !math.IsInf(radius, 1) {
		klo = g.key(geo.Vec3{X: p.X - radius, Y: p.Y - radius, Z: p.Z - radius})
		khi = g.key(geo.Vec3{X: p.X + radius, Y: p.Y + radius, Z: p.Z + radius})
	}
	klo.x, khi.x = max32(klo.x, lo.x), min32(khi.x, hi.x)
	klo.y, khi.y = max32(klo.y, lo.y), min32(khi.y, hi.y)
	klo.z, khi.z = max32(klo.z, lo.z), min32(khi.z, hi.z)
	if klo.x > khi.x || klo.y > khi.y || klo.z > khi.z {
		return nil
	}
	// A radius much larger than the cell size would walk more cells than
	// there are points; scan the points directly instead (output is
	// sorted, so map order does not leak).
	cellsInRange := int64(khi.x-klo.x+1) * int64(khi.y-klo.y+1) * int64(khi.z-klo.z+1)
	if cellsInRange > int64(len(g.pts)) {
		for id, q := range g.pts {
			if id == exclude {
				continue
			}
			if d := q.Dist(p); d <= radius {
				out = append(out, Neighbor{ID: id, Dist: d})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	for x := klo.x; x <= khi.x; x++ {
		for y := klo.y; y <= khi.y; y++ {
			for z := klo.z; z <= khi.z; z++ {
				for _, id := range g.cells[cellKey{x, y, z}] {
					if id == exclude {
						continue
					}
					if d := g.pts[id].Dist(p); d <= radius {
						out = append(out, Neighbor{ID: id, Dist: d})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// shell visits the cells at exactly Chebyshev radius r around c whose
// coordinates fall inside the live bounding box — face loops are clamped
// to the box, so a huge shell around a faraway query point costs only the
// box-intersecting fraction.
func (g *Grid) shell(c cellKey, r int32, lo, hi cellKey, visit func(ids []int)) {
	look := func(k cellKey) {
		if ids, ok := g.cells[k]; ok {
			visit(ids)
		}
	}
	xlo, xhi := max32(c.x-r, lo.x), min32(c.x+r, hi.x)
	ylo, yhi := max32(c.y-r, lo.y), min32(c.y+r, hi.y)
	zlo, zhi := max32(c.z-r, lo.z), min32(c.z+r, hi.z)
	if xlo > xhi || ylo > yhi || zlo > zhi {
		return
	}
	if r == 0 {
		look(c)
		return
	}
	for _, zf := range []int32{c.z - r, c.z + r} {
		if zf < zlo || zf > zhi {
			continue
		}
		for x := xlo; x <= xhi; x++ {
			for y := ylo; y <= yhi; y++ {
				look(cellKey{x, y, zf})
			}
		}
	}
	izlo, izhi := max32(zlo, c.z-r+1), min32(zhi, c.z+r-1)
	for _, yf := range []int32{c.y - r, c.y + r} {
		if yf < ylo || yf > yhi {
			continue
		}
		for x := xlo; x <= xhi; x++ {
			for z := izlo; z <= izhi; z++ {
				look(cellKey{x, yf, z})
			}
		}
	}
	iylo, iyhi := max32(ylo, c.y-r+1), min32(yhi, c.y+r-1)
	for _, xf := range []int32{c.x - r, c.x + r} {
		if xf < xlo || xf > xhi {
			continue
		}
		for y := iylo; y <= iyhi; y++ {
			for z := izlo; z <= izhi; z++ {
				look(cellKey{xf, y, z})
			}
		}
	}
}

// chebyshevFromBox is the Chebyshev distance from c to the nearest cell of
// the box [lo, hi] (0 when inside): shells closer than it are empty.
func chebyshevFromBox(c, lo, hi cellKey) int32 {
	m := int32(0)
	if c.x < lo.x {
		m = max32(m, lo.x-c.x)
	} else if c.x > hi.x {
		m = max32(m, c.x-hi.x)
	}
	if c.y < lo.y {
		m = max32(m, lo.y-c.y)
	} else if c.y > hi.y {
		m = max32(m, c.y-hi.y)
	}
	if c.z < lo.z {
		m = max32(m, lo.z-c.z)
	} else if c.z > hi.z {
		m = max32(m, c.z-hi.z)
	}
	return m
}

// chebyshevToBox is the Chebyshev distance from c to the farthest corner of
// the box [lo, hi]: shells beyond it cannot intersect any live cell.
func chebyshevToBox(c, lo, hi cellKey) int32 {
	m := int32(0)
	m = max32(m, abs32(c.x-lo.x))
	m = max32(m, abs32(c.x-hi.x))
	m = max32(m, abs32(c.y-lo.y))
	m = max32(m, abs32(c.y-hi.y))
	m = max32(m, abs32(c.z-lo.z))
	m = max32(m, abs32(c.z-hi.z))
	return m
}

func hasID(m map[int]geo.Vec3, id int) bool { _, ok := m[id]; return ok }

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func abs32(a int32) int32 {
	if a < 0 {
		return -a
	}
	return a
}
