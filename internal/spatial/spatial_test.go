package spatial

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nowlater/nowlater/internal/geo"
)

// bruteNearest is the reference O(n) scan: strict d < best over ascending
// ids, so exact distance ties go to the lowest id — the contract Grid
// promises.
func bruteNearest(pts map[int]geo.Vec3, p geo.Vec3, exclude int) (int, float64, bool) {
	bestID, bestD := -1, math.Inf(1)
	maxID := -1
	for id := range pts {
		if id > maxID {
			maxID = id
		}
	}
	for id := 0; id <= maxID; id++ {
		q, ok := pts[id]
		if !ok || id == exclude {
			continue
		}
		if d := q.Dist(p); d < bestD {
			bestID, bestD = id, d
		}
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return bestID, bestD, true
}

func bruteWithin(pts map[int]geo.Vec3, p geo.Vec3, radius float64, exclude int) []Neighbor {
	maxID := -1
	for id := range pts {
		if id > maxID {
			maxID = id
		}
	}
	var out []Neighbor
	for id := 0; id <= maxID; id++ {
		q, ok := pts[id]
		if !ok || id == exclude {
			continue
		}
		if d := q.Dist(p); d <= radius {
			out = append(out, Neighbor{ID: id, Dist: d})
		}
	}
	return out
}

func randVec(rng *rand.Rand, span float64) geo.Vec3 {
	return geo.Vec3{
		X: (rng.Float64() - 0.5) * span,
		Y: (rng.Float64() - 0.5) * span,
		Z: rng.Float64() * span * 0.1,
	}
}

// Property: on randomized fleets under churn (inserts, moves, removals),
// grid neighbor queries match the brute-force O(n²) scan exactly —
// including tie-breaks — for both nearest-neighbor and range queries.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 60; round++ {
		cell := []float64{5, 37.5, 150, 900}[round%4]
		span := []float64{40, 400, 2000}[round%3]
		g, err := NewGrid(cell)
		if err != nil {
			t.Fatal(err)
		}
		ref := make(map[int]geo.Vec3)
		n := 1 + rng.Intn(120)
		for i := 0; i < n; i++ {
			p := randVec(rng, span)
			if i > 0 && rng.Float64() < 0.15 {
				// Duplicate an existing position: forces distance ties.
				p = ref[rng.Intn(i)]
			}
			g.Upsert(i, p)
			ref[i] = p
		}
		// Churn: moves and removals, as waypoint events and kills produce.
		for op := 0; op < n/2; op++ {
			id := rng.Intn(n)
			if rng.Float64() < 0.3 {
				g.Remove(id)
				delete(ref, id)
			} else {
				p := randVec(rng, span)
				g.Upsert(id, p)
				ref[id] = p
			}
		}
		if g.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, g.Len(), len(ref))
		}
		for q := 0; q < 25; q++ {
			p := randVec(rng, span*1.5) // some queries outside the fleet
			exclude := -1
			if rng.Float64() < 0.3 {
				exclude = rng.Intn(n)
			}
			gotID, gotD, gotOK := g.Nearest(p, exclude)
			wantID, wantD, wantOK := bruteNearest(ref, p, exclude)
			if gotOK != wantOK || (gotOK && (gotID != wantID || gotD != wantD)) {
				t.Fatalf("round %d: Nearest(%v, excl %d) = (%d, %v, %v), want (%d, %v, %v)",
					round, p, exclude, gotID, gotD, gotOK, wantID, wantD, wantOK)
			}
			radius := rng.Float64() * span
			got := g.Within(p, radius, exclude)
			want := bruteWithin(ref, p, radius, exclude)
			if len(got) != len(want) {
				t.Fatalf("round %d: Within(%v, %v) returned %d hits, want %d",
					round, p, radius, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: Within hit %d = %+v, want %+v", round, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGridEmptyAndSingle(t *testing.T) {
	g, err := NewGrid(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := g.Nearest(geo.Vec3{}, -1); ok {
		t.Fatal("Nearest on empty grid reported a hit")
	}
	if hits := g.Within(geo.Vec3{}, 100, -1); hits != nil {
		t.Fatalf("Within on empty grid = %v", hits)
	}
	g.Upsert(3, geo.Vec3{X: 4})
	if id, d, ok := g.Nearest(geo.Vec3{}, -1); !ok || id != 3 || d != 4 {
		t.Fatalf("Nearest = (%d, %v, %v)", id, d, ok)
	}
	if _, _, ok := g.Nearest(geo.Vec3{}, 3); ok {
		t.Fatal("excluding the only point still reported a hit")
	}
	g.Remove(3)
	g.Remove(3) // idempotent
	if g.Len() != 0 {
		t.Fatalf("Len = %d after removal", g.Len())
	}
}

func TestGridRejectsBadCell(t *testing.T) {
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGrid(c); err == nil {
			t.Fatalf("cell size %v accepted", c)
		}
	}
}

func TestGridWithinInfiniteRadius(t *testing.T) {
	g, err := NewGrid(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		g.Upsert(i, geo.Vec3{X: float64(i) * 100})
	}
	if hits := g.Within(geo.Vec3{}, math.Inf(1), -1); len(hits) != 5 {
		t.Fatalf("infinite radius returned %d hits", len(hits))
	}
}
