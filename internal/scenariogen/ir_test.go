package scenariogen

import (
	"path/filepath"
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

// The IR path is the compiler contract on the pinned corpus: replaying
// every entry through explicit Resolve + Link — all 62 runtimes sharing
// one policy TableCache — must reproduce the pinned result fingerprints
// byte-for-byte. Any Resolve lowering that shifts a single float (chaos
// kill ordering, Poisson materialization, decision defaulting) shows up
// here as a named entry.
func TestCorpusIRPathMatchesPinnedFingerprints(t *testing.T) {
	entries, err := ReadManifest(corpusDir)
	if err != nil {
		t.Fatalf("missing corpus manifest (regenerate with REGEN_CORPUS=1): %v", err)
	}
	tables := scenario.NewTableCache()
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.Load(filepath.Join(corpusDir, e.File))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := scenario.Resolve(spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := hex16(prog.Fingerprint()); got != e.SpecFingerprint {
				t.Fatalf("program fingerprint %s != pinned %s", got, e.SpecFingerprint)
			}
			rt, err := scenario.LinkWithOptions(prog, scenario.Options{
				CheckInvariants: true, Tables: tables,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			if v := rt.InvariantViolations(); len(v) != 0 {
				t.Fatalf("invariant violations on the IR path: %v", v)
			}
			if got := hex16(scenario.ResultFingerprint(res)); got != e.ResultFingerprint {
				t.Fatalf("IR-path result fingerprint %s != pinned %s — Resolve/Link "+
					"drifted from the compile semantics", got, e.ResultFingerprint)
			}
		})
	}
}

// Compile(spec) ≡ Link(Resolve(spec)) on 50 fresh generator seeds beyond
// the corpus range — specs the pins have never seen, flight and requests
// workloads alternating. Short mode trims the sweep.
func TestFreshSeedsCompileEquivalentToIRPath(t *testing.T) {
	const freshBase, freshCount = 500, 50
	count := freshCount
	if testing.Short() {
		count = 10
	}
	tables := scenario.NewTableCache()
	for i := 0; i < count; i++ {
		seed := int64(freshBase + i)
		gen := Generate
		if i%2 == 1 {
			gen = GenerateRequests
		}
		spec := gen(seed)
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			rtc, err := scenario.Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			resC, err := rtc.Run()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := scenario.Resolve(spec)
			if err != nil {
				t.Fatal(err)
			}
			rti, err := scenario.LinkWithOptions(prog, scenario.Options{Tables: tables})
			if err != nil {
				t.Fatal(err)
			}
			resI, err := rti.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a, b := scenario.ResultFingerprint(resC), scenario.ResultFingerprint(resI); a != b {
				t.Fatalf("seed %d: compile fingerprint %016x != IR path %016x", seed, a, b)
			}
		})
	}
}
