package scenariogen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// Divergence is a verification failure: one Spec for which an oracle or a
// metamorphic transform disagreed with the base event-driven run. It
// carries the offending Spec so a caller (or Minimize) can reproduce and
// shrink it.
type Divergence struct {
	// Spec is the input that diverged.
	Spec scenario.Spec
	// Check names the oracle or transform that caught it: "invariants",
	// "lockstep", "chaos-permutation" or "duration-extension".
	Check string
	// Detail is the human-readable disagreement.
	Detail string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("scenariogen: %s: spec %q diverged: %s", d.Check, d.Spec.Name, d.Detail)
}

// Verify runs one Spec through the differential harness:
//
//   - the event-driven Runtime with invariant checking on (the base run);
//   - the lockstep reference oracle — no lazy integration, no arrival
//     events, no settled-craft elision — which must produce a bit-identical
//     Result;
//   - chaos-line permutation: fault directives are declarative and their
//     windows non-overlapping per class, so any order must run identically;
//   - duration extension: workloads run to completion before the trailing
//     fly-out, so a longer fly-out must preserve the workload outcome
//     exactly and may only move vehicles forward (routes complete, later
//     scripted kills fire — never un-fail or un-finish anything).
//
// The base and lockstep arms are linked from one shared scenario.Program
// (resolve once, link twice), and every arm — transformed specs included —
// shares one policy TableCache, so the harness also witnesses the compiler
// contract: a re-linked Program and a shared table cache change nothing.
//
// A nil return means every oracle agreed; a non-nil return is always a
// *Divergence (wrapped run errors included).
func Verify(spec scenario.Spec) error {
	tables := scenario.NewTableCache()
	prog, err := scenario.Resolve(spec)
	if err != nil {
		return &Divergence{Spec: spec, Check: "invariants", Detail: err.Error()}
	}
	base, rt, err := runProgram(prog, scenario.Options{CheckInvariants: true, Tables: tables})
	if err != nil {
		return &Divergence{Spec: spec, Check: "invariants", Detail: err.Error()}
	}
	baseFP := scenario.ResultFingerprint(base)
	if v := rt.InvariantViolations(); len(v) != 0 {
		return &Divergence{Spec: spec, Check: "invariants",
			Detail: fmt.Sprintf("%d violations, first: %s", len(v), v[0])}
	}

	// Oracle 2: the lockstep reference path, re-linked from the same
	// Program.
	lock, lockRT, err := runProgram(prog, scenario.Options{Lockstep: true, CheckInvariants: true, Tables: tables})
	if err != nil {
		return &Divergence{Spec: spec, Check: "lockstep", Detail: err.Error()}
	}
	if v := lockRT.InvariantViolations(); len(v) != 0 {
		return &Divergence{Spec: spec, Check: "lockstep",
			Detail: fmt.Sprintf("%d violations on reference path, first: %s", len(v), v[0])}
	}
	if fp := scenario.ResultFingerprint(lock); fp != baseFP {
		return &Divergence{Spec: spec, Check: "lockstep",
			Detail: fmt.Sprintf("reference fingerprint %016x != event-driven %016x%s",
				fp, baseFP, diffResults(lock, base))}
	}

	// Transform 1: chaos-line permutation.
	if perm, changed := permuteChaos(spec); changed {
		permRes, _, err := runSpec(perm, scenario.Options{Tables: tables})
		if err != nil {
			return &Divergence{Spec: perm, Check: "chaos-permutation", Detail: err.Error()}
		}
		if fp := scenario.ResultFingerprint(permRes); fp != baseFP {
			return &Divergence{Spec: perm, Check: "chaos-permutation",
				Detail: fmt.Sprintf("permuted-chaos fingerprint %016x != base %016x%s",
					fp, baseFP, diffResults(permRes, base))}
		}
	}

	// Transform 2: duration extension past the base fly-out.
	ext := spec
	ext.DurationS = spec.DurationS + 7.5
	extRes, _, err := runSpec(ext, scenario.Options{Tables: tables})
	if err != nil {
		return &Divergence{Spec: ext, Check: "duration-extension", Detail: err.Error()}
	}
	if err := checkExtension(base, extRes); err != nil {
		return &Divergence{Spec: ext, Check: "duration-extension", Detail: err.Error()}
	}
	return nil
}

func runSpec(spec scenario.Spec, opts scenario.Options) (scenario.Result, *scenario.Runtime, error) {
	rt, err := scenario.CompileWithOptions(spec, opts)
	if err != nil {
		return scenario.Result{}, nil, err
	}
	res, err := rt.Run()
	if err != nil {
		return scenario.Result{}, nil, err
	}
	return res, rt, nil
}

// runProgram links and runs an already-resolved Program.
func runProgram(p *scenario.Program, opts scenario.Options) (scenario.Result, *scenario.Runtime, error) {
	rt, err := scenario.LinkWithOptions(p, opts)
	if err != nil {
		return scenario.Result{}, nil, err
	}
	res, err := rt.Run()
	if err != nil {
		return scenario.Result{}, nil, err
	}
	return res, rt, nil
}

// permuteChaos reorders the Spec's fault directives deterministically from
// its seed. "seed" lines keep their positions (a later seed line would
// override an earlier one), everything else is shuffled. The second return
// is false when the script is too short for any reordering to exist.
func permuteChaos(spec scenario.Spec) (scenario.Spec, bool) {
	var movable []string
	for _, line := range spec.Chaos {
		if !strings.HasPrefix(strings.TrimSpace(line), "seed") {
			movable = append(movable, line)
		}
	}
	if len(movable) < 2 {
		return spec, false
	}
	rng := stats.NewRNG(spec.Seed).Substream(spec.Seed, "scenariogen/chaos-perm")
	perm := rng.Perm(len(movable))
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		// Force a reordering: any transposition is as good as a random one.
		perm[0], perm[1] = perm[1], perm[0]
	}
	out := spec
	out.Chaos = make([]string, 0, len(spec.Chaos))
	next := 0
	for _, line := range spec.Chaos {
		if strings.HasPrefix(strings.TrimSpace(line), "seed") {
			out.Chaos = append(out.Chaos, line)
			continue
		}
		out.Chaos = append(out.Chaos, movable[perm[next]])
		next++
	}
	return out, true
}

// checkExtension verifies the duration-extension contract: identical
// workload outcomes, monotone vehicle progress.
func checkExtension(base, ext scenario.Result) error {
	if got, want := scenario.WorkloadFingerprint(ext), scenario.WorkloadFingerprint(base); got != want {
		return fmt.Errorf("workload fingerprint changed %016x -> %016x under a longer fly-out", want, got)
	}
	if ext.DurationS < base.DurationS {
		return fmt.Errorf("extended run ended earlier: %v < %v", ext.DurationS, base.DurationS)
	}
	extByID := make(map[string]scenario.VehicleResult, len(ext.Vehicles))
	for _, v := range ext.Vehicles {
		extByID[v.ID] = v
	}
	for _, b := range base.Vehicles {
		e, ok := extByID[b.ID]
		if !ok {
			return fmt.Errorf("vehicle %s missing from extended result", b.ID)
		}
		if b.Failed && (!e.Failed || e.FailedAtS != b.FailedAtS) {
			return fmt.Errorf("vehicle %s: fail state not preserved (base t=%v, ext failed=%v t=%v)",
				b.ID, b.FailedAtS, e.Failed, e.FailedAtS)
		}
		if b.RouteDone && !e.RouteDone {
			return fmt.Errorf("vehicle %s: route un-finished by a longer fly-out", b.ID)
		}
	}
	return nil
}

// diffResults summarizes where two Results that should match first differ —
// the debugging breadcrumb attached to fingerprint mismatches.
func diffResults(got, want scenario.Result) string {
	var diffs []string
	if got.DurationS != want.DurationS {
		diffs = append(diffs, fmt.Sprintf("clock %v != %v", got.DurationS, want.DurationS))
	}
	if len(got.Vehicles) != len(want.Vehicles) {
		diffs = append(diffs, fmt.Sprintf("vehicle count %d != %d", len(got.Vehicles), len(want.Vehicles)))
	} else {
		for i := range got.Vehicles {
			g, w := got.Vehicles[i], want.Vehicles[i]
			if g != w {
				diffs = append(diffs, fmt.Sprintf("vehicle %s: %+v != %+v", w.ID, g, w))
			}
		}
	}
	if len(got.Transfers) != len(want.Transfers) {
		diffs = append(diffs, fmt.Sprintf("transfer count %d != %d", len(got.Transfers), len(want.Transfers)))
	} else {
		for i := range got.Transfers {
			g, w := got.Transfers[i], want.Transfers[i]
			if g.DeliveredBytes != w.DeliveredBytes || g.CompletionS != w.CompletionS {
				diffs = append(diffs, fmt.Sprintf("transfer %d %s->%s: delivered %d/%v != %d/%v",
					i, w.From, w.To, g.DeliveredBytes, g.CompletionS, w.DeliveredBytes, w.CompletionS))
			}
		}
	}
	if len(got.Traffic) != len(want.Traffic) {
		diffs = append(diffs, fmt.Sprintf("traffic count %d != %d", len(got.Traffic), len(want.Traffic)))
	}
	if len(diffs) == 0 {
		return ""
	}
	sort.Strings(diffs)
	const keep = 4
	if len(diffs) > keep {
		diffs = append(diffs[:keep], fmt.Sprintf("(+%d more)", len(diffs)-keep))
	}
	return "; first diffs: " + strings.Join(diffs, "; ")
}
