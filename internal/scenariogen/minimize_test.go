package scenariogen

import (
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

// Minimize must shrink a large failing Spec to a small valid one while the
// predicate keeps holding. The synthetic failure — "some transfer uses a
// decision" — stands in for a real divergence; the point is the shrinking
// machinery, which is failure-agnostic.
func TestMinimizeShrinksCounterexample(t *testing.T) {
	var big scenario.Spec
	for seed := int64(0); ; seed++ {
		big = Generate(seed)
		hasDecision := false
		for _, tr := range big.Transfers {
			if tr.Decision != nil {
				hasDecision = true
			}
		}
		if hasDecision && len(big.Vehicles) >= 4 {
			break
		}
		if seed > 500 {
			t.Fatal("no generated spec with a decided transfer in 500 seeds")
		}
	}
	failing := func(s scenario.Spec) bool {
		for _, tr := range s.Transfers {
			if tr.Decision != nil {
				return true
			}
		}
		return false
	}
	small := Minimize(big, failing, 400)
	if err := small.Validate(); err != nil {
		t.Fatalf("minimized spec invalid: %v", err)
	}
	if !failing(small) {
		t.Fatal("minimized spec no longer fails")
	}
	if len(small.Vehicles) > 2 {
		t.Fatalf("kept %d vehicles; a decided transfer needs only 2", len(small.Vehicles))
	}
	if len(small.Transfers) != 1 {
		t.Fatalf("kept %d transfers, want 1", len(small.Transfers))
	}
	if len(small.Chaos) != 0 || len(small.Traffic) != 0 {
		t.Fatalf("kept unrelated workloads: chaos=%d traffic=%d", len(small.Chaos), len(small.Traffic))
	}
}

// The predicate budget is a hard bound, and the original Spec must come
// back untouched when nothing can shrink.
func TestMinimizeRespectsBudget(t *testing.T) {
	big := Generate(1)
	calls := 0
	got := Minimize(big, func(scenario.Spec) bool {
		calls++
		return true
	}, 5)
	if calls > 5 {
		t.Fatalf("predicate called %d times, budget 5", calls)
	}
	if got.Validate() != nil {
		t.Fatal("result invalid")
	}

	// A predicate that rejects every reduction keeps the input.
	calls = 0
	same := Minimize(big, func(s scenario.Spec) bool { calls++; return false }, 50)
	if len(same.Vehicles) != len(big.Vehicles) || same.DurationS != big.DurationS {
		t.Fatal("unshrinkable spec was modified")
	}
}

// dropVehicles must scrub every dangling reference so candidates validate.
func TestDropVehiclesScrubsReferences(t *testing.T) {
	s := Generate(0)
	for seed := int64(0); len(s.Transfers) == 0 || len(s.Chaos) == 0; seed++ {
		s = Generate(seed)
		if seed > 500 {
			t.Fatal("no seed with transfers and chaos")
		}
	}
	for lo := 0; lo < len(s.Vehicles); lo++ {
		c := dropVehicles(s, lo, lo+1)
		if err := c.Validate(); err != nil {
			t.Fatalf("dropping vehicle %d left an invalid spec: %v", lo, err)
		}
	}
}
