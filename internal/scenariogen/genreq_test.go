package scenariogen

import (
	"reflect"
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

// reqSeeds is the seed range the request-generator property tests sweep;
// like genSeeds it covers the committed request-corpus range and beyond.
const reqSeeds = 36

// Every generated request Spec must be valid, deterministic, and survive
// the canonical encode/decode round trip.
func TestGeneratedRequestSpecsValidDeterministicAndDistinct(t *testing.T) {
	fps := make(map[uint64]string, reqSeeds)
	for seed := int64(0); seed < reqSeeds; seed++ {
		s := GenerateRequests(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		if again := GenerateRequests(seed); !reflect.DeepEqual(again, s) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		data, err := scenario.Encode(s)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := scenario.Decode(data)
		if err != nil {
			t.Fatalf("seed %d: own encoding rejected: %v", seed, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("seed %d: encode/decode changed the spec", seed)
		}
		fp, err := scenario.Fingerprint(s)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := fps[fp]; dup {
			t.Fatalf("seed %d: duplicate fingerprint with %s", seed, prev)
		}
		fps[fp] = s.Name
	}
}

// The sweep must hit the request-workload surface: all three planner arms,
// explicit+Poisson mixes, energy budgets, decision overrides, horizons and
// chaos kills. A generator that stopped emitting one of these would leave
// the differential harness blind there.
func TestGeneratedRequestSpecsCoverSurface(t *testing.T) {
	planners := map[string]bool{}
	var explicit, budget, decision, horizon, chaos, pseed bool
	for seed := int64(0); seed < reqSeeds; seed++ {
		s := GenerateRequests(seed)
		rs := s.Requests
		if rs == nil || rs.Poisson == nil {
			t.Fatalf("seed %d: no requests/poisson section", seed)
		}
		planners[rs.Planner] = true
		if len(rs.Requests) > 0 {
			explicit = true
		}
		if rs.EnergyBudgetS > 0 {
			budget = true
		}
		if rs.Decision != nil {
			decision = true
		}
		if rs.HorizonS > 0 {
			horizon = true
		}
		if len(s.Chaos) > 0 {
			chaos = true
		}
		if rs.Poisson.Seed != 0 {
			pseed = true
		}
	}
	for _, p := range []string{scenario.PlannerFixed, scenario.PlannerGreedy, scenario.PlannerJoint} {
		if !planners[p] {
			t.Errorf("%d seeds never drew the %q planner", int64(reqSeeds), p)
		}
	}
	for name, hit := range map[string]bool{
		"explicit requests": explicit, "energy budget": budget,
		"decision override": decision, "joint horizon": horizon,
		"chaos script": chaos, "poisson seed override": pseed,
	} {
		if !hit {
			t.Errorf("%d seeds never produced a %s", int64(reqSeeds), name)
		}
	}
}

// Every request-corpus seed (and a few beyond) must clear the full
// differential harness: the lockstep oracle agrees bit-for-bit on request
// outcomes and the metamorphic transforms hold. Short mode runs the corpus
// range only.
func TestGeneratedRequestSpecsPassDifferentialHarness(t *testing.T) {
	n := int64(RequestCorpusSeeds + 4)
	if testing.Short() {
		n = RequestCorpusSeeds
	}
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		s := GenerateRequests(seed)
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			if err := Verify(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}
